// witmine coverage: miner determinism, mined-vs-hand-written differential,
// least-privilege broker regression, shadow-mode zero-verdict-change
// properties (ITFS and broker), and the anomaly -> tighten loop.

#include "src/mine/miner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/broker/broker.h"
#include "src/core/ticket_class.h"
#include "src/fs/itfs.h"
#include "src/mine/trace.h"
#include "src/os/memfs.h"
#include "src/workload/ticket_gen.h"
#include "src/workload/topology.h"

namespace witmine {
namespace {

// Deterministically records `per_class` tickets of every class.
TraceRecorder RecordWorkload(uint32_t seed, int per_class) {
  witload::TicketGenerator::Options opts;
  opts.seed = seed;
  opts.with_ops = true;
  witload::TicketGenerator gen(opts);
  TraceRecorder recorder;
  for (int cls = 1; cls <= witload::kNumTicketClasses; ++cls) {
    for (int i = 0; i < per_class; ++i) {
      recorder.RecordTicket(gen.Generate(cls));
    }
  }
  return recorder;
}

TEST(PolicyMinerTest, SameSeedSameTracesSamePolicy) {
  TraceRecorder a = RecordWorkload(77, 150);
  TraceRecorder b = RecordWorkload(77, 150);
  PolicyMiner miner_a;
  PolicyMiner miner_b;
  MinedPolicySet set_a = miner_a.Mine(a);
  MinedPolicySet set_b = miner_b.Mine(b);
  ASSERT_EQ(set_a.classes.size(), set_b.classes.size());
  for (const auto& [cls, mined] : set_a.classes) {
    auto it = set_b.classes.find(cls);
    ASSERT_NE(it, set_b.classes.end()) << cls;
    EXPECT_EQ(mined.dsl, it->second.dsl) << cls;
    EXPECT_EQ(mined.verbs, it->second.verbs) << cls;
    EXPECT_EQ(mined.prefixes, it->second.prefixes) << cls;
    EXPECT_EQ(mined.rule_count, it->second.rule_count) << cls;
  }
}

TEST(PolicyMinerTest, MinedPolicyCompilesCleanAndCoversObserved) {
  TraceRecorder recorder = RecordWorkload(7, 200);
  PolicyMiner miner;
  MinedPolicySet set = miner.Mine(recorder);
  std::map<std::string, ClassTrace> merged = recorder.Merged();
  ASSERT_EQ(set.classes.size(), merged.size());

  for (const auto& [cls, mined] : set.classes) {
    ASSERT_NE(mined.compiled, nullptr) << cls << " failed to compile:\n" << mined.dsl;
    // The emitted document must be warning-free: first-match layout bugs
    // (a deny shadowing a mined allow) surface here, not in production.
    auto reparsed = witfs::ParseItfsPolicy(mined.dsl);
    ASSERT_TRUE(reparsed.ok()) << cls;
    EXPECT_TRUE(reparsed.value().diagnostics.empty()) << cls << ":\n" << mined.dsl;

    // Everything the class was observed doing is allowed (zero false
    // blocks on the training trace itself).
    const ClassTrace& trace = merged.at(cls);
    for (const auto& [path, stats] : trace.paths) {
      if (stats.reads > 0) {
        witfs::PolicyDecision d = mined.compiled->Evaluate(witfs::ItfsOpKind::kRead, path, "");
        EXPECT_FALSE(d.deny) << cls << " read " << path << " blocked by " << d.rule;
      }
      if (stats.writes > 0) {
        witfs::PolicyDecision d = mined.compiled->Evaluate(witfs::ItfsOpKind::kWrite, path, "");
        EXPECT_FALSE(d.deny) << cls << " write " << path << " blocked by " << d.rule;
      }
    }

    // Off-profile and hard-constraint accesses are denied.
    EXPECT_TRUE(mined.compiled
                    ->Evaluate(witfs::ItfsOpKind::kWrite, "/root/.ssh/authorized_keys", "")
                    .deny)
        << cls;
    EXPECT_TRUE(
        mined.compiled->Evaluate(witfs::ItfsOpKind::kRead, "/usr/watchit/broker", "").deny)
        << cls;
  }
}

TEST(PolicyMinerTest, ExtensionClusteringMakesObservedReadOnlyExtensionsWriteOnly) {
  TraceRecorder recorder = RecordWorkload(7, 100);
  PolicyMiner miner;
  MinedPolicySet set = miner.Mine(recorder);
  // T-8 reads /var/lib/groups.db and never writes any .db file: the mined
  // policy keeps reads and denies mutations of that extension.
  const MinedClassPolicy& t8 = set.classes.at("T-8");
  ASSERT_NE(t8.compiled, nullptr);
  EXPECT_NE(std::find(t8.read_only_extensions.begin(), t8.read_only_extensions.end(), "db"),
            t8.read_only_extensions.end());
  EXPECT_FALSE(
      t8.compiled->Evaluate(witfs::ItfsOpKind::kRead, "/var/lib/groups.db", "").deny);
  EXPECT_TRUE(
      t8.compiled->Evaluate(witfs::ItfsOpKind::kWrite, "/var/lib/groups.db", "").deny);
}

// The differential the bugfix sweep is built on: mined privileges must be a
// subset of the hand-written Table 3 / Table 4 configuration (a mined verb
// the hand-written policy denies would mean shadow would-allow divergences),
// and every hand-written grant the miner does NOT reproduce must be on the
// documented-survivor list. Anything else is an over-grant.
TEST(PolicyMinerTest, HandWrittenGrantsBeyondMinedAreDocumentedSurvivors) {
  witbroker::PolicyManager policy;
  watchit::ConfigureBrokerPolicies(&policy);
  PolicyMiner miner;
  MinedPolicySet set = miner.Mine(RecordWorkload(11, 400));

  // Hand-written grants the workload never expresses, kept deliberately —
  // see the rationale in ConfigureBrokerPolicies.
  const std::map<std::string, std::set<std::string>> kSurvivors = {
      {"T-3", {witbroker::kVerbMountVolume}},
      {"T-5",
       {witbroker::kVerbPs, witbroker::kVerbKill, witbroker::kVerbReadFile,
        witbroker::kVerbRestartService}},
      {"T-6", {witbroker::kVerbInstall, witbroker::kVerbReadFile}},
      {"T-9", {witbroker::kVerbRestartService}},
      {"T-10", {witbroker::kVerbNetAllow, witbroker::kVerbMountVolume}},
      {"T-11", {witbroker::kVerbReboot}},
  };

  for (int i = 1; i <= witload::kNumTicketClasses; ++i) {
    const std::string cls = witload::TicketClassName(i);
    const witbroker::ClassPolicy* hand = policy.FindPolicy(cls);
    ASSERT_NE(hand, nullptr) << cls;
    EXPECT_FALSE(hand->allow_all) << cls;

    std::set<std::string> mined_verbs;
    auto it = set.classes.find(cls);
    if (it != set.classes.end()) {
      mined_verbs = it->second.verbs;
    }
    for (const std::string& verb : mined_verbs) {
      EXPECT_TRUE(hand->allowed_verbs.count(verb) > 0)
          << cls << " needs " << verb << " but the hand-written policy denies it";
    }
    auto survivors = kSurvivors.find(cls);
    for (const std::string& verb : hand->allowed_verbs) {
      if (mined_verbs.count(verb) > 0) {
        continue;
      }
      bool documented = survivors != kSurvivors.end() && survivors->second.count(verb) > 0;
      EXPECT_TRUE(documented) << cls << " grants " << verb
                              << " which no ticket used: undocumented over-grant";
    }
  }
}

// Regression for the over-grant the differential exposed: T-2 (forgotten
// password) held the full seven-verb "standard" set — it could kill host
// processes, install packages and mount volumes. Now it can only open the
// directory-server connection its tickets actually need.
TEST(BrokerPolicyTest, PasswordTicketsHoldOnlyDirectoryAccess) {
  witbroker::PolicyManager policy;
  watchit::ConfigureBrokerPolicies(&policy);
  EXPECT_TRUE(policy.IsAllowed("T-2", witbroker::kVerbNetAllow, "alice"));
  EXPECT_FALSE(policy.IsAllowed("T-2", witbroker::kVerbKill, "alice"));
  EXPECT_FALSE(policy.IsAllowed("T-2", witbroker::kVerbInstall, "alice"));
  EXPECT_FALSE(policy.IsAllowed("T-2", witbroker::kVerbMountVolume, "alice"));
  EXPECT_FALSE(policy.IsAllowed("T-2", witbroker::kVerbPs, "alice"));
  // T-4 shares NET and PID with the host and never crosses the broker.
  EXPECT_FALSE(policy.IsAllowed("T-4", witbroker::kVerbPs, "alice"));
  // The T-5 process-management set survives (threat-matrix pinned).
  EXPECT_TRUE(policy.IsAllowed("T-5", witbroker::kVerbKill, "alice"));
}

// Endpoint scoping: a mined broker policy grants net_allow only toward the
// endpoints its class was observed contacting (by name or by address);
// unscoped hand-written policies still reach everything.
TEST(BrokerPolicyTest, MinedNetAllowIsEndpointScoped) {
  PolicyMiner miner;
  MinedPolicySet set = miner.Mine(RecordWorkload(5, 200));
  const MinedClassPolicy& t2 = set.classes.at("T-2");
  ASSERT_FALSE(t2.endpoints.empty());
  witbroker::ClassPolicy mined_policy = t2.BrokerPolicy();
  ASSERT_FALSE(mined_policy.allowed_endpoints.empty());

  witbroker::PolicyManager policy;
  policy.SetPolicy("T-2", mined_policy);
  const std::string observed = t2.endpoints.front();
  EXPECT_TRUE(policy.IsAllowed("T-2", witbroker::kVerbNetAllow, "alice", observed));
  // The same endpoint by address (what a live escalation request carries).
  const witload::OrgEndpoint* known = witload::EndpointByName(observed);
  ASSERT_NE(known, nullptr) << observed;
  EXPECT_TRUE(
      policy.IsAllowed("T-2", witbroker::kVerbNetAllow, "alice", known->addr.ToString()));
  // An endpoint the class never contacted is out of scope.
  EXPECT_FALSE(
      policy.IsAllowed("T-2", witbroker::kVerbNetAllow, "alice", "production-db"));
  // Requests without an endpoint (and non-endpoint verbs) are unaffected.
  EXPECT_TRUE(policy.IsAllowed("T-2", witbroker::kVerbNetAllow, "alice"));

  // Hand-written policies are unscoped: any endpoint passes.
  witbroker::PolicyManager hand;
  watchit::ConfigureBrokerPolicies(&hand);
  EXPECT_TRUE(hand.IsAllowed("T-2", witbroker::kVerbNetAllow, "alice", "production-db"));
}

// Shadow mode property: installing a shadow policy changes NO ITFS verdict.
TEST(ShadowModeTest, ItfsVerdictsUnchangedUnderShadow) {
  auto make_lower = [] {
    auto lower = std::make_shared<witos::MemFs>();
    lower->ProvisionFile("/etc/passwd", "root:x:0:0\n");
    lower->ProvisionFile("/etc/shadow", "root:!:19000\n");
    lower->ProvisionFile("/home/user/.ssh/config", "Host *\n");
    lower->ProvisionFile("/home/photo.jpg", "\xFF\xD8\xFF\xE0jfif");
    return lower;
  };
  witos::Credentials admin;

  PolicyMiner miner;
  MinedPolicySet set = miner.Mine(RecordWorkload(5, 100));
  std::shared_ptr<const witfs::CompiledPolicy> shadow = set.classes.at("T-2").compiled;
  ASSERT_NE(shadow, nullptr);

  // The fixed op sequence the verdicts are compared over.
  auto run = [&admin](witfs::Itfs* itfs) {
    std::vector<int> verdicts;
    std::string buf;
    verdicts.push_back(static_cast<int>(itfs->ReadAt("/etc/passwd", 0, 64, &buf, admin).error()));
    verdicts.push_back(static_cast<int>(itfs->WriteAt("/etc/shadow", 0, "x", admin).error()));
    verdicts.push_back(
        static_cast<int>(itfs->Open("/home/user/.ssh/config", witos::kOpenRead, 0, admin).error()));
    verdicts.push_back(
        static_cast<int>(itfs->Open("/home/photo.jpg", witos::kOpenRead, 0, admin).error()));
    verdicts.push_back(static_cast<int>(itfs->GetAttr("/etc/passwd", admin).error()));
    verdicts.push_back(static_cast<int>(itfs->ReadDir("/etc", admin).error()));
    return verdicts;
  };

  witfs::ItfsPolicy hand;
  hand.AddRule(witfs::ItfsPolicy::DenyDocumentsRule());
  witfs::Itfs plain(make_lower(), hand, witos::Credentials{});
  std::vector<int> before = run(&plain);

  witfs::Itfs shadowed(make_lower(), hand, witos::Credentials{});
  shadowed.SetShadowPolicy(shadow);
  std::vector<int> after = run(&shadowed);
  EXPECT_EQ(before, after) << "a shadow policy must never change a verdict";

  witfs::ShadowStats stats = shadowed.shadow_stats();
  EXPECT_GT(stats.evaluated, 0u);
  // T-2's mined profile has no /home surface: the .ssh/config open diverges.
  EXPECT_GT(stats.would_block, 0u);
  // Mined is a strict subset of the permissive hand policy here.
  EXPECT_EQ(stats.would_allow, 0u);
  std::vector<witfs::ShadowDivergence> divergences = shadowed.ShadowDivergences();
  ASSERT_FALSE(divergences.empty());
  bool saw_config = false;
  for (const witfs::ShadowDivergence& d : divergences) {
    if (d.path == "/home/user/.ssh/config") {
      saw_config = true;
      EXPECT_FALSE(d.primary_deny);
      EXPECT_EQ(d.shadow_rule, "mined-default-deny");
    }
  }
  EXPECT_TRUE(saw_config);

  // Installing, then clearing, on a live instance: verdicts stay put.
  plain.SetShadowPolicy(shadow);
  EXPECT_EQ(run(&plain), before);
  plain.SetShadowPolicy(nullptr);
  EXPECT_EQ(run(&plain), before);
}

// Shadow mode property: broker outcomes are identical with and without the
// mined shadow; the broker just counts the disagreements.
TEST(ShadowModeTest, BrokerOutcomesUnchangedUnderShadow) {
  witos::Kernel kernel("host");
  witos::Pid pid = *kernel.Clone(1, "PermissionBroker", 0);
  witbroker::PolicyManager policy;
  watchit::ConfigureBrokerPolicies(&policy);
  witbroker::RpcChannel channel;
  witbroker::PermissionBroker broker(&kernel, pid, &policy, &channel);
  ASSERT_TRUE(broker.BindTicket("TKT-5", "T-5").ok());
  ASSERT_TRUE(broker.BindTicket("TKT-2", "T-2").ok());

  auto request = [](const std::string& ticket, const std::string& verb) {
    witbroker::RpcRequest req;
    req.method = verb;
    req.uid = witos::kRootUid;
    req.ticket_id = ticket;
    req.admin = "alice";
    return req;
  };
  const std::vector<witbroker::RpcRequest> traffic = {
      request("TKT-5", witbroker::kVerbPs),
      request("TKT-5", witbroker::kVerbKill),
      request("TKT-2", witbroker::kVerbKill),     // denied by the enforcing policy
      request("TKT-2", witbroker::kVerbInstall),  // denied by the enforcing policy
  };

  auto run = [&] {
    std::vector<bool> outcomes;
    for (const witbroker::RpcRequest& req : traffic) {
      outcomes.push_back(broker.Handle(req).ok);
    }
    return outcomes;
  };
  std::vector<bool> before = run();

  PolicyMiner miner;
  MinedPolicySet set = miner.Mine(RecordWorkload(5, 100));
  InstallShadow(set, nullptr, &policy);
  std::vector<bool> after = run();
  EXPECT_EQ(before, after) << "a broker shadow policy must never change an outcome";

  witbroker::PermissionBroker::ShadowStats stats = broker.shadow_stats();
  EXPECT_EQ(stats.evaluated, traffic.size());
  // T-5's mined verbs don't include ps/kill (its workload handles processes
  // in-view): both grants diverge. T-2's denials agree.
  EXPECT_GE(stats.would_block, 2u);
  EXPECT_EQ(stats.would_allow, 0u);

  ClearShadow(nullptr, &policy);
  EXPECT_FALSE(policy.has_shadow());
  EXPECT_EQ(run(), before);
}

TEST(ShadowModeTest, InstallShadowWiresImageRepository) {
  witcontain::ImageRepository repo;
  watchit::RegisterAllImages(&repo);
  witbroker::PolicyManager policy;
  watchit::ConfigureBrokerPolicies(&policy);

  PolicyMiner miner;
  MinedPolicySet set = miner.Mine(RecordWorkload(5, 50));
  InstallShadow(set, &repo, &policy);
  for (const auto& [cls, mined] : set.classes) {
    auto spec = repo.Lookup(cls);
    ASSERT_TRUE(spec.ok()) << cls;
    EXPECT_EQ(spec->fs.shadow, mined.compiled) << cls;
  }
  // Script containers have no mined class: no shadow installed.
  auto script = repo.Lookup("S-1");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->fs.shadow, nullptr);

  ClearShadow(&repo, &policy);
  for (const std::string& cls : repo.Classes()) {
    EXPECT_EQ(repo.Lookup(cls)->fs.shadow, nullptr) << cls;
  }
}

// The tighten hook: excluding an anomaly-flagged ticket shrinks the next
// generation's policy back to the benign profile.
TEST(PolicyMinerTest, ExcludingFlaggedTicketTightensNextGeneration) {
  TraceRecorder recorder = RecordWorkload(13, 50);
  // A poisoned T-2 ticket drags /home/user and the read_file verb into the
  // profile.
  witload::RequiredOp exfil;
  exfil.kind = witload::OpKind::kWriteFile;
  exfil.path = "/home/user/exfil/stash";
  witload::RequiredOp probe;
  probe.kind = witload::OpKind::kReadFile;
  probe.path = "/etc/passwd";
  probe.beyond_view = true;
  recorder.RecordOps("T-2", "TKT-EVIL", {exfil, probe});

  PolicyMiner miner;
  MinedPolicySet gen1 = miner.Mine(recorder);
  const MinedClassPolicy& before = gen1.classes.at("T-2");
  EXPECT_EQ(gen1.generation, 1u);
  EXPECT_NE(std::find(before.prefixes.begin(), before.prefixes.end(), "/home/user"),
            before.prefixes.end());
  EXPECT_TRUE(before.verbs.count(witbroker::kVerbReadFile) > 0);

  // The anomaly detector flags the campaign; its ticket leaves the corpus.
  witbroker::BrokerEvent event;
  event.ticket_id = "TKT-EVIL";
  event.ticket_class = "T-2";
  event.admin = "mallory";
  event.verb = witbroker::kVerbReadFile;
  witbroker::AnomalyScore score;
  score.event_index = 0;
  score.flagged = true;
  EXPECT_EQ(ExcludeFlaggedTickets({event}, {score}, &recorder), 1u);
  EXPECT_EQ(ExcludeFlaggedTickets({event}, {score}, &recorder), 0u);  // idempotent

  MinedPolicySet gen2 = miner.Mine(recorder);
  const MinedClassPolicy& after = gen2.classes.at("T-2");
  EXPECT_EQ(gen2.generation, 2u);
  EXPECT_EQ(std::find(after.prefixes.begin(), after.prefixes.end(), "/home/user"),
            after.prefixes.end());
  EXPECT_FALSE(after.verbs.count(witbroker::kVerbReadFile) > 0);
  EXPECT_LT(after.rule_count, before.rule_count);
  EXPECT_EQ(gen2.tickets_excluded, 1u);
}

// Surface accounting sanity: the mined surface never exceeds the
// hand-written one on the benign workload (that would be a would-allow).
TEST(PolicyMinerTest, MinedSurfaceWithinHandWritten) {
  witbroker::PolicyManager policy;
  watchit::ConfigureBrokerPolicies(&policy);
  PolicyMiner miner;
  MinedPolicySet set = miner.Mine(RecordWorkload(11, 400));
  size_t hand_total = 0;
  size_t mined_total = 0;
  for (int i = 1; i <= witload::kNumTicketClasses; ++i) {
    const std::string cls = witload::TicketClassName(i);
    witcontain::PerforatedContainerSpec spec = watchit::SpecForTicketClass(i);
    ClassSurface hand = HandWrittenSurface(spec, policy.FindPolicy(cls));
    auto it = set.classes.find(cls);
    ASSERT_NE(it, set.classes.end()) << cls;
    ClassSurface mined = MinedSurface(it->second, spec);
    hand_total += hand.total();
    mined_total += mined.total();
  }
  EXPECT_LT(mined_total, hand_total);
}

}  // namespace
}  // namespace witmine
