// Tests for certificates, TCB integrity, machines/cluster and the IT
// framework.

#include <gtest/gtest.h>

#include "src/core/case_study.h"
#include "src/core/cluster.h"
#include "src/core/session.h"
#include "src/core/ticket_class.h"
#include "src/workload/ticket_gen.h"
#include "src/workload/topology.h"

namespace watchit {
namespace {

TEST(CertificateTest, IssueValidateLifecycle) {
  CertificateAuthority ca;
  Certificate cert = ca.Issue("alice", "userpc", "TKT-1", "T-1", 1000, 500);
  EXPECT_EQ(ca.Validate(cert, 1200), CertStatus::kValid);
  EXPECT_EQ(ca.Validate(cert, 1500), CertStatus::kExpired);
  ca.Revoke(cert.serial);
  EXPECT_EQ(ca.Validate(cert, 1200), CertStatus::kRevoked);
}

TEST(CertificateTest, TamperingIsForgery) {
  CertificateAuthority ca;
  Certificate cert = ca.Issue("alice", "userpc", "TKT-1", "T-1", 0, 1000);
  Certificate forged = cert;
  forged.admin = "mallory";
  EXPECT_EQ(ca.Validate(forged, 10), CertStatus::kForged);
  forged = cert;
  forged.expires_ns = 1ull << 60;
  EXPECT_EQ(ca.Validate(forged, 10), CertStatus::kForged);
  Certificate unknown;
  unknown.serial = 424242;
  EXPECT_EQ(ca.Validate(unknown, 10), CertStatus::kUnknown);
}

TEST(CertificateTest, DifferentSecretsProduceDifferentSignatures) {
  CertificateAuthority a(1), b(2);
  Certificate cert_a = a.Issue("x", "m", "t", "c", 0, 1);
  Certificate cert_b = b.Issue("x", "m", "t", "c", 0, 1);
  EXPECT_NE(cert_a.signature, cert_b.signature);
}

TEST(TcbTest, EnrollAndValidate) {
  witos::Kernel kernel("host");
  kernel.root_fs().ProvisionFile("/usr/watchit/bin", "v1");
  Tcb tcb(&kernel, {"/usr/watchit"});
  tcb.Enroll();
  EXPECT_TRUE(tcb.ValidateBoot());
  // Out-of-band tampering (before the guard) breaks the measurement.
  kernel.root_fs().ProvisionFile("/usr/watchit/bin", "evil");
  EXPECT_FALSE(tcb.ValidateBoot());
}

TEST(TcbTest, GuardBlocksWritesAndModules) {
  witos::Kernel kernel("host");
  kernel.root_fs().ProvisionFile("/usr/watchit/bin", "v1");
  kernel.root_fs().ProvisionDir("/lib/modules");
  Tcb tcb(&kernel, {"/usr/watchit"});
  tcb.Enroll();
  tcb.InstallGuard();
  EXPECT_EQ(kernel.WriteFile(1, "/usr/watchit/bin", "evil").error(), witos::Err::kPerm);
  EXPECT_TRUE(tcb.ValidateBoot());
  EXPECT_EQ(kernel.LoadModule(1, "rootkit").error(), witos::Err::kPerm);
  tcb.AuthorizeModule("good-driver");
  EXPECT_TRUE(kernel.LoadModule(1, "good-driver").ok());
  // Unprotected paths unaffected.
  EXPECT_TRUE(kernel.WriteFile(1, "/tmp/scratch", "fine").ok());
}

TEST(MachineTest, BootsTrustedAndProvisioned) {
  witnet::Network fabric;
  Machine machine("userpc", witnet::Ipv4Addr(10, 0, 1, 50), &fabric);
  EXPECT_TRUE(machine.tcb_intact());
  EXPECT_TRUE(machine.kernel().ProcessAlive(machine.broker_pid()));
  EXPECT_TRUE(machine.kernel().ReadFile(1, "/etc/passwd").ok());
  EXPECT_TRUE(machine.kernel().ReadFile(1, "/home/user/documents/payroll.xlsx").ok());
}

TEST(ClusterTest, ServicesRespondOnFabric) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  // The host's own namespace has a default route: all services reachable.
  witos::NsId host_ns = machine.NetNsOf(1);
  auto resp = machine.net().Request(host_ns, witload::kLicenseServer.addr,
                                    witload::kLicenseServer.port, "checkout", 0);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->substr(0, 6), "FLEXLM");
}

TEST(ClusterManagerTest, DeployBindsTicketIssuesCert) {
  Cluster cluster;
  cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  ClusterManager manager(&cluster);
  Ticket ticket;
  ticket.id = "TKT-9";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-9";
  ticket.admin = "alice";
  auto deployment = manager.Deploy(ticket);
  ASSERT_TRUE(deployment.ok());
  EXPECT_EQ(deployment->certificate.ticket_class, "T-9");
  EXPECT_EQ(cluster.ca().Validate(deployment->certificate,
                                  deployment->machine->kernel().clock().now_ns()),
            CertStatus::kValid);
  ASSERT_TRUE(manager.Expire(&*deployment).ok());
  EXPECT_EQ(cluster.ca().Validate(deployment->certificate, 0), CertStatus::kRevoked);
  // Unknown machine / class fail cleanly.
  ticket.target_machine = "ghost";
  EXPECT_FALSE(manager.Deploy(ticket).ok());
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-99";
  EXPECT_FALSE(manager.Deploy(ticket).ok());
}

TEST(FrameworkTest, ClassifiesSyntheticTickets) {
  witload::TicketGenerator::Options options;
  options.seed = 3;
  witload::TicketGenerator gen(options);
  auto history = gen.GenerateBatch(800, witload::TicketGenerator::HistoricalDistribution());
  std::vector<std::pair<std::string, std::string>> labelled;
  for (const auto& t : history) {
    labelled.emplace_back(t.text, t.true_class);
  }
  ItFramework::Config config;
  config.lda.iterations = 150;
  ItFramework framework(config);
  framework.TrainOnHistory(labelled);
  ASSERT_TRUE(framework.trained());

  // Held-out tickets: overall accuracy should be solidly above chance.
  witload::TicketGenerator::Options eval_options;
  eval_options.seed = 99;
  eval_options.typo_rate = 0.03;
  witload::TicketGenerator eval_gen(eval_options);
  auto eval = eval_gen.GenerateBatch(200, witload::TicketGenerator::HistoricalDistribution());
  size_t correct = 0;
  for (const auto& t : eval) {
    correct += framework.Classify(t.text) == t.true_class ? 1u : 0u;
  }
  EXPECT_GT(correct, 140u) << "accuracy " << correct << "/200";
  // Review overrides the prediction.
  EXPECT_EQ(framework.ClassifyWithReview(eval[0].text, "T-7"), "T-7");
}

TEST(SessionTest, CommandsRespectView) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  ClusterManager manager(&cluster);
  Ticket ticket;
  ticket.id = "TKT-1";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-1";
  ticket.admin = "alice";
  auto deployment = manager.Deploy(ticket);
  ASSERT_TRUE(deployment.ok());
  AdminSession session(&machine, deployment->session, deployment->certificate, &cluster.ca());
  ASSERT_TRUE(session.Login().ok());

  EXPECT_EQ(*session.Hostname(), "ITContainer");
  EXPECT_TRUE(session.ReadFile("/home/user/.matlab/license.lic").ok());
  EXPECT_FALSE(session.ReadFile("/etc/shadow").ok());
  EXPECT_TRUE(session.Connect("license-server", 0).ok());
  EXPECT_FALSE(session.Connect("shared-storage", 0).ok());
  EXPECT_FALSE(session.RestartService("sshd").ok());  // no process mgmt in T-1
  EXPECT_FALSE(session.Reboot().ok());
  auto ps = session.Ps();
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ(ps->size(), 2u);
  // The PB prefix works, mirroring Figure 6.
  auto pb_ps = session.Pb(witbroker::kVerbPs, {});
  ASSERT_TRUE(pb_ps.ok());
  EXPECT_NE(pb_ps->find("PermissionBroker"), std::string::npos);
}

TEST(SessionTest, ReplayFallsBackToBroker) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  ClusterManager manager(&cluster);
  Ticket ticket;
  ticket.id = "TKT-2";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-1";
  ticket.admin = "alice";
  auto deployment = manager.Deploy(ticket);
  ASSERT_TRUE(deployment.ok());
  AdminSession session(&machine, deployment->session, deployment->certificate, &cluster.ca());
  ASSERT_TRUE(session.Login().ok());

  // In-view op: home-directory write.
  witload::RequiredOp write_op;
  write_op.kind = witload::OpKind::kWriteFile;
  write_op.path = "/home/user/.matlab/license.lic";
  auto r1 = session.Replay(write_op);
  EXPECT_TRUE(r1.in_view);
  EXPECT_FALSE(r1.used_broker);

  // Out-of-view op: host process listing (T-1 has an isolated PID ns).
  witload::RequiredOp ps_op;
  ps_op.kind = witload::OpKind::kListProcesses;
  auto r2 = session.Replay(ps_op);
  EXPECT_FALSE(r2.in_view);
  EXPECT_TRUE(r2.used_broker);
  EXPECT_TRUE(r2.broker_ok);
  EXPECT_EQ(r2.category, witload::BrokerCategory::kProcessManagement);

  // Out-of-view network op: the broker widens the view, then it works.
  witload::RequiredOp net_op;
  net_op.kind = witload::OpKind::kConnect;
  net_op.endpoint_name = "software-repo";
  net_op.port = 80;
  auto r3 = session.Replay(net_op);
  EXPECT_FALSE(r3.in_view);
  EXPECT_TRUE(r3.used_broker);
  EXPECT_TRUE(r3.broker_ok);
  EXPECT_EQ(r3.category, witload::BrokerCategory::kNetwork);
  // After the grant, the endpoint is in view for subsequent attempts.
  EXPECT_TRUE(session.Connect("software-repo", 80).ok());
}

}  // namespace
}  // namespace watchit
