// Tests for the segmented SecureLog (DESIGN.md §14): shard routing, the
// time-merged snapshot contract, epoch-root sealing, the rewrite-and-rechain
// attack, replica bounds/divergence, and the concurrent-appender guarantees
// the sharded broker relies on. The stress cases double as the TSan
// coverage for the per-shard locking.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/broker/securelog.h"

namespace witbroker {
namespace {

TEST(SegmentedLogTest, AppendsRouteByShardKey) {
  SecureLog log(4);
  EXPECT_EQ(log.shard_count(), 4u);
  for (uint64_t i = 0; i < 20; ++i) {
    log.Append("entry-" + std::to_string(i), /*time_ns=*/100 + i, /*shard_key=*/i);
  }
  EXPECT_EQ(log.size(), 20u);
  for (size_t s = 0; s < 4; ++s) {
    auto shard = log.SnapshotShard(s);
    EXPECT_EQ(shard.size(), 5u) << "shard " << s;
    EXPECT_TRUE(SecureLog::VerifyChain(shard)) << "shard " << s;
    for (size_t i = 0; i < shard.size(); ++i) {
      EXPECT_EQ(shard[i].seq, i + 1);  // per-shard 1-based chain
    }
  }
  EXPECT_TRUE(log.Verify());
}

TEST(SegmentedLogTest, SnapshotMergesShardsByTime) {
  SecureLog log(4);
  // Interleave timestamps across shards so the merge has real work to do.
  log.Append("t5", 5, 0);
  log.Append("t1", 1, 1);
  log.Append("t4", 4, 2);
  log.Append("t2", 2, 3);
  log.Append("t3", 3, 1);
  auto merged = log.SnapshotEntries();
  ASSERT_EQ(merged.size(), 5u);
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].time_ns, merged[i].time_ns);
  }
  EXPECT_EQ(merged.front().payload, "t1");
  EXPECT_EQ(merged.back().payload, "t5");
}

TEST(SegmentedLogTest, SingleShardSnapshotKeepsAppendOrder) {
  // With one shard the snapshot IS the chain — append order, even when the
  // caller's timestamps are not monotone. Sorting here would break every
  // consumer that replays the chain (and the prefix-validity guarantee).
  SecureLog log;
  log.Append("first", 30, 0);
  log.Append("second", 10, 0);
  log.Append("third", 20, 0);
  auto entries = log.SnapshotEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].payload, "first");
  EXPECT_EQ(entries[1].payload, "second");
  EXPECT_EQ(entries[2].payload, "third");
  EXPECT_TRUE(SecureLog::VerifyChain(entries));
}

TEST(SegmentedLogTest, InPlaceTamperOnAnyShardBreaksVerify) {
  for (size_t victim = 0; victim < 4; ++victim) {
    SecureLog log(4);
    for (uint64_t i = 0; i < 40; ++i) {
      log.Append("entry-" + std::to_string(i), 100 + i, i);
    }
    ASSERT_TRUE(log.Verify());
    log.TamperShardForTest(victim, /*index=*/3, "forged");
    EXPECT_FALSE(log.Verify()) << "tampered shard " << victim;
    EXPECT_FALSE(SecureLog::VerifyChain(log.SnapshotShard(victim)));
    // The other shards' chains are untouched.
    for (size_t s = 0; s < 4; ++s) {
      if (s != victim) {
        EXPECT_TRUE(SecureLog::VerifyChain(log.SnapshotShard(s)));
      }
    }
  }
}

TEST(SegmentedLogTest, RewriteAndRechainCaughtByEpochRoots) {
  SecureLog log(4);
  for (uint64_t i = 0; i < 40; ++i) {
    log.Append("entry-" + std::to_string(i), 100 + i, i);
  }
  log.SealEpoch(/*time_ns=*/200);
  ASSERT_TRUE(log.Verify());

  // The smarter attacker rewrites a sealed entry AND recomputes the shard's
  // downstream hashes: the chain alone verifies, the sealed root does not.
  log.TamperShardForTest(/*shard=*/2, /*index=*/3, "forged", /*rechain=*/true);
  EXPECT_TRUE(SecureLog::VerifyChain(log.SnapshotShard(2)));
  EXPECT_FALSE(log.VerifyEpochRoots());
  EXPECT_FALSE(log.Verify());
}

TEST(SegmentedLogTest, RewriteAndRechainCaughtByReplica) {
  SecureLog log(4);
  for (uint64_t i = 0; i < 40; ++i) {
    log.Append("entry-" + std::to_string(i), 100 + i, i);
  }
  size_t replica = log.AddReplica();
  log.Append("post-replica", 200, 7);
  ASSERT_TRUE(log.MatchesReplica(replica));

  log.TamperShardForTest(/*shard=*/1, /*index=*/2, "forged", /*rechain=*/true);
  EXPECT_TRUE(SecureLog::VerifyChain(log.SnapshotShard(1)));
  EXPECT_FALSE(log.MatchesReplica(replica));
}

TEST(SegmentedLogTest, EpochRootsChainAndAutoSeal) {
  SecureLog log(/*shards=*/4, /*epoch_interval=*/10);
  for (uint64_t i = 0; i < 35; ++i) {
    log.Append("entry-" + std::to_string(i), 100 + i, i);
  }
  // 35 appends at interval 10 → three auto-sealed roots.
  EXPECT_EQ(log.epoch_count(), 3u);
  log.SealEpoch(/*time_ns=*/500);
  auto roots = log.EpochRootsSnapshot();
  ASSERT_EQ(roots.size(), 4u);
  uint64_t prev_hash = 0;
  uint64_t prev_total = 0;
  for (size_t r = 0; r < roots.size(); ++r) {
    EXPECT_EQ(roots[r].epoch, r + 1);
    EXPECT_EQ(roots[r].prev_root_hash, prev_hash);
    EXPECT_EQ(roots[r].root_hash, EpochRoot::ComputeHash(roots[r]));
    ASSERT_EQ(roots[r].shard_sizes.size(), 4u);
    uint64_t total = 0;
    for (uint64_t size : roots[r].shard_sizes) {
      total += size;
    }
    EXPECT_GE(total, prev_total);  // sealed sizes only grow
    prev_total = total;
    prev_hash = roots[r].root_hash;
  }
  EXPECT_EQ(prev_total, 35u);  // the manual seal covers everything
  EXPECT_TRUE(log.Verify());
}

TEST(SegmentedLogTest, BatchAppendStaysChainedAndSealsOnce) {
  SecureLog log(/*shards=*/2, /*epoch_interval=*/8);
  std::vector<std::string> payloads;
  for (int i = 0; i < 10; ++i) {
    payloads.push_back("op-" + std::to_string(i));
  }
  log.AppendBatch(payloads, /*time_ns=*/100, /*shard_key=*/3);
  // The whole batch landed on one shard, one chain, N distinct entries.
  auto shard = log.SnapshotShard(3 % 2);
  ASSERT_EQ(shard.size(), 10u);
  EXPECT_TRUE(SecureLog::VerifyChain(shard));
  // One batch crossing the interval seals exactly one root, not one per op.
  EXPECT_EQ(log.epoch_count(), 1u);
  EXPECT_TRUE(log.Verify());
}

// Regression: replica accessors used to index the replica vector without a
// bounds check — an out-of-range index was UB. A missing replica can never
// vouch for the log, so the answer is false/empty, never a crash.
TEST(SegmentedLogTest, ReplicaOutOfRangeRejected) {
  SecureLog log(4);
  log.Append("entry", 100, 0);
  EXPECT_EQ(log.replica_count(), 0u);
  EXPECT_FALSE(log.MatchesReplica(0));
  EXPECT_FALSE(log.MatchesReplica(1234));
  EXPECT_TRUE(log.ReplicaSnapshot(0).empty());
  EXPECT_TRUE(log.ReplicaShardSnapshot(0, 0).empty());

  size_t index = log.AddReplica();
  EXPECT_EQ(index, 0u);
  EXPECT_EQ(log.replica_count(), 1u);
  EXPECT_TRUE(log.MatchesReplica(0));
  EXPECT_FALSE(log.MatchesReplica(1));  // one past the end, still rejected
  EXPECT_TRUE(log.ReplicaSnapshot(1).empty());
  EXPECT_TRUE(log.ReplicaShardSnapshot(0, /*shard=*/99).empty());
}

TEST(SegmentedLogTest, ReplicaSnapshotMirrorsEveryShard) {
  SecureLog log(4);
  for (uint64_t i = 0; i < 12; ++i) {
    log.Append("pre-" + std::to_string(i), 100 + i, i);
  }
  size_t replica = log.AddReplica();
  for (uint64_t i = 0; i < 12; ++i) {
    log.Append("post-" + std::to_string(i), 200 + i, i);
  }
  auto primary = log.SnapshotEntries();
  auto mirror = log.ReplicaSnapshot(replica);
  ASSERT_EQ(mirror.size(), primary.size());
  for (size_t i = 0; i < mirror.size(); ++i) {
    EXPECT_EQ(mirror[i].hash, primary[i].hash);
    EXPECT_EQ(mirror[i].payload, primary[i].payload);
  }
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(SecureLog::VerifyChain(log.ReplicaShardSnapshot(replica, s)));
  }
}

// A snapshot taken mid-append must always be a valid prefix of its shard's
// chain — no torn entries, no reordering. Appenders target every shard
// while a reader keeps checking.
TEST(SegmentedLogTest, MidAppendShardSnapshotsAreValidPrefixes) {
  constexpr size_t kShards = 4;
  constexpr uint64_t kPerShard = 300;
  SecureLog log(kShards);
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (size_t s = 0; s < kShards; ++s) {
        auto snap = log.SnapshotShard(s);
        if (!SecureLog::VerifyChain(snap)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> appenders;
  for (size_t s = 0; s < kShards; ++s) {
    appenders.emplace_back([&, s] {
      for (uint64_t i = 0; i < kPerShard; ++i) {
        log.Append("shard" + std::to_string(s) + "-" + std::to_string(i), 100 + i, s);
      }
    });
  }
  for (auto& t : appenders) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(log.size(), kShards * kPerShard);
  EXPECT_TRUE(log.Verify());
}

// 8 appenders spraying keys across 4 shards while epochs auto-seal and a
// replica registers mid-stream. Afterwards every chain, every sealed root
// and the replica must agree. Under TSan this is the data-race probe for
// the whole per-shard locking scheme.
TEST(SegmentedLogTest, ConcurrentAppendersWithSealsAndReplicas) {
  constexpr size_t kAppenders = 8;
  constexpr uint64_t kPerThread = 250;
  SecureLog log(/*shards=*/4, /*epoch_interval=*/64);

  std::atomic<size_t> replica_index{SIZE_MAX};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kAppenders; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t key = t * kPerThread + i;
        log.Append("t" + std::to_string(t) + "-" + std::to_string(i), 100 + i, key);
        if (t == 0 && i == kPerThread / 2) {
          replica_index.store(log.AddReplica(), std::memory_order_release);
        }
      }
    });
  }
  // A verifier races the appenders; mid-stream it may only ever say "intact".
  std::thread verifier([&] {
    for (int i = 0; i < 50; ++i) {
      if (!log.Verify()) {
        ADD_FAILURE() << "mid-stream Verify() reported tampering";
        return;
      }
    }
  });
  for (auto& t : threads) {
    t.join();
  }
  verifier.join();

  EXPECT_EQ(log.size(), kAppenders * kPerThread);
  // The shared countdown drifts by a few in-flight appends per seal under
  // contention; the cadence is approximate, the roots are not.
  EXPECT_GE(log.epoch_count(), (kAppenders * kPerThread) / 64 / 2);
  EXPECT_TRUE(log.Verify());
  size_t replica = replica_index.load(std::memory_order_acquire);
  ASSERT_NE(replica, SIZE_MAX);
  EXPECT_TRUE(log.MatchesReplica(replica));
  // And divergence is still detected after all that concurrency.
  log.TamperShardForTest(0, 10, "forged", /*rechain=*/true);
  EXPECT_FALSE(log.MatchesReplica(replica));
  EXPECT_FALSE(log.Verify());
}

}  // namespace
}  // namespace witbroker
