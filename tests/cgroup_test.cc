// Cgroup (pids controller) tests: resource confinement of perforated
// containers — a rogue admin cannot fork-bomb the host from inside.

#include "src/os/cgroup.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/core/session.h"
#include "src/core/ticket_class.h"

namespace witos {
namespace {

TEST(CgroupRegistryTest, ChargeUnchargeLimits) {
  CgroupRegistry registry;
  CgroupId group = registry.Create("test", 2);
  EXPECT_TRUE(registry.TryCharge(group));
  EXPECT_TRUE(registry.TryCharge(group));
  EXPECT_FALSE(registry.TryCharge(group));  // limit hit
  EXPECT_EQ(registry.Find(group)->fork_failures, 1u);
  registry.Uncharge(group);
  EXPECT_TRUE(registry.TryCharge(group));
  // The root cgroup is unlimited.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(registry.TryCharge(kRootCgroup));
  }
}

TEST(CgroupKernelTest, ChildrenInheritAndLimitApplies) {
  Kernel kernel("host");
  CgroupId group = kernel.cgroups().Create("jail", 3);
  Pid leader = *kernel.Clone(1, "leader", 0);
  ASSERT_TRUE(kernel.AssignCgroup(leader, group).ok());
  // leader occupies 1 slot; two children fit, the third fork fails.
  Pid a = *kernel.Clone(leader, "a", 0);
  ASSERT_TRUE(kernel.Clone(leader, "b", 0).ok());
  EXPECT_EQ(kernel.Clone(leader, "c", 0).error(), Err::kAgain);
  // Children inherited the group.
  EXPECT_EQ(kernel.FindProcess(a)->cgroup, group);
  // Death frees a slot.
  ASSERT_TRUE(kernel.Exit(a, 0).ok());
  EXPECT_TRUE(kernel.Clone(leader, "c", 0).ok());
  // Host forks are unaffected throughout.
  EXPECT_TRUE(kernel.Clone(1, "host-proc", 0).ok());
}

TEST(CgroupKernelTest, AssignRequiresSysAdmin) {
  Kernel kernel("host");
  CgroupId group = kernel.cgroups().Create("jail", 3);
  Pid child = *kernel.Clone(1, "child", 0);
  ASSERT_TRUE(kernel.CapDrop(child, {Capability::kSysAdmin}).ok());
  EXPECT_EQ(kernel.AssignCgroup(child, group).error(), Err::kPerm);
}

TEST(CgroupContainerTest, ForkBombContained) {
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  // A tight session: room for init + shell + a few more.
  witcontain::PerforatedContainerSpec spec = watchit::SpecForTicketClass(6);
  spec.max_processes = 6;
  cluster.images().Register("T-6S", spec);

  watchit::ClusterManager manager(&cluster);
  watchit::Ticket ticket;
  ticket.id = "TKT-FORKBOMB";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-6S";
  ticket.admin = "mallory";
  auto deployment = manager.Deploy(ticket);
  ASSERT_TRUE(deployment.ok());
  const witcontain::Session* session =
      machine.containit().FindSession(deployment->session);
  witos::Kernel& kernel = machine.kernel();

  size_t before = kernel.process_count();
  // :(){ :|:& };:  — the fork bomb, from the shell.
  size_t spawned = 0;
  for (int i = 0; i < 1000; ++i) {
    auto pid = kernel.Clone(session->shell, "bomb", 0);
    if (pid.ok()) {
      ++spawned;
    }
  }
  // Bounded by the session's pids budget, not by the host's capacity.
  EXPECT_LE(spawned, 6u);
  EXPECT_LE(kernel.process_count() - before, 6u);
  EXPECT_GT(kernel.cgroups().Find(session->cgroup)->fork_failures, 900u);
  // The host itself still forks fine.
  EXPECT_TRUE(kernel.Clone(1, "business-as-usual", 0).ok());
}

TEST(CgroupContainerTest, TerminateReleasesGroup) {
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  watchit::ClusterManager manager(&cluster);
  watchit::Ticket ticket;
  ticket.id = "TKT-CG";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-1";
  ticket.admin = "alice";
  auto deployment = manager.Deploy(ticket);
  ASSERT_TRUE(deployment.ok());
  witos::CgroupId group = machine.containit().FindSession(deployment->session)->cgroup;
  EXPECT_NE(machine.kernel().cgroups().Find(group), nullptr);
  ASSERT_TRUE(manager.Expire(&*deployment).ok());
  EXPECT_EQ(machine.kernel().cgroups().Find(group), nullptr);
}

}  // namespace
}  // namespace witos
