// Policy loading from TCB-protected configuration files.

#include "src/core/policy_loader.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/core/session.h"
#include "src/core/ticket_class.h"
#include "src/workload/topology.h"

namespace watchit {
namespace {

class PolicyLoaderTest : public ::testing::Test {
 protected:
  PolicyLoaderTest() : machine_(&cluster_.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50))) {}
  Cluster cluster_;
  Machine* machine_;
};

TEST_F(PolicyLoaderTest, MissingFilesLoadNothing) {
  PolicyLoadReport report = LoadMachinePolicies(machine_, &cluster_.images());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.itfs_rules_loaded, 0u);
  EXPECT_EQ(report.images_updated, 0u);
}

TEST_F(PolicyLoaderTest, LoadsAndAppliesToAllImages) {
  InstallPolicyFiles(machine_,
                     "deny ext:pem,key name=no-private-keys\n",
                     "alert content:\"CONFIDENTIAL\" name=keyword\n");
  EXPECT_TRUE(machine_->tcb_intact());
  PolicyLoadReport report = LoadMachinePolicies(machine_, &cluster_.images());
  ASSERT_TRUE(report.ok()) << report.error;
  EXPECT_EQ(report.itfs_rules_loaded, 1u);
  EXPECT_EQ(report.ids_rules_loaded, 1u);
  EXPECT_EQ(report.images_updated, cluster_.images().size());

  // The loaded rule bites in a real deployment.
  machine_->kernel().root_fs().ProvisionFile("/home/user/id_rsa.key", "PRIVATE KEY", 1000,
                                             1000);
  ClusterManager manager(&cluster_);
  Ticket ticket;
  ticket.id = "TKT-PL";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-1";  // /home/user is in view
  ticket.admin = "alice";
  auto deployment = manager.Deploy(ticket);
  ASSERT_TRUE(deployment.ok());
  AdminSession session(machine_, deployment->session, deployment->certificate,
                       &cluster_.ca());
  ASSERT_TRUE(session.Login().ok());
  EXPECT_EQ(session.ReadFile("/home/user/id_rsa.key").error(), witos::Err::kAcces);
  EXPECT_TRUE(session.ReadFile("/home/user/.matlab/license.lic").ok());
}

TEST_F(PolicyLoaderTest, ParseErrorAbortsWithoutMutating) {
  InstallPolicyFiles(machine_, "deny gibberish\n", "");
  auto before = cluster_.images().Lookup("T-1");
  PolicyLoadReport report = LoadMachinePolicies(machine_, &cluster_.images());
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.error.find("itfs.policy"), std::string::npos);
  auto after = cluster_.images().Lookup("T-1");
  EXPECT_EQ(before->fs.policy.rule_count(), after->fs.policy.rule_count());
}

TEST_F(PolicyLoaderTest, PolicyFilesAreTcbProtected) {
  InstallPolicyFiles(machine_, "deny ext:pem\n", "");
  // A rogue root process cannot weaken the policy file.
  EXPECT_EQ(machine_->kernel()
                .WriteFile(1, "/etc/watchit/itfs.policy", "log-all off\n")
                .error(),
            witos::Err::kPerm);
  EXPECT_TRUE(machine_->tcb_intact());
}

TEST_F(PolicyLoaderTest, LoadedIdsRulesReachDeployedSniffers) {
  InstallPolicyFiles(machine_, "", "block content:\"EXFIL-MARKER\" name=marker\n");
  ASSERT_TRUE(LoadMachinePolicies(machine_, &cluster_.images()).ok());
  ClusterManager manager(&cluster_);
  Ticket ticket;
  ticket.id = "TKT-IDS";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-1";  // has a network view (license server)
  ticket.admin = "alice";
  auto deployment = manager.Deploy(ticket);
  ASSERT_TRUE(deployment.ok());
  const witcontain::Session* info = machine_->containit().FindSession(deployment->session);
  const witos::Process* shell = machine_->kernel().FindProcess(info->shell);
  witos::NsId net_ns = shell->ns.Get(witos::NsType::kNet);
  auto response = machine_->net().Request(net_ns, witload::kLicenseServer.addr,
                                          witload::kLicenseServer.port,
                                          "checkout EXFIL-MARKER data", 0);
  EXPECT_EQ(response.error(), witos::Err::kTimedOut);  // dropped by the rule
  EXPECT_GE(info->sniffer->blocked_count(), 1u);
}

}  // namespace
}  // namespace watchit
