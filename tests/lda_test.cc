// LDA and classifier tests on a synthetic corpus with known structure.

#include <gtest/gtest.h>

#include <random>

#include "src/nlp/classifier.h"
#include "src/nlp/corpus.h"
#include "src/nlp/lda.h"

namespace witnlp {
namespace {

// Three well-separated synthetic topics.
const std::vector<std::vector<std::string>>& TopicWords() {
  static const std::vector<std::vector<std::string>> kTopics = {
      {"license", "matlab", "toolbox", "expired", "flexlm"},
      {"network", "ping", "dns", "firewall", "unreachable"},
      {"disk", "quota", "space", "storage", "full"},
  };
  return kTopics;
}

Corpus MakeCorpus(size_t docs_per_topic, uint32_t seed) {
  std::mt19937 rng(seed);
  Corpus corpus;
  for (size_t topic = 0; topic < TopicWords().size(); ++topic) {
    const auto& vocab = TopicWords()[topic];
    std::uniform_int_distribution<size_t> pick(0, vocab.size() - 1);
    for (size_t d = 0; d < docs_per_topic; ++d) {
      std::vector<std::string> words;
      for (int i = 0; i < 12; ++i) {
        words.push_back(vocab[pick(rng)]);
      }
      corpus.AddDocument(words, "topic-" + std::to_string(topic));
    }
  }
  return corpus;
}

class LdaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = MakeCorpus(60, 5);
    LdaOptions options;
    options.num_topics = 3;
    options.iterations = 200;
    options.seed = 9;
    model_ = std::make_unique<LdaModel>(&corpus_, options);
    model_->Train();
  }
  Corpus corpus_;
  std::unique_ptr<LdaModel> model_;
};

TEST_F(LdaTest, TopicWordDistributionsSumToOne) {
  for (int k = 0; k < model_->num_topics(); ++k) {
    double total = 0.0;
    for (size_t w = 0; w < corpus_.vocab().size(); ++w) {
      total += model_->TopicWordProb(k, static_cast<int>(w));
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(LdaTest, DocTopicDistributionsSumToOne) {
  for (size_t d = 0; d < corpus_.size(); d += 17) {
    std::vector<double> theta = model_->DocTopicDist(d);
    double total = 0.0;
    for (double p : theta) {
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(LdaTest, RecoversPlantedTopics) {
  // Each learned topic's top words should come from exactly one planted
  // topic's vocabulary.
  for (int k = 0; k < 3; ++k) {
    auto top = model_->TopWords(k, 3);
    ASSERT_EQ(top.size(), 3u);
    int source = -1;
    for (size_t planted = 0; planted < TopicWords().size(); ++planted) {
      const auto& vocab = TopicWords()[planted];
      if (std::find(vocab.begin(), vocab.end(), top[0].word) != vocab.end()) {
        source = static_cast<int>(planted);
      }
    }
    ASSERT_NE(source, -1);
    for (const auto& tw : top) {
      const auto& vocab = TopicWords()[static_cast<size_t>(source)];
      EXPECT_NE(std::find(vocab.begin(), vocab.end(), tw.word), vocab.end())
          << "topic " << k << " mixes planted topics: " << tw.word;
    }
  }
}

TEST_F(LdaTest, InferenceAssignsHeldOutDocsCorrectly) {
  LdaClassifier classifier(model_.get(), &corpus_);
  // A fresh document about networking.
  std::vector<std::string> doc = {"ping", "dns", "firewall", "ping", "unreachable", "network"};
  EXPECT_EQ(classifier.Classify(doc), "topic-1");
  std::vector<std::string> doc2 = {"matlab", "license", "expired", "toolbox"};
  EXPECT_EQ(classifier.Classify(doc2), "topic-0");
}

TEST_F(LdaTest, LogLikelihoodBetterThanUniform) {
  double ll = model_->LogLikelihoodPerToken();
  double uniform_ll = -std::log(static_cast<double>(corpus_.vocab().size()));
  EXPECT_GT(ll, uniform_ll);
}

TEST_F(LdaTest, DeterministicGivenSeed) {
  LdaOptions options;
  options.num_topics = 3;
  options.iterations = 50;
  options.seed = 33;
  LdaModel a(&corpus_, options);
  a.Train();
  LdaModel b(&corpus_, options);
  b.Train();
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(a.TopWords(k, 5)[0].word, b.TopWords(k, 5)[0].word);
  }
}

TEST(NaiveBayesTest, ClassifiesSeparableCorpus) {
  Corpus corpus = MakeCorpus(40, 21);
  NaiveBayesClassifier nb(&corpus);
  EXPECT_EQ(nb.Classify({"quota", "disk", "full"}), "topic-2");
  EXPECT_EQ(nb.Classify({"matlab", "flexlm"}), "topic-0");
  EXPECT_EQ(nb.labels().size(), 3u);
}

TEST(EvaluateClassifierTest, PrecisionRecallAccuracy) {
  std::vector<std::pair<std::string, std::string>> results = {
      {"a", "a"}, {"a", "a"}, {"a", "b"},  // a: 2/3 recall
      {"b", "b"},                          // b predicted 2x, correct 1x
  };
  ClassificationReport report = EvaluateClassifier(results);
  EXPECT_NEAR(report.accuracy, 0.75, 1e-9);
  EXPECT_NEAR(report.recall["a"], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(report.precision["a"], 1.0, 1e-9);      // all predicted-a were a
  EXPECT_NEAR(report.precision["b"], 0.5, 1e-9);
  EXPECT_EQ(report.total, 4u);
}

TEST(CorpusTest, VocabularyAndUnknownWords) {
  Corpus corpus;
  corpus.AddDocument({"alpha", "beta", "alpha"});
  EXPECT_EQ(corpus.vocab().size(), 2u);
  EXPECT_EQ(corpus.vocab().CountOf(corpus.vocab().IdOf("alpha")), 2u);
  auto ids = corpus.ToIds({"alpha", "gamma", "beta"});
  EXPECT_EQ(ids.size(), 2u);  // gamma dropped
  EXPECT_EQ(corpus.total_tokens(), 3u);
}

}  // namespace
}  // namespace witnlp
