// witfault: deterministic fault injection across the containment stack.
//
// The containment invariant under test (paper §4, Table 1): no injected
// EIO/ENOSPC/ENOMEM interleaving may ever let an operation through on a
// subtree the ITFS policy or the XCL exclusion table seals off. Faults may
// make *allowed* operations fail — they must never make *denied* operations
// succeed, and they must never flip a signature-mode policy open.

#include "src/os/fault.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/fs/itfs.h"
#include "src/obs/metrics.h"
#include "src/os/kernel.h"
#include "src/os/memfs.h"

namespace witos {
namespace {

const Err kInjectable[] = {Err::kIo, Err::kNoSpc, Err::kNoMem};

// --- FaultPlan scheduling ----------------------------------------------------

TEST(FaultPlanTest, NthCallTriggerFiresExactlyOnce) {
  FaultPlan plan;
  plan.FailNthCall(3, Err::kIo);
  EXPECT_EQ(plan.Decide(FaultOpKind::kOpen), Err::kOk);
  EXPECT_EQ(plan.Decide(FaultOpKind::kRead), Err::kOk);
  EXPECT_EQ(plan.Decide(FaultOpKind::kWrite), Err::kIo);
  EXPECT_EQ(plan.Decide(FaultOpKind::kWrite), Err::kOk);
  EXPECT_EQ(plan.calls(), 4u);
  EXPECT_EQ(plan.injected(), 1u);
  EXPECT_EQ(plan.injected_for(FaultOpKind::kWrite), 1u);
}

TEST(FaultPlanTest, PerOpTriggersCountPerKind) {
  FaultPlan plan;
  plan.FailNthOp(FaultOpKind::kWrite, 2, Err::kNoSpc);
  plan.FailOp(FaultOpKind::kUnlink, Err::kAcces);
  EXPECT_EQ(plan.Decide(FaultOpKind::kWrite), Err::kOk);   // write #1
  EXPECT_EQ(plan.Decide(FaultOpKind::kRead), Err::kOk);
  EXPECT_EQ(plan.Decide(FaultOpKind::kWrite), Err::kNoSpc);  // write #2
  EXPECT_EQ(plan.Decide(FaultOpKind::kUnlink), Err::kAcces);
  EXPECT_EQ(plan.Decide(FaultOpKind::kUnlink), Err::kAcces);
}

TEST(FaultPlanTest, EveryNthCallTrigger) {
  FaultPlan plan;
  plan.FailEveryNthCall(3, Err::kIo);
  int injected = 0;
  for (int i = 0; i < 9; ++i) {
    if (plan.Decide(FaultOpKind::kRead) != Err::kOk) {
      ++injected;
    }
  }
  EXPECT_EQ(injected, 3);
}

TEST(FaultPlanTest, ProbabilisticScheduleIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    FaultPlan plan(seed);
    plan.FailWithProbability(0.3, Err::kIo);
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) {
      decisions.push_back(plan.Decide(FaultOpKind::kRead) != Err::kOk);
    }
    return decisions;
  };
  EXPECT_EQ(run(7), run(7));       // same seed, same schedule
  EXPECT_NE(run(7), run(8));       // different seed, different schedule
  // Rewind replays the identical schedule without re-registering triggers.
  FaultPlan plan(7);
  plan.FailWithProbability(0.3, Err::kIo);
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) {
    first.push_back(plan.Decide(FaultOpKind::kRead) != Err::kOk);
  }
  plan.Rewind();
  EXPECT_EQ(plan.calls(), 0u);
  std::vector<bool> second;
  for (int i = 0; i < 200; ++i) {
    second.push_back(plan.Decide(FaultOpKind::kRead) != Err::kOk);
  }
  EXPECT_EQ(first, second);
}

TEST(FaultPlanTest, CountersFlowIntoMetricsRegistry) {
  witobs::MetricsRegistry registry;
  FaultPlan plan;
  plan.EnableMetrics(&registry);
  plan.FailOp(FaultOpKind::kWrite, Err::kNoSpc);
  (void)plan.Decide(FaultOpKind::kRead);
  (void)plan.Decide(FaultOpKind::kWrite);
  (void)plan.Decide(FaultOpKind::kWrite);
  EXPECT_EQ(registry.GetCounter("watchit_fault_calls_total")->Value(), 3u);
  EXPECT_EQ(registry.GetCounter("watchit_fault_injected_total", {{"op", "write"}})->Value(), 2u);
  EXPECT_EQ(registry.GetCounter("watchit_fault_injected_total", {{"op", "read"}})->Value(), 0u);
}

// --- ErrorInjectingVfs decorator ---------------------------------------------

TEST(ErrorInjectingVfsTest, ForwardsCleanlyWithoutTriggers) {
  auto lower = std::make_shared<MemFs>();
  lower->ProvisionFile("/f", "hello");
  auto plan = std::make_shared<FaultPlan>();
  ErrorInjectingVfs faulty(lower, plan);
  std::string buf;
  ASSERT_TRUE(faulty.ReadAt("/f", 0, 16, &buf, Credentials{}).ok());
  EXPECT_EQ(buf, "hello");
  EXPECT_EQ(faulty.FsType(), "faultfs.ext4");
  EXPECT_GT(plan->calls(), 0u);
  EXPECT_EQ(plan->injected(), 0u);
}

TEST(ErrorInjectingVfsTest, InjectedWriteFaultLeavesLowerUntouched) {
  auto lower = std::make_shared<MemFs>();
  lower->ProvisionFile("/f", "hello");
  auto plan = std::make_shared<FaultPlan>();
  plan->FailOp(FaultOpKind::kWrite, Err::kNoSpc);
  ErrorInjectingVfs faulty(lower, plan);
  EXPECT_EQ(faulty.WriteAt("/f", 0, "XXXXX", Credentials{}).error(), Err::kNoSpc);
  std::string buf;
  ASSERT_TRUE(lower->ReadAt("/f", 0, 16, &buf, Credentials{}).ok());
  EXPECT_EQ(buf, "hello");
}

// --- ITFS gate invariant under systematic fault sweeps -----------------------

witfs::ItfsPolicy ContainmentPolicy() {
  witfs::ItfsPolicy policy;
  policy.AddRule(witfs::ItfsPolicy::DenyDocumentsRule());
  policy.AddRule(witfs::ItfsPolicy::ProtectPathsRule({"/usr/watchit"}));
  policy.AddRule(witfs::ItfsPolicy::ReadOnlyRule({"/etc"}));
  policy.set_inspection_mode(witfs::InspectionMode::kSignature);
  return policy;
}

std::shared_ptr<MemFs> ContainmentLower() {
  auto lower = std::make_shared<MemFs>();
  lower->ProvisionFile("/etc/passwd", "root:x:0:0\n");
  lower->ProvisionFile("/home/payroll.xlsx", std::string("PK\x03\x04") + "salaries");
  lower->ProvisionFile("/home/disguised.log", "%PDF-1.4 secret report");
  lower->ProvisionFile("/home/notes.txt", "todo\n");
  lower->ProvisionFile("/usr/watchit/broker", "\x7f" "ELF");
  return lower;
}

// CrashMonkey-style systematic sweep: fail the nth intercepted lower-fs call
// with each injectable errno, and assert the gate never opens.
TEST(ItfsFaultSweepTest, DeniedOperationsStayDeniedUnderEveryNthCallFault) {
  for (Err err : kInjectable) {
    for (uint64_t nth = 1; nth <= 12; ++nth) {
      auto plan = std::make_shared<FaultPlan>();
      plan->FailNthCall(nth, err);
      auto faulty = std::make_shared<ErrorInjectingVfs>(ContainmentLower(), plan);
      witfs::Itfs itfs(faulty, ContainmentPolicy(), Credentials{});

      // Every one of these must stay an error, whatever the fault did.
      EXPECT_FALSE(itfs.Open("/usr/watchit/broker", kOpenRead, 0, Credentials{}).ok())
          << "nth=" << nth;
      EXPECT_FALSE(itfs.Open("/home/payroll.xlsx", kOpenRead, 0, Credentials{}).ok())
          << "nth=" << nth;
      EXPECT_FALSE(itfs.WriteAt("/etc/passwd", 0, "pwned", Credentials{}).ok())
          << "nth=" << nth;
      EXPECT_FALSE(itfs.Unlink("/usr/watchit/broker", Credentials{}).ok()) << "nth=" << nth;
      EXPECT_FALSE(itfs.Rename("/usr/watchit/broker", "/home/b", Credentials{}).ok())
          << "nth=" << nth;

      // Allowed operations may fail with the injected error but must never
      // return wrong content.
      std::string buf;
      auto read = itfs.ReadAt("/home/notes.txt", 0, 16, &buf, Credentials{});
      if (read.ok()) {
        EXPECT_EQ(buf, "todo\n") << "nth=" << nth;
      }
    }
  }
}

// Regression (found by this sweep): in signature mode a faulted head read
// used to leave `head` empty and let content smuggled under an innocent
// extension pass the content rules — a fault-induced fail-open. The gate now
// fails closed and logs the denial.
TEST(ItfsFaultSweepTest, FaultedHeadReadFailsClosedNotOpen) {
  auto plan = std::make_shared<FaultPlan>();
  plan->FailNthOp(FaultOpKind::kRead, 1, Err::kIo);
  auto faulty = std::make_shared<ErrorInjectingVfs>(ContainmentLower(), plan);
  witfs::Itfs itfs(faulty, ContainmentPolicy(), Credentials{});
  // The disguised PDF is only catchable via its magic bytes; with the head
  // fetch faulted the open must be denied, not quietly allowed.
  auto open = itfs.Open("/home/disguised.log", kOpenRead, 0, Credentials{});
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.error(), Err::kIo);
  ASSERT_GE(itfs.oplog().size(), 1u);
  EXPECT_EQ(itfs.oplog().records().back().rule, "head-fetch-failed");
  EXPECT_TRUE(itfs.oplog().records().back().denied);
  // Once the fault clears, a benign file opens normally again.
  EXPECT_TRUE(itfs.Open("/home/notes.txt", kOpenRead, 0, Credentials{}).ok());
}

TEST(ItfsFaultSweepTest, MissingFileHeadReadStillAllowsCreation) {
  // The fail-closed path must not break legitimate creates: ENOENT on the
  // head fetch of a not-yet-existing file is benign, not environmental.
  auto plan = std::make_shared<FaultPlan>();  // no faults
  auto faulty = std::make_shared<ErrorInjectingVfs>(ContainmentLower(), plan);
  witfs::Itfs itfs(faulty, ContainmentPolicy(), Credentials{});
  EXPECT_TRUE(
      itfs.Open("/home/new.txt", kOpenCreate | kOpenWrite, 0644, Credentials{}).ok());
}

// The verdict-cache path must not weaken the fail-closed invariant: after a
// mutation the cached verdict is stale, the gate re-reads the head, and an
// injected read error on that refresh must deny — the old cached allow must
// never paper over the failed read.
TEST(ItfsFaultSweepTest, CachedVerdictNeverMasksFreshReadError) {
  auto plan = std::make_shared<FaultPlan>();
  auto lower = ContainmentLower();
  auto faulty = std::make_shared<ErrorInjectingVfs>(lower, plan);
  witfs::Itfs itfs(faulty, ContainmentPolicy(), Credentials{});
  ASSERT_TRUE(itfs.policy_snapshot()->CacheableVerdicts());

  // Prime the cache: notes.txt classifies clean and is allowed.
  ASSERT_TRUE(itfs.Open("/home/notes.txt", kOpenRead, 0, Credentials{}).ok());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", kOpenRead, 0, Credentials{}).ok());
  ASSERT_GE(itfs.verdict_cache_stats().hits, 1u);

  // Mutate out-of-band (new generation), then fault the refresh read. The
  // priming miss consumed read #1, so the refresh is read #2.
  ASSERT_TRUE(lower->WriteAt("/home/notes.txt", 0, "%PDF-1.4 now a pdf", Credentials{}).ok());
  plan->FailNthOp(FaultOpKind::kRead, 2, Err::kIo);
  auto open = itfs.Open("/home/notes.txt", kOpenRead, 0, Credentials{});
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.error(), Err::kIo);
  EXPECT_EQ(itfs.oplog().records().back().rule, "head-fetch-failed");

  // The failed read must not have been cached: with the fault cleared the
  // next open re-reads, sees the PDF magic, and denies on the content rule.
  auto retry = itfs.Open("/home/notes.txt", kOpenRead, 0, Credentials{});
  ASSERT_FALSE(retry.ok());
  EXPECT_EQ(retry.error(), Err::kAcces);
}

// Mid-rename fault: the rename fails atomically — source intact, no
// destination debris.
TEST(ItfsFaultSweepTest, MidRenameFaultLeavesSourceIntact) {
  for (Err err : kInjectable) {
    auto plan = std::make_shared<FaultPlan>();
    plan->FailNthOp(FaultOpKind::kRename, 1, err);
    auto lower = ContainmentLower();
    auto faulty = std::make_shared<ErrorInjectingVfs>(lower, plan);
    witfs::Itfs itfs(faulty, ContainmentPolicy(), Credentials{});
    EXPECT_EQ(itfs.Rename("/home/notes.txt", "/home/moved.txt", Credentials{}).error(), err);
    EXPECT_TRUE(lower->GetAttr("/home/notes.txt", Credentials{}).ok());
    EXPECT_FALSE(lower->GetAttr("/home/moved.txt", Credentials{}).ok());
  }
}

// --- XCL exclusion invariant under fault sweeps ------------------------------

// Builds a kernel with a fault-injected filesystem mounted at /data holding
// an excluded secret subtree, and an admin confined by XCL.
struct XclFaultRig {
  explicit XclFaultRig(std::shared_ptr<FaultPlan> plan) : kernel("host") {
    auto lower = std::make_shared<MemFs>("tmpfs");
    lower->ProvisionFile("/secret/classified.txt", "classified");
    lower->ProvisionFile("/ok/public.txt", "public");
    auto faulty = std::make_shared<ErrorInjectingVfs>(lower, std::move(plan));
    EXPECT_TRUE(kernel.MkDir(1, "/data").ok());
    EXPECT_TRUE(kernel.Mount(1, faulty, "/data", "faultfs").ok());
    admin = *kernel.Clone(1, "admin", kCloneNewXcl);
    EXPECT_TRUE(kernel.XclAdd(admin, "/data/secret").ok());
  }
  Kernel kernel;
  Pid admin = kNoPid;
};

TEST(XclFaultSweepTest, ExcludedSubtreeSealedUnderEveryNthCallFault) {
  for (Err err : kInjectable) {
    for (uint64_t nth = 1; nth <= 10; ++nth) {
      auto plan = std::make_shared<FaultPlan>();
      plan->FailNthCall(nth, err);
      XclFaultRig rig(plan);
      // The exclusion must hold on every fault interleaving, and must never
      // surface the secret bytes.
      auto secret = rig.kernel.ReadFile(rig.admin, "/data/secret/classified.txt");
      EXPECT_FALSE(secret.ok()) << "err-sweep nth=" << nth;
      EXPECT_FALSE(rig.kernel.ReadDir(rig.admin, "/data/secret").ok()) << "nth=" << nth;
      EXPECT_FALSE(
          rig.kernel.WriteFile(rig.admin, "/data/secret/new.txt", "x").ok())
          << "nth=" << nth;
      EXPECT_FALSE(
          rig.kernel.Rename(rig.admin, "/data/ok/public.txt", "/data/secret/out.txt").ok())
          << "nth=" << nth;
      // Non-excluded paths may fail with the injected error, never leak the
      // wrong content.
      auto ok_read = rig.kernel.ReadFile(rig.admin, "/data/ok/public.txt");
      if (ok_read.ok()) {
        EXPECT_EQ(*ok_read, "public") << "nth=" << nth;
      }
    }
  }
}

TEST(XclFaultSweepTest, ProbabilisticStormNeverLeaksExcludedContent) {
  // syzkaller-style randomized campaign on a fixed seed: 20% of lower-fs
  // calls fail while an admin hammers the excluded subtree.
  auto plan = std::make_shared<FaultPlan>(0xC0FFEE);
  plan->FailWithProbability(0.2, Err::kIo);
  XclFaultRig rig(plan);
  for (int i = 0; i < 300; ++i) {
    auto read = rig.kernel.ReadFile(rig.admin, "/data/secret/classified.txt");
    ASSERT_FALSE(read.ok()) << "iteration " << i;
    auto dir = rig.kernel.ReadDir(rig.admin, "/data/secret");
    ASSERT_FALSE(dir.ok()) << "iteration " << i;
  }
  EXPECT_GT(plan->injected(), 0u);  // the storm actually stormed
}

// --- XclAdd dedupe regression ------------------------------------------------

TEST(XclFaultSweepTest, DuplicateXclAddClearsWithOneRemove) {
  // Pre-fix, N identical XclAdd calls pushed N entries and one XclRemove
  // peeled off only one: the supervisor believed the exclusion was lifted
  // while the subtree stayed sealed (or worse, the reverse bookkeeping bug
  // in a retry loop). Adds are now idempotent.
  Kernel kernel("host");
  kernel.root_fs().ProvisionFile("/home/user/secret.txt", "classified");
  Pid admin = *kernel.Clone(1, "admin", kCloneNewXcl);
  ASSERT_TRUE(kernel.XclAdd(admin, "/home/user").ok());
  ASSERT_TRUE(kernel.XclAdd(admin, "/home/user").ok());      // retry
  ASSERT_TRUE(kernel.XclAdd(admin, "/home/user/").ok());     // trailing slash
  ASSERT_TRUE(kernel.XclAdd(admin, "/home//user/.").ok());   // unnormalized
  ASSERT_EQ(kernel.XclList(admin)->size(), 1u);
  ASSERT_TRUE(kernel.XclRemove(admin, "/home/user").ok());
  EXPECT_TRUE(kernel.XclList(admin)->empty());
  EXPECT_EQ(*kernel.ReadFile(admin, "/home/user/secret.txt"), "classified");
}

// --- ItfsPolicy prefix normalization regression ------------------------------

TEST(PolicyNormalizationTest, UnnormalizedRulePrefixesStillMatch) {
  // Pre-fix, a trailing-slash or dotted prefix never matched PathIsUnder and
  // the rule was silently inert.
  witfs::ItfsPolicy policy;
  policy.AddRule(witfs::ItfsPolicy::ProtectPathsRule({"/usr/watchit/", "/var/../var/log"}));
  auto lower = ContainmentLower();
  witfs::Itfs itfs(lower, std::move(policy), Credentials{});
  EXPECT_EQ(itfs.Open("/usr/watchit/broker", kOpenRead, 0, Credentials{}).error(), Err::kAcces);
  EXPECT_EQ(
      itfs.policy_snapshot()->Evaluate(witfs::ItfsOpKind::kOpen, "/var/log/syslog", {}).deny,
      true);
  // Unrelated paths are untouched.
  EXPECT_TRUE(itfs.Open("/home/notes.txt", kOpenRead, 0, Credentials{}).ok());
}

}  // namespace
}  // namespace witos
