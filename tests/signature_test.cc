#include "src/fs/signature.h"

#include <gtest/gtest.h>

#include <random>

namespace witfs {
namespace {

TEST(SignatureTest, DetectsCommonFormats) {
  EXPECT_EQ(DetectSignature("\xFF\xD8\xFF\xE0 jfif"), FileClass::kJpeg);
  EXPECT_EQ(DetectSignature("\x89PNG\r\n\x1a\n...."), FileClass::kPng);
  EXPECT_EQ(DetectSignature("GIF89a...."), FileClass::kGif);
  EXPECT_EQ(DetectSignature("%PDF-1.7 ..."), FileClass::kPdf);
  EXPECT_EQ(DetectSignature(std::string("PK\x03\x04") + "word/"), FileClass::kZipOffice);
  EXPECT_EQ(DetectSignature("\xD0\xCF\x11\xE0\xA1\xB1\x1A\xE1"), FileClass::kOleOffice);
  EXPECT_EQ(DetectSignature(std::string("\x7f") + "ELF\x02"), FileClass::kElf);
  EXPECT_EQ(DetectSignature("\x1f\x8b\x08"), FileClass::kGzip);
}

TEST(SignatureTest, PlainTextIsText) {
  EXPECT_EQ(DetectSignature("hello world\nthis is a config file\n"), FileClass::kText);
  EXPECT_EQ(DetectSignature(""), FileClass::kText);
}

TEST(SignatureTest, HighEntropyIsEncrypted) {
  std::mt19937 rng(42);
  std::string random_bytes;
  for (int i = 0; i < 4096; ++i) {
    random_bytes += static_cast<char>(rng() & 0xff);
  }
  // Avoid accidentally matching a magic prefix.
  random_bytes[0] = '\x01';
  random_bytes[1] = '\x02';
  EXPECT_EQ(DetectSignature(random_bytes), FileClass::kEncrypted);
}

TEST(SignatureTest, EntropyBounds) {
  EXPECT_DOUBLE_EQ(ShannonEntropy(""), 0.0);
  EXPECT_DOUBLE_EQ(ShannonEntropy("aaaa"), 0.0);
  // Two symbols, equal frequency: exactly 1 bit/byte.
  EXPECT_DOUBLE_EQ(ShannonEntropy("abababab"), 1.0);
  std::string all_bytes;
  for (int i = 0; i < 256; ++i) {
    all_bytes += static_cast<char>(i);
  }
  EXPECT_NEAR(ShannonEntropy(all_bytes), 8.0, 1e-9);
}

TEST(SignatureTest, DocumentOrImageClassification) {
  EXPECT_TRUE(IsDocumentOrImage(FileClass::kPdf));
  EXPECT_TRUE(IsDocumentOrImage(FileClass::kJpeg));
  EXPECT_TRUE(IsDocumentOrImage(FileClass::kZipOffice));
  EXPECT_FALSE(IsDocumentOrImage(FileClass::kText));
  EXPECT_FALSE(IsDocumentOrImage(FileClass::kElf));
  EXPECT_FALSE(IsDocumentOrImage(FileClass::kEncrypted));
}

TEST(SignatureTest, NamesAreStable) {
  EXPECT_EQ(FileClassName(FileClass::kZipOffice), "zip-office");
  EXPECT_EQ(FileClassName(FileClass::kEncrypted), "encrypted");
}

}  // namespace
}  // namespace witfs
