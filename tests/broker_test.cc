// Tests for the permission-broker stack: wire format, RPC framing, secure
// log, policy manager, broker semantics and anomaly detection.

#include <gtest/gtest.h>

#include "src/broker/anomaly.h"
#include "src/broker/broker.h"
#include "src/broker/securelog.h"

namespace witbroker {
namespace {

TEST(WireTest, RoundTripPrimitives) {
  WireWriter writer;
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x1122334455667788ull);
  writer.PutString("hello");
  writer.PutStringList({"a", "", "ccc"});
  writer.PutBool(true);
  WireReader reader(writer.data());
  EXPECT_EQ(*reader.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*reader.GetU64(), 0x1122334455667788ull);
  EXPECT_EQ(*reader.GetString(), "hello");
  EXPECT_EQ(*reader.GetStringList(), (std::vector<std::string>{"a", "", "ccc"}));
  EXPECT_TRUE(*reader.GetBool());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireTest, TruncatedInputRejected) {
  WireWriter writer;
  writer.PutString("hello");
  std::string data = writer.data();
  data.resize(data.size() - 2);
  WireReader reader(data);
  EXPECT_FALSE(reader.GetString().ok());
}

TEST(RpcTest, RequestResponseRoundTrip) {
  RpcRequest req;
  req.method = "ps";
  req.args = {"-a"};
  req.uid = 0;
  req.caller_pid = 42;
  req.ticket_id = "TKT-1";
  req.admin = "alice";
  auto decoded = RpcRequest::Deserialize(req.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->method, "ps");
  EXPECT_EQ(decoded->args, req.args);
  EXPECT_EQ(decoded->caller_pid, 42);
  EXPECT_EQ(decoded->admin, "alice");

  RpcResponse resp;
  resp.ok = true;
  resp.payload = "PID...";
  auto decoded_resp = RpcResponse::Deserialize(resp.Serialize());
  ASSERT_TRUE(decoded_resp.ok());
  EXPECT_TRUE(decoded_resp->ok);
  EXPECT_EQ(decoded_resp->payload, "PID...");
}

TEST(RpcTest, BatchRoundTripLaw) {
  // The round-trip law: Deserialize(Serialize(b)) == b for any well-formed
  // batch, and the response side likewise — positional order preserved.
  RpcBatchRequest batch;
  batch.uid = witos::kRootUid;
  batch.caller_pid = 42;
  batch.ticket_id = "TKT-20260805-00042";
  batch.admin = "admin03@it.example.org";
  batch.ops = {{"ps", {}}, {"kill", {"1042"}}, {"read_file", {"/var/log/syslog"}}};
  auto decoded = RpcBatchRequest::Deserialize(batch.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->uid, batch.uid);
  EXPECT_EQ(decoded->caller_pid, batch.caller_pid);
  EXPECT_EQ(decoded->ticket_id, batch.ticket_id);
  EXPECT_EQ(decoded->admin, batch.admin);
  ASSERT_EQ(decoded->ops.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->ops[i].method, batch.ops[i].method);
    EXPECT_EQ(decoded->ops[i].args, batch.ops[i].args);
  }

  RpcBatchResponse responses;
  RpcResponse granted;
  granted.ok = true;
  granted.payload = "PID...";
  RpcResponse denied;
  denied.err = witos::Err::kPerm;
  responses.responses = {granted, denied};
  auto decoded_resp = RpcBatchResponse::Deserialize(responses.Serialize());
  ASSERT_TRUE(decoded_resp.ok());
  ASSERT_EQ(decoded_resp->responses.size(), 2u);
  EXPECT_TRUE(decoded_resp->responses[0].ok);
  EXPECT_EQ(decoded_resp->responses[0].payload, "PID...");
  EXPECT_FALSE(decoded_resp->responses[1].ok);
  EXPECT_EQ(decoded_resp->responses[1].err, witos::Err::kPerm);
}

TEST(RpcTest, V1FramesStillDeserialize) {
  // A v1 peer sends headerless frames with the error as an errno-name
  // string; both must keep decoding after the v2 redesign.
  WireWriter req_writer;
  req_writer.PutString("ps");
  req_writer.PutStringList({"-a"});
  req_writer.PutU32(0);
  req_writer.PutU32(42);
  req_writer.PutString("TKT-1");
  req_writer.PutString("alice");
  auto req = RpcRequest::Deserialize(req_writer.data());
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->method, "ps");
  EXPECT_EQ(req->caller_pid, 42);

  WireWriter resp_writer;
  resp_writer.PutBool(false);
  resp_writer.PutString("EACCES");
  resp_writer.PutString("");
  auto resp = RpcResponse::Deserialize(resp_writer.data());
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->err, witos::Err::kAcces);
  EXPECT_EQ(resp->error_name(), "EACCES");

  // v1 success frames carried an empty error string, which must map to
  // kOk, not to the unknown-name fallback.
  WireWriter ok_writer;
  ok_writer.PutBool(true);
  ok_writer.PutString("");
  ok_writer.PutString("payload");
  auto ok_resp = RpcResponse::Deserialize(ok_writer.data());
  ASSERT_TRUE(ok_resp.ok());
  EXPECT_TRUE(ok_resp->ok);
  EXPECT_EQ(ok_resp->err, witos::Err::kOk);
}

TEST(RpcTest, TrailingGarbageRejected) {
  RpcRequest req;
  req.method = "ps";
  std::string frame = req.Serialize() + "junk";
  EXPECT_FALSE(RpcRequest::Deserialize(frame).ok());
}

TEST(RpcTest, UnboundChannelRefusesConnections) {
  RpcChannel channel;
  RpcRequest req;
  req.method = "ps";
  EXPECT_EQ(channel.Call(req).error(), witos::Err::kConnRefused);
}

TEST(SecureLogTest, ChainVerifies) {
  SecureLog log;
  log.Append("entry one", 100);
  log.Append("entry two", 200);
  log.Append("entry three", 300);
  EXPECT_TRUE(log.Verify());
  EXPECT_EQ(log.size(), 3u);
  const auto entries = log.SnapshotEntries();
  EXPECT_EQ(entries[1].prev_hash, entries[0].hash);
}

TEST(SecureLogTest, TamperingDetected) {
  SecureLog log;
  log.Append("GRANT alice ps", 100);
  log.Append("GRANT alice kill 7", 200);
  EXPECT_TRUE(log.Verify());
  log.TamperForTest(0, "GRANT alice nothing-to-see");
  EXPECT_FALSE(log.Verify());
}

TEST(SecureLogTest, ReplicaDivergenceDetected) {
  SecureLog log;
  log.Append("a", 1);
  size_t replica = log.AddReplica();
  log.Append("b", 2);
  EXPECT_TRUE(log.MatchesReplica(replica));
  log.TamperForTest(1, "b-tampered");
  EXPECT_FALSE(log.MatchesReplica(replica));
}

TEST(PolicyManagerTest, PerClassAndPerAdminRules) {
  PolicyManager policy;
  ClassPolicy p;
  p.allowed_verbs = {"ps", "kill"};
  p.denied_for_admin["mallory"] = {"kill"};
  policy.SetPolicy("T-5", p);
  EXPECT_TRUE(policy.IsAllowed("T-5", "ps", "alice"));
  EXPECT_TRUE(policy.IsAllowed("T-5", "kill", "alice"));
  EXPECT_FALSE(policy.IsAllowed("T-5", "reboot", "alice"));
  EXPECT_FALSE(policy.IsAllowed("T-5", "kill", "mallory"));
  // Unknown class falls back to the (deny-all) default.
  EXPECT_FALSE(policy.IsAllowed("T-99", "ps", "alice"));
}

class BrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_pid_ = *kernel_.Clone(1, "PermissionBroker", 0);
    ClassPolicy standard;
    standard.allowed_verbs = {kVerbPs, kVerbKill, kVerbReadFile, kVerbInstall,
                              kVerbRestartService};
    policy_.SetPolicy("T-1", standard);
    broker_ = std::make_unique<PermissionBroker>(&kernel_, broker_pid_, &policy_, &channel_);
    (void)broker_->BindTicket("TKT-1", "T-1");
    client_ = std::make_unique<BrokerClient>(&channel_, "TKT-1", "alice");
  }

  witos::Kernel kernel_{"host"};
  witos::Pid broker_pid_ = witos::kNoPid;
  PolicyManager policy_;
  RpcChannel channel_;
  std::unique_ptr<PermissionBroker> broker_;
  std::unique_ptr<BrokerClient> client_;
};

TEST_F(BrokerTest, PsShowsHostProcesses) {
  auto out = client_->Request(kVerbPs, {}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("init"), std::string::npos);
  EXPECT_NE(out->find("PermissionBroker"), std::string::npos);
}

TEST_F(BrokerTest, UnprivilegedClientRejectedLocally) {
  auto out = client_->Request(kVerbPs, {}, /*uid=*/1000);
  EXPECT_EQ(out.error(), witos::Err::kPerm);
  // The request never reached the broker.
  EXPECT_TRUE(broker_->EventsSnapshot().empty());
}

TEST_F(BrokerTest, DisallowedVerbDeniedAndLogged) {
  auto out = client_->Request(kVerbReboot, {}, witos::kRootUid);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error(), witos::Err::kPerm);
  auto events = broker_->EventsSnapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].granted);
  EXPECT_EQ(broker_->log().size(), 1u);
  EXPECT_EQ(broker_->log().SnapshotEntries()[0].payload.substr(0, 4), "DENY");
  EXPECT_EQ(kernel_.audit().CountEvent(witos::AuditEvent::kBrokerDenied), 1u);
}

TEST_F(BrokerTest, GrantedRequestsAreChainLogged) {
  ASSERT_TRUE(client_->Request(kVerbPs, {}, witos::kRootUid).ok());
  ASSERT_TRUE(client_->Request(kVerbRestartService, {"sshd"}, witos::kRootUid).ok());
  EXPECT_EQ(broker_->log().size(), 2u);
  EXPECT_TRUE(broker_->log().Verify());
  EXPECT_EQ(kernel_.audit().CountEvent(witos::AuditEvent::kBrokerRequest), 2u);
}

TEST_F(BrokerTest, KillExecutesOnBehalf) {
  witos::Pid victim = *kernel_.Clone(1, "runaway", 0);
  auto out = client_->Request(kVerbKill, {std::to_string(victim)}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(kernel_.ProcessAlive(victim));
}

TEST_F(BrokerTest, ReadFileExecutesWithHostView) {
  ASSERT_TRUE(kernel_.WriteFile(1, "/etc/motd", "host motd").ok());
  auto out = client_->Request(kVerbReadFile, {"/etc/motd"}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "host motd");
}

TEST_F(BrokerTest, InstallWritesPackage) {
  ASSERT_TRUE(kernel_.MkDir(1, "/usr/progs").ok());
  auto out = client_->Request(kVerbInstall, {"toolbox"}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(kernel_.ReadFile(1, "/usr/progs/toolbox").ok());
}

TEST_F(BrokerTest, UnknownVerbIsNoSys) {
  ClassPolicy open;
  open.allow_all = true;
  policy_.SetPolicy("T-1", open);
  auto out = client_->Request("frobnicate", {}, witos::kRootUid);
  ASSERT_FALSE(out.ok());
  // Typed end-to-end: ENOSYS crosses the wire as an enum, not a string.
  EXPECT_EQ(out.error(), witos::Err::kNoSys);
}

TEST_F(BrokerTest, KillOfMissingProcessIsTypedSrch) {
  auto out = client_->Request(kVerbKill, {"99999"}, witos::kRootUid);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), witos::Err::kSrch);
}

TEST_F(BrokerTest, CustomVerbDispatch) {
  ClassPolicy open;
  open.allow_all = true;
  policy_.SetPolicy("T-1", open);
  broker_->RegisterVerb("custom", [](const RpcRequest& req) {
    RpcResponse resp;
    resp.ok = true;
    resp.payload = "custom:" + req.args[0];
    return resp;
  });
  auto out = client_->Request("custom", {"arg"}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "custom:arg");
}

TEST_F(BrokerTest, PipelinedBatchAuditsEveryOp) {
  // Three queued ops ride one batch: two granted, one denied by policy.
  client_->Begin(witos::kRootUid);
  size_t i_ps = client_->Queue(kVerbPs, {});
  size_t i_restart = client_->Queue(kVerbRestartService, {"sshd"});
  size_t i_reboot = client_->Queue(kVerbReboot, {});  // not in T-1's verb set
  EXPECT_EQ(client_->pending(), 3u);
  auto results = client_->Flush();
  EXPECT_EQ(client_->pending(), 0u);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[i_ps].ok());
  EXPECT_NE(results[i_ps]->find("init"), std::string::npos);
  EXPECT_TRUE(results[i_restart].ok());
  ASSERT_FALSE(results[i_reboot].ok());
  EXPECT_EQ(results[i_reboot].error(), witos::Err::kPerm);

  // Per-op audit trail (Table 1): N sub-ops produce N broker events, N
  // secure-log entries and N kernel audit records — batching only amortizes
  // the wire and the critical sections.
  auto events = broker_->EventsSnapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[0].granted);
  EXPECT_TRUE(events[1].granted);
  EXPECT_FALSE(events[2].granted);
  EXPECT_EQ(events[2].verb, kVerbReboot);
  EXPECT_EQ(broker_->log().size(), 3u);
  EXPECT_TRUE(broker_->log().Verify());
  EXPECT_EQ(kernel_.audit().CountEvent(witos::AuditEvent::kBrokerRequest), 2u);
  EXPECT_EQ(kernel_.audit().CountEvent(witos::AuditEvent::kBrokerDenied), 1u);

  // The whole batch crossed the wire as exactly two frames (request +
  // response) in one call.
  EXPECT_EQ(channel_.frames(), 2u);
  EXPECT_EQ(channel_.batch_calls(), 1u);
}

TEST_F(BrokerTest, BatchMatchesSequentialRequests) {
  // Law: a flushed batch answers each op exactly as N sequential Request()
  // calls would, and leaves the same audit trail behind.
  client_->Begin(witos::kRootUid);
  client_->Queue(kVerbPs, {});
  client_->Queue(kVerbReboot, {});
  auto batched = client_->Flush();
  size_t log_after_batch = broker_->log().size();

  auto seq_ps = client_->Request(kVerbPs, {}, witos::kRootUid);
  auto seq_reboot = client_->Request(kVerbReboot, {}, witos::kRootUid);
  ASSERT_EQ(batched.size(), 2u);
  EXPECT_EQ(batched[0].ok(), seq_ps.ok());
  EXPECT_EQ(*batched[0], *seq_ps);
  EXPECT_EQ(batched[1].ok(), seq_reboot.ok());
  EXPECT_EQ(batched[1].error(), seq_reboot.error());
  EXPECT_EQ(broker_->log().size(), log_after_batch * 2);
  EXPECT_TRUE(broker_->log().Verify());
}

TEST_F(BrokerTest, UnprivilegedBatchRejectedLocally) {
  client_->Begin(/*uid=*/1000);
  client_->Queue(kVerbPs, {});
  client_->Queue(kVerbKill, {"7"});
  auto results = client_->Flush();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].error(), witos::Err::kPerm);
  EXPECT_EQ(results[1].error(), witos::Err::kPerm);
  // Nothing crossed the wire and nothing reached the broker.
  EXPECT_EQ(channel_.frames(), 0u);
  EXPECT_TRUE(broker_->EventsSnapshot().empty());
  EXPECT_EQ(broker_->log().size(), 0u);
}

TEST_F(BrokerTest, EmptyFlushIsFree) {
  client_->Begin(witos::kRootUid);
  auto results = client_->Flush();
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(channel_.frames(), 0u);
}

TEST_F(BrokerTest, BeginDiscardsAbandonedPipeline) {
  client_->Begin(witos::kRootUid);
  client_->Queue(kVerbReboot, {});
  client_->Begin(witos::kRootUid);
  client_->Queue(kVerbPs, {});
  auto results = client_->Flush();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
  auto events = broker_->EventsSnapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].verb, kVerbPs);
}

TEST(AnomalyTest, UnusualVerbFlagged) {
  std::vector<BrokerEvent> history;
  for (int i = 0; i < 200; ++i) {
    history.push_back({static_cast<uint64_t>(i) * uint64_t{1000000000}, "alice", "T", "T-1",
                       "ps", {}, true});
  }
  AnomalyDetector detector;
  detector.Fit(history);
  BrokerEvent usual{500, "alice", "T", "T-1", "ps", {}, true};
  BrokerEvent weird{501, "alice", "T", "T-8", "read_file", {"/etc/shadow"}, true};
  EXPECT_LT(detector.Surprise(usual), detector.Surprise(weird));
  auto scores = detector.Analyze({usual, weird});
  EXPECT_FALSE(scores[0].flagged);
  EXPECT_TRUE(scores[1].flagged);
}

TEST(AnomalyTest, RateBurstFlagged) {
  std::vector<BrokerEvent> history;
  AnomalyDetector::Options options;
  options.surprise_threshold = 100.0;  // disable the categorical detector
  AnomalyDetector detector(options);
  // One request per minute for an hour, then 50 in one minute.
  std::vector<BrokerEvent> stream;
  for (int i = 0; i < 60; ++i) {
    stream.push_back({static_cast<uint64_t>(i) * uint64_t{60000000000}, "bob", "T", "T-1",
                      "ps", {}, true});
  }
  for (int i = 0; i < 50; ++i) {
    stream.push_back({uint64_t{61} * uint64_t{60000000000} + static_cast<uint64_t>(i), "bob", "T", "T-1",
                      "read_file", {}, true});
  }
  detector.Fit(stream);
  auto scores = detector.Analyze(stream);
  size_t flagged = 0;
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_FALSE(scores[i].flagged);
  }
  for (size_t i = 60; i < scores.size(); ++i) {
    flagged += scores[i].flagged ? 1u : 0u;
  }
  EXPECT_EQ(flagged, 50u);
}

}  // namespace
}  // namespace witbroker
