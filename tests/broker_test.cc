// Tests for the permission-broker stack: wire format, RPC framing, secure
// log, policy manager, broker semantics and anomaly detection.

#include <gtest/gtest.h>

#include "src/broker/anomaly.h"
#include "src/broker/broker.h"
#include "src/broker/securelog.h"

namespace witbroker {
namespace {

TEST(WireTest, RoundTripPrimitives) {
  WireWriter writer;
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x1122334455667788ull);
  writer.PutString("hello");
  writer.PutStringList({"a", "", "ccc"});
  writer.PutBool(true);
  WireReader reader(writer.data());
  EXPECT_EQ(*reader.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*reader.GetU64(), 0x1122334455667788ull);
  EXPECT_EQ(*reader.GetString(), "hello");
  EXPECT_EQ(*reader.GetStringList(), (std::vector<std::string>{"a", "", "ccc"}));
  EXPECT_TRUE(*reader.GetBool());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireTest, TruncatedInputRejected) {
  WireWriter writer;
  writer.PutString("hello");
  std::string data = writer.data();
  data.resize(data.size() - 2);
  WireReader reader(data);
  EXPECT_FALSE(reader.GetString().ok());
}

TEST(RpcTest, RequestResponseRoundTrip) {
  RpcRequest req;
  req.method = "ps";
  req.args = {"-a"};
  req.uid = 0;
  req.caller_pid = 42;
  req.ticket_id = "TKT-1";
  req.admin = "alice";
  auto decoded = RpcRequest::Deserialize(req.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->method, "ps");
  EXPECT_EQ(decoded->args, req.args);
  EXPECT_EQ(decoded->caller_pid, 42);
  EXPECT_EQ(decoded->admin, "alice");

  RpcResponse resp;
  resp.ok = true;
  resp.payload = "PID...";
  auto decoded_resp = RpcResponse::Deserialize(resp.Serialize());
  ASSERT_TRUE(decoded_resp.ok());
  EXPECT_TRUE(decoded_resp->ok);
  EXPECT_EQ(decoded_resp->payload, "PID...");
}

TEST(RpcTest, TrailingGarbageRejected) {
  RpcRequest req;
  req.method = "ps";
  std::string frame = req.Serialize() + "junk";
  EXPECT_FALSE(RpcRequest::Deserialize(frame).ok());
}

TEST(RpcTest, UnboundChannelRefusesConnections) {
  RpcChannel channel;
  RpcRequest req;
  req.method = "ps";
  EXPECT_EQ(channel.Call(req).error(), witos::Err::kConnRefused);
}

TEST(SecureLogTest, ChainVerifies) {
  SecureLog log;
  log.Append("entry one", 100);
  log.Append("entry two", 200);
  log.Append("entry three", 300);
  EXPECT_TRUE(log.Verify());
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.entries()[1].prev_hash, log.entries()[0].hash);
}

TEST(SecureLogTest, TamperingDetected) {
  SecureLog log;
  log.Append("GRANT alice ps", 100);
  log.Append("GRANT alice kill 7", 200);
  EXPECT_TRUE(log.Verify());
  log.TamperForTest(0, "GRANT alice nothing-to-see");
  EXPECT_FALSE(log.Verify());
}

TEST(SecureLogTest, ReplicaDivergenceDetected) {
  SecureLog log;
  log.Append("a", 1);
  size_t replica = log.AddReplica();
  log.Append("b", 2);
  EXPECT_TRUE(log.MatchesReplica(replica));
  log.TamperForTest(1, "b-tampered");
  EXPECT_FALSE(log.MatchesReplica(replica));
}

TEST(PolicyManagerTest, PerClassAndPerAdminRules) {
  PolicyManager policy;
  ClassPolicy p;
  p.allowed_verbs = {"ps", "kill"};
  p.denied_for_admin["mallory"] = {"kill"};
  policy.SetPolicy("T-5", p);
  EXPECT_TRUE(policy.IsAllowed("T-5", "ps", "alice"));
  EXPECT_TRUE(policy.IsAllowed("T-5", "kill", "alice"));
  EXPECT_FALSE(policy.IsAllowed("T-5", "reboot", "alice"));
  EXPECT_FALSE(policy.IsAllowed("T-5", "kill", "mallory"));
  // Unknown class falls back to the (deny-all) default.
  EXPECT_FALSE(policy.IsAllowed("T-99", "ps", "alice"));
}

class BrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_pid_ = *kernel_.Clone(1, "PermissionBroker", 0);
    ClassPolicy standard;
    standard.allowed_verbs = {kVerbPs, kVerbKill, kVerbReadFile, kVerbInstall,
                              kVerbRestartService};
    policy_.SetPolicy("T-1", standard);
    broker_ = std::make_unique<PermissionBroker>(&kernel_, broker_pid_, &policy_, &channel_);
    broker_->BindTicket("TKT-1", "T-1");
    client_ = std::make_unique<BrokerClient>(&channel_, "TKT-1", "alice");
  }

  witos::Kernel kernel_{"host"};
  witos::Pid broker_pid_ = witos::kNoPid;
  PolicyManager policy_;
  RpcChannel channel_;
  std::unique_ptr<PermissionBroker> broker_;
  std::unique_ptr<BrokerClient> client_;
};

TEST_F(BrokerTest, PsShowsHostProcesses) {
  auto out = client_->Request(kVerbPs, {}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("init"), std::string::npos);
  EXPECT_NE(out->find("PermissionBroker"), std::string::npos);
}

TEST_F(BrokerTest, UnprivilegedClientRejectedLocally) {
  auto out = client_->Request(kVerbPs, {}, /*uid=*/1000);
  EXPECT_EQ(out.error(), witos::Err::kPerm);
  // The request never reached the broker.
  EXPECT_TRUE(broker_->events().empty());
}

TEST_F(BrokerTest, DisallowedVerbDeniedAndLogged) {
  auto out = client_->Request(kVerbReboot, {}, witos::kRootUid);
  EXPECT_FALSE(out.ok());
  ASSERT_EQ(broker_->events().size(), 1u);
  EXPECT_FALSE(broker_->events()[0].granted);
  EXPECT_EQ(broker_->log().size(), 1u);
  EXPECT_EQ(broker_->log().entries()[0].payload.substr(0, 4), "DENY");
  EXPECT_EQ(kernel_.audit().CountEvent(witos::AuditEvent::kBrokerDenied), 1u);
}

TEST_F(BrokerTest, GrantedRequestsAreChainLogged) {
  ASSERT_TRUE(client_->Request(kVerbPs, {}, witos::kRootUid).ok());
  ASSERT_TRUE(client_->Request(kVerbRestartService, {"sshd"}, witos::kRootUid).ok());
  EXPECT_EQ(broker_->log().size(), 2u);
  EXPECT_TRUE(broker_->log().Verify());
  EXPECT_EQ(kernel_.audit().CountEvent(witos::AuditEvent::kBrokerRequest), 2u);
}

TEST_F(BrokerTest, KillExecutesOnBehalf) {
  witos::Pid victim = *kernel_.Clone(1, "runaway", 0);
  auto out = client_->Request(kVerbKill, {std::to_string(victim)}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(kernel_.ProcessAlive(victim));
}

TEST_F(BrokerTest, ReadFileExecutesWithHostView) {
  ASSERT_TRUE(kernel_.WriteFile(1, "/etc/motd", "host motd").ok());
  auto out = client_->Request(kVerbReadFile, {"/etc/motd"}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "host motd");
}

TEST_F(BrokerTest, InstallWritesPackage) {
  ASSERT_TRUE(kernel_.MkDir(1, "/usr/progs").ok());
  auto out = client_->Request(kVerbInstall, {"toolbox"}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(kernel_.ReadFile(1, "/usr/progs/toolbox").ok());
}

TEST_F(BrokerTest, UnknownVerbIsNoSys) {
  ClassPolicy open;
  open.allow_all = true;
  policy_.SetPolicy("T-1", open);
  auto out = client_->Request("frobnicate", {}, witos::kRootUid);
  EXPECT_FALSE(out.ok());
}

TEST_F(BrokerTest, CustomVerbDispatch) {
  ClassPolicy open;
  open.allow_all = true;
  policy_.SetPolicy("T-1", open);
  broker_->RegisterVerb("custom", [](const RpcRequest& req) {
    RpcResponse resp;
    resp.ok = true;
    resp.payload = "custom:" + req.args[0];
    return resp;
  });
  auto out = client_->Request("custom", {"arg"}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "custom:arg");
}

TEST(AnomalyTest, UnusualVerbFlagged) {
  std::vector<BrokerEvent> history;
  for (int i = 0; i < 200; ++i) {
    history.push_back({static_cast<uint64_t>(i) * uint64_t{1000000000}, "alice", "T", "T-1",
                       "ps", {}, true});
  }
  AnomalyDetector detector;
  detector.Fit(history);
  BrokerEvent usual{500, "alice", "T", "T-1", "ps", {}, true};
  BrokerEvent weird{501, "alice", "T", "T-8", "read_file", {"/etc/shadow"}, true};
  EXPECT_LT(detector.Surprise(usual), detector.Surprise(weird));
  auto scores = detector.Analyze({usual, weird});
  EXPECT_FALSE(scores[0].flagged);
  EXPECT_TRUE(scores[1].flagged);
}

TEST(AnomalyTest, RateBurstFlagged) {
  std::vector<BrokerEvent> history;
  AnomalyDetector::Options options;
  options.surprise_threshold = 100.0;  // disable the categorical detector
  AnomalyDetector detector(options);
  // One request per minute for an hour, then 50 in one minute.
  std::vector<BrokerEvent> stream;
  for (int i = 0; i < 60; ++i) {
    stream.push_back({static_cast<uint64_t>(i) * uint64_t{60000000000}, "bob", "T", "T-1",
                      "ps", {}, true});
  }
  for (int i = 0; i < 50; ++i) {
    stream.push_back({uint64_t{61} * uint64_t{60000000000} + static_cast<uint64_t>(i), "bob", "T", "T-1",
                      "read_file", {}, true});
  }
  detector.Fit(stream);
  auto scores = detector.Analyze(stream);
  size_t flagged = 0;
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_FALSE(scores[i].flagged);
  }
  for (size_t i = 60; i < scores.size(); ++i) {
    flagged += scores[i].flagged ? 1u : 0u;
  }
  EXPECT_EQ(flagged, 50u);
}

}  // namespace
}  // namespace witbroker
