// Tests for the permission-broker stack: wire format, RPC framing, secure
// log, policy manager, broker semantics and anomaly detection.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/broker/anomaly.h"
#include "src/broker/broker.h"
#include "src/broker/securelog.h"

namespace witbroker {
namespace {

TEST(WireTest, RoundTripPrimitives) {
  WireWriter writer;
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x1122334455667788ull);
  writer.PutString("hello");
  writer.PutStringList({"a", "", "ccc"});
  writer.PutBool(true);
  WireReader reader(writer.data());
  EXPECT_EQ(*reader.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*reader.GetU64(), 0x1122334455667788ull);
  EXPECT_EQ(*reader.GetString(), "hello");
  EXPECT_EQ(*reader.GetStringList(), (std::vector<std::string>{"a", "", "ccc"}));
  EXPECT_TRUE(*reader.GetBool());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireTest, TruncatedInputRejected) {
  WireWriter writer;
  writer.PutString("hello");
  std::string data = writer.data();
  data.resize(data.size() - 2);
  WireReader reader(data);
  EXPECT_FALSE(reader.GetString().ok());
}

TEST(RpcTest, RequestResponseRoundTrip) {
  RpcRequest req;
  req.method = "ps";
  req.args = {"-a"};
  req.uid = 0;
  req.caller_pid = 42;
  req.ticket_id = "TKT-1";
  req.admin = "alice";
  auto decoded = RpcRequest::Deserialize(req.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->method, "ps");
  EXPECT_EQ(decoded->args, req.args);
  EXPECT_EQ(decoded->caller_pid, 42);
  EXPECT_EQ(decoded->admin, "alice");

  RpcResponse resp;
  resp.ok = true;
  resp.payload = "PID...";
  auto decoded_resp = RpcResponse::Deserialize(resp.Serialize());
  ASSERT_TRUE(decoded_resp.ok());
  EXPECT_TRUE(decoded_resp->ok);
  EXPECT_EQ(decoded_resp->payload, "PID...");
}

TEST(RpcTest, BatchRoundTripLaw) {
  // The round-trip law: Deserialize(Serialize(b)) == b for any well-formed
  // batch, and the response side likewise — positional order preserved.
  RpcBatchRequest batch;
  batch.uid = witos::kRootUid;
  batch.caller_pid = 42;
  batch.ticket_id = "TKT-20260805-00042";
  batch.admin = "admin03@it.example.org";
  batch.ops = {{"ps", {}}, {"kill", {"1042"}}, {"read_file", {"/var/log/syslog"}}};
  auto decoded = RpcBatchRequest::Deserialize(batch.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->uid, batch.uid);
  EXPECT_EQ(decoded->caller_pid, batch.caller_pid);
  EXPECT_EQ(decoded->ticket_id, batch.ticket_id);
  EXPECT_EQ(decoded->admin, batch.admin);
  ASSERT_EQ(decoded->ops.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->ops[i].method, batch.ops[i].method);
    EXPECT_EQ(decoded->ops[i].args, batch.ops[i].args);
  }

  RpcBatchResponse responses;
  RpcResponse granted;
  granted.ok = true;
  granted.payload = "PID...";
  RpcResponse denied;
  denied.err = witos::Err::kPerm;
  responses.responses = {granted, denied};
  auto decoded_resp = RpcBatchResponse::Deserialize(responses.Serialize());
  ASSERT_TRUE(decoded_resp.ok());
  ASSERT_EQ(decoded_resp->responses.size(), 2u);
  EXPECT_TRUE(decoded_resp->responses[0].ok);
  EXPECT_EQ(decoded_resp->responses[0].payload, "PID...");
  EXPECT_FALSE(decoded_resp->responses[1].ok);
  EXPECT_EQ(decoded_resp->responses[1].err, witos::Err::kPerm);
}

TEST(RpcTest, V1FramesStillDeserialize) {
  // A v1 peer sends headerless frames with the error as an errno-name
  // string; both must keep decoding after the v2 redesign.
  WireWriter req_writer;
  req_writer.PutString("ps");
  req_writer.PutStringList({"-a"});
  req_writer.PutU32(0);
  req_writer.PutU32(42);
  req_writer.PutString("TKT-1");
  req_writer.PutString("alice");
  auto req = RpcRequest::Deserialize(req_writer.data());
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->method, "ps");
  EXPECT_EQ(req->caller_pid, 42);

  WireWriter resp_writer;
  resp_writer.PutBool(false);
  resp_writer.PutString("EACCES");
  resp_writer.PutString("");
  auto resp = RpcResponse::Deserialize(resp_writer.data());
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->err, witos::Err::kAcces);
  EXPECT_EQ(resp->error_name(), "EACCES");

  // v1 success frames carried an empty error string, which must map to
  // kOk, not to the unknown-name fallback.
  WireWriter ok_writer;
  ok_writer.PutBool(true);
  ok_writer.PutString("");
  ok_writer.PutString("payload");
  auto ok_resp = RpcResponse::Deserialize(ok_writer.data());
  ASSERT_TRUE(ok_resp.ok());
  EXPECT_TRUE(ok_resp->ok);
  EXPECT_EQ(ok_resp->err, witos::Err::kOk);
}

TEST(RpcTest, TrailingGarbageRejected) {
  RpcRequest req;
  req.method = "ps";
  std::string frame = req.Serialize() + "junk";
  EXPECT_FALSE(RpcRequest::Deserialize(frame).ok());
}

TEST(RpcTest, UnboundChannelRefusesConnections) {
  RpcChannel channel;
  RpcRequest req;
  req.method = "ps";
  EXPECT_EQ(channel.Call(req).error(), witos::Err::kConnRefused);
}

TEST(SecureLogTest, ChainVerifies) {
  SecureLog log;
  log.Append("entry one", 100);
  log.Append("entry two", 200);
  log.Append("entry three", 300);
  EXPECT_TRUE(log.Verify());
  EXPECT_EQ(log.size(), 3u);
  const auto entries = log.SnapshotEntries();
  EXPECT_EQ(entries[1].prev_hash, entries[0].hash);
}

TEST(SecureLogTest, TamperingDetected) {
  SecureLog log;
  log.Append("GRANT alice ps", 100);
  log.Append("GRANT alice kill 7", 200);
  EXPECT_TRUE(log.Verify());
  log.TamperForTest(0, "GRANT alice nothing-to-see");
  EXPECT_FALSE(log.Verify());
}

TEST(SecureLogTest, ReplicaDivergenceDetected) {
  SecureLog log;
  log.Append("a", 1);
  size_t replica = log.AddReplica();
  log.Append("b", 2);
  EXPECT_TRUE(log.MatchesReplica(replica));
  log.TamperForTest(1, "b-tampered");
  EXPECT_FALSE(log.MatchesReplica(replica));
}

TEST(PolicyManagerTest, PerClassAndPerAdminRules) {
  PolicyManager policy;
  ClassPolicy p;
  p.allowed_verbs = {"ps", "kill"};
  p.denied_for_admin["mallory"] = {"kill"};
  policy.SetPolicy("T-5", p);
  EXPECT_TRUE(policy.IsAllowed("T-5", "ps", "alice"));
  EXPECT_TRUE(policy.IsAllowed("T-5", "kill", "alice"));
  EXPECT_FALSE(policy.IsAllowed("T-5", "reboot", "alice"));
  EXPECT_FALSE(policy.IsAllowed("T-5", "kill", "mallory"));
  // Unknown class falls back to the (deny-all) default.
  EXPECT_FALSE(policy.IsAllowed("T-99", "ps", "alice"));
}

class BrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_pid_ = *kernel_.Clone(1, "PermissionBroker", 0);
    ClassPolicy standard;
    standard.allowed_verbs = {kVerbPs, kVerbKill, kVerbReadFile, kVerbInstall,
                              kVerbRestartService};
    policy_.SetPolicy("T-1", standard);
    broker_ = std::make_unique<PermissionBroker>(&kernel_, broker_pid_, &policy_, &channel_);
    (void)broker_->BindTicket("TKT-1", "T-1");
    client_ = std::make_unique<BrokerClient>(&channel_, "TKT-1", "alice");
  }

  witos::Kernel kernel_{"host"};
  witos::Pid broker_pid_ = witos::kNoPid;
  PolicyManager policy_;
  RpcChannel channel_;
  std::unique_ptr<PermissionBroker> broker_;
  std::unique_ptr<BrokerClient> client_;
};

TEST_F(BrokerTest, PsShowsHostProcesses) {
  auto out = client_->Request(kVerbPs, {}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("init"), std::string::npos);
  EXPECT_NE(out->find("PermissionBroker"), std::string::npos);
}

TEST_F(BrokerTest, UnprivilegedClientRejectedLocally) {
  auto out = client_->Request(kVerbPs, {}, /*uid=*/1000);
  EXPECT_EQ(out.error(), witos::Err::kPerm);
  // The request never reached the broker.
  EXPECT_TRUE(broker_->EventsSnapshot().empty());
}

TEST_F(BrokerTest, DisallowedVerbDeniedAndLogged) {
  auto out = client_->Request(kVerbReboot, {}, witos::kRootUid);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.error(), witos::Err::kPerm);
  auto events = broker_->EventsSnapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].granted);
  EXPECT_EQ(broker_->log().size(), 1u);
  EXPECT_EQ(broker_->log().SnapshotEntries()[0].payload.substr(0, 4), "DENY");
  EXPECT_EQ(kernel_.audit().CountEvent(witos::AuditEvent::kBrokerDenied), 1u);
}

TEST_F(BrokerTest, GrantedRequestsAreChainLogged) {
  ASSERT_TRUE(client_->Request(kVerbPs, {}, witos::kRootUid).ok());
  ASSERT_TRUE(client_->Request(kVerbRestartService, {"sshd"}, witos::kRootUid).ok());
  EXPECT_EQ(broker_->log().size(), 2u);
  EXPECT_TRUE(broker_->log().Verify());
  EXPECT_EQ(kernel_.audit().CountEvent(witos::AuditEvent::kBrokerRequest), 2u);
}

TEST_F(BrokerTest, KillExecutesOnBehalf) {
  witos::Pid victim = *kernel_.Clone(1, "runaway", 0);
  auto out = client_->Request(kVerbKill, {std::to_string(victim)}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(kernel_.ProcessAlive(victim));
}

TEST_F(BrokerTest, ReadFileExecutesWithHostView) {
  ASSERT_TRUE(kernel_.WriteFile(1, "/etc/motd", "host motd").ok());
  auto out = client_->Request(kVerbReadFile, {"/etc/motd"}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "host motd");
}

TEST_F(BrokerTest, InstallWritesPackage) {
  ASSERT_TRUE(kernel_.MkDir(1, "/usr/progs").ok());
  auto out = client_->Request(kVerbInstall, {"toolbox"}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(kernel_.ReadFile(1, "/usr/progs/toolbox").ok());
}

TEST_F(BrokerTest, UnknownVerbIsNoSys) {
  ClassPolicy open;
  open.allow_all = true;
  policy_.SetPolicy("T-1", open);
  auto out = client_->Request("frobnicate", {}, witos::kRootUid);
  ASSERT_FALSE(out.ok());
  // Typed end-to-end: ENOSYS crosses the wire as an enum, not a string.
  EXPECT_EQ(out.error(), witos::Err::kNoSys);
}

TEST_F(BrokerTest, KillOfMissingProcessIsTypedSrch) {
  auto out = client_->Request(kVerbKill, {"99999"}, witos::kRootUid);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error(), witos::Err::kSrch);
}

TEST_F(BrokerTest, CustomVerbDispatch) {
  ClassPolicy open;
  open.allow_all = true;
  policy_.SetPolicy("T-1", open);
  broker_->RegisterVerb("custom", [](const RpcRequest& req) {
    RpcResponse resp;
    resp.ok = true;
    resp.payload = "custom:" + req.args[0];
    return resp;
  });
  auto out = client_->Request("custom", {"arg"}, witos::kRootUid);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "custom:arg");
}

TEST_F(BrokerTest, PipelinedBatchAuditsEveryOp) {
  // Three queued ops ride one batch: two granted, one denied by policy.
  client_->Begin(witos::kRootUid);
  size_t i_ps = client_->Queue(kVerbPs, {});
  size_t i_restart = client_->Queue(kVerbRestartService, {"sshd"});
  size_t i_reboot = client_->Queue(kVerbReboot, {});  // not in T-1's verb set
  EXPECT_EQ(client_->pending(), 3u);
  auto results = client_->Flush();
  EXPECT_EQ(client_->pending(), 0u);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[i_ps].ok());
  EXPECT_NE(results[i_ps]->find("init"), std::string::npos);
  EXPECT_TRUE(results[i_restart].ok());
  ASSERT_FALSE(results[i_reboot].ok());
  EXPECT_EQ(results[i_reboot].error(), witos::Err::kPerm);

  // Per-op audit trail (Table 1): N sub-ops produce N broker events, N
  // secure-log entries and N kernel audit records — batching only amortizes
  // the wire and the critical sections.
  auto events = broker_->EventsSnapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[0].granted);
  EXPECT_TRUE(events[1].granted);
  EXPECT_FALSE(events[2].granted);
  EXPECT_EQ(events[2].verb, kVerbReboot);
  EXPECT_EQ(broker_->log().size(), 3u);
  EXPECT_TRUE(broker_->log().Verify());
  EXPECT_EQ(kernel_.audit().CountEvent(witos::AuditEvent::kBrokerRequest), 2u);
  EXPECT_EQ(kernel_.audit().CountEvent(witos::AuditEvent::kBrokerDenied), 1u);

  // The whole batch crossed the wire as exactly two frames (request +
  // response) in one call.
  EXPECT_EQ(channel_.frames(), 2u);
  EXPECT_EQ(channel_.batch_calls(), 1u);
}

TEST_F(BrokerTest, BatchMatchesSequentialRequests) {
  // Law: a flushed batch answers each op exactly as N sequential Request()
  // calls would, and leaves the same audit trail behind.
  client_->Begin(witos::kRootUid);
  client_->Queue(kVerbPs, {});
  client_->Queue(kVerbReboot, {});
  auto batched = client_->Flush();
  size_t log_after_batch = broker_->log().size();

  auto seq_ps = client_->Request(kVerbPs, {}, witos::kRootUid);
  auto seq_reboot = client_->Request(kVerbReboot, {}, witos::kRootUid);
  ASSERT_EQ(batched.size(), 2u);
  EXPECT_EQ(batched[0].ok(), seq_ps.ok());
  EXPECT_EQ(*batched[0], *seq_ps);
  EXPECT_EQ(batched[1].ok(), seq_reboot.ok());
  EXPECT_EQ(batched[1].error(), seq_reboot.error());
  EXPECT_EQ(broker_->log().size(), log_after_batch * 2);
  EXPECT_TRUE(broker_->log().Verify());
}

TEST_F(BrokerTest, UnprivilegedBatchRejectedLocally) {
  client_->Begin(/*uid=*/1000);
  client_->Queue(kVerbPs, {});
  client_->Queue(kVerbKill, {"7"});
  auto results = client_->Flush();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].error(), witos::Err::kPerm);
  EXPECT_EQ(results[1].error(), witos::Err::kPerm);
  // Nothing crossed the wire and nothing reached the broker.
  EXPECT_EQ(channel_.frames(), 0u);
  EXPECT_TRUE(broker_->EventsSnapshot().empty());
  EXPECT_EQ(broker_->log().size(), 0u);
}

TEST_F(BrokerTest, EmptyFlushIsFree) {
  client_->Begin(witos::kRootUid);
  auto results = client_->Flush();
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(channel_.frames(), 0u);
}

TEST_F(BrokerTest, BeginDiscardsAbandonedPipeline) {
  client_->Begin(witos::kRootUid);
  client_->Queue(kVerbReboot, {});
  client_->Begin(witos::kRootUid);
  client_->Queue(kVerbPs, {});
  auto results = client_->Flush();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
  auto events = broker_->EventsSnapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].verb, kVerbPs);
}

// ---- Sharded broker hot state (DESIGN.md §14) ----

// A broker with partitioned event/ticket/log state. The policy has no rate
// limit, so concurrent Handle() calls never mutate shared policy state.
class ShardedBrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_pid_ = *kernel_.Clone(1, "PermissionBroker", 0);
    ClassPolicy standard;
    standard.allowed_verbs = {kVerbPs, kVerbRestartService};
    policy_.SetPolicy("T-1", standard);
    PermissionBroker::Options options;
    options.shards = 4;
    options.log_epoch_interval = 16;
    broker_ = std::make_unique<PermissionBroker>(&kernel_, broker_pid_, &policy_, &channel_,
                                                 options);
  }

  RpcRequest MakeRequest(const std::string& ticket, const std::string& verb) {
    RpcRequest request;
    request.method = verb;
    request.uid = witos::kRootUid;
    request.ticket_id = ticket;
    request.admin = "alice";
    return request;
  }

  witos::Kernel kernel_{"host"};
  witos::Pid broker_pid_ = witos::kNoPid;
  PolicyManager policy_;
  RpcChannel channel_;
  std::unique_ptr<PermissionBroker> broker_;
};

TEST_F(ShardedBrokerTest, TicketsSpreadAcrossShardsAndSnapshotsMerge) {
  EXPECT_EQ(broker_->shard_count(), 4u);
  for (int i = 0; i < 12; ++i) {
    std::string ticket = "TKT-" + std::to_string(i);
    ASSERT_TRUE(broker_->BindTicket(ticket, "T-1").ok());
    EXPECT_TRUE(broker_->IsTicketBound(ticket));
  }
  EXPECT_EQ(broker_->bound_ticket_count(), 12u);
  EXPECT_EQ(broker_->BindTicket("TKT-3", "T-8").error(), witos::Err::kExist);

  for (int i = 0; i < 12; ++i) {
    auto response = broker_->Handle(MakeRequest("TKT-" + std::to_string(i), kVerbPs));
    EXPECT_TRUE(response.ok);
  }
  auto events = broker_->EventsSnapshot();
  ASSERT_EQ(events.size(), 12u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time_ns, events[i].time_ns);  // merged timeline
  }
  // The secure log sharded with the tickets and still verifies end to end.
  EXPECT_EQ(broker_->log().size(), 12u);
  EXPECT_TRUE(broker_->log().Verify());
  size_t shard_total = 0;
  for (size_t s = 0; s < broker_->log().shard_count(); ++s) {
    auto shard = broker_->log().SnapshotShard(s);
    EXPECT_TRUE(SecureLog::VerifyChain(shard));
    shard_total += shard.size();
  }
  EXPECT_EQ(shard_total, 12u);

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(broker_->UnbindTicket("TKT-" + std::to_string(i)).ok());
  }
  EXPECT_EQ(broker_->bound_ticket_count(), 0u);
}

TEST_F(ShardedBrokerTest, BatchStaysOnOneShardChain) {
  ASSERT_TRUE(broker_->BindTicket("TKT-7", "T-1").ok());
  RpcBatchRequest batch;
  batch.uid = witos::kRootUid;
  batch.ticket_id = "TKT-7";
  batch.admin = "alice";
  for (int i = 0; i < 5; ++i) {
    RpcSubRequest op;
    op.method = kVerbRestartService;
    op.args = {"svc-" + std::to_string(i)};
    batch.ops.push_back(op);
  }
  auto response = broker_->HandleBatch(batch);
  ASSERT_EQ(response.responses.size(), 5u);
  // One ticket → one shard: exactly one shard chain holds all five per-op
  // entries, in queue order.
  size_t populated = 0;
  for (size_t s = 0; s < broker_->log().shard_count(); ++s) {
    auto shard = broker_->log().SnapshotShard(s);
    if (shard.empty()) {
      continue;
    }
    ++populated;
    ASSERT_EQ(shard.size(), 5u);
    EXPECT_TRUE(SecureLog::VerifyChain(shard));
    for (size_t i = 0; i < shard.size(); ++i) {
      EXPECT_NE(shard[i].payload.find("svc-" + std::to_string(i)), std::string::npos);
    }
  }
  EXPECT_EQ(populated, 1u);
}

TEST_F(ShardedBrokerTest, EventCapAccountsExactlyPerShard) {
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(broker_->BindTicket("TKT-" + std::to_string(i), "T-1").ok());
  }
  broker_->set_event_capacity(2);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 6; ++i) {
      broker_->Handle(MakeRequest("TKT-" + std::to_string(i), kVerbPs));
    }
  }
  // Every append is either still in some shard's window or counted dropped.
  auto events = broker_->EventsSnapshot();
  EXPECT_LE(events.size(), 2u * broker_->shard_count());
  EXPECT_EQ(events.size() + broker_->dropped_events(), 30u);
}

// Regression (was: events_.erase(events_.begin()) per append — O(window)
// once capped, so a *larger* retention window made every append slower,
// quadratically). The deque evicts from the front in O(1): total append
// cost must not scale with the configured window size. Shape check, not a
// microbenchmark — the wide-window run may not cost a multiple of the
// narrow-window run.
TEST(BrokerEventWindowPerfTest, CappedAppendCostIndependentOfWindowSize) {
  constexpr int kAppends = 20000;
  auto timed_run = [](size_t capacity) {
    witos::Kernel kernel("host");
    witos::Pid pid = *kernel.Clone(1, "PermissionBroker", 0);
    PolicyManager policy;  // default-deny: the cheap, window-only path
    RpcChannel channel;
    PermissionBroker broker(&kernel, pid, &policy, &channel);
    broker.set_event_capacity(capacity);
    RpcRequest request;
    request.method = kVerbPs;
    request.uid = witos::kRootUid;
    request.ticket_id = "TKT-PERF";
    request.admin = "alice";
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kAppends; ++i) {
      broker.Handle(request);
    }
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  int64_t narrow_ms = timed_run(16);
  int64_t wide_ms = timed_run(8192);
  // O(window)-per-append puts the wide run ~500x over the narrow one; O(1)
  // eviction keeps them within noise. The margin is deliberately huge so
  // only the quadratic shape can trip it.
  EXPECT_LT(wide_ms, narrow_ms * 8 + 250)
      << "capped append cost scales with the window size";
}

// Regression: set_event_capacity() used to write the cap with no lock while
// request paths appended — a data race (TSan) and a lost-resize hazard. Now
// it takes each shard lock and applies the cap immediately; this hammers a
// live broker from writer threads while the cap flips under them. Run under
// TSan (broker_test is in the TSan CI matrix) this is the race probe.
TEST(BrokerCapacityRaceTest, ResizeDuringTrafficIsRaceFree) {
  witos::Kernel kernel("host");
  witos::Pid pid = *kernel.Clone(1, "PermissionBroker", 0);
  PolicyManager policy;  // no rate limit → Handle never mutates policy state
  RpcChannel channel;
  PermissionBroker::Options options;
  options.shards = 2;
  PermissionBroker broker(&kernel, pid, &policy, &channel, options);

  constexpr int kPerWriter = 1500;
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      RpcRequest request;
      request.method = kVerbReboot;  // denied: event + log + audit, no dispatch
      request.uid = witos::kRootUid;
      request.ticket_id = "TKT-" + std::to_string(w);
      request.admin = "alice";
      for (int i = 0; i < kPerWriter; ++i) {
        broker.Handle(request);
      }
    });
  }
  std::thread resizer([&] {
    for (int i = 0; i < 400; ++i) {
      broker.set_event_capacity(i % 2 == 0 ? 8 : 64);
      (void)broker.EventsSnapshot();
      (void)broker.dropped_events();
    }
  });
  for (auto& t : writers) {
    t.join();
  }
  resizer.join();

  broker.set_event_capacity(4);
  EXPECT_LE(broker.EventsSnapshot().size(), 4u * broker.shard_count());
  // Conservation: every append is either retained or counted as dropped.
  EXPECT_EQ(broker.EventsSnapshot().size() + broker.dropped_events(),
            static_cast<size_t>(2 * kPerWriter));
  EXPECT_TRUE(broker.log().Verify());
  EXPECT_EQ(broker.log().size(), static_cast<size_t>(2 * kPerWriter));
}

TEST(AnomalyTest, UnusualVerbFlagged) {
  std::vector<BrokerEvent> history;
  for (int i = 0; i < 200; ++i) {
    history.push_back({static_cast<uint64_t>(i) * uint64_t{1000000000}, "alice", "T", "T-1",
                       "ps", {}, true});
  }
  AnomalyDetector detector;
  detector.Fit(history);
  BrokerEvent usual{500, "alice", "T", "T-1", "ps", {}, true};
  BrokerEvent weird{501, "alice", "T", "T-8", "read_file", {"/etc/shadow"}, true};
  EXPECT_LT(detector.Surprise(usual), detector.Surprise(weird));
  auto scores = detector.Analyze({usual, weird});
  EXPECT_FALSE(scores[0].flagged);
  EXPECT_TRUE(scores[1].flagged);
}

TEST(AnomalyTest, RateBurstFlagged) {
  std::vector<BrokerEvent> history;
  AnomalyDetector::Options options;
  options.surprise_threshold = 100.0;  // disable the categorical detector
  AnomalyDetector detector(options);
  // One request per minute for an hour, then 50 in one minute.
  std::vector<BrokerEvent> stream;
  for (int i = 0; i < 60; ++i) {
    stream.push_back({static_cast<uint64_t>(i) * uint64_t{60000000000}, "bob", "T", "T-1",
                      "ps", {}, true});
  }
  for (int i = 0; i < 50; ++i) {
    stream.push_back({uint64_t{61} * uint64_t{60000000000} + static_cast<uint64_t>(i), "bob", "T", "T-1",
                      "read_file", {}, true});
  }
  detector.Fit(stream);
  auto scores = detector.Analyze(stream);
  size_t flagged = 0;
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_FALSE(scores[i].flagged);
  }
  for (size_t i = 60; i < scores.size(); ++i) {
    flagged += scores[i].flagged ? 1u : 0u;
  }
  EXPECT_EQ(flagged, 50u);
}

}  // namespace
}  // namespace witbroker
