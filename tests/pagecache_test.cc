// Page-cache unit tests plus kernel-level consistency properties: whatever
// the cache does, reads through the kernel must always return what the
// filesystem holds.

#include "src/os/pagecache.h"

#include <gtest/gtest.h>

#include <random>

#include "src/os/kernel.h"

namespace witos {
namespace {

TEST(PageCacheTest, InsertLookupInvalidate) {
  PageCache cache;
  MemFs fs;
  EXPECT_EQ(cache.Lookup(&fs, "/f", 0), nullptr);
  cache.Insert(&fs, "/f", 0, "block-zero");
  ASSERT_NE(cache.Lookup(&fs, "/f", 0), nullptr);
  EXPECT_EQ(*cache.Lookup(&fs, "/f", 0), "block-zero");
  EXPECT_EQ(cache.bytes(), 10u);
  cache.InvalidateFile(&fs, "/f");
  EXPECT_EQ(cache.Lookup(&fs, "/f", 0), nullptr);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(PageCacheTest, RangeInvalidationIsBlockGranular) {
  PageCache cache;
  MemFs fs;
  cache.Insert(&fs, "/f", 0, "a");
  cache.Insert(&fs, "/f", 1, "b");
  cache.Insert(&fs, "/f", 2, "c");
  // Invalidate bytes inside block 1 only.
  cache.InvalidateRange(&fs, "/f", PageCache::kBlockSize + 5, 10);
  EXPECT_NE(cache.Lookup(&fs, "/f", 0), nullptr);
  EXPECT_EQ(cache.Lookup(&fs, "/f", 1), nullptr);
  EXPECT_NE(cache.Lookup(&fs, "/f", 2), nullptr);
}

TEST(PageCacheTest, DistinctFilesAndFilesystemsAreDistinctKeys) {
  PageCache cache;
  MemFs fs_a;
  MemFs fs_b;
  cache.Insert(&fs_a, "/f", 0, "from-a");
  cache.Insert(&fs_b, "/f", 0, "from-b");
  cache.Insert(&fs_a, "/g", 0, "other-file");
  EXPECT_EQ(*cache.Lookup(&fs_a, "/f", 0), "from-a");
  EXPECT_EQ(*cache.Lookup(&fs_b, "/f", 0), "from-b");
  cache.InvalidateFile(&fs_a, "/f");
  EXPECT_EQ(cache.Lookup(&fs_a, "/f", 0), nullptr);
  EXPECT_NE(cache.Lookup(&fs_b, "/f", 0), nullptr);
  EXPECT_NE(cache.Lookup(&fs_a, "/g", 0), nullptr);
}

TEST(PageCacheTest, OverflowEvictsOldestFirstNotEverything) {
  PageCache cache(1024);
  MemFs fs;
  cache.Insert(&fs, "/a", 0, std::string(400, 'a'));
  cache.Insert(&fs, "/b", 0, std::string(400, 'b'));
  cache.Insert(&fs, "/c", 0, std::string(400, 'c'));
  // Only the oldest block had to go; the other two still fit.
  EXPECT_EQ(cache.Lookup(&fs, "/a", 0), nullptr);
  EXPECT_NE(cache.Lookup(&fs, "/b", 0), nullptr);
  EXPECT_NE(cache.Lookup(&fs, "/c", 0), nullptr);
  EXPECT_EQ(cache.bytes(), 800u);
  EXPECT_EQ(cache.evictions(), 1u);
  // Oversized blocks are simply not cached — and evict nothing.
  cache.Insert(&fs, "/huge", 0, std::string(4096, 'z'));
  EXPECT_EQ(cache.Lookup(&fs, "/huge", 0), nullptr);
  EXPECT_EQ(cache.bytes(), 800u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(PageCacheTest, ReinsertSameKeyKeepsBytesExactAndRefreshesOrder) {
  PageCache cache(1024);
  MemFs fs;
  cache.Insert(&fs, "/a", 0, std::string(400, 'a'));
  cache.Insert(&fs, "/b", 0, std::string(400, 'b'));
  // Overwriting a cached block replaces it in place: exact byte accounting,
  // not an eviction, and the block becomes the newest insertion.
  cache.Insert(&fs, "/a", 0, std::string(100, 'A'));
  EXPECT_EQ(cache.bytes(), 500u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Insert(&fs, "/c", 0, std::string(600, 'c'));
  EXPECT_EQ(cache.Lookup(&fs, "/b", 0), nullptr);  // /b was the oldest
  ASSERT_NE(cache.Lookup(&fs, "/a", 0), nullptr);
  EXPECT_EQ(cache.Lookup(&fs, "/a", 0)->size(), 100u);
  EXPECT_NE(cache.Lookup(&fs, "/c", 0), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(PageCacheTest, InvalidationsDoNotCountAsEvictions) {
  PageCache cache(1024);
  MemFs fs;
  cache.Insert(&fs, "/f", 0, std::string(200, 'x'));
  cache.InvalidateFile(&fs, "/f");
  cache.Insert(&fs, "/g", 0, std::string(200, 'y'));
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(KernelCacheTest, RepeatReadsHitCache) {
  Kernel kernel("host");
  std::string content(300 * 1024, 'q');  // spans three blocks
  kernel.root_fs().ProvisionFile("/big", content);
  EXPECT_EQ(*kernel.ReadFile(1, "/big"), content);
  uint64_t misses_after_first = kernel.page_cache().misses();
  EXPECT_GT(misses_after_first, 0u);
  EXPECT_EQ(*kernel.ReadFile(1, "/big"), content);
  EXPECT_EQ(kernel.page_cache().misses(), misses_after_first);  // all hits
  EXPECT_GT(kernel.page_cache().hits(), 0u);
}

TEST(KernelCacheTest, WriteThenReadIsCoherent) {
  Kernel kernel("host");
  kernel.root_fs().ProvisionFile("/f", std::string(256 * 1024, 'a'));
  ASSERT_EQ(kernel.ReadFile(1, "/f")->substr(0, 4), "aaaa");  // warm the cache
  // Overwrite a slice in the middle of block 0.
  auto fd = kernel.Open(1, "/f", kOpenWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel.Lseek(1, *fd, 100).ok());
  ASSERT_TRUE(kernel.Write(1, *fd, "UPDATED").ok());
  ASSERT_TRUE(kernel.Close(1, *fd).ok());
  std::string after = *kernel.ReadFile(1, "/f");
  EXPECT_EQ(after.substr(100, 7), "UPDATED");
  EXPECT_EQ(after.substr(0, 4), "aaaa");
}

TEST(PageCacheTest, MutationGenerationBumpsOnEveryInvalidation) {
  PageCache cache;
  MemFs fs;
  uint64_t g0 = cache.mutation_generation();
  cache.Insert(&fs, "/f", 0, "block");
  EXPECT_EQ(cache.mutation_generation(), g0);  // inserts are not mutations
  cache.InvalidateRange(&fs, "/f", 0, 1);
  uint64_t g1 = cache.mutation_generation();
  EXPECT_GT(g1, g0);
  // A zero-length invalidation is a no-op and must not look like a mutation.
  cache.InvalidateRange(&fs, "/f", 0, 0);
  EXPECT_EQ(cache.mutation_generation(), g1);
  cache.InvalidateFile(&fs, "/f");
  uint64_t g2 = cache.mutation_generation();
  EXPECT_GT(g2, g1);
  cache.Clear();
  EXPECT_GT(cache.mutation_generation(), g2);
}

TEST(KernelCacheTest, TruncateInvalidates) {
  Kernel kernel("host");
  kernel.root_fs().ProvisionFile("/f", std::string(1000, 'x'));
  ASSERT_EQ(kernel.ReadFile(1, "/f")->size(), 1000u);
  ASSERT_TRUE(kernel.Truncate(1, "/f", 10).ok());
  EXPECT_EQ(kernel.ReadFile(1, "/f")->size(), 10u);
}

TEST(KernelCacheTest, AppendGrowsPastCachedEofBlock) {
  Kernel kernel("host");
  ASSERT_TRUE(kernel.WriteFile(1, "/log", "line1\n").ok());
  EXPECT_EQ(*kernel.ReadFile(1, "/log"), "line1\n");  // caches the short block
  ASSERT_TRUE(kernel.WriteFile(1, "/log", "line2\n", /*append=*/true).ok());
  EXPECT_EQ(*kernel.ReadFile(1, "/log"), "line1\nline2\n");
}

TEST(KernelCacheTest, DropCachesForcesRefetch) {
  Kernel kernel("host");
  kernel.root_fs().ProvisionFile("/f", "content");
  ASSERT_TRUE(kernel.ReadFile(1, "/f").ok());
  uint64_t misses = kernel.page_cache().misses();
  kernel.DropCaches();
  ASSERT_TRUE(kernel.ReadFile(1, "/f").ok());
  EXPECT_GT(kernel.page_cache().misses(), misses);
}

// Property: a random sequence of writes/reads/truncates through the kernel
// always observes exactly the filesystem's ground truth.
class CacheConsistencySweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CacheConsistencySweep, RandomOpsStayCoherent) {
  Kernel kernel("host");
  const std::string path = "/workfile";
  ASSERT_TRUE(kernel.WriteFile(1, path, "").ok());
  std::string model;  // reference content
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> action(0, 3);
  std::uniform_int_distribution<size_t> offset_dist(0, 400000);
  std::uniform_int_distribution<size_t> len_dist(1, 200000);
  for (int step = 0; step < 60; ++step) {
    switch (action(rng)) {
      case 0: {  // positioned write
        size_t offset = std::min(offset_dist(rng), model.size());
        std::string chunk(len_dist(rng), static_cast<char>('a' + step % 26));
        auto fd = kernel.Open(1, path, kOpenWrite);
        ASSERT_TRUE(fd.ok());
        ASSERT_TRUE(kernel.Lseek(1, *fd, offset).ok());
        ASSERT_TRUE(kernel.Write(1, *fd, chunk).ok());
        ASSERT_TRUE(kernel.Close(1, *fd).ok());
        if (offset + chunk.size() > model.size()) {
          model.resize(offset + chunk.size(), '\0');
        }
        model.replace(offset, chunk.size(), chunk);
        break;
      }
      case 1: {  // full read must match the model
        EXPECT_EQ(*kernel.ReadFile(1, path), model);
        break;
      }
      case 2: {  // truncate
        size_t size = std::min(offset_dist(rng), model.size());
        ASSERT_TRUE(kernel.Truncate(1, path, size).ok());
        model.resize(size, '\0');
        break;
      }
      default: {  // random positioned read
        size_t offset = offset_dist(rng);
        size_t len = len_dist(rng);
        auto fd = kernel.Open(1, path, kOpenRead);
        ASSERT_TRUE(fd.ok());
        ASSERT_TRUE(kernel.Lseek(1, *fd, offset).ok());
        auto data = kernel.Read(1, *fd, len);
        ASSERT_TRUE(data.ok());
        std::string expected =
            offset >= model.size() ? "" : model.substr(offset, std::min(len, model.size() - offset));
        EXPECT_EQ(*data, expected);
        ASSERT_TRUE(kernel.Close(1, *fd).ok());
        break;
      }
    }
  }
  EXPECT_EQ(*kernel.ReadFile(1, path), model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheConsistencySweep, ::testing::Range(1u, 9u));

}  // namespace
}  // namespace witos
