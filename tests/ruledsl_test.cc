// Tests for the ITFS policy DSL and the Snort-flavoured sniffer rule DSL.

#include <gtest/gtest.h>

#include "src/fs/itfs.h"
#include "src/fs/ruledsl.h"
#include "src/net/snort_rules.h"
#include "src/os/memfs.h"

namespace witfs {
namespace {

TEST(RuleDslTest, ParsesFullPolicy) {
  const char* text = R"(
# organizational filtering policy
mode signature
scan-limit 4096
log-all off
deny ext:pdf,docx,xlsx name=no-documents
deny signature:jpeg,png,zip-office
deny path:/usr/watchit,/etc/watchit name=protect-watchit
log  path:/etc
deny ext:key write-only
)";
  std::string error;
  auto parsed = ParseItfsPolicy(text, &error);
  ASSERT_TRUE(parsed.ok()) << error;
  EXPECT_EQ(parsed->rule_count, 5u);
  EXPECT_EQ(parsed->policy.inspection_mode(), InspectionMode::kSignature);
  EXPECT_EQ(parsed->policy.content_scan_limit(), 4096u);
  EXPECT_FALSE(parsed->policy.log_all());
}

TEST(RuleDslTest, ParsedPolicyEnforces) {
  const char* text = R"(
deny ext:pdf name=no-pdf
deny path:/usr/watchit
log  path:/etc name=watch-etc
deny ext:conf write-only name=ro-conf
)";
  auto parsed = ParseItfsPolicy(text);
  ASSERT_TRUE(parsed.ok());
  const ItfsPolicy& policy = parsed->policy;
  EXPECT_TRUE(policy.Evaluate(ItfsOpKind::kOpen, "/home/x.pdf", "").deny);
  EXPECT_TRUE(policy.Evaluate(ItfsOpKind::kOpen, "/usr/watchit/bin", "").deny);
  auto log_hit = policy.Evaluate(ItfsOpKind::kOpen, "/etc/passwd", "");
  EXPECT_FALSE(log_hit.deny);
  EXPECT_EQ(log_hit.rule, "watch-etc");
  // write-only: reads pass, writes denied.
  EXPECT_FALSE(policy.Evaluate(ItfsOpKind::kOpen, "/etc/app.conf", "").deny);
  EXPECT_TRUE(policy.Evaluate(ItfsOpKind::kWrite, "/etc/app.conf", "").deny);
}

TEST(RuleDslTest, AllowIsTerminalButLogIsNot) {
  // An allow-list in the shape the policy miner emits: allow rules above a
  // default deny. The first matching allow must decide the access; a log
  // rule must not shield it from the deny.
  const char* text = R"(
log   path:/var name=watch-var
allow path:/var/log name=mined-allow-1
allow ext:txt name=mined-allow-txt
deny  path:/ name=default-deny
)";
  auto parsed = ParseItfsPolicy(text);
  ASSERT_TRUE(parsed.ok());
  const ItfsPolicy& policy = parsed->policy;
  auto allowed = policy.Evaluate(ItfsOpKind::kOpen, "/var/log/syslog", "");
  EXPECT_FALSE(allowed.deny);
  EXPECT_EQ(allowed.rule, "mined-allow-1");
  EXPECT_FALSE(policy.Evaluate(ItfsOpKind::kOpen, "/home/notes.txt", "").deny);
  // /var/run matches only the log rule, which grants no immunity: the
  // default deny still fires.
  auto denied = policy.Evaluate(ItfsOpKind::kOpen, "/var/run/app.pid", "");
  EXPECT_TRUE(denied.deny);
  EXPECT_EQ(denied.rule, "default-deny");
  // The compiled evaluator agrees on all three.
  ASSERT_NE(parsed->compiled, nullptr);
  EXPECT_FALSE(parsed->compiled->Evaluate(ItfsOpKind::kOpen, "/var/log/syslog", "").deny);
  EXPECT_EQ(parsed->compiled->Evaluate(ItfsOpKind::kOpen, "/var/log/syslog", "").rule,
            "mined-allow-1");
  EXPECT_TRUE(parsed->compiled->Evaluate(ItfsOpKind::kOpen, "/var/run/app.pid", "").deny);
}

TEST(RuleDslTest, ParsedPolicyWorksInsideItfs) {
  auto lower = std::make_shared<witos::MemFs>();
  lower->ProvisionFile("/home/report.pdf", "%PDF");
  lower->ProvisionFile("/home/notes.txt", "ok");
  auto parsed = ParseItfsPolicy("deny ext:pdf\n");
  ASSERT_TRUE(parsed.ok());
  Itfs itfs(lower, parsed->policy, witos::Credentials{});
  witos::Credentials admin;
  EXPECT_EQ(itfs.Open("/home/report.pdf", witos::kOpenRead, 0, admin).error(),
            witos::Err::kAcces);
  EXPECT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, admin).ok());
}

struct BadPolicyCase {
  const char* text;
  const char* why;
};

class BadPolicy : public ::testing::TestWithParam<BadPolicyCase> {};

TEST_P(BadPolicy, Rejected) {
  std::string error;
  auto parsed = ParseItfsPolicy(GetParam().text, &error);
  EXPECT_FALSE(parsed.ok()) << GetParam().why;
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(error.compare(0, 5, "line "), 0) << error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BadPolicy,
    ::testing::Values(BadPolicyCase{"permit ext:pdf\n", "unknown action"},
                      BadPolicyCase{"deny\n", "no selector"},
                      BadPolicyCase{"deny gibberish\n", "not a selector"},
                      BadPolicyCase{"deny signature:virus\n", "unknown class"},
                      BadPolicyCase{"deny color:red\n", "unknown selector kind"},
                      BadPolicyCase{"mode paranoid\n", "bad mode"},
                      BadPolicyCase{"scan-limit lots\n", "bad scan limit"},
                      BadPolicyCase{"log-all maybe\n", "bad log-all"}));

TEST(RuleDslTest, EmitsCompiledPolicy) {
  auto parsed = ParseItfsPolicy("deny ext:pdf name=no-pdf\nmode signature\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->compiled, nullptr);
  EXPECT_EQ(parsed->compiled->rule_count(), 1u);
  EXPECT_TRUE(parsed->compiled->Evaluate(ItfsOpKind::kOpen, "/home/x.pdf", "").deny);
  EXPECT_TRUE(parsed->diagnostics.empty());
}

TEST(RuleDslTest, DuplicateRuleNamesRejectedWithBothLines) {
  std::string error;
  auto parsed = ParseItfsPolicy(
      "deny ext:pdf name=dup\n"
      "deny ext:txt name=dup\n",
      &error);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), witos::Err::kInval);
  EXPECT_NE(error.find("duplicate rule name 'dup'"), std::string::npos) << error;
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_EQ(error.compare(0, 7, "line 2:"), 0) << error;
}

TEST(RuleDslTest, AutoNameCollidingWithExplicitNameRejected) {
  // The second rule is the first unnamed one, so it auto-names itself
  // "rule-1" — colliding with the explicit name on line 1.
  std::string error;
  auto parsed = ParseItfsPolicy(
      "deny ext:pdf name=rule-1\n"
      "deny ext:txt\n",
      &error);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(error.find("duplicate rule name"), std::string::npos) << error;
}

TEST(RuleDslTest, ShadowedRulesSurfaceAsDiagnostics) {
  auto parsed = ParseItfsPolicy(
      "deny ext:pdf,xlsx name=wide\n"
      "deny ext:pdf name=narrow\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->diagnostics.size(), 1u);
  EXPECT_EQ(parsed->diagnostics[0].kind, CompileDiagnostic::Kind::kShadowedRule);
  EXPECT_NE(parsed->diagnostics[0].message.find("narrow"), std::string::npos);
  EXPECT_NE(parsed->diagnostics[0].message.find("wide"), std::string::npos);
}

TEST(RuleDslTest, FileClassNamesRoundTrip) {
  for (FileClass cls : {FileClass::kText, FileClass::kJpeg, FileClass::kPdf,
                        FileClass::kZipOffice, FileClass::kEncrypted}) {
    EXPECT_EQ(FileClassFromName(FileClassName(cls)), cls);
  }
  EXPECT_EQ(FileClassFromName("virus"), FileClass::kUnknown);
}

}  // namespace
}  // namespace witfs

namespace witnet {
namespace {

TEST(SnortRulesTest, ParsesAndEnforces) {
  const char* text = R"(
# exfiltration defences
block signature:pdf,jpeg,zip-office name=no-doc-exfil
block entropy>7.2
block dst-not-in:10.0.0.0/8 name=org-only
alert content:"CONFIDENTIAL" name=keyword
)";
  Sniffer sniffer;
  std::string error;
  ASSERT_TRUE(LoadSnifferRules(&sniffer, text, &error).ok()) << error;

  // Document payload blocked.
  EXPECT_TRUE(
      sniffer.Inspect({Ipv4Addr(), Ipv4Addr(10, 0, 0, 1), 80, "%PDF-1.4 data"}, 0).blocked);
  // Off-org destination blocked.
  EXPECT_TRUE(
      sniffer.Inspect({Ipv4Addr(), Ipv4Addr(203, 0, 113, 9), 80, "plain"}, 0).blocked);
  // Keyword only alerts.
  auto result =
      sniffer.Inspect({Ipv4Addr(), Ipv4Addr(10, 0, 0, 1), 80, "this is CONFIDENTIAL"}, 0);
  EXPECT_FALSE(result.blocked);
  ASSERT_EQ(result.fired_rules.size(), 1u);
  EXPECT_EQ(result.fired_rules[0], "keyword");
  // Benign in-org traffic passes clean.
  EXPECT_FALSE(sniffer.Inspect({Ipv4Addr(), Ipv4Addr(10, 0, 0, 1), 80, "hello"}, 0).blocked);
}

TEST(SnortRulesTest, QuotedContentKeepsSpaces) {
  auto rules = ParseSnifferRules("alert content:\"top secret\"\n");
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ((*rules)[0].payload_contains, "top secret");
}

TEST(SnortRulesTest, BadRulesRejectedWithLineInfo) {
  std::string error;
  EXPECT_FALSE(ParseSnifferRules("drop signature:pdf\n", &error).ok());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(ParseSnifferRules("block entropy>high\n", &error).ok());
  EXPECT_FALSE(ParseSnifferRules("block dst-not-in:999.1.1.1\n", &error).ok());
  EXPECT_FALSE(ParseSnifferRules("block\n", &error).ok());
  EXPECT_FALSE(ParseSnifferRules("block content:unquoted\n", &error).ok());
}

}  // namespace
}  // namespace witnet
