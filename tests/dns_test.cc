// DNS tests: resolution goes through the namespace's network view — name
// lookup is confined like everything else.

#include "src/net/dns.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/workload/topology.h"

namespace witnet {
namespace {

class DnsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_.AddRecord("license-server", witload::kLicenseServer.addr);
    service_.AddRecord("software-repo", witload::kSoftwareRepo.addr);
    fabric_.AddEndpoint("ldap", kNameserver);
    fabric_.AddService(kNameserver, kDnsPort, service_.Handler());
    // The host namespace: full view.
    NetNsPayload& host = stack_.namespaces().GetOrCreate(kHostNs);
    host.AddDevice("eth0", Ipv4Addr(10, 0, 1, 50));
    host.AddRoute(Cidr::Any(), "eth0");
  }

  static constexpr witos::NsId kHostNs = 1;
  static constexpr witos::NsId kContainerNs = 2;
  const Ipv4Addr kNameserver{witload::kDirectoryServer.addr};
  Network fabric_;
  NetStack stack_{&fabric_};
  DnsService service_;
};

TEST_F(DnsTest, ResolvesFromHostView) {
  DnsResolver resolver(&stack_, kNameserver);
  auto addr = resolver.Resolve(kHostNs, "license-server");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(*addr, witload::kLicenseServer.addr);
  EXPECT_EQ(service_.queries(), 1u);
}

TEST_F(DnsTest, NxDomain) {
  DnsResolver resolver(&stack_, kNameserver);
  EXPECT_EQ(resolver.Resolve(kHostNs, "no-such-host").error(), witos::Err::kNoEnt);
}

TEST_F(DnsTest, CacheAvoidsRepeatQueries) {
  DnsResolver resolver(&stack_, kNameserver);
  ASSERT_TRUE(resolver.Resolve(kHostNs, "license-server").ok());
  ASSERT_TRUE(resolver.Resolve(kHostNs, "license-server").ok());
  EXPECT_EQ(service_.queries(), 1u);
  EXPECT_EQ(resolver.cache_size(), 1u);
  resolver.FlushCache();
  ASSERT_TRUE(resolver.Resolve(kHostNs, "license-server").ok());
  EXPECT_EQ(service_.queries(), 2u);
}

TEST_F(DnsTest, ConfinedNamespaceCannotResolve) {
  // A perforated container whose view excludes the nameserver.
  NetNsPayload& container = stack_.namespaces().GetOrCreate(kContainerNs);
  container.AddDevice("eth0", Ipv4Addr(10, 200, 0, 1));
  container.firewall.set_default_policy(FwAction::kDrop);
  container.AllowEndpoint(witload::kLicenseServer.addr, 0, "license-server");

  DnsResolver resolver(&stack_, kNameserver);
  auto addr = resolver.Resolve(kContainerNs, "license-server");
  EXPECT_FALSE(addr.ok());  // no route to the DNS server
  // Widen the view to include DNS (what the broker's net_allow would do):
  container.AllowEndpoint(kNameserver, kDnsPort, "ldap");
  EXPECT_TRUE(resolver.Resolve(kContainerNs, "license-server").ok());
}

TEST_F(DnsTest, PerNamespaceCacheKeys) {
  NetNsPayload& container = stack_.namespaces().GetOrCreate(kContainerNs);
  container.AddDevice("eth0", Ipv4Addr(10, 200, 0, 1));
  container.firewall.set_default_policy(FwAction::kDrop);
  DnsResolver resolver(&stack_, kNameserver);
  ASSERT_TRUE(resolver.Resolve(kHostNs, "license-server").ok());
  // The host's cached answer must not leak into the confined namespace.
  EXPECT_FALSE(resolver.Resolve(kContainerNs, "license-server").ok());
}

TEST_F(DnsTest, MalformedQueryGetsFormErr) {
  NetNsPayload& host = *stack_.namespaces().Find(kHostNs);
  (void)host;
  auto response = stack_.Request(kHostNs, kNameserver, kDnsPort, "garbage", 0);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, "FORMERR");
}

TEST(ClusterDnsTest, WholeOrgZoneServedFromDirectoryServer) {
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", Ipv4Addr(10, 0, 1, 50));
  DnsResolver resolver(&machine.net(), witload::kDirectoryServer.addr);
  witos::NsId host_ns = machine.NetNsOf(1);
  auto addr = resolver.Resolve(host_ns, "software-repo");
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(*addr, witload::kSoftwareRepo.addr);
  EXPECT_GE(cluster.dns().size(), 8u);
}

}  // namespace
}  // namespace witnet
