#include "src/os/memfs.h"

#include <gtest/gtest.h>

namespace witos {
namespace {

Credentials Root() { return Credentials{}; }

Credentials User(Uid uid) {
  Credentials cred;
  cred.uid = uid;
  cred.gid = uid;
  cred.caps = CapabilitySet::Empty();
  return cred;
}

class MemFsTest : public ::testing::Test {
 protected:
  MemFs fs_;
};

TEST_F(MemFsTest, CreateWriteRead) {
  auto st = fs_.Open("/hello.txt", kOpenCreate | kOpenWrite, 0644, Root());
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(fs_.WriteAt("/hello.txt", 0, "hi there", Root()).ok());
  std::string buf;
  auto n = fs_.ReadAt("/hello.txt", 0, 100, &buf, Root());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(buf, "hi there");
}

TEST_F(MemFsTest, ReadAtOffsetAndPastEof) {
  fs_.ProvisionFile("/f", "abcdef");
  std::string buf;
  ASSERT_TRUE(fs_.ReadAt("/f", 2, 2, &buf, Root()).ok());
  EXPECT_EQ(buf, "cd");
  auto n = fs_.ReadAt("/f", 10, 5, &buf, Root());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST_F(MemFsTest, WriteExtendsFile) {
  fs_.ProvisionFile("/f", "ab");
  ASSERT_TRUE(fs_.WriteAt("/f", 4, "xy", Root()).ok());
  auto st = fs_.GetAttr("/f", Root());
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 6u);
  std::string buf;
  ASSERT_TRUE(fs_.ReadAt("/f", 0, 10, &buf, Root()).ok());
  EXPECT_EQ(buf, std::string("ab\0\0xy", 6));
}

TEST_F(MemFsTest, OpenNonexistentFails) {
  EXPECT_EQ(fs_.Open("/nope", kOpenRead, 0, Root()).error(), Err::kNoEnt);
}

TEST_F(MemFsTest, OpenExclFailsOnExisting) {
  fs_.ProvisionFile("/f", "x");
  EXPECT_EQ(fs_.Open("/f", kOpenCreate | kOpenExcl | kOpenWrite, 0644, Root()).error(),
            Err::kExist);
}

TEST_F(MemFsTest, TruncOnOpenClearsContent) {
  fs_.ProvisionFile("/f", "content");
  ASSERT_TRUE(fs_.Open("/f", kOpenWrite | kOpenTrunc, 0644, Root()).ok());
  auto st = fs_.GetAttr("/f", Root());
  EXPECT_EQ(st->size, 0u);
}

TEST_F(MemFsTest, MkDirAndReadDir) {
  ASSERT_TRUE(fs_.MkDir("/d", 0755, Root()).ok());
  fs_.ProvisionFile("/d/a", "1");
  fs_.ProvisionFile("/d/b", "2");
  auto entries = fs_.ReadDir("/d", Root());
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].name, "a");
  EXPECT_EQ((*entries)[1].name, "b");
}

TEST_F(MemFsTest, MkDirExistingFails) {
  ASSERT_TRUE(fs_.MkDir("/d", 0755, Root()).ok());
  EXPECT_EQ(fs_.MkDir("/d", 0755, Root()).error(), Err::kExist);
}

TEST_F(MemFsTest, UnlinkAndRmdirSemantics) {
  fs_.ProvisionFile("/d/f", "x");
  EXPECT_EQ(fs_.Unlink("/d", Root()).error(), Err::kIsDir);
  EXPECT_EQ(fs_.RmDir("/d", Root()).error(), Err::kNotEmpty);
  ASSERT_TRUE(fs_.Unlink("/d/f", Root()).ok());
  ASSERT_TRUE(fs_.RmDir("/d", Root()).ok());
  EXPECT_EQ(fs_.GetAttr("/d", Root()).error(), Err::kNoEnt);
}

TEST_F(MemFsTest, RenameMovesNode) {
  fs_.ProvisionFile("/a/x", "data");
  fs_.ProvisionDir("/b");
  ASSERT_TRUE(fs_.Rename("/a/x", "/b/y", Root()).ok());
  EXPECT_EQ(fs_.GetAttr("/a/x", Root()).error(), Err::kNoEnt);
  std::string buf;
  ASSERT_TRUE(fs_.ReadAt("/b/y", 0, 10, &buf, Root()).ok());
  EXPECT_EQ(buf, "data");
}

TEST_F(MemFsTest, RenameIntoOwnSubtreeRejected) {
  fs_.ProvisionDir("/a/b");
  EXPECT_EQ(fs_.Rename("/a", "/a/b/c", Root()).error(), Err::kInval);
}

TEST_F(MemFsTest, PermissionDeniedForOtherUser) {
  fs_.ProvisionFile("/secret", "classified", 0, 0, 0600);
  std::string buf;
  EXPECT_EQ(fs_.ReadAt("/secret", 0, 10, &buf, User(1000)).error(), Err::kAcces);
  EXPECT_EQ(fs_.WriteAt("/secret", 0, "x", User(1000)).error(), Err::kAcces);
}

TEST_F(MemFsTest, DirectorySearchPermissionEnforced) {
  fs_.ProvisionFile("/locked/f", "x");
  Credentials root;
  ASSERT_TRUE(fs_.Chmod("/locked", 0700, root).ok());
  std::string buf;
  EXPECT_EQ(fs_.ReadAt("/locked/f", 0, 1, &buf, User(1000)).error(), Err::kAcces);
}

TEST_F(MemFsTest, ChmodOnlyOwnerOrDacOverride) {
  fs_.ProvisionFile("/f", "x", 1000, 1000, 0644);
  EXPECT_EQ(fs_.Chmod("/f", 0600, User(2000)).error(), Err::kPerm);
  EXPECT_TRUE(fs_.Chmod("/f", 0600, User(1000)).ok());
  EXPECT_TRUE(fs_.Chmod("/f", 0644, Root()).ok());
}

TEST_F(MemFsTest, ChownRequiresCapability) {
  fs_.ProvisionFile("/f", "x");
  EXPECT_EQ(fs_.Chown("/f", 1000, 1000, User(1000)).error(), Err::kPerm);
  EXPECT_TRUE(fs_.Chown("/f", 1000, 1000, Root()).ok());
  auto st = fs_.GetAttr("/f", Root());
  EXPECT_EQ(st->uid, 1000u);
}

TEST_F(MemFsTest, SymlinkRoundTrip) {
  fs_.ProvisionSymlink("/link", "/target");
  auto target = fs_.ReadLink("/link", Root());
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "/target");
  auto st = fs_.GetAttr("/link", Root());
  EXPECT_EQ(st->type, FileType::kSymlink);
  EXPECT_EQ(fs_.ReadLink("/nonlink", Root()).error(), Err::kNoEnt);
}

TEST_F(MemFsTest, DeviceNodes) {
  fs_.ProvisionDevice("/dev/mem", 1, 0600);
  auto st = fs_.GetAttr("/dev/mem", Root());
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->type, FileType::kCharDevice);
  EXPECT_EQ(st->rdev, 1u);
}

TEST_F(MemFsTest, StatFsTracksUsedBytes) {
  auto before = fs_.StatFs();
  fs_.ProvisionFile("/f", std::string(1000, 'x'));
  auto after = fs_.StatFs();
  EXPECT_EQ(after->used_bytes - before->used_bytes, 1000u);
  ASSERT_TRUE(fs_.Unlink("/f", Root()).ok());
  auto freed = fs_.StatFs();
  EXPECT_EQ(freed->used_bytes, before->used_bytes);
}

TEST_F(MemFsTest, TruncateAdjustsSize) {
  fs_.ProvisionFile("/f", "123456");
  ASSERT_TRUE(fs_.Truncate("/f", 3, Root()).ok());
  EXPECT_EQ(fs_.GetAttr("/f", Root())->size, 3u);
  ASSERT_TRUE(fs_.Truncate("/f", 8, Root()).ok());
  EXPECT_EQ(fs_.GetAttr("/f", Root())->size, 8u);
}

TEST_F(MemFsTest, ClockChargedForOperations) {
  SimClock clock;
  MemFs timed("ext4", &clock);
  timed.ProvisionFile("/f", std::string(1 << 20, 'a'));
  uint64_t before = clock.now_ns();
  std::string buf;
  ASSERT_TRUE(timed.ReadAt("/f", 0, 1 << 20, &buf, Root()).ok());
  EXPECT_GT(clock.now_ns(), before);
}

// Generation tracking: the contract is one-sided — a generation may change
// spuriously but must NEVER stay equal across a content-affecting mutation.
// These tests pin the "must change" half plus the uniqueness property that
// makes path-keyed caching safe across rename/recreate.

TEST_F(MemFsTest, GenerationChangesOnEveryMutation) {
  fs_.ProvisionFile("/f", "abc");
  uint64_t g0 = fs_.Generation("/f");
  ASSERT_NE(g0, kNoGeneration);

  ASSERT_TRUE(fs_.WriteAt("/f", 1, "X", Root()).ok());
  uint64_t g1 = fs_.Generation("/f");
  EXPECT_NE(g1, g0);

  ASSERT_TRUE(fs_.Truncate("/f", 1, Root()).ok());
  uint64_t g2 = fs_.Generation("/f");
  EXPECT_NE(g2, g1);

  ASSERT_TRUE(fs_.Open("/f", kOpenWrite | kOpenTrunc, 0, Root()).ok());
  uint64_t g3 = fs_.Generation("/f");
  EXPECT_NE(g3, g2);

  ASSERT_TRUE(fs_.Chmod("/f", 0600, Root()).ok());
  uint64_t g4 = fs_.Generation("/f");
  EXPECT_NE(g4, g3);

  ASSERT_TRUE(fs_.Chown("/f", 5, 5, Root()).ok());
  uint64_t g5 = fs_.Generation("/f");
  EXPECT_NE(g5, g4);

  // Reads are not mutations.
  std::string buf;
  ASSERT_TRUE(fs_.ReadAt("/f", 0, 1, &buf, Root()).ok());
  EXPECT_EQ(fs_.Generation("/f"), g5);
}

TEST_F(MemFsTest, GenerationUniqueAcrossRecreateAndRename) {
  fs_.ProvisionFile("/a", "one");
  uint64_t a0 = fs_.Generation("/a");
  ASSERT_TRUE(fs_.Unlink("/a", Root()).ok());
  EXPECT_EQ(fs_.Generation("/a"), kNoGeneration);
  fs_.ProvisionFile("/a", "two");
  // The recreated file must not reuse the old generation value.
  EXPECT_NE(fs_.Generation("/a"), a0);

  fs_.ProvisionFile("/b", "bee");
  uint64_t b0 = fs_.Generation("/b");
  ASSERT_TRUE(fs_.Rename("/b", "/c", Root()).ok());
  // Same bytes, new identity: the value visible at the target differs from
  // what the source ever reported.
  EXPECT_NE(fs_.Generation("/c"), b0);
  EXPECT_EQ(fs_.Generation("/b"), kNoGeneration);
}

TEST_F(MemFsTest, GenerationSharedAcrossHardLinks) {
  fs_.ProvisionFile("/orig", "data");
  ASSERT_TRUE(fs_.Link("/orig", "/alias", Root()).ok());
  uint64_t orig = fs_.Generation("/orig");
  EXPECT_EQ(fs_.Generation("/alias"), orig);
  // A write through one name is visible in the generation of the other.
  ASSERT_TRUE(fs_.WriteAt("/alias", 0, "DATA", Root()).ok());
  EXPECT_NE(fs_.Generation("/orig"), orig);
  EXPECT_EQ(fs_.Generation("/orig"), fs_.Generation("/alias"));
}

TEST_F(MemFsTest, GenerationUntrackedCases) {
  EXPECT_EQ(fs_.Generation("/missing"), kNoGeneration);
  ASSERT_TRUE(fs_.MkDir("/dir", 0755, Root()).ok());
  EXPECT_EQ(fs_.Generation("/dir"), kNoGeneration);
  EXPECT_EQ(fs_.Generation("relative"), kNoGeneration);
}

}  // namespace
}  // namespace witos
