// witprof tests (DESIGN.md §13): lock-contention profiling, cross-thread
// ticket timelines, the rolling-window SLO engine, the triggered flight
// recorder, and the exporter escaping contracts the recorder's JSON
// artifacts lean on. Ends with the acceptance scenario: a forced SLO breach
// on a live pipelined ServerPool must produce a flight-recorder dump whose
// spans cross at least two threads for one ticket.
//
// Tracer ring-drop and OpLog/broker retention accounting are covered in
// obs_test.cc; here the drop-reporting focus is the recorder's own
// suppression counters (dumps_dropped, spans_dropped) surfacing inside the
// artifact.

#include "src/obs/profile.h"
#include "src/obs/recorder.h"
#include "src/obs/slo.h"
#include "src/obs/timeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/pool.h"
#include "src/workload/ticket_gen.h"

namespace witobs {
namespace {

// ------------------------------------------------------- ProfiledMutex --

TEST(ProfiledMutexTest, UncontendedAcquisitionsRecordZeroWait) {
  MetricsRegistry registry;
  ProfiledMutex mu("witprof.test");
  mu.EnableMetrics(&registry);
  for (int i = 0; i < 5; ++i) {
    std::lock_guard<ProfiledMutex> lock(mu);
  }
  const ProfiledMutex::Stats stats = mu.stats();
  EXPECT_EQ(stats.acquisitions, 5u);
  EXPECT_EQ(stats.contended, 0u);
  EXPECT_EQ(stats.total_wait_ns, 0u);
  // Every acquisition lands in the wait histogram (zeros included, so count
  // equals acquisitions) and every release lands in the hold histogram.
  const Histogram* wait =
      registry.FindHistogram("watchit_lock_wait_ns", {{"lock", "witprof.test"}});
  const Histogram* hold =
      registry.FindHistogram("watchit_lock_hold_ns", {{"lock", "witprof.test"}});
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(hold, nullptr);
  EXPECT_EQ(wait->Count(), 5u);
  EXPECT_EQ(wait->SumNs(), 0u);
  EXPECT_EQ(hold->Count(), 5u);
}

TEST(ProfiledMutexTest, ContendedAcquisitionRecordsWaitTime) {
  MetricsRegistry registry;
  ProfiledMutex mu("witprof.contended");
  mu.EnableMetrics(&registry);
  std::atomic<bool> holder_ready{false};
  std::thread holder([&] {
    std::unique_lock<ProfiledMutex> lock(mu);
    holder_ready.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  while (!holder_ready.load()) {
    std::this_thread::yield();
  }
  mu.lock();  // blocks until the holder's sleep ends
  mu.unlock();
  holder.join();
  const ProfiledMutex::Stats stats = mu.stats();
  EXPECT_EQ(stats.acquisitions, 2u);
  EXPECT_GE(stats.contended, 1u);
  EXPECT_GT(stats.total_wait_ns, 0u);
  const Histogram* wait =
      registry.FindHistogram("watchit_lock_wait_ns", {{"lock", "witprof.contended"}});
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->Count(), 2u);
  EXPECT_GT(wait->SumNs(), 0u);
}

TEST(ProfiledMutexTest, DisableMetricsStopsObservingIntoRegistry) {
  MetricsRegistry registry;
  ProfiledMutex mu("witprof.teardown");
  mu.EnableMetrics(&registry);
  {
    std::lock_guard<ProfiledMutex> lock(mu);
  }
  const Histogram* wait =
      registry.FindHistogram("watchit_lock_wait_ns", {{"lock", "witprof.teardown"}});
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->Count(), 1u);
  // The teardown contract: ~DeployPipeline calls this before its final
  // Stop() so a registry destroyed first is never dereferenced.
  mu.DisableMetrics();
  {
    std::lock_guard<ProfiledMutex> lock(mu);
  }
  EXPECT_EQ(wait->Count(), 1u);  // no observation after detach
}

TEST(TopContendedLocksTest, RanksByTotalWaitAndMergesAcrossRegistries) {
  // TopContendedLocks reads the registry families back, so plain histogram
  // writes stand in for live mutexes — deterministic numbers.
  MetricsRegistry pool_registry;
  MetricsRegistry machine_registry;
  pool_registry.GetHistogram("watchit_lock_wait_ns", {{"lock", "ca"}})->Observe(1000);
  pool_registry.GetHistogram("watchit_lock_hold_ns", {{"lock", "ca"}})->Observe(50);
  pool_registry.GetHistogram("watchit_lock_wait_ns", {{"lock", "securelog"}})->Observe(200);
  pool_registry.GetHistogram("watchit_lock_hold_ns", {{"lock", "securelog"}})->Observe(10);
  // The same logical lock shows up in a second (per-machine) registry: the
  // merged row must sum counts and wait totals.
  machine_registry.GetHistogram("watchit_lock_wait_ns", {{"lock", "securelog"}})
      ->Observe(900);
  machine_registry.GetHistogram("watchit_lock_hold_ns", {{"lock", "securelog"}})
      ->Observe(30);

  const std::vector<LockContention> single = TopContendedLocks(pool_registry);
  ASSERT_EQ(single.size(), 2u);
  EXPECT_EQ(single[0].lock, "ca");  // 1000 > 200
  EXPECT_EQ(single[0].wait_sum_ns, 1000u);
  EXPECT_EQ(single[1].lock, "securelog");

  const std::vector<LockContention> merged =
      TopContendedLocks({&pool_registry, &machine_registry});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].lock, "securelog");  // 200 + 900 = 1100 > 1000
  EXPECT_EQ(merged[0].wait_count, 2u);
  EXPECT_EQ(merged[0].wait_sum_ns, 1100u);
  EXPECT_EQ(merged[0].hold_sum_ns, 40u);
  EXPECT_EQ(merged[1].lock, "ca");

  const std::vector<LockContention> capped =
      TopContendedLocks({&pool_registry, &machine_registry}, 1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0].lock, "securelog");
}

// ------------------------------------------------------ TicketTimeline --

SpanRecord MakeSpan(const std::string& name, const std::string& corr, uint64_t start_ns,
                    uint64_t duration_ns, uint64_t thread_id) {
  SpanRecord record;
  record.name = name;
  record.correlation_id = corr;
  record.start_ns = start_ns;
  record.duration_ns = duration_ns;
  record.thread_id = thread_id;
  return record;
}

TEST(TicketTimelineTest, AssemblesCausalCrossThreadTimeline) {
  // A pipelined ticket's spans arrive scattered: deploy worker first in the
  // vector, serve worker second, a second ticket interleaved.
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan("serve.deploy", "TKT-1", 300, 400, 2));
  spans.push_back(MakeSpan("serve.queue_wait", "TKT-1", 100, 50, 1));
  spans.push_back(MakeSpan("serve.prepare", "TKT-1", 150, 120, 1));
  spans.push_back(MakeSpan("serve.finish", "TKT-1", 700, 100, 3));
  spans.push_back(MakeSpan("serve.prepare", "TKT-2", 900, 40, 1));
  spans.push_back(MakeSpan("anonymous", "", 0, 10, 4));  // no ticket: skipped

  const std::vector<TicketTimeline> all = TicketTimeline::AssembleAll(spans);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].ticket_id(), "TKT-1");  // oldest first span first
  EXPECT_EQ(all[1].ticket_id(), "TKT-2");

  const TicketTimeline& t1 = all[0];
  ASSERT_EQ(t1.stages().size(), 4u);
  EXPECT_EQ(t1.stages()[0].name, "serve.queue_wait");
  EXPECT_EQ(t1.stages()[1].name, "serve.prepare");
  EXPECT_EQ(t1.stages()[2].name, "serve.deploy");
  EXPECT_EQ(t1.stages()[3].name, "serve.finish");
  EXPECT_EQ(t1.start_ns(), 100u);
  EXPECT_EQ(t1.end_ns(), 800u);
  EXPECT_EQ(t1.SpanNs(), 700u);
  EXPECT_EQ(t1.ThreadCount(), 3u);
  EXPECT_EQ(t1.StageDurationNs("serve.prepare"), 120u);
  // Render names the ticket and attributes stages to threads.
  EXPECT_NE(t1.Render().find("serve.deploy"), std::string::npos);
}

TEST(TicketTimelineTest, RepeatedStagesSumAndForTicketFiltersTracer) {
  Tracer tracer;
  tracer.RecordSpan(MakeSpan("deploy.execute", "TKT-9", 10, 100, 1));
  tracer.RecordSpan(MakeSpan("deploy.execute", "TKT-9", 200, 150, 2));  // dual deploy
  tracer.RecordSpan(MakeSpan("deploy.execute", "TKT-other", 5, 7, 1));
  const TicketTimeline timeline = TicketTimeline::ForTicket(tracer, "TKT-9");
  EXPECT_EQ(timeline.stages().size(), 2u);
  EXPECT_EQ(timeline.StageDurationNs("deploy.execute"), 250u);
  EXPECT_EQ(TicketTimeline::ForTicket(tracer, "TKT-none").stages().size(), 0u);
}

// ----------------------------------------------------------- SloEngine --

TEST(SloEngineTest, WindowedLatencyCatchesRegressionLifetimeHistoryHides) {
  MetricsRegistry registry;
  Histogram* latency = registry.GetHistogram("witprof_e2e_ns");
  SloEngine engine(&registry);
  SloEngine::LatencySlo slo;
  slo.name = "e2e-p99";
  slo.histogram = "witprof_e2e_ns";
  slo.threshold_ns = 1'000'000;  // 1ms
  engine.AddLatencySlo(slo);
  std::vector<SloEngine::Status> fired;
  engine.set_breach_callback([&](const SloEngine::Status& s) { fired.push_back(s); });

  // Days of healthy history: lifetime p99 sits far below the threshold.
  for (int i = 0; i < 100000; ++i) {
    latency->Observe(100);
  }
  (void)engine.Evaluate();  // prime: window starts after the healthy era

  // The regression: only 100 slow events — 0.1% of lifetime, invisible to
  // the lifetime percentile, unmissable in the window delta.
  for (int i = 0; i < 100; ++i) {
    latency->Observe(50'000'000);
  }
  EXPECT_LT(latency->Percentile(99), slo.threshold_ns);  // lifetime: healthy

  const std::vector<SloEngine::Status> statuses = engine.Evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].breached);
  EXPECT_EQ(statuses[0].window_events, 100u);
  EXPECT_GT(statuses[0].value, static_cast<double>(slo.threshold_ns));
  EXPECT_EQ(engine.breaches(), 1u);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].name, "e2e-p99");
  EXPECT_FALSE(fired[0].detail.empty());
}

TEST(SloEngineTest, RatioBurnRateBreachesAndIdleWindowNeverDoes) {
  MetricsRegistry registry;
  Counter* bad = registry.GetCounter("witprof_rejects_total", {{"outcome", "reject"}});
  Counter* total_a = registry.GetCounter("witprof_served_total", {{"outcome", "ok"}});
  Counter* total_b = registry.GetCounter("witprof_served_total", {{"outcome", "reject"}});

  SloEngine::Options options;
  options.window_samples = 2;  // window = exactly the delta since last Evaluate
  SloEngine engine(&registry, options);
  SloEngine::RatioSlo slo;
  slo.name = "rejects";
  slo.bad = {"witprof_rejects_total", {}};
  slo.total = {"witprof_served_total", {}};  // subset {} folds both outcome series
  slo.objective = 0.99;                      // 1% budget
  slo.max_burn_rate = 2.0;
  engine.AddRatioSlo(slo);

  (void)engine.Evaluate();  // prime
  total_a->Increment(95);
  total_b->Increment(5);
  bad->Increment(5);  // 5% bad against a 1% budget: burn rate 5.0
  std::vector<SloEngine::Status> statuses = engine.Evaluate();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].breached);
  EXPECT_EQ(statuses[0].window_events, 100u);
  EXPECT_NEAR(statuses[0].value, 5.0, 1e-9);

  // No new events: the two-sample window slides past the burst and an idle
  // window is never a breach (0/0 must not divide).
  statuses = engine.Evaluate();
  EXPECT_FALSE(statuses[0].breached);
  EXPECT_EQ(statuses[0].window_events, 0u);
  EXPECT_EQ(engine.breaches(), 1u);
}

TEST(SloEngineTest, SumCountersFoldsLabelSubsets) {
  MetricsRegistry registry;
  registry.GetCounter("witprof_ops_total", {{"op", "read"}, {"outcome", "deny"}})
      ->Increment(3);
  registry.GetCounter("witprof_ops_total", {{"op", "write"}, {"outcome", "deny"}})
      ->Increment(4);
  registry.GetCounter("witprof_ops_total", {{"op", "read"}, {"outcome", "allow"}})
      ->Increment(10);
  EXPECT_EQ(SumCounters(registry, "witprof_ops_total", {}), 17u);
  EXPECT_EQ(SumCounters(registry, "witprof_ops_total", {{"outcome", "deny"}}), 7u);
  EXPECT_EQ(SumCounters(registry, "witprof_absent_total", {}), 0u);
}

// ------------------------------------------------------ FlightRecorder --

// Injected tracer clock for deterministic blackout windows.
uint64_t g_test_now_ns = 0;
uint64_t TestNow() { return g_test_now_ns; }

TEST(FlightRecorderTest, DumpEmbedsSpansLocksMetricsAndSelfDropCounts) {
  MetricsRegistry registry;
  registry.GetHistogram("watchit_lock_wait_ns", {{"lock", "witprof.dump"}})->Observe(777);
  registry.GetCounter("witprof_marker_total")->Increment(42);
  Tracer tracer;
  tracer.RecordSpan(MakeSpan("serve.prepare", "TKT-DUMP", 10, 90, 1));

  FlightRecorder recorder(&registry, &tracer);
  ASSERT_TRUE(recorder.Trigger("slo-breach", "e2e-p99: windowed p99 over threshold"));
  EXPECT_EQ(recorder.dumps_captured(), 1u);
  const std::string json = recorder.last_json();
  EXPECT_NE(json.find("\"reason\":\"slo-breach\""), std::string::npos);
  EXPECT_NE(json.find("e2e-p99: windowed p99 over threshold"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"serve.prepare\""), std::string::npos);
  EXPECT_NE(json.find("\"correlation_id\":\"TKT-DUMP\""), std::string::npos);
  EXPECT_NE(json.find("\"lock\":\"witprof.dump\""), std::string::npos);
  EXPECT_NE(json.find("witprof_marker_total"), std::string::npos);  // metrics snapshot
  EXPECT_NE(json.find("\"spans_dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"dumps_dropped\":0"), std::string::npos);

  ASSERT_EQ(recorder.dumps().size(), 1u);
  EXPECT_EQ(recorder.dumps()[0].reason, "slo-breach");
}

TEST(FlightRecorderTest, SpanTruncationIsReportedInsideTheArtifact) {
  MetricsRegistry registry;
  Tracer tracer;
  for (int i = 0; i < 10; ++i) {
    tracer.RecordSpan(MakeSpan("stage", "TKT-N", static_cast<uint64_t>(i), 1, 1));
  }
  FlightRecorder::Options options;
  options.max_spans = 4;
  FlightRecorder recorder(&registry, &tracer, options);
  ASSERT_TRUE(recorder.Trigger("anomaly"));
  // 6 of 10 buffered spans fell outside the dump window; the artifact says
  // so instead of silently looking complete.
  EXPECT_NE(recorder.last_json().find("\"spans_dropped\":6"), std::string::npos);
}

TEST(FlightRecorderTest, MaxDumpsAndBlackoutSuppressAndCountDrops) {
  MetricsRegistry registry;
  Tracer tracer;
  g_test_now_ns = 1000;
  tracer.SetClockForTest(&TestNow);
  FlightRecorder::Options options;
  options.max_dumps = 2;
  options.min_interval_ns = 1000;
  FlightRecorder recorder(&registry, &tracer, options);

  EXPECT_TRUE(recorder.Trigger("slo-breach", "first"));
  g_test_now_ns = 1500;  // inside the blackout
  EXPECT_FALSE(recorder.Trigger("slo-breach", "suppressed"));
  EXPECT_EQ(recorder.dumps_dropped(), 1u);

  g_test_now_ns = 3000;  // blackout over, capacity left
  EXPECT_TRUE(recorder.Trigger("deploy-rollback", "second"));
  EXPECT_EQ(recorder.dumps_captured(), 2u);
  // The suppression that already happened is reported inside the artifact.
  EXPECT_NE(recorder.last_json().find("\"dumps_dropped\":1"), std::string::npos);

  g_test_now_ns = 10000;  // max_dumps reached: dropped regardless of spacing
  EXPECT_FALSE(recorder.Trigger("slo-breach", "over-capacity"));
  EXPECT_EQ(recorder.dumps_dropped(), 2u);
  EXPECT_EQ(recorder.dumps().size(), 2u);
}

// ------------------------------------------- exporter escaping goldens --

TEST(ExporterEscapingTest, PrometheusLabelValuesEscapeBackslashQuoteNewline) {
  MetricsRegistry registry;
  registry
      .GetCounter("watchit_esc_total",
                  {{"path", "C:\\tmp \"x\"\nend"}})
      ->Increment();
  const std::string expected =
      "# TYPE watchit_esc_total counter\n"
      "watchit_esc_total{path=\"C:\\\\tmp \\\"x\\\"\\nend\"} 1\n";
  EXPECT_EQ(RenderPrometheus(registry), expected);
}

TEST(ExporterEscapingTest, PrometheusHelpEscapesBackslashAndNewline) {
  MetricsRegistry registry;
  registry.SetHelp("watchit_esc_total", "line one\nwith a \\ tail");
  registry.GetCounter("watchit_esc_total")->Increment(2);
  const std::string expected =
      "# HELP watchit_esc_total line one\\nwith a \\\\ tail\n"
      "# TYPE watchit_esc_total counter\n"
      "watchit_esc_total 2\n";
  EXPECT_EQ(RenderPrometheus(registry), expected);
}

TEST(ExporterEscapingTest, JsonEscapeGoldenCoversControlCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te\rf\x01g"),
            "a\\\"b\\\\c\\nd\\te\\rf\\u0001g");
  EXPECT_EQ(JsonEscape("plain"), "plain");
  // A lock or stage name with hostile content cannot corrupt a JSON label
  // map rendered by RenderJson.
  MetricsRegistry registry;
  registry.GetCounter("watchit_esc_total", {{"lock", "a\"b\nc"}})->Increment();
  const std::string json = RenderJson(registry);
  EXPECT_NE(json.find("\"lock\":\"a\\\"b\\nc\""), std::string::npos);
}

// ---------------------------------------------------------- acceptance --

// The ISSUE 6 acceptance scenario: a live pipelined ServerPool instrumented
// with registry + tracer, a deliberately impossible SLO, and a flight
// recorder on the breach wire. One run must produce a dump whose spans
// cross >= 2 threads for a single ticket — the cross-thread timeline
// stitched through TrySubmit/Submit and PushReady.
class WitprofAcceptanceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    witload::TicketGenerator::Options options;
    options.seed = 5;
    witload::TicketGenerator gen(options);
    auto history = gen.GenerateBatch(300, witload::TicketGenerator::HistoricalDistribution());
    std::vector<std::pair<std::string, std::string>> labelled;
    for (const auto& t : history) {
      labelled.emplace_back(t.text, t.true_class);
    }
    watchit::ItFramework::Config config;
    config.lda.iterations = 60;
    framework_ = new watchit::ItFramework(config);
    framework_->TrainOnHistory(labelled);
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
  }

  void SetUp() override {
    for (int i = 0; i < 2; ++i) {
      cluster_.AddMachine("m" + std::to_string(i),
                          witnet::Ipv4Addr(10, 0, 3, static_cast<uint8_t>(50 + i)));
    }
    const std::set<std::string> all_classes = {"T-1", "T-2", "T-3", "T-4",  "T-5", "T-6",
                                               "T-7", "T-8", "T-9", "T-10", "T-11"};
    dispatcher_.AddSpecialist("alice", all_classes);
    dispatcher_.AddSpecialist("bob", all_classes);
  }

  static watchit::ItFramework* framework_;
  watchit::Cluster cluster_;
  watchit::Dispatcher dispatcher_;
};

watchit::ItFramework* WitprofAcceptanceTest::framework_ = nullptr;

// Pulls (name, correlation_id, thread_id) out of the recorder artifact's
// span objects by scanning the JSON the recorder itself emitted.
struct DumpSpan {
  std::string name;
  std::string corr;
  uint64_t thread_id = 0;
};

std::vector<DumpSpan> ParseDumpSpans(const std::string& json) {
  std::vector<DumpSpan> spans;
  size_t pos = 0;
  while ((pos = json.find("{\"name\":\"", pos)) != std::string::npos) {
    DumpSpan span;
    size_t start = pos + 9;
    size_t end = json.find('"', start);
    span.name = json.substr(start, end - start);
    size_t corr = json.find("\"correlation_id\":\"", end);
    if (corr == std::string::npos) {
      break;
    }
    start = corr + 18;
    end = json.find('"', start);
    span.corr = json.substr(start, end - start);
    size_t tid = json.find("\"thread_id\":", end);
    if (tid == std::string::npos) {
      break;
    }
    span.thread_id = std::strtoull(json.c_str() + tid + 12, nullptr, 10);
    pos = end;
    spans.push_back(std::move(span));
  }
  return spans;
}

TEST_F(WitprofAcceptanceTest, ForcedSloBreachDumpsCrossThreadTicketSpans) {
  // Declared before the pool so both outlive it (DESIGN.md §13's
  // registry-outlives-instrumented-structure rule).
  MetricsRegistry registry;
  Tracer tracer(1 << 12);
  FlightRecorder recorder(&registry, &tracer);
  SloEngine slo_engine(&registry);
  // 1ns e2e p99: no real ticket can meet it — the forced breach.
  InstallWatchItSlos(&slo_engine, 1);
  slo_engine.set_breach_callback([&](const SloEngine::Status& status) {
    recorder.Trigger("slo-breach", status.name + ": " + status.detail);
  });

  witserve::ServerPool::Options options;
  options.workers = 2;  // pipelined deploy mode is the default
  witserve::ServerPool pool(&cluster_, framework_, &dispatcher_, options);
  pool.EnableMetrics(&registry, &tracer);
  (void)slo_engine.Evaluate();  // prime: the next window covers the run

  witload::TicketGenerator::Options gen_options;
  gen_options.seed = 77;
  gen_options.with_ops = true;
  witload::TicketGenerator gen(gen_options);
  const auto tickets =
      gen.GenerateBatch(12, witload::TicketGenerator::EvaluationDistribution());

  pool.Start();
  for (size_t i = 0; i < tickets.size(); ++i) {
    const std::string target = "m" + std::to_string(i % 2);
    const std::string user =
        tickets[i].true_class == "T-9" ? pool.PeerInShard(target) : std::string();
    ASSERT_TRUE(pool.Submit(tickets[i], target, user).ok());
  }
  pool.Drain();
  pool.Stop();

  const std::vector<SloEngine::Status> statuses = slo_engine.Evaluate();
  bool latency_breached = false;
  for (const auto& status : statuses) {
    if (status.name == "ticket-e2e-latency") {
      latency_breached = status.breached;
      EXPECT_GE(status.window_events, tickets.size());
    }
  }
  EXPECT_TRUE(latency_breached);
  ASSERT_GE(recorder.dumps_captured(), 1u);

  const std::string dump = recorder.last_json();
  EXPECT_NE(dump.find("\"reason\":\"slo-breach\""), std::string::npos);
  EXPECT_NE(dump.find("ticket-e2e-latency"), std::string::npos);

  // The acceptance bar: one ticket's spans in the dump cross >= 2 threads.
  const std::vector<DumpSpan> spans = ParseDumpSpans(dump);
  ASSERT_FALSE(spans.empty());
  std::map<std::string, std::set<uint64_t>> threads_by_ticket;
  std::map<std::string, std::set<std::string>> stages_by_ticket;
  for (const auto& span : spans) {
    if (span.corr.empty()) {
      continue;
    }
    threads_by_ticket[span.corr].insert(span.thread_id);
    stages_by_ticket[span.corr].insert(span.name);
  }
  std::string crossing_ticket;
  for (const auto& [ticket, threads] : threads_by_ticket) {
    if (threads.size() >= 2) {
      crossing_ticket = ticket;
      break;
    }
  }
  ASSERT_FALSE(crossing_ticket.empty())
      << "no ticket in the dump carried spans from >= 2 threads";
  // The crossing ticket's timeline includes the serve-side stages, not just
  // a stray span — the pipeline handoff kept the correlation id.
  EXPECT_TRUE(stages_by_ticket[crossing_ticket].count("serve.prepare") == 1 ||
              stages_by_ticket[crossing_ticket].count("serve.queue_wait") == 1);

  // The same snapshot reassembles into a timeline whose thread count agrees.
  const TicketTimeline timeline = TicketTimeline::ForTicket(tracer, crossing_ticket);
  EXPECT_GE(timeline.ThreadCount(), 2u);
  EXPECT_GT(timeline.SpanNs(), 0u);

  // The per-lock ranking in the same registry set names the serve-side
  // locks (the dump's top_locks table draws from the pool registry).
  std::vector<const MetricsRegistry*> registries = {&registry};
  for (size_t i = 0; i < cluster_.size(); ++i) {
    registries.push_back(&cluster_.machine(i).metrics());
  }
  const std::vector<LockContention> locks = TopContendedLocks(registries);
  std::set<std::string> lock_names;
  for (const auto& lock : locks) {
    lock_names.insert(lock.lock);
  }
  EXPECT_EQ(lock_names.count("deploy.queue"), 1u);
  EXPECT_EQ(lock_names.count("dispatcher"), 1u);
}

}  // namespace
}  // namespace witobs
