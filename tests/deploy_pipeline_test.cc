// Deploy-pipeline tests: the staged deploy transaction (rollback on every
// stage failure), Expire idempotence, the asynchronous pipeline (window
// bound, cancellation, stage deadlines), and the fault-injection sweep
// proving that a failed deploy never leaks a bound ticket, a live session
// or an unrevoked certificate.

#include "src/core/deploy.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/cluster.h"
#include "src/os/fault.h"
#include "src/os/kernel.h"
#include "src/os/memfs.h"

namespace watchit {
namespace {

Ticket MakeTicket(const std::string& id, const std::string& machine,
                  const std::string& ticket_class = "T-1") {
  Ticket ticket;
  ticket.id = id;
  ticket.target_machine = machine;
  ticket.assigned_class = ticket_class;
  ticket.admin = "alice";
  return ticket;
}

// Asserts the no-trace invariant: after a failed (or fully expired) deploy
// the machine holds no bound ticket, no live session, and every certificate
// the CA ever issued has been revoked.
void ExpectNoLeaks(Cluster* cluster, Machine* machine) {
  EXPECT_EQ(machine->broker().bound_ticket_count(), 0u);
  EXPECT_EQ(machine->containit().active_sessions(), 0u);
  EXPECT_EQ(cluster->ca().issued_count(), cluster->ca().revoked_count());
}

// --- transactional rollback (satellite regressions) --------------------------

// Regression: a Deploy that fails container construction must not leave the
// broker ticket binding behind (the binding used to precede construction and
// leaked on this path).
TEST(DeployRollbackTest, ConstructFailureLeavesNoTrace) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  // A session needs several processes; a 1-process cgroup cap makes the
  // shell clone fail deterministically partway through construction.
  witcontain::PerforatedContainerSpec cramped;
  cramped.name = "cramped";
  cramped.max_processes = 1;
  cluster.images().Register("T-CRAMPED", cramped);

  ClusterManager manager(&cluster);
  Ticket ticket = MakeTicket("TKT-CRAMPED", "userpc", "T-CRAMPED");
  EXPECT_FALSE(manager.Deploy(ticket).ok());
  EXPECT_FALSE(machine.broker().IsTicketBound("TKT-CRAMPED"));
  ExpectNoLeaks(&cluster, &machine);
}

// A failure *after* the bind stage must unwind the binding and the session.
TEST(DeployRollbackTest, LateStageFailureUnbindsTicket) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));

  class FailCertGate : public DeployGate {
   public:
    witos::Status BeforeStage(DeployStage stage, Machine*) override {
      return stage == DeployStage::kIssueCert ? witos::Status(witos::Err::kIo)
                                              : witos::Status::Ok();
    }
    void OnRollback(DeployStage failed_stage, witos::Err err) override {
      failed_stage_ = failed_stage;
      err_ = err;
      ++rollbacks_;
    }
    DeployStage failed_stage_ = DeployStage::kImageLookup;
    witos::Err err_ = witos::Err::kOk;
    int rollbacks_ = 0;
  } gate;

  Ticket ticket = MakeTicket("TKT-LATE", "userpc");
  auto result =
      RunDeployStages(&cluster, ticket, ClusterManager::kDefaultLifetimeNs, &gate);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), witos::Err::kIo);
  EXPECT_EQ(gate.rollbacks_, 1);
  EXPECT_EQ(gate.failed_stage_, DeployStage::kIssueCert);
  EXPECT_FALSE(machine.broker().IsTicketBound("TKT-LATE"));
  ExpectNoLeaks(&cluster, &machine);
}

TEST(DeployRollbackTest, UnknownClassFailsWithoutRollback) {
  Cluster cluster;
  cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  class CountGate : public DeployGate {
   public:
    void OnRollback(DeployStage, witos::Err) override { ++rollbacks_; }
    int rollbacks_ = 0;
  } gate;
  Ticket ticket = MakeTicket("TKT-NOCLASS", "userpc", "T-99");
  EXPECT_FALSE(
      RunDeployStages(&cluster, ticket, ClusterManager::kDefaultLifetimeNs, &gate).ok());
  // Image lookup failed before anything was committed: nothing to unwind.
  EXPECT_EQ(gate.rollbacks_, 0);
}

// --- Expire idempotence ------------------------------------------------------

TEST(ExpireTest, SecondExpireReturnsEsrchWithoutDoubleRevoke) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  ClusterManager manager(&cluster);
  auto deployment = manager.Deploy(MakeTicket("TKT-TWICE", "userpc"));
  ASSERT_TRUE(deployment.ok());

  ASSERT_TRUE(manager.Expire(&*deployment).ok());
  EXPECT_EQ(cluster.ca().revoked_count(), 1u);
  EXPECT_FALSE(machine.broker().IsTicketBound("TKT-TWICE"));

  witos::Status again = manager.Expire(&*deployment);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error(), witos::Err::kSrch);
  EXPECT_EQ(cluster.ca().revoked_count(), 1u);  // not revoked twice
  ExpectNoLeaks(&cluster, &machine);
}

// A session torn down behind the manager's back (crash, manual Terminate)
// must not wedge Expire: the certificate is still revoked and the ticket
// unbound, the Terminate error is reported once, and the *next* Expire is
// the idempotent ESRCH path.
TEST(ExpireTest, ExpireAfterExternalTerminateStillRevokesAndUnbinds) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  ClusterManager manager(&cluster);
  auto deployment = manager.Deploy(MakeTicket("TKT-GONE", "userpc"));
  ASSERT_TRUE(deployment.ok());
  ASSERT_TRUE(machine.containit().Terminate(deployment->session, "crashed").ok());

  witos::Status expired = manager.Expire(&*deployment);
  EXPECT_FALSE(expired.ok());  // surfaces the Terminate failure...
  EXPECT_TRUE(cluster.ca().IsRevoked(deployment->certificate.serial));  // ...but revokes
  EXPECT_FALSE(machine.broker().IsTicketBound("TKT-GONE"));
  EXPECT_EQ(manager.Expire(&*deployment).error(), witos::Err::kSrch);
  EXPECT_EQ(cluster.ca().revoked_count(), 1u);
  ExpectNoLeaks(&cluster, &machine);
}

// --- the asynchronous pipeline ----------------------------------------------

TEST(DeployPipelineTest, SubmitDeploysAsynchronously) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  DeployPipeline pipeline(&cluster);
  pipeline.Start();

  std::atomic<bool> completed{false};
  auto handle = pipeline.Submit(MakeTicket("TKT-ASYNC", "userpc"),
                                [&](const DeployHandle& h) {
                                  completed.store(h->done(), std::memory_order_relaxed);
                                });
  ASSERT_TRUE(handle.ok());
  auto result = (*handle)->Wait();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->machine, &machine);
  EXPECT_TRUE(machine.broker().IsTicketBound("TKT-ASYNC"));

  ClusterManager manager(&cluster);
  ASSERT_TRUE(manager.Expire(&*result).ok());
  pipeline.Stop();  // joins the workers, so the completion has run by now
  EXPECT_TRUE(completed.load());

  DeployPipeline::Stats stats = pipeline.GetStats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.deployed, 1u);
  EXPECT_EQ(stats.rollbacks, 0u);
  EXPECT_EQ(pipeline.inflight(), 0u);
  ExpectNoLeaks(&cluster, &machine);
}

TEST(DeployPipelineTest, InflightWindowBoundsSubmission) {
  Cluster cluster;
  cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  DeployPipeline::Options options;
  options.workers = 1;
  options.max_inflight = 1;
  DeployPipeline pipeline(&cluster, options);

  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  pipeline.set_stage_hook([&](DeployStage stage, const Ticket&, Machine*) -> witos::Status {
    if (stage == DeployStage::kImageLookup) {
      std::unique_lock<std::mutex> lock(mu);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    return witos::Status::Ok();
  });
  pipeline.Start();

  auto first = pipeline.Submit(MakeTicket("TKT-W1", "userpc"));
  ASSERT_TRUE(first.ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  // The window (1) is occupied by the stalled deploy: TrySubmit must bounce.
  auto second = pipeline.TrySubmit(MakeTicket("TKT-W2", "userpc"));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error(), witos::Err::kAgain);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  ASSERT_TRUE((*first)->Wait().ok());
  pipeline.Stop();
  DeployPipeline::Stats stats = pipeline.GetStats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.peak_inflight, 1u);
}

TEST(DeployPipelineTest, CancelMidDeployRollsBack) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  DeployPipeline::Options options;
  options.workers = 1;
  DeployPipeline pipeline(&cluster, options);

  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  // Stall between construct and bind; the cancellation lands while the
  // session is half-built and is noticed at the next inter-stage gate.
  pipeline.set_stage_hook([&](DeployStage stage, const Ticket&, Machine*) -> witos::Status {
    if (stage == DeployStage::kBind) {
      std::unique_lock<std::mutex> lock(mu);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    return witos::Status::Ok();
  });
  pipeline.Start();

  auto handle = pipeline.Submit(MakeTicket("TKT-CANCEL", "userpc"));
  ASSERT_TRUE(handle.ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  (*handle)->Cancel();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  auto result = (*handle)->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), witos::Err::kIntr);
  pipeline.Stop();
  DeployPipeline::Stats stats = pipeline.GetStats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.rollbacks, 1u);
  EXPECT_FALSE(machine.broker().IsTicketBound("TKT-CANCEL"));
  ExpectNoLeaks(&cluster, &machine);
}

TEST(DeployPipelineTest, StageDeadlineTimesOutAndRollsBack) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  DeployPipeline::Options options;
  options.workers = 1;
  // Construction mutates the filesystem dozens of times; 1 simulated ns is
  // an unmeetable budget, so the deadline trips deterministically.
  options.stage_deadline_ns[static_cast<size_t>(DeployStage::kConstruct)] = 1;
  DeployPipeline pipeline(&cluster, options);
  pipeline.Start();

  auto handle = pipeline.Submit(MakeTicket("TKT-SLOW", "userpc"));
  ASSERT_TRUE(handle.ok());
  auto result = (*handle)->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error(), witos::Err::kTimedOut);
  pipeline.Stop();
  DeployPipeline::Stats stats = pipeline.GetStats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.rollbacks, 1u);  // the built session was torn down
  ExpectNoLeaks(&cluster, &machine);
}

TEST(DeployPipelineTest, ConcurrentSubmittersAllLandAndExpireCleanly) {
  Cluster cluster;
  cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  cluster.AddMachine("devbox", witnet::Ipv4Addr(10, 0, 1, 51));
  DeployPipeline::Options options;
  options.workers = 3;
  options.max_inflight = 8;
  DeployPipeline pipeline(&cluster, options);
  pipeline.Start();

  constexpr size_t kSubmitters = 4;
  constexpr size_t kPerSubmitter = 8;
  std::vector<DeployHandle> handles(kSubmitters * kPerSubmitter);
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = 0; i < kPerSubmitter; ++i) {
        std::string id = "TKT-" + std::to_string(t) + "-" + std::to_string(i);
        std::string target = (t + i) % 2 == 0 ? "userpc" : "devbox";
        auto handle = pipeline.Submit(MakeTicket(id, target));
        ASSERT_TRUE(handle.ok());
        handles[t * kPerSubmitter + i] = *handle;
      }
    });
  }
  for (std::thread& submitter : submitters) {
    submitter.join();
  }

  ClusterManager manager(&cluster);
  for (const DeployHandle& handle : handles) {
    auto result = handle->Wait();
    ASSERT_TRUE(result.ok());
    // Expire under the machine lock: pipeline workers may still be driving
    // other deploys on the same machine.
    std::lock_guard<std::mutex> lock(result->machine->mu());
    result->machine->kernel().clock().BindOwner();
    EXPECT_TRUE(manager.Expire(&*result).ok());
    result->machine->kernel().clock().ReleaseOwner();
  }
  pipeline.Stop();

  DeployPipeline::Stats stats = pipeline.GetStats();
  EXPECT_EQ(stats.deployed, kSubmitters * kPerSubmitter);
  EXPECT_LE(stats.peak_inflight, 8u);
  for (size_t i = 0; i < cluster.size(); ++i) {
    Machine& machine = cluster.machine(i);
    EXPECT_EQ(machine.containit().active_sessions(), 0u);
    EXPECT_EQ(machine.broker().bound_ticket_count(), 0u);
    EXPECT_EQ(machine.kernel().clock().ownership_violations(), 0u);
  }
  EXPECT_EQ(cluster.ca().issued_count(), cluster.ca().revoked_count());
}

// --- fault-injection sweep (no stage/errno combination may leak) -------------

TEST(DeployFaultSweepTest, EveryStageTimesEveryErrnoRollsBackCleanly) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  DeployPipeline pipeline(&cluster);

  const witos::Err kErrnos[] = {witos::Err::kIo, witos::Err::kNoSpc, witos::Err::kNoMem};
  DeployStage fail_stage = DeployStage::kImageLookup;
  std::shared_ptr<witos::FaultPlan> plan;
  pipeline.set_stage_hook([&](DeployStage stage, const Ticket&, Machine*) -> witos::Status {
    if (stage != fail_stage || plan == nullptr) {
      return witos::Status::Ok();
    }
    witos::Err injected = plan->Decide(witos::FaultOpKind::kAny);
    if (injected != witos::Err::kOk) {
      return injected;
    }
    return witos::Status::Ok();
  });

  size_t events_before = machine.broker().EventsSnapshot().size();
  int combo = 0;
  for (size_t stage = 0; stage < kNumDeployStages; ++stage) {
    for (witos::Err err : kErrnos) {
      fail_stage = static_cast<DeployStage>(stage);
      plan = std::make_shared<witos::FaultPlan>();
      plan->FailNthCall(1, err);
      std::string id = "TKT-FAULT-" + std::to_string(combo++);
      auto result = pipeline.DeployInline(MakeTicket(id, "userpc"));
      ASSERT_FALSE(result.ok()) << DeployStageName(fail_stage);
      EXPECT_EQ(result.error(), err) << DeployStageName(fail_stage);
      EXPECT_EQ(plan->injected(), 1u);
      // The invariant under test: whatever stage died with whatever errno,
      // nothing the transaction touched survives it.
      EXPECT_FALSE(machine.broker().IsTicketBound(id)) << DeployStageName(fail_stage);
      ExpectNoLeaks(&cluster, &machine);
    }
  }
  // No broker escalation events either: the sessions never got to run.
  EXPECT_EQ(machine.broker().EventsSnapshot().size(), events_before);

  // The machine is unharmed: a clean deploy still succeeds afterwards.
  plan = nullptr;
  auto result = pipeline.DeployInline(MakeTicket("TKT-AFTER", "userpc"));
  ASSERT_TRUE(result.ok());
  ClusterManager manager(&cluster);
  ASSERT_TRUE(manager.Expire(&*result).ok());
  ExpectNoLeaks(&cluster, &machine);

  DeployPipeline::Stats stats = pipeline.GetStats();
  EXPECT_EQ(stats.failed, static_cast<uint64_t>(combo));
  EXPECT_EQ(stats.deployed, 1u);
}

// Construction failure injected through the VFS layer itself: a faulty
// filesystem mounted where the session's ConFS view goes makes the recipe's
// first filesystem mutation fail, and the rollback must still run.
TEST(DeployFaultSweepTest, VfsFaultDuringConstructRollsBack) {
  Cluster cluster;
  Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  witos::Kernel& kernel = machine.kernel();

  auto plan = std::make_shared<witos::FaultPlan>();
  plan->FailOp(witos::FaultOpKind::kGetAttr, witos::Err::kIo);
  auto faulty =
      std::make_shared<witos::ErrorInjectingVfs>(std::make_shared<witos::MemFs>(), plan);
  // The first session's view mounts at /ConFS-1; squat on that path.
  ASSERT_TRUE(kernel.MkDir(1, "/ConFS-1").ok());
  ASSERT_TRUE(kernel.Mount(1, faulty, "/ConFS-1", "faultfs").ok());

  ClusterManager manager(&cluster);
  auto result = manager.Deploy(MakeTicket("TKT-VFS", "userpc"));
  ASSERT_FALSE(result.ok());
  EXPECT_GT(plan->injected(), 0u);
  EXPECT_FALSE(machine.broker().IsTicketBound("TKT-VFS"));
  ExpectNoLeaks(&cluster, &machine);
}

}  // namespace
}  // namespace watchit
