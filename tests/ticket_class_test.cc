// Tests that the coded Table 3 matrix matches the paper's row semantics.

#include "src/core/ticket_class.h"

#include <gtest/gtest.h>

#include "src/workload/ticket_gen.h"

namespace watchit {
namespace {

TEST(TicketClassTest, T1LicenseRow) {
  auto spec = SpecForTicketClass(1);
  EXPECT_EQ(spec.fs.kind, witcontain::FsView::Kind::kDirs);
  EXPECT_EQ(spec.fs.visible_dirs, (std::vector<std::string>{"/home/user"}));
  ASSERT_EQ(spec.net.allowed.size(), 1u);
  EXPECT_EQ(spec.net.allowed[0].name, "license-server");
  EXPECT_FALSE(spec.process_mgmt);
  EXPECT_FALSE(spec.net.share_host);
}

TEST(TicketClassTest, T4SharesHostNetworkNamespace) {
  auto spec = SpecForTicketClass(4);
  EXPECT_TRUE(spec.net.share_host);
  EXPECT_FALSE(spec.IsolatesNs(witos::NsType::kNet));
  EXPECT_TRUE(spec.process_mgmt);
  // T-4 is the only class sharing the host NET namespace — this is what
  // makes "network view isolated in 98% of cases" come out.
  for (int i = 1; i <= 11; ++i) {
    if (i == 4) {
      continue;
    }
    EXPECT_FALSE(SpecForTicketClass(i).net.share_host) << "T-" << i;
  }
}

TEST(TicketClassTest, RootViewClassesMatchPaper) {
  // T-5, T-6 and T-8 see the whole (ITFS-monitored) root filesystem; the
  // eval-distribution weight of these classes is what yields the paper's
  // "denied full filesystem view in 62% of the cases".
  for (int i = 1; i <= 11; ++i) {
    bool whole_root = SpecForTicketClass(i).fs.kind == witcontain::FsView::Kind::kWholeRoot;
    EXPECT_EQ(whole_root, i == 5 || i == 6 || i == 8) << "T-" << i;
  }
}

TEST(TicketClassTest, ProcessMgmtClassesMatchPaper) {
  for (int i = 1; i <= 11; ++i) {
    EXPECT_EQ(SpecForTicketClass(i).process_mgmt, i == 4 || i == 5 || i == 6 || i == 9)
        << "T-" << i;
  }
}

TEST(TicketClassTest, T6HasWhitelistedWebOnly) {
  for (int i = 1; i <= 11; ++i) {
    bool has_web = false;
    for (const auto& cidr : SpecForTicketClass(i).net.sniffer_whitelist) {
      has_web |= (cidr.base.value() >> 24) != 10;  // outside the 10/8 org net
    }
    EXPECT_EQ(has_web, i == 6) << "T-" << i;
  }
}

TEST(TicketClassTest, T9HasTargetAndBatchEndpoints) {
  auto spec = SpecForTicketClass(9);
  ASSERT_EQ(spec.net.allowed.size(), 2u);
  EXPECT_EQ(spec.net.allowed[0].name, "target-machine");
  EXPECT_EQ(spec.net.allowed[1].name, "batch-server");
  EXPECT_TRUE(spec.process_mgmt);
}

TEST(TicketClassTest, T11FullyIsolated) {
  auto spec = SpecForTicketClass(11);
  EXPECT_EQ(spec.fs.kind, witcontain::FsView::Kind::kPrivate);
  EXPECT_TRUE(spec.net.allowed.empty());
  for (auto type : {witos::NsType::kUts, witos::NsType::kMnt, witos::NsType::kNet,
                    witos::NsType::kPid, witos::NsType::kIpc, witos::NsType::kUid}) {
    EXPECT_TRUE(spec.IsolatesNs(type));
  }
}

TEST(TicketClassTest, EveryClassCarriesHardConstraints) {
  // §6.2: blanket ITFS document filter + sniffer on every container.
  for (int i = 1; i <= 11; ++i) {
    auto spec = SpecForTicketClass(i);
    EXPECT_GE(spec.fs.policy.rule_count(), 2u) << "T-" << i;
    EXPECT_TRUE(spec.net.sniff) << "T-" << i;
  }
}

TEST(TicketClassTest, ScriptContainersMatchFigure8) {
  EXPECT_EQ(SpecForScriptClass("S-1").fs.visible_dirs,
            (std::vector<std::string>{"/etc"}));
  EXPECT_FALSE(SpecForScriptClass("S-1").process_mgmt);
  EXPECT_TRUE(SpecForScriptClass("S-2").process_mgmt);
  EXPECT_TRUE(SpecForScriptClass("S-3").process_mgmt);
  EXPECT_EQ(SpecForScriptClass("S-3").fs.kind, witcontain::FsView::Kind::kPrivate);
  EXPECT_TRUE(SpecForScriptClass("S-4").net.share_host);
  EXPECT_EQ(SpecForScriptClass("S-5").fs.visible_dirs,
            (std::vector<std::string>{"/var/log", "/usr/bin"}));
  // S-5 and S-6 are isolated from the network: "tampered scripts can never
  // leak information outside of the cluster".
  EXPECT_TRUE(SpecForScriptClass("S-5").net.allowed.empty());
  EXPECT_FALSE(SpecForScriptClass("S-5").net.share_host);
  EXPECT_TRUE(SpecForScriptClass("S-6").net.allowed.empty());
  EXPECT_TRUE(SpecForScriptClass("S-6").process_mgmt);
}

TEST(TicketClassTest, ImageRepositoryCoversEverything) {
  witcontain::ImageRepository repo;
  RegisterAllImages(&repo);
  EXPECT_EQ(repo.size(), 17u);  // T-1..T-11 + S-1..S-6
  for (int i = 1; i <= 11; ++i) {
    EXPECT_TRUE(repo.Has(witload::TicketClassName(i)));
  }
  EXPECT_FALSE(repo.Lookup("T-99").ok());
}

TEST(TicketClassTest, BrokerPoliciesPerClass) {
  witbroker::PolicyManager policy;
  ConfigureBrokerPolicies(&policy);
  EXPECT_TRUE(policy.IsAllowed("T-1", witbroker::kVerbPs, "alice"));
  EXPECT_FALSE(policy.IsAllowed("T-1", witbroker::kVerbDriverUpdate, "alice"));
  EXPECT_TRUE(policy.IsAllowed("T-11", witbroker::kVerbDriverUpdate, "alice"));
  EXPECT_FALSE(policy.IsAllowed("S-1", witbroker::kVerbPs, "alice"));
  EXPECT_FALSE(policy.IsAllowed("unknown", witbroker::kVerbPs, "alice"));
}

TEST(TicketClassTest, MatrixRowsRenderIsolationSummary) {
  auto row1 = MatrixRowFor(1);
  EXPECT_TRUE(row1.fs_home);
  EXPECT_FALSE(row1.fs_etc);
  EXPECT_FALSE(row1.fs_root);
  auto row5 = MatrixRowFor(5);
  EXPECT_TRUE(row5.fs_root);
  EXPECT_TRUE(row5.fs_home);  // implied by the root view
  EXPECT_TRUE(row5.process_mgmt);
  auto row4 = MatrixRowFor(4);
  EXPECT_TRUE(row4.net_namespace_shared);
}

// Property: every forbidden capability is absent from every class container
// after deployment (exhaustive sweep over the matrix).
class ClassSweep : public ::testing::TestWithParam<int> {};

TEST_P(ClassSweep, SpecIsSane) {
  auto spec = SpecForTicketClass(GetParam());
  EXPECT_FALSE(spec.name.empty());
  // MNT is always isolated for ticket classes (ITFS requires it, §5.3).
  EXPECT_TRUE(spec.IsolatesNs(witos::NsType::kMnt));
  // process_mgmt implies the PID hole.
  if (spec.process_mgmt) {
    EXPECT_FALSE(spec.IsolatesNs(witos::NsType::kPid));
  }
  // NET shared iff declared as such.
  EXPECT_EQ(spec.net.share_host, !spec.IsolatesNs(witos::NsType::kNet));
}

INSTANTIATE_TEST_SUITE_P(AllClasses, ClassSweep, ::testing::Range(1, 12));

}  // namespace
}  // namespace watchit
