// Anomaly-detector regressions and edge coverage.
//
// Two of these pin real bugs found by the witmine shadow work:
//  * the unknown-admin fallback used to compute its rate statistics from
//    the analyzed stream itself, so a steady campaign from an admin with no
//    baseline defined its own "normal" and was never flagged;
//  * the zero-stddev burst heuristic carried a `mean > 0` guard, so a
//    zero-mean baseline (unknown admin, zero prior) silently passed every
//    rate instead of being the tightest baseline of all.

#include "src/broker/anomaly.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using witbroker::AnomalyDetector;
using witbroker::AnomalyScore;
using witbroker::BrokerEvent;

constexpr uint64_t kWindowNs = 60ull * 1000000000ull;  // detector default

BrokerEvent Event(const std::string& admin, uint64_t time_ns,
                  const std::string& cls = "T-5", const std::string& verb = "ps") {
  BrokerEvent event;
  event.admin = admin;
  event.time_ns = time_ns;
  event.ticket_id = "TKT-" + admin;
  event.ticket_class = cls;
  event.verb = verb;
  event.granted = true;
  return event;
}

// N events for one admin inside window `w`.
void AddBurst(std::vector<BrokerEvent>* events, const std::string& admin, uint64_t w,
              int n) {
  for (int i = 0; i < n; ++i) {
    events->push_back(Event(admin, w * kWindowNs + static_cast<uint64_t>(i) * 1000));
  }
}

// Regression (stream-as-its-own-yardstick): an admin with no baseline at
// all running a steady 8-requests-per-window campaign. The old fallback
// fitted {mean 8, stddev 0} from the campaign itself, demanded n > 34, and
// flagged nothing.
TEST(AnomalyTest, UnknownAdminCampaignWithoutBaselineIsFlagged) {
  AnomalyDetector detector;
  detector.Fit({});  // no history at all: not even a pooled yardstick

  std::vector<BrokerEvent> campaign;
  for (uint64_t w = 0; w < 3; ++w) {
    AddBurst(&campaign, "ghost", w, 8);
  }
  std::vector<AnomalyScore> scores = detector.Analyze(campaign);
  ASSERT_EQ(scores.size(), campaign.size());
  for (const AnomalyScore& score : scores) {
    EXPECT_TRUE(score.flagged);
    EXPECT_EQ(score.reason, "request-rate burst (no baseline for admin)");
  }
}

// Regression (zero-mean guard): against a zero habitual rate the burst
// test is n > 2 — three requests in a window flag, two stay quiet. The old
// `mean > 0` guard made zero-mean a free pass (nothing ever flagged).
TEST(AnomalyTest, ZeroMeanBurstBoundary) {
  AnomalyDetector detector;
  detector.Fit({});

  std::vector<BrokerEvent> events;
  AddBurst(&events, "three", 0, 3);
  AddBurst(&events, "two", 0, 2);
  std::vector<AnomalyScore> scores = detector.Analyze(events);
  ASSERT_EQ(scores.size(), 5u);
  for (const AnomalyScore& score : scores) {
    const std::string& admin = events[score.event_index].admin;
    if (admin == "three") {
      EXPECT_TRUE(score.flagged) << "3 > 2 must flag at a zero-mean baseline";
    } else {
      EXPECT_FALSE(score.flagged) << "2 requests sit inside the +2 grace";
    }
  }
}

// Fit on an empty history must neither crash nor poison later analysis;
// a single request from an unknown admin stays within the grace.
TEST(AnomalyTest, FitOnEmptyHistory) {
  AnomalyDetector detector;
  detector.Fit({});
  EXPECT_TRUE(detector.Analyze({}).empty());

  BrokerEvent lone = Event("newcomer", 0);
  double surprise = detector.Surprise(lone);
  EXPECT_GE(surprise, 0.0);
  std::vector<AnomalyScore> scores = detector.Analyze({lone});
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_FALSE(scores[0].flagged);
}

// A baseline with a single occupied window has stddev 0: the steady-rate
// heuristic takes over with threshold 4*mean + 2.
TEST(AnomalyTest, SingleOccupiedWindowBaseline) {
  AnomalyDetector detector;
  std::vector<BrokerEvent> history;
  AddBurst(&history, "steady", 0, 5);  // mean 5, stddev 0
  detector.Fit(history);

  std::vector<BrokerEvent> over;
  AddBurst(&over, "steady", 10, 23);  // 23 > 4*5 + 2
  std::vector<AnomalyScore> flagged = detector.Analyze(over);
  ASSERT_FALSE(flagged.empty());
  EXPECT_TRUE(flagged[0].flagged);
  EXPECT_EQ(flagged[0].reason, "request-rate burst");

  std::vector<BrokerEvent> at;
  AddBurst(&at, "steady", 11, 22);  // exactly at the threshold: quiet
  for (const AnomalyScore& score : detector.Analyze(at)) {
    EXPECT_FALSE(score.flagged);
  }
}

// An admin missing from the baseline is judged by the pooled cross-admin
// rate, with the reason naming the missing baseline.
TEST(AnomalyTest, UnknownAdminUsesPooledBaseline) {
  AnomalyDetector detector;
  std::vector<BrokerEvent> history;
  AddBurst(&history, "a", 0, 4);
  AddBurst(&history, "a", 1, 6);
  AddBurst(&history, "b", 0, 5);
  AddBurst(&history, "b", 1, 5);
  detector.Fit(history);  // pooled: mean 5, stddev ~0.707

  std::vector<BrokerEvent> hot;
  AddBurst(&hot, "stranger", 20, 10);  // z ~ 7.1 > 4
  std::vector<AnomalyScore> scores = detector.Analyze(hot);
  ASSERT_FALSE(scores.empty());
  EXPECT_TRUE(scores[0].flagged);
  EXPECT_EQ(scores[0].reason, "request-rate burst (no baseline for admin)");

  std::vector<BrokerEvent> mild;
  AddBurst(&mild, "stranger", 21, 7);  // z ~ 2.8: within threshold
  for (const AnomalyScore& score : detector.Analyze(mild)) {
    EXPECT_FALSE(score.flagged);
  }
}

}  // namespace
