// §7.2 as tests: every maintenance script runs to completion inside its
// Figure 8 container, and every tampered variant is contained.

#include "src/core/script_runner.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace watchit {
namespace {

class ScriptRunnerTest : public ::testing::Test {
 protected:
  ScriptRunnerTest() : machine_(&cluster_.AddMachine("node1", witnet::Ipv4Addr(10, 0, 2, 1))) {}
  Cluster cluster_;
  Machine* machine_;
};

TEST_F(ScriptRunnerTest, ChefPuppetScriptsSatisfiedAndContained) {
  ScriptRunner runner(machine_);
  auto reports = runner.RunAll(witload::ChefPuppetScripts());
  ASSERT_EQ(reports.size(), 20u);
  for (const auto& report : reports) {
    EXPECT_TRUE(report.fully_satisfied())
        << report.script << " in " << report.container_class << ": " << report.ops_succeeded
        << "/" << report.ops_total;
    EXPECT_TRUE(report.fully_contained())
        << report.script << " leaked: " << report.tampered_blocked << "/"
        << report.tampered_total;
  }
}

TEST_F(ScriptRunnerTest, ClusterScriptsSatisfiedAndContained) {
  ScriptRunner runner(machine_);
  auto reports = runner.RunAll(witload::ClusterManagementScripts());
  ASSERT_EQ(reports.size(), 13u);
  for (const auto& report : reports) {
    EXPECT_TRUE(report.fully_satisfied()) << report.script;
    EXPECT_TRUE(report.fully_contained()) << report.script;
  }
}

TEST_F(ScriptRunnerTest, SessionsAreTornDownAfterRuns) {
  ScriptRunner runner(machine_);
  (void)runner.RunAll(witload::ChefPuppetScripts());
  EXPECT_EQ(machine_->containit().active_sessions(), 0u);
}

TEST_F(ScriptRunnerTest, TamperedScriptNeverReachesExfilHost) {
  ScriptRunner runner(machine_);
  (void)runner.RunAll(witload::ChefPuppetScripts());
  (void)runner.RunAll(witload::ClusterManagementScripts());
  // No packet ever reached the exfiltration sink: its service was never
  // invoked because routes/firewalls stopped every attempt.
  const witnet::Endpoint* evil = cluster_.fabric().FindByName("evil-host");
  ASSERT_NE(evil, nullptr);
  // Every tampered op was denied *before* delivery; the audit log carries
  // the blocked-network evidence.
  size_t blocked = machine_->kernel().audit().CountEvent(witos::AuditEvent::kNetworkBlocked);
  EXPECT_GT(blocked, 0u);
}

TEST(FleetScriptRunnerTest, UniformContainmentAcrossNodes) {
  Cluster cluster;
  std::vector<Machine*> fleet;
  for (int i = 0; i < 4; ++i) {
    fleet.push_back(&cluster.AddMachine("spark-node-" + std::to_string(i),
                                        witnet::Ipv4Addr(10, 0, 2, static_cast<uint8_t>(10 + i))));
  }
  FleetScriptRunner runner(fleet);
  auto reports = runner.RunAll(witload::ClusterManagementScripts());
  ASSERT_EQ(reports.size(), 13u);
  for (const auto& report : reports) {
    EXPECT_EQ(report.nodes, 4u) << report.script;
    EXPECT_EQ(report.nodes_satisfied, 4u) << report.script;
    EXPECT_EQ(report.nodes_contained, 4u) << report.script;
  }
  // No stray sessions anywhere in the fleet.
  for (Machine* node : fleet) {
    EXPECT_EQ(node->containit().active_sessions(), 0u);
  }
}

}  // namespace
}  // namespace watchit
