// Tests for the NLP substrate: tokenizer, Porter stemmer, stopwords,
// obfuscation, spell correction.

#include <gtest/gtest.h>

#include "src/nlp/obfuscate.h"
#include "src/nlp/spell.h"
#include "src/nlp/stemmer.h"
#include "src/nlp/stopwords.h"
#include "src/nlp/text.h"

namespace witnlp {
namespace {

TEST(TokenizeTest, LowercasesAndSplits) {
  auto tokens = Tokenize("Hello, my MATLAB license EXPIRED!");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"hello", "my", "matlab", "license", "expired"}));
}

TEST(TokenizeTest, KeepsEntityTokens) {
  auto tokens = Tokenize("cannot ping 10.0.3.7 from srv-042 under /gpfs/projects");
  EXPECT_EQ(tokens, (std::vector<std::string>{"cannot", "ping", "10.0.3.7", "from", "srv-042",
                                              "under", "/gpfs/projects"}));
}

TEST(TokenizeTest, StripsTrailingPunctuation) {
  auto tokens = Tokenize("server is down.");
  EXPECT_EQ(tokens.back(), "down");
}

// Classic Porter test vectors.
struct StemCase {
  const char* in;
  const char* out;
};

class PorterVectors : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterVectors, MatchesReference) {
  EXPECT_EQ(PorterStem(GetParam().in), GetParam().out);
}

INSTANTIATE_TEST_SUITE_P(
    Reference, PorterVectors,
    ::testing::Values(StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
                      StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
                      StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
                      StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
                      StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
                      StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
                      StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
                      StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
                      StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
                      StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
                      StemCase{"filing", "file"}, StemCase{"happy", "happi"},
                      StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
                      StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
                      StemCase{"valenci", "valenc"}, StemCase{"digitizer", "digit"},
                      StemCase{"conformabli", "conform"}, StemCase{"radicalli", "radic"},
                      StemCase{"differentli", "differ"}, StemCase{"vileli", "vile"},
                      StemCase{"analogousli", "analog"}, StemCase{"vietnamization", "vietnam"},
                      StemCase{"predication", "predic"}, StemCase{"operator", "oper"},
                      StemCase{"feudalism", "feudal"}, StemCase{"decisiveness", "decis"},
                      StemCase{"hopefulness", "hope"}, StemCase{"callousness", "callous"},
                      StemCase{"formaliti", "formal"}, StemCase{"sensitiviti", "sensit"},
                      StemCase{"sensibiliti", "sensibl"}, StemCase{"triplicate", "triplic"},
                      StemCase{"formative", "form"}, StemCase{"formalize", "formal"},
                      StemCase{"electriciti", "electr"}, StemCase{"electrical", "electr"},
                      StemCase{"hopeful", "hope"}, StemCase{"goodness", "good"},
                      StemCase{"revival", "reviv"}, StemCase{"allowance", "allow"},
                      StemCase{"inference", "infer"}, StemCase{"airliner", "airlin"},
                      StemCase{"gyroscopic", "gyroscop"}, StemCase{"adjustable", "adjust"},
                      StemCase{"defensible", "defens"}, StemCase{"irritant", "irrit"},
                      StemCase{"replacement", "replac"}, StemCase{"adjustment", "adjust"},
                      StemCase{"dependent", "depend"}, StemCase{"adoption", "adopt"},
                      StemCase{"homologou", "homolog"}, StemCase{"communism", "commun"},
                      StemCase{"activate", "activ"}, StemCase{"angulariti", "angular"},
                      StemCase{"homologous", "homolog"}, StemCase{"effective", "effect"},
                      StemCase{"bowdlerize", "bowdler"}, StemCase{"probate", "probat"},
                      StemCase{"rate", "rate"}, StemCase{"cease", "ceas"},
                      StemCase{"controll", "control"}, StemCase{"roll", "roll"}));

TEST(PorterTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem("be"), "be");
}

TEST(PorterTest, NonAlphaPassesThrough) {
  EXPECT_EQ(PorterStem("10.0.0.1"), "10.0.0.1");
  EXPECT_EQ(PorterStem("srv-042"), "srv-042");
  EXPECT_EQ(PorterStem("<ip>"), "<ip>");
}

TEST(StopwordsTest, CommonWordsAndPleasantries) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("hello"));
  EXPECT_TRUE(IsStopWord("please"));
  EXPECT_FALSE(IsStopWord("matlab"));
  EXPECT_FALSE(IsStopWord("license"));
}

TEST(ObfuscatorTest, ReplacesConfidentialEntities) {
  Obfuscator obf;
  EXPECT_EQ(obf.Apply(std::string("10.13.37.1")), "<ip>");
  EXPECT_EQ(obf.Apply(std::string("srv-042")), "<server>");
  EXPECT_EQ(obf.Apply(std::string("vm-7")), "<vm>");
  EXPECT_EQ(obf.Apply(std::string("/gpfs/projects/secret")), "<sharedstorage>");
  EXPECT_EQ(obf.Apply(std::string("matlab")), "matlab");
}

TEST(ObfuscatorTest, CustomDictionary) {
  Obfuscator obf;
  obf.AddName("manhattan", "<project>");
  EXPECT_EQ(obf.Apply(std::string("manhattan")), "<project>");
}

TEST(ObfuscatorTest, IpDetectionEdgeCases) {
  EXPECT_TRUE(Obfuscator::LooksLikeIp("1.2.3.4"));
  EXPECT_FALSE(Obfuscator::LooksLikeIp("1.2.3"));
  EXPECT_FALSE(Obfuscator::LooksLikeIp("1.2.3.4.5"));
  EXPECT_FALSE(Obfuscator::LooksLikeIp("1..3.4"));
  EXPECT_FALSE(Obfuscator::LooksLikeIp("version1.2.3.4"));
  EXPECT_FALSE(Obfuscator::LooksLikeIp("1234.1.1.1"));
}

TEST(PipelineTest, FullPreprocessing) {
  TextPipeline pipeline;
  auto tokens = pipeline.Process("Hello, please help: my matlab LICENSES on srv-042 expired");
  // "hello"/"please"/"help"/"my"/"on" are stopwords; license is stemmed;
  // srv-042 is obfuscated.
  EXPECT_EQ(tokens, (std::vector<std::string>{"matlab", "licens", "<server>", "expir"}));
}

TEST(SpellTest, EditDistance) {
  EXPECT_EQ(SpellCorrector::EditDistanceCapped("abc", "abc"), 0);
  EXPECT_EQ(SpellCorrector::EditDistanceCapped("abc", "abd"), 1);
  EXPECT_EQ(SpellCorrector::EditDistanceCapped("abc", "acb"), 1);  // transposition
  EXPECT_EQ(SpellCorrector::EditDistanceCapped("abc", "ab"), 1);
  EXPECT_EQ(SpellCorrector::EditDistanceCapped("abc", "xyz"), 3);  // capped
}

TEST(SpellTest, CorrectsToMostFrequentNeighbor) {
  Corpus corpus;
  corpus.AddDocument({"license", "license", "license", "licence"});
  SpellCorrector spell(&corpus.vocab());
  EXPECT_EQ(spell.Correct(std::string("licens")), "license");
  // In-vocabulary words pass through.
  EXPECT_EQ(spell.Correct(std::string("licence")), "licence");
  // Far-away garbage passes through.
  EXPECT_EQ(spell.Correct(std::string("zzzzzz")), "zzzzzz");
  // Placeholders are never "corrected".
  EXPECT_EQ(spell.Correct(std::string("<ip>")), "<ip>");
}

}  // namespace
}  // namespace witnlp
