// ProcFs tests: the per-PID-namespace /proc view.

#include "src/os/procfs.h"

#include <gtest/gtest.h>

#include "src/os/kernel.h"

namespace witos {
namespace {

class ProcFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    worker_ = *kernel_.Clone(1, "worker", 0);
    contained_ = *kernel_.Clone(1, "contained", kCloneNewPid | kCloneNewMnt);
    // Mount a procfs bound to the *container's* PID namespace inside it.
    auto procfs = std::make_shared<ProcFs>(
        &kernel_, kernel_.FindProcess(contained_)->ns.Get(NsType::kPid));
    ASSERT_TRUE(kernel_.Mount(contained_, procfs, "/proc", "proc").ok());
    // And a host-wide procfs for the host.
    auto host_procfs =
        std::make_shared<ProcFs>(&kernel_, kernel_.namespaces().initial(NsType::kPid));
    ASSERT_TRUE(kernel_.Mount(1, host_procfs, "/proc", "proc").ok());
  }

  Kernel kernel_{"host"};
  Pid worker_ = kNoPid;
  Pid contained_ = kNoPid;
};

TEST_F(ProcFsTest, RootListingReflectsNamespace) {
  auto host_entries = kernel_.ReadDir(1, "/proc");
  ASSERT_TRUE(host_entries.ok());
  size_t host_pids = 0;
  for (const auto& entry : *host_entries) {
    host_pids += entry.type == FileType::kDirectory ? 1 : 0;
  }
  EXPECT_EQ(host_pids, 3u);  // init, worker, contained

  auto inner_entries = kernel_.ReadDir(contained_, "/proc");
  ASSERT_TRUE(inner_entries.ok());
  size_t inner_pids = 0;
  for (const auto& entry : *inner_entries) {
    inner_pids += entry.type == FileType::kDirectory ? 1 : 0;
  }
  EXPECT_EQ(inner_pids, 1u);  // only itself, as pid 1
}

TEST_F(ProcFsTest, StatusRendersLocalPid) {
  auto status = kernel_.ReadFile(contained_, "/proc/1/status");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("Name:\tcontained"), std::string::npos);
  EXPECT_NE(status->find("Pid:\t1"), std::string::npos);
}

TEST_F(ProcFsTest, CmdlineAndUptime) {
  EXPECT_EQ(*kernel_.ReadFile(1, "/proc/1/cmdline"), "init\n");
  kernel_.clock().Advance(5ull * 1000000000ull);
  EXPECT_EQ(*kernel_.ReadFile(1, "/proc/uptime"), "5\n");
}

TEST_F(ProcFsTest, NsFileShowsNamespaceIds) {
  auto ns = kernel_.ReadFile(contained_, "/proc/1/ns");
  ASSERT_TRUE(ns.ok());
  EXPECT_NE(ns->find("pid:["), std::string::npos);
  EXPECT_NE(ns->find("mnt:["), std::string::npos);
  // The contained process's pid ns id differs from the host's.
  auto host_ns = kernel_.ReadFile(1, "/proc/1/ns");
  ASSERT_TRUE(host_ns.ok());
  EXPECT_NE(*ns, *host_ns);
}

TEST_F(ProcFsTest, NonexistentPidIsNoEnt) {
  EXPECT_EQ(kernel_.ReadFile(1, "/proc/999/status").error(), Err::kNoEnt);
  EXPECT_EQ(kernel_.ReadFile(1, "/proc/abc/status").error(), Err::kNoEnt);
}

TEST_F(ProcFsTest, ReadOnly) {
  EXPECT_EQ(kernel_.WriteFile(1, "/proc/1/status", "hacked").error(), Err::kRoFs);
  EXPECT_EQ(kernel_.MkDir(1, "/proc/evil").error(), Err::kRoFs);
  EXPECT_EQ(kernel_.Unlink(1, "/proc/uptime").error(), Err::kRoFs);
}

TEST_F(ProcFsTest, DeadPidDisappears) {
  ASSERT_TRUE(kernel_.ReadFile(1, "/proc/" + std::to_string(worker_) + "/status").ok());
  ASSERT_TRUE(kernel_.Exit(worker_, 0).ok());
  ASSERT_TRUE(kernel_.Wait(1).ok());  // reap
  // No DropCaches needed: procfs is uncacheable, so the view is fresh.
  EXPECT_EQ(kernel_.ReadFile(1, "/proc/" + std::to_string(worker_) + "/status").error(),
            Err::kNoEnt);
}

}  // namespace
}  // namespace witos
