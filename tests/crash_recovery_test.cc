// witjournal/witcrash end-to-end tests: journaled deploy traffic, crash
// simulation, checkpoint cadence, full-pool and single-machine recovery,
// post-recovery metrics, the FaultPlan crash-trigger regression (a crash
// point must not perturb the errno decision stream), corrupt-tail recovery,
// and the stage × scope crash sweep's zero-leak invariant.

#include "src/durability/crash.h"
#include "src/durability/durability.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/durability/journal.h"
#include "src/obs/metrics.h"
#include "src/os/fault.h"
#include "src/os/memfs.h"

namespace witdur {
namespace {

const witos::Credentials kRoot{};

watchit::Ticket MakeTicket(const std::string& id, const std::string& machine) {
  watchit::Ticket ticket;
  ticket.id = id;
  ticket.target_machine = machine;
  ticket.assigned_class = "T-1";
  ticket.admin = "alice";
  return ticket;
}

// A two-machine cluster with journaled deploy + secure-log traffic: four
// deploys (two expired before the crash, two live), a dozen secure-log
// entries and one sealed epoch root per machine.
struct Workload {
  std::shared_ptr<witos::MemFs> fs = std::make_shared<witos::MemFs>();
  std::unique_ptr<watchit::Cluster> cluster;
  std::unique_ptr<DurabilityManager> manager;
  std::vector<watchit::Deployment> live;
  std::vector<size_t> log_sizes;
  size_t issued = 0;
  size_t revoked = 0;

  explicit Workload(DurabilityManager::Options options = {}) {
    cluster = std::make_unique<watchit::Cluster>();
    cluster->AddMachine("host0", witnet::Ipv4Addr(10, 0, 3, 10));
    cluster->AddMachine("host1", witnet::Ipv4Addr(10, 0, 3, 11));
    manager = std::make_unique<DurabilityManager>(fs, options);
    manager->Attach(cluster.get());
  }

  void Drive() {
    watchit::ClusterManager cm(cluster.get());
    for (int i = 0; i < 4; ++i) {
      const std::string host = i % 2 == 0 ? "host0" : "host1";
      auto deployment = cm.Deploy(MakeTicket("TKT-" + std::to_string(i), host));
      ASSERT_TRUE(deployment.ok());
      if (i < 2) {
        ASSERT_TRUE(cm.Expire(&*deployment).ok());
      } else {
        live.push_back(*deployment);
      }
    }
    for (size_t m = 0; m < cluster->size(); ++m) {
      witbroker::SecureLog& log = cluster->machine(m).broker().log();
      for (uint64_t i = 0; i < 12; ++i) {
        log.Append("pb-op-" + std::to_string(i), 1000 + i, /*shard_key=*/i);
      }
      log.SealEpoch(2000);
      log_sizes.push_back(log.size());
    }
    issued = cluster->ca().issued_count();
    revoked = cluster->ca().revoked_count();
  }
};

size_t UnrevokedCerts(watchit::Cluster* cluster) {
  size_t unrevoked = 0;
  for (const watchit::Certificate& cert : cluster->ca().IssuedSnapshot()) {
    if (!cluster->ca().IsRevoked(cert.serial)) {
      ++unrevoked;
    }
  }
  return unrevoked;
}

std::unique_ptr<watchit::Cluster> FreshTwin() {
  auto twin = std::make_unique<watchit::Cluster>();
  twin->AddMachine("host0", witnet::Ipv4Addr(10, 0, 3, 10));
  twin->AddMachine("host1", witnet::Ipv4Addr(10, 0, 3, 11));
  return twin;
}

// --- full-pool crash + recovery ----------------------------------------------

TEST(CrashRecoveryTest, PoolCrashRecoversStateAndExpiresOrphans) {
  Workload world;
  world.Drive();
  ASSERT_EQ(world.issued, 4u);
  ASSERT_EQ(world.revoked, 2u);
  ASSERT_TRUE(world.manager->SimulateCrash().ok());

  auto twin = FreshTwin();
  DurabilityManager recovered(world.fs);
  auto report = recovered.Recover(twin.get());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->journal_tail_clean);  // barrier_interval=1: nothing torn
  EXPECT_EQ(report->replay_errors, 0u);
  EXPECT_TRUE(report->epoch_roots_verified);
  EXPECT_EQ(report->bindings_restored, 4u);  // all four binds replayed...
  EXPECT_EQ(report->orphans_expired, 2u);    // ...two were still live: expired
  EXPECT_EQ(report->certs_revoked_at_recovery, 2u);
  EXPECT_GT(report->records_replayed, 0u);

  // The audit evidence survived byte-for-byte: same chains, same roots.
  for (size_t m = 0; m < twin->size(); ++m) {
    EXPECT_EQ(twin->machine(m).broker().log().size(), world.log_sizes[m]);
    EXPECT_EQ(twin->machine(m).broker().log().epoch_count(), 1u);
    EXPECT_TRUE(twin->machine(m).broker().log().Verify());
    EXPECT_EQ(twin->machine(m).broker().bound_ticket_count(), 0u);
  }
  watchit::Cluster::AuditReport audit = twin->VerifyAuditTrail();
  EXPECT_EQ(audit.failures, 0u);
  EXPECT_EQ(audit.epoch_roots, 2u);

  // Zero leaks: the crash is the hardest expiry.
  EXPECT_EQ(twin->ca().issued_count(), 4u);
  EXPECT_EQ(twin->ca().revoked_count(), 4u);
  EXPECT_EQ(UnrevokedCerts(twin.get()), 0u);
}

TEST(CrashRecoveryTest, RecoveredPoolKeepsServing) {
  Workload world;
  world.Drive();
  ASSERT_TRUE(world.manager->SimulateCrash().ok());

  auto twin = FreshTwin();
  DurabilityManager recovered(world.fs);
  ASSERT_TRUE(recovered.Recover(twin.get()).ok());

  // New deploys issue fresh serials (next_serial advanced past the replay).
  watchit::ClusterManager cm(twin.get());
  auto deployment = cm.Deploy(MakeTicket("TKT-NEW", "host0"));
  ASSERT_TRUE(deployment.ok());
  EXPECT_GT(deployment->certificate.serial, 4u);
  EXPECT_TRUE(twin->machine(0).broker().IsTicketBound("TKT-NEW"));
  // And the new traffic is journaled: a second crash+recovery sees it.
  ASSERT_TRUE(recovered.SimulateCrash().ok());
  auto third = FreshTwin();
  DurabilityManager again(world.fs);
  auto report = again.Recover(third.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(third->ca().issued_count(), 5u);
  EXPECT_EQ(UnrevokedCerts(third.get()), 0u);
}

TEST(CrashRecoveryTest, SecondRecoverIsRefused) {
  Workload world;
  world.Drive();
  ASSERT_TRUE(world.manager->SimulateCrash().ok());

  auto twin = FreshTwin();
  DurabilityManager recovered(world.fs);
  ASSERT_TRUE(recovered.Recover(twin.get()).ok());
  const size_t revoked_once = twin->ca().revoked_count();

  // One-shot: a second replay would re-apply every record (double binds,
  // double revocations). ESRCH, and the CA books are untouched.
  auto twin2 = FreshTwin();
  EXPECT_EQ(recovered.Recover(twin2.get()).error(), witos::Err::kSrch);
  EXPECT_EQ(twin->ca().revoked_count(), revoked_once);
  // A manager already attached to live state refuses as well (EINVAL).
  DurabilityManager attached(world.fs);
  attached.Attach(twin2.get());
  EXPECT_EQ(attached.Recover(twin2.get()).error(), witos::Err::kInval);
}

// --- checkpoints -------------------------------------------------------------

TEST(CrashRecoveryTest, CheckpointTruncatesJournalAndRecoveryUsesIt) {
  DurabilityManager::Options options;
  options.checkpoint_interval = 8;
  Workload world(options);
  world.Drive();

  // The workload journaled well past the cadence: a checkpoint is due.
  EXPECT_TRUE(world.manager->checkpoint_due());
  ASSERT_TRUE(world.manager->MaybeCheckpoint().ok());
  EXPECT_EQ(world.manager->checkpoints_taken(), 1u);
  EXPECT_FALSE(world.manager->checkpoint_due());

  // The journal was compacted into the checkpoint file.
  JournalScan tail = ScanJournal(world.fs.get(), "/journal.wal");
  EXPECT_TRUE(tail.clean);
  EXPECT_TRUE(tail.records.empty());
  JournalScan checkpoint = ScanJournal(world.fs.get(), "/checkpoint.wcp");
  EXPECT_TRUE(checkpoint.clean);
  ASSERT_FALSE(checkpoint.records.empty());
  EXPECT_EQ(checkpoint.records[0].kind, JournalRecordKind::kCheckpointHeader);

  // Post-checkpoint traffic lands in the (fresh) journal; recovery folds
  // checkpoint + tail together.
  watchit::ClusterManager cm(world.cluster.get());
  auto extra = cm.Deploy(MakeTicket("TKT-TAIL", "host1"));
  ASSERT_TRUE(extra.ok());
  ASSERT_TRUE(world.manager->SimulateCrash().ok());

  auto twin = FreshTwin();
  DurabilityManager recovered(world.fs, options);
  auto report = recovered.Recover(twin.get());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->checkpoint_records, 0u);
  EXPECT_GT(report->tail_records, 0u);
  EXPECT_EQ(report->replay_errors, 0u);
  for (size_t m = 0; m < twin->size(); ++m) {
    EXPECT_EQ(twin->machine(m).broker().log().size(), world.log_sizes[m]);
    EXPECT_TRUE(twin->machine(m).broker().log().Verify());
  }
  EXPECT_EQ(twin->ca().issued_count(), 5u);  // 4 + the tail deploy
  EXPECT_EQ(UnrevokedCerts(twin.get()), 0u);
  EXPECT_EQ(twin->VerifyAuditTrail().failures, 0u);
}

TEST(CrashRecoveryTest, CheckpointIsAtomicAgainstRecovery) {
  Workload world;
  world.Drive();
  ASSERT_TRUE(world.manager->Checkpoint().ok());
  // A leftover .tmp from a hypothetical torn checkpoint must be ignored —
  // only the renamed file is the checkpoint.
  world.fs->ProvisionFile("/checkpoint.wcp.tmp", "torn garbage");
  ASSERT_TRUE(world.manager->SimulateCrash().ok());

  auto twin = FreshTwin();
  DurabilityManager recovered(world.fs);
  auto report = recovered.Recover(twin.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->replay_errors, 0u);
  EXPECT_EQ(twin->VerifyAuditTrail().failures, 0u);
}

// --- single-machine (shard) recovery ----------------------------------------

TEST(CrashRecoveryTest, RecoverMachineRebootsOneShardInPlace) {
  Workload world;
  world.Drive();  // TKT-2 live on host0, TKT-3 live on host1
  const size_t host0_log = world.log_sizes[0];

  auto report = world.manager->RecoverMachine("host0");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->machines_recovered, 1u);
  EXPECT_EQ(report->replay_errors, 0u);

  watchit::Machine* host0 = world.cluster->FindMachine("host0");
  ASSERT_NE(host0, nullptr);
  // host0's audit history survived the reboot; its live binding did not.
  EXPECT_EQ(host0->broker().log().size(), host0_log);
  EXPECT_TRUE(host0->broker().log().Verify());
  EXPECT_EQ(host0->broker().bound_ticket_count(), 0u);
  EXPECT_EQ(host0->containit().active_sessions(), 0u);

  // host1 was untouched: its deployment is still live, its cert valid.
  watchit::Machine* host1 = world.cluster->FindMachine("host1");
  EXPECT_TRUE(host1->broker().IsTicketBound("TKT-3"));
  size_t host1_unrevoked = 0;
  for (const watchit::Certificate& cert : world.cluster->ca().IssuedSnapshot()) {
    if (cert.machine == "host1" && !world.cluster->ca().IsRevoked(cert.serial)) {
      ++host1_unrevoked;
    }
  }
  EXPECT_EQ(host1_unrevoked, 1u);
  // host0's orphaned cert was revoked by the reconcile.
  for (const watchit::Certificate& cert : world.cluster->ca().IssuedSnapshot()) {
    if (cert.machine == "host0") {
      EXPECT_TRUE(world.cluster->ca().IsRevoked(cert.serial));
    }
  }
  EXPECT_EQ(world.cluster->VerifyAuditTrail().failures, 0u);

  // The rebooted shard keeps serving, and the journal captured the reboot:
  // a later full recovery replays a consistent history.
  watchit::ClusterManager cm(world.cluster.get());
  ASSERT_TRUE(cm.Deploy(MakeTicket("TKT-AFTER", "host0")).ok());
  EXPECT_EQ(world.manager->RecoverMachine("nosuch").error(), witos::Err::kSrch);
}

// --- post-recovery metrics (gauges re-seeded, not zeroed) --------------------

TEST(CrashRecoveryTest, RecoveredGaugesReportReplayedState) {
  Workload world;
  world.Drive();
  ASSERT_TRUE(world.manager->SimulateCrash().ok());

  auto twin = FreshTwin();
  witobs::MetricsRegistry registry;
  DurabilityManager recovered(world.fs);
  recovered.EnableMetrics(&registry);
  auto report = recovered.Recover(twin.get());
  ASSERT_TRUE(report.ok());

  for (size_t m = 0; m < twin->size(); ++m) {
    const witobs::Labels labels{{"machine", twin->machine(m).name()}};
    EXPECT_EQ(registry.GaugeValue("watchit_securelog_entries", labels),
              static_cast<int64_t>(world.log_sizes[m]));
    EXPECT_GT(registry.GaugeValue("watchit_securelog_entries", labels), 0);
    EXPECT_EQ(registry.GaugeValue("watchit_securelog_epochs", labels), 1);
    EXPECT_EQ(registry.GaugeValue("watchit_broker_bound_tickets", labels), 0);
  }
  EXPECT_EQ(registry.GaugeValue("watchit_ca_issued"), 4);
  EXPECT_EQ(registry.GaugeValue("watchit_ca_revoked"), 4);
  EXPECT_EQ(registry.GaugeValue("watchit_recovery_records_replayed"),
            static_cast<int64_t>(report->records_replayed));
  EXPECT_EQ(registry.GaugeValue("watchit_recovery_orphans_expired"), 2);
  EXPECT_EQ(registry.CounterValue("watchit_recovery_runs_total"), 1u);
  EXPECT_GT(registry.CounterValue("watchit_journal_records_total"), 0u);
}

// --- FaultPlan crash triggers ------------------------------------------------

// Satellite regression: registering a crash point must leave every errno
// decision of an otherwise-identical plan byte-for-byte unchanged — same
// injected faults, same PRNG draws, same counters.
TEST(CrashTriggerTest, CrashPointDoesNotPerturbErrnoDecisions) {
  witos::FaultPlan baseline(/*seed=*/1234);
  baseline.FailNthOp(witos::FaultOpKind::kWrite, 3, witos::Err::kIo);
  baseline.FailEveryNthCall(7, witos::Err::kNoSpc);
  baseline.FailWithProbability(0.2, witos::Err::kNoMem);

  witos::FaultPlan with_crash(/*seed=*/1234);
  with_crash.FailNthOp(witos::FaultOpKind::kWrite, 3, witos::Err::kIo);
  with_crash.FailEveryNthCall(7, witos::Err::kNoSpc);
  with_crash.FailWithProbability(0.2, witos::Err::kNoMem);
  with_crash.CrashAtNthCall(5);
  with_crash.CrashAtNthOp(witos::FaultOpKind::kRead, 4);

  const witos::FaultOpKind ops[] = {witos::FaultOpKind::kWrite, witos::FaultOpKind::kRead,
                                    witos::FaultOpKind::kOpen};
  uint64_t crash_calls = 0;
  for (int i = 0; i < 60; ++i) {
    witos::FaultOpKind op = ops[i % 3];
    witos::Err a = baseline.Decide(op);
    witos::Err b = with_crash.Decide(op);
    EXPECT_EQ(a, b) << "decision diverged at call " << i;
    if (with_crash.crash_pending()) {
      ++crash_calls;
      EXPECT_TRUE(with_crash.ConsumeCrash());
      EXPECT_FALSE(with_crash.crash_pending());
    }
  }
  EXPECT_EQ(baseline.calls(), with_crash.calls());
  EXPECT_EQ(baseline.injected(), with_crash.injected());
  EXPECT_EQ(with_crash.crashes(), 2u);  // nth-call 5 and 4th read
  EXPECT_EQ(crash_calls, 2u);

  // Rewind clears the latch and the crash count, like every other counter.
  with_crash.Rewind();
  EXPECT_FALSE(with_crash.crash_pending());
  EXPECT_EQ(with_crash.crashes(), 0u);
}

// --- corrupt journal tails ---------------------------------------------------

TEST(CrashRecoveryTest, CorruptJournalTailRecoversFailClosed) {
  Workload world;
  world.Drive();
  ASSERT_TRUE(world.manager->SimulateCrash().ok());

  // Flip a byte three quarters into the journal: the scan must reject from
  // there on and recovery must still produce a leak-free pool.
  auto raw = world.fs->SlurpForTest("/journal.wal");
  ASSERT_TRUE(raw.ok());
  const uint64_t pos = raw->size() * 3 / 4;
  std::string flipped(1, static_cast<char>((*raw)[pos] ^ 0x10));
  ASSERT_TRUE(world.fs->WriteAt("/journal.wal", pos, flipped, kRoot).ok());

  auto twin = FreshTwin();
  DurabilityManager recovered(world.fs);
  auto report = recovered.Recover(twin.get());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->journal_tail_clean);
  // Whatever prefix replayed, the reconcile leaves no leaks behind.
  for (size_t m = 0; m < twin->size(); ++m) {
    EXPECT_EQ(twin->machine(m).broker().bound_ticket_count(), 0u);
    EXPECT_TRUE(witbroker::SecureLog::VerifyChain(
        twin->machine(m).broker().log().SnapshotShard(0)));
  }
  EXPECT_EQ(UnrevokedCerts(twin.get()), 0u);
}

TEST(CrashRecoveryTest, CorruptCheckpointIsRefused) {
  Workload world;
  world.Drive();
  ASSERT_TRUE(world.manager->Checkpoint().ok());
  auto raw = world.fs->SlurpForTest("/checkpoint.wcp");
  ASSERT_TRUE(raw.ok());
  std::string flipped(1, static_cast<char>((*raw)[raw->size() / 2] ^ 0x01));
  ASSERT_TRUE(world.fs->WriteAt("/checkpoint.wcp", raw->size() / 2, flipped, kRoot).ok());
  ASSERT_TRUE(world.manager->SimulateCrash().ok());

  // A checkpoint is written whole and renamed into place; one that fails
  // its own checksums is tampering, not a torn tail. Recovery fails closed.
  auto twin = FreshTwin();
  DurabilityManager recovered(world.fs);
  EXPECT_EQ(recovered.Recover(twin.get()).error(), witos::Err::kInval);
}

// --- the crash-point sweep ---------------------------------------------------

TEST(CrashSweepTest, EveryStageAndScopeRecoversWithZeroLeaks) {
  witcrash::CrashHarness::Options options;
  options.machines = 3;
  options.tickets = 12;
  options.pipeline_workers = 2;
  options.checkpoint_interval = 16;
  witcrash::CrashHarness harness(options);

  const auto reports = harness.RunSweep(/*nth_arrival=*/2);
  ASSERT_EQ(reports.size(), 2 * watchit::kNumDeployStages);
  for (const auto& report : reports) {
    EXPECT_TRUE(report.ok()) << witcrash::CrashPointName(report.point) << ": "
                             << report.failure;
    EXPECT_EQ(report.bound_tickets, 0u);
    EXPECT_EQ(report.live_sessions, 0u);
    EXPECT_EQ(report.unrevoked_certs, 0u);
    EXPECT_EQ(report.audit.failures, 0u);
    EXPECT_TRUE(report.gauges_ok);
  }
}

}  // namespace
}  // namespace witdur
