// witjournal tests: record framing, the fail-closed journal scan, the
// fsync-barrier durability model, and the corruption fuzz sweep (truncated,
// bit-flipped and garbage tails must never replay past the valid prefix —
// and a corrupt length prefix must never trigger an unbounded allocation).

#include "src/durability/journal.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/os/fault.h"
#include "src/os/memfs.h"

namespace witdur {
namespace {

const witos::Credentials kRoot{};
constexpr const char* kPath = "/journal.wal";

JournalRecord SampleRecord(uint64_t i) {
  JournalRecord record;
  record.kind = static_cast<JournalRecordKind>(1 + (i % kMaxJournalRecordKind));
  record.time_ns = 1000 + i;
  record.nums = {i, i * 31, i * 1009};
  record.strs = {"host" + std::to_string(i % 3), "TKT-" + std::to_string(i)};
  return record;
}

std::string Slurp(witos::MemFs* fs, const std::string& path) {
  auto content = fs->SlurpForTest(path);
  return content.ok() ? *content : std::string();
}

// --- framing -----------------------------------------------------------------

TEST(JournalRecordTest, EncodeDecodeRoundTrip) {
  JournalRecord record;
  record.kind = JournalRecordKind::kCertIssue;
  record.lsn = 42;
  record.time_ns = 123456789;
  record.nums = {7, 0, ~0ull};
  record.strs = {"alice", "host0", "TKT-1", "T-1"};

  const std::string frame = EncodeRecord(record);
  // Frame = magic(4) + checksum(8) + len(4) + payload.
  ASSERT_GT(frame.size(), 16u);
  auto decoded = DecodeRecordPayload(std::string_view(frame).substr(16));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, record.kind);
  EXPECT_EQ(decoded->lsn, record.lsn);
  EXPECT_EQ(decoded->time_ns, record.time_ns);
  EXPECT_EQ(decoded->nums, record.nums);
  EXPECT_EQ(decoded->strs, record.strs);
}

TEST(JournalRecordTest, DecodeRejectsUnknownKindAndTrailingGarbage) {
  JournalRecord record = SampleRecord(1);
  std::string payload = EncodeRecord(record).substr(16);

  // Unknown kind (first 4 bytes little-endian).
  std::string bad_kind = payload;
  bad_kind[0] = '\xff';
  bad_kind[1] = '\xff';
  EXPECT_FALSE(DecodeRecordPayload(bad_kind).ok());

  // Trailing garbage after a well-formed record.
  EXPECT_FALSE(DecodeRecordPayload(payload + "x").ok());

  // Truncation anywhere inside the payload.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeRecordPayload(std::string_view(payload).substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

// --- writer + scan -----------------------------------------------------------

TEST(JournalWriterTest, AppendScanRoundTrip) {
  auto fs = std::make_shared<witos::MemFs>();
  JournalWriter writer(fs, {});
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.Append(SampleRecord(i)).ok());
  }
  EXPECT_EQ(writer.records_appended(), 10u);

  JournalScan scan = ScanJournal(fs.get(), kPath);
  EXPECT_TRUE(scan.clean) << scan.error;
  ASSERT_EQ(scan.records.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(scan.records[i].lsn, i + 1);  // lsn stamped by the writer
    EXPECT_EQ(scan.records[i].strs, SampleRecord(i).strs);
  }
  EXPECT_EQ(scan.valid_bytes, scan.total_bytes);
}

TEST(JournalWriterTest, MissingFileScansCleanAndEmpty) {
  auto fs = std::make_shared<witos::MemFs>();
  JournalScan scan = ScanJournal(fs.get(), "/nonexistent.wal");
  EXPECT_TRUE(scan.clean);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.total_bytes, 0u);
}

TEST(JournalWriterTest, ReopenContinuesWhereTheFileEnds) {
  auto fs = std::make_shared<witos::MemFs>();
  {
    JournalWriter writer(fs, {});
    ASSERT_TRUE(writer.Append(SampleRecord(0)).ok());
    ASSERT_TRUE(writer.Append(SampleRecord(1)).ok());
  }
  JournalWriter reopened(fs, {});
  reopened.set_next_lsn(3);
  ASSERT_TRUE(reopened.Append(SampleRecord(2)).ok());
  JournalScan scan = ScanJournal(fs.get(), kPath);
  EXPECT_TRUE(scan.clean);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[2].lsn, 3u);
}

TEST(JournalWriterTest, CrashDropsEverythingPastTheLastBarrier) {
  auto fs = std::make_shared<witos::MemFs>();
  JournalWriter::Options options;
  options.barrier_interval = 0;  // explicit barriers only
  JournalWriter writer(fs, options);
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(writer.Append(SampleRecord(i)).ok());
  }
  ASSERT_TRUE(writer.Barrier().ok());
  for (uint64_t i = 3; i < 5; ++i) {
    ASSERT_TRUE(writer.Append(SampleRecord(i)).ok());
  }

  // Crash: seal, then discard the unsynced tail.
  writer.Seal();
  EXPECT_TRUE(writer.sealed());
  EXPECT_EQ(writer.Append(SampleRecord(9)).error(), witos::Err::kPipe);
  ASSERT_TRUE(writer.DropUnsyncedTail().ok());

  JournalScan scan = ScanJournal(fs.get(), kPath);
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.records.size(), 3u);  // the two unsynced records are gone
}

TEST(JournalWriterTest, PerRecordBarrierIntervalMakesEveryAppendDurable) {
  auto fs = std::make_shared<witos::MemFs>();
  JournalWriter writer(fs, {});  // barrier_interval = 1
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(writer.Append(SampleRecord(i)).ok());
  }
  EXPECT_EQ(writer.durable_bytes(), writer.bytes_appended());
  writer.Seal();
  ASSERT_TRUE(writer.DropUnsyncedTail().ok());
  EXPECT_EQ(ScanJournal(fs.get(), kPath).records.size(), 4u);
}

TEST(JournalWriterTest, FilesystemErrorFailStopsTheWriter) {
  auto lower = std::make_shared<witos::MemFs>();
  auto plan = std::make_shared<witos::FaultPlan>();
  plan->FailNthOp(witos::FaultOpKind::kWrite, 2, witos::Err::kIo);
  auto faulty = std::make_shared<witos::ErrorInjectingVfs>(lower, plan);

  JournalWriter writer(faulty, {});
  ASSERT_TRUE(writer.Append(SampleRecord(0)).ok());
  EXPECT_EQ(writer.Append(SampleRecord(1)).error(), witos::Err::kIo);
  EXPECT_TRUE(writer.sealed());
  EXPECT_EQ(writer.errors(), 1u);
  // Fail-stop: everything after the hole is refused, not silently skipped.
  EXPECT_EQ(writer.Append(SampleRecord(2)).error(), witos::Err::kIo);
}

TEST(JournalWriterTest, TruncateAllKeepsTheLsnSequence) {
  auto fs = std::make_shared<witos::MemFs>();
  JournalWriter writer(fs, {});
  ASSERT_TRUE(writer.Append(SampleRecord(0)).ok());
  ASSERT_TRUE(writer.Append(SampleRecord(1)).ok());
  ASSERT_TRUE(writer.TruncateAll().ok());
  ASSERT_TRUE(writer.Append(SampleRecord(2)).ok());
  JournalScan scan = ScanJournal(fs.get(), kPath);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].lsn, 3u);  // lsn 3: the sequence survived the truncate
}

// --- corruption fuzzing ------------------------------------------------------

class JournalFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fs_ = std::make_shared<witos::MemFs>();
    JournalWriter writer(fs_, {});
    for (uint64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(writer.Append(SampleRecord(i)).ok());
      frame_end_.push_back(writer.bytes_appended());
    }
    bytes_ = Slurp(fs_.get(), kPath);
    ASSERT_EQ(bytes_.size(), frame_end_.back());
  }

  // Replaces the journal with `content` and scans it.
  JournalScan ScanBytes(const std::string& content) {
    auto fresh = std::make_shared<witos::MemFs>();
    fresh->ProvisionFile(kPath, content);
    return ScanJournal(fresh.get(), kPath);
  }

  size_t WholeFramesBefore(size_t cut) const {
    size_t count = 0;
    while (count < frame_end_.size() && frame_end_[count] <= cut) {
      ++count;
    }
    return count;
  }

  std::shared_ptr<witos::MemFs> fs_;
  std::vector<uint64_t> frame_end_;  // cumulative end offset of each frame
  std::string bytes_;
};

// Truncate at every byte boundary: the scan must return exactly the whole
// frames before the cut, flag the torn tail, and never read past it.
TEST_F(JournalFuzzTest, TruncationAtEveryByteFailsClosed) {
  for (size_t cut = 0; cut <= bytes_.size(); ++cut) {
    JournalScan scan = ScanBytes(bytes_.substr(0, cut));
    const size_t whole = WholeFramesBefore(cut);
    EXPECT_EQ(scan.records.size(), whole) << "cut at " << cut;
    const bool at_boundary = cut == 0 || frame_end_[whole > 0 ? whole - 1 : 0] == cut;
    EXPECT_EQ(scan.clean, at_boundary) << "cut at " << cut;
    EXPECT_LE(scan.valid_bytes, cut);
    for (size_t i = 0; i < scan.records.size(); ++i) {
      EXPECT_EQ(scan.records[i].lsn, i + 1);
    }
  }
}

// Flip one bit in every byte: replay stops at (or before) the corrupted
// frame — whatever survives is a valid prefix with intact checksums.
TEST_F(JournalFuzzTest, BitFlipAnywhereNeverReplaysCorruptRecords) {
  for (size_t pos = 0; pos < bytes_.size(); ++pos) {
    std::string mutated = bytes_;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << (pos % 8)));
    JournalScan scan = ScanBytes(mutated);
    EXPECT_FALSE(scan.clean) << "flip at " << pos;
    // The flipped byte lives in frame k; every record up to k-1 must still
    // decode identically, and nothing at or past k may appear.
    const size_t frame = WholeFramesBefore(pos);  // frames fully before pos
    EXPECT_LE(scan.records.size(), frame) << "flip at " << pos;
    for (size_t i = 0; i < scan.records.size(); ++i) {
      EXPECT_EQ(scan.records[i].strs, SampleRecord(i).strs);
    }
  }
}

// A garbage tail after valid frames: the prefix replays, the tail is
// rejected with a reason.
TEST_F(JournalFuzzTest, GarbageTailIsRejected) {
  uint64_t state = 0x9e3779b97f4a7c15ull;
  std::string garbage;
  for (int i = 0; i < 256; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    garbage.push_back(static_cast<char>(state >> 56));
  }
  JournalScan scan = ScanBytes(bytes_ + garbage);
  EXPECT_FALSE(scan.clean);
  EXPECT_FALSE(scan.error.empty());
  EXPECT_EQ(scan.records.size(), frame_end_.size());
  EXPECT_EQ(scan.valid_bytes, bytes_.size());
}

// A corrupt length prefix claiming a huge payload must be bounds-checked
// against the bytes actually present — never allocated.
TEST_F(JournalFuzzTest, OversizedLengthPrefixDoesNotAllocate) {
  std::string frame;
  frame.append("WJL1");                     // magic (little-endian 0x314c4a57)
  frame.append(8, '\0');                    // checksum (wrong, but len is checked first)
  frame.append("\xff\xff\xff\xff", 4);      // len = 4 GiB
  frame.append("short", 5);
  JournalScan scan = ScanBytes(bytes_ + frame);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.records.size(), frame_end_.size());

  // Same claim as the very first frame of an otherwise-empty journal.
  JournalScan empty_scan = ScanBytes(frame);
  EXPECT_FALSE(empty_scan.clean);
  EXPECT_TRUE(empty_scan.records.empty());
}

// Inner-frame corruption (not a torn tail): everything after the bad frame
// is rejected even if it is intact — replaying around a hole would reorder
// history.
TEST_F(JournalFuzzTest, InteriorCorruptionEndsTheValidPrefix) {
  std::string mutated = bytes_;
  const size_t inside_frame2 = static_cast<size_t>(frame_end_[1]) + 20;
  ASSERT_LT(inside_frame2, static_cast<size_t>(frame_end_[2]));
  mutated[inside_frame2] = static_cast<char>(mutated[inside_frame2] ^ 0x40);
  JournalScan scan = ScanBytes(mutated);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.records.size(), 2u);  // frames 0 and 1 only
}

}  // namespace
}  // namespace witdur
