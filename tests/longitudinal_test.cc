// A longitudinal integration test: several simulated days of IT operation —
// many tickets across all classes, maintenance scripts, a rogue admin's
// attack campaign woven through the legitimate work — ending with global
// invariants: classified content never left the organization, every log is
// intact, the triage queue surfaces the attacker, and the machines are
// clean (no leaked sessions, processes, mounts or cgroups).

#include <gtest/gtest.h>

#include "src/core/report.h"
#include "src/core/script_runner.h"
#include "src/core/shell.h"
#include "src/core/workflow.h"
#include "src/workload/topology.h"

namespace watchit {
namespace {

class LongitudinalTest : public ::testing::Test {
 protected:
  static constexpr size_t kTickets = 80;

  void SetUp() override {
    user_pc_ = &cluster_.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
    admin_pc_ = &cluster_.AddMachine("adminpc", witnet::Ipv4Addr(10, 0, 1, 51));

    dispatcher_.AddSpecialist("alice", {"T-1", "T-2", "T-3", "T-4", "T-5", "T-6"});
    dispatcher_.AddSpecialist("bob", {"T-6", "T-7", "T-8", "T-9", "T-10", "T-11"});
    dispatcher_.AddSpecialist("mallory", {"T-1", "T-2", "T-3", "T-4", "T-5", "T-6", "T-7",
                                          "T-8", "T-9", "T-10", "T-11"});
    user_pc_->tcb().AuthorizeModule("raid-ctl");

    witload::TicketGenerator::Options hist;
    hist.seed = 42;
    witload::TicketGenerator gen(hist);
    auto history = gen.GenerateBatch(900, witload::TicketGenerator::HistoricalDistribution());
    std::vector<std::pair<std::string, std::string>> labelled;
    for (const auto& t : history) {
      labelled.emplace_back(t.text, t.true_class);
    }
    ItFramework::Config config;
    config.lda.iterations = 120;
    framework_ = std::make_unique<ItFramework>(config);
    framework_->TrainOnHistory(labelled);
    workflow_ = std::make_unique<TicketWorkflow>(&cluster_, framework_.get(), &dispatcher_);
  }

  Cluster cluster_;
  Machine* user_pc_ = nullptr;
  Machine* admin_pc_ = nullptr;
  Dispatcher dispatcher_;
  std::unique_ptr<ItFramework> framework_;
  std::unique_ptr<TicketWorkflow> workflow_;
};

TEST_F(LongitudinalTest, WeeksOfOperationHoldAllInvariants) {
  witos::Kernel& kernel = user_pc_->kernel();

  // --- Phase 1: a stream of legitimate tickets ------------------------------
  witload::TicketGenerator::Options live;
  live.seed = 4242;
  live.with_ops = true;
  live.typo_rate = 0.03;
  witload::TicketGenerator gen(live);
  auto tickets =
      gen.GenerateBatch(kTickets, witload::TicketGenerator::EvaluationDistribution());
  size_t resolved = 0;
  size_t satisfied = 0;
  for (const auto& ticket : tickets) {
    auto result = workflow_->Process(ticket, "userpc", "adminpc");
    ASSERT_TRUE(result.ok()) << ticket.id;
    ++resolved;
    satisfied += result->satisfied_in_view ? 1u : 0u;
    kernel.clock().Advance(600ull * 1000000000ull);  // 10 minutes pass
  }
  EXPECT_EQ(resolved, kTickets);
  EXPECT_GT(satisfied, kTickets * 3 / 4);

  // --- Phase 2: nightly maintenance scripts ----------------------------------
  ScriptRunner scripts(user_pc_);
  for (const auto& report : scripts.RunAll(witload::ChefPuppetScripts())) {
    EXPECT_TRUE(report.fully_satisfied()) << report.script;
    EXPECT_TRUE(report.fully_contained()) << report.script;
  }

  // --- Phase 3a: mallory's habitual profile — occasional, spread-out,
  // boring broker use on legitimate tickets (what her baseline looks like).
  ClusterManager manager(&cluster_);
  for (int day = 0; day < 5; ++day) {
    Ticket routine;
    routine.id = "TKT-MALLORY-" + std::to_string(day);
    routine.target_machine = "userpc";
    routine.assigned_class = "T-5";
    routine.admin = "mallory";
    auto deployment = manager.Deploy(routine);
    ASSERT_TRUE(deployment.ok());
    AdminSession routine_session(user_pc_, deployment->session, deployment->certificate,
                                 &cluster_.ca());
    ASSERT_TRUE(routine_session.Login().ok());
    ASSERT_TRUE(routine_session.Pb(witbroker::kVerbPs, {}).ok());
    (void)manager.Expire(&*deployment);
    kernel.clock().Advance(8ull * 3600 * 1000000000ull);  // a workday passes
  }

  // --- Phase 3b: mallory's campaign, inside a legitimate T-6 ticket -----------
  Ticket rogue_ticket;
  rogue_ticket.id = "TKT-ROGUE";
  rogue_ticket.target_machine = "userpc";
  rogue_ticket.assigned_class = "T-6";
  rogue_ticket.admin = "mallory";
  auto rogue = manager.Deploy(rogue_ticket);
  ASSERT_TRUE(rogue.ok());
  AdminSession session(user_pc_, rogue->session, rogue->certificate, &cluster_.ca());
  ASSERT_TRUE(session.Login().ok());
  AdminShell shell(&session);
  // The campaign: probe, steal, exfiltrate, cover tracks.
  (void)shell.Execute("cat /home/user/documents/payroll.xlsx");
  (void)shell.Execute("cat /home/user/documents/patients.pdf");
  (void)shell.Execute("cat /etc/watchit/policy.conf");
  (void)kernel.Open(session.shell(), "/dev/mem", witos::kOpenRead);
  (void)kernel.Chroot(session.shell(), "/tmp");
  (void)shell.Execute("connect evil-host 443");
  for (int i = 0; i < 30; ++i) {
    (void)session.Pb(witbroker::kVerbReadFile, {"/etc/shadow"});
  }
  (void)manager.Expire(&*rogue);

  // --- Global invariants -------------------------------------------------------
  // 1. The confidential documents never moved: no session ever read them.
  //    (Their content strings cannot appear in any broker response or
  //    sniffer-passed payload; simplest proxy: the documents were denied on
  //    every attempt.)
  size_t doc_denials = kernel.audit().CountEvent(witos::AuditEvent::kFileDenied);
  EXPECT_GT(doc_denials, 0u);
  // 2. Every machine is clean: no active sessions, mounts or cgroups leak.
  for (Machine* machine : {user_pc_, admin_pc_}) {
    EXPECT_EQ(machine->containit().active_sessions(), 0u) << machine->name();
    auto host_mounts = machine->kernel().MountTable(1);
    for (const auto& entry : *host_mounts) {
      EXPECT_EQ(entry.mountpoint.find("/ConFS"), std::string::npos)
          << "leaked mount " << entry.mountpoint;
    }
    // Only the permanent cgroup (root) remains.
    EXPECT_EQ(machine->kernel().cgroups().size(), 1u) << machine->name();
    EXPECT_TRUE(machine->tcb_intact()) << machine->name();
  }
  // 3. The broker's secure log is intact and the audit spool persisted.
  EXPECT_TRUE(user_pc_->broker().log().Verify());
  auto spool = kernel.root_fs().SlurpForTest("/var/log/watchit/audit.log");
  ASSERT_TRUE(spool.ok());
  EXPECT_GT(spool->size(), 1000u);
  // 4. Forensics: mallory's rogue ticket tops the triage queue.
  ForensicReporter reporter(user_pc_);
  auto queue = reporter.TriageQueue();
  ASSERT_FALSE(queue.empty());
  EXPECT_EQ(queue.front().ticket_id, "TKT-ROGUE");
  EXPECT_GT(queue.front().severity, 40);
  // 5. Anomaly detection flags the shadow-file spree when fitted on the
  //    pre-incident baseline (fitting on the full stream would launder the
  //    rogue's own behaviour into her profile).
  std::vector<witbroker::BrokerEvent> baseline;
  for (const auto& event : user_pc_->broker().EventsSnapshot()) {
    if (event.ticket_id != "TKT-ROGUE") {
      baseline.push_back(event);
    }
  }
  witbroker::AnomalyDetector detector;
  detector.Fit(baseline);
  auto scores = detector.Analyze(user_pc_->broker().EventsSnapshot());
  size_t rogue_flagged = 0;
  const auto events = user_pc_->broker().EventsSnapshot();
  for (const auto& score : scores) {
    if (score.flagged && events[score.event_index].ticket_id == "TKT-ROGUE") {
      ++rogue_flagged;
    }
  }
  EXPECT_GT(rogue_flagged, 20u);
}

}  // namespace
}  // namespace watchit
