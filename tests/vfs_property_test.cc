// VFS property tests: longest-prefix mount resolution against an oracle,
// bind-mount aliasing, and chroot confinement over randomized path walks.

#include <gtest/gtest.h>

#include <random>

#include "src/os/kernel.h"
#include "src/os/path.h"

namespace witos {
namespace {

// Builds a nested mount tree; every mounted fs carries a marker file naming
// it. The oracle: for any path P, the serving fs is the mount with the
// longest mountpoint prefix of P.
class MountTreeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MountTreeTest, LongestPrefixWinsEverywhere) {
  Kernel kernel("host");
  std::mt19937 rng(GetParam());

  // Candidate mountpoints, nested several levels deep.
  std::vector<std::string> mountpoints = {"/a",          "/a/b",     "/a/b/c", "/a/x",
                                          "/d",          "/d/e",     "/f",     "/a/b/c/g",
                                          "/d/e/h",      "/f/i"};
  std::shuffle(mountpoints.begin(), mountpoints.end(), rng);
  // Mount a random prefix-subset (keeping parents before children so the
  // mountpoint directories exist at mount time).
  std::uniform_int_distribution<size_t> count_dist(3, mountpoints.size());
  size_t count = count_dist(rng);
  std::vector<std::string> chosen(mountpoints.begin(),
                                  mountpoints.begin() + static_cast<long>(count));
  std::sort(chosen.begin(), chosen.end(),
            [](const std::string& a, const std::string& b) { return a.size() < b.size(); });

  std::map<std::string, std::shared_ptr<MemFs>> mounted;  // mountpoint -> fs
  for (const auto& mp : chosen) {
    // Ensure the mountpoint directory exists in whatever fs currently serves
    // the parent path.
    std::string cur;
    for (const auto& comp : SplitPath(mp)) {
      cur += "/" + comp;
      (void)kernel.MkDir(1, cur);
    }
    auto fs = std::make_shared<MemFs>("tmpfs");
    fs->ProvisionFile("/marker", "fs:" + mp);
    // Provision nested mountpoint dirs inside this fs too.
    for (const auto& other : mountpoints) {
      if (PathIsUnder(other, mp) && other != mp) {
        fs->ProvisionDir(RebasePath(other, mp, "/"));
      }
    }
    ASSERT_TRUE(kernel.Mount(1, fs, mp, "tmpfs").ok()) << mp;
    mounted[mp] = fs;
  }

  // Oracle check: for every mountpoint, the marker visible at
  // <mp>/marker must be the one of the longest mounted prefix of that path.
  for (const auto& probe : mountpoints) {
    std::string marker_path = probe + "/marker";
    std::string best;
    for (const auto& [mp, fs] : mounted) {
      if (PathIsUnder(marker_path, mp) && mp.size() > best.size()) {
        best = mp;
      }
    }
    auto content = kernel.ReadFile(1, marker_path);
    if (best.empty()) {
      // Served by the root fs: no marker file there.
      EXPECT_FALSE(content.ok()) << marker_path;
      continue;
    }
    std::string expected_rel = RebasePath(marker_path, best, "/");
    if (expected_rel == "/marker") {
      ASSERT_TRUE(content.ok()) << marker_path;
      EXPECT_EQ(*content, "fs:" + best) << marker_path;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MountTreeTest, ::testing::Range(1u, 11u));

TEST(VfsPropertyTest, BindMountAliasesSourceExactly) {
  Kernel kernel("host");
  std::mt19937 rng(99);
  kernel.root_fs().ProvisionDir("/src/a/b");
  kernel.root_fs().ProvisionDir("/view");
  ASSERT_TRUE(kernel.BindMount(1, kernel.root_fs_ptr(), "/src", "/view", "bind").ok());
  // Any write through either name is visible through the other.
  std::uniform_int_distribution<int> coin(0, 1);
  for (int i = 0; i < 30; ++i) {
    std::string rel = "/a/b/f" + std::to_string(i);
    std::string via_src = "/src" + rel;
    std::string via_view = "/view" + rel;
    std::string content = "round-" + std::to_string(i);
    if (coin(rng) == 0) {
      ASSERT_TRUE(kernel.WriteFile(1, via_src, content).ok());
    } else {
      ASSERT_TRUE(kernel.WriteFile(1, via_view, content).ok());
    }
    EXPECT_EQ(*kernel.ReadFile(1, via_src), content);
    EXPECT_EQ(*kernel.ReadFile(1, via_view), content);
  }
}

// Chroot confinement property: no path expression a jailed process can
// utter resolves outside its jail subtree.
class JailEscapeSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(JailEscapeSweep, PathNeverEscapes) {
  Kernel kernel("host");
  kernel.root_fs().ProvisionFile("/jail/inside.txt", "in");
  kernel.root_fs().ProvisionFile("/host-secret.txt", "out");
  // A symlink inside the jail pointing above it (absolute + relative).
  kernel.root_fs().ProvisionSymlink("/jail/abs-up", "/host-secret.txt");
  kernel.root_fs().ProvisionSymlink("/jail/rel-up", "../host-secret.txt");
  Pid jailed = *kernel.Clone(1, "jailed", 0);
  ASSERT_TRUE(kernel.Chroot(jailed, "/jail").ok());

  auto content = kernel.ReadFile(jailed, GetParam());
  // Either the path fails to resolve, or it resolves to in-jail content —
  // never to the host secret.
  if (content.ok()) {
    EXPECT_NE(*content, "out") << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, JailEscapeSweep,
    ::testing::Values("/../host-secret.txt", "/../../host-secret.txt",
                      "/./../host-secret.txt", "/abs-up", "/rel-up",
                      "/inside.txt/../../host-secret.txt", "/..", "//../host-secret.txt",
                      "/a/../../host-secret.txt"));

}  // namespace
}  // namespace witos
