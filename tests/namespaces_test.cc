// NamespaceRegistry unit tests: identity, refcounting, copy semantics and
// the per-type payload behaviours that ContainIT builds on.

#include "src/os/namespaces.h"

#include <gtest/gtest.h>

namespace witos {
namespace {

TEST(NamespaceRegistryTest, InitialNamespacesExistForAllTypes) {
  NamespaceRegistry registry;
  for (size_t i = 0; i < kNsTypeCount; ++i) {
    auto type = static_cast<NsType>(i);
    NsId id = registry.initial(type);
    EXPECT_TRUE(registry.Exists(id));
    EXPECT_EQ(registry.TypeOf(id), type);
  }
  EXPECT_EQ(registry.live_count(), kNsTypeCount);
}

TEST(NamespaceRegistryTest, RefcountingDestroysUnreferenced) {
  NamespaceRegistry registry;
  NsId id = registry.Create(NsType::kUts, registry.initial(NsType::kUts));
  registry.Ref(id);
  registry.Ref(id);
  registry.Unref(id);
  EXPECT_TRUE(registry.Exists(id));
  registry.Unref(id);
  EXPECT_FALSE(registry.Exists(id));
}

TEST(NamespaceRegistryTest, UtsCopiesHostname) {
  NamespaceRegistry registry;
  registry.Uts(registry.initial(NsType::kUts)).hostname = "original";
  NsId copy = registry.Create(NsType::kUts, registry.initial(NsType::kUts));
  EXPECT_EQ(registry.Uts(copy).hostname, "original");
  registry.Uts(copy).hostname = "changed";
  EXPECT_EQ(registry.Uts(registry.initial(NsType::kUts)).hostname, "original");
}

TEST(NamespaceRegistryTest, MntCopiesTableSnapshot) {
  NamespaceRegistry registry;
  NsId initial = registry.initial(NsType::kMnt);
  MountEntry entry;
  entry.source = "sda";
  entry.mountpoint = "/";
  registry.Mnt(initial).table.push_back(entry);
  NsId copy = registry.Create(NsType::kMnt, initial);
  ASSERT_EQ(registry.Mnt(copy).table.size(), 1u);
  // Divergence after the copy.
  MountEntry extra;
  extra.mountpoint = "/mnt";
  registry.Mnt(copy).table.push_back(extra);
  EXPECT_EQ(registry.Mnt(initial).table.size(), 1u);
  EXPECT_EQ(registry.Mnt(copy).table.size(), 2u);
}

TEST(NamespaceRegistryTest, PidHierarchyLevelsAndDescendants) {
  NamespaceRegistry registry;
  NsId root = registry.initial(NsType::kPid);
  NsId child = registry.Create(NsType::kPid, root);
  NsId grandchild = registry.Create(NsType::kPid, child);
  EXPECT_EQ(registry.Pidns(child).level, 1u);
  EXPECT_EQ(registry.Pidns(grandchild).level, 2u);
  EXPECT_TRUE(registry.PidNsIsDescendant(grandchild, root));
  EXPECT_TRUE(registry.PidNsIsDescendant(grandchild, child));
  EXPECT_TRUE(registry.PidNsIsDescendant(child, child));
  EXPECT_FALSE(registry.PidNsIsDescendant(root, child));
  NsId sibling = registry.Create(NsType::kPid, root);
  EXPECT_FALSE(registry.PidNsIsDescendant(grandchild, sibling));
}

TEST(NamespaceRegistryTest, XclInheritsExclusionTable) {
  NamespaceRegistry registry;
  NsId parent = registry.Create(NsType::kXcl, registry.initial(NsType::kXcl));
  registry.Xcl(parent).excluded = {"/secret", "/vault"};
  NsId child = registry.Create(NsType::kXcl, parent);
  EXPECT_EQ(registry.Xcl(child).excluded.size(), 2u);
  EXPECT_EQ(registry.Xcl(child).parent, parent);
  // Divergence after inheritance.
  registry.Xcl(child).excluded.push_back("/more");
  EXPECT_EQ(registry.Xcl(parent).excluded.size(), 2u);
}

TEST(XclNamespaceTest, ExclusionMatching) {
  XclNamespace xcl;
  xcl.excluded = {"/secret", "/home/user/documents"};
  EXPECT_TRUE(xcl.IsExcluded("/secret"));
  EXPECT_TRUE(xcl.IsExcluded("/secret/deep/file"));
  EXPECT_TRUE(xcl.IsExcluded("/home/user/documents/x.pdf"));
  EXPECT_FALSE(xcl.IsExcluded("/secrets"));  // no partial component match
  EXPECT_FALSE(xcl.IsExcluded("/home/user"));
  EXPECT_FALSE(xcl.IsExcluded("/"));
}

TEST(UidNamespaceTest, RangeMappingAndOverflow) {
  UidNamespace ns;
  ns.uid_map = {{0, 100000, 1}, {1000, 1000, 50}};
  EXPECT_EQ(ns.MapUidToHost(0), 100000u);     // rootless-style root mapping
  EXPECT_EQ(ns.MapUidToHost(1000), 1000u);    // identity range start
  EXPECT_EQ(ns.MapUidToHost(1049), 1049u);    // inside the range
  EXPECT_EQ(ns.MapUidToHost(1050), kOverflowUid);  // one past the range
  EXPECT_EQ(ns.MapUidToHost(5), kOverflowUid);     // unmapped
}

TEST(CloneFlagsTest, EveryTypeHasADistinctFlag) {
  uint32_t seen = 0;
  for (size_t i = 0; i < kNsTypeCount; ++i) {
    uint32_t flag = CloneFlagFor(static_cast<NsType>(i));
    EXPECT_NE(flag, 0u);
    EXPECT_EQ(seen & flag, 0u);  // no duplicates
    seen |= flag;
  }
  EXPECT_EQ(NsTypeName(NsType::kXcl), "xcl");
}

}  // namespace
}  // namespace witos
