// Forensic reporting tests: a benign session scores low; a probing rogue
// floats to the top of the triage queue.

#include "src/core/report.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/core/session.h"

namespace watchit {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &cluster_.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
    manager_ = std::make_unique<ClusterManager>(&cluster_);
  }

  Deployment Deploy(const std::string& cls, const std::string& id, const std::string& admin) {
    Ticket ticket;
    ticket.id = id;
    ticket.target_machine = "userpc";
    ticket.assigned_class = cls;
    ticket.admin = admin;
    return *manager_->Deploy(ticket);
  }

  Cluster cluster_;
  Machine* machine_ = nullptr;
  std::unique_ptr<ClusterManager> manager_;
};

TEST_F(ReportTest, BenignSessionScoresLow) {
  Deployment deployment = Deploy("T-1", "TKT-GOOD", "alice");
  AdminSession session(machine_, deployment.session, deployment.certificate, &cluster_.ca());
  ASSERT_TRUE(session.Login().ok());
  ASSERT_TRUE(session.ReadFile("/home/user/.matlab/license.lic").ok());
  ASSERT_TRUE(session.Connect("license-server", 0).ok());

  ForensicReporter reporter(machine_);
  auto forensics = reporter.Collect(deployment.session);
  ASSERT_TRUE(forensics.ok());
  EXPECT_EQ(forensics->admin, "alice");
  EXPECT_GT(forensics->fs_ops, 0u);
  EXPECT_EQ(forensics->fs_denied, 0u);
  EXPECT_EQ(forensics->severity, 0);
  std::string rendered = ForensicReporter::Render(*forensics);
  EXPECT_NE(rendered.find("TKT-GOOD"), std::string::npos);
  EXPECT_NE(rendered.find("severity: 0"), std::string::npos);
}

TEST_F(ReportTest, ProbingSessionScoresHighAndTriagesFirst) {
  Deployment good = Deploy("T-1", "TKT-GOOD", "alice");
  AdminSession good_session(machine_, good.session, good.certificate, &cluster_.ca());
  ASSERT_TRUE(good_session.Login().ok());
  (void)good_session.ReadFile("/home/user/.matlab/license.lic");

  Deployment bad = Deploy("T-6", "TKT-BAD", "mallory");
  AdminSession bad_session(machine_, bad.session, bad.certificate, &cluster_.ca());
  ASSERT_TRUE(bad_session.Login().ok());
  witos::Kernel& kernel = machine_->kernel();
  witos::Pid shell = bad_session.shell();
  // Probe the sandbox: chroot escape, /dev/mem, classified file.
  (void)kernel.MkDir(shell, "/tmp/jailbreak");
  (void)kernel.Chroot(shell, "/tmp/jailbreak");
  (void)kernel.Open(shell, "/dev/mem", witos::kOpenRead);
  (void)bad_session.ReadFile("/home/user/documents/payroll.xlsx");
  (void)bad_session.ReadFile("/home/user/documents/patients.pdf");

  ForensicReporter reporter(machine_);
  auto bad_forensics = reporter.Collect(bad.session);
  ASSERT_TRUE(bad_forensics.ok());
  EXPECT_GE(bad_forensics->capability_denials, 2u);
  EXPECT_GE(bad_forensics->fs_denied, 2u);
  EXPECT_GT(bad_forensics->severity, 30);
  EXPECT_FALSE(bad_forensics->denied_paths.empty());

  auto queue = reporter.TriageQueue();
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue[0].ticket_id, "TKT-BAD");
  EXPECT_EQ(queue[1].ticket_id, "TKT-GOOD");
  EXPECT_GT(queue[0].severity, queue[1].severity);
}

TEST_F(ReportTest, BrokerActivityAppearsInReport) {
  Deployment deployment = Deploy("T-5", "TKT-PB", "alice");
  AdminSession session(machine_, deployment.session, deployment.certificate, &cluster_.ca());
  ASSERT_TRUE(session.Login().ok());
  ASSERT_TRUE(session.Pb(witbroker::kVerbPs, {}).ok());
  ASSERT_FALSE(session.Pb(witbroker::kVerbDriverUpdate, {"rootkit"}).ok());  // denied

  ForensicReporter reporter(machine_);
  auto forensics = reporter.Collect(deployment.session);
  ASSERT_TRUE(forensics.ok());
  EXPECT_EQ(forensics->broker_requests, 2u);
  EXPECT_EQ(forensics->broker_denied, 1u);
  std::string rendered = ForensicReporter::Render(*forensics);
  EXPECT_NE(rendered.find("DENY driver_update rootkit"), std::string::npos);
}

TEST_F(ReportTest, UnknownSessionIsSrch) {
  ForensicReporter reporter(machine_);
  EXPECT_EQ(reporter.Collect(999).error(), witos::Err::kSrch);
}

}  // namespace
}  // namespace watchit
