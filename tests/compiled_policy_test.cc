// CompiledPolicy: the differential property suite pinning the compiled
// evaluator decision- and rule-name-identical to the legacy linear scan,
// plus compile-time diagnostics (duplicate names, shadowed rules) and the
// head-size/cacheability contract the verdict cache builds on.

#include "src/fs/compiled_policy.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/fs/itfs_policy.h"
#include "src/fs/signature.h"

namespace witfs {
namespace {

// When non-null, the property-test custom detectors append their rule tag
// here on every invocation, so the test can assert the compiled evaluator
// reproduces the legacy detector call sequence exactly (stateful detectors
// must observe identical invocations, not just identical final decisions).
std::vector<int>* g_detector_log = nullptr;

ItfsRule RandomRule(std::mt19937* rng, int index) {
  static const std::vector<std::string> kExts = {"pdf", "xlsx", "log", "txt",
                                                 "jpg", "KEY",  "tar", "csv"};
  static const std::vector<std::string> kPrefixes = {
      "/",         "/home",           "/home/user", "/etc",
      "/usr/watchit", "/home/user/docs", "/var/log",   "/a/b"};
  static const std::vector<FileClass> kClasses = {
      FileClass::kText, FileClass::kJpeg, FileClass::kPdf,
      FileClass::kZipOffice, FileClass::kElf, FileClass::kEncrypted};

  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> d4(0, 3);
  std::uniform_int_distribution<size_t> ext_pick(0, kExts.size() - 1);
  std::uniform_int_distribution<size_t> prefix_pick(0, kPrefixes.size() - 1);
  std::uniform_int_distribution<size_t> class_pick(0, kClasses.size() - 1);

  ItfsRule rule;
  rule.name = "r" + std::to_string(index);
  int action = d4(*rng);
  rule.action = action == 0   ? RuleAction::kLogOnly
                : action == 1 ? RuleAction::kAllow
                              : RuleAction::kDeny;
  rule.write_only = d4(*rng) == 0;
  int num_ext = d4(*rng);
  for (int i = 0; i < num_ext; ++i) {
    rule.extensions.push_back(kExts[ext_pick(*rng)]);
  }
  int num_prefix = d4(*rng) - 1;
  for (int i = 0; i < num_prefix; ++i) {
    rule.path_prefixes.push_back(kPrefixes[prefix_pick(*rng)]);
  }
  int num_sig = d4(*rng) - 1;
  for (int i = 0; i < num_sig; ++i) {
    rule.signatures.push_back(kClasses[class_pick(*rng)]);
  }
  if (d4(*rng) == 0) {
    // Pure (deterministic) detector; logs its invocation for the
    // call-sequence assertion.
    int tag = index;
    int flavor = d4(*rng);
    rule.custom = [tag, flavor](const std::string& path, std::string_view head) {
      if (g_detector_log != nullptr) {
        g_detector_log->push_back(tag);
      }
      switch (flavor) {
        case 0:
          return path.find("secret") != std::string::npos;
        case 1:
          return !head.empty() && head[0] == '%';
        case 2:
          return head.size() > 8;
        default:
          return false;
      }
    };
  }
  return rule;
}

TEST(CompiledPolicyTest, DifferentialPropertyTenThousandCases) {
  // 500 random policies x 24 (path, op, head) probes = 12000 comparisons.
  // Probes deliberately include non-normalized, relative, dotted, and
  // extension-edge-case paths: the compiled trie must reproduce
  // PathIsUnder's *literal* string semantics, not a smarter one.
  static const std::vector<std::string> kPaths = {
      "/home/user/report.pdf", "/home/user/docs/x.xlsx", "/etc/passwd",
      "/usr/watchit/broker",   "/home/user",             "/a/b/c.tar",
      "/a//b/c.log",           "/a/./b/c.log",           "relative/path.pdf",
      "/",                     "/home/user/.bashrc",     "/home/user/file.",
      "/home/user/FILE.PDF",   "/var/log/secret.txt",    "/x",
      "/home/userx/evil.pdf"};
  static const std::vector<std::string> kHeads = {
      "",
      "%PDF-1.4 secret report",
      std::string("PK\x03\x04") + "zip",
      "\xFF\xD8\xFF\xE0jfif",
      "plain text content here",
      std::string(64, '\xA7'),
      "\x7f"
      "ELF",
      "x"};
  static const std::vector<ItfsOpKind> kOps = {
      ItfsOpKind::kOpen,   ItfsOpKind::kRead,   ItfsOpKind::kWrite,
      ItfsOpKind::kUnlink, ItfsOpKind::kRename, ItfsOpKind::kAttr,
      ItfsOpKind::kReaddir};

  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> rule_count(0, 9);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<size_t> path_pick(0, kPaths.size() - 1);
  std::uniform_int_distribution<size_t> head_pick(0, kHeads.size() - 1);
  std::uniform_int_distribution<size_t> op_pick(0, kOps.size() - 1);
  std::uniform_int_distribution<size_t> limit_pick(0, 3);
  static const size_t kLimits[] = {16, 64, 4096, 64 * 1024};

  size_t comparisons = 0;
  for (int trial = 0; trial < 500; ++trial) {
    ItfsPolicy policy;
    int n = rule_count(rng);
    for (int i = 0; i < n; ++i) {
      policy.AddRule(RandomRule(&rng, i));
    }
    policy.set_inspection_mode(coin(rng) != 0 ? InspectionMode::kSignature
                                              : InspectionMode::kExtensionOnly);
    policy.set_log_all(coin(rng) != 0);
    policy.set_content_scan_limit(kLimits[limit_pick(rng)]);
    auto compiled = policy.Compile();
    ASSERT_NE(compiled, nullptr);
    EXPECT_EQ(compiled->rule_count(), static_cast<size_t>(n));
    EXPECT_EQ(compiled->NeedsContent(), policy.NeedsContent());

    for (int probe = 0; probe < 24; ++probe) {
      const std::string& path = kPaths[path_pick(rng)];
      const std::string& head = kHeads[head_pick(rng)];
      ItfsOpKind op = kOps[op_pick(rng)];

      std::vector<int> legacy_calls;
      std::vector<int> compiled_calls;
      g_detector_log = &legacy_calls;
      PolicyDecision legacy = policy.Evaluate(op, path, head);
      g_detector_log = &compiled_calls;
      PolicyDecision fast = compiled->Evaluate(op, path, head);
      g_detector_log = nullptr;

      ASSERT_EQ(fast.deny, legacy.deny)
          << "trial " << trial << " path=" << path << " op=" << ItfsOpKindName(op)
          << " head_len=" << head.size();
      ASSERT_EQ(fast.rule, legacy.rule)
          << "trial " << trial << " path=" << path << " op=" << ItfsOpKindName(op);
      ASSERT_EQ(compiled_calls, legacy_calls)
          << "detector invocation sequences diverged, trial " << trial;
      ++comparisons;
    }
  }
  EXPECT_GE(comparisons, 10000u);
}

TEST(CompiledPolicyTest, ClassifiedEvaluationMatchesRawForCacheablePolicies) {
  // The verdict-cache path evaluates with (class, has_content) instead of
  // raw bytes. For policies without custom detectors the two forms must be
  // indistinguishable — this is what makes caching the class sound.
  std::mt19937 rng(77);
  std::uniform_int_distribution<int> rule_count(1, 8);
  for (int trial = 0; trial < 200; ++trial) {
    ItfsPolicy policy;
    int n = rule_count(rng);
    for (int i = 0; i < n; ++i) {
      ItfsRule rule = RandomRule(&rng, i);
      rule.custom = nullptr;  // cacheable policies have no detectors
      policy.AddRule(std::move(rule));
    }
    policy.set_inspection_mode(InspectionMode::kSignature);
    auto compiled = policy.Compile();
    ASSERT_TRUE(compiled->CacheableVerdicts() || !compiled->NeedsContent());

    for (const std::string& path :
         {std::string("/home/user/report.pdf"), std::string("/etc/passwd"),
          std::string("/a/b/c.tar")}) {
      for (const std::string& head :
           {std::string(""), std::string("%PDF-1.4"), std::string("plain")}) {
        for (ItfsOpKind op : {ItfsOpKind::kOpen, ItfsOpKind::kWrite}) {
          PolicyDecision raw = compiled->Evaluate(op, path, head);
          PolicyDecision classified = compiled->EvaluateClassified(
              op, path, DetectSignature(head), !head.empty());
          EXPECT_EQ(raw.deny, classified.deny) << path << " " << head;
          EXPECT_EQ(raw.rule, classified.rule) << path << " " << head;
        }
      }
    }
  }
}

TEST(CompiledPolicyTest, RootPrefixMatchesAbsolutePathsOnly) {
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::ProtectPathsRule({"/"}));
  auto compiled = policy.Compile();
  EXPECT_TRUE(compiled->Evaluate(ItfsOpKind::kOpen, "/anything", {}).deny);
  EXPECT_TRUE(compiled->Evaluate(ItfsOpKind::kOpen, "/", {}).deny);
  EXPECT_FALSE(compiled->Evaluate(ItfsOpKind::kOpen, "relative", {}).deny);
  EXPECT_FALSE(compiled->Evaluate(ItfsOpKind::kOpen, "", {}).deny);
}

TEST(CompiledPolicyTest, TrieReproducesLiteralPrefixBoundaries) {
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::ProtectPathsRule({"/home/user"}));
  auto compiled = policy.Compile();
  EXPECT_TRUE(compiled->Evaluate(ItfsOpKind::kOpen, "/home/user", {}).deny);
  EXPECT_TRUE(compiled->Evaluate(ItfsOpKind::kOpen, "/home/user/f", {}).deny);
  EXPECT_TRUE(compiled->Evaluate(ItfsOpKind::kOpen, "/home/user/", {}).deny);
  // "/home/userx" shares the string prefix but not the component boundary.
  EXPECT_FALSE(compiled->Evaluate(ItfsOpKind::kOpen, "/home/userx", {}).deny);
  // A "." component breaks the *literal* match, exactly like PathIsUnder.
  EXPECT_FALSE(compiled->Evaluate(ItfsOpKind::kOpen, "/home/./user/f", {}).deny);
  // A doubled slash inside the prefix span breaks it too...
  EXPECT_FALSE(compiled->Evaluate(ItfsOpKind::kOpen, "/home//user/f", {}).deny);
  // ...but after the prefix it is irrelevant.
  EXPECT_TRUE(compiled->Evaluate(ItfsOpKind::kOpen, "/home/user//f", {}).deny);
}

TEST(CompiledPolicyTest, DuplicateNameDiagnostic) {
  ItfsPolicy policy;
  ItfsRule a;
  a.name = "same";
  a.extensions = {"pdf"};
  policy.AddRule(a);
  ItfsRule b;
  b.name = "same";
  b.extensions = {"txt"};
  policy.AddRule(b);
  std::vector<CompileDiagnostic> diags;
  auto compiled = policy.Compile(&diags);
  ASSERT_NE(compiled, nullptr);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, CompileDiagnostic::Kind::kDuplicateName);
  EXPECT_EQ(diags[0].rule_index, 1u);
  EXPECT_EQ(diags[0].earlier_index, 0u);
}

TEST(CompiledPolicyTest, ShadowedRuleDiagnostics) {
  // Rule 1's extension set is a subset of deny rule 0's -> it can never fire.
  {
    ItfsPolicy policy;
    ItfsRule wide;
    wide.name = "wide";
    wide.action = RuleAction::kDeny;
    wide.extensions = {"pdf", "xlsx"};
    policy.AddRule(wide);
    ItfsRule narrow;
    narrow.name = "narrow";
    narrow.action = RuleAction::kLogOnly;
    narrow.extensions = {"pdf"};
    policy.AddRule(narrow);
    std::vector<CompileDiagnostic> diags;
    (void)policy.Compile(&diags);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, CompileDiagnostic::Kind::kShadowedRule);
    EXPECT_EQ(diags[0].rule_index, 1u);
    EXPECT_EQ(diags[0].earlier_index, 0u);
  }
  // Prefix containment shadows too.
  {
    ItfsPolicy policy;
    policy.AddRule(ItfsPolicy::ProtectPathsRule({"/home"}));
    ItfsRule under;
    under.name = "under";
    under.action = RuleAction::kDeny;
    under.path_prefixes = {"/home/user/docs"};
    policy.AddRule(under);
    std::vector<CompileDiagnostic> diags;
    (void)policy.Compile(&diags);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].kind, CompileDiagnostic::Kind::kShadowedRule);
  }
}

TEST(CompiledPolicyTest, NoFalseShadowDiagnostics) {
  std::vector<CompileDiagnostic> diags;
  // A write-only deny does not shadow an any-op rule (reads still reach it).
  {
    ItfsPolicy policy;
    policy.AddRule(ItfsPolicy::ReadOnlyRule({"/etc"}));  // deny, write-only
    ItfsRule watch;
    watch.name = "watch-etc";
    watch.action = RuleAction::kLogOnly;
    watch.path_prefixes = {"/etc"};
    policy.AddRule(watch);
    diags.clear();
    (void)policy.Compile(&diags);
    EXPECT_TRUE(diags.empty());
  }
  // A log-only earlier rule never shadows (the scan continues past it).
  {
    ItfsPolicy policy;
    ItfsRule log_rule;
    log_rule.name = "log-pdf";
    log_rule.action = RuleAction::kLogOnly;
    log_rule.extensions = {"pdf"};
    policy.AddRule(log_rule);
    ItfsRule deny_rule;
    deny_rule.name = "deny-pdf";
    deny_rule.action = RuleAction::kDeny;
    deny_rule.extensions = {"pdf"};
    policy.AddRule(deny_rule);
    diags.clear();
    (void)policy.Compile(&diags);
    EXPECT_TRUE(diags.empty());
  }
  // A custom detector may match content no selector describes: never
  // reported as shadowed.
  {
    ItfsPolicy policy;
    ItfsRule wide;
    wide.name = "wide";
    wide.action = RuleAction::kDeny;
    wide.extensions = {"pdf"};
    policy.AddRule(wide);
    ItfsRule det;
    det.name = "detector";
    det.action = RuleAction::kDeny;
    det.extensions = {"pdf"};
    det.custom = [](const std::string&, std::string_view) { return false; };
    policy.AddRule(det);
    diags.clear();
    (void)policy.Compile(&diags);
    EXPECT_TRUE(diags.empty());
  }
  // The canned hard-constraint pair must compile clean.
  {
    ItfsPolicy policy;
    policy.AddRule(ItfsPolicy::ProtectPathsRule({"/usr/watchit", "/etc/watchit"}));
    policy.AddRule(ItfsPolicy::DenyDocumentsRule());
    diags.clear();
    (void)policy.Compile(&diags);
    EXPECT_TRUE(diags.empty());
  }
}

TEST(CompiledPolicyTest, RequiredHeadBytesContract) {
  // Pure signature policy: classification consumes at most the magic-byte
  // head, so the compiled policy clamps the per-gate read to 64 bytes no
  // matter how deep the configured scan window is.
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::DenyDocumentsRule());
  policy.set_inspection_mode(InspectionMode::kSignature);
  policy.set_content_scan_limit(64 * 1024);
  auto compiled = policy.Compile();
  EXPECT_TRUE(compiled->NeedsContent());
  EXPECT_TRUE(compiled->CacheableVerdicts());
  EXPECT_EQ(compiled->required_head_bytes(), kSignatureHeadBytes);

  // A scan limit below 64 wins the min.
  policy.set_content_scan_limit(16);
  EXPECT_EQ(policy.Compile()->required_head_bytes(), 16u);
  policy.set_content_scan_limit(64 * 1024);

  // A custom detector may scan deep content: the full window is honored and
  // verdicts become uncacheable (detectors may be stateful).
  ItfsRule det;
  det.name = "deep";
  det.custom = [](const std::string&, std::string_view) { return false; };
  policy.AddRule(std::move(det));
  compiled = policy.Compile();
  EXPECT_TRUE(compiled->has_custom_rules());
  EXPECT_FALSE(compiled->CacheableVerdicts());
  EXPECT_EQ(compiled->required_head_bytes(), 64u * 1024u);

  // Extension mode never needs content at all.
  ItfsPolicy ext_only;
  ext_only.AddRule(ItfsPolicy::DenyDocumentsRule());
  compiled = ext_only.Compile();
  EXPECT_FALSE(compiled->NeedsContent());
  EXPECT_EQ(compiled->required_head_bytes(), 0u);
}

TEST(CompiledPolicyTest, CompileIsSnapshotIsolatedFromBuilder) {
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::DenyDocumentsRule());
  auto compiled = policy.Compile();
  EXPECT_EQ(compiled->rule_count(), 1u);
  // Later builder mutations must not leak into the compiled snapshot.
  policy.AddRule(ItfsPolicy::ProtectPathsRule({"/etc"}));
  policy.set_log_all(false);
  EXPECT_EQ(compiled->rule_count(), 1u);
  EXPECT_TRUE(compiled->log_all());
  EXPECT_FALSE(compiled->Evaluate(ItfsOpKind::kOpen, "/etc/passwd", {}).deny);
  EXPECT_TRUE(policy.Compile()->Evaluate(ItfsOpKind::kOpen, "/etc/passwd", {}).deny);
}

TEST(CompiledPolicyTest, IndexSizesAreReported) {
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::DenyDocumentsRule());
  policy.AddRule(ItfsPolicy::ProtectPathsRule({"/usr/watchit", "/etc/watchit"}));
  auto compiled = policy.Compile();
  // Root + usr + usr/watchit + etc + etc/watchit.
  EXPECT_EQ(compiled->trie_node_count(), 5u);
  EXPECT_GE(compiled->extension_slot_count(), DocumentExtensions().size());
  EXPECT_GT(compiled->compile_ns(), 0u);
}

}  // namespace
}  // namespace witfs
