// Dispatcher and end-to-end workflow tests, including the Attack-10
// single-class hardening and T-9's dual-machine deployment.

#include "src/core/workflow.h"

#include <gtest/gtest.h>

namespace watchit {
namespace {

TEST(DispatcherTest, AssignsByExpertiseLeastLoaded) {
  Dispatcher dispatcher;
  dispatcher.AddSpecialist("alice", {"T-1", "T-6"});
  dispatcher.AddSpecialist("bob", {"T-6"});
  // First T-6 goes to whoever is least loaded (alice, index order).
  EXPECT_EQ(*dispatcher.Assign("T-6"), "alice");
  // Second T-6 goes to bob (alice now has an open ticket).
  EXPECT_EQ(*dispatcher.Assign("T-6"), "bob");
  // T-1 only alice can do, despite her load.
  EXPECT_EQ(*dispatcher.Assign("T-1"), "alice");
  // Nobody handles T-9.
  EXPECT_EQ(dispatcher.Assign("T-9").error(), witos::Err::kSrch);
  EXPECT_TRUE(dispatcher.Complete("alice").ok());
  EXPECT_EQ(dispatcher.Find("alice")->open_tickets, 1u);
  EXPECT_EQ(dispatcher.Find("alice")->total_assigned, 2u);
}

TEST(DispatcherTest, CompleteErrorsAreLoud) {
  Dispatcher dispatcher;
  dispatcher.AddSpecialist("alice", {"T-1"});
  // Completing for an admin who is not on the roster is an accounting bug.
  EXPECT_EQ(dispatcher.Complete("ghost").error(), witos::Err::kSrch);
  // ... as is completing more tickets than were assigned.
  EXPECT_EQ(dispatcher.Complete("alice").error(), witos::Err::kInval);
  ASSERT_TRUE(dispatcher.Assign("T-1").ok());
  EXPECT_TRUE(dispatcher.Complete("alice").ok());
  EXPECT_EQ(dispatcher.Complete("alice").error(), witos::Err::kInval);
}

TEST(DispatcherTest, RotationSharesLoadTiesFairly) {
  Dispatcher dispatcher;
  dispatcher.AddSpecialist("alice", {"T-1"});
  dispatcher.AddSpecialist("bob", {"T-1"});
  dispatcher.AddSpecialist("carol", {"T-1"});
  // Assign-then-complete keeps everyone tied at zero load; without the
  // rotating tie-break, alice would absorb all 300 tickets.
  for (int i = 0; i < 300; ++i) {
    auto admin = dispatcher.Assign("T-1");
    ASSERT_TRUE(admin.ok());
    ASSERT_TRUE(dispatcher.Complete(*admin).ok());
  }
  EXPECT_EQ(dispatcher.Find("alice")->total_assigned, 100u);
  EXPECT_EQ(dispatcher.Find("bob")->total_assigned, 100u);
  EXPECT_EQ(dispatcher.Find("carol")->total_assigned, 100u);
}

TEST(DispatcherTest, SingleClassHardeningPinsAdmins) {
  Dispatcher::Options options;
  options.single_class_per_admin = true;
  Dispatcher dispatcher(options);
  dispatcher.AddSpecialist("mallory", {"T-1", "T-6", "T-8"});
  dispatcher.AddSpecialist("carol", {"T-1", "T-6"});
  EXPECT_EQ(*dispatcher.Assign("T-1"), "mallory");
  // Mallory is now pinned to T-1: the T-6 ticket must go to carol even
  // though mallory is qualified — no view stringing across classes.
  EXPECT_EQ(*dispatcher.Assign("T-6"), "carol");
  // And T-8 has no unpinned qualified admin left.
  EXPECT_EQ(dispatcher.Assign("T-8").error(), witos::Err::kSrch);
  // Mallory keeps getting T-1.
  EXPECT_EQ(*dispatcher.Assign("T-1"), "mallory");
  EXPECT_EQ(dispatcher.pinned_classes().at("mallory"), "T-1");
}

class WorkflowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
    cluster_.AddMachine("adminpc", witnet::Ipv4Addr(10, 0, 1, 51));
    dispatcher_.AddSpecialist("alice", {"T-1", "T-2", "T-3", "T-4", "T-5", "T-6", "T-7",
                                        "T-8", "T-9", "T-10", "T-11"});
    // A tiny trained framework.
    witload::TicketGenerator::Options options;
    options.seed = 5;
    witload::TicketGenerator gen(options);
    auto history = gen.GenerateBatch(400, witload::TicketGenerator::HistoricalDistribution());
    std::vector<std::pair<std::string, std::string>> labelled;
    for (const auto& t : history) {
      labelled.emplace_back(t.text, t.true_class);
    }
    ItFramework::Config config;
    config.lda.iterations = 80;
    framework_ = std::make_unique<ItFramework>(config);
    framework_->TrainOnHistory(labelled);
    workflow_ = std::make_unique<TicketWorkflow>(&cluster_, framework_.get(), &dispatcher_);
  }

  witload::GeneratedTicket Make(int cls) {
    witload::TicketGenerator::Options options;
    options.seed = 77;
    options.with_ops = true;
    witload::TicketGenerator gen(options);
    return gen.Generate(cls);
  }

  Cluster cluster_;
  Dispatcher dispatcher_;
  std::unique_ptr<ItFramework> framework_;
  std::unique_ptr<TicketWorkflow> workflow_;
};

TEST_F(WorkflowTest, ProcessesTicketEndToEnd) {
  auto resolved = workflow_->Process(Make(1), "userpc");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->ticket.admin, "alice");
  EXPECT_EQ(resolved->deployments.size(), 1u);
  EXPECT_FALSE(resolved->replays.empty());
  // Sessions cleaned up, dispatcher load back to zero.
  EXPECT_EQ(cluster_.FindMachine("userpc")->containit().active_sessions(), 0u);
  EXPECT_EQ(dispatcher_.Find("alice")->open_tickets, 0u);
}

TEST_F(WorkflowTest, T9DeploysOnBothMachines) {
  auto resolved = workflow_->Process(Make(9), "userpc", "adminpc");
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved->deployments.size(), 2u);
  EXPECT_EQ(resolved->deployments[0].machine->name(), "userpc");
  EXPECT_EQ(resolved->deployments[1].machine->name(), "adminpc");
  // Both expired after processing.
  EXPECT_EQ(cluster_.FindMachine("userpc")->containit().active_sessions(), 0u);
  EXPECT_EQ(cluster_.FindMachine("adminpc")->containit().active_sessions(), 0u);
}

TEST_F(WorkflowTest, NonT9DeploysOnce) {
  auto resolved = workflow_->Process(Make(2), "userpc", "adminpc");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->deployments.size(), 1u);
}

TEST_F(WorkflowTest, UnknownMachineFails) {
  EXPECT_FALSE(workflow_->Process(Make(1), "ghost").ok());
}

TEST_F(WorkflowTest, UnqualifiedRosterFails) {
  Dispatcher empty;
  TicketWorkflow workflow(&cluster_, framework_.get(), &empty);
  EXPECT_EQ(workflow.Process(Make(1), "userpc").error(), witos::Err::kSrch);
}

}  // namespace
}  // namespace watchit
