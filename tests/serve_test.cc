// witserve tests: bounded-queue admission control, the shared-nothing
// worker pool with work stealing, the open-loop load generator, and the
// concurrency contracts the serving engine leans on (SecureLog hash-chain
// linearity under concurrent appenders, anomaly analysis over a consistent
// broker snapshot, SimClock single-owner discipline).

#include "src/serve/loadgen.h"
#include "src/serve/pool.h"
#include "src/serve/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "src/broker/anomaly.h"
#include "src/broker/securelog.h"
#include "src/os/clock.h"

namespace witserve {
namespace {

ServeJob MakeJob(const std::string& id) {
  ServeJob job;
  job.ticket.id = id;
  return job;
}

TEST(TicketQueueTest, OwnerPopsFifoThiefStealsLifo) {
  TicketQueue queue;
  ASSERT_TRUE(queue.TryPush(MakeJob("a")).ok());
  ASSERT_TRUE(queue.TryPush(MakeJob("b")).ok());
  ASSERT_TRUE(queue.TryPush(MakeJob("c")).ok());
  ServeJob job;
  ASSERT_TRUE(queue.TryPop(&job));
  EXPECT_EQ(job.ticket.id, "a");  // oldest first for the owner
  ASSERT_TRUE(queue.TrySteal(&job));
  EXPECT_EQ(job.ticket.id, "c");  // newest first for a thief
  ASSERT_TRUE(queue.TryPop(&job));
  EXPECT_EQ(job.ticket.id, "b");
  EXPECT_FALSE(queue.TryPop(&job));
  EXPECT_FALSE(queue.TrySteal(&job));
}

TEST(TicketQueueTest, WatermarkHysteresis) {
  TicketQueue::Options options;
  options.capacity = 8;
  options.low_watermark = 4;
  TicketQueue queue(options);
  EXPECT_EQ(queue.high_watermark(), 8u);
  EXPECT_EQ(queue.low_watermark(), 4u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.TryPush(MakeJob("t")).ok());
  }
  // Depth hit the high watermark: admission closes.
  EXPECT_EQ(queue.TryPush(MakeJob("over")).error(), witos::Err::kBusy);
  EXPECT_FALSE(queue.admitting());
  ServeJob job;
  // Draining one job is not enough — hysteresis keeps admission closed
  // until the low watermark, so the boundary cannot flap.
  ASSERT_TRUE(queue.TryPop(&job));
  EXPECT_EQ(queue.TryPush(MakeJob("still-over")).error(), witos::Err::kBusy);
  while (queue.depth() > queue.low_watermark()) {
    ASSERT_TRUE(queue.TryPop(&job));
  }
  EXPECT_TRUE(queue.TryPush(MakeJob("reopened")).ok());
  EXPECT_TRUE(queue.admitting());
  EXPECT_EQ(queue.accepted(), 9u);
  EXPECT_EQ(queue.rejected(), 2u);
  EXPECT_EQ(queue.peak_depth(), 8u);
}

TEST(TicketQueueTest, CloseWakesWaitersAndDrainsRemainder) {
  TicketQueue queue;
  ASSERT_TRUE(queue.TryPush(MakeJob("queued")).ok());
  queue.Close();
  EXPECT_EQ(queue.TryPush(MakeJob("late")).error(), witos::Err::kPipe);
  ServeJob job;
  // Queued work survives Close() so shutdown never loses tickets.
  EXPECT_TRUE(queue.WaitPopFor(&job, 1000));
  EXPECT_EQ(job.ticket.id, "queued");
  EXPECT_FALSE(queue.WaitPopFor(&job, 1000));  // closed + empty: no block
}

TEST(TicketQueueTest, MpmcStressDeliversEveryJobExactlyOnce) {
  TicketQueue::Options options;
  options.capacity = 100000;  // no admission pressure; this is a race test
  TicketQueue queue(options);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> threads;
  std::mutex seen_mu;
  std::multiset<std::string> seen;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(
            queue.TryPush(MakeJob(std::to_string(p) + ":" + std::to_string(i))).ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &seen_mu, &seen, c] {
      ServeJob job;
      for (;;) {
        // Alternate owner pops and thief steals to exercise both ends.
        bool got = (c % 2 == 0) ? queue.TryPop(&job) : queue.TrySteal(&job);
        if (!got && !queue.WaitPopFor(&job, 500)) {
          if (queue.closed() && queue.depth() == 0) {
            return;
          }
          continue;
        }
        std::lock_guard<std::mutex> lock(seen_mu);
        seen.insert(job.ticket.id);
      }
    });
  }
  threads[0].join();
  threads[1].join();
  threads[2].join();
  threads[3].join();
  queue.Close();
  for (size_t i = 4; i < threads.size(); ++i) {
    threads[i].join();
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers) * kPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      EXPECT_EQ(seen.count(std::to_string(p) + ":" + std::to_string(i)), 1u);
    }
  }
}

TEST(SecureLogConcurrencyTest, ParallelAppendersKeepChainLinear) {
  witbroker::SecureLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Append("req t" + std::to_string(t) + " #" + std::to_string(i),
                   static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(log.size(), static_cast<size_t>(kThreads) * kPerThread);
  // The whole point of the lock around read-prev-hash/append: one linear
  // chain, no forks, verifiable end to end.
  EXPECT_TRUE(log.Verify());
  const auto entries = log.SnapshotEntries();
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, i + 1);  // seq is 1-based, gap-free
  }
}

TEST(SecureLogConcurrencyTest, SnapshotsDuringAppendsAreValidPrefixes) {
  witbroker::SecureLog log;
  std::atomic<bool> done{false};
  std::thread writer([&log, &done] {
    for (int i = 0; i < 2000; ++i) {
      log.Append("entry " + std::to_string(i), static_cast<uint64_t>(i));
    }
    done.store(true);
  });
  // An auditor snapshotting mid-stream must always see a verifiable prefix
  // — never a half-written entry or a forked chain. (do-while: on a
  // single-core host the writer may finish before this loop first runs.)
  do {
    const auto snapshot = log.SnapshotEntries();
    EXPECT_TRUE(witbroker::SecureLog::VerifyChain(snapshot));
  } while (!done.load());
  writer.join();
  EXPECT_TRUE(log.Verify());
}

TEST(BrokerSnapshotTest, AnomalyAnalysisRunsBesideLiveTraffic) {
  witos::Kernel kernel("host");
  witos::Pid broker_pid = *kernel.Clone(1, "PermissionBroker", 0);
  witbroker::PolicyManager policy;
  witbroker::ClassPolicy standard;
  standard.allowed_verbs = {witbroker::kVerbPs, witbroker::kVerbRestartService};
  policy.SetPolicy("T-1", standard);
  witbroker::RpcChannel channel;
  witbroker::PermissionBroker broker(&kernel, broker_pid, &policy, &channel);
  (void)broker.BindTicket("TKT-1", "T-1");

  // One writer (the broker is per-machine and shard-serialized in witserve;
  // the contract under test is snapshot-while-writing, not parallel Handle).
  std::atomic<bool> done{false};
  std::thread writer([&broker, &done] {
    witbroker::RpcRequest request;
    request.ticket_id = "TKT-1";
    request.admin = "alice";
    request.uid = witos::kRootUid;
    for (int i = 0; i < 500; ++i) {
      request.method = (i % 2 == 0) ? witbroker::kVerbPs : witbroker::kVerbRestartService;
      request.args = (i % 2 == 0) ? std::vector<std::string>{}
                                  : std::vector<std::string>{"sshd"};
      broker.Handle(request);
    }
    done.store(true);
  });
  // do-while: on a single-core host the writer may finish before this loop
  // first runs, and the post-completion analysis must still hold.
  do {
    const std::vector<witbroker::BrokerEvent> events = broker.EventsSnapshot();
    witbroker::AnomalyDetector detector;
    detector.Fit(events);
    const auto scores = detector.Analyze(events);
    EXPECT_EQ(scores.size(), events.size());
  } while (!done.load());
  writer.join();
  EXPECT_EQ(broker.EventsSnapshot().size(), 500u);
  EXPECT_TRUE(broker.log().Verify());
}

TEST(SimClockTest, ResumeUnderflowNeverWrapsPausedState) {
  witos::SimClock clock;
#ifdef NDEBUG
  clock.Resume();  // no matching Pause()
  EXPECT_EQ(clock.resume_underflows(), 1u);
  // The clock must still charge time afterwards — paused_ did not wrap.
  clock.Advance(7);
  EXPECT_EQ(clock.now_ns(), 7u);
#else
  EXPECT_DEATH(clock.Resume(), "matching Pause");
#endif
}

TEST(SimClockTest, OwnershipViolationIsNeverSilent) {
  witos::SimClock clock;
  std::thread([&clock] { clock.BindOwner(); }).join();
  // The owner thread is gone without releasing; this thread is not the
  // owner, so mutating must trip the discipline check.
#ifdef NDEBUG
  clock.Advance(5);
  EXPECT_EQ(clock.ownership_violations(), 1u);
#else
  EXPECT_DEATH(clock.Advance(5), "bound owner");
#endif
}

TEST(SimClockTest, BindReleaseHandoffIsClean) {
  witos::SimClock clock;
  std::thread([&clock] {
    clock.BindOwner();
    clock.Advance(10);
    clock.ReleaseOwner();
  }).join();
  clock.BindOwner();
  clock.Advance(5);
  clock.ReleaseOwner();
  EXPECT_EQ(clock.now_ns(), 15u);
  EXPECT_EQ(clock.ownership_violations(), 0u);
}

// Serving tests share one trained framework: training dominates runtime and
// the framework is read-only (thread-safe) once trained.
class ServePoolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    witload::TicketGenerator::Options options;
    options.seed = 5;
    witload::TicketGenerator gen(options);
    auto history = gen.GenerateBatch(300, witload::TicketGenerator::HistoricalDistribution());
    std::vector<std::pair<std::string, std::string>> labelled;
    for (const auto& t : history) {
      labelled.emplace_back(t.text, t.true_class);
    }
    watchit::ItFramework::Config config;
    config.lda.iterations = 60;
    framework_ = new watchit::ItFramework(config);
    framework_->TrainOnHistory(labelled);
  }
  static void TearDownTestSuite() {
    delete framework_;
    framework_ = nullptr;
  }

  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      cluster_.AddMachine("m" + std::to_string(i),
                          witnet::Ipv4Addr(10, 0, 2, static_cast<uint8_t>(50 + i)));
    }
    const std::set<std::string> all_classes = {"T-1", "T-2", "T-3", "T-4",  "T-5", "T-6",
                                               "T-7", "T-8", "T-9", "T-10", "T-11"};
    dispatcher_.AddSpecialist("alice", all_classes);
    dispatcher_.AddSpecialist("bob", all_classes);
    dispatcher_.AddSpecialist("carol", all_classes);
  }

  std::vector<witload::GeneratedTicket> MakeTickets(size_t n, uint32_t seed = 77) {
    witload::TicketGenerator::Options options;
    options.seed = seed;
    options.with_ops = true;
    witload::TicketGenerator gen(options);
    return gen.GenerateBatch(n, witload::TicketGenerator::EvaluationDistribution());
  }

  static watchit::ItFramework* framework_;
  watchit::Cluster cluster_;
  watchit::Dispatcher dispatcher_;
};

watchit::ItFramework* ServePoolTest::framework_ = nullptr;

TEST_F(ServePoolTest, ServesConcurrentlyWithCleanDiscipline) {
  ServerPool::Options options;
  options.workers = 2;
  ServerPool pool(&cluster_, framework_, &dispatcher_, options);
  witobs::MetricsRegistry registry;
  pool.EnableMetrics(&registry);
  pool.Start();
  const auto tickets = MakeTickets(40);
  for (size_t i = 0; i < tickets.size(); ++i) {
    const std::string target = "m" + std::to_string(i % 4);
    const std::string user =
        tickets[i].true_class == "T-9" ? pool.PeerInShard(target) : std::string();
    ASSERT_TRUE(pool.Submit(tickets[i], target, user).ok());
  }
  pool.Drain();
  pool.Stop();
  const ServerPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 40u);
  EXPECT_EQ(stats.served, 40u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  // The shard discipline held: nobody touched a clock they did not own.
  EXPECT_EQ(stats.clock_ownership_violations, 0u);
  EXPECT_EQ(stats.clock_resume_underflows, 0u);
  // All deployments expired, dispatcher accounting drained to zero.
  for (size_t i = 0; i < cluster_.size(); ++i) {
    EXPECT_EQ(cluster_.machine(i).containit().active_sessions(), 0u);
    EXPECT_TRUE(cluster_.machine(i).broker().log().Verify());
  }
  EXPECT_EQ(dispatcher_.Find("alice")->open_tickets, 0u);
  EXPECT_EQ(dispatcher_.Find("bob")->open_tickets, 0u);
  EXPECT_EQ(dispatcher_.Find("carol")->open_tickets, 0u);
  // End-to-end latency was recorded for every served ticket.
  ASSERT_NE(pool.latency_histogram(), nullptr);
  EXPECT_EQ(pool.latency_histogram()->Count(), 40u);
}

TEST_F(ServePoolTest, IdleWorkersStealFromTheLoadedShard) {
  ServerPool::Options options;
  options.workers = 4;  // m0 is alone in shard 0; shards 1..3 idle
  ServerPool pool(&cluster_, framework_, &dispatcher_, options);
  const auto tickets = MakeTickets(60);
  for (const auto& ticket : tickets) {
    ASSERT_TRUE(pool.Submit(ticket, "m0").ok());  // all load on one shard
  }
  pool.Start();
  pool.Drain();
  pool.Stop();
  const ServerPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.served, 60u);
  // Work stealing moved jobs to non-owner workers (still serialized by the
  // victim's shard mutex — discipline stays clean).
  EXPECT_GT(stats.stolen, 0u);
  EXPECT_EQ(stats.clock_ownership_violations, 0u);
}

TEST_F(ServePoolTest, AdmissionControlRejectsPastHighWatermark) {
  ServerPool::Options options;
  options.workers = 1;
  options.queue.capacity = 8;
  options.queue.low_watermark = 4;
  ServerPool pool(&cluster_, framework_, &dispatcher_, options);
  const auto tickets = MakeTickets(10);
  // Pool not started: the queue fills to the high watermark, then EBUSY.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Submit(tickets[static_cast<size_t>(i)], "m0").ok());
  }
  EXPECT_EQ(pool.Submit(tickets[8], "m0").error(), witos::Err::kBusy);
  EXPECT_EQ(pool.Submit(tickets[9], "m0").error(), witos::Err::kBusy);
  const ServerPool::Stats before = pool.stats();
  EXPECT_EQ(before.rejected, 2u);
  EXPECT_EQ(before.peak_queue_depth, 8u);
  // Workers drain the backlog; everything admitted gets served.
  pool.Start();
  pool.Drain();
  pool.Stop();
  EXPECT_EQ(pool.stats().served, 8u);
}

TEST_F(ServePoolTest, RoutingErrorsAreExplicit) {
  ServerPool::Options options;
  options.workers = 2;  // shard 0: m0, m2; shard 1: m1, m3
  ServerPool pool(&cluster_, framework_, &dispatcher_, options);
  const auto tickets = MakeTickets(1);
  EXPECT_EQ(pool.Submit(tickets[0], "ghost").error(), witos::Err::kHostUnreach);
  EXPECT_EQ(pool.Submit(tickets[0], "m0", "ghost").error(), witos::Err::kHostUnreach);
  // A T-9 dual deployment across shards would break shared-nothing.
  EXPECT_EQ(pool.Submit(tickets[0], "m0", "m1").error(), witos::Err::kXdev);
  EXPECT_EQ(pool.ShardOf("m0"), pool.ShardOf(pool.PeerInShard("m0")));
  EXPECT_EQ(pool.PeerInShard("m0"), "m2");
  EXPECT_EQ(pool.stats().submitted, 0u);
}

TEST_F(ServePoolTest, LoadGeneratorDrivesPoolEndToEnd) {
  ServerPool::Options pool_options;
  pool_options.workers = 2;
  pool_options.queue.capacity = 16;  // small queue: forces backpressure
  pool_options.queue.low_watermark = 8;
  ServerPool pool(&cluster_, framework_, &dispatcher_, pool_options);
  pool.Start();

  LoadGenerator::Options load_options;
  load_options.seed = 42;
  load_options.tickets = 120;
  LoadGenerator loadgen(load_options);
  const auto arrivals = loadgen.Generate(pool);
  ASSERT_EQ(arrivals.size(), 120u);
  // Deterministic: same seed, same pool geometry, same plan.
  const auto replay = loadgen.Generate(pool);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i].ticket.text, replay[i].ticket.text);
    EXPECT_EQ(arrivals[i].target, replay[i].target);
    EXPECT_EQ(arrivals[i].offset_ns, replay[i].offset_ns);
  }
  uint64_t last_offset = 0;
  for (const auto& arrival : arrivals) {
    EXPECT_GE(arrival.offset_ns, last_offset);  // Poisson offsets accumulate
    last_offset = arrival.offset_ns;
    if (arrival.ticket.true_class == "T-9") {
      EXPECT_EQ(pool.ShardOf(arrival.user), pool.ShardOf(arrival.target));
    }
  }

  const LoadGenerator::RunStats run = loadgen.Run(&pool, arrivals);
  pool.Drain();
  pool.Stop();
  EXPECT_EQ(run.submitted, 120u);
  EXPECT_EQ(run.dropped, 0u);  // retry_on_busy resubmits after EBUSY
  const ServerPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.served, 120u);
  EXPECT_EQ(stats.clock_ownership_violations, 0u);
}

}  // namespace
}  // namespace witserve
