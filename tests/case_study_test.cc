// End-to-end case-study regression: a scaled-down §7.1 run must reproduce
// the paper's qualitative claims.

#include "src/core/case_study.h"

#include <gtest/gtest.h>

namespace watchit {
namespace {

class CaseStudyTest : public ::testing::Test {
 protected:
  static const CaseStudyResult& Result() {
    static const CaseStudyResult kResult = [] {
      CaseStudyConfig config;
      config.train_tickets = 1200;
      config.eval_tickets = 398;
      config.lda.iterations = 200;
      return RunCaseStudy(config);
    }();
    return kResult;
  }
};

TEST_F(CaseStudyTest, OverallPrecisionMatchesPaperBand) {
  // Paper: 95% overall classification precision.
  EXPECT_GE(Result().total.precision, 88.0);
}

TEST_F(CaseStudyTest, ContainerSatisfactionMatchesPaperBand) {
  // Paper: 92% of tickets satisfied without the broker.
  EXPECT_GE(Result().total.satisfied, 85.0);
  EXPECT_LE(Result().total.satisfied, 97.0);
}

TEST_F(CaseStudyTest, IsolationAggregatesMatchPaper) {
  // Paper: full FS view denied 62%, network view isolated 98%.
  EXPECT_NEAR(Result().full_fs_view_denied, 62.0, 8.0);
  EXPECT_GE(Result().network_view_isolated, 95.0);
  // Process view compartmentalized in a substantial minority (paper: 36%).
  EXPECT_GE(Result().process_view_isolated, 25.0);
  EXPECT_LE(Result().process_view_isolated, 55.0);
  // Web access only for the software class (paper: 32%).
  EXPECT_NEAR(Result().web_access_allowed, 30.0, 8.0);
}

TEST_F(CaseStudyTest, BrokerColumnsMatchPaperShape) {
  // Paper totals: proc 1%, fs -, net 7%. Network dominates.
  EXPECT_GT(Result().total.pb_net, Result().total.pb_proc);
  EXPECT_LE(Result().total.pb_proc, 5.0);
  EXPECT_NEAR(Result().total.pb_net, 7.0, 4.0);
  // T-4, T-9, T-10 never used the broker in the paper.
  for (const auto& row : Result().rows) {
    if (row.cls == "T-4" || row.cls == "T-9" || row.cls == "T-10") {
      EXPECT_EQ(row.pb_proc + row.pb_fs + row.pb_net, 0.0) << row.cls;
      EXPECT_EQ(row.satisfied, 100.0) << row.cls;
    }
  }
}

TEST_F(CaseStudyTest, EverythingWasMonitoredAndLogged) {
  EXPECT_GT(Result().fs_ops_logged, 0u);
  EXPECT_GT(Result().broker_requests, 0u);
  EXPECT_TRUE(Result().secure_log_intact);
}

TEST_F(CaseStudyTest, Table4Renders) {
  std::string table = FormatTable4(Result());
  EXPECT_NE(table.find("T-1"), std::string::npos);
  EXPECT_NE(table.find("Total"), std::string::npos);
  EXPECT_NE(table.find("network view isolated"), std::string::npos);
}

}  // namespace
}  // namespace watchit
