#include "src/fs/itfs.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/fs/fuse.h"
#include "src/obs/export.h"
#include "src/os/memfs.h"

namespace witfs {
namespace {

witos::Credentials Root() { return witos::Credentials{}; }

witos::Credentials Admin() {
  witos::Credentials cred;
  cred.uid = 0;
  cred.caps = witos::CapabilitySet::Empty();
  return cred;
}

std::shared_ptr<witos::MemFs> MakeLower() {
  auto lower = std::make_shared<witos::MemFs>();
  lower->ProvisionFile("/etc/passwd", "root:x:0:0\n");
  lower->ProvisionFile("/home/payroll.xlsx", std::string("PK\x03\x04") + "salaries");
  lower->ProvisionFile("/home/photo.jpg", "\xFF\xD8\xFF\xE0jfif");
  lower->ProvisionFile("/home/disguised.log", "%PDF-1.4 secret report");
  lower->ProvisionFile("/home/notes.txt", "todo\n");
  lower->ProvisionFile("/usr/watchit/broker", "\x7f" "ELF");
  return lower;
}

TEST(ItfsTest, AllowsAndLogsNormalAccess) {
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::DenyDocumentsRule());
  Itfs itfs(MakeLower(), std::move(policy), Root());
  std::string buf;
  ASSERT_TRUE(itfs.ReadAt("/etc/passwd", 0, 100, &buf, Admin()).ok());
  EXPECT_EQ(buf, "root:x:0:0\n");
  EXPECT_GE(itfs.oplog().size(), 1u);
  EXPECT_EQ(itfs.oplog().denied_count(), 0u);
}

TEST(ItfsTest, DeniesDocumentsByExtension) {
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::DenyDocumentsRule());
  Itfs itfs(MakeLower(), std::move(policy), Root());
  EXPECT_EQ(itfs.Open("/home/payroll.xlsx", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
  EXPECT_EQ(itfs.Open("/home/photo.jpg", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
  // Extension mode misses content smuggled under an innocent name.
  EXPECT_TRUE(itfs.Open("/home/disguised.log", witos::kOpenRead, 0, Admin()).ok());
  EXPECT_EQ(itfs.oplog().denied_count(), 2u);
}

TEST(ItfsTest, SignatureModeCatchesDisguisedContent) {
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::DenyDocumentsRule());
  policy.set_inspection_mode(InspectionMode::kSignature);
  Itfs itfs(MakeLower(), std::move(policy), Root());
  // The PDF hiding behind a .log name is caught by its magic bytes.
  EXPECT_EQ(itfs.Open("/home/disguised.log", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
  EXPECT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
}

TEST(ItfsTest, VisibleButNotOpenable) {
  // "can block access to specific files even if the contained administrator
  // can see that they exist" (§1).
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::DenyDocumentsRule());
  Itfs itfs(MakeLower(), std::move(policy), Root());
  auto st = itfs.GetAttr("/home/payroll.xlsx", Admin());
  ASSERT_TRUE(st.ok());
  EXPECT_GT(st->size, 0u);
  auto entries = itfs.ReadDir("/home", Admin());
  ASSERT_TRUE(entries.ok());
  bool listed = false;
  for (const auto& entry : *entries) {
    listed |= entry.name == "payroll.xlsx";
  }
  EXPECT_TRUE(listed);
  EXPECT_EQ(itfs.Open("/home/payroll.xlsx", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
}

TEST(ItfsTest, ProtectsWatchItFiles) {
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::ProtectPathsRule({"/usr/watchit"}));
  Itfs itfs(MakeLower(), std::move(policy), Root());
  EXPECT_EQ(itfs.Open("/usr/watchit/broker", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
  EXPECT_EQ(itfs.Unlink("/usr/watchit/broker", Admin()).error(), witos::Err::kAcces);
  EXPECT_EQ(itfs.Rename("/usr/watchit/broker", "/tmp/b", Admin()).error(),
            witos::Err::kAcces);
}

TEST(ItfsTest, ReadOnlyRuleBlocksWritesAllowsReads) {
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::ReadOnlyRule({"/etc"}));
  Itfs itfs(MakeLower(), std::move(policy), Root());
  std::string buf;
  EXPECT_TRUE(itfs.ReadAt("/etc/passwd", 0, 10, &buf, Admin()).ok());
  EXPECT_EQ(itfs.WriteAt("/etc/passwd", 0, "x", Admin()).error(), witos::Err::kAcces);
  EXPECT_EQ(itfs.Truncate("/etc/passwd", 0, Admin()).error(), witos::Err::kAcces);
}

TEST(ItfsTest, CustomDetectorRule) {
  ItfsPolicy policy;
  ItfsRule rule;
  rule.name = "no-salary-data";
  rule.action = RuleAction::kDeny;
  rule.custom = [](const std::string& path, std::string_view) {
    return path.find("payroll") != std::string::npos;
  };
  policy.AddRule(std::move(rule));
  Itfs itfs(MakeLower(), std::move(policy), Root());
  EXPECT_EQ(itfs.Open("/home/payroll.xlsx", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
  EXPECT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
}

TEST(ItfsTest, LogOnlyRuleAllowsButTags) {
  ItfsPolicy policy;
  ItfsRule rule;
  rule.name = "watch-etc";
  rule.action = RuleAction::kLogOnly;
  rule.path_prefixes = {"/etc"};
  policy.AddRule(std::move(rule));
  policy.set_log_all(false);
  Itfs itfs(MakeLower(), std::move(policy), Root());
  std::string buf;
  ASSERT_TRUE(itfs.ReadAt("/etc/passwd", 0, 10, &buf, Admin()).ok());
  ASSERT_EQ(itfs.oplog().size(), 1u);
  EXPECT_EQ(itfs.oplog().records()[0].rule, "watch-etc");
  EXPECT_FALSE(itfs.oplog().records()[0].denied);
  // Unmatched paths are not logged when log_all is off.
  ASSERT_TRUE(itfs.ReadAt("/home/notes.txt", 0, 4, &buf, Admin()).ok());
  EXPECT_EQ(itfs.oplog().size(), 1u);
}

TEST(ItfsTest, InvokerPrivilegesSubstituteCallerPrivileges) {
  // FUSE semantics: the contained admin inherits the invoker's (root's)
  // power over exposed files, even for files owned by others.
  auto lower = std::make_shared<witos::MemFs>();
  lower->ProvisionFile("/data/file", "owned by uid 1000", 1000, 1000, 0600);
  Itfs itfs(lower, ItfsPolicy(), Root());
  witos::Credentials contained_admin = Admin();
  std::string buf;
  EXPECT_TRUE(itfs.ReadAt("/data/file", 0, 100, &buf, contained_admin).ok());
  EXPECT_TRUE(itfs.WriteAt("/data/file", 0, "fixed", contained_admin).ok());
}

TEST(ItfsTest, HardLinkCannotSmuggleDeniedContent) {
  // Renaming/linking a blocked document to an innocent name must not
  // launder it past the extension filter.
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::DenyDocumentsRule());
  policy.set_inspection_mode(InspectionMode::kSignature);
  Itfs itfs(MakeLower(), std::move(policy), Root());
  EXPECT_EQ(itfs.Link("/home/payroll.xlsx", "/home/innocent.log", Admin()).error(),
            witos::Err::kAcces);
  EXPECT_EQ(itfs.Rename("/home/payroll.xlsx", "/home/innocent.log", Admin()).error(),
            witos::Err::kAcces);
  // Linking clean content is fine.
  EXPECT_TRUE(itfs.Link("/home/notes.txt", "/home/notes-link.txt", Admin()).ok());
  std::string buf;
  EXPECT_TRUE(itfs.ReadAt("/home/notes-link.txt", 0, 16, &buf, Admin()).ok());
}

TEST(ItfsTest, RenameIntoReadOnlyTreeDeniedAndLoggedBothDirections) {
  // A rename is a write on BOTH ends: moving a file into a read-only tree
  // plants content there, moving one out deletes content from it. Both
  // directions must bounce off the gate and leave an audit trail.
  auto lower = MakeLower();
  lower->ProvisionFile("/archive/old.txt", "frozen");
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::ReadOnlyRule({"/archive"}));
  policy.set_log_all(false);
  Itfs itfs(lower, std::move(policy), Root());

  // Permitted tree -> read-only tree: denied at the destination gate.
  EXPECT_EQ(itfs.Rename("/home/notes.txt", "/archive/notes.txt", Admin()).error(),
            witos::Err::kAcces);
  // Read-only tree -> permitted tree: denied at the source gate.
  EXPECT_EQ(itfs.Rename("/archive/old.txt", "/home/old.txt", Admin()).error(),
            witos::Err::kAcces);
  EXPECT_EQ(itfs.oplog().denied_count(), 2u);
  for (const auto& rec : itfs.oplog().records()) {
    EXPECT_EQ(rec.rule, "read-only");
    EXPECT_EQ(rec.op, ItfsOpKind::kRename);
  }
  // Neither file moved.
  EXPECT_TRUE(lower->GetAttr("/home/notes.txt", Root()).ok());
  EXPECT_TRUE(lower->GetAttr("/archive/old.txt", Root()).ok());
  EXPECT_FALSE(lower->GetAttr("/archive/notes.txt", Root()).ok());
  EXPECT_FALSE(lower->GetAttr("/home/old.txt", Root()).ok());
}

TEST(ItfsTest, RenameIntoProtectedTreeDenied) {
  // The inbound direction of ProtectsWatchItFiles: planting a file inside
  // the protected WatchIT tree (e.g. to shadow a binary) is denied too.
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::ProtectPathsRule({"/usr/watchit"}));
  Itfs itfs(MakeLower(), std::move(policy), Root());
  EXPECT_EQ(itfs.Rename("/home/notes.txt", "/usr/watchit/broker", Admin()).error(),
            witos::Err::kAcces);
  EXPECT_GE(itfs.oplog().denied_count(), 1u);
}

// ---------------------------------------------------------------------------
// Verdict cache: signature classifications are cached per (path, generation)
// and every lower-filesystem mutation must invalidate them. Each test below
// mutates *through the lower fs* (out-of-band of the gate) so a stale cached
// verdict — not the gate's own fresh read — would be the only thing standing
// between the mutation and a wrong decision.
// ---------------------------------------------------------------------------

ItfsPolicy SignaturePolicy() {
  ItfsPolicy policy;
  policy.AddRule(ItfsPolicy::DenyDocumentsRule());
  policy.set_inspection_mode(InspectionMode::kSignature);
  return policy;
}

TEST(ItfsTest, VerdictCacheHitsOnRepeatedAccess) {
  Itfs itfs(MakeLower(), SignaturePolicy(), Root());
  ASSERT_TRUE(itfs.policy_snapshot()->CacheableVerdicts());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  EXPECT_EQ(itfs.verdict_cache_stats().misses, 1u);
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  ASSERT_TRUE(itfs.GetAttr("/home/notes.txt", Admin()).ok());  // kAttr: no fetch
  std::string buf;
  ASSERT_TRUE(itfs.ReadAt("/home/notes.txt", 0, 4, &buf, Admin()).ok());
  auto stats = itfs.verdict_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // Denied verdicts are cached too: the class is cached, the per-op decision
  // is recomputed, so a repeat denial costs no second content read.
  EXPECT_EQ(itfs.Open("/home/disguised.log", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
  EXPECT_EQ(itfs.Open("/home/disguised.log", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
  stats = itfs.verdict_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_GE(stats.hits, 2u);
}

TEST(ItfsTest, VerdictCacheInvalidatedByWrite) {
  auto lower = MakeLower();
  Itfs itfs(lower, SignaturePolicy(), Root());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  // Out-of-band rewrite turns the innocent text file into a PDF.
  ASSERT_TRUE(lower->WriteAt("/home/notes.txt", 0, "%PDF-1.4 smuggled", Root()).ok());
  EXPECT_EQ(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
  EXPECT_GE(itfs.verdict_cache_stats().invalidations, 1u);
}

TEST(ItfsTest, VerdictCacheInvalidatedByTruncate) {
  auto lower = MakeLower();
  Itfs itfs(lower, SignaturePolicy(), Root());
  EXPECT_EQ(itfs.Open("/home/disguised.log", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
  ASSERT_TRUE(lower->Truncate("/home/disguised.log", 0, Root()).ok());
  // Empty file, no signature left: a stale cached kPdf verdict would keep
  // denying it.
  EXPECT_TRUE(itfs.Open("/home/disguised.log", witos::kOpenRead, 0, Admin()).ok());
}

TEST(ItfsTest, VerdictCacheInvalidatedByOpenTruncate) {
  auto lower = MakeLower();
  Itfs itfs(lower, SignaturePolicy(), Root());
  EXPECT_EQ(itfs.Open("/home/disguised.log", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
  ASSERT_TRUE(lower->Open("/home/disguised.log", witos::kOpenWrite | witos::kOpenTrunc, 0,
                          Root()).ok());
  EXPECT_TRUE(itfs.Open("/home/disguised.log", witos::kOpenRead, 0, Admin()).ok());
}

TEST(ItfsTest, VerdictCacheInvalidatedByRename) {
  auto lower = MakeLower();
  Itfs itfs(lower, SignaturePolicy(), Root());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  // Swap a PDF into the cached path. The cache is keyed by path: without
  // generation tracking the old file's allow verdict would leak onto the
  // new file occupying the same name.
  ASSERT_TRUE(lower->Rename("/home/notes.txt", "/home/notes.bak", Root()).ok());
  ASSERT_TRUE(lower->Rename("/home/disguised.log", "/home/notes.txt", Root()).ok());
  EXPECT_EQ(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
}

TEST(ItfsTest, VerdictCacheInvalidatedThroughHardLinkAlias) {
  auto lower = MakeLower();
  ASSERT_TRUE(lower->Link("/home/notes.txt", "/home/alias.txt", Root()).ok());
  Itfs itfs(lower, SignaturePolicy(), Root());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  // Writing through the *other* name of the shared inode must invalidate
  // the verdict cached under this one.
  ASSERT_TRUE(lower->WriteAt("/home/alias.txt", 0, "%PDF-1.4 via alias", Root()).ok());
  EXPECT_EQ(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
}

TEST(ItfsTest, VerdictCacheInvalidatedByLinkAndChown) {
  auto lower = MakeLower();
  Itfs itfs(lower, SignaturePolicy(), Root());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  auto before = itfs.verdict_cache_stats();
  ASSERT_TRUE(lower->Link("/home/notes.txt", "/home/linked.txt", Root()).ok());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  auto after_link = itfs.verdict_cache_stats();
  EXPECT_EQ(after_link.invalidations, before.invalidations + 1);
  ASSERT_TRUE(lower->Chown("/home/notes.txt", 7, 7, Root()).ok());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  auto after_chown = itfs.verdict_cache_stats();
  EXPECT_EQ(after_chown.invalidations, after_link.invalidations + 1);
}

TEST(ItfsTest, CustomDetectorPoliciesAreNeverCached) {
  ItfsPolicy policy = SignaturePolicy();
  ItfsRule det;
  det.name = "secret-detector";
  det.action = RuleAction::kDeny;
  det.custom = [](const std::string&, std::string_view head) {
    return head.find("secret") != std::string_view::npos;
  };
  policy.AddRule(std::move(det));
  auto lower = MakeLower();
  Itfs itfs(lower, std::move(policy), Root());
  ASSERT_FALSE(itfs.policy_snapshot()->CacheableVerdicts());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  auto stats = itfs.verdict_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ItfsTest, SwapPolicySurvivesCachedVerdicts) {
  // The cache stores the *class*, not the decision: swapping in a stricter
  // policy must re-derive decisions from cached classifications correctly.
  auto lower = MakeLower();
  ItfsPolicy lenient;
  lenient.set_inspection_mode(InspectionMode::kSignature);
  ItfsRule log_pdf;
  log_pdf.name = "log-pdf";
  log_pdf.action = RuleAction::kLogOnly;
  log_pdf.signatures = {FileClass::kPdf};
  lenient.AddRule(std::move(log_pdf));
  Itfs itfs(lower, lenient, Root());
  ASSERT_TRUE(itfs.Open("/home/disguised.log", witos::kOpenRead, 0, Admin()).ok());
  itfs.SwapPolicy(SignaturePolicy().Compile());
  EXPECT_EQ(itfs.Open("/home/disguised.log", witos::kOpenRead, 0, Admin()).error(),
            witos::Err::kAcces);
}

TEST(ItfsTest, VerdictCacheMetricsExported) {
  witobs::MetricsRegistry registry;
  auto lower = MakeLower();
  Itfs itfs(lower, SignaturePolicy(), Root());
  itfs.EnableMetrics(&registry, "TKT-CACHE");
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  ASSERT_TRUE(lower->WriteAt("/home/notes.txt", 0, "still text", Root()).ok());
  ASSERT_TRUE(itfs.Open("/home/notes.txt", witos::kOpenRead, 0, Admin()).ok());
  std::string prom = witobs::RenderPrometheus(registry);
  EXPECT_NE(prom.find("watchit_itfs_verdict_cache_hits"), std::string::npos);
  EXPECT_NE(prom.find("watchit_itfs_verdict_cache_misses"), std::string::npos);
  EXPECT_NE(prom.find("watchit_itfs_verdict_cache_invalidations"), std::string::npos);
  EXPECT_NE(prom.find("watchit_policy_compile_ns"), std::string::npos);
}

TEST(FuseMountTest, ChargesCrossingCostPerOperation) {
  witos::SimClock clock;
  auto lower = std::make_shared<witos::MemFs>();
  lower->ProvisionFile("/f", "data");
  auto itfs = std::make_shared<Itfs>(lower, ItfsPolicy(), Root(), &clock);
  FuseMount fuse(itfs, &clock);

  uint64_t t0 = clock.now_ns();
  std::string buf;
  ASSERT_TRUE(fuse.ReadAt("/f", 0, 4, &buf, Admin()).ok());
  uint64_t t1 = clock.now_ns();
  EXPECT_GE(t1 - t0, clock.costs().fuse_crossing_ns);
  EXPECT_EQ(fuse.crossings(), 1u);

  // Direct access to the lower fs pays no crossing.
  uint64_t t2 = clock.now_ns();
  ASSERT_TRUE(lower->ReadAt("/f", 0, 4, &buf, Admin()).ok());
  EXPECT_LT(clock.now_ns() - t2, clock.costs().fuse_crossing_ns);
}

TEST(FuseMountTest, ForwardsAllOperations) {
  auto lower = std::make_shared<witos::MemFs>();
  FuseMount fuse(lower, nullptr);
  ASSERT_TRUE(fuse.MkDir("/d", 0755, Root()).ok());
  ASSERT_TRUE(fuse.Open("/d/f", witos::kOpenCreate | witos::kOpenWrite, 0644, Root()).ok());
  ASSERT_TRUE(fuse.WriteAt("/d/f", 0, "x", Root()).ok());
  ASSERT_TRUE(fuse.Rename("/d/f", "/d/g", Root()).ok());
  ASSERT_TRUE(fuse.Chmod("/d/g", 0600, Root()).ok());
  ASSERT_TRUE(fuse.SymLink("/d/g", "/link", Root()).ok());
  EXPECT_EQ(*fuse.ReadLink("/link", Root()), "/d/g");
  ASSERT_TRUE(fuse.Unlink("/d/g", Root()).ok());
  ASSERT_TRUE(fuse.RmDir("/d", Root()).ok());
  EXPECT_EQ(fuse.FsType(), "fuse.ext4");
  EXPECT_GE(fuse.crossings(), 9u);
}

}  // namespace
}  // namespace witfs
