#include <gtest/gtest.h>

#include "src/os/kernel.h"

namespace witos {
namespace {

class KernelProcessTest : public ::testing::Test {
 protected:
  Kernel kernel_{"testhost"};
};

TEST_F(KernelProcessTest, BootCreatesInit) {
  EXPECT_TRUE(kernel_.ProcessAlive(1));
  EXPECT_EQ(kernel_.FindProcess(1)->name, "init");
  EXPECT_EQ(*kernel_.GetHostname(1), "testhost");
}

TEST_F(KernelProcessTest, CloneCreatesChild) {
  auto pid = kernel_.Clone(1, "worker", 0);
  ASSERT_TRUE(pid.ok());
  EXPECT_TRUE(kernel_.ProcessAlive(*pid));
  EXPECT_EQ(kernel_.FindProcess(*pid)->ppid, 1);
  // Shares all namespaces with init.
  for (size_t i = 0; i < kNsTypeCount; ++i) {
    EXPECT_EQ(kernel_.FindProcess(*pid)->ns.ids[i], kernel_.FindProcess(1)->ns.ids[i]);
  }
}

TEST_F(KernelProcessTest, ExitWaitReapsZombie) {
  Pid child = *kernel_.Clone(1, "worker", 0);
  ASSERT_TRUE(kernel_.Exit(child, 0).ok());
  EXPECT_FALSE(kernel_.ProcessAlive(child));
  auto reaped = kernel_.Wait(1);
  ASSERT_TRUE(reaped.ok());
  EXPECT_EQ(*reaped, child);
  EXPECT_EQ(kernel_.FindProcess(child), nullptr);
  EXPECT_EQ(kernel_.Wait(1).error(), Err::kChild);
}

TEST_F(KernelProcessTest, CloneNewNamespacesRequiresSysAdmin) {
  Pid child = *kernel_.Clone(1, "worker", 0);
  ASSERT_TRUE(kernel_.CapDrop(child, {Capability::kSysAdmin}).ok());
  EXPECT_EQ(kernel_.Clone(child, "sub", kCloneNewPid).error(), Err::kPerm);
  EXPECT_TRUE(kernel_.Clone(child, "sub", 0).ok());
}

TEST_F(KernelProcessTest, PidNamespaceIsolatesView) {
  Pid contained = *kernel_.Clone(1, "contained", kCloneNewPid);
  Pid inner = *kernel_.Clone(contained, "inner", 0);

  // From inside: only the two container processes, renumbered from 1.
  auto inside = kernel_.ListProcesses(contained);
  ASSERT_TRUE(inside.ok());
  ASSERT_EQ(inside->size(), 2u);
  EXPECT_EQ((*inside)[0].pid, 1);
  EXPECT_EQ((*inside)[0].name, "contained");
  EXPECT_EQ((*inside)[1].pid, 2);
  EXPECT_EQ((*inside)[1].name, "inner");

  // From the host: everything visible with host pids.
  auto outside = kernel_.ListProcesses(1);
  ASSERT_TRUE(outside.ok());
  EXPECT_EQ(outside->size(), 3u);
  (void)inner;
}

TEST_F(KernelProcessTest, KillAcrossPidNamespaceInvisible) {
  Pid contained = *kernel_.Clone(1, "contained", kCloneNewPid);
  Pid host_proc = *kernel_.Clone(1, "victim", 0);
  // The contained process cannot even name the host process.
  auto host_local = kernel_.HostToLocalPid(contained, host_proc);
  EXPECT_FALSE(host_local.ok());
  EXPECT_EQ(kernel_.Kill(contained, 99).error(), Err::kSrch);
  // The host can kill into the container (pid translation).
  auto local = kernel_.HostToLocalPid(1, contained);
  ASSERT_TRUE(local.ok());
  EXPECT_TRUE(kernel_.Kill(1, *local).ok());
}

TEST_F(KernelProcessTest, KillPermissionModel) {
  Pid root_proc = *kernel_.Clone(1, "rootproc", 0);
  Pid user_proc = *kernel_.Clone(1, "userproc", 0);
  ASSERT_TRUE(kernel_.Setuid(user_proc, 1000).ok());
  // Unprivileged user cannot kill a root process.
  EXPECT_EQ(kernel_.Kill(user_proc, root_proc).error(), Err::kPerm);
  // Root kills anyone.
  EXPECT_TRUE(kernel_.Kill(root_proc, user_proc).ok());
}

TEST_F(KernelProcessTest, SetuidDropsCapabilities) {
  Pid child = *kernel_.Clone(1, "worker", 0);
  ASSERT_TRUE(kernel_.Setuid(child, 1000).ok());
  EXPECT_EQ(kernel_.FindProcess(child)->cred.uid, 1000u);
  EXPECT_TRUE(kernel_.FindProcess(child)->cred.caps.empty());
  // And cannot go back to root.
  EXPECT_EQ(kernel_.Setuid(child, 0).error(), Err::kPerm);
}

TEST_F(KernelProcessTest, UtsNamespaceIsolation) {
  Pid contained = *kernel_.Clone(1, "contained", kCloneNewUts);
  ASSERT_TRUE(kernel_.SetHostname(contained, "lnx-pcont").ok());
  EXPECT_EQ(*kernel_.GetHostname(contained), "lnx-pcont");
  EXPECT_EQ(*kernel_.GetHostname(1), "testhost");  // host unaffected
}

TEST_F(KernelProcessTest, IpcNamespaceIsolation) {
  ASSERT_TRUE(kernel_.ShmPut(1, "key", "host-value").ok());
  Pid contained = *kernel_.Clone(1, "contained", kCloneNewIpc);
  EXPECT_EQ(kernel_.ShmGet(contained, "key").error(), Err::kNoEnt);
  ASSERT_TRUE(kernel_.ShmPut(contained, "key", "container-value").ok());
  EXPECT_EQ(*kernel_.ShmGet(1, "key"), "host-value");
  EXPECT_EQ(*kernel_.ShmGet(contained, "key"), "container-value");
}

TEST_F(KernelProcessTest, SharedIpcWithoutIsolation) {
  Pid child = *kernel_.Clone(1, "child", 0);
  ASSERT_TRUE(kernel_.ShmPut(1, "k", "v").ok());
  EXPECT_EQ(*kernel_.ShmGet(child, "k"), "v");
}

TEST_F(KernelProcessTest, SetnsJoinsNamespace) {
  Pid contained = *kernel_.Clone(1, "contained", kCloneNewUts);
  ASSERT_TRUE(kernel_.SetHostname(contained, "inner").ok());
  Pid helper = *kernel_.Clone(1, "nsenter", 0);
  ASSERT_TRUE(kernel_.Setns(helper, contained, NsType::kUts).ok());
  EXPECT_EQ(*kernel_.GetHostname(helper), "inner");
}

TEST_F(KernelProcessTest, SetnsRequiresSysAdmin) {
  Pid contained = *kernel_.Clone(1, "contained", kCloneNewUts);
  Pid helper = *kernel_.Clone(1, "helper", 0);
  ASSERT_TRUE(kernel_.CapDrop(helper, {Capability::kSysAdmin}).ok());
  EXPECT_EQ(kernel_.Setns(helper, contained, NsType::kUts).error(), Err::kPerm);
}

TEST_F(KernelProcessTest, UnshareCreatesFreshNamespace) {
  Pid child = *kernel_.Clone(1, "child", 0);
  NsId before = kernel_.FindProcess(child)->ns.Get(NsType::kUts);
  ASSERT_TRUE(kernel_.Unshare(child, kCloneNewUts).ok());
  NsId after = kernel_.FindProcess(child)->ns.Get(NsType::kUts);
  EXPECT_NE(before, after);
  EXPECT_EQ(*kernel_.GetHostname(child), "testhost");  // copied content
}

TEST_F(KernelProcessTest, DeathHookFires) {
  std::vector<Pid> deaths;
  kernel_.AddDeathHook([&deaths](Pid pid) { deaths.push_back(pid); });
  Pid child = *kernel_.Clone(1, "child", 0);
  ASSERT_TRUE(kernel_.Exit(child, 0).ok());
  ASSERT_EQ(deaths.size(), 1u);
  EXPECT_EQ(deaths[0], child);
}

TEST_F(KernelProcessTest, NamespaceRefcountingDestroysEmptyNamespaces) {
  size_t before = kernel_.namespaces().live_count();
  Pid contained = *kernel_.Clone(1, "contained", kCloneNewUts | kCloneNewPid | kCloneNewIpc);
  EXPECT_EQ(kernel_.namespaces().live_count(), before + 3);
  ASSERT_TRUE(kernel_.Exit(contained, 0).ok());
  EXPECT_EQ(kernel_.namespaces().live_count(), before);
}

TEST_F(KernelProcessTest, PtraceRequiresCapability) {
  Pid tracer = *kernel_.Clone(1, "tracer", 0);
  Pid victim = *kernel_.Clone(1, "victim", 0);
  EXPECT_TRUE(kernel_.Ptrace(tracer, victim).ok());
  ASSERT_TRUE(kernel_.CapDrop(tracer, {Capability::kSysPtrace}).ok());
  EXPECT_EQ(kernel_.Ptrace(tracer, victim).error(), Err::kPerm);
  EXPECT_GE(kernel_.audit().CountEvent(AuditEvent::kCapabilityDenied), 1u);
}

TEST_F(KernelProcessTest, RebootRequiresCapability) {
  bool rebooted = false;
  kernel_.SetRebootHook([&rebooted] { rebooted = true; });
  Pid child = *kernel_.Clone(1, "child", 0);
  ASSERT_TRUE(kernel_.CapDrop(child, {Capability::kSysBoot}).ok());
  EXPECT_EQ(kernel_.Reboot(child).error(), Err::kPerm);
  EXPECT_FALSE(rebooted);
  EXPECT_TRUE(kernel_.Reboot(1).ok());
  EXPECT_TRUE(rebooted);
}

}  // namespace
}  // namespace witos
