// The Table 1 threat matrix as executable tests: each attack from the
// paper's §6 threat analysis is mounted against a deployed WatchIT
// environment and must be neutralized by the corresponding defence.

#include <gtest/gtest.h>

#include "src/broker/anomaly.h"
#include "src/core/cluster.h"
#include "src/core/session.h"
#include "src/core/ticket_class.h"
#include "src/workload/ticket_gen.h"
#include "src/workload/topology.h"

namespace watchit {
namespace {

class ThreatMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &cluster_.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
    manager_ = std::make_unique<ClusterManager>(&cluster_);
  }

  // Deploys a container of `cls` and returns a logged-in admin session.
  std::unique_ptr<AdminSession> DeployAndLogin(const std::string& cls) {
    Ticket ticket;
    ticket.id = "TKT-" + cls;
    ticket.target_machine = "userpc";
    ticket.assigned_class = cls;
    ticket.admin = "mallory";
    auto deployment = manager_->Deploy(ticket);
    EXPECT_TRUE(deployment.ok());
    auto session = std::make_unique<AdminSession>(machine_, deployment->session,
                                                  deployment->certificate, &cluster_.ca());
    EXPECT_TRUE(session->Login().ok());
    return session;
  }

  witos::Kernel& kernel() { return machine_->kernel(); }

  Cluster cluster_;
  Machine* machine_ = nullptr;
  std::unique_ptr<ClusterManager> manager_;
};

// Attack 1: escape the perforated container via a second chroot().
TEST_F(ThreatMatrixTest, Attack1ChrootEscapeBlocked) {
  auto session = DeployAndLogin("T-1");
  witos::Pid shell = session->shell();
  ASSERT_TRUE(kernel().MkDir(shell, "/tmp/escape").ok());
  EXPECT_EQ(kernel().Chroot(shell, "/tmp/escape").error(), witos::Err::kPerm);
  EXPECT_GE(kernel().audit().CountEvent(witos::AuditEvent::kCapabilityDenied), 1u);
}

// Attack 2: bind shell via ptrace of an outside process.
TEST_F(ThreatMatrixTest, Attack2PtraceBlocked) {
  auto session = DeployAndLogin("T-5");  // T-5 shares the host PID namespace
  witos::Pid shell = session->shell();
  // The host's init is visible from the shared PID namespace...
  auto procs = kernel().ListProcesses(shell);
  ASSERT_TRUE(procs.ok());
  ASSERT_GT(procs->size(), 2u);
  // ...but attaching to it is impossible without CAP_SYS_PTRACE.
  EXPECT_EQ(kernel().Ptrace(shell, 1).error(), witos::Err::kPerm);
}

// Attack 3: create a raw disk device and mount the real filesystem on it.
TEST_F(ThreatMatrixTest, Attack3RawDiskBlocked) {
  auto session = DeployAndLogin("T-6");  // whole-root view, maximal power
  witos::Pid shell = session->shell();
  EXPECT_EQ(kernel().MkNod(shell, "/tmp/sda", witos::FileType::kBlockDevice, 8).error(),
            witos::Err::kPerm);
  // Even if a device node pre-existed, mount needs CAP_SYS_ADMIN.
  auto fs = std::make_shared<witos::MemFs>("tmpfs");
  EXPECT_EQ(kernel().Mount(shell, fs, "/tmp", "sda").error(), witos::Err::kPerm);
}

// Attack 4: tap kernel memory through /dev/mem or /dev/kmem.
TEST_F(ThreatMatrixTest, Attack4DevMemBlocked) {
  auto session = DeployAndLogin("T-6");
  witos::Pid shell = session->shell();
  // The whole-root view exposes /dev — but opening the memory devices
  // requires the paper's new capability, which ContainIT strips.
  EXPECT_EQ(kernel().Open(shell, "/dev/mem", witos::kOpenRead).error(), witos::Err::kPerm);
  EXPECT_EQ(kernel().Open(shell, "/dev/kmem", witos::kOpenRead).error(), witos::Err::kPerm);
}

// Attack 5: tamper with WatchIT's own software.
TEST_F(ThreatMatrixTest, Attack5WatchItSoftwareProtected) {
  auto session = DeployAndLogin("T-6");
  // ITFS denies even reading WatchIT files inside the view...
  EXPECT_FALSE(session->ReadFile("/usr/watchit/permission-broker").ok());
  // ...and the TCB write guard denies mutation from anywhere, even the host.
  EXPECT_EQ(kernel().WriteFile(1, "/usr/watchit/permission-broker", "evil").error(),
            witos::Err::kPerm);
  EXPECT_TRUE(machine_->tcb_intact());
}

// Attack 6: tamper with the broker's log files.
TEST_F(ThreatMatrixTest, Attack6LogTamperingDetected) {
  auto session = DeployAndLogin("T-5");
  ASSERT_TRUE(session->Pb(witbroker::kVerbPs, {}).ok());
  witbroker::SecureLog& log = machine_->broker().log();
  size_t replica = log.AddReplica();
  ASSERT_TRUE(session->Pb(witbroker::kVerbRestartService, {"cron"}).ok());
  ASSERT_TRUE(log.Verify());
  log.TamperForTest(0, "GRANT mallory nothing");
  EXPECT_FALSE(log.Verify());
  EXPECT_FALSE(log.MatchesReplica(replica));
}

// Attack 7: kill a WatchIT component to escape monitoring.
TEST_F(ThreatMatrixTest, Attack7KillComponentTerminatesSession) {
  auto session = DeployAndLogin("T-1");
  const witcontain::Session* info = session->container();
  witos::Pid itfs_daemon = info->itfs_daemon;
  ASSERT_NE(itfs_daemon, witos::kNoPid);
  ASSERT_TRUE(kernel().Exit(itfs_daemon, -9).ok());
  EXPECT_FALSE(info->active);
  // The admin's shell is gone; further commands fail.
  EXPECT_FALSE(session->ReadFile("/home/user/notes.txt").ok());
}

// Attack 7b: killing the permission broker also tears sessions down.
TEST_F(ThreatMatrixTest, Attack7KillBrokerTerminatesSessions) {
  auto session = DeployAndLogin("T-1");
  ASSERT_TRUE(kernel().Exit(machine_->broker_pid(), -9).ok());
  EXPECT_FALSE(session->container()->active);
}

// Attack 8: read a classified file, encrypt it, exfiltrate it.
TEST_F(ThreatMatrixTest, Attack8EncryptAndExfiltrateBlocked) {
  auto session = DeployAndLogin("T-6");  // has (whitelisted) web access
  // Step 1 fails outright: ITFS blocks the classified file by signature.
  EXPECT_FALSE(session->ReadFile("/home/user/documents/payroll.xlsx").ok());
  // Step 2 fallback: even exfiltrating *other* content that looks encrypted
  // is dropped by the sniffer on the wire.
  const witcontain::Session* info = session->container();
  const witos::Process* shell = kernel().FindProcess(info->shell);
  witos::NsId net_ns = shell->ns.Get(witos::NsType::kNet);
  std::string encrypted;
  std::mt19937 rng(7);
  for (int i = 0; i < 2048; ++i) {
    encrypted += static_cast<char>(rng() & 0xff);
  }
  auto repo = witload::kSoftwareRepo;  // an in-view destination
  EXPECT_EQ(machine_->net().Request(net_ns, repo.addr, repo.port, encrypted, 0).error(),
            witos::Err::kTimedOut);
  EXPECT_GE(info->sniffer->blocked_count(), 1u);
}

// Attack 9: fake tickets — IT personnel cannot create trouble tickets, so a
// session only exists for a real, bound ticket; certificates are
// unforgeable and machine-specific.
TEST_F(ThreatMatrixTest, Attack9ForgedCertificateRejected) {
  Ticket ticket;
  ticket.id = "TKT-REAL";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-1";
  ticket.admin = "mallory";
  auto deployment = manager_->Deploy(ticket);
  ASSERT_TRUE(deployment.ok());
  // Mallory edits her certificate to claim a juicier ticket class.
  Certificate forged = deployment->certificate;
  forged.ticket_class = "T-6";
  AdminSession session(machine_, deployment->session, forged, &cluster_.ca());
  EXPECT_EQ(session.Login().error(), witos::Err::kPerm);
  // And a self-made certificate is unknown to the CA.
  Certificate invented;
  invented.serial = 9999;
  invented.admin = "mallory";
  AdminSession session2(machine_, deployment->session, invented, &cluster_.ca());
  EXPECT_EQ(session2.Login().error(), witos::Err::kPerm);
}

// Attack 10: ticket stringing — even across classes, the blanket hard
// constraints (document filter, sniffer rules) hold in every container.
TEST_F(ThreatMatrixTest, Attack10StringingStillConstrained) {
  for (int cls = 1; cls <= 10; ++cls) {
    auto session = DeployAndLogin(witload::TicketClassName(cls));
    EXPECT_FALSE(session->ReadFile("/home/user/documents/payroll.xlsx").ok())
        << "class T-" << cls << " leaked the document";
    EXPECT_FALSE(session->ReadFile("/home/user/documents/patients.pdf").ok());
  }
}

// Attack 11: malware installation from the web — only whitelisted sites are
// reachable, and only for the software class.
TEST_F(ThreatMatrixTest, Attack11WebRestrictedToWhitelist) {
  auto session = DeployAndLogin("T-6");
  // Whitelisted mirror reachable.
  EXPECT_TRUE(session->Connect("eclipse-mirror", 0).ok());
  // Arbitrary internet host is not.
  EXPECT_FALSE(session->Connect("evil-host", 0).ok());
  // Other classes get no web at all.
  auto license_session = DeployAndLogin("T-1");
  EXPECT_FALSE(license_session->Connect("eclipse-mirror", 0).ok());
}

// Expired certificates stop working ("revoked once the ticket time
// expires").
TEST_F(ThreatMatrixTest, ExpiredCertificateLosesAccess) {
  Ticket ticket;
  ticket.id = "TKT-SHORT";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-1";
  ticket.admin = "alice";
  auto deployment = manager_->Deploy(ticket, /*lifetime_ns=*/1000);
  ASSERT_TRUE(deployment.ok());
  AdminSession session(machine_, deployment->session, deployment->certificate, &cluster_.ca());
  ASSERT_TRUE(session.Login().ok());
  ASSERT_TRUE(session.ReadFile("/home/user/notes.txt").ok());
  kernel().clock().Advance(2000);  // ticket time passes
  EXPECT_EQ(session.ReadFile("/home/user/notes.txt").error(), witos::Err::kPerm);
}

// Driver updates (TCB changes) must go through the broker and be signed.
TEST_F(ThreatMatrixTest, DriverUpdateNeedsPolicySignature) {
  auto session = DeployAndLogin("T-11");
  // Unsigned module: the TCB guard rejects it even via the broker.
  EXPECT_FALSE(session->Pb(witbroker::kVerbDriverUpdate, {"rootkit"}).ok());
  // Signed module: allowed, audited.
  machine_->tcb().AuthorizeModule("raid-ctl");
  EXPECT_TRUE(session->Pb(witbroker::kVerbDriverUpdate, {"raid-ctl"}).ok());
  EXPECT_EQ(kernel().loaded_modules(), std::vector<std::string>{"raid-ctl"});
  // For classes other than T-11 the policy denies the verb entirely.
  auto t1 = DeployAndLogin("T-1");
  EXPECT_FALSE(t1->Pb(witbroker::kVerbDriverUpdate, {"raid-ctl"}).ok());
}

// Anomaly detection over the broker log catches a rogue admin's unusual
// requests.
TEST_F(ThreatMatrixTest, AnomalyDetectionFlagsRogueRequests) {
  auto session = DeployAndLogin("T-5");
  // Benign history: routine ps / restarts.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(session->Pb(witbroker::kVerbPs, {}).ok());
  }
  witbroker::AnomalyDetector detector;
  detector.Fit(machine_->broker().EventsSnapshot());
  // The rogue request: reading the shadow file via the broker.
  ASSERT_TRUE(session->Pb(witbroker::kVerbReadFile, {"/etc/shadow"}).ok());
  auto events = machine_->broker().EventsSnapshot();
  auto scores = detector.Analyze(events);
  EXPECT_TRUE(scores.back().flagged);
}

}  // namespace
}  // namespace watchit
