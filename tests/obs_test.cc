// Observability-layer tests: counter/gauge/histogram semantics, percentile
// math, concurrent updates, span nesting + correlation-id propagation,
// exact Prometheus text-format output, and the end-to-end wiring through a
// booted Machine (ITFS + broker + forensics).

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/broker/policy.h"
#include "src/core/cluster.h"
#include "src/core/report.h"
#include "src/core/session.h"
#include "src/fs/oplog.h"

namespace witobs {
namespace {

// ---------------------------------------------------------------- metrics --

TEST(CounterTest, IncrementAndHandleIdentity) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("watchit_test_total", {{"op", "open"}});
  ASSERT_NE(c, nullptr);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  // Same (name, labels) -> same handle; different labels -> different series.
  EXPECT_EQ(registry.GetCounter("watchit_test_total", {{"op", "open"}}), c);
  EXPECT_NE(registry.GetCounter("watchit_test_total", {{"op", "read"}}), c);
  EXPECT_EQ(registry.CounterValue("watchit_test_total", {{"op", "open"}}), 42u);
  EXPECT_EQ(registry.CounterValue("watchit_test_total", {{"op", "absent"}}), 0u);
}

TEST(CounterTest, LabelOrderDoesNotMatter) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("watchit_t", {{"a", "1"}, {"b", "2"}});
  Counter* b = registry.GetCounter("watchit_t", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(CounterTest, TypeConfusionReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("watchit_x"), nullptr);
  EXPECT_EQ(registry.GetHistogram("watchit_x"), nullptr);
  EXPECT_EQ(registry.GetGauge("watchit_x"), nullptr);
}

TEST(GaugeTest, SetAddSub) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("watchit_depth");
  g->Set(10);
  g->Add(5);
  g->Sub(7);
  EXPECT_EQ(g->Value(), 8);
  EXPECT_EQ(registry.GaugeValue("watchit_depth"), 8);
}

TEST(HistogramTest, CountSumAndBucketing) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("watchit_lat_ns");
  h->Observe(500);      // bucket 1 (256 < 500 <= 512)
  h->Observe(300000);   // bucket 11 (262144 < 300000 <= 524288)
  EXPECT_EQ(h->Count(), 2u);
  EXPECT_EQ(h->SumNs(), 300500u);
  EXPECT_EQ(h->BucketCount(0), 0u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(11), 1u);
}

TEST(HistogramTest, PercentileMath) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("watchit_lat_ns");
  EXPECT_EQ(h->Percentile(50), 0u);  // empty histogram

  // 100 observations all in bucket 0 (bounds 0..256): the rank-r estimate
  // interpolates linearly, so p50 (rank 50 of 100) sits at 128.
  for (int i = 0; i < 100; ++i) {
    h->Observe(100);
  }
  EXPECT_EQ(h->Percentile(50), 128u);
  EXPECT_EQ(h->Percentile(100), 256u);

  // Add 100 observations in bucket 2 (512..1024): p75 now lands mid-way
  // through the upper bucket's mass.
  for (int i = 0; i < 100; ++i) {
    h->Observe(1000);
  }
  uint64_t p25 = h->Percentile(25);
  uint64_t p50 = h->Percentile(50);
  uint64_t p75 = h->Percentile(75);
  uint64_t p99 = h->Percentile(99);
  EXPECT_EQ(p25, 128u);   // rank 50 of 200, halfway through bucket 0
  EXPECT_EQ(p50, 256u);   // rank 100 of 200: the whole of bucket 0
  EXPECT_EQ(p75, 768u);   // rank 150: halfway through bucket 2 (512..1024)
  EXPECT_LE(p50, p75);
  EXPECT_LE(p75, p99);
  EXPECT_LE(p99, 1024u);
}

TEST(HistogramTest, ConcurrentObservationsFromEightThreads) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("watchit_hits_total");
  Histogram* hist = registry.GetHistogram("watchit_lat_ns");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(static_cast<uint64_t>(t * 1000 + i % 997));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
    bucket_total += hist->BucketCount(i);
  }
  EXPECT_EQ(bucket_total, hist->Count());
}

// ------------------------------------------------------------- exporters --

TEST(PrometheusTest, ExactTextFormat) {
  MetricsRegistry registry;
  registry.SetHelp("watchit_test_requests_total", "Requests seen");
  registry.GetCounter("watchit_test_requests_total", {{"outcome", "allow"}})->Increment(3);
  registry.GetCounter("watchit_test_requests_total", {{"outcome", "deny"}})->Increment();
  registry.GetGauge("watchit_test_queue_depth")->Set(7);
  Histogram* h = registry.GetHistogram("watchit_test_latency_ns");
  h->Observe(500);
  h->Observe(300000);

  // The 26-step exponential bucket ladder, hard-coded independently of
  // Histogram::BucketBound.
  const char* kBounds[] = {
      "256",      "512",      "1024",      "2048",      "4096",       "8192",      "16384",
      "32768",    "65536",    "131072",    "262144",    "524288",     "1048576",   "2097152",
      "4194304",  "8388608",  "16777216",  "33554432",  "67108864",   "134217728", "268435456",
      "536870912", "1073741824", "2147483648", "4294967296", "8589934592"};
  std::string expected = "# TYPE watchit_test_latency_ns histogram\n";
  for (size_t i = 0; i < 26; ++i) {
    const char* cumulative = i == 0 ? "0" : (i < 11 ? "1" : "2");
    expected += std::string("watchit_test_latency_ns_bucket{le=\"") + kBounds[i] + "\"} " +
                cumulative + "\n";
  }
  expected += "watchit_test_latency_ns_bucket{le=\"+Inf\"} 2\n";
  expected += "watchit_test_latency_ns_sum 300500\n";
  expected += "watchit_test_latency_ns_count 2\n";
  expected += "# TYPE watchit_test_queue_depth gauge\n";
  expected += "watchit_test_queue_depth 7\n";
  expected += "# HELP watchit_test_requests_total Requests seen\n";
  expected += "# TYPE watchit_test_requests_total counter\n";
  expected += "watchit_test_requests_total{outcome=\"allow\"} 3\n";
  expected += "watchit_test_requests_total{outcome=\"deny\"} 1\n";

  EXPECT_EQ(RenderPrometheus(registry), expected);
}

TEST(JsonTest, SnapshotCarriesPercentiles) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("watchit_lat_ns");
  for (int i = 0; i < 100; ++i) {
    h->Observe(100);
  }
  std::string json = RenderJson(registry);
  EXPECT_NE(json.find("\"watchit_lat_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50_ns\":128"), std::string::npos);
}

// --------------------------------------------------------------- tracing --

uint64_t FakeNow() {
  static std::atomic<uint64_t> now{0};
  return now.fetch_add(10) + 10;  // advances 10ns per call
}

TEST(TraceTest, SpanNestingAndCorrelationPropagation) {
  Tracer tracer(64);
  tracer.SetClockForTest(&FakeNow);
  {
    Span outer(&tracer, "workflow.process", "TKT-1");
    EXPECT_EQ(Span::CurrentCorrelationId(&tracer), "TKT-1");
    {
      Span inner(&tracer, "itfs.gate");  // no id: inherits TKT-1
      EXPECT_EQ(Span::CurrentCorrelationId(&tracer), "TKT-1");
    }
    {
      Span other(&tracer, "broker.handle", "TKT-2");  // explicit id wins
      EXPECT_EQ(Span::CurrentCorrelationId(&tracer), "TKT-2");
    }
  }
  EXPECT_EQ(Span::CurrentCorrelationId(&tracer), "");

  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Recorded at destruction: innermost spans first.
  EXPECT_EQ(spans[0].name, "itfs.gate");
  EXPECT_EQ(spans[0].correlation_id, "TKT-1");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "broker.handle");
  EXPECT_EQ(spans[1].correlation_id, "TKT-2");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "workflow.process");
  EXPECT_EQ(spans[2].correlation_id, "TKT-1");
  EXPECT_EQ(spans[2].depth, 0u);
  EXPECT_GT(spans[2].duration_ns, spans[0].duration_ns);  // outer encloses inner

  std::string dump = RenderTraceDump(tracer);
  EXPECT_NE(dump.find("[TKT-1]   itfs.gate"), std::string::npos);
  EXPECT_NE(dump.find("[TKT-1] workflow.process"), std::string::npos);
}

TEST(TraceTest, RingBufferDropsOldestAndCounts) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    Span span(&tracer, "s", std::to_string(i));
  }
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].correlation_id, "6");  // oldest surviving
  EXPECT_EQ(spans[3].correlation_id, "9");
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
}

TEST(TraceTest, NullTracerIsNoOp) {
  Span span(nullptr, "noop", "x");
  EXPECT_EQ(Span::CurrentCorrelationId(nullptr), "");
}

// ------------------------------------------------- end-to-end (Machine) --

TEST(EndToEndTest, MachineWiringProducesTwelvePlusSeries) {
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
  watchit::ClusterManager manager(&cluster);

  watchit::Ticket ticket;
  ticket.id = "TKT-OBS";
  ticket.target_machine = "userpc";
  ticket.assigned_class = "T-1";
  ticket.admin = "alice";
  auto deployment = manager.Deploy(ticket);
  ASSERT_TRUE(deployment.ok());

  watchit::AdminSession session(&machine, deployment->session, deployment->certificate,
                                &cluster.ca());
  ASSERT_TRUE(session.Login().ok());
  ASSERT_TRUE(session.ReadFile("/home/user/.matlab/license.lic").ok());
  EXPECT_FALSE(session.ReadFile("/home/user/documents/payroll.xlsx").ok());  // denied
  ASSERT_TRUE(session.Pb(witbroker::kVerbPs, {}).ok());
  EXPECT_FALSE(session.Pb(witbroker::kVerbDriverUpdate, {"rootkit"}).ok());  // denied

  const witobs::MetricsRegistry& metrics = machine.metrics();
  // The acceptance bar: at least 12 distinct series covering ITFS ops,
  // broker verbs, and latency histograms.
  EXPECT_GE(metrics.SeriesCount(), 12u);

  // Per-ticket ITFS counters, by outcome.
  EXPECT_GT(metrics.CounterValue("watchit_itfs_ticket_ops_total",
                                 {{"ticket", "TKT-OBS"}, {"outcome", "allow"}}),
            0u);
  EXPECT_GT(metrics.CounterValue("watchit_itfs_ticket_ops_total",
                                 {{"ticket", "TKT-OBS"}, {"outcome", "deny"}}),
            0u);
  // Broker verbs by grant outcome.
  EXPECT_EQ(metrics.CounterValue("watchit_broker_requests_total",
                                 {{"verb", "ps"}, {"outcome", "grant"}}),
            1u);
  EXPECT_EQ(metrics.CounterValue("watchit_broker_requests_total",
                                 {{"verb", "driver_update"}, {"outcome", "deny"}}),
            1u);
  // Simulated latency histograms saw traffic.
  const Histogram* read_latency =
      metrics.FindHistogram("watchit_itfs_op_latency_ns", {{"op", "read"}});
  ASSERT_NE(read_latency, nullptr);
  EXPECT_GT(read_latency->Count(), 0u);
  EXPECT_GT(read_latency->Percentile(50), 0u);
  const Histogram* dispatch = metrics.FindHistogram("watchit_broker_dispatch_latency_ns");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(dispatch->Count(), 1u);  // only the granted ps dispatched

  // The rendered exposition carries the headline families.
  std::string prom = RenderPrometheus(metrics);
  for (const char* family :
       {"watchit_itfs_ops_total", "watchit_itfs_ticket_ops_total",
        "watchit_itfs_op_latency_ns_bucket", "watchit_broker_requests_total",
        "watchit_broker_dispatch_latency_ns_count"}) {
    EXPECT_NE(prom.find(family), std::string::npos) << family;
  }

  // Spans emitted by ITFS/broker carry the ticket id as correlation.
  bool saw_gate = false;
  bool saw_broker = false;
  for (const auto& span : GlobalTracer().Snapshot()) {
    saw_gate |= span.name == "itfs.gate" && span.correlation_id == "TKT-OBS";
    saw_broker |= span.name == "broker.handle" && span.correlation_id == "TKT-OBS";
  }
  EXPECT_TRUE(saw_gate);
  EXPECT_TRUE(saw_broker);

  // The forensic report reads the same registry.
  watchit::ForensicReporter reporter(&machine);
  auto forensics = reporter.Collect(deployment->session);
  ASSERT_TRUE(forensics.ok());
  EXPECT_GT(forensics->fs_ops, 0u);
  EXPECT_GT(forensics->fs_denied, 0u);
  EXPECT_EQ(forensics->broker_requests, 2u);
  EXPECT_EQ(forensics->broker_denied, 1u);
}

TEST(EndToEndTest, OpLogRetentionCapDropsOldestAndCountsInRegistry) {
  MetricsRegistry registry;
  witfs::OpLog log;
  log.set_capacity(3);
  log.set_dropped_counter(registry.GetCounter("watchit_itfs_oplog_dropped_total"));
  for (int i = 0; i < 5; ++i) {
    witfs::OpRecord rec;
    rec.path = "/f" + std::to_string(i);
    log.Record(std::move(rec));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.records().front().path, "/f2");  // oldest two evicted
  EXPECT_EQ(log.dropped_records(), 2u);
  EXPECT_EQ(registry.CounterValue("watchit_itfs_oplog_dropped_total"), 2u);
}

TEST(EndToEndTest, BrokerEventRetentionCap) {
  watchit::Cluster cluster;
  watchit::Machine& machine = cluster.AddMachine("pc", witnet::Ipv4Addr(10, 0, 1, 51));
  machine.broker().set_event_capacity(2);
  (void)machine.broker().BindTicket("TKT-CAP", "T-5");
  witbroker::BrokerClient client(&machine.broker_channel(), "TKT-CAP", "alice");
  for (int i = 0; i < 5; ++i) {
    (void)client.Request(witbroker::kVerbPs, {}, witos::kRootUid);
  }
  EXPECT_EQ(machine.broker().EventsSnapshot().size(), 2u);
  EXPECT_EQ(machine.broker().dropped_events(), 3u);
  EXPECT_EQ(machine.metrics().CounterValue("watchit_broker_events_dropped_total"), 3u);
  // The registry still has the exact total despite the eviction.
  EXPECT_EQ(machine.metrics().CounterValue("watchit_broker_ticket_requests_total",
                                           {{"ticket", "TKT-CAP"}, {"outcome", "grant"}}),
            5u);
}

}  // namespace
}  // namespace witobs
