// Adversarial-input tests for the broker wire format (paper §5.4): the
// broker parses frames sent by a *hostile superuser* inside the perforated
// container, so the decoder must survive arbitrary bytes. A deterministic
// byte-mutation fuzz loop (fixed seeds, syzkaller-style mutations: bit
// flips, truncation, splicing, length-prefix stomps) runs over every RPC
// message type; decoding must never crash, never allocate based on an
// unvalidated length prefix, and anything it accepts must round-trip
// losslessly.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/broker/rpc.h"
#include "src/broker/wire.h"

namespace witbroker {
namespace {

constexpr int kMutationsPerType = 12000;

std::string PackU32(uint32_t v) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xff);
  }
  return out;
}

// --- Hostile length-prefix regressions --------------------------------------

TEST(WireHardeningTest, HugeStringLengthPrefixIsRejectedWithoutAllocating) {
  // A 4-byte header claiming a ~4 GB string backed by 3 bytes of payload.
  std::string buf = PackU32(0xffffffffu) + "abc";
  WireReader reader(buf);
  auto s = reader.GetString();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error(), witos::Err::kInval);
}

TEST(WireHardeningTest, HugeListCountIsRejectedWithoutAllocating) {
  // Pre-fix, GetStringList reserved `count` strings before reading a single
  // element: 0xffffffff * sizeof(std::string) ≈ 137 GB, an instant
  // allocation-size abort under ASan. The count must be capped against the
  // bytes remaining (each element costs at least a 4-byte prefix).
  std::string buf = PackU32(0xffffffffu) + PackU32(0) + PackU32(0);
  WireReader reader(buf);
  auto list = reader.GetStringList();
  ASSERT_FALSE(list.ok());
  EXPECT_EQ(list.error(), witos::Err::kInval);
}

TEST(WireHardeningTest, ListCountJustAboveRemainingIsRejected) {
  // 3 claimed elements but only enough bytes for 2 empty ones.
  std::string buf = PackU32(3) + PackU32(0) + PackU32(0);
  WireReader reader(buf);
  EXPECT_FALSE(reader.GetStringList().ok());
}

TEST(WireHardeningTest, ExactFitListStillDecodes) {
  WireWriter writer;
  writer.PutStringList({"a", "", "bc"});
  WireReader reader(writer.data());
  auto list = reader.GetStringList();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(*list, (std::vector<std::string>{"a", "", "bc"}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireHardeningTest, TruncatedInnerStringIsRejected) {
  // Valid count, but the second element's body is cut short.
  std::string buf = PackU32(2) + PackU32(1) + "x" + PackU32(5) + "ab";
  WireReader reader(buf);
  EXPECT_FALSE(reader.GetStringList().ok());
}

// --- Deterministic mutation fuzz over every RPC message type ----------------

// Applies one random mutation to `data` (which may change its length).
std::string Mutate(std::string data, std::mt19937& rng) {
  std::uniform_int_distribution<int> kind_dist(0, 5);
  auto pos_in = [&rng](size_t size) {
    return std::uniform_int_distribution<size_t>(0, size - 1)(rng);
  };
  std::uniform_int_distribution<int> byte_dist(0, 255);
  switch (kind_dist(rng)) {
    case 0:  // flip one bit
      if (!data.empty()) {
        size_t i = pos_in(data.size());
        data[i] = static_cast<char>(data[i] ^ (1 << (byte_dist(rng) % 8)));
      }
      break;
    case 1:  // overwrite one byte
      if (!data.empty()) {
        data[pos_in(data.size())] = static_cast<char>(byte_dist(rng));
      }
      break;
    case 2:  // truncate
      if (!data.empty()) {
        data.resize(pos_in(data.size()));
      }
      break;
    case 3: {  // insert a few random bytes
      size_t at = data.empty() ? 0 : pos_in(data.size());
      std::string junk;
      for (int i = 0; i < 1 + byte_dist(rng) % 7; ++i) {
        junk += static_cast<char>(byte_dist(rng));
      }
      data.insert(at, junk);
      break;
    }
    case 4:  // duplicate a slice (splice)
      if (data.size() >= 2) {
        size_t a = pos_in(data.size());
        size_t b = pos_in(data.size());
        if (a > b) {
          std::swap(a, b);
        }
        data.insert(pos_in(data.size()), data.substr(a, b - a));
      }
      break;
    case 5:  // stomp a 4-byte window with an extreme length prefix
      if (data.size() >= 4) {
        size_t at = pos_in(data.size() - 3);
        uint32_t v = (byte_dist(rng) % 2 == 0) ? 0xffffffffu : 0x7fffffffu;
        for (int i = 0; i < 4; ++i) {
          data[at + static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
        }
      }
      break;
  }
  return data;
}

std::vector<std::string> RequestCorpus() {
  std::vector<std::string> corpus;
  RpcRequest minimal;
  corpus.push_back(minimal.Serialize());
  RpcRequest typical;
  typical.method = "perforate";
  typical.args = {"--mount", "/var/log", "ro"};
  typical.uid = 1007;
  typical.caller_pid = 42;
  typical.ticket_id = "T-1984";
  typical.admin = "mallory@corp";
  corpus.push_back(typical.Serialize());
  RpcRequest wide;
  wide.method = std::string(200, 'm');
  wide.args.assign(40, std::string(17, 'a'));
  corpus.push_back(wide.Serialize());
  return corpus;
}

std::vector<std::string> ResponseCorpus() {
  std::vector<std::string> corpus;
  RpcResponse minimal;
  corpus.push_back(minimal.Serialize());
  RpcResponse typical;
  typical.ok = true;
  typical.payload = "mounted:/var/log";
  corpus.push_back(typical.Serialize());
  RpcResponse error;
  error.error = "EACCES";
  error.payload = std::string(300, 'p');
  corpus.push_back(error.Serialize());
  return corpus;
}

bool RequestsEqual(const RpcRequest& a, const RpcRequest& b) {
  return a.method == b.method && a.args == b.args && a.uid == b.uid &&
         a.caller_pid == b.caller_pid && a.ticket_id == b.ticket_id && a.admin == b.admin;
}

bool ResponsesEqual(const RpcResponse& a, const RpcResponse& b) {
  return a.ok == b.ok && a.error == b.error && a.payload == b.payload;
}

TEST(WireFuzzTest, RpcRequestSurvivesSeededMutationStorm) {
  auto corpus = RequestCorpus();
  std::mt19937 rng(0x5EED0001);
  std::uniform_int_distribution<size_t> pick(0, corpus.size() - 1);
  std::uniform_int_distribution<int> depth_dist(1, 4);
  size_t accepted = 0;
  for (int i = 0; i < kMutationsPerType; ++i) {
    std::string mutated = corpus[pick(rng)];
    int depth = depth_dist(rng);
    for (int d = 0; d < depth; ++d) {
      mutated = Mutate(std::move(mutated), rng);
    }
    auto decoded = RpcRequest::Deserialize(mutated);
    if (!decoded.ok()) {
      continue;  // rejection is a fine outcome; crashing is not
    }
    ++accepted;
    // Whatever the decoder accepts must round-trip losslessly: a mutated
    // frame that parses is indistinguishable from a legitimate one.
    auto redecoded = RpcRequest::Deserialize(decoded->Serialize());
    ASSERT_TRUE(redecoded.ok()) << "iteration " << i;
    EXPECT_TRUE(RequestsEqual(*decoded, *redecoded)) << "iteration " << i;
  }
  // The mutator keeps many frames valid (bit flips inside string bodies);
  // if nothing was ever accepted the loop exercised nothing.
  EXPECT_GT(accepted, 0u);
}

TEST(WireFuzzTest, RpcResponseSurvivesSeededMutationStorm) {
  auto corpus = ResponseCorpus();
  std::mt19937 rng(0x5EED0002);
  std::uniform_int_distribution<size_t> pick(0, corpus.size() - 1);
  std::uniform_int_distribution<int> depth_dist(1, 4);
  size_t accepted = 0;
  for (int i = 0; i < kMutationsPerType; ++i) {
    std::string mutated = corpus[pick(rng)];
    int depth = depth_dist(rng);
    for (int d = 0; d < depth; ++d) {
      mutated = Mutate(std::move(mutated), rng);
    }
    auto decoded = RpcResponse::Deserialize(mutated);
    if (!decoded.ok()) {
      continue;
    }
    ++accepted;
    auto redecoded = RpcResponse::Deserialize(decoded->Serialize());
    ASSERT_TRUE(redecoded.ok()) << "iteration " << i;
    EXPECT_TRUE(ResponsesEqual(*decoded, *redecoded)) << "iteration " << i;
  }
  EXPECT_GT(accepted, 0u);
}

TEST(WireFuzzTest, PureGarbageBuffersNeverCrashEitherDecoder) {
  std::mt19937 rng(0x5EED0003);
  std::uniform_int_distribution<size_t> len_dist(0, 96);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < kMutationsPerType; ++i) {
    std::string garbage;
    size_t len = len_dist(rng);
    garbage.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      garbage += static_cast<char>(byte_dist(rng));
    }
    (void)RpcRequest::Deserialize(garbage);
    (void)RpcResponse::Deserialize(garbage);
  }
}

TEST(WireFuzzTest, ValidMessagesAlwaysRoundTrip) {
  // Structured generator: random but well-formed messages must decode to
  // exactly themselves (the fuzz loops above check the converse direction).
  std::mt19937 rng(0x5EED0004);
  std::uniform_int_distribution<int> byte_dist(32, 126);
  std::uniform_int_distribution<size_t> len_dist(0, 40);
  std::uniform_int_distribution<size_t> list_dist(0, 8);
  auto rand_string = [&]() {
    std::string s;
    size_t len = len_dist(rng);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>(byte_dist(rng));
    }
    return s;
  };
  for (int i = 0; i < 2000; ++i) {
    RpcRequest req;
    req.method = rand_string();
    size_t nargs = list_dist(rng);
    for (size_t a = 0; a < nargs; ++a) {
      req.args.push_back(rand_string());
    }
    req.uid = static_cast<witos::Uid>(rng());
    req.caller_pid = static_cast<witos::Pid>(rng() % 100000);
    req.ticket_id = rand_string();
    req.admin = rand_string();
    auto decoded = RpcRequest::Deserialize(req.Serialize());
    ASSERT_TRUE(decoded.ok()) << "iteration " << i;
    EXPECT_TRUE(RequestsEqual(req, *decoded)) << "iteration " << i;

    RpcResponse resp;
    resp.ok = rng() % 2 == 0;
    resp.error = rand_string();
    resp.payload = rand_string();
    auto decoded_resp = RpcResponse::Deserialize(resp.Serialize());
    ASSERT_TRUE(decoded_resp.ok()) << "iteration " << i;
    EXPECT_TRUE(ResponsesEqual(resp, *decoded_resp)) << "iteration " << i;
  }
}

}  // namespace
}  // namespace witbroker
