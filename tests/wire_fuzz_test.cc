// Adversarial-input tests for the broker wire format (paper §5.4): the
// broker parses frames sent by a *hostile superuser* inside the perforated
// container, so the decoder must survive arbitrary bytes. A deterministic
// byte-mutation fuzz loop (fixed seeds, syzkaller-style mutations: bit
// flips, truncation, splicing, length-prefix stomps) runs over every RPC
// message type; decoding must never crash, never allocate based on an
// unvalidated length prefix, and anything it accepts must round-trip
// losslessly.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/broker/rpc.h"
#include "src/broker/wire.h"

namespace witbroker {
namespace {

constexpr int kMutationsPerType = 12000;

std::string PackU32(uint32_t v) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xff);
  }
  return out;
}

// --- Hostile length-prefix regressions --------------------------------------

TEST(WireHardeningTest, HugeStringLengthPrefixIsRejectedWithoutAllocating) {
  // A 4-byte header claiming a ~4 GB string backed by 3 bytes of payload.
  std::string buf = PackU32(0xffffffffu) + "abc";
  WireReader reader(buf);
  auto s = reader.GetString();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error(), witos::Err::kInval);
}

TEST(WireHardeningTest, HugeListCountIsRejectedWithoutAllocating) {
  // Pre-fix, GetStringList reserved `count` strings before reading a single
  // element: 0xffffffff * sizeof(std::string) ≈ 137 GB, an instant
  // allocation-size abort under ASan. The count must be capped against the
  // bytes remaining (each element costs at least a 4-byte prefix).
  std::string buf = PackU32(0xffffffffu) + PackU32(0) + PackU32(0);
  WireReader reader(buf);
  auto list = reader.GetStringList();
  ASSERT_FALSE(list.ok());
  EXPECT_EQ(list.error(), witos::Err::kInval);
}

TEST(WireHardeningTest, ListCountJustAboveRemainingIsRejected) {
  // 3 claimed elements but only enough bytes for 2 empty ones.
  std::string buf = PackU32(3) + PackU32(0) + PackU32(0);
  WireReader reader(buf);
  EXPECT_FALSE(reader.GetStringList().ok());
}

TEST(WireHardeningTest, ExactFitListStillDecodes) {
  WireWriter writer;
  writer.PutStringList({"a", "", "bc"});
  WireReader reader(writer.data());
  auto list = reader.GetStringList();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(*list, (std::vector<std::string>{"a", "", "bc"}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireHardeningTest, TruncatedInnerStringIsRejected) {
  // Valid count, but the second element's body is cut short.
  std::string buf = PackU32(2) + PackU32(1) + "x" + PackU32(5) + "ab";
  WireReader reader(buf);
  EXPECT_FALSE(reader.GetStringList().ok());
}

// --- Deterministic mutation fuzz over every RPC message type ----------------

// Applies one random mutation to `data` (which may change its length).
std::string Mutate(std::string data, std::mt19937& rng) {
  std::uniform_int_distribution<int> kind_dist(0, 5);
  auto pos_in = [&rng](size_t size) {
    return std::uniform_int_distribution<size_t>(0, size - 1)(rng);
  };
  std::uniform_int_distribution<int> byte_dist(0, 255);
  switch (kind_dist(rng)) {
    case 0:  // flip one bit
      if (!data.empty()) {
        size_t i = pos_in(data.size());
        data[i] = static_cast<char>(data[i] ^ (1 << (byte_dist(rng) % 8)));
      }
      break;
    case 1:  // overwrite one byte
      if (!data.empty()) {
        data[pos_in(data.size())] = static_cast<char>(byte_dist(rng));
      }
      break;
    case 2:  // truncate
      if (!data.empty()) {
        data.resize(pos_in(data.size()));
      }
      break;
    case 3: {  // insert a few random bytes
      size_t at = data.empty() ? 0 : pos_in(data.size());
      std::string junk;
      for (int i = 0; i < 1 + byte_dist(rng) % 7; ++i) {
        junk += static_cast<char>(byte_dist(rng));
      }
      data.insert(at, junk);
      break;
    }
    case 4:  // duplicate a slice (splice)
      if (data.size() >= 2) {
        size_t a = pos_in(data.size());
        size_t b = pos_in(data.size());
        if (a > b) {
          std::swap(a, b);
        }
        data.insert(pos_in(data.size()), data.substr(a, b - a));
      }
      break;
    case 5:  // stomp a 4-byte window with an extreme length prefix
      if (data.size() >= 4) {
        size_t at = pos_in(data.size() - 3);
        uint32_t v = (byte_dist(rng) % 2 == 0) ? 0xffffffffu : 0x7fffffffu;
        for (int i = 0; i < 4; ++i) {
          data[at + static_cast<size_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
        }
      }
      break;
  }
  return data;
}

std::vector<std::string> RequestCorpus() {
  std::vector<std::string> corpus;
  RpcRequest minimal;
  corpus.push_back(minimal.Serialize());
  RpcRequest typical;
  typical.method = "perforate";
  typical.args = {"--mount", "/var/log", "ro"};
  typical.uid = 1007;
  typical.caller_pid = 42;
  typical.ticket_id = "T-1984";
  typical.admin = "mallory@corp";
  corpus.push_back(typical.Serialize());
  RpcRequest wide;
  wide.method = std::string(200, 'm');
  wide.args.assign(40, std::string(17, 'a'));
  corpus.push_back(wide.Serialize());
  return corpus;
}

std::vector<std::string> ResponseCorpus() {
  std::vector<std::string> corpus;
  RpcResponse minimal;
  corpus.push_back(minimal.Serialize());
  RpcResponse typical;
  typical.ok = true;
  typical.payload = "mounted:/var/log";
  corpus.push_back(typical.Serialize());
  RpcResponse error;
  error.err = witos::Err::kAcces;
  error.payload = std::string(300, 'p');
  corpus.push_back(error.Serialize());
  return corpus;
}

std::vector<std::string> BatchRequestCorpus() {
  std::vector<std::string> corpus;
  RpcBatchRequest minimal;
  corpus.push_back(minimal.Serialize());
  RpcBatchRequest typical;
  typical.uid = 0;
  typical.caller_pid = 1042;
  typical.ticket_id = "TKT-20260805-00042";
  typical.admin = "mallory@corp";
  typical.ops = {{"ps", {}},
                 {"read_file", {"/var/log/syslog"}},
                 {"net_allow", {"10.1.2.3", "443"}}};
  corpus.push_back(typical.Serialize());
  RpcBatchRequest wide;
  wide.ops.assign(32, {std::string(60, 'm'), {std::string(17, 'a'), "x"}});
  corpus.push_back(wide.Serialize());
  return corpus;
}

std::vector<std::string> BatchResponseCorpus() {
  std::vector<std::string> corpus;
  RpcBatchResponse empty;
  corpus.push_back(empty.Serialize());
  RpcBatchResponse mixed;
  RpcResponse granted;
  granted.ok = true;
  granted.payload = "mounted:/var/log";
  RpcResponse denied;
  denied.err = witos::Err::kPerm;
  mixed.responses = {granted, denied, granted};
  corpus.push_back(mixed.Serialize());
  return corpus;
}

bool RequestsEqual(const RpcRequest& a, const RpcRequest& b) {
  return a.method == b.method && a.args == b.args && a.uid == b.uid &&
         a.caller_pid == b.caller_pid && a.ticket_id == b.ticket_id && a.admin == b.admin;
}

bool ResponsesEqual(const RpcResponse& a, const RpcResponse& b) {
  return a.ok == b.ok && a.err == b.err && a.payload == b.payload;
}

bool BatchRequestsEqual(const RpcBatchRequest& a, const RpcBatchRequest& b) {
  if (a.uid != b.uid || a.caller_pid != b.caller_pid || a.ticket_id != b.ticket_id ||
      a.admin != b.admin || a.ops.size() != b.ops.size()) {
    return false;
  }
  for (size_t i = 0; i < a.ops.size(); ++i) {
    if (a.ops[i].method != b.ops[i].method || a.ops[i].args != b.ops[i].args) {
      return false;
    }
  }
  return true;
}

bool BatchResponsesEqual(const RpcBatchResponse& a, const RpcBatchResponse& b) {
  if (a.responses.size() != b.responses.size()) {
    return false;
  }
  for (size_t i = 0; i < a.responses.size(); ++i) {
    if (!ResponsesEqual(a.responses[i], b.responses[i])) {
      return false;
    }
  }
  return true;
}

TEST(WireFuzzTest, RpcRequestSurvivesSeededMutationStorm) {
  auto corpus = RequestCorpus();
  std::mt19937 rng(0x5EED0001);
  std::uniform_int_distribution<size_t> pick(0, corpus.size() - 1);
  std::uniform_int_distribution<int> depth_dist(1, 4);
  size_t accepted = 0;
  for (int i = 0; i < kMutationsPerType; ++i) {
    std::string mutated = corpus[pick(rng)];
    int depth = depth_dist(rng);
    for (int d = 0; d < depth; ++d) {
      mutated = Mutate(std::move(mutated), rng);
    }
    auto decoded = RpcRequest::Deserialize(mutated);
    if (!decoded.ok()) {
      continue;  // rejection is a fine outcome; crashing is not
    }
    ++accepted;
    // Whatever the decoder accepts must round-trip losslessly: a mutated
    // frame that parses is indistinguishable from a legitimate one.
    auto redecoded = RpcRequest::Deserialize(decoded->Serialize());
    ASSERT_TRUE(redecoded.ok()) << "iteration " << i;
    EXPECT_TRUE(RequestsEqual(*decoded, *redecoded)) << "iteration " << i;
  }
  // The mutator keeps many frames valid (bit flips inside string bodies);
  // if nothing was ever accepted the loop exercised nothing.
  EXPECT_GT(accepted, 0u);
}

TEST(WireFuzzTest, RpcResponseSurvivesSeededMutationStorm) {
  auto corpus = ResponseCorpus();
  std::mt19937 rng(0x5EED0002);
  std::uniform_int_distribution<size_t> pick(0, corpus.size() - 1);
  std::uniform_int_distribution<int> depth_dist(1, 4);
  size_t accepted = 0;
  for (int i = 0; i < kMutationsPerType; ++i) {
    std::string mutated = corpus[pick(rng)];
    int depth = depth_dist(rng);
    for (int d = 0; d < depth; ++d) {
      mutated = Mutate(std::move(mutated), rng);
    }
    auto decoded = RpcResponse::Deserialize(mutated);
    if (!decoded.ok()) {
      continue;
    }
    ++accepted;
    auto redecoded = RpcResponse::Deserialize(decoded->Serialize());
    ASSERT_TRUE(redecoded.ok()) << "iteration " << i;
    EXPECT_TRUE(ResponsesEqual(*decoded, *redecoded)) << "iteration " << i;
  }
  EXPECT_GT(accepted, 0u);
}

TEST(WireFuzzTest, RpcBatchRequestSurvivesSeededMutationStorm) {
  auto corpus = BatchRequestCorpus();
  std::mt19937 rng(0x5EED0005);
  std::uniform_int_distribution<size_t> pick(0, corpus.size() - 1);
  std::uniform_int_distribution<int> depth_dist(1, 4);
  size_t accepted = 0;
  for (int i = 0; i < kMutationsPerType; ++i) {
    std::string mutated = corpus[pick(rng)];
    int depth = depth_dist(rng);
    for (int d = 0; d < depth; ++d) {
      mutated = Mutate(std::move(mutated), rng);
    }
    auto decoded = RpcBatchRequest::Deserialize(mutated);
    if (!decoded.ok()) {
      continue;
    }
    ++accepted;
    auto redecoded = RpcBatchRequest::Deserialize(decoded->Serialize());
    ASSERT_TRUE(redecoded.ok()) << "iteration " << i;
    EXPECT_TRUE(BatchRequestsEqual(*decoded, *redecoded)) << "iteration " << i;
  }
  EXPECT_GT(accepted, 0u);
}

TEST(WireFuzzTest, RpcBatchResponseSurvivesSeededMutationStorm) {
  auto corpus = BatchResponseCorpus();
  std::mt19937 rng(0x5EED0006);
  std::uniform_int_distribution<size_t> pick(0, corpus.size() - 1);
  std::uniform_int_distribution<int> depth_dist(1, 4);
  size_t accepted = 0;
  for (int i = 0; i < kMutationsPerType; ++i) {
    std::string mutated = corpus[pick(rng)];
    int depth = depth_dist(rng);
    for (int d = 0; d < depth; ++d) {
      mutated = Mutate(std::move(mutated), rng);
    }
    auto decoded = RpcBatchResponse::Deserialize(mutated);
    if (!decoded.ok()) {
      continue;
    }
    ++accepted;
    auto redecoded = RpcBatchResponse::Deserialize(decoded->Serialize());
    ASSERT_TRUE(redecoded.ok()) << "iteration " << i;
    EXPECT_TRUE(BatchResponsesEqual(*decoded, *redecoded)) << "iteration " << i;
  }
  EXPECT_GT(accepted, 0u);
}

TEST(WireFuzzTest, PureGarbageBuffersNeverCrashAnyDecoder) {
  std::mt19937 rng(0x5EED0003);
  std::uniform_int_distribution<size_t> len_dist(0, 96);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < kMutationsPerType; ++i) {
    std::string garbage;
    size_t len = len_dist(rng);
    garbage.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      garbage += static_cast<char>(byte_dist(rng));
    }
    (void)RpcRequest::Deserialize(garbage);
    (void)RpcResponse::Deserialize(garbage);
    (void)RpcBatchRequest::Deserialize(garbage);
    (void)RpcBatchResponse::Deserialize(garbage);
  }
}

// --- v2 frame-header hostility ----------------------------------------------

TEST(WireHardeningTest, TruncatedBatchSubRequestCountIsRejected) {
  // A batch claiming 1000 sub-requests backed by zero body bytes: the count
  // must be capped against Remaining() before any reserve.
  RpcBatchRequest batch;
  batch.ticket_id = "T-1";
  std::string frame = batch.Serialize();
  // Stomp the trailing count field (last 4 bytes of an empty-ops frame).
  std::string stomped = frame.substr(0, frame.size() - 4) + PackU32(1000);
  EXPECT_FALSE(RpcBatchRequest::Deserialize(stomped).ok());

  RpcBatchResponse responses;
  std::string resp_frame = responses.Serialize();
  std::string resp_stomped = resp_frame.substr(0, resp_frame.size() - 4) + PackU32(0xffffffu);
  EXPECT_FALSE(RpcBatchResponse::Deserialize(resp_stomped).ok());
}

TEST(WireHardeningTest, VersionSkewIsRejectedNotMisparsed) {
  // Magic says "this is a WIT2 frame", version says 3: neither the v2 parser
  // nor the headerless-v1 fallback may touch it.
  RpcBatchRequest batch;
  batch.ops = {{"ps", {}}};
  std::string frame = batch.Serialize();
  std::string skewed = frame;
  skewed[4] = 3;  // version field little-endian low byte
  auto decoded = RpcBatchRequest::Deserialize(skewed);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error(), witos::Err::kInval);

  RpcRequest req;
  req.method = "ps";
  std::string req_frame = req.Serialize();
  std::string req_skewed = req_frame;
  req_skewed[4] = 9;
  EXPECT_FALSE(RpcRequest::Deserialize(req_skewed).ok());
}

TEST(WireHardeningTest, FrameKindConfusionIsRejected) {
  // A well-formed batch-request frame handed to the batch-response decoder
  // (and vice versa) must be rejected at the header, not misparsed.
  RpcBatchRequest batch;
  batch.ops = {{"ps", {}}};
  EXPECT_FALSE(RpcBatchResponse::Deserialize(batch.Serialize()).ok());
  RpcBatchResponse responses;
  responses.responses.push_back({});
  EXPECT_FALSE(RpcBatchRequest::Deserialize(responses.Serialize()).ok());
}

TEST(WireFuzzTest, V1AndV2FramesCoexistOnOneStream) {
  // A peer may speak headerless v1 and headered v2 interleaved; each frame
  // is self-describing via the magic, so both must decode, including a
  // hostile v1 frame whose body *starts* with bytes resembling the magic.
  std::mt19937 rng(0x5EED0007);
  for (int i = 0; i < 500; ++i) {
    // v1 request frame: body only, no header.
    WireWriter v1;
    v1.PutString("ps");
    v1.PutStringList({"-a"});
    v1.PutU32(static_cast<uint32_t>(rng() % 1000));
    v1.PutU32(static_cast<uint32_t>(rng() % 1000));
    v1.PutString("T-7");
    v1.PutString("alice@corp");
    auto v1_decoded = RpcRequest::Deserialize(v1.data());
    ASSERT_TRUE(v1_decoded.ok()) << "iteration " << i;
    EXPECT_EQ(v1_decoded->method, "ps");

    // v2 request frame through the same entry point.
    RpcRequest v2;
    v2.method = "read_file";
    v2.args = {"/etc/passwd"};
    v2.uid = static_cast<witos::Uid>(rng() % 1000);
    v2.ticket_id = "T-8";
    auto v2_decoded = RpcRequest::Deserialize(v2.Serialize());
    ASSERT_TRUE(v2_decoded.ok()) << "iteration " << i;
    EXPECT_TRUE(RequestsEqual(v2, *v2_decoded)) << "iteration " << i;
  }
  // The magic-collision case: a v1 frame would need a ~840 MB method to
  // alias the magic, which the length cap rejects — so a frame that *does*
  // lead with the magic but carries v1 field order is rejected, not
  // misattributed.
  WireWriter hostile;
  hostile.PutU32(kRpcMagic);
  hostile.PutU32(kRpcVersion);
  EXPECT_FALSE(RpcRequest::Deserialize(hostile.data()).ok());
}

TEST(WireFuzzTest, ValidMessagesAlwaysRoundTrip) {
  // Structured generator: random but well-formed messages must decode to
  // exactly themselves (the fuzz loops above check the converse direction).
  std::mt19937 rng(0x5EED0004);
  std::uniform_int_distribution<int> byte_dist(32, 126);
  std::uniform_int_distribution<size_t> len_dist(0, 40);
  std::uniform_int_distribution<size_t> list_dist(0, 8);
  auto rand_string = [&]() {
    std::string s;
    size_t len = len_dist(rng);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>(byte_dist(rng));
    }
    return s;
  };
  for (int i = 0; i < 2000; ++i) {
    RpcRequest req;
    req.method = rand_string();
    size_t nargs = list_dist(rng);
    for (size_t a = 0; a < nargs; ++a) {
      req.args.push_back(rand_string());
    }
    req.uid = static_cast<witos::Uid>(rng());
    req.caller_pid = static_cast<witos::Pid>(rng() % 100000);
    req.ticket_id = rand_string();
    req.admin = rand_string();
    auto decoded = RpcRequest::Deserialize(req.Serialize());
    ASSERT_TRUE(decoded.ok()) << "iteration " << i;
    EXPECT_TRUE(RequestsEqual(req, *decoded)) << "iteration " << i;

    RpcResponse resp;
    resp.ok = rng() % 2 == 0;
    resp.err = static_cast<witos::Err>(rng() % static_cast<uint32_t>(witos::kErrCodeCount));
    resp.payload = rand_string();
    auto decoded_resp = RpcResponse::Deserialize(resp.Serialize());
    ASSERT_TRUE(decoded_resp.ok()) << "iteration " << i;
    EXPECT_TRUE(ResponsesEqual(resp, *decoded_resp)) << "iteration " << i;

    RpcBatchRequest batch;
    batch.uid = static_cast<witos::Uid>(rng());
    batch.caller_pid = static_cast<witos::Pid>(rng() % 100000);
    batch.ticket_id = rand_string();
    batch.admin = rand_string();
    size_t nops = list_dist(rng);
    for (size_t o = 0; o < nops; ++o) {
      RpcSubRequest op;
      op.method = rand_string();
      size_t nop_args = list_dist(rng);
      for (size_t a = 0; a < nop_args; ++a) {
        op.args.push_back(rand_string());
      }
      batch.ops.push_back(std::move(op));
    }
    auto decoded_batch = RpcBatchRequest::Deserialize(batch.Serialize());
    ASSERT_TRUE(decoded_batch.ok()) << "iteration " << i;
    EXPECT_TRUE(BatchRequestsEqual(batch, *decoded_batch)) << "iteration " << i;
  }
}

}  // namespace
}  // namespace witbroker
