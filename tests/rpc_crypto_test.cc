// Transport encryption on the broker channel (paper §5.4's SSL note).

#include <gtest/gtest.h>

#include "src/broker/rpc.h"

namespace witbroker {
namespace {

RpcChannel::Handler EchoHandler() {
  return [](const RpcRequest& request) {
    RpcResponse resp;
    resp.ok = true;
    resp.payload = "echo:" + request.method;
    return resp;
  };
}

TEST(RpcCryptoTest, EncryptedCallRoundTrips) {
  RpcChannel channel;
  channel.Bind(EchoHandler());
  channel.EnableEncryption(0x5ec23e7);
  EXPECT_TRUE(channel.encrypted());
  RpcRequest request;
  request.method = "ps";
  request.admin = "alice";
  auto response = channel.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->payload, "echo:ps");
}

TEST(RpcCryptoTest, CiphertextDiffersFromPlaintextLength) {
  RpcChannel plain;
  plain.Bind(EchoHandler());
  RpcChannel encrypted;
  encrypted.Bind(EchoHandler());
  encrypted.EnableEncryption(42);
  RpcRequest request;
  request.method = "kill";
  request.args = {"7"};
  ASSERT_TRUE(plain.Call(request).ok());
  ASSERT_TRUE(encrypted.Call(request).ok());
  // Nonce + MAC add 16 bytes per frame (two frames per call).
  EXPECT_EQ(encrypted.bytes_on_wire(), plain.bytes_on_wire() + 32);
}

TEST(RpcCryptoTest, TamperedFrameRejected) {
  RpcChannel channel;
  bool handler_ran = false;
  channel.Bind([&handler_ran](const RpcRequest&) {
    handler_ran = true;
    RpcResponse resp;
    resp.ok = true;
    return resp;
  });
  channel.EnableEncryption(99);
  channel.CorruptNextFrameForTest();
  RpcRequest request;
  request.method = "ps";
  auto response = channel.Call(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.error(), witos::Err::kIo);
  // The MITM-corrupted request never reached the broker.
  EXPECT_FALSE(handler_ran);
}

TEST(RpcCryptoTest, UnencryptedCorruptionBreaksFraming) {
  // Without encryption, a flipped byte may corrupt fields silently or break
  // framing — the MAC is what turns tampering into a hard failure.
  RpcChannel channel;
  channel.Bind(EchoHandler());
  channel.CorruptNextFrameForTest();
  RpcRequest request;
  request.method = "ps";
  request.ticket_id = "TKT-123456";
  (void)channel.Call(request);  // may succeed with garbled fields — no MAC
  SUCCEED();
}

TEST(RpcCryptoTest, FramesUseFreshNonces) {
  RpcChannel channel;
  std::vector<std::string> seen_methods;
  channel.Bind([&seen_methods](const RpcRequest& request) {
    seen_methods.push_back(request.method);
    RpcResponse resp;
    resp.ok = true;
    return resp;
  });
  channel.EnableEncryption(7);
  RpcRequest request;
  request.method = "ps";
  // Two identical requests: both must decrypt correctly despite distinct
  // keystreams (no keystream reuse).
  ASSERT_TRUE(channel.Call(request).ok());
  ASSERT_TRUE(channel.Call(request).ok());
  EXPECT_EQ(seen_methods, (std::vector<std::string>{"ps", "ps"}));
}

}  // namespace
}  // namespace witbroker
