// Transport encryption on the broker channel (paper §5.4's SSL note).

#include <gtest/gtest.h>

#include "src/broker/rpc.h"

namespace witbroker {
namespace {

RpcChannel::Handler EchoHandler() {
  return [](const RpcRequest& request) {
    RpcResponse resp;
    resp.ok = true;
    resp.payload = "echo:" + request.method;
    return resp;
  };
}

TEST(RpcCryptoTest, EncryptedCallRoundTrips) {
  RpcChannel channel;
  channel.Bind(EchoHandler());
  channel.EnableEncryption(0x5ec23e7);
  EXPECT_TRUE(channel.encrypted());
  RpcRequest request;
  request.method = "ps";
  request.admin = "alice";
  auto response = channel.Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->payload, "echo:ps");
}

TEST(RpcCryptoTest, CiphertextDiffersFromPlaintextLength) {
  RpcChannel plain;
  plain.Bind(EchoHandler());
  RpcChannel encrypted;
  encrypted.Bind(EchoHandler());
  encrypted.EnableEncryption(42);
  RpcRequest request;
  request.method = "kill";
  request.args = {"7"};
  ASSERT_TRUE(plain.Call(request).ok());
  ASSERT_TRUE(encrypted.Call(request).ok());
  // Nonce + MAC add 16 bytes per frame (two frames per call).
  EXPECT_EQ(encrypted.bytes_on_wire(), plain.bytes_on_wire() + 32);
}

TEST(RpcCryptoTest, TamperedFrameRejected) {
  RpcChannel channel;
  bool handler_ran = false;
  channel.Bind([&handler_ran](const RpcRequest&) {
    handler_ran = true;
    RpcResponse resp;
    resp.ok = true;
    return resp;
  });
  channel.EnableEncryption(99);
  channel.CorruptNextFrameForTest();
  RpcRequest request;
  request.method = "ps";
  auto response = channel.Call(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.error(), witos::Err::kIo);
  // The MITM-corrupted request never reached the broker.
  EXPECT_FALSE(handler_ran);
}

TEST(RpcCryptoTest, UnencryptedCorruptionBreaksFraming) {
  // Without encryption, a flipped byte may corrupt fields silently or break
  // framing — the MAC is what turns tampering into a hard failure.
  RpcChannel channel;
  channel.Bind(EchoHandler());
  channel.CorruptNextFrameForTest();
  RpcRequest request;
  request.method = "ps";
  request.ticket_id = "TKT-123456";
  (void)channel.Call(request);  // may succeed with garbled fields — no MAC
  SUCCEED();
}

TEST(RpcCryptoTest, CorruptedBatchFrameFailsAtomically) {
  // Regression: a corrupted batch frame must fail the WHOLE batch — the
  // handler never runs and the caller sees an error Result, never a partial
  // sub-response vector.
  RpcChannel channel;
  size_t handled_ops = 0;
  channel.BindBatch([&handled_ops](const RpcBatchRequest& batch) {
    handled_ops += batch.ops.size();
    RpcBatchResponse out;
    out.responses.resize(batch.ops.size());
    return out;
  });
  channel.EnableEncryption(99);
  channel.CorruptNextFrameForTest();
  RpcBatchRequest batch;
  batch.uid = witos::kRootUid;
  batch.ticket_id = "TKT-1";
  batch.ops = {{"ps", {}}, {"kill", {"7"}}, {"reboot", {}}};
  auto response = channel.CallBatch(batch);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error(), witos::Err::kIo);
  // Zero of the three sub-ops executed: no partial state on the broker.
  EXPECT_EQ(handled_ops, 0u);

  // The channel itself stays usable; the next batch goes through whole.
  auto retry = channel.CallBatch(batch);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->responses.size(), 3u);
  EXPECT_EQ(handled_ops, 3u);
}

TEST(RpcCryptoTest, CorruptedBatchResponseLegAlsoFailsWhole) {
  // Corruption on the response leg: the ops DID execute on the broker, but
  // the client still must not see a partial or garbled sub-response vector
  // — the whole batch reports one transport error.
  RpcChannel channel;
  size_t handled_ops = 0;
  channel.BindBatch([&handled_ops](const RpcBatchRequest& batch) {
    handled_ops += batch.ops.size();
    RpcBatchResponse out;
    out.responses.resize(batch.ops.size());
    for (auto& resp : out.responses) {
      resp.ok = true;
    }
    return out;
  });
  channel.EnableEncryption(7);
  // Skip the clean request frame; flip a byte of the response frame.
  channel.CorruptNextFrameForTest(/*skip_frames=*/1);
  RpcBatchRequest batch;
  batch.uid = witos::kRootUid;
  batch.ops = {{"ps", {}}, {"kill", {"7"}}};
  auto response = channel.CallBatch(batch);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error(), witos::Err::kIo);
  // The broker side did run — corruption happened on the way back.
  EXPECT_EQ(handled_ops, 2u);
}

TEST(RpcCryptoTest, OneSealPerBatchAmortizesCrypto) {
  // N ops in a batch pay ONE nonce+MAC per direction; N singleton calls pay
  // N of each. 16 bytes overhead per frame, 2 frames per call.
  RpcChannel batched;
  batched.BindBatch([](const RpcBatchRequest& batch) {
    RpcBatchResponse out;
    out.responses.resize(batch.ops.size());
    return out;
  });
  batched.EnableEncryption(1);
  RpcChannel plain_batched;
  plain_batched.BindBatch([](const RpcBatchRequest& batch) {
    RpcBatchResponse out;
    out.responses.resize(batch.ops.size());
    return out;
  });
  RpcBatchRequest batch;
  batch.uid = witos::kRootUid;
  batch.ops = {{"ps", {}}, {"kill", {"7"}}, {"read_file", {"/etc/motd"}}, {"reboot", {}}};
  ASSERT_TRUE(batched.CallBatch(batch).ok());
  ASSERT_TRUE(plain_batched.CallBatch(batch).ok());
  // +32 bytes total for the whole 4-op batch, not +32 per op.
  EXPECT_EQ(batched.bytes_on_wire(), plain_batched.bytes_on_wire() + 32);
  EXPECT_EQ(batched.frames(), 2u);
}

TEST(RpcCryptoTest, FramesUseFreshNonces) {
  RpcChannel channel;
  std::vector<std::string> seen_methods;
  channel.Bind([&seen_methods](const RpcRequest& request) {
    seen_methods.push_back(request.method);
    RpcResponse resp;
    resp.ok = true;
    return resp;
  });
  channel.EnableEncryption(7);
  RpcRequest request;
  request.method = "ps";
  // Two identical requests: both must decrypt correctly despite distinct
  // keystreams (no keystream reuse).
  ASSERT_TRUE(channel.Call(request).ok());
  ASSERT_TRUE(channel.Call(request).ok());
  EXPECT_EQ(seen_methods, (std::vector<std::string>{"ps", "ps"}));
}

}  // namespace
}  // namespace witbroker
