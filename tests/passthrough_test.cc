// Pass-through read/write (paper §7.3): data ops bypass the ITFS daemon
// after an approved open — faster, same policy enforcement at open time.

#include <gtest/gtest.h>

#include "src/container/containit.h"
#include "src/fs/fuse.h"
#include "src/fs/itfs.h"
#include "src/os/memfs.h"

namespace witfs {
namespace {

witos::Credentials Root() { return witos::Credentials{}; }

class PassthroughTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lower_ = std::make_shared<witos::MemFs>("ext4", &clock_);
    lower_->ProvisionFile("/data/notes.txt", "hello passthrough");
    lower_->ProvisionFile("/data/secret.pdf", "%PDF-1.4 classified");
    ItfsPolicy policy;
    policy.AddRule(ItfsPolicy::DenyDocumentsRule());
    itfs_ = std::make_shared<Itfs>(lower_, std::move(policy), Root(), &clock_);
    fuse_ = std::make_shared<FuseMount>(itfs_, &clock_);
    fuse_->EnablePassthrough(lower_);
  }

  witos::SimClock clock_;
  std::shared_ptr<witos::MemFs> lower_;
  std::shared_ptr<Itfs> itfs_;
  std::shared_ptr<FuseMount> fuse_;
};

TEST_F(PassthroughTest, ApprovedOpenEnablesDirectData) {
  ASSERT_TRUE(fuse_->Open("/data/notes.txt", witos::kOpenRead, 0, Root()).ok());
  uint64_t crossings_before = fuse_->crossings();
  std::string buf;
  ASSERT_TRUE(fuse_->ReadAt("/data/notes.txt", 0, 64, &buf, Root()).ok());
  EXPECT_EQ(buf, "hello passthrough");
  // No userspace round trip for the data op.
  EXPECT_EQ(fuse_->crossings(), crossings_before);
  EXPECT_EQ(fuse_->passthrough_ops(), 1u);
}

TEST_F(PassthroughTest, PolicyStillEnforcedAtOpen) {
  EXPECT_EQ(fuse_->Open("/data/secret.pdf", witos::kOpenRead, 0, Root()).error(),
            witos::Err::kAcces);
  // The denied file never becomes passthrough-eligible: a direct data read
  // still takes the monitored path (and is what the kernel would do only
  // after a successful open anyway).
  std::string buf;
  uint64_t crossings_before = fuse_->crossings();
  (void)fuse_->ReadAt("/data/secret.pdf", 0, 16, &buf, Root());
  EXPECT_GT(fuse_->crossings(), crossings_before);
}

TEST_F(PassthroughTest, UnlinkRevokesApproval) {
  ASSERT_TRUE(fuse_->Open("/data/notes.txt", witos::kOpenRead, 0, Root()).ok());
  ASSERT_TRUE(fuse_->Unlink("/data/notes.txt", Root()).ok());
  lower_->ProvisionFile("/data/notes.txt", "recreated");
  std::string buf;
  uint64_t crossings_before = fuse_->crossings();
  ASSERT_TRUE(fuse_->ReadAt("/data/notes.txt", 0, 16, &buf, Root()).ok());
  EXPECT_GT(fuse_->crossings(), crossings_before);  // back through the daemon
}

TEST_F(PassthroughTest, DataOpsCheaperThanDaemonPath) {
  ASSERT_TRUE(fuse_->Open("/data/notes.txt", witos::kOpenRead, 0, Root()).ok());
  std::string buf;
  uint64_t t0 = clock_.now_ns();
  ASSERT_TRUE(fuse_->ReadAt("/data/notes.txt", 0, 16, &buf, Root()).ok());
  uint64_t passthrough_cost = clock_.now_ns() - t0;

  // The same read through a non-passthrough mount.
  FuseMount plain(itfs_, &clock_);
  uint64_t t1 = clock_.now_ns();
  ASSERT_TRUE(plain.ReadAt("/data/notes.txt", 0, 16, &buf, Root()).ok());
  uint64_t daemon_cost = clock_.now_ns() - t1;
  EXPECT_LT(passthrough_cost + clock_.costs().fuse_crossing_ns, daemon_cost + 1);
}

TEST(PassthroughContainerTest, WholeRootPassthroughContainer) {
  witos::Kernel kernel("host");
  kernel.root_fs().ProvisionFile("/home/user/notes.txt", "data");
  kernel.root_fs().ProvisionFile("/home/user/doc.pdf", "%PDF-1.4 secret");
  witcontain::ContainIt containit(&kernel, nullptr);
  witcontain::PerforatedContainerSpec spec;
  spec.name = "pt";
  spec.fs.kind = witcontain::FsView::Kind::kWholeRoot;
  spec.fs.policy.AddRule(witfs::ItfsPolicy::DenyDocumentsRule());
  spec.fs.passthrough = true;
  auto id = containit.Deploy(spec, "TKT", "alice");
  ASSERT_TRUE(id.ok());
  witos::Pid shell = containit.FindSession(*id)->shell;
  // Reads work and the document filter still bites.
  EXPECT_EQ(*kernel.ReadFile(shell, "/home/user/notes.txt"), "data");
  EXPECT_EQ(kernel.ReadFile(shell, "/home/user/doc.pdf").error(), witos::Err::kAcces);
}

}  // namespace
}  // namespace witfs
