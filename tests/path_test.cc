#include "src/os/path.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace witos {
namespace {

TEST(PathTest, SplitDropsDotAndEmpty) {
  EXPECT_EQ(SplitPath("/a//b/./c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_TRUE(SplitPath("").empty());
  EXPECT_EQ(SplitPath("a/b"), (std::vector<std::string>{"a", "b"}));
}

TEST(PathTest, SplitKeepsDotDot) {
  EXPECT_EQ(SplitPath("/a/../b"), (std::vector<std::string>{"a", "..", "b"}));
}

TEST(PathTest, NormalizeBasics) {
  EXPECT_EQ(NormalizePath("/"), "/");
  EXPECT_EQ(NormalizePath(""), "/");
  EXPECT_EQ(NormalizePath("/a/b/"), "/a/b");
  EXPECT_EQ(NormalizePath("//a///b"), "/a/b");
  EXPECT_EQ(NormalizePath("/a/./b"), "/a/b");
}

TEST(PathTest, NormalizeClampsDotDotAtRoot) {
  EXPECT_EQ(NormalizePath("/.."), "/");
  EXPECT_EQ(NormalizePath("/../../etc"), "/etc");
  EXPECT_EQ(NormalizePath("/a/../../b"), "/b");
  EXPECT_EQ(NormalizePath("/a/b/../c"), "/a/c");
}

TEST(PathTest, ResolveRelativeAgainstCwd) {
  EXPECT_EQ(ResolvePath("/home/user", "docs"), "/home/user/docs");
  EXPECT_EQ(ResolvePath("/home/user", "../other"), "/home/other");
  EXPECT_EQ(ResolvePath("/home/user", "/abs"), "/abs");
}

TEST(PathTest, JoinHandlesSlashes) {
  EXPECT_EQ(JoinPath("/a", "b"), "/a/b");
  EXPECT_EQ(JoinPath("/a/", "/b"), "/a/b");
  EXPECT_EQ(JoinPath("/a/", "b"), "/a/b");
  EXPECT_EQ(JoinPath("/a", "/b"), "/a/b");
  EXPECT_EQ(JoinPath("", "b"), "b");
  EXPECT_EQ(JoinPath("/a", ""), "/a");
}

TEST(PathTest, PathIsUnder) {
  EXPECT_TRUE(PathIsUnder("/a/b", "/a"));
  EXPECT_TRUE(PathIsUnder("/a", "/a"));
  EXPECT_TRUE(PathIsUnder("/anything", "/"));
  EXPECT_FALSE(PathIsUnder("/ab", "/a"));  // no partial-component match
  EXPECT_FALSE(PathIsUnder("/a", "/a/b"));
}

TEST(PathTest, RebasePath) {
  EXPECT_EQ(RebasePath("/ConFS/etc/passwd", "/ConFS", "/"), "/etc/passwd");
  EXPECT_EQ(RebasePath("/etc/passwd", "/", "/jail"), "/jail/etc/passwd");
  EXPECT_EQ(RebasePath("/ConFS", "/ConFS", "/"), "/");
  EXPECT_EQ(RebasePath("/a/x", "/a", "/b/c"), "/b/c/x");
}

TEST(PathTest, RebasePathRejectsPathNotUnderOldPrefix) {
  // Pre-fix these silently grafted unrelated components onto new_prefix
  // ("/abc" from "/a" became "/jail/c"); the contract is now an empty result.
  EXPECT_EQ(RebasePath("/abc", "/a", "/jail"), "");           // partial-component
  EXPECT_EQ(RebasePath("/b/x", "/a", "/jail"), "");           // disjoint subtree
  EXPECT_EQ(RebasePath("/ab", "/cd", "/jail"), "");           // equal length, different
  EXPECT_EQ(RebasePath("/a", "/a/b", "/jail"), "");           // path above the prefix
  EXPECT_EQ(RebasePath("relative", "/a", "/jail"), "");       // not absolute
  EXPECT_EQ(RebasePath("", "/", "/jail"), "");                // empty path
}

TEST(PathTest, RebasePathRootPrefixCases) {
  EXPECT_EQ(RebasePath("/x", "/", "/jail"), "/jail/x");
  EXPECT_EQ(RebasePath("/", "/", "/jail"), "/jail");
  EXPECT_EQ(RebasePath("/", "/", "/"), "/");
  EXPECT_EQ(RebasePath("/jail/x", "/jail", "/"), "/x");
}

TEST(PathTest, BasenameDirname) {
  EXPECT_EQ(Basename("/a/b/c"), "c");
  EXPECT_EQ(Basename("/"), "/");
  EXPECT_EQ(Dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(Dirname("/a"), "/");
  EXPECT_EQ(Dirname("/"), "/");
}

TEST(PathTest, ExtensionLowercasesAndHandlesEdgeCases) {
  EXPECT_EQ(Extension("/x/report.PDF"), "pdf");
  EXPECT_EQ(Extension("/x/archive.tar.gz"), "gz");
  EXPECT_EQ(Extension("/x/noext"), "");
  EXPECT_EQ(Extension("/x/.hidden"), "");
  EXPECT_EQ(Extension("/x/trailing."), "");
}

// Property sweep: normalization is idempotent and always yields an absolute
// path without dot components.
class NormalizeProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(NormalizeProperty, IdempotentAbsoluteClean) {
  std::string norm = NormalizePath(GetParam());
  EXPECT_TRUE(IsAbsolutePath(norm));
  EXPECT_EQ(NormalizePath(norm), norm);
  for (const auto& comp : SplitPath(norm)) {
    EXPECT_NE(comp, ".");
    EXPECT_NE(comp, "..");
  }
  if (norm != "/") {
    EXPECT_NE(norm.back(), '/');
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, NormalizeProperty,
                         ::testing::Values("/", "", "a/b/c", "/a/../../../b", "/./././x",
                                           "////", "/a/b/c/../../../..", "x/../y/../z",
                                           "/etc//passwd/", "../..", "/a/./b/./c/./"));

// --- Seeded randomized property sweeps (witfault tentpole, part c) ----------

// Random raw path expressions over a hostile alphabet: empty components,
// ".", "..", doubled slashes, trailing slashes.
std::string RandomRawPath(std::mt19937& rng) {
  static const std::vector<std::string> kAtoms = {"a",  "b",   "etc", "user1", ".",
                                                  "..", "x.y", "..",  "jail"};
  std::uniform_int_distribution<int> len_dist(0, 8);
  std::uniform_int_distribution<size_t> atom_dist(0, kAtoms.size() - 1);
  std::uniform_int_distribution<int> coin(0, 3);
  std::string path = coin(rng) == 0 ? "" : "/";
  int len = len_dist(rng);
  for (int i = 0; i < len; ++i) {
    path += kAtoms[atom_dist(rng)];
    path += coin(rng) == 0 ? "//" : "/";
  }
  if (coin(rng) != 0 && !path.empty() && path.back() == '/') {
    path.pop_back();
  }
  return path;
}

// A random already-normalized absolute path with components from a small pool
// (small so that prefix relationships actually occur).
std::string RandomNormalizedPath(std::mt19937& rng) {
  static const std::vector<std::string> kComps = {"a", "b", "c", "d"};
  std::uniform_int_distribution<int> len_dist(0, 4);
  std::uniform_int_distribution<size_t> comp_dist(0, kComps.size() - 1);
  std::string path;
  int len = len_dist(rng);
  for (int i = 0; i < len; ++i) {
    path += "/" + kComps[comp_dist(rng)];
  }
  return path.empty() ? "/" : path;
}

TEST(PathPropertySweep, NormalizeIsIdempotentAbsoluteAndClean) {
  std::mt19937 rng(0xA11CE);
  for (int i = 0; i < 4000; ++i) {
    std::string raw = RandomRawPath(rng);
    std::string norm = NormalizePath(raw);
    ASSERT_TRUE(IsAbsolutePath(norm)) << raw;
    ASSERT_EQ(NormalizePath(norm), norm) << raw;
    for (const auto& comp : SplitPath(norm)) {
      ASSERT_NE(comp, ".") << raw;
      ASSERT_NE(comp, "..") << raw;
    }
    if (norm != "/") {
      ASSERT_NE(norm.back(), '/') << raw;
    }
  }
}

TEST(PathPropertySweep, PathIsUnderAndRebaseAgree) {
  std::mt19937 rng(0xBEEF);
  for (int i = 0; i < 4000; ++i) {
    std::string path = RandomNormalizedPath(rng);
    std::string old_prefix = RandomNormalizedPath(rng);
    std::string new_prefix = RandomNormalizedPath(rng);
    std::string rebased = RebasePath(path, old_prefix, new_prefix);
    if (!PathIsUnder(path, old_prefix)) {
      // The guard contract: no usable path comes back from a mis-rebase.
      ASSERT_EQ(rebased, "") << path << " from " << old_prefix;
      continue;
    }
    // A legitimate rebase lands under the new prefix, stays normalized, and
    // rebasing back is the identity.
    ASSERT_TRUE(PathIsUnder(rebased, new_prefix))
        << path << " from " << old_prefix << " to " << new_prefix << " -> " << rebased;
    ASSERT_EQ(NormalizePath(rebased), rebased) << rebased;
    ASSERT_EQ(RebasePath(rebased, new_prefix, old_prefix), path)
        << path << " via " << rebased;
  }
}

TEST(PathPropertySweep, ResolveNeverEscapesRoot) {
  std::mt19937 rng(0xD00F);
  for (int i = 0; i < 4000; ++i) {
    std::string cwd = RandomNormalizedPath(rng);
    std::string raw = RandomRawPath(rng);
    std::string resolved = ResolvePath(cwd, raw);
    ASSERT_TRUE(IsAbsolutePath(resolved)) << cwd << " + " << raw;
    ASSERT_EQ(NormalizePath(resolved), resolved) << cwd << " + " << raw;
    for (const auto& comp : SplitPath(resolved)) {
      ASSERT_NE(comp, "..") << cwd << " + " << raw;  // ".." clamps at "/"
    }
  }
}

}  // namespace
}  // namespace witos
