#include "src/os/path.h"

#include <gtest/gtest.h>

namespace witos {
namespace {

TEST(PathTest, SplitDropsDotAndEmpty) {
  EXPECT_EQ(SplitPath("/a//b/./c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_TRUE(SplitPath("").empty());
  EXPECT_EQ(SplitPath("a/b"), (std::vector<std::string>{"a", "b"}));
}

TEST(PathTest, SplitKeepsDotDot) {
  EXPECT_EQ(SplitPath("/a/../b"), (std::vector<std::string>{"a", "..", "b"}));
}

TEST(PathTest, NormalizeBasics) {
  EXPECT_EQ(NormalizePath("/"), "/");
  EXPECT_EQ(NormalizePath(""), "/");
  EXPECT_EQ(NormalizePath("/a/b/"), "/a/b");
  EXPECT_EQ(NormalizePath("//a///b"), "/a/b");
  EXPECT_EQ(NormalizePath("/a/./b"), "/a/b");
}

TEST(PathTest, NormalizeClampsDotDotAtRoot) {
  EXPECT_EQ(NormalizePath("/.."), "/");
  EXPECT_EQ(NormalizePath("/../../etc"), "/etc");
  EXPECT_EQ(NormalizePath("/a/../../b"), "/b");
  EXPECT_EQ(NormalizePath("/a/b/../c"), "/a/c");
}

TEST(PathTest, ResolveRelativeAgainstCwd) {
  EXPECT_EQ(ResolvePath("/home/user", "docs"), "/home/user/docs");
  EXPECT_EQ(ResolvePath("/home/user", "../other"), "/home/other");
  EXPECT_EQ(ResolvePath("/home/user", "/abs"), "/abs");
}

TEST(PathTest, JoinHandlesSlashes) {
  EXPECT_EQ(JoinPath("/a", "b"), "/a/b");
  EXPECT_EQ(JoinPath("/a/", "/b"), "/a/b");
  EXPECT_EQ(JoinPath("/a/", "b"), "/a/b");
  EXPECT_EQ(JoinPath("/a", "/b"), "/a/b");
  EXPECT_EQ(JoinPath("", "b"), "b");
  EXPECT_EQ(JoinPath("/a", ""), "/a");
}

TEST(PathTest, PathIsUnder) {
  EXPECT_TRUE(PathIsUnder("/a/b", "/a"));
  EXPECT_TRUE(PathIsUnder("/a", "/a"));
  EXPECT_TRUE(PathIsUnder("/anything", "/"));
  EXPECT_FALSE(PathIsUnder("/ab", "/a"));  // no partial-component match
  EXPECT_FALSE(PathIsUnder("/a", "/a/b"));
}

TEST(PathTest, RebasePath) {
  EXPECT_EQ(RebasePath("/ConFS/etc/passwd", "/ConFS", "/"), "/etc/passwd");
  EXPECT_EQ(RebasePath("/etc/passwd", "/", "/jail"), "/jail/etc/passwd");
  EXPECT_EQ(RebasePath("/ConFS", "/ConFS", "/"), "/");
  EXPECT_EQ(RebasePath("/a/x", "/a", "/b/c"), "/b/c/x");
}

TEST(PathTest, BasenameDirname) {
  EXPECT_EQ(Basename("/a/b/c"), "c");
  EXPECT_EQ(Basename("/"), "/");
  EXPECT_EQ(Dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(Dirname("/a"), "/");
  EXPECT_EQ(Dirname("/"), "/");
}

TEST(PathTest, ExtensionLowercasesAndHandlesEdgeCases) {
  EXPECT_EQ(Extension("/x/report.PDF"), "pdf");
  EXPECT_EQ(Extension("/x/archive.tar.gz"), "gz");
  EXPECT_EQ(Extension("/x/noext"), "");
  EXPECT_EQ(Extension("/x/.hidden"), "");
  EXPECT_EQ(Extension("/x/trailing."), "");
}

// Property sweep: normalization is idempotent and always yields an absolute
// path without dot components.
class NormalizeProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(NormalizeProperty, IdempotentAbsoluteClean) {
  std::string norm = NormalizePath(GetParam());
  EXPECT_TRUE(IsAbsolutePath(norm));
  EXPECT_EQ(NormalizePath(norm), norm);
  for (const auto& comp : SplitPath(norm)) {
    EXPECT_NE(comp, ".");
    EXPECT_NE(comp, "..");
  }
  if (norm != "/") {
    EXPECT_NE(norm.back(), '/');
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, NormalizeProperty,
                         ::testing::Values("/", "", "a/b/c", "/a/../../../b", "/./././x",
                                           "////", "/a/b/c/../../../..", "x/../y/../z",
                                           "/etc//passwd/", "../..", "/a/./b/./c/./"));

}  // namespace
}  // namespace witos
