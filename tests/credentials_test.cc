#include "src/os/credentials.h"

#include <gtest/gtest.h>

namespace witos {
namespace {

TEST(CapabilitySetTest, AddRemoveHas) {
  CapabilitySet set;
  EXPECT_TRUE(set.empty());
  set.Add(Capability::kSysChroot);
  EXPECT_TRUE(set.Has(Capability::kSysChroot));
  EXPECT_FALSE(set.Has(Capability::kSysPtrace));
  set.Remove(Capability::kSysChroot);
  EXPECT_FALSE(set.Has(Capability::kSysChroot));
}

TEST(CapabilitySetTest, FullContainsEverything) {
  CapabilitySet full = CapabilitySet::Full();
  for (uint32_t i = 0; i < static_cast<uint32_t>(Capability::kMaxValue); ++i) {
    EXPECT_TRUE(full.Has(static_cast<Capability>(i)));
  }
  EXPECT_EQ(full.count(), static_cast<size_t>(Capability::kMaxValue));
}

TEST(CapabilitySetTest, MinusAndIntersect) {
  CapabilitySet a = {Capability::kSysChroot, Capability::kSysPtrace, Capability::kMknod};
  CapabilitySet b = {Capability::kSysPtrace};
  CapabilitySet diff = a.Minus(b);
  EXPECT_TRUE(diff.Has(Capability::kSysChroot));
  EXPECT_FALSE(diff.Has(Capability::kSysPtrace));
  CapabilitySet inter = a.Intersect(b);
  EXPECT_EQ(inter, b);
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(CapabilitySetTest, NamesAreDistinct) {
  EXPECT_EQ(CapabilityName(Capability::kSysRawMem), "CAP_SYS_RAWMEM");
  EXPECT_EQ(CapabilityName(Capability::kSysChroot), "CAP_SYS_CHROOT");
}

TEST(PosixAccessTest, OwnerGroupOtherBits) {
  Credentials owner;
  owner.uid = 1000;
  owner.gid = 1000;
  owner.caps = CapabilitySet::Empty();

  // rw- r-- ---
  EXPECT_TRUE(CheckPosixAccess(owner, 1000, 1000, 0640, kAccessRead | kAccessWrite));
  EXPECT_FALSE(CheckPosixAccess(owner, 1000, 1000, 0640, kAccessExec));

  Credentials group_member;
  group_member.uid = 2000;
  group_member.gid = 1000;
  group_member.caps = CapabilitySet::Empty();
  EXPECT_TRUE(CheckPosixAccess(group_member, 1000, 1000, 0640, kAccessRead));
  EXPECT_FALSE(CheckPosixAccess(group_member, 1000, 1000, 0640, kAccessWrite));

  Credentials other;
  other.uid = 3000;
  other.gid = 3000;
  other.caps = CapabilitySet::Empty();
  EXPECT_FALSE(CheckPosixAccess(other, 1000, 1000, 0640, kAccessRead));
}

TEST(PosixAccessTest, SupplementaryGroups) {
  Credentials cred;
  cred.uid = 2000;
  cred.gid = 2000;
  cred.supplementary_gids = {100, 1000};
  cred.caps = CapabilitySet::Empty();
  EXPECT_TRUE(CheckPosixAccess(cred, 1, 1000, 0060, kAccessRead | kAccessWrite));
}

TEST(PosixAccessTest, DacOverrideBypassesRw) {
  Credentials root;
  root.uid = 0;
  root.caps = {Capability::kDacOverride};
  EXPECT_TRUE(CheckPosixAccess(root, 1000, 1000, 0000, kAccessRead | kAccessWrite));
  // Exec still needs at least one x bit, as on Linux.
  EXPECT_FALSE(CheckPosixAccess(root, 1000, 1000, 0644, kAccessExec));
  EXPECT_TRUE(CheckPosixAccess(root, 1000, 1000, 0100, kAccessExec));
}

TEST(PosixAccessTest, RootWithoutDacOverrideIsOrdinary) {
  Credentials stripped;
  stripped.uid = 0;
  stripped.caps = CapabilitySet::Empty();
  EXPECT_FALSE(CheckPosixAccess(stripped, 1000, 1000, 0600, kAccessRead));
}

// Property: owner bits dominate — if the owner bit grants access, the owner
// check passes regardless of group/other bits.
class ModeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ModeSweep, OwnerBitsGovernOwner) {
  Mode mode = static_cast<Mode>(GetParam());
  Credentials owner;
  owner.uid = 7;
  owner.gid = 7;
  owner.caps = CapabilitySet::Empty();
  uint32_t owner_bits = (mode >> 6) & 07u;
  for (uint32_t want : {kAccessRead, kAccessWrite, kAccessExec}) {
    EXPECT_EQ(CheckPosixAccess(owner, 7, 99, mode, want), (want & ~owner_bits) == 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOwnerModes, ModeSweep,
                         ::testing::Values(0000, 0100, 0200, 0300, 0400, 0500, 0600, 0700,
                                           0755, 0644, 0777));

}  // namespace
}  // namespace witos
