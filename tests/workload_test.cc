// Tests for the workload substrate: ticket generator, filesystem benchmark
// workloads and the script corpus.

#include <gtest/gtest.h>

#include <map>

#include "src/workload/fs_workloads.h"
#include "src/workload/script_corpus.h"
#include "src/workload/ticket_gen.h"
#include "src/workload/topology.h"

namespace witload {
namespace {

TEST(TopologyTest, EndpointLookup) {
  const OrgEndpoint* license = EndpointByName("license-server");
  ASSERT_NE(license, nullptr);
  EXPECT_EQ(license->port, kLicensePort);
  EXPECT_EQ(EndpointByName("nonexistent"), nullptr);
  EXPECT_GE(AllOrgEndpoints().size(), 8u);
}

TEST(TicketGenTest, ClassNamesRoundTrip) {
  for (int i = 1; i <= kNumTicketClasses; ++i) {
    EXPECT_EQ(TicketClassIndex(TicketClassName(i)), i);
    EXPECT_FALSE(TicketClassDescription(i).empty());
  }
  EXPECT_EQ(TicketClassIndex("X-1"), -1);
  EXPECT_EQ(TicketClassIndex("T-99"), -1);
}

TEST(TicketGenTest, DistributionsSumToOne) {
  double hist_total = 0.0;
  for (double p : TicketGenerator::HistoricalDistribution()) {
    hist_total += p;
  }
  EXPECT_NEAR(hist_total, 1.0, 1e-9);
  double eval_total = 0.0;
  for (double p : TicketGenerator::EvaluationDistribution()) {
    eval_total += p;
  }
  EXPECT_NEAR(eval_total, 1.0, 1e-9);
}

TEST(TicketGenTest, TextContainsClassVocabulary) {
  TicketGenerator gen;
  for (int cls = 1; cls <= 10; ++cls) {
    GeneratedTicket ticket = gen.Generate(cls);
    EXPECT_EQ(ticket.true_class, TicketClassName(cls));
    const auto& vocab = TicketGenerator::ClassVocabulary(cls);
    size_t hits = 0;
    for (const auto& word : vocab) {
      if (ticket.text.find(word) != std::string::npos) {
        ++hits;
      }
    }
    EXPECT_GT(hits, 0u) << "class " << cls << ": " << ticket.text;
  }
}

TEST(TicketGenTest, BatchFollowsDistribution) {
  TicketGenerator::Options options;
  options.seed = 55;
  TicketGenerator gen(options);
  auto batch = gen.GenerateBatch(4000, TicketGenerator::EvaluationDistribution());
  std::map<std::string, size_t> counts;
  for (const auto& t : batch) {
    ++counts[t.true_class];
  }
  // T-6 should be ~30%, T-9 ~21% (loose tolerance).
  EXPECT_NEAR(static_cast<double>(counts["T-6"]) / 4000.0, 0.30, 0.03);
  EXPECT_NEAR(static_cast<double>(counts["T-9"]) / 4000.0, 0.21, 0.03);
  EXPECT_NEAR(static_cast<double>(counts["T-4"]) / 4000.0, 0.02, 0.015);
}

TEST(TicketGenTest, OpsOnlyWhenRequested) {
  TicketGenerator no_ops;
  EXPECT_TRUE(no_ops.Generate(1).ops.empty());
  TicketGenerator::Options options;
  options.with_ops = true;
  TicketGenerator with_ops(options);
  EXPECT_FALSE(with_ops.Generate(1).ops.empty());
}

TEST(TicketGenTest, BeyondViewRatesRoughlyMatchTable4) {
  TicketGenerator::Options options;
  options.with_ops = true;
  options.seed = 77;
  TicketGenerator gen(options);
  size_t beyond = 0;
  const size_t n = 2000;
  for (size_t i = 0; i < n; ++i) {
    GeneratedTicket ticket = gen.Generate(8);  // T-8: highest broker usage
    for (const auto& op : ticket.ops) {
      if (op.beyond_view) {
        ++beyond;
        break;
      }
    }
  }
  // T-8 plants proc (17%) and net (17%) beyond-view ops: ~31% of tickets
  // have at least one (1 - 0.83^2).
  double rate = static_cast<double>(beyond) / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.31, 0.05);
}

TEST(TicketGenTest, TyposAreInjected) {
  TicketGenerator::Options options;
  options.typo_rate = 1.0;
  options.seed = 5;
  TicketGenerator gen(options);
  TicketGenerator clean_gen;  // same default seed, no typos
  GeneratedTicket noisy = gen.Generate(1);
  // With typo_rate 1 every eligible word is mangled; the text must differ
  // from vocabulary words somewhere. Just assert generation doesn't break
  // and text is nonempty.
  EXPECT_FALSE(noisy.text.empty());
}

TEST(FsWorkloadsTest, GrepFindsPlantedNeedles) {
  witos::Kernel kernel("bench");
  uint64_t bytes = PopulateTree(&kernel, 1, "/data", 40, 4096, 4, "NEEDLE", 3);
  EXPECT_EQ(bytes, 40u * 4096u);
  WorkloadStats stats = RunGrep(&kernel, 1, "/data", "NEEDLE");
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GT(stats.matches, 0u);
  EXPECT_EQ(stats.bytes, bytes);
  EXPECT_GT(stats.sim_ns, 0u);
}

TEST(FsWorkloadsTest, PostmarkTransactionsComplete) {
  witos::Kernel kernel("bench");
  PostmarkConfig config;
  config.initial_files = 30;
  config.transactions = 200;
  config.min_size = 1024;
  config.max_size = 4096;
  WorkloadStats stats = RunPostmark(&kernel, 1, "/pm", config);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GE(stats.ops, 200u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(FsWorkloadsTest, SysbenchRandomIo) {
  witos::Kernel kernel("bench");
  SysbenchConfig config;
  config.num_files = 2;
  config.file_size = 1 << 20;
  config.io_ops = 100;
  WorkloadStats stats = RunSysbench(&kernel, 1, "/sb", config);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.ops, 100u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ScriptCorpusTest, SizesAndGrouping) {
  auto chef = ChefPuppetScripts();
  auto cluster = ClusterManagementScripts();
  EXPECT_EQ(chef.size(), 20u);
  EXPECT_EQ(cluster.size(), 13u);
  std::map<std::string, size_t> chef_groups;
  for (const auto& script : chef) {
    ++chef_groups[script.container_class];
    EXPECT_FALSE(script.ops.empty());
    EXPECT_FALSE(script.tampered_ops.empty());
  }
  // Figure 8a: 60% / 20% / 10% / 10%.
  EXPECT_EQ(chef_groups["S-1"], 12u);
  EXPECT_EQ(chef_groups["S-2"], 4u);
  EXPECT_EQ(chef_groups["S-3"], 2u);
  EXPECT_EQ(chef_groups["S-4"], 2u);
  std::map<std::string, size_t> cluster_groups;
  for (const auto& script : cluster) {
    ++cluster_groups[script.container_class];
  }
  // Figure 8b: ~80% / ~20%.
  EXPECT_EQ(cluster_groups["S-5"], 11u);
  EXPECT_EQ(cluster_groups["S-6"], 2u);
}

}  // namespace
}  // namespace witload
