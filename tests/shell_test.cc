// AdminShell tests: the Figure 6 terminal experience.

#include "src/core/shell.h"

#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace watchit {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = &cluster_.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50));
    manager_ = std::make_unique<ClusterManager>(&cluster_);
    Ticket ticket;
    ticket.id = "TKT-SH";
    ticket.target_machine = "userpc";
    ticket.assigned_class = "T-5";  // process mgmt + whole-root view
    ticket.admin = "alice";
    deployment_ = std::make_unique<Deployment>(*manager_->Deploy(ticket));
    session_ = std::make_unique<AdminSession>(machine_, deployment_->session,
                                              deployment_->certificate, &cluster_.ca());
    ASSERT_TRUE(session_->Login().ok());
    shell_ = std::make_unique<AdminShell>(session_.get());
  }

  Cluster cluster_;
  Machine* machine_ = nullptr;
  std::unique_ptr<ClusterManager> manager_;
  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<AdminSession> session_;
  std::unique_ptr<AdminShell> shell_;
};

TEST_F(ShellTest, PromptLooksLikeFigure6) {
  EXPECT_EQ(shell_->Prompt(), "root@ITContainer:/# ");
  (void)shell_->Execute("cd /home");
  EXPECT_EQ(shell_->Prompt(), "root@ITContainer:/home# ");
}

TEST_F(ShellTest, PsShowsHostViewForProcessMgmtClass) {
  std::string out = shell_->Execute("ps -a");
  // T-5 shares the host PID namespace: init and the broker are visible.
  EXPECT_NE(out.find("init"), std::string::npos);
  EXPECT_NE(out.find("PermissionBroker"), std::string::npos);
  EXPECT_NE(out.find("bash"), std::string::npos);
}

TEST_F(ShellTest, PbPrefixEscalates) {
  std::string out = shell_->Execute("PB ps -a");
  EXPECT_NE(out.find("PermissionBroker"), std::string::npos);
  EXPECT_EQ(machine_->broker().EventsSnapshot().size(), 1u);
}

TEST_F(ShellTest, CatAndEchoAndGrep) {
  EXPECT_NE(shell_->Execute("cat /etc/hosts").find("localhost"), std::string::npos);
  EXPECT_EQ(shell_->Execute("echo tuned > /etc/sysctl.conf"), "");
  EXPECT_EQ(shell_->Execute("cat /etc/sysctl.conf"), "tuned\n");
  EXPECT_EQ(shell_->Execute("echo more >> /etc/sysctl.conf"), "");
  EXPECT_EQ(shell_->Execute("grep tuned /etc/sysctl.conf"), "tuned\n");
  EXPECT_EQ(shell_->Execute("grep absent /etc/sysctl.conf"), "");
  // Plain echo just echoes.
  EXPECT_EQ(shell_->Execute("echo hello world"), "hello world\n");
}

TEST_F(ShellTest, DeniedFilesRenderShellErrors) {
  std::string out = shell_->Execute("cat /home/user/documents/payroll.xlsx");
  EXPECT_NE(out.find("Permission denied"), std::string::npos);
}

TEST_F(ShellTest, LsAndMount) {
  std::string ls = shell_->Execute("ls /etc");
  EXPECT_NE(ls.find("passwd"), std::string::npos);
  std::string mounts = shell_->Execute("mount");
  EXPECT_NE(mounts.find(" on / type fuse.itfs"), std::string::npos);
  EXPECT_NE(mounts.find(" on /proc type proc"), std::string::npos);
}

TEST_F(ShellTest, ServiceRestartAndReboot) {
  EXPECT_NE(shell_->Execute("service cron restart").find("done"), std::string::npos);
  EXPECT_EQ(shell_->Execute("reboot"), "rebooting...\n");  // T-5 keeps CAP_SYS_BOOT
}

TEST_F(ShellTest, KillVisibleProcess) {
  witos::Pid victim = *machine_->kernel().Clone(1, "runaway", 0);
  auto local = machine_->kernel().HostToLocalPid(session_->shell(), victim);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(shell_->Execute("kill " + std::to_string(*local)), "");
  EXPECT_FALSE(machine_->kernel().ProcessAlive(victim));
  EXPECT_NE(shell_->Execute("kill abc").find("bad pid"), std::string::npos);
}

TEST_F(ShellTest, ConnectRespectsNetworkView) {
  // T-5 has no network view at all.
  std::string out = shell_->Execute("connect license-server");
  EXPECT_NE(out.find("connect:"), std::string::npos);
}

TEST_F(ShellTest, UnknownCommand) {
  EXPECT_EQ(shell_->Execute("frobnicate"), "frobnicate: command not found\n");
  EXPECT_NE(shell_->Execute("help").find("PB"), std::string::npos);
}

TEST_F(ShellTest, CommandsAreAudited) {
  size_t before = machine_->kernel().audit().size();
  (void)shell_->Execute("cat /etc/hosts");
  auto records = machine_->kernel().audit().Filter([](const witos::AuditRecord& rec) {
    return rec.event == witos::AuditEvent::kSessionEvent &&
           rec.detail == "cmd: cat /etc/hosts";
  });
  EXPECT_EQ(records.size(), 1u);
  EXPECT_GT(machine_->kernel().audit().size(), before);
}

TEST_F(ShellTest, TranscriptRendersPromptsAndOutput) {
  std::string transcript = shell_->Transcript("hostname\nps -a\nPB ps -a\n");
  EXPECT_NE(transcript.find("root@ITContainer:/# hostname"), std::string::npos);
  EXPECT_NE(transcript.find("ITContainer\n"), std::string::npos);
  EXPECT_NE(transcript.find("root@ITContainer:/# PB ps -a"), std::string::npos);
  EXPECT_EQ(shell_->commands_run(), 3u);
}

}  // namespace
}  // namespace watchit
