// ContainIT integration tests: deploying perforated containers, namespace
// holes, ITFS monitoring, the watchdog, and on-line file sharing.

#include "src/container/containit.h"

#include <gtest/gtest.h>

#include "src/container/spec.h"
#include "src/net/network.h"

namespace witcontain {
namespace {

class ContainItTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<witos::Kernel>("lnx-host");
    kernel_->root_fs().ProvisionFile("/home/user/notes.txt", "user notes", 1000, 1000);
    kernel_->root_fs().ProvisionFile("/home/user/payroll.xlsx",
                                     std::string("PK\x03\x04") + "salaries", 1000, 1000);
    kernel_->root_fs().ProvisionFile("/etc/passwd", "root:x:0:0\n");
    kernel_->root_fs().ProvisionFile("/var/log/syslog", "boot ok\n");
    net_ = std::make_unique<witnet::NetStack>(&fabric_, &kernel_->audit(), &kernel_->clock());
    containit_ = std::make_unique<ContainIt>(kernel_.get(), net_.get());

    fabric_.AddEndpoint("license-server", kLicense);
    fabric_.AddService(kLicense, 27000, [](const witnet::Packet&) { return "LICENSE OK"; });
    fabric_.AddEndpoint("evil", kEvil);
    fabric_.AddService(kEvil, 443, [](const witnet::Packet&) { return "got it"; });
  }

  PerforatedContainerSpec LicenseSpec() {
    PerforatedContainerSpec spec;
    spec.name = "T-1";
    spec.fs.kind = FsView::Kind::kDirs;
    spec.fs.visible_dirs = {"/home/user"};
    spec.fs.policy.AddRule(witfs::ItfsPolicy::DenyDocumentsRule());
    spec.net.allowed = {{kLicense, 27000, "license-server"}};
    return spec;
  }

  const witnet::Ipv4Addr kLicense{witnet::Ipv4Addr(10, 0, 0, 10)};
  const witnet::Ipv4Addr kEvil{witnet::Ipv4Addr(203, 0, 113, 66)};
  witnet::Network fabric_;
  std::unique_ptr<witos::Kernel> kernel_;
  std::unique_ptr<witnet::NetStack> net_;
  std::unique_ptr<ContainIt> containit_;
};

TEST_F(ContainItTest, DeploySetsUpSession) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  ASSERT_TRUE(id.ok());
  Session* session = containit_->FindSession(*id);
  ASSERT_NE(session, nullptr);
  EXPECT_TRUE(session->active);
  EXPECT_TRUE(kernel_->ProcessAlive(session->container_init));
  EXPECT_TRUE(kernel_->ProcessAlive(session->shell));
  EXPECT_GT(session->deploy_duration_ns, 0u);
  EXPECT_EQ(containit_->active_sessions(), 1u);
  EXPECT_EQ(kernel_->audit().CountEvent(witos::AuditEvent::kContainerDeployed), 1u);
}

TEST_F(ContainItTest, HostnameIsolated) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  Session* session = containit_->FindSession(*id);
  EXPECT_EQ(*kernel_->GetHostname(session->shell), "ITContainer");
  EXPECT_EQ(*kernel_->GetHostname(1), "lnx-host");
}

TEST_F(ContainItTest, FilesystemViewLimitedToVisibleDirs) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  witos::Pid shell = containit_->FindSession(*id)->shell;
  // The exposed directory is reachable (through ITFS).
  EXPECT_EQ(*kernel_->ReadFile(shell, "/home/user/notes.txt"), "user notes");
  // The rest of the host fs is simply absent from the private root.
  EXPECT_EQ(kernel_->ReadFile(shell, "/etc/passwd").error(), witos::Err::kNoEnt);
  EXPECT_EQ(kernel_->ReadFile(shell, "/var/log/syslog").error(), witos::Err::kNoEnt);
}

TEST_F(ContainItTest, ItfsDeniesDocumentsInsideView) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  Session* session = containit_->FindSession(*id);
  EXPECT_EQ(kernel_->ReadFile(session->shell, "/home/user/payroll.xlsx").error(),
            witos::Err::kAcces);
  EXPECT_GE(session->itfs->oplog().denied_count(), 1u);
}

TEST_F(ContainItTest, ContainerWritesReachHostFiles) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  witos::Pid shell = containit_->FindSession(*id)->shell;
  ASSERT_TRUE(kernel_->WriteFile(shell, "/home/user/.matlab-license", "FEATURE ok").ok());
  // Visible on the host: the bind mount exposes the real files.
  EXPECT_EQ(*kernel_->ReadFile(1, "/home/user/.matlab-license"), "FEATURE ok");
}

TEST_F(ContainItTest, PidNamespaceHidesHost) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  witos::Pid shell = containit_->FindSession(*id)->shell;
  auto procs = kernel_->ListProcesses(shell);
  ASSERT_TRUE(procs.ok());
  // Only containIT(init) + bash are visible, with container-local pids.
  ASSERT_EQ(procs->size(), 2u);
  EXPECT_EQ((*procs)[0].pid, 1);
  EXPECT_EQ((*procs)[0].name, "containIT");
  EXPECT_EQ((*procs)[1].name, "bash");
}

TEST_F(ContainItTest, ProcfsReflectsContainerPidNs) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  witos::Pid shell = containit_->FindSession(*id)->shell;
  auto entries = kernel_->ReadDir(shell, "/proc");
  ASSERT_TRUE(entries.ok());
  size_t pid_dirs = 0;
  for (const auto& entry : *entries) {
    if (entry.type == witos::FileType::kDirectory) {
      ++pid_dirs;
    }
  }
  EXPECT_EQ(pid_dirs, 2u);
  auto status = kernel_->ReadFile(shell, "/proc/1/status");
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->find("containIT"), std::string::npos);
}

TEST_F(ContainItTest, NetworkViewRestrictedToAllowedEndpoints) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  Session* session = containit_->FindSession(*id);
  const witos::Process* proc = kernel_->FindProcess(session->shell);
  witos::NsId net_ns = proc->ns.Get(witos::NsType::kNet);
  // License server reachable.
  EXPECT_TRUE(net_->Request(net_ns, kLicense, 27000, "checkout matlab", 0).ok());
  // Everything else unreachable.
  EXPECT_FALSE(net_->Request(net_ns, kEvil, 443, "exfil", 0).ok());
}

TEST_F(ContainItTest, CapabilitiesStripped) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  const witos::Process* init = kernel_->FindProcess(containit_->FindSession(*id)->container_init);
  for (witos::Capability cap : ForbiddenCaps().ToList()) {
    EXPECT_FALSE(init->cred.caps.Has(cap)) << witos::CapabilityName(cap);
  }
  EXPECT_FALSE(init->cred.caps.Has(witos::Capability::kSysBoot));
}

TEST_F(ContainItTest, ProcessMgmtSharesPidNsAndKeepsBoot) {
  PerforatedContainerSpec spec = LicenseSpec();
  spec.process_mgmt = true;
  spec.isolate.erase(witos::NsType::kPid);
  auto id = containit_->Deploy(spec, "TKT-2", "alice");
  Session* session = containit_->FindSession(*id);
  // Host processes visible.
  auto procs = kernel_->ListProcesses(session->shell);
  ASSERT_TRUE(procs.ok());
  EXPECT_GT(procs->size(), 2u);
  const witos::Process* init = kernel_->FindProcess(session->container_init);
  EXPECT_TRUE(init->cred.caps.Has(witos::Capability::kSysBoot));
}

TEST_F(ContainItTest, WholeRootViewThroughItfs) {
  PerforatedContainerSpec spec;
  spec.name = "T-6";
  spec.fs.kind = FsView::Kind::kWholeRoot;
  spec.fs.policy.AddRule(witfs::ItfsPolicy::DenyDocumentsRule());
  auto id = containit_->Deploy(spec, "TKT-3", "alice");
  witos::Pid shell = containit_->FindSession(*id)->shell;
  // The whole host fs is visible...
  EXPECT_EQ(*kernel_->ReadFile(shell, "/etc/passwd"), "root:x:0:0\n");
  EXPECT_EQ(*kernel_->ReadFile(shell, "/var/log/syslog"), "boot ok\n");
  // ...but documents are still blocked by the blanket policy.
  EXPECT_EQ(kernel_->ReadFile(shell, "/home/user/payroll.xlsx").error(), witos::Err::kAcces);
  // And every operation was monitored.
  EXPECT_GT(containit_->FindSession(*id)->itfs->oplog().size(), 0u);
}

TEST_F(ContainItTest, TerminateKillsSessionProcesses) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  Session* session = containit_->FindSession(*id);
  witos::Pid shell = session->shell;
  ASSERT_TRUE(containit_->Terminate(*id, "done").ok());
  EXPECT_FALSE(session->active);
  EXPECT_FALSE(kernel_->ProcessAlive(shell));
  EXPECT_EQ(containit_->active_sessions(), 0u);
  EXPECT_EQ(kernel_->audit().CountEvent(witos::AuditEvent::kContainerTerminated), 1u);
}

TEST_F(ContainItTest, WatchdogTerminatesOnPeerDeath) {
  // Attack 7: kill the ITFS daemon -> the whole session dies.
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  Session* session = containit_->FindSession(*id);
  ASSERT_NE(session->itfs_daemon, witos::kNoPid);
  ASSERT_TRUE(kernel_->Exit(session->itfs_daemon, -9).ok());
  EXPECT_FALSE(session->active);
  EXPECT_FALSE(kernel_->ProcessAlive(session->shell));
  EXPECT_NE(session->termination_reason.find("peer"), std::string::npos);
}

TEST_F(ContainItTest, OnlineFileSharingExtendsView) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  witos::Pid shell = containit_->FindSession(*id)->shell;
  EXPECT_EQ(kernel_->ReadFile(shell, "/var/log/syslog").error(), witos::Err::kNoEnt);
  // The broker maps /var/log into the running container — no restart.
  ASSERT_TRUE(containit_->ShareDirectory(*id, "/var/log", "/var/log").ok());
  EXPECT_EQ(*kernel_->ReadFile(shell, "/var/log/syslog"), "boot ok\n");
  // The host's own view is untouched (mount lives in the container ns).
  EXPECT_EQ(*kernel_->ReadFile(1, "/var/log/syslog"), "boot ok\n");
}

TEST_F(ContainItTest, SharedDirectoryIsStillMonitored) {
  auto id = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  witos::Pid shell = containit_->FindSession(*id)->shell;
  kernel_->root_fs().ProvisionFile("/var/data/report.pdf", "%PDF-1.4 secret");
  ASSERT_TRUE(containit_->ShareDirectory(*id, "/var/data", "/var/data").ok());
  // The newly shared files go through a fresh ITFS bind mount: documents
  // stay blocked.
  EXPECT_EQ(kernel_->ReadFile(shell, "/var/data/report.pdf").error(), witos::Err::kAcces);
}

TEST_F(ContainItTest, TraditionalContainerFullyIsolated) {
  auto spec = PerforatedContainerSpec::Traditional("T-11");
  auto id = containit_->Deploy(spec, "TKT-4", "alice");
  witos::Pid shell = containit_->FindSession(*id)->shell;
  EXPECT_EQ(kernel_->ReadFile(shell, "/home/user/notes.txt").error(), witos::Err::kNoEnt);
  auto procs = kernel_->ListProcesses(shell);
  EXPECT_EQ(procs->size(), 2u);
  const witos::Process* proc = kernel_->FindProcess(shell);
  EXPECT_FALSE(net_->Request(proc->ns.Get(witos::NsType::kNet), kLicense, 27000, "x", 0).ok());
}

TEST_F(ContainItTest, MultipleConcurrentSessions) {
  auto id1 = containit_->Deploy(LicenseSpec(), "TKT-1", "alice");
  auto id2 = containit_->Deploy(LicenseSpec(), "TKT-2", "bob");
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(containit_->active_sessions(), 2u);
  // Sessions have independent filesystems and processes.
  witos::Pid shell1 = containit_->FindSession(*id1)->shell;
  witos::Pid shell2 = containit_->FindSession(*id2)->shell;
  ASSERT_TRUE(kernel_->WriteFile(shell1, "/tmp/mine", "session1").ok());
  EXPECT_EQ(kernel_->ReadFile(shell2, "/tmp/mine").error(), witos::Err::kNoEnt);
  ASSERT_TRUE(containit_->Terminate(*id1, "done").ok());
  EXPECT_TRUE(containit_->FindSession(*id2)->active);
  EXPECT_EQ(containit_->FindSessionByTicket("TKT-2")->id, *id2);
  EXPECT_EQ(containit_->FindSessionByTicket("TKT-1"), nullptr);
}

}  // namespace
}  // namespace witcontain
