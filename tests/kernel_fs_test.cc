#include <gtest/gtest.h>

#include "src/os/kernel.h"

namespace witos {
namespace {

class KernelFsTest : public ::testing::Test {
 protected:
  Kernel kernel_{"host"};
  Pid init_ = 1;
};

TEST_F(KernelFsTest, OpenReadWriteThroughFdTable) {
  ASSERT_TRUE(kernel_.WriteFile(init_, "/tmp/f", "hello world").ok());
  auto fd = kernel_.Open(init_, "/tmp/f", kOpenRead);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(*kernel_.Read(init_, *fd, 5), "hello");
  EXPECT_EQ(*kernel_.Read(init_, *fd, 100), " world");  // cursor advanced
  EXPECT_EQ(kernel_.Read(init_, *fd, 10)->size(), 0u);  // EOF
  ASSERT_TRUE(kernel_.Close(init_, *fd).ok());
  EXPECT_EQ(kernel_.Read(init_, *fd, 1).error(), Err::kBadf);
}

TEST_F(KernelFsTest, AppendModeSeeksToEnd) {
  ASSERT_TRUE(kernel_.WriteFile(init_, "/tmp/log", "line1\n").ok());
  ASSERT_TRUE(kernel_.WriteFile(init_, "/tmp/log", "line2\n", /*append=*/true).ok());
  EXPECT_EQ(*kernel_.ReadFile(init_, "/tmp/log"), "line1\nline2\n");
}

TEST_F(KernelFsTest, ReadOnDirectoryFails) {
  EXPECT_EQ(kernel_.ReadFile(init_, "/etc").error(), Err::kIsDir);
}

TEST_F(KernelFsTest, WriteWithoutWriteFlagFails) {
  ASSERT_TRUE(kernel_.WriteFile(init_, "/tmp/f", "x").ok());
  auto fd = kernel_.Open(init_, "/tmp/f", kOpenRead);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(kernel_.Write(init_, *fd, "y").error(), Err::kBadf);
}

TEST_F(KernelFsTest, ChdirAndRelativePaths) {
  ASSERT_TRUE(kernel_.MkDir(init_, "/work").ok());
  ASSERT_TRUE(kernel_.Chdir(init_, "/work").ok());
  EXPECT_EQ(*kernel_.GetCwd(init_), "/work");
  ASSERT_TRUE(kernel_.WriteFile(init_, "notes.txt", "hi").ok());
  EXPECT_EQ(*kernel_.ReadFile(init_, "/work/notes.txt"), "hi");
}

TEST_F(KernelFsTest, ChrootConfinesAndClampsDotDot) {
  ASSERT_TRUE(kernel_.MkDir(init_, "/jail").ok());
  ASSERT_TRUE(kernel_.WriteFile(init_, "/jail/inside", "in").ok());
  ASSERT_TRUE(kernel_.WriteFile(init_, "/outside", "out").ok());
  Pid child = *kernel_.Clone(init_, "jailed", 0);
  ASSERT_TRUE(kernel_.Chroot(child, "/jail").ok());
  EXPECT_EQ(*kernel_.ReadFile(child, "/inside"), "in");
  EXPECT_EQ(kernel_.ReadFile(child, "/outside").error(), Err::kNoEnt);
  // ".." escape attempts are clamped at the jail root.
  EXPECT_EQ(kernel_.ReadFile(child, "/../outside").error(), Err::kNoEnt);
  EXPECT_EQ(kernel_.ReadFile(child, "/../../../../outside").error(), Err::kNoEnt);
}

TEST_F(KernelFsTest, ChrootRequiresCapability) {
  ASSERT_TRUE(kernel_.MkDir(init_, "/jail").ok());
  Pid child = *kernel_.Clone(init_, "stripped", 0);
  ASSERT_TRUE(kernel_.CapDrop(child, {Capability::kSysChroot}).ok());
  EXPECT_EQ(kernel_.Chroot(child, "/jail").error(), Err::kPerm);
}

TEST_F(KernelFsTest, SymlinkFollowedInsideJail) {
  ASSERT_TRUE(kernel_.MkDir(init_, "/jail").ok());
  ASSERT_TRUE(kernel_.WriteFile(init_, "/jail/etc-file", "jailed etc").ok());
  ASSERT_TRUE(kernel_.WriteFile(init_, "/etc-file", "host etc").ok());
  // Absolute symlink: resolves against the *jail* root.
  ASSERT_TRUE(kernel_.SymLink(init_, "/etc-file", "/jail/link").ok());
  Pid child = *kernel_.Clone(init_, "jailed", 0);
  ASSERT_TRUE(kernel_.Chroot(child, "/jail").ok());
  EXPECT_EQ(*kernel_.ReadFile(child, "/link"), "jailed etc");
}

TEST_F(KernelFsTest, SymlinkLoopDetected) {
  ASSERT_TRUE(kernel_.SymLink(init_, "/b", "/a").ok());
  ASSERT_TRUE(kernel_.SymLink(init_, "/a", "/b").ok());
  EXPECT_EQ(kernel_.ReadFile(init_, "/a").error(), Err::kLoop);
}

TEST_F(KernelFsTest, LstatDoesNotFollow) {
  ASSERT_TRUE(kernel_.WriteFile(init_, "/target", "x").ok());
  ASSERT_TRUE(kernel_.SymLink(init_, "/target", "/link").ok());
  EXPECT_EQ(kernel_.StatPath(init_, "/link")->type, FileType::kRegular);
  EXPECT_EQ(kernel_.LstatPath(init_, "/link")->type, FileType::kSymlink);
}

TEST_F(KernelFsTest, MknodDeviceRequiresCapability) {
  Pid child = *kernel_.Clone(init_, "stripped", 0);
  ASSERT_TRUE(kernel_.CapDrop(child, {Capability::kMknod}).ok());
  EXPECT_EQ(kernel_.MkNod(child, "/tmp/sda", FileType::kBlockDevice, 8).error(), Err::kPerm);
  // Regular files and fifos are still fine.
  EXPECT_TRUE(kernel_.MkNod(child, "/tmp/fifo", FileType::kFifo, 0).ok());
  // With the capability, device creation works.
  EXPECT_TRUE(kernel_.MkNod(init_, "/tmp/sda", FileType::kBlockDevice, 8).ok());
}

TEST_F(KernelFsTest, DevMemRequiresRawMemCapability) {
  Pid child = *kernel_.Clone(init_, "stripped", 0);
  ASSERT_TRUE(kernel_.CapDrop(child, {Capability::kSysRawMem}).ok());
  EXPECT_EQ(kernel_.Open(child, "/dev/mem", kOpenRead).error(), Err::kPerm);
  EXPECT_EQ(kernel_.Open(child, "/dev/kmem", kOpenRead).error(), Err::kPerm);
  // init retains the new capability and can read simulated memory.
  auto fd = kernel_.Open(init_, "/dev/mem", kOpenRead);
  ASSERT_TRUE(fd.ok());
  auto data = kernel_.Read(init_, *fd, 16);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->substr(0, 8), "PHYSMEM.");
}

TEST_F(KernelFsTest, DevNullAndZero) {
  auto fd = kernel_.Open(init_, "/dev/zero", kOpenRead);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(*kernel_.Read(init_, *fd, 4), std::string(4, '\0'));
  auto null_fd = kernel_.Open(init_, "/dev/null", kOpenRead | kOpenWrite);
  ASSERT_TRUE(null_fd.ok());
  EXPECT_EQ(kernel_.Read(init_, *null_fd, 4)->size(), 0u);
  EXPECT_EQ(*kernel_.Write(init_, *null_fd, "discard"), 7u);
}

TEST_F(KernelFsTest, MountNamespaceCopyOnClone) {
  auto extra = std::make_shared<MemFs>("tmpfs");
  extra->ProvisionFile("/data", "extra-fs");
  ASSERT_TRUE(kernel_.MkDir(init_, "/mnt").ok());

  Pid contained = *kernel_.Clone(init_, "contained", kCloneNewMnt);
  // Mount inside the container's namespace: invisible to the host.
  ASSERT_TRUE(kernel_.Mount(contained, extra, "/mnt", "tmpfs").ok());
  EXPECT_EQ(*kernel_.ReadFile(contained, "/mnt/data"), "extra-fs");
  EXPECT_EQ(kernel_.ReadFile(init_, "/mnt/data").error(), Err::kNoEnt);
}

TEST_F(KernelFsTest, MountRequiresSysAdmin) {
  auto extra = std::make_shared<MemFs>("tmpfs");
  ASSERT_TRUE(kernel_.MkDir(init_, "/mnt").ok());
  Pid child = *kernel_.Clone(init_, "stripped", 0);
  ASSERT_TRUE(kernel_.CapDrop(child, {Capability::kSysAdmin}).ok());
  EXPECT_EQ(kernel_.Mount(child, extra, "/mnt", "tmpfs").error(), Err::kPerm);
}

TEST_F(KernelFsTest, BindMountExposesSubtree) {
  ASSERT_TRUE(kernel_.MkDir(init_, "/home/user").ok());
  ASSERT_TRUE(kernel_.WriteFile(init_, "/home/user/doc.txt", "content").ok());
  ASSERT_TRUE(kernel_.MkDir(init_, "/view").ok());
  ASSERT_TRUE(
      kernel_.BindMount(init_, kernel_.root_fs_ptr(), "/home/user", "/view", "bind").ok());
  EXPECT_EQ(*kernel_.ReadFile(init_, "/view/doc.txt"), "content");
}

TEST_F(KernelFsTest, ReadOnlyMountRejectsWrites) {
  auto extra = std::make_shared<MemFs>("tmpfs");
  extra->ProvisionFile("/data", "x");
  ASSERT_TRUE(kernel_.MkDir(init_, "/mnt").ok());
  ASSERT_TRUE(kernel_.Mount(init_, extra, "/mnt", "tmpfs", /*read_only=*/true).ok());
  EXPECT_EQ(*kernel_.ReadFile(init_, "/mnt/data"), "x");
  EXPECT_EQ(kernel_.WriteFile(init_, "/mnt/data", "y").error(), Err::kRoFs);
  EXPECT_EQ(kernel_.Unlink(init_, "/mnt/data").error(), Err::kRoFs);
}

TEST_F(KernelFsTest, UmountAndBusySemantics) {
  auto a = std::make_shared<MemFs>("tmpfs");
  a->ProvisionDir("/inner");
  auto b = std::make_shared<MemFs>("tmpfs");
  ASSERT_TRUE(kernel_.MkDir(init_, "/m").ok());
  ASSERT_TRUE(kernel_.Mount(init_, a, "/m", "a").ok());
  ASSERT_TRUE(kernel_.Mount(init_, b, "/m/inner", "b").ok());
  EXPECT_EQ(kernel_.Umount(init_, "/m").error(), Err::kBusy);  // has submount
  ASSERT_TRUE(kernel_.Umount(init_, "/m/inner").ok());
  ASSERT_TRUE(kernel_.Umount(init_, "/m").ok());
}

TEST_F(KernelFsTest, MountTableViewFromJail) {
  ASSERT_TRUE(kernel_.MkDir(init_, "/jail").ok());
  auto jail_fs = std::make_shared<MemFs>("tmpfs");
  jail_fs->ProvisionDir("/proc");
  ASSERT_TRUE(kernel_.Mount(init_, jail_fs, "/jail", "tmpfs").ok());
  Pid child = *kernel_.Clone(init_, "jailed", kCloneNewMnt);
  ASSERT_TRUE(kernel_.Chroot(child, "/jail").ok());
  auto table = kernel_.MountTable(child);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->size(), 1u);
  EXPECT_EQ((*table)[0].mountpoint, "/");  // presented jail-relative
  // The host still sees its own full table.
  auto host_table = kernel_.MountTable(init_);
  EXPECT_GE(host_table->size(), 2u);
}

TEST_F(KernelFsTest, HardLinksShareContent) {
  ASSERT_TRUE(kernel_.WriteFile(init_, "/tmp/original", "shared content").ok());
  ASSERT_TRUE(kernel_.Link(init_, "/tmp/original", "/tmp/alias").ok());
  EXPECT_EQ(*kernel_.ReadFile(init_, "/tmp/alias"), "shared content");
  // Writes through one name are visible through the other.
  ASSERT_TRUE(kernel_.WriteFile(init_, "/tmp/alias", "updated").ok());
  EXPECT_EQ(*kernel_.ReadFile(init_, "/tmp/original"), "updated");
  // Both stats report the same inode and nlink 2.
  auto st_a = kernel_.StatPath(init_, "/tmp/original");
  auto st_b = kernel_.StatPath(init_, "/tmp/alias");
  EXPECT_EQ(st_a->inode, st_b->inode);
  EXPECT_EQ(st_a->nlink, 2u);
  // Removing one name keeps the inode alive under the other.
  ASSERT_TRUE(kernel_.Unlink(init_, "/tmp/original").ok());
  EXPECT_EQ(*kernel_.ReadFile(init_, "/tmp/alias"), "updated");
  EXPECT_EQ(kernel_.StatPath(init_, "/tmp/alias")->nlink, 1u);
}

TEST_F(KernelFsTest, HardLinkRules) {
  ASSERT_TRUE(kernel_.WriteFile(init_, "/tmp/f", "x").ok());
  // Directories cannot be hard-linked.
  EXPECT_EQ(kernel_.Link(init_, "/tmp", "/tmp2").error(), Err::kPerm);
  // Existing targets are rejected.
  ASSERT_TRUE(kernel_.WriteFile(init_, "/tmp/g", "y").ok());
  EXPECT_EQ(kernel_.Link(init_, "/tmp/f", "/tmp/g").error(), Err::kExist);
  // Cross-filesystem links are EXDEV.
  auto other = std::make_shared<MemFs>("tmpfs");
  ASSERT_TRUE(kernel_.MkDir(init_, "/mnt").ok());
  ASSERT_TRUE(kernel_.Mount(init_, other, "/mnt", "tmpfs").ok());
  EXPECT_EQ(kernel_.Link(init_, "/tmp/f", "/mnt/f").error(), Err::kXdev);
}

TEST_F(KernelFsTest, WriteGuardDeniesProtectedPaths) {
  ASSERT_TRUE(kernel_.WriteFile(init_, "/usr/watchit-core", "tcb").ok());
  kernel_.SetWriteGuard([](const std::string& path, const Credentials&) {
    return path != "/usr/watchit-core";
  });
  EXPECT_EQ(kernel_.WriteFile(init_, "/usr/watchit-core", "tampered").error(), Err::kPerm);
  EXPECT_EQ(kernel_.Unlink(init_, "/usr/watchit-core").error(), Err::kPerm);
  EXPECT_EQ(*kernel_.ReadFile(init_, "/usr/watchit-core"), "tcb");
  EXPECT_EQ(kernel_.audit().CountEvent(AuditEvent::kTcbViolation), 2u);
}

}  // namespace
}  // namespace witos
