// Tests for the network substrate: addressing, firewall, namespaces and the
// socket layer's route/firewall/sniffer gauntlet.

#include <gtest/gtest.h>

#include <random>

#include "src/net/socket.h"

namespace witnet {
namespace {

TEST(Ipv4Test, ParseAndFormat) {
  auto addr = Ipv4Addr::Parse("10.0.0.10");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ToString(), "10.0.0.10");
  EXPECT_EQ(*addr, Ipv4Addr(10, 0, 0, 10));
  EXPECT_FALSE(Ipv4Addr::Parse("10.0.0").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse("10.0.0.256").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse("1.2.3.4.5").has_value());
}

TEST(CidrTest, Containment) {
  Cidr block = *Cidr::Parse("10.0.0.0/8");
  EXPECT_TRUE(block.Contains(Ipv4Addr(10, 255, 1, 2)));
  EXPECT_FALSE(block.Contains(Ipv4Addr(11, 0, 0, 1)));
  Cidr host = Cidr::Host(Ipv4Addr(1, 2, 3, 4));
  EXPECT_TRUE(host.Contains(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_FALSE(host.Contains(Ipv4Addr(1, 2, 3, 5)));
  EXPECT_TRUE(Cidr::Any().Contains(Ipv4Addr(203, 0, 113, 9)));
  EXPECT_EQ(Cidr::Parse("10.0.0.0/33"), std::nullopt);
}

TEST(FirewallTest, FirstMatchWinsThenDefault) {
  FirewallRuleset fw;
  fw.set_default_policy(FwAction::kDrop);
  fw.AllowHost(Ipv4Addr(10, 0, 0, 10), 27000);
  EXPECT_EQ(fw.Evaluate(FwDirection::kEgress, Ipv4Addr(10, 0, 0, 10), 27000),
            FwAction::kAccept);
  EXPECT_EQ(fw.Evaluate(FwDirection::kEgress, Ipv4Addr(10, 0, 0, 10), 22), FwAction::kDrop);
  EXPECT_EQ(fw.Evaluate(FwDirection::kEgress, Ipv4Addr(10, 0, 0, 11), 27000), FwAction::kDrop);
  // Port 0 rule = any port.
  fw.AllowHost(Ipv4Addr(10, 0, 0, 20));
  EXPECT_EQ(fw.Evaluate(FwDirection::kEgress, Ipv4Addr(10, 0, 0, 20), 8080),
            FwAction::kAccept);
}

TEST(SnifferTest, BlocksFileSignatures) {
  Sniffer sniffer;
  sniffer.AddRule(Sniffer::BlockFileSignatures());
  Packet doc{Ipv4Addr(), Ipv4Addr(), 443, std::string("PK\x03\x04") + "xlsx-bytes"};
  auto result = sniffer.Inspect(doc, 0);
  EXPECT_TRUE(result.blocked);
  Packet text{Ipv4Addr(), Ipv4Addr(), 443, "just some text"};
  EXPECT_FALSE(sniffer.Inspect(text, 0).blocked);
  EXPECT_EQ(sniffer.alert_count(), 1u);
  EXPECT_EQ(sniffer.packets_inspected(), 2u);
}

TEST(SnifferTest, BlocksHighEntropyPayload) {
  Sniffer sniffer;
  sniffer.AddRule(Sniffer::BlockEncrypted());
  std::string encrypted;
  std::mt19937 rng(3);
  for (int i = 0; i < 1024; ++i) {
    encrypted += static_cast<char>(rng() & 0xff);
  }
  EXPECT_TRUE(sniffer.Inspect({Ipv4Addr(), Ipv4Addr(), 443, encrypted}, 0).blocked);
  EXPECT_FALSE(
      sniffer.Inspect({Ipv4Addr(), Ipv4Addr(), 443, std::string(1024, 'a')}, 0).blocked);
}

TEST(SnifferTest, DestinationWhitelist) {
  Sniffer sniffer;
  sniffer.AddRule(Sniffer::RestrictDestinations({Cidr::Host(Ipv4Addr(10, 0, 0, 10))}));
  EXPECT_FALSE(sniffer.Inspect({Ipv4Addr(), Ipv4Addr(10, 0, 0, 10), 80, "x"}, 0).blocked);
  EXPECT_TRUE(sniffer.Inspect({Ipv4Addr(), Ipv4Addr(203, 0, 113, 66), 80, "x"}, 0).blocked);
  // Widening (broker grant) unblocks the new destination.
  sniffer.WidenWhitelist(Cidr::Host(Ipv4Addr(203, 0, 113, 66)));
  EXPECT_FALSE(sniffer.Inspect({Ipv4Addr(), Ipv4Addr(203, 0, 113, 66), 80, "x"}, 0).blocked);
}

class NetStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_.AddEndpoint("server", kServer);
    fabric_.AddService(kServer, 80, [](const Packet& p) {
      return "echo:" + std::to_string(p.payload.size());
    });
    NetNsPayload& ns = stack_.namespaces().GetOrCreate(kNsId);
    ns.AddDevice("eth0", Ipv4Addr(10, 200, 0, 1));
    ns.firewall.set_default_policy(FwAction::kDrop);
  }

  static constexpr witos::NsId kNsId = 7;
  const Ipv4Addr kServer{Ipv4Addr(10, 0, 0, 10)};
  Network fabric_;
  NetStack stack_{&fabric_};
};

TEST_F(NetStackTest, NoRouteUnreachable) {
  EXPECT_EQ(stack_.Connect(kNsId, kServer, 80, 0).error(), witos::Err::kNetUnreach);
}

TEST_F(NetStackTest, FirewallDropsUnlistedDestination) {
  NetNsPayload& ns = *stack_.namespaces().Find(kNsId);
  ns.AddRoute(Cidr::Any(), "eth0");
  EXPECT_EQ(stack_.Connect(kNsId, kServer, 80, 0).error(), witos::Err::kHostUnreach);
}

TEST_F(NetStackTest, AllowedEndpointConnectsAndEchoes) {
  stack_.namespaces().Find(kNsId)->AllowEndpoint(kServer, 80, "server");
  auto resp = stack_.Request(kNsId, kServer, 80, "hello", 0);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(*resp, "echo:5");
}

TEST_F(NetStackTest, ConnectionRefusedOnClosedPort) {
  stack_.namespaces().Find(kNsId)->AllowEndpoint(kServer, 0, "server");
  EXPECT_EQ(stack_.Connect(kNsId, kServer, 9999, 0).error(), witos::Err::kConnRefused);
}

TEST_F(NetStackTest, SnifferBlocksExfiltrationOnSend) {
  NetNsPayload& ns = *stack_.namespaces().Find(kNsId);
  ns.AllowEndpoint(kServer, 80, "server");
  ns.sniffer = std::make_shared<Sniffer>();
  ns.sniffer->AddRule(Sniffer::BlockFileSignatures());
  auto conn = stack_.Connect(kNsId, kServer, 80, 0);
  ASSERT_TRUE(conn.ok());
  // Innocent request passes.
  EXPECT_TRUE(stack_.Send(*conn, "GET /").ok());
  // A stolen document on the wire is dropped.
  EXPECT_EQ(stack_.Send(*conn, std::string("PK\x03\x04") + "payroll").error(),
            witos::Err::kTimedOut);
  EXPECT_EQ(ns.sniffer->blocked_count(), 1u);
}

TEST_F(NetStackTest, CloseInvalidatesConnection) {
  stack_.namespaces().Find(kNsId)->AllowEndpoint(kServer, 80, "server");
  auto conn = stack_.Connect(kNsId, kServer, 80, 0);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(stack_.Close(*conn).ok());
  EXPECT_EQ(stack_.Send(*conn, "x").error(), witos::Err::kNotConn);
  EXPECT_EQ(stack_.Close(*conn).error(), witos::Err::kNotConn);
}

TEST_F(NetStackTest, SeparateNamespacesHaveSeparateViews) {
  stack_.namespaces().Find(kNsId)->AllowEndpoint(kServer, 80, "server");
  witos::NsId other = 8;
  NetNsPayload& other_ns = stack_.namespaces().GetOrCreate(other);
  other_ns.AddDevice("eth0", Ipv4Addr(10, 200, 0, 2));
  other_ns.firewall.set_default_policy(FwAction::kDrop);
  EXPECT_TRUE(stack_.Request(kNsId, kServer, 80, "x", 0).ok());
  EXPECT_FALSE(stack_.Request(other, kServer, 80, "x", 0).ok());
}

}  // namespace
}  // namespace witnet
