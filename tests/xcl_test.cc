// Tests for the exclusion (XCL) namespace — the paper's new kernel
// namespace (§5.6): excluded subtrees are inaccessible to member processes
// "disregarding the user privileges", even when the MNT namespace is shared
// with the host.

#include <gtest/gtest.h>

#include "src/os/kernel.h"

namespace witos {
namespace {

class XclTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kernel_.root_fs().ProvisionFile("/home/user/secret.txt", "classified");
    kernel_.root_fs().ProvisionFile("/home/user/sub/deep.txt", "nested");
    kernel_.root_fs().ProvisionFile("/var/ok.txt", "fine");
  }
  Kernel kernel_{"host"};
};

TEST_F(XclTest, CloneXclInheritsParentTable) {
  Pid parent = *kernel_.Clone(1, "parent", kCloneNewXcl);
  ASSERT_TRUE(kernel_.XclAdd(parent, "/home/user").ok());
  Pid child = *kernel_.Clone(parent, "child", kCloneNewXcl);
  auto table = kernel_.XclList(child);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->size(), 1u);
  EXPECT_EQ((*table)[0], "/home/user");
}

TEST_F(XclTest, ExclusionBlocksRootDespiteSharedMnt) {
  // The contained admin shares the host MNT namespace — no chroot, no ITFS —
  // exactly the scenario XCL exists for.
  Pid admin = *kernel_.Clone(1, "admin", kCloneNewXcl);
  ASSERT_TRUE(kernel_.XclAdd(admin, "/home/user").ok());
  // Superuser privileges do not help.
  EXPECT_EQ(kernel_.ReadFile(admin, "/home/user/secret.txt").error(), Err::kAcces);
  EXPECT_EQ(kernel_.ReadFile(admin, "/home/user/sub/deep.txt").error(), Err::kAcces);
  EXPECT_EQ(kernel_.ReadDir(admin, "/home/user").error(), Err::kAcces);
  EXPECT_EQ(kernel_.WriteFile(admin, "/home/user/new.txt", "x").error(), Err::kAcces);
  // Everything else still works with full privileges.
  EXPECT_EQ(*kernel_.ReadFile(admin, "/var/ok.txt"), "fine");
  // The host is unaffected.
  EXPECT_EQ(*kernel_.ReadFile(1, "/home/user/secret.txt"), "classified");
}

TEST_F(XclTest, DotDotAndSymlinkCannotBypassExclusion) {
  Pid admin = *kernel_.Clone(1, "admin", kCloneNewXcl);
  ASSERT_TRUE(kernel_.XclAdd(admin, "/home/user").ok());
  EXPECT_EQ(kernel_.ReadFile(admin, "/var/../home/user/secret.txt").error(), Err::kAcces);
  // A symlink pointing into the excluded subtree is caught after resolution.
  ASSERT_TRUE(kernel_.SymLink(1, "/home/user/secret.txt", "/tmp/sneaky").ok());
  EXPECT_EQ(kernel_.ReadFile(admin, "/tmp/sneaky").error(), Err::kAcces);
}

TEST_F(XclTest, ExclusionHitsAreAudited) {
  Pid admin = *kernel_.Clone(1, "admin", kCloneNewXcl);
  ASSERT_TRUE(kernel_.XclAdd(admin, "/home/user").ok());
  size_t before = kernel_.audit().CountEvent(AuditEvent::kXclDenied);
  (void)kernel_.ReadFile(admin, "/home/user/secret.txt");
  EXPECT_GT(kernel_.audit().CountEvent(AuditEvent::kXclDenied), before);
}

TEST_F(XclTest, AddRemoveSyscalls) {
  Pid admin = *kernel_.Clone(1, "admin", kCloneNewXcl);
  ASSERT_TRUE(kernel_.XclAdd(admin, "/home/user").ok());
  ASSERT_TRUE(kernel_.XclRemove(admin, "/home/user").ok());
  EXPECT_EQ(*kernel_.ReadFile(admin, "/home/user/secret.txt"), "classified");
  EXPECT_EQ(kernel_.XclRemove(admin, "/nonexistent").error(), Err::kNoEnt);
}

TEST_F(XclTest, ModificationRequiresSysAdmin) {
  Pid admin = *kernel_.Clone(1, "admin", kCloneNewXcl);
  ASSERT_TRUE(kernel_.XclAdd(admin, "/home/user").ok());
  // ContainIT strips CAP_SYS_ADMIN from contained users: they cannot remove
  // their own exclusions.
  ASSERT_TRUE(kernel_.CapDrop(admin, {Capability::kSysAdmin}).ok());
  EXPECT_EQ(kernel_.XclRemove(admin, "/home/user").error(), Err::kPerm);
  EXPECT_EQ(kernel_.XclAdd(admin, "/etc").error(), Err::kPerm);
}

TEST_F(XclTest, InitialNamespaceHasEmptyTable) {
  auto table = kernel_.XclList(1);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->empty());
}

TEST_F(XclTest, SeparateXclNamespacesAreIndependent) {
  Pid a = *kernel_.Clone(1, "a", kCloneNewXcl);
  Pid b = *kernel_.Clone(1, "b", kCloneNewXcl);
  ASSERT_TRUE(kernel_.XclAdd(a, "/home/user").ok());
  EXPECT_EQ(kernel_.ReadFile(a, "/home/user/secret.txt").error(), Err::kAcces);
  EXPECT_EQ(*kernel_.ReadFile(b, "/home/user/secret.txt"), "classified");
}

TEST_F(XclTest, RenameCannotCrossExclusionBoundaryEitherWay) {
  Pid admin = *kernel_.Clone(1, "admin", kCloneNewXcl);
  ASSERT_TRUE(kernel_.XclAdd(admin, "/home/user").ok());
  size_t before = kernel_.audit().CountEvent(AuditEvent::kXclDenied);
  // Out of the excluded tree: would exfiltrate sealed content.
  EXPECT_EQ(kernel_.Rename(admin, "/home/user/secret.txt", "/var/stolen.txt").error(),
            Err::kAcces);
  // Into the excluded tree: would hide content where the admin's own session
  // can no longer account for it.
  EXPECT_EQ(kernel_.Rename(admin, "/var/ok.txt", "/home/user/planted.txt").error(),
            Err::kAcces);
  EXPECT_GE(kernel_.audit().CountEvent(AuditEvent::kXclDenied), before + 2);
  // Nothing moved: the host still sees both files where they were.
  EXPECT_EQ(*kernel_.ReadFile(1, "/home/user/secret.txt"), "classified");
  EXPECT_EQ(*kernel_.ReadFile(1, "/var/ok.txt"), "fine");
}

// Property sweep: for every excluded prefix, no path under it is readable
// while sibling paths remain readable.
class XclSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(XclSweep, ExcludedSubtreeSealed) {
  Kernel kernel("host");
  kernel.root_fs().ProvisionFile("/a/b/c/file", "1");
  kernel.root_fs().ProvisionFile("/a/b2/file", "2");
  kernel.root_fs().ProvisionFile("/d/file", "3");
  Pid admin = *kernel.Clone(1, "admin", kCloneNewXcl);
  ASSERT_TRUE(kernel.XclAdd(admin, GetParam()).ok());
  EXPECT_EQ(kernel.ReadFile(admin, GetParam() + "/file").error(), Err::kAcces);
  EXPECT_TRUE(kernel.ReadFile(admin, "/d/file").ok() || GetParam() == "/d");
}

INSTANTIATE_TEST_SUITE_P(Prefixes, XclSweep,
                         ::testing::Values("/a/b/c", "/a/b2", "/a", "/d"));

}  // namespace
}  // namespace witos
