// Tests for the hardening extensions: broker rate limiting, rootless
// containers, and the machine-local persisted audit spool.

#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/core/session.h"
#include "src/core/ticket_class.h"

namespace watchit {
namespace {

class HardeningTest : public ::testing::Test {
 protected:
  HardeningTest() : machine_(&cluster_.AddMachine("userpc", witnet::Ipv4Addr(10, 0, 1, 50))) {}

  Deployment Deploy(const std::string& cls, const std::string& id) {
    ClusterManager manager(&cluster_);
    Ticket ticket;
    ticket.id = id;
    ticket.target_machine = "userpc";
    ticket.assigned_class = cls;
    ticket.admin = "mallory";
    return *manager.Deploy(ticket);
  }

  Cluster cluster_;
  Machine* machine_;
};

TEST_F(HardeningTest, BrokerRateLimitThrottlesBursts) {
  witbroker::ClassPolicy throttled;
  throttled.allowed_verbs = {witbroker::kVerbPs};
  throttled.max_requests_per_window = 5;
  machine_->policy().SetPolicy("T-5", throttled);

  Deployment deployment = Deploy("T-5", "TKT-RL");
  AdminSession session(machine_, deployment.session, deployment.certificate, &cluster_.ca());
  ASSERT_TRUE(session.Login().ok());
  size_t granted = 0;
  for (int i = 0; i < 20; ++i) {
    granted += session.Pb(witbroker::kVerbPs, {}).ok() ? 1u : 0u;
  }
  EXPECT_EQ(granted, 5u);  // the burst was throttled
  // The denials are on the record for the anomaly pipeline.
  size_t denied = 0;
  for (const auto& event : machine_->broker().EventsSnapshot()) {
    denied += event.granted ? 0 : 1;
  }
  EXPECT_EQ(denied, 15u);
  // A new window refills the budget.
  machine_->kernel().clock().Advance(61ull * 1000000000ull);
  EXPECT_TRUE(session.Pb(witbroker::kVerbPs, {}).ok());
}

TEST_F(HardeningTest, RootlessContainerLosesPrivilegedReach) {
  witcontain::PerforatedContainerSpec spec = SpecForTicketClass(1);
  spec.map_root_to_host_root = false;
  cluster_.images().Register("T-1R", spec);
  machine_->kernel().root_fs().ProvisionFile("/home/user/private.txt", "user-owned", 1000,
                                             1000, 0600);

  Deployment deployment = Deploy("T-1R", "TKT-ROOTLESS");
  AdminSession session(machine_, deployment.session, deployment.certificate, &cluster_.ca());
  ASSERT_TRUE(session.Login().ok());
  // World-readable files in view still work...
  EXPECT_TRUE(session.ReadFile("/home/user/.matlab/license.lic").ok());
  // ...but the contained "root" has no power over other users' private
  // files: the ITFS invoker is an unprivileged host uid.
  EXPECT_EQ(session.ReadFile("/home/user/private.txt").error(), witos::Err::kAcces);
  EXPECT_FALSE(session.WriteFile("/home/user/private.txt", "x").ok());
}

TEST_F(HardeningTest, RootfulContainerKeepsPrivilegedReach) {
  machine_->kernel().root_fs().ProvisionFile("/home/user/private.txt", "user-owned", 1000,
                                             1000, 0600);
  Deployment deployment = Deploy("T-1", "TKT-ROOTFUL");
  AdminSession session(machine_, deployment.session, deployment.certificate, &cluster_.ca());
  ASSERT_TRUE(session.Login().ok());
  EXPECT_TRUE(session.ReadFile("/home/user/private.txt").ok());
}

TEST_F(HardeningTest, AuditTrailPersistedToGuardedSpool) {
  // Generate some audited activity.
  Deployment deployment = Deploy("T-6", "TKT-SPOOL");
  AdminSession session(machine_, deployment.session, deployment.certificate, &cluster_.ca());
  ASSERT_TRUE(session.Login().ok());
  (void)session.ReadFile("/home/user/documents/payroll.xlsx");  // denied, audited

  auto spool = machine_->kernel().root_fs().SlurpForTest("/var/log/watchit/audit.log");
  ASSERT_TRUE(spool.ok());
  EXPECT_NE(spool->find("CONTAINER_DEPLOYED"), std::string::npos);
  EXPECT_NE(spool->find("FILE_DENIED"), std::string::npos);
  // The spool cannot be rewritten through the kernel, by anyone.
  EXPECT_EQ(machine_->kernel().WriteFile(1, "/var/log/watchit/audit.log", "").error(),
            witos::Err::kPerm);
  // Its growth does not break the boot measurement.
  EXPECT_TRUE(machine_->tcb_intact());
}

}  // namespace
}  // namespace watchit
