// Process credentials: user/group identity plus a Linux-style capability set.
//
// The capability list is the subset relevant to WatchIT's threat analysis
// (Section 6 of the paper): CAP_SYS_CHROOT, CAP_SYS_PTRACE and CAP_MKNOD are
// the capabilities ContainIT strips from contained superusers, and
// CAP_SYS_RAWMEM is the *new* capability the paper introduces to gate
// /dev/mem and /dev/kmem.

#ifndef SRC_OS_CREDENTIALS_H_
#define SRC_OS_CREDENTIALS_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/os/types.h"

namespace witos {

enum class Capability : uint32_t {
  kSysChroot = 0,   // chroot(2)
  kSysPtrace,       // ptrace(2)
  kMknod,           // mknod(2): create device special files
  kSysRawMem,       // NEW (paper §6.1): open /dev/mem, /dev/kmem
  kSysAdmin,        // mount(2), umount(2), setns(2)
  kSysBoot,         // reboot(2)
  kSysModule,       // load kernel modules (TCB change)
  kKill,            // signal processes owned by other users
  kNetAdmin,        // modify routes/firewall
  kChown,           // change file ownership arbitrarily
  kDacOverride,     // bypass file permission checks
  kSetuid,          // change uids
  kSysNice,         // scheduling
  kAuditWrite,      // append to the kernel audit log
  kMaxValue,        // sentinel: number of capabilities
};

std::string CapabilityName(Capability cap);

// A fixed-size capability bitset.
class CapabilitySet {
 public:
  CapabilitySet() = default;
  CapabilitySet(std::initializer_list<Capability> caps);

  // The full capability set a host root process holds.
  static CapabilitySet Full();
  static CapabilitySet Empty();

  bool Has(Capability cap) const;
  void Add(Capability cap);
  void Remove(Capability cap);

  // Set difference: the capabilities present here but absent in `other`.
  CapabilitySet Minus(const CapabilitySet& other) const;
  // Set intersection.
  CapabilitySet Intersect(const CapabilitySet& other) const;
  // True if every capability in this set is present in `other`.
  bool IsSubsetOf(const CapabilitySet& other) const;

  bool empty() const { return bits_ == 0; }
  size_t count() const;
  std::vector<Capability> ToList() const;
  std::string ToString() const;

  friend bool operator==(const CapabilitySet&, const CapabilitySet&) = default;

 private:
  uint32_t bits_ = 0;
};

// Identity + capabilities of a process. In a user-namespaced process, `uid`
// and `gid` are the in-namespace values; the UID namespace maps them to host
// values for permission checks against host-owned objects.
struct Credentials {
  Uid uid = kRootUid;
  Gid gid = kRootGid;
  std::vector<Gid> supplementary_gids;
  CapabilitySet caps = CapabilitySet::Full();

  bool IsRoot() const { return uid == kRootUid; }
  bool HasCap(Capability cap) const { return caps.Has(cap); }
  bool InGroup(Gid g) const;
};

// POSIX rwx permission check of `cred` against an object owned by
// (owner, group) with `mode`, requesting `want` (AccessBits mask).
// CAP_DAC_OVERRIDE bypasses the check, as on Linux.
bool CheckPosixAccess(const Credentials& cred, Uid owner, Gid group, Mode mode, uint32_t want);

}  // namespace witos

#endif  // SRC_OS_CREDENTIALS_H_
