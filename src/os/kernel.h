// Kernel: the syscall façade of the simulated machine.
//
// One Kernel instance models one machine: a process table, the namespace
// registry, the VFS, an audit log and a simulated clock. Syscalls are
// methods taking the calling process's host pid; each enforces the same
// capability and namespace rules the paper relies on:
//
//   * chroot(2)      -> CAP_SYS_CHROOT   (Attack 1 defence)
//   * ptrace(2)      -> CAP_SYS_PTRACE   (Attack 2 defence)
//   * mknod(2) dev   -> CAP_MKNOD        (Attack 3 defence)
//   * open /dev/mem  -> CAP_SYS_RAWMEM   (Attack 4 defence — the paper's new
//                                         capability)
//   * mount/setns    -> CAP_SYS_ADMIN
//   * reboot         -> CAP_SYS_BOOT
//   * module load    -> CAP_SYS_MODULE + TCB policy
//
// Writes to TCB-protected paths are denied at the VFS boundary via a guard
// hook installed by `watchit::Tcb` (Attack 5 defence).

#ifndef SRC_OS_KERNEL_H_
#define SRC_OS_KERNEL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/os/audit.h"
#include "src/os/clock.h"
#include "src/os/memfs.h"
#include "src/os/pagecache.h"
#include "src/os/process.h"
#include "src/os/vfs.h"

namespace witos {

// Well-known device numbers.
inline constexpr DeviceId kDevNull = 3;
inline constexpr DeviceId kDevZero = 5;
inline constexpr DeviceId kDevMem = 1;
inline constexpr DeviceId kDevKmem = 2;

struct UnameInfo {
  std::string sysname = "Linux";
  std::string release = "4.6.3-watchit";
  std::string hostname;
};

class Kernel {
 public:
  // Boots a machine: creates the initial namespaces, a root filesystem
  // (ext4-modelled MemFs) mounted at "/", and pid 1 ("init", root).
  explicit Kernel(std::string hostname = "lnx-host");

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- Introspection --------------------------------------------------------
  SimClock& clock() { return clock_; }
  AuditLog& audit() { return audit_; }
  PageCache& page_cache() { return page_cache_; }
  // /proc/sys/vm/drop_caches equivalent, for cold-cache benchmarking.
  void DropCaches() { page_cache_.Clear(); }
  NamespaceRegistry& namespaces() { return registry_; }
  CgroupRegistry& cgroups() { return cgroups_; }
  Vfs& vfs() { return vfs_; }
  MemFs& root_fs() { return *root_fs_; }
  std::shared_ptr<MemFs> root_fs_ptr() { return root_fs_; }
  Pid init_pid() const { return 1; }

  Process* FindProcess(Pid host_pid);
  const Process* FindProcess(Pid host_pid) const;
  bool ProcessAlive(Pid host_pid) const;
  size_t process_count() const { return procs_.size(); }

  // --- Process lifecycle ----------------------------------------------------

  // clone(2): creates a child of `parent`. `flags` is a CloneFlags mask;
  // requesting any new namespace requires CAP_SYS_ADMIN.
  Result<Pid> Clone(Pid parent, const std::string& name, uint32_t flags);
  Status Exit(Pid pid, int code);
  // Reaps one zombie child; returns its host pid or ECHILD.
  Result<Pid> Wait(Pid pid);
  // kill(2): `target` is a pid *in the caller's PID namespace*.
  Status Kill(Pid pid, Pid target_local);
  // ps: processes visible from the caller's PID namespace, with translated
  // pids.
  Result<std::vector<ProcessInfo>> ListProcesses(Pid pid) const;
  // Translates a pid in the caller's namespace to a host pid.
  Result<Pid> LocalToHostPid(Pid caller, Pid local) const;
  Result<Pid> HostToLocalPid(Pid caller, Pid host) const;

  // setns(2): joins `pid` to the namespace of type `type` that `target_host`
  // belongs to. Requires CAP_SYS_ADMIN. This is what nsenter uses.
  Status Setns(Pid pid, Pid target_host, NsType type);
  // unshare(2)-style: moves `pid` into freshly created namespaces.
  Status Unshare(Pid pid, uint32_t flags);

  // Moves `pid` into cgroup `group` (requires CAP_SYS_ADMIN). Children
  // inherit their parent's cgroup; clone fails with EAGAIN when the target
  // group's pids limit is exhausted (fork-bomb containment).
  Status AssignCgroup(Pid pid, CgroupId group);

  // Credentials.
  Status Setuid(Pid pid, Uid uid);
  // Drops capabilities (cannot add).
  Status CapDrop(Pid pid, const CapabilitySet& to_drop);

  // Registers a hook called with the host pid of any process that dies (via
  // Exit or Kill). ContainIT's watchdog uses this (Attack 7 defence).
  using DeathHook = std::function<void(Pid)>;
  void AddDeathHook(DeathHook hook);

  // --- Filesystem syscalls --------------------------------------------------
  Result<Fd> Open(Pid pid, const std::string& path, uint32_t flags, Mode mode = 0644);
  Status Close(Pid pid, Fd fd);
  Result<std::string> Read(Pid pid, Fd fd, size_t size);
  Result<size_t> Write(Pid pid, Fd fd, const std::string& data);
  Result<uint64_t> Lseek(Pid pid, Fd fd, uint64_t offset);
  Result<Stat> StatPath(Pid pid, const std::string& path);   // follows symlinks
  Result<Stat> LstatPath(Pid pid, const std::string& path);  // does not
  Result<std::vector<DirEntry>> ReadDir(Pid pid, const std::string& path);
  Status MkDir(Pid pid, const std::string& path, Mode mode = kModeDefaultDir);
  Status RmDir(Pid pid, const std::string& path);
  Status Unlink(Pid pid, const std::string& path);
  Status Rename(Pid pid, const std::string& from, const std::string& to);
  Status Chmod(Pid pid, const std::string& path, Mode mode);
  Status Chown(Pid pid, const std::string& path, Uid uid, Gid gid);
  Status Truncate(Pid pid, const std::string& path, uint64_t size);
  // link(2): creates a second name for a file (same filesystem only).
  Status Link(Pid pid, const std::string& oldpath, const std::string& newpath);
  Status SymLink(Pid pid, const std::string& target, const std::string& linkpath);
  Result<std::string> ReadLink(Pid pid, const std::string& path);
  // mknod(2): creating device nodes requires CAP_MKNOD.
  Status MkNod(Pid pid, const std::string& path, FileType type, DeviceId rdev, Mode mode = 0600);

  // Convenience wrappers (open/read|write/close in one call).
  Result<std::string> ReadFile(Pid pid, const std::string& path);
  Status WriteFile(Pid pid, const std::string& path, const std::string& data,
                   bool append = false);

  // --- Mounts, chroot, cwd --------------------------------------------------
  // mount(2): mounts `fs` at `mountpoint` in the caller's MNT namespace.
  Status Mount(Pid pid, std::shared_ptr<Filesystem> fs, const std::string& mountpoint,
               const std::string& source, bool read_only = false);
  // bind mount: exposes the subtree of `fs` rooted at `fs_root`.
  Status BindMount(Pid pid, std::shared_ptr<Filesystem> fs, const std::string& fs_root,
                   const std::string& mountpoint, const std::string& source,
                   bool read_only = false);
  Status Umount(Pid pid, const std::string& mountpoint);
  // The caller's view of its mounted-filesystem table (Figure 5a/5c).
  Result<std::vector<MountEntry>> MountTable(Pid pid) const;

  Status Chroot(Pid pid, const std::string& path);
  Status Chdir(Pid pid, const std::string& path);
  Result<std::string> GetCwd(Pid pid) const;

  // --- UTS / IPC ------------------------------------------------------------
  Result<std::string> GetHostname(Pid pid) const;
  Status SetHostname(Pid pid, const std::string& hostname);
  Result<UnameInfo> Uname(Pid pid) const;
  Status ShmPut(Pid pid, const std::string& key, const std::string& value);
  Result<std::string> ShmGet(Pid pid, const std::string& key);

  // --- XCL namespace (paper §5.6) -------------------------------------------
  // Adds/removes an entry in the caller's exclusion-directory table. The
  // path is vfs-space (the caller is expected to be a host-side supervisor).
  // Requires CAP_SYS_ADMIN.
  Status XclAdd(Pid pid, const std::string& vfs_path);
  Status XclRemove(Pid pid, const std::string& vfs_path);
  Result<std::vector<std::string>> XclList(Pid pid) const;

  // --- Dangerous operations gated by capabilities ----------------------------
  // ptrace(2): requires CAP_SYS_PTRACE (ptrace_scope=2 model).
  Status Ptrace(Pid pid, Pid target_local);
  // reboot(2): requires CAP_SYS_BOOT. Invokes the reboot hook if set.
  Status Reboot(Pid pid);
  // Kernel module load: requires CAP_SYS_MODULE; always a TCB change.
  Status LoadModule(Pid pid, const std::string& name);

  void SetRebootHook(std::function<void()> hook) { reboot_hook_ = std::move(hook); }
  // Guard invoked before any mutation of a vfs path; returning false denies
  // the operation with EPERM and logs a TCB violation.
  using WriteGuard = std::function<bool(const std::string& vfs_path, const Credentials& cred)>;
  void SetWriteGuard(WriteGuard guard) { write_guard_ = std::move(guard); }

  // Host-mapped credentials of a process (uid/gid translated through its UID
  // namespace). This is what every permission check uses.
  Result<Credentials> HostCredentials(Pid pid) const;

  // Builds the VfsContext for a process — exposed for witfs/witcontain.
  Result<VfsContext> ContextFor(Pid pid) const;

  std::vector<std::string> loaded_modules() const { return loaded_modules_; }

 private:
  Process& Proc(Pid pid);
  const Process& Proc(Pid pid) const;
  Status CheckAlive(Pid pid) const;
  void ChargeSyscall();
  Status RequireCap(const Process& proc, Capability cap, const char* what);
  // Registers `pid` in `pid_ns` and every ancestor namespace, allocating
  // local pids.
  void RegisterPidInNamespaces(Pid host_pid, NsId pid_ns);
  void ReleaseNamespaces(Process& proc);
  void NotifyDeath(Pid pid);
  Status GuardWrite(const Process& proc, const std::string& vfs_path, const Credentials& cred);
  Result<std::string> DeviceRead(DeviceId rdev, size_t size);

  SimClock clock_;
  AuditLog audit_;
  PageCache page_cache_;
  NamespaceRegistry registry_;
  CgroupRegistry cgroups_;
  Vfs vfs_;
  std::shared_ptr<MemFs> root_fs_;
  std::map<Pid, Process> procs_;
  Pid next_pid_ = 1;
  std::vector<DeathHook> death_hooks_;
  std::function<void()> reboot_hook_;
  WriteGuard write_guard_;
  std::vector<std::string> loaded_modules_;
};

}  // namespace witos

#endif  // SRC_OS_KERNEL_H_
