#include <string>

#include "src/os/types.h"

namespace witos {

std::string ErrName(Err e) {
  switch (e) {
    case Err::kOk:
      return "OK";
    case Err::kPerm:
      return "EPERM";
    case Err::kNoEnt:
      return "ENOENT";
    case Err::kSrch:
      return "ESRCH";
    case Err::kIntr:
      return "EINTR";
    case Err::kIo:
      return "EIO";
    case Err::kBadf:
      return "EBADF";
    case Err::kChild:
      return "ECHILD";
    case Err::kAcces:
      return "EACCES";
    case Err::kBusy:
      return "EBUSY";
    case Err::kExist:
      return "EEXIST";
    case Err::kXdev:
      return "EXDEV";
    case Err::kNoDev:
      return "ENODEV";
    case Err::kNotDir:
      return "ENOTDIR";
    case Err::kIsDir:
      return "EISDIR";
    case Err::kInval:
      return "EINVAL";
    case Err::kNFile:
      return "ENFILE";
    case Err::kMFile:
      return "EMFILE";
    case Err::kTxtBsy:
      return "ETXTBSY";
    case Err::kFBig:
      return "EFBIG";
    case Err::kNoSpc:
      return "ENOSPC";
    case Err::kRoFs:
      return "EROFS";
    case Err::kMLink:
      return "EMLINK";
    case Err::kPipe:
      return "EPIPE";
    case Err::kNameTooLong:
      return "ENAMETOOLONG";
    case Err::kNoSys:
      return "ENOSYS";
    case Err::kNotEmpty:
      return "ENOTEMPTY";
    case Err::kLoop:
      return "ELOOP";
    case Err::kConnRefused:
      return "ECONNREFUSED";
    case Err::kNetUnreach:
      return "ENETUNREACH";
    case Err::kHostUnreach:
      return "EHOSTUNREACH";
    case Err::kTimedOut:
      return "ETIMEDOUT";
    case Err::kNotConn:
      return "ENOTCONN";
    case Err::kAddrInUse:
      return "EADDRINUSE";
    case Err::kNoTty:
      return "ENOTTY";
    case Err::kNoMem:
      return "ENOMEM";
    case Err::kAgain:
      return "EAGAIN";
  }
  return "E?";
}

Err ErrFromName(const std::string& name, Err fallback) {
  for (int code = 0; code < kErrCodeCount; ++code) {
    Err e = static_cast<Err>(code);
    if (ErrName(e) == name) {
      return e;
    }
  }
  return fallback;
}

std::string ErrMessage(Err e) {
  switch (e) {
    case Err::kOk:
      return "Success";
    case Err::kPerm:
      return "Operation not permitted";
    case Err::kNoEnt:
      return "No such file or directory";
    case Err::kSrch:
      return "No such process";
    case Err::kAcces:
      return "Permission denied";
    case Err::kExist:
      return "File exists";
    case Err::kNotDir:
      return "Not a directory";
    case Err::kIsDir:
      return "Is a directory";
    case Err::kInval:
      return "Invalid argument";
    case Err::kBadf:
      return "Bad file descriptor";
    case Err::kBusy:
      return "Device or resource busy";
    case Err::kNotEmpty:
      return "Directory not empty";
    case Err::kRoFs:
      return "Read-only file system";
    case Err::kNoSys:
      return "Function not implemented";
    case Err::kConnRefused:
      return "Connection refused";
    case Err::kNetUnreach:
      return "Network is unreachable";
    case Err::kHostUnreach:
      return "No route to host";
    case Err::kNoDev:
      return "No such device";
    case Err::kLoop:
      return "Too many levels of symbolic links";
    case Err::kNameTooLong:
      return "File name too long";
    default:
      return ErrName(e);
  }
}

}  // namespace witos
