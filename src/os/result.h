// Result<T>: value-or-error return type used by every fallible operation in
// the simulator. Expected failures (ENOENT, EACCES, ...) are data, not
// exceptions, matching how a kernel reports errors to callers.

#ifndef SRC_OS_RESULT_H_
#define SRC_OS_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/os/types.h"

namespace witos {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or from an error code keeps call
  // sites terse: `return Err::kNoEnt;` / `return stat;`.
  Result(T value) : value_(std::move(value)), err_(Err::kOk) {}  // NOLINT
  Result(Err err) : err_(err) { assert(err != Err::kOk); }       // NOLINT

  bool ok() const { return err_ == Err::kOk; }
  Err error() const { return err_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Err err_;
};

// Specialization-free void variant.
class [[nodiscard]] Status {
 public:
  Status() : err_(Err::kOk) {}
  Status(Err err) : err_(err) {}  // NOLINT

  static Status Ok() { return Status(); }

  bool ok() const { return err_ == Err::kOk; }
  Err error() const { return err_; }

 private:
  Err err_;
};

// Propagate an error from an expression yielding Result<T>/Status.
#define WITOS_RETURN_IF_ERROR(expr)         \
  do {                                      \
    auto _witos_status = (expr);            \
    if (!_witos_status.ok()) {              \
      return _witos_status.error();         \
    }                                       \
  } while (0)

#define WITOS_CONCAT_INNER(a, b) a##b
#define WITOS_CONCAT(a, b) WITOS_CONCAT_INNER(a, b)

#define WITOS_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) {                                  \
    return var.error();                             \
  }                                                 \
  lhs = std::move(*var)

// Evaluate expr (Result<T>), propagate error, else bind the value.
#define WITOS_ASSIGN_OR_RETURN(lhs, expr) \
  WITOS_ASSIGN_OR_RETURN_IMPL(WITOS_CONCAT(_witos_res_, __LINE__), lhs, expr)

}  // namespace witos

#endif  // SRC_OS_RESULT_H_
