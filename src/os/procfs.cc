#include "src/os/procfs.h"

#include <charconv>

#include "src/os/kernel.h"
#include "src/os/path.h"

namespace witos {

namespace {

// Parses a path component as a pid; returns kNoPid on failure.
Pid ParsePid(const std::string& comp) {
  Pid pid = kNoPid;
  auto [ptr, ec] = std::from_chars(comp.data(), comp.data() + comp.size(), pid);
  if (ec != std::errc() || ptr != comp.data() + comp.size()) {
    return kNoPid;
  }
  return pid;
}

Stat DirStat() {
  Stat st;
  st.type = FileType::kDirectory;
  st.mode = 0555;
  return st;
}

Stat FileStat(uint64_t size) {
  Stat st;
  st.type = FileType::kRegular;
  st.mode = 0444;
  st.size = size;
  return st;
}

}  // namespace

// Lists the processes visible in this procfs instance's PID namespace.
static std::vector<ProcessInfo> VisibleProcesses(Kernel* kernel, NsId pid_ns) {
  std::vector<ProcessInfo> out;
  auto& registry = kernel->namespaces();
  if (!registry.Exists(pid_ns)) {
    return out;
  }
  const PidNamespace& view = registry.Pidns(pid_ns);
  for (const auto& [host_pid, local_pid] : view.host_to_local) {
    const Process* proc = kernel->FindProcess(host_pid);
    if (proc == nullptr) {
      continue;
    }
    if (!registry.PidNsIsDescendant(proc->ns.Get(NsType::kPid), pid_ns)) {
      continue;
    }
    ProcessInfo info;
    info.pid = local_pid;
    info.host_pid = host_pid;
    info.name = proc->name;
    info.uid = proc->cred.uid;
    info.state = proc->state;
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::string> ProcFs::Render(const std::string& path) const {
  auto parts = SplitPath(path);
  if (parts.size() == 2) {
    Pid local = ParsePid(parts[0]);
    if (local == kNoPid) {
      return Err::kNoEnt;
    }
    for (const auto& info : VisibleProcesses(kernel_, pid_ns_)) {
      if (info.pid != local) {
        continue;
      }
      if (parts[1] == "status") {
        return "Name:\t" + info.name + "\nPid:\t" + std::to_string(info.pid) + "\nUid:\t" +
               std::to_string(info.uid) + "\nState:\t" +
               (info.state == ProcState::kRunning ? "R (running)" : "Z (zombie)") + "\n";
      }
      if (parts[1] == "cmdline") {
        return info.name + "\n";
      }
      if (parts[1] == "ns") {
        // Mirrors /proc/<pid>/ns/*: one "type:[id]" line per namespace.
        const Process* proc = kernel_->FindProcess(info.host_pid);
        if (proc == nullptr) {
          return Err::kNoEnt;
        }
        std::string out;
        for (size_t t = 0; t < kNsTypeCount; ++t) {
          out += NsTypeName(static_cast<NsType>(t)) + ":[" +
                 std::to_string(proc->ns.ids[t]) + "]\n";
        }
        return out;
      }
      return Err::kNoEnt;
    }
    return Err::kNoEnt;
  }
  if (parts.size() == 1 && parts[0] == "uptime") {
    return std::to_string(kernel_->clock().now_ns() / 1000000000ull) + "\n";
  }
  return Err::kNoEnt;
}

Result<Stat> ProcFs::Open(const std::string& path, uint32_t flags, Mode /*mode*/,
                          const Credentials& cred) {
  if ((flags & (kOpenWrite | kOpenCreate | kOpenTrunc | kOpenAppend)) != 0) {
    return Err::kRoFs;
  }
  return GetAttr(path, cred);
}

Result<size_t> ProcFs::ReadAt(const std::string& path, uint64_t offset, size_t size,
                              std::string* out, const Credentials& /*cred*/) {
  WITOS_ASSIGN_OR_RETURN(std::string content, Render(path));
  out->clear();
  if (offset >= content.size()) {
    return size_t{0};
  }
  size_t n = std::min(size, content.size() - static_cast<size_t>(offset));
  out->assign(content, static_cast<size_t>(offset), n);
  return n;
}

Result<size_t> ProcFs::WriteAt(const std::string&, uint64_t, const std::string&,
                               const Credentials&) {
  return Err::kRoFs;
}

Status ProcFs::Truncate(const std::string&, uint64_t, const Credentials&) { return Err::kRoFs; }

Result<Stat> ProcFs::GetAttr(const std::string& path, const Credentials& /*cred*/) {
  auto parts = SplitPath(path);
  if (parts.empty()) {
    return DirStat();
  }
  if (parts.size() == 1) {
    if (parts[0] == "uptime") {
      WITOS_ASSIGN_OR_RETURN(std::string content, Render(path));
      return FileStat(content.size());
    }
    Pid local = ParsePid(parts[0]);
    if (local == kNoPid) {
      return Err::kNoEnt;
    }
    for (const auto& info : VisibleProcesses(kernel_, pid_ns_)) {
      if (info.pid == local) {
        return DirStat();
      }
    }
    return Err::kNoEnt;
  }
  WITOS_ASSIGN_OR_RETURN(std::string content, Render(path));
  return FileStat(content.size());
}

Result<std::vector<DirEntry>> ProcFs::ReadDir(const std::string& path,
                                              const Credentials& /*cred*/) {
  auto parts = SplitPath(path);
  std::vector<DirEntry> out;
  if (parts.empty()) {
    for (const auto& info : VisibleProcesses(kernel_, pid_ns_)) {
      out.push_back({std::to_string(info.pid), FileType::kDirectory, 0});
    }
    out.push_back({"uptime", FileType::kRegular, 0});
    return out;
  }
  if (parts.size() == 1) {
    Pid local = ParsePid(parts[0]);
    if (local == kNoPid) {
      return Err::kNotDir;
    }
    for (const auto& info : VisibleProcesses(kernel_, pid_ns_)) {
      if (info.pid == local) {
        out.push_back({"status", FileType::kRegular, 0});
        out.push_back({"cmdline", FileType::kRegular, 0});
        out.push_back({"ns", FileType::kRegular, 0});
        return out;
      }
    }
    return Err::kNoEnt;
  }
  return Err::kNotDir;
}

Status ProcFs::MkDir(const std::string&, Mode, const Credentials&) { return Err::kRoFs; }
Status ProcFs::Unlink(const std::string&, const Credentials&) { return Err::kRoFs; }
Status ProcFs::RmDir(const std::string&, const Credentials&) { return Err::kRoFs; }
Status ProcFs::Rename(const std::string&, const std::string&, const Credentials&) {
  return Err::kRoFs;
}
Status ProcFs::Chmod(const std::string&, Mode, const Credentials&) { return Err::kRoFs; }
Status ProcFs::Chown(const std::string&, Uid, Gid, const Credentials&) { return Err::kRoFs; }
Status ProcFs::MkNod(const std::string&, FileType, DeviceId, Mode, const Credentials&) {
  return Err::kRoFs;
}
Status ProcFs::SymLink(const std::string&, const std::string&, const Credentials&) {
  return Err::kRoFs;
}
Result<std::string> ProcFs::ReadLink(const std::string&, const Credentials&) {
  return Err::kInval;
}

Result<FsStats> ProcFs::StatFs() const { return FsStats{}; }

}  // namespace witos
