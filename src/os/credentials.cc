#include "src/os/credentials.h"

#include <algorithm>
#include <bit>

namespace witos {

namespace {
constexpr uint32_t kAllCapsMask =
    (1u << static_cast<uint32_t>(Capability::kMaxValue)) - 1u;
}  // namespace

std::string CapabilityName(Capability cap) {
  switch (cap) {
    case Capability::kSysChroot:
      return "CAP_SYS_CHROOT";
    case Capability::kSysPtrace:
      return "CAP_SYS_PTRACE";
    case Capability::kMknod:
      return "CAP_MKNOD";
    case Capability::kSysRawMem:
      return "CAP_SYS_RAWMEM";
    case Capability::kSysAdmin:
      return "CAP_SYS_ADMIN";
    case Capability::kSysBoot:
      return "CAP_SYS_BOOT";
    case Capability::kSysModule:
      return "CAP_SYS_MODULE";
    case Capability::kKill:
      return "CAP_KILL";
    case Capability::kNetAdmin:
      return "CAP_NET_ADMIN";
    case Capability::kChown:
      return "CAP_CHOWN";
    case Capability::kDacOverride:
      return "CAP_DAC_OVERRIDE";
    case Capability::kSetuid:
      return "CAP_SETUID";
    case Capability::kSysNice:
      return "CAP_SYS_NICE";
    case Capability::kAuditWrite:
      return "CAP_AUDIT_WRITE";
    case Capability::kMaxValue:
      break;
  }
  return "CAP_?";
}

CapabilitySet::CapabilitySet(std::initializer_list<Capability> caps) {
  for (Capability cap : caps) {
    Add(cap);
  }
}

CapabilitySet CapabilitySet::Full() {
  CapabilitySet set;
  set.bits_ = kAllCapsMask;
  return set;
}

CapabilitySet CapabilitySet::Empty() { return CapabilitySet(); }

bool CapabilitySet::Has(Capability cap) const {
  return (bits_ & (1u << static_cast<uint32_t>(cap))) != 0;
}

void CapabilitySet::Add(Capability cap) { bits_ |= 1u << static_cast<uint32_t>(cap); }

void CapabilitySet::Remove(Capability cap) { bits_ &= ~(1u << static_cast<uint32_t>(cap)); }

CapabilitySet CapabilitySet::Minus(const CapabilitySet& other) const {
  CapabilitySet out;
  out.bits_ = bits_ & ~other.bits_;
  return out;
}

CapabilitySet CapabilitySet::Intersect(const CapabilitySet& other) const {
  CapabilitySet out;
  out.bits_ = bits_ & other.bits_;
  return out;
}

bool CapabilitySet::IsSubsetOf(const CapabilitySet& other) const {
  return (bits_ & ~other.bits_) == 0;
}

size_t CapabilitySet::count() const { return static_cast<size_t>(std::popcount(bits_)); }

std::vector<Capability> CapabilitySet::ToList() const {
  std::vector<Capability> out;
  for (uint32_t i = 0; i < static_cast<uint32_t>(Capability::kMaxValue); ++i) {
    auto cap = static_cast<Capability>(i);
    if (Has(cap)) {
      out.push_back(cap);
    }
  }
  return out;
}

std::string CapabilitySet::ToString() const {
  std::string out;
  for (Capability cap : ToList()) {
    if (!out.empty()) {
      out += ",";
    }
    out += CapabilityName(cap);
  }
  return out.empty() ? "(none)" : out;
}

bool Credentials::InGroup(Gid g) const {
  if (gid == g) {
    return true;
  }
  return std::find(supplementary_gids.begin(), supplementary_gids.end(), g) !=
         supplementary_gids.end();
}

bool CheckPosixAccess(const Credentials& cred, Uid owner, Gid group, Mode mode, uint32_t want) {
  if (cred.HasCap(Capability::kDacOverride)) {
    // CAP_DAC_OVERRIDE bypasses read/write checks always; exec requires at
    // least one exec bit somewhere, as on Linux.
    if ((want & kAccessExec) == 0) {
      return true;
    }
    return (mode & 0111) != 0;
  }
  uint32_t granted;
  if (cred.uid == owner) {
    granted = (mode >> 6) & 07u;
  } else if (cred.InGroup(group)) {
    granted = (mode >> 3) & 07u;
  } else {
    granted = mode & 07u;
  }
  return (want & ~granted) == 0;
}

}  // namespace witos
