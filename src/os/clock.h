// Simulated monotonic clock.
//
// The kernel charges every modelled operation a cost in nanosecond "ticks";
// benchmarks and certificate expiry read the same clock. Keeping time
// simulated makes every experiment deterministic and lets the Figure 9
// bench model the FUSE cost structure explicitly.
//
// Pause()/Resume() support write-back semantics: data writes are absorbed
// by the page cache and flushed asynchronously, so the synchronous
// write-through the simulator performs for correctness must not charge
// foreground time.

#ifndef SRC_OS_CLOCK_H_
#define SRC_OS_CLOCK_H_

#include <cstdint>

namespace witos {

class SimClock {
 public:
  uint64_t now_ns() const { return now_ns_; }

  void Advance(uint64_t delta_ns) {
    if (paused_ == 0) {
      now_ns_ += delta_ns;
    }
  }

  void Pause() { ++paused_; }
  void Resume() { --paused_; }

  // Cost model knobs. Magnitudes follow commodity hardware: a SATA-SSD-ish
  // disk path, page-cache-speed memory copies, and FUSE round trips that
  // include two context switches and a request copy. The Figure 9 bench
  // depends only on their ratios.
  struct CostModel {
    uint64_t syscall_ns = 300;               // trap + dispatch
    uint64_t fuse_crossing_ns = 14000;       // kernel->daemon->kernel round trip
    uint64_t fs_metadata_op_ns = 1200;       // lookup / getattr / readdir
    uint64_t fs_mutation_ns = 40000;         // create/unlink/rename: journal commit
    uint64_t fs_per_byte_tenth_ns = 33;      // 3.3 ns/B: ~300 MB/s disk streaming
    uint64_t cache_per_byte_tenth_ns = 3;    // 0.3 ns/B: page-cache copy
    uint64_t fuse_per_byte_tenth_ns = 1;     // 0.1 ns/B: extra request copy
    uint64_t signature_read_ns = 1800;       // head-of-file fetch setup
    uint64_t signature_scan_per_byte_tenth_ns = 30;  // 3 ns/B content classification
  };

  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }

 private:
  uint64_t now_ns_ = 0;
  int paused_ = 0;
  CostModel costs_;
};

// RAII pause guard.
class ClockPause {
 public:
  explicit ClockPause(SimClock* clock) : clock_(clock) { clock_->Pause(); }
  ~ClockPause() { clock_->Resume(); }
  ClockPause(const ClockPause&) = delete;
  ClockPause& operator=(const ClockPause&) = delete;

 private:
  SimClock* clock_;
};

}  // namespace witos

#endif  // SRC_OS_CLOCK_H_
