// Simulated monotonic clock.
//
// The kernel charges every modelled operation a cost in nanosecond "ticks";
// benchmarks and certificate expiry read the same clock. Keeping time
// simulated makes every experiment deterministic and lets the Figure 9
// bench model the FUSE cost structure explicitly.
//
// Pause()/Resume() support write-back semantics: data writes are absorbed
// by the page cache and flushed asynchronously, so the synchronous
// write-through the simulator performs for correctness must not charge
// foreground time.
//
// Threading rule (single-owner): a SimClock is NOT internally synchronized.
// At any moment at most one thread may Advance/Pause/Resume it; concurrent
// serving code (witserve::ServerPool) enforces this by serializing each
// shard's machines behind a shard mutex and declaring ownership with
// BindOwner()/ReleaseOwner() around the critical section. A mutation from a
// thread other than the bound owner trips an assert in debug builds and is
// always counted in ownership_violations(), which the pool surfaces in its
// stats so a violated run cannot pass silently.

#ifndef SRC_OS_CLOCK_H_
#define SRC_OS_CLOCK_H_

#include <atomic>
#include <cassert>
#include <cstdint>

namespace witos {

class SimClock {
 public:
  uint64_t now_ns() const { return now_ns_; }

  void Advance(uint64_t delta_ns) {
    CheckOwner();
    if (paused_ == 0) {
      now_ns_ += delta_ns;
    }
  }

  void Pause() {
    CheckOwner();
    ++paused_;
  }

  // Must pair with an earlier Pause(). An unmatched Resume() is a charging
  // bug (foreground time would leak into a paused region); it asserts in
  // debug builds, and in release builds it is counted and ignored rather
  // than letting paused_ underflow into "paused forever".
  void Resume() {
    CheckOwner();
    if (paused_ == 0) {
      resume_underflows_.fetch_add(1, std::memory_order_relaxed);
      assert(false && "SimClock::Resume() without a matching Pause()");
      return;
    }
    --paused_;
  }

  // Declares the calling thread the clock's single owner until
  // ReleaseOwner(). Unbound clocks (owner id 0) skip the check, so
  // single-threaded code never has to opt in.
  void BindOwner() {
    uint64_t self = ThisThreadId();
    uint64_t expected = 0;
    if (!owner_.compare_exchange_strong(expected, self, std::memory_order_acq_rel) &&
        expected != self) {
      ownership_violations_.fetch_add(1, std::memory_order_relaxed);
      assert(false && "SimClock::BindOwner() while owned by another thread");
    }
  }

  void ReleaseOwner() { owner_.store(0, std::memory_order_release); }

  // Diagnostics for the single-owner rule; both stay 0 in a correct run.
  uint64_t ownership_violations() const {
    return ownership_violations_.load(std::memory_order_relaxed);
  }
  uint64_t resume_underflows() const {
    return resume_underflows_.load(std::memory_order_relaxed);
  }

  // Cost model knobs. Magnitudes follow commodity hardware: a SATA-SSD-ish
  // disk path, page-cache-speed memory copies, and FUSE round trips that
  // include two context switches and a request copy. The Figure 9 bench
  // depends only on their ratios.
  struct CostModel {
    uint64_t syscall_ns = 300;               // trap + dispatch
    uint64_t fuse_crossing_ns = 14000;       // kernel->daemon->kernel round trip
    uint64_t fs_metadata_op_ns = 1200;       // lookup / getattr / readdir
    uint64_t fs_mutation_ns = 40000;         // create/unlink/rename: journal commit
    uint64_t fs_per_byte_tenth_ns = 33;      // 3.3 ns/B: ~300 MB/s disk streaming
    uint64_t cache_per_byte_tenth_ns = 3;    // 0.3 ns/B: page-cache copy
    uint64_t fuse_per_byte_tenth_ns = 1;     // 0.1 ns/B: extra request copy
    uint64_t signature_read_ns = 1800;       // head-of-file fetch setup
    uint64_t signature_scan_per_byte_tenth_ns = 30;  // 3 ns/B content classification
  };

  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }

 private:
  // Small dense thread ids (never 0) so an unbound owner is representable.
  static uint64_t ThisThreadId() {
    static std::atomic<uint64_t> next{1};
    thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  void CheckOwner() {
    uint64_t owner = owner_.load(std::memory_order_relaxed);
    if (owner != 0 && owner != ThisThreadId()) {
      ownership_violations_.fetch_add(1, std::memory_order_relaxed);
      assert(false && "SimClock mutated by a thread that is not its bound owner");
    }
  }

  uint64_t now_ns_ = 0;
  int paused_ = 0;
  std::atomic<uint64_t> owner_{0};
  std::atomic<uint64_t> ownership_violations_{0};
  std::atomic<uint64_t> resume_underflows_{0};
  CostModel costs_;
};

// RAII pause guard.
class ClockPause {
 public:
  explicit ClockPause(SimClock* clock) : clock_(clock) { clock_->Pause(); }
  ~ClockPause() { clock_->Resume(); }
  ClockPause(const ClockPause&) = delete;
  ClockPause& operator=(const ClockPause&) = delete;

 private:
  SimClock* clock_;
};

}  // namespace witos

#endif  // SRC_OS_CLOCK_H_
