#include "src/os/pagecache.h"

namespace witos {

const std::string* PageCache::Lookup(const Filesystem* fs, const std::string& path,
                                     uint64_t block) const {
  auto it = blocks_.find(Key(fs, path, block));
  if (it == blocks_.end()) {
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return &it->second.data;
}

void PageCache::Erase(std::map<Key, Block>::iterator it) {
  bytes_ -= it->second.data.size();
  order_.erase(it->second.order_it);
  blocks_.erase(it);
}

void PageCache::EvictUntil(uint64_t target_bytes) {
  while (bytes_ > target_bytes && !order_.empty()) {
    // order_ and blocks_ are kept in lockstep, so the front key is present.
    Erase(blocks_.find(order_.front()));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PageCache::Insert(const Filesystem* fs, const std::string& path, uint64_t block,
                       std::string data) {
  if (data.size() > capacity_) {
    return;  // uncacheable: would evict everything and still not fit
  }
  Key key(fs, path, block);
  auto it = blocks_.find(key);
  if (it != blocks_.end()) {
    // Re-inserting counts as a fresh insertion (the block moves to the back
    // of the eviction order), not as a capacity eviction.
    Erase(it);
  }
  if (bytes_ + data.size() > capacity_) {
    EvictUntil(capacity_ - data.size());
  }
  auto [pos, inserted] = blocks_.emplace(std::move(key), Block{std::move(data), {}});
  (void)inserted;
  order_.push_back(pos->first);
  pos->second.order_it = std::prev(order_.end());
  bytes_ += pos->second.data.size();
}

void PageCache::InvalidateRange(const Filesystem* fs, const std::string& path, uint64_t offset,
                                uint64_t len) {
  if (len == 0) {
    return;
  }
  mutation_generation_.fetch_add(1, std::memory_order_relaxed);
  uint64_t first = offset / kBlockSize;
  uint64_t last = (offset + len - 1) / kBlockSize;
  for (uint64_t block = first; block <= last; ++block) {
    auto it = blocks_.find(Key(fs, path, block));
    if (it != blocks_.end()) {
      Erase(it);
    }
  }
}

void PageCache::InvalidateFile(const Filesystem* fs, const std::string& path) {
  mutation_generation_.fetch_add(1, std::memory_order_relaxed);
  Key low(fs, path, 0);
  Key high(fs, path, ~0ull);
  auto it = blocks_.lower_bound(low);
  while (it != blocks_.end() && it->first <= high) {
    auto next = std::next(it);
    Erase(it);
    it = next;
  }
}

void PageCache::Clear() {
  mutation_generation_.fetch_add(1, std::memory_order_relaxed);
  blocks_.clear();
  order_.clear();
  bytes_ = 0;
}

}  // namespace witos
