#include "src/os/pagecache.h"

namespace witos {

const std::string* PageCache::Lookup(const Filesystem* fs, const std::string& path,
                                     uint64_t block) const {
  auto it = blocks_.find(Key(fs, path, block));
  if (it == blocks_.end()) {
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void PageCache::Insert(const Filesystem* fs, const std::string& path, uint64_t block,
                       std::string data) {
  if (data.size() > capacity_) {
    return;
  }
  if (bytes_ + data.size() > capacity_) {
    Clear();
  }
  auto [it, inserted] = blocks_.insert_or_assign(Key(fs, path, block), std::move(data));
  if (inserted) {
    bytes_ += it->second.size();
  }
}

void PageCache::InvalidateRange(const Filesystem* fs, const std::string& path, uint64_t offset,
                                uint64_t len) {
  if (len == 0) {
    return;
  }
  uint64_t first = offset / kBlockSize;
  uint64_t last = (offset + len - 1) / kBlockSize;
  for (uint64_t block = first; block <= last; ++block) {
    auto it = blocks_.find(Key(fs, path, block));
    if (it != blocks_.end()) {
      bytes_ -= it->second.size();
      blocks_.erase(it);
    }
  }
}

void PageCache::InvalidateFile(const Filesystem* fs, const std::string& path) {
  Key low(fs, path, 0);
  Key high(fs, path, ~0ull);
  auto it = blocks_.lower_bound(low);
  while (it != blocks_.end() && it->first <= high) {
    bytes_ -= it->second.size();
    it = blocks_.erase(it);
  }
}

void PageCache::Clear() {
  blocks_.clear();
  bytes_ = 0;
}

}  // namespace witos
