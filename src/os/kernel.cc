#include "src/os/kernel.h"

#include <algorithm>
#include <cassert>

#include "src/os/path.h"

namespace witos {

Kernel::Kernel(std::string hostname) : vfs_(&registry_, &audit_) {
  root_fs_ = std::make_shared<MemFs>("ext4", &clock_);
  MountEntry root_mount;
  root_mount.source = "/dev/sda";
  root_mount.mountpoint = "/";
  root_mount.fs = root_fs_;
  (void)vfs_.AddMount(registry_.initial(NsType::kMnt), std::move(root_mount));

  registry_.Uts(registry_.initial(NsType::kUts)).hostname = std::move(hostname);

  // A minimal FHS tree plus the devices the threat model cares about.
  for (const char* dir : {"/etc", "/home", "/usr", "/var", "/tmp", "/dev", "/proc", "/root"}) {
    root_fs_->ProvisionDir(dir);
  }
  root_fs_->ProvisionDevice("/dev/null", kDevNull, 0666);
  root_fs_->ProvisionDevice("/dev/zero", kDevZero, 0666);
  root_fs_->ProvisionDevice("/dev/mem", kDevMem, 0600);
  root_fs_->ProvisionDevice("/dev/kmem", kDevKmem, 0600);

  // pid 1: init, root, all capabilities, initial namespaces.
  Process init;
  init.pid = next_pid_++;
  init.ppid = 0;
  init.name = "init";
  init.ns = registry_.InitialSet();
  for (size_t i = 0; i < kNsTypeCount; ++i) {
    registry_.Ref(init.ns.ids[i]);
  }
  RegisterPidInNamespaces(init.pid, init.ns.Get(NsType::kPid));
  (void)cgroups_.TryCharge(kRootCgroup);
  procs_.emplace(init.pid, std::move(init));
}

Process& Kernel::Proc(Pid pid) {
  auto it = procs_.find(pid);
  assert(it != procs_.end());
  return it->second;
}

const Process& Kernel::Proc(Pid pid) const {
  auto it = procs_.find(pid);
  assert(it != procs_.end());
  return it->second;
}

Process* Kernel::FindProcess(Pid host_pid) {
  auto it = procs_.find(host_pid);
  return it == procs_.end() ? nullptr : &it->second;
}

const Process* Kernel::FindProcess(Pid host_pid) const {
  auto it = procs_.find(host_pid);
  return it == procs_.end() ? nullptr : &it->second;
}

bool Kernel::ProcessAlive(Pid host_pid) const {
  const Process* p = FindProcess(host_pid);
  return p != nullptr && p->state == ProcState::kRunning;
}

Status Kernel::CheckAlive(Pid pid) const {
  const Process* p = FindProcess(pid);
  if (p == nullptr || p->state != ProcState::kRunning) {
    return Err::kSrch;
  }
  return Status::Ok();
}

void Kernel::ChargeSyscall() { clock_.Advance(clock_.costs().syscall_ns); }

Status Kernel::RequireCap(const Process& proc, Capability cap, const char* what) {
  if (!proc.cred.HasCap(cap)) {
    audit_.Append(AuditEvent::kCapabilityDenied, proc.pid, proc.cred.uid,
                  std::string(what) + " requires " + CapabilityName(cap), clock_.now_ns());
    return Err::kPerm;
  }
  return Status::Ok();
}

Result<Credentials> Kernel::HostCredentials(Pid pid) const {
  const Process* p = FindProcess(pid);
  if (p == nullptr) {
    return Err::kSrch;
  }
  Credentials cred = p->cred;
  NsId uid_ns = p->ns.Get(NsType::kUid);
  NsId initial = registry_.initial(NsType::kUid);
  // Walk the UID-namespace chain mapping inside ids to host ids.
  while (uid_ns != initial && uid_ns != kNoNs && registry_.Exists(uid_ns)) {
    const UidNamespace& ns = const_cast<NamespaceRegistry&>(registry_).Uidns(uid_ns);
    cred.uid = ns.MapUidToHost(cred.uid);
    cred.gid = ns.MapGidToHost(cred.gid);
    for (auto& g : cred.supplementary_gids) {
      g = ns.MapGidToHost(g);
    }
    uid_ns = ns.parent;
  }
  return cred;
}

Result<VfsContext> Kernel::ContextFor(Pid pid) const {
  const Process* p = FindProcess(pid);
  if (p == nullptr) {
    return Err::kSrch;
  }
  WITOS_ASSIGN_OR_RETURN(Credentials cred, HostCredentials(pid));
  VfsContext ctx;
  ctx.mnt_ns = p->ns.Get(NsType::kMnt);
  ctx.xcl_ns = p->ns.Get(NsType::kXcl);
  ctx.root = p->root;
  ctx.cwd = p->cwd;
  ctx.cred = cred;
  ctx.pid = pid;
  return ctx;
}

// --- Process lifecycle -------------------------------------------------------

void Kernel::RegisterPidInNamespaces(Pid host_pid, NsId pid_ns) {
  NsId cur = pid_ns;
  while (cur != kNoNs && registry_.Exists(cur)) {
    PidNamespace& ns = registry_.Pidns(cur);
    if (ns.host_to_local.count(host_pid) == 0) {
      if (cur == registry_.initial(NsType::kPid)) {
        ns.host_to_local[host_pid] = host_pid;  // identity in the initial ns
      } else {
        ns.host_to_local[host_pid] = ns.next_local_pid++;
      }
    }
    cur = ns.parent;
  }
}

Result<Pid> Kernel::Clone(Pid parent, const std::string& name, uint32_t flags) {
  WITOS_RETURN_IF_ERROR(CheckAlive(parent));
  Process& par = Proc(parent);
  if (flags != 0) {
    WITOS_RETURN_IF_ERROR(RequireCap(par, Capability::kSysAdmin, "clone(CLONE_NEW*)"));
  }
  ChargeSyscall();

  // The child lands in the parent's cgroup; a full group denies the fork.
  if (!cgroups_.TryCharge(par.cgroup)) {
    return Err::kAgain;
  }

  Process child;
  child.pid = next_pid_++;
  child.ppid = parent;
  child.name = name;
  child.cred = par.cred;
  child.root = par.root;
  child.cwd = par.cwd;
  child.cgroup = par.cgroup;
  child.start_time_ns = clock_.now_ns();
  child.ns = par.ns;
  for (size_t i = 0; i < kNsTypeCount; ++i) {
    auto type = static_cast<NsType>(i);
    if ((flags & CloneFlagFor(type)) != 0) {
      child.ns.Set(type, registry_.Create(type, par.ns.Get(type)));
    }
    registry_.Ref(child.ns.ids[i]);
  }
  RegisterPidInNamespaces(child.pid, child.ns.Get(NsType::kPid));
  par.children.push_back(child.pid);
  Pid pid = child.pid;
  procs_.emplace(pid, std::move(child));
  return pid;
}

void Kernel::ReleaseNamespaces(Process& proc) {
  for (size_t i = 0; i < kNsTypeCount; ++i) {
    if (proc.ns.ids[i] != kNoNs) {
      registry_.Unref(proc.ns.ids[i]);
    }
  }
}

void Kernel::NotifyDeath(Pid pid) {
  // Copy: hooks may call back into the kernel and kill further processes.
  auto hooks = death_hooks_;
  for (const auto& hook : hooks) {
    hook(pid);
  }
}

Status Kernel::Exit(Pid pid, int code) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  cgroups_.Uncharge(p.cgroup);
  p.state = ProcState::kZombie;
  p.exit_code = code;
  p.fds.clear();
  // Reparent children to init.
  for (Pid child : p.children) {
    if (Process* c = FindProcess(child)) {
      c->ppid = init_pid();
    }
  }
  p.children.clear();
  ReleaseNamespaces(p);
  NotifyDeath(pid);
  return Status::Ok();
}

Result<Pid> Kernel::Wait(Pid pid) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  for (auto it = p.children.begin(); it != p.children.end(); ++it) {
    Process* c = FindProcess(*it);
    if (c != nullptr && c->state == ProcState::kZombie) {
      Pid reaped = *it;
      p.children.erase(it);
      procs_.erase(reaped);
      return reaped;
    }
  }
  return Err::kChild;
}

Result<Pid> Kernel::LocalToHostPid(Pid caller, Pid local) const {
  const Process* p = FindProcess(caller);
  if (p == nullptr) {
    return Err::kSrch;
  }
  NsId ns_id = p->ns.Get(NsType::kPid);
  if (!registry_.Exists(ns_id)) {
    return Err::kSrch;
  }
  const PidNamespace& ns = const_cast<NamespaceRegistry&>(registry_).Pidns(ns_id);
  for (const auto& [host, loc] : ns.host_to_local) {
    if (loc == local) {
      return host;
    }
  }
  return Err::kSrch;
}

Result<Pid> Kernel::HostToLocalPid(Pid caller, Pid host) const {
  const Process* p = FindProcess(caller);
  if (p == nullptr) {
    return Err::kSrch;
  }
  NsId ns_id = p->ns.Get(NsType::kPid);
  const PidNamespace& ns = const_cast<NamespaceRegistry&>(registry_).Pidns(ns_id);
  auto it = ns.host_to_local.find(host);
  if (it == ns.host_to_local.end()) {
    return Err::kSrch;
  }
  return it->second;
}

Status Kernel::Kill(Pid pid, Pid target_local) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(Pid target_host, LocalToHostPid(pid, target_local));
  WITOS_RETURN_IF_ERROR(CheckAlive(target_host));
  const Process& caller = Proc(pid);
  const Process& target = Proc(target_host);
  // Visibility: the target must live in the caller's PID namespace or below.
  if (!registry_.PidNsIsDescendant(target.ns.Get(NsType::kPid), caller.ns.Get(NsType::kPid))) {
    return Err::kSrch;
  }
  WITOS_ASSIGN_OR_RETURN(Credentials caller_cred, HostCredentials(pid));
  WITOS_ASSIGN_OR_RETURN(Credentials target_cred, HostCredentials(target_host));
  if (caller_cred.uid != kRootUid && caller_cred.uid != target_cred.uid &&
      !caller.cred.HasCap(Capability::kKill)) {
    audit_.Append(AuditEvent::kSyscallDenied, pid, caller.cred.uid,
                  "kill " + std::to_string(target_local), clock_.now_ns());
    return Err::kPerm;
  }
  return Exit(target_host, -9);
}

Result<std::vector<ProcessInfo>> Kernel::ListProcesses(Pid pid) const {
  const Process* caller = FindProcess(pid);
  if (caller == nullptr) {
    return Err::kSrch;
  }
  NsId caller_ns = caller->ns.Get(NsType::kPid);
  const PidNamespace& view = const_cast<NamespaceRegistry&>(registry_).Pidns(caller_ns);
  std::vector<ProcessInfo> out;
  for (const auto& [host_pid, proc] : procs_) {
    if (!registry_.PidNsIsDescendant(proc.ns.Get(NsType::kPid), caller_ns)) {
      continue;
    }
    auto it = view.host_to_local.find(host_pid);
    if (it == view.host_to_local.end()) {
      continue;
    }
    ProcessInfo info;
    info.pid = it->second;
    info.host_pid = host_pid;
    info.name = proc.name;
    info.uid = proc.cred.uid;
    info.state = proc.state;
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const ProcessInfo& a, const ProcessInfo& b) { return a.pid < b.pid; });
  return out;
}

Status Kernel::Setns(Pid pid, Pid target_host, NsType type) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysAdmin, "setns"));
  const Process* target = FindProcess(target_host);
  if (target == nullptr) {
    return Err::kSrch;
  }
  NsId new_ns = target->ns.Get(type);
  NsId old_ns = p.ns.Get(type);
  if (new_ns == old_ns) {
    return Status::Ok();
  }
  registry_.Ref(new_ns);
  registry_.Unref(old_ns);
  p.ns.Set(type, new_ns);
  if (type == NsType::kPid) {
    RegisterPidInNamespaces(pid, new_ns);
  }
  if (type == NsType::kMnt) {
    // Joining a mount namespace resets root/cwd to that namespace's root,
    // like nsenter does.
    p.root = target->root;
    p.cwd = "/";
  }
  return Status::Ok();
}

Status Kernel::Unshare(Pid pid, uint32_t flags) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysAdmin, "unshare"));
  for (size_t i = 0; i < kNsTypeCount; ++i) {
    auto type = static_cast<NsType>(i);
    if ((flags & CloneFlagFor(type)) == 0) {
      continue;
    }
    NsId old_ns = p.ns.Get(type);
    NsId new_ns = registry_.Create(type, old_ns);
    registry_.Ref(new_ns);
    registry_.Unref(old_ns);
    p.ns.Set(type, new_ns);
    if (type == NsType::kPid) {
      RegisterPidInNamespaces(pid, new_ns);
    }
  }
  return Status::Ok();
}

Status Kernel::AssignCgroup(Pid pid, CgroupId group) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysAdmin, "cgroup_assign"));
  if (p.cgroup == group) {
    return Status::Ok();
  }
  if (!cgroups_.TryCharge(group)) {
    return Err::kAgain;
  }
  cgroups_.Uncharge(p.cgroup);
  p.cgroup = group;
  return Status::Ok();
}

Status Kernel::Setuid(Pid pid, Uid uid) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  if (p.cred.uid == uid) {
    return Status::Ok();
  }
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSetuid, "setuid"));
  bool dropping_root = p.cred.uid == kRootUid && uid != kRootUid;
  p.cred.uid = uid;
  p.cred.gid = uid;  // simplistic: primary gid follows uid
  if (dropping_root) {
    p.cred.caps = CapabilitySet::Empty();
  }
  return Status::Ok();
}

Status Kernel::CapDrop(Pid pid, const CapabilitySet& to_drop) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  p.cred.caps = p.cred.caps.Minus(to_drop);
  return Status::Ok();
}

void Kernel::AddDeathHook(DeathHook hook) { death_hooks_.push_back(std::move(hook)); }

// --- Filesystem syscalls -----------------------------------------------------

Status Kernel::GuardWrite(const Process& proc, const std::string& vfs_path,
                          const Credentials& cred) {
  if (write_guard_ && !write_guard_(vfs_path, cred)) {
    audit_.Append(AuditEvent::kTcbViolation, proc.pid, cred.uid, "write to " + vfs_path,
                  clock_.now_ns());
    return Err::kPerm;
  }
  return Status::Ok();
}

Result<Fd> Kernel::Open(Pid pid, const std::string& path, uint32_t flags, Mode mode) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  Process& p = Proc(pid);
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  bool may_create = (flags & kOpenCreate) != 0;
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, true, may_create));

  bool write_intent = (flags & (kOpenWrite | kOpenTrunc | kOpenAppend)) != 0 ||
                      (may_create && !rp.exists);
  if (write_intent) {
    if (rp.read_only) {
      return Err::kRoFs;
    }
    WITOS_RETURN_IF_ERROR(GuardWrite(p, rp.vfs_path, ctx.cred));
  }

  DeviceId rdev = 0;
  if (rp.exists) {
    WITOS_ASSIGN_OR_RETURN(Stat st, rp.fs->GetAttr(rp.fs_path, ctx.cred));
    if (st.type == FileType::kCharDevice || st.type == FileType::kBlockDevice) {
      rdev = st.rdev;
      if (rdev == kDevMem || rdev == kDevKmem) {
        // Attack 4 defence: the paper's new capability gates raw memory.
        WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysRawMem, "open(/dev/mem)"));
      }
    }
  }

  if ((flags & kOpenTrunc) != 0) {
    page_cache_.InvalidateFile(rp.fs.get(), rp.fs_path);
  }
  WITOS_ASSIGN_OR_RETURN(Stat st, rp.fs->Open(rp.fs_path, flags, mode, ctx.cred));
  OpenFile of;
  of.fs = rp.fs;
  of.fs_path = rp.fs_path;
  of.vfs_path = rp.vfs_path;
  of.jail_path = rp.jail_path;
  of.flags = flags;
  of.offset = (flags & kOpenAppend) != 0 ? st.size : 0;
  of.rdev = rdev;
  Fd fd = p.next_fd++;
  p.fds.emplace(fd, std::move(of));
  return fd;
}

Status Kernel::Close(Pid pid, Fd fd) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  if (p.fds.erase(fd) == 0) {
    return Err::kBadf;
  }
  return Status::Ok();
}

Result<std::string> Kernel::DeviceRead(DeviceId rdev, size_t size) {
  switch (rdev) {
    case kDevNull:
      return std::string();
    case kDevZero:
      return std::string(size, '\0');
    case kDevMem:
    case kDevKmem: {
      // Simulated raw memory: a recognizable pattern.
      std::string out;
      out.reserve(size);
      const std::string pattern = rdev == kDevMem ? "PHYSMEM." : "KERNMEM.";
      while (out.size() < size) {
        out += pattern;
      }
      out.resize(size);
      return out;
    }
    default:
      return Err::kNoDev;
  }
}

Result<std::string> Kernel::Read(Pid pid, Fd fd, size_t size) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  Process& p = Proc(pid);
  auto it = p.fds.find(fd);
  if (it == p.fds.end()) {
    return Err::kBadf;
  }
  OpenFile& of = it->second;
  if ((of.flags & kOpenRead) == 0) {
    return Err::kBadf;
  }
  if (of.rdev != 0) {
    return DeviceRead(of.rdev, size);
  }
  WITOS_ASSIGN_OR_RETURN(Credentials cred, HostCredentials(pid));
  if (!of.fs->Cacheable()) {
    // Dynamic pseudo-filesystems (procfs) are read directly, always fresh.
    std::string buf;
    WITOS_ASSIGN_OR_RETURN(size_t n, of.fs->ReadAt(of.fs_path, of.offset, size, &buf, cred));
    of.offset += n;
    return buf;
  }

  // Reads are served block-by-block through the page cache; misses fetch the
  // whole covering block (readahead) through the mounted filesystem stack —
  // including any FUSE/ITFS layers, which charge their costs there.
  constexpr uint64_t kBlk = PageCache::kBlockSize;
  std::string out;
  uint64_t pos = of.offset;
  size_t remaining = size;
  while (remaining > 0) {
    uint64_t block = pos / kBlk;
    uint64_t in_block = pos - block * kBlk;
    const std::string* data = page_cache_.Lookup(of.fs.get(), of.fs_path, block);
    std::string fetched;
    if (data == nullptr) {
      page_cache_.CountMiss();
      auto n = of.fs->ReadAt(of.fs_path, block * kBlk, kBlk, &fetched, cred);
      if (!n.ok()) {
        if (out.empty()) {
          return n.error();
        }
        break;
      }
      page_cache_.Insert(of.fs.get(), of.fs_path, block, fetched);
      data = &fetched;
    }
    if (in_block >= data->size()) {
      break;  // at or past EOF
    }
    size_t take = std::min<size_t>(remaining, data->size() - in_block);
    if (data != &fetched) {
      // Cache hit: charge the page-cache copy.
      clock_.Advance(take * clock_.costs().cache_per_byte_tenth_ns / 10);
    }
    out.append(*data, in_block, take);
    pos += take;
    remaining -= take;
    if (data->size() < kBlk) {
      break;  // short block: EOF
    }
  }
  of.offset += out.size();
  return out;
}

Result<size_t> Kernel::Write(Pid pid, Fd fd, const std::string& data) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  Process& p = Proc(pid);
  auto it = p.fds.find(fd);
  if (it == p.fds.end()) {
    return Err::kBadf;
  }
  OpenFile& of = it->second;
  if ((of.flags & (kOpenWrite | kOpenAppend)) == 0) {
    return Err::kBadf;
  }
  if (of.rdev != 0) {
    return data.size();  // devices swallow writes
  }
  WITOS_ASSIGN_OR_RETURN(Credentials cred, HostCredentials(pid));
  if ((of.flags & kOpenAppend) != 0) {
    WITOS_ASSIGN_OR_RETURN(Stat st, of.fs->GetAttr(of.fs_path, cred));
    of.offset = st.size;
  }
  // Write-back model: the data lands in the page cache now and is flushed
  // to the filesystem stack asynchronously. The synchronous write-through
  // below keeps the simulation correct but charges no foreground time;
  // the foreground pays only the cache copy.
  size_t n = 0;
  {
    ClockPause pause(&clock_);
    WITOS_ASSIGN_OR_RETURN(n, of.fs->WriteAt(of.fs_path, of.offset, data, cred));
  }
  clock_.Advance(n * clock_.costs().cache_per_byte_tenth_ns / 10);

  // Cache maintenance: fully covered blocks are refreshed in place,
  // partially covered ones are invalidated.
  constexpr uint64_t kBlk = PageCache::kBlockSize;
  uint64_t write_start = of.offset;
  uint64_t write_end = of.offset + n;
  for (uint64_t block = write_start / kBlk; block * kBlk < write_end; ++block) {
    uint64_t block_start = block * kBlk;
    if (write_start <= block_start && write_end >= block_start + kBlk) {
      page_cache_.Insert(of.fs.get(), of.fs_path, block,
                         data.substr(static_cast<size_t>(block_start - write_start),
                                     static_cast<size_t>(kBlk)));
    } else {
      page_cache_.InvalidateRange(of.fs.get(), of.fs_path, block_start, kBlk);
    }
  }
  of.offset += n;
  return n;
}

Result<uint64_t> Kernel::Lseek(Pid pid, Fd fd, uint64_t offset) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  auto it = p.fds.find(fd);
  if (it == p.fds.end()) {
    return Err::kBadf;
  }
  it->second.offset = offset;
  return offset;
}

Result<Stat> Kernel::StatPath(Pid pid, const std::string& path) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, true));
  return rp.fs->GetAttr(rp.fs_path, ctx.cred);
}

Result<Stat> Kernel::LstatPath(Pid pid, const std::string& path) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, false));
  return rp.fs->GetAttr(rp.fs_path, ctx.cred);
}

Result<std::vector<DirEntry>> Kernel::ReadDir(Pid pid, const std::string& path) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, true));
  return rp.fs->ReadDir(rp.fs_path, ctx.cred);
}

Status Kernel::MkDir(Pid pid, const std::string& path, Mode mode) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, false, true));
  if (rp.exists) {
    return Err::kExist;
  }
  if (rp.read_only) {
    return Err::kRoFs;
  }
  WITOS_RETURN_IF_ERROR(GuardWrite(Proc(pid), rp.vfs_path, ctx.cred));
  return rp.fs->MkDir(rp.fs_path, mode, ctx.cred);
}

Status Kernel::RmDir(Pid pid, const std::string& path) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, false));
  if (rp.read_only) {
    return Err::kRoFs;
  }
  WITOS_RETURN_IF_ERROR(GuardWrite(Proc(pid), rp.vfs_path, ctx.cred));
  return rp.fs->RmDir(rp.fs_path, ctx.cred);
}

Status Kernel::Unlink(Pid pid, const std::string& path) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, false));
  if (rp.read_only) {
    return Err::kRoFs;
  }
  WITOS_RETURN_IF_ERROR(GuardWrite(Proc(pid), rp.vfs_path, ctx.cred));
  page_cache_.InvalidateFile(rp.fs.get(), rp.fs_path);
  return rp.fs->Unlink(rp.fs_path, ctx.cred);
}

Status Kernel::Rename(Pid pid, const std::string& from, const std::string& to) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp_from, vfs_.Resolve(ctx, from, false));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp_to, vfs_.Resolve(ctx, to, false, true));
  if (rp_from.fs != rp_to.fs) {
    return Err::kXdev;
  }
  if (rp_from.read_only || rp_to.read_only) {
    return Err::kRoFs;
  }
  WITOS_RETURN_IF_ERROR(GuardWrite(Proc(pid), rp_from.vfs_path, ctx.cred));
  WITOS_RETURN_IF_ERROR(GuardWrite(Proc(pid), rp_to.vfs_path, ctx.cred));
  page_cache_.InvalidateFile(rp_from.fs.get(), rp_from.fs_path);
  page_cache_.InvalidateFile(rp_to.fs.get(), rp_to.fs_path);
  return rp_from.fs->Rename(rp_from.fs_path, rp_to.fs_path, ctx.cred);
}

Status Kernel::Chmod(Pid pid, const std::string& path, Mode mode) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, true));
  if (rp.read_only) {
    return Err::kRoFs;
  }
  WITOS_RETURN_IF_ERROR(GuardWrite(Proc(pid), rp.vfs_path, ctx.cred));
  return rp.fs->Chmod(rp.fs_path, mode, ctx.cred);
}

Status Kernel::Chown(Pid pid, const std::string& path, Uid uid, Gid gid) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, true));
  if (rp.read_only) {
    return Err::kRoFs;
  }
  WITOS_RETURN_IF_ERROR(GuardWrite(Proc(pid), rp.vfs_path, ctx.cred));
  return rp.fs->Chown(rp.fs_path, uid, gid, ctx.cred);
}

Status Kernel::Truncate(Pid pid, const std::string& path, uint64_t size) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, true));
  if (rp.read_only) {
    return Err::kRoFs;
  }
  WITOS_RETURN_IF_ERROR(GuardWrite(Proc(pid), rp.vfs_path, ctx.cred));
  page_cache_.InvalidateFile(rp.fs.get(), rp.fs_path);
  return rp.fs->Truncate(rp.fs_path, size, ctx.cred);
}

Status Kernel::Link(Pid pid, const std::string& oldpath, const std::string& newpath) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp_old, vfs_.Resolve(ctx, oldpath, false));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp_new, vfs_.Resolve(ctx, newpath, false, true));
  if (rp_new.exists) {
    return Err::kExist;
  }
  if (rp_old.fs != rp_new.fs) {
    return Err::kXdev;
  }
  if (rp_new.read_only) {
    return Err::kRoFs;
  }
  WITOS_RETURN_IF_ERROR(GuardWrite(Proc(pid), rp_new.vfs_path, ctx.cred));
  return rp_old.fs->Link(rp_old.fs_path, rp_new.fs_path, ctx.cred);
}

Status Kernel::SymLink(Pid pid, const std::string& target, const std::string& linkpath) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, linkpath, false, true));
  if (rp.exists) {
    return Err::kExist;
  }
  if (rp.read_only) {
    return Err::kRoFs;
  }
  WITOS_RETURN_IF_ERROR(GuardWrite(Proc(pid), rp.vfs_path, ctx.cred));
  return rp.fs->SymLink(target, rp.fs_path, ctx.cred);
}

Result<std::string> Kernel::ReadLink(Pid pid, const std::string& path) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, false));
  return rp.fs->ReadLink(rp.fs_path, ctx.cred);
}

Status Kernel::MkNod(Pid pid, const std::string& path, FileType type, DeviceId rdev, Mode mode) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  Process& p = Proc(pid);
  if (type == FileType::kCharDevice || type == FileType::kBlockDevice) {
    // Attack 3 defence: raw-disk mounting starts with mknod of a device.
    WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kMknod, "mknod"));
  }
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, false, true));
  if (rp.exists) {
    return Err::kExist;
  }
  if (rp.read_only) {
    return Err::kRoFs;
  }
  WITOS_RETURN_IF_ERROR(GuardWrite(p, rp.vfs_path, ctx.cred));
  return rp.fs->MkNod(rp.fs_path, type, rdev, mode, ctx.cred);
}

Result<std::string> Kernel::ReadFile(Pid pid, const std::string& path) {
  WITOS_ASSIGN_OR_RETURN(Fd fd, Open(pid, path, kOpenRead));
  std::string out;
  for (;;) {
    auto chunk = Read(pid, fd, 1 << 20);
    if (!chunk.ok()) {
      (void)Close(pid, fd);
      return chunk.error();
    }
    if (chunk->empty()) {
      break;
    }
    out += *chunk;
  }
  (void)Close(pid, fd);
  return out;
}

Status Kernel::WriteFile(Pid pid, const std::string& path, const std::string& data,
                         bool append) {
  uint32_t flags = kOpenWrite | kOpenCreate | (append ? kOpenAppend : kOpenTrunc);
  WITOS_ASSIGN_OR_RETURN(Fd fd, Open(pid, path, flags));
  auto written = Write(pid, fd, data);
  (void)Close(pid, fd);
  if (!written.ok()) {
    return written.error();
  }
  return Status::Ok();
}

// --- Mounts, chroot, cwd ------------------------------------------------------

Status Kernel::Mount(Pid pid, std::shared_ptr<Filesystem> fs, const std::string& mountpoint,
                     const std::string& source, bool read_only) {
  return BindMount(pid, std::move(fs), "/", mountpoint, source, read_only);
}

Status Kernel::BindMount(Pid pid, std::shared_ptr<Filesystem> fs, const std::string& fs_root,
                         const std::string& mountpoint, const std::string& source,
                         bool read_only) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysAdmin, "mount"));
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, mountpoint, true));
  WITOS_ASSIGN_OR_RETURN(Stat st, rp.fs->GetAttr(rp.fs_path, ctx.cred));
  if (st.type != FileType::kDirectory) {
    return Err::kNotDir;
  }
  MountEntry entry;
  entry.source = source;
  entry.mountpoint = rp.vfs_path;
  entry.fs = std::move(fs);
  entry.fs_root = fs_root;
  entry.read_only = read_only;
  return vfs_.AddMount(p.ns.Get(NsType::kMnt), std::move(entry));
}

Status Kernel::Umount(Pid pid, const std::string& mountpoint) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysAdmin, "umount"));
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, mountpoint, true));
  return vfs_.RemoveMount(p.ns.Get(NsType::kMnt), rp.vfs_path);
}

Result<std::vector<MountEntry>> Kernel::MountTable(Pid pid) const {
  const Process* p = FindProcess(pid);
  if (p == nullptr) {
    return Err::kSrch;
  }
  const auto& table = const_cast<NamespaceRegistry&>(registry_).Mnt(p->ns.Get(NsType::kMnt)).table;
  std::vector<MountEntry> out;
  for (const auto& entry : table) {
    if (!PathIsUnder(entry.mountpoint, p->root)) {
      continue;  // invisible from inside the chroot
    }
    MountEntry view = entry;
    // Present mountpoints in jail-space, like /proc/mounts in a container.
    view.mountpoint = p->root == "/" ? entry.mountpoint
                                     : (entry.mountpoint == p->root
                                            ? "/"
                                            : entry.mountpoint.substr(p->root.size()));
    out.push_back(std::move(view));
  }
  return out;
}

Status Kernel::Chroot(Pid pid, const std::string& path) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  Process& p = Proc(pid);
  // Attack 1 defence: double-chroot escapes require this capability.
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysChroot, "chroot"));
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, true));
  WITOS_ASSIGN_OR_RETURN(Stat st, rp.fs->GetAttr(rp.fs_path, ctx.cred));
  if (st.type != FileType::kDirectory) {
    return Err::kNotDir;
  }
  p.root = rp.vfs_path;
  p.cwd = "/";
  return Status::Ok();
}

Status Kernel::Chdir(Pid pid, const std::string& path) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  WITOS_ASSIGN_OR_RETURN(VfsContext ctx, ContextFor(pid));
  WITOS_ASSIGN_OR_RETURN(ResolvedPath rp, vfs_.Resolve(ctx, path, true));
  WITOS_ASSIGN_OR_RETURN(Stat st, rp.fs->GetAttr(rp.fs_path, ctx.cred));
  if (st.type != FileType::kDirectory) {
    return Err::kNotDir;
  }
  p.cwd = rp.jail_path;
  return Status::Ok();
}

Result<std::string> Kernel::GetCwd(Pid pid) const {
  const Process* p = FindProcess(pid);
  if (p == nullptr) {
    return Err::kSrch;
  }
  return p->cwd;
}

// --- UTS / IPC -----------------------------------------------------------------

Result<std::string> Kernel::GetHostname(Pid pid) const {
  const Process* p = FindProcess(pid);
  if (p == nullptr) {
    return Err::kSrch;
  }
  return const_cast<NamespaceRegistry&>(registry_).Uts(p->ns.Get(NsType::kUts)).hostname;
}

Status Kernel::SetHostname(Pid pid, const std::string& hostname) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysAdmin, "sethostname"));
  registry_.Uts(p.ns.Get(NsType::kUts)).hostname = hostname;
  return Status::Ok();
}

Result<UnameInfo> Kernel::Uname(Pid pid) const {
  WITOS_ASSIGN_OR_RETURN(std::string hostname, GetHostname(pid));
  UnameInfo info;
  info.hostname = hostname;
  return info;
}

Status Kernel::ShmPut(Pid pid, const std::string& key, const std::string& value) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  registry_.Ipc(p.ns.Get(NsType::kIpc)).shm[key] = value;
  return Status::Ok();
}

Result<std::string> Kernel::ShmGet(Pid pid, const std::string& key) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  auto& shm = registry_.Ipc(p.ns.Get(NsType::kIpc)).shm;
  auto it = shm.find(key);
  if (it == shm.end()) {
    return Err::kNoEnt;
  }
  return it->second;
}

// --- XCL namespace ---------------------------------------------------------------

Status Kernel::XclAdd(Pid pid, const std::string& vfs_path) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysAdmin, "xcl_add"));
  auto& excluded = registry_.Xcl(p.ns.Get(NsType::kXcl)).excluded;
  std::string norm = NormalizePath(vfs_path);
  // Adding the same subtree twice must stay idempotent: otherwise one
  // XclRemove peels off only one of N duplicate entries and the exclusion
  // silently survives its own removal.
  if (std::find(excluded.begin(), excluded.end(), norm) == excluded.end()) {
    excluded.push_back(std::move(norm));
  }
  return Status::Ok();
}

Status Kernel::XclRemove(Pid pid, const std::string& vfs_path) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysAdmin, "xcl_remove"));
  auto& excluded = registry_.Xcl(p.ns.Get(NsType::kXcl)).excluded;
  std::string norm = NormalizePath(vfs_path);
  auto it = std::find(excluded.begin(), excluded.end(), norm);
  if (it == excluded.end()) {
    return Err::kNoEnt;
  }
  excluded.erase(it);
  return Status::Ok();
}

Result<std::vector<std::string>> Kernel::XclList(Pid pid) const {
  const Process* p = FindProcess(pid);
  if (p == nullptr) {
    return Err::kSrch;
  }
  return const_cast<NamespaceRegistry&>(registry_).Xcl(p->ns.Get(NsType::kXcl)).excluded;
}

// --- Dangerous operations ---------------------------------------------------------

Status Kernel::Ptrace(Pid pid, Pid target_local) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  ChargeSyscall();
  Process& p = Proc(pid);
  // Attack 2 defence: bind-shell injection requires ptrace.
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysPtrace, "ptrace"));
  WITOS_ASSIGN_OR_RETURN(Pid target_host, LocalToHostPid(pid, target_local));
  WITOS_RETURN_IF_ERROR(CheckAlive(target_host));
  const Process& target = Proc(target_host);
  if (!registry_.PidNsIsDescendant(target.ns.Get(NsType::kPid), p.ns.Get(NsType::kPid))) {
    return Err::kSrch;
  }
  return Status::Ok();
}

Status Kernel::Reboot(Pid pid) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysBoot, "reboot"));
  audit_.Append(AuditEvent::kSessionEvent, pid, p.cred.uid, "reboot", clock_.now_ns());
  if (reboot_hook_) {
    reboot_hook_();
  }
  return Status::Ok();
}

Status Kernel::LoadModule(Pid pid, const std::string& name) {
  WITOS_RETURN_IF_ERROR(CheckAlive(pid));
  Process& p = Proc(pid);
  WITOS_RETURN_IF_ERROR(RequireCap(p, Capability::kSysModule, "init_module"));
  WITOS_ASSIGN_OR_RETURN(Credentials cred, HostCredentials(pid));
  // Loading a module rewrites the TCB: route through the write guard.
  WITOS_RETURN_IF_ERROR(GuardWrite(p, "/lib/modules/" + name, cred));
  loaded_modules_.push_back(name);
  return Status::Ok();
}

}  // namespace witos
