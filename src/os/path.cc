#include "src/os/path.h"

#include <algorithm>
#include <cctype>

namespace witos {

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') {
      ++i;
    }
    size_t start = i;
    while (i < path.size() && path[i] != '/') {
      ++i;
    }
    if (i > start) {
      std::string_view comp = path.substr(start, i - start);
      if (comp != ".") {
        parts.emplace_back(comp);
      }
    }
  }
  return parts;
}

std::string NormalizePath(std::string_view path) {
  std::vector<std::string> stack;
  for (auto& comp : SplitPath(path)) {
    if (comp == "..") {
      if (!stack.empty()) {
        stack.pop_back();
      }
      // ".." at the root is clamped, as in a chroot jail.
    } else {
      stack.push_back(std::move(comp));
    }
  }
  if (stack.empty()) {
    return "/";
  }
  std::string out;
  for (const auto& comp : stack) {
    out += '/';
    out += comp;
  }
  return out;
}

std::string ResolvePath(std::string_view cwd, std::string_view path) {
  if (IsAbsolutePath(path)) {
    return NormalizePath(path);
  }
  return NormalizePath(JoinPath(cwd, path));
}

std::string JoinPath(std::string_view a, std::string_view b) {
  if (a.empty()) {
    return std::string(b);
  }
  if (b.empty()) {
    return std::string(a);
  }
  std::string out(a);
  if (out.back() == '/' && b.front() == '/') {
    out.append(b.substr(1));
  } else if (out.back() != '/' && b.front() != '/') {
    out += '/';
    out.append(b);
  } else {
    out.append(b);
  }
  return out;
}

bool PathIsUnder(std::string_view path, std::string_view prefix) {
  if (prefix == "/") {
    return IsAbsolutePath(path);
  }
  if (path == prefix) {
    return true;
  }
  return path.size() > prefix.size() && path.substr(0, prefix.size()) == prefix &&
         path[prefix.size()] == '/';
}

std::string RebasePath(std::string_view path, std::string_view old_prefix,
                       std::string_view new_prefix) {
  if (!PathIsUnder(path, old_prefix)) {
    // A rebase of a path that is not under the old prefix has no meaningful
    // answer; returning any path here would silently graft unrelated
    // components onto new_prefix (e.g. "/abc" rebased from "/a").
    return "";
  }
  std::string_view rest;
  if (old_prefix == "/") {
    rest = path.substr(1);
  } else if (path.size() > old_prefix.size()) {
    rest = path.substr(old_prefix.size() + 1);  // skip the separating '/'
  }
  if (rest.empty()) {
    return std::string(new_prefix);
  }
  if (new_prefix == "/") {
    return "/" + std::string(rest);
  }
  return std::string(new_prefix) + "/" + std::string(rest);
}

std::string Basename(std::string_view path) {
  if (path == "/" || path.empty()) {
    return "/";
  }
  size_t pos = path.find_last_of('/');
  if (pos == std::string_view::npos) {
    return std::string(path);
  }
  return std::string(path.substr(pos + 1));
}

std::string Dirname(std::string_view path) {
  if (path == "/" || path.empty()) {
    return "/";
  }
  size_t pos = path.find_last_of('/');
  if (pos == std::string_view::npos || pos == 0) {
    return "/";
  }
  return std::string(path.substr(0, pos));
}

std::string Extension(std::string_view path) {
  std::string base = Basename(path);
  size_t pos = base.find_last_of('.');
  if (pos == std::string::npos || pos == 0 || pos + 1 == base.size()) {
    return "";
  }
  std::string ext = base.substr(pos + 1);
  std::transform(ext.begin(), ext.end(), ext.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return ext;
}

bool IsAbsolutePath(std::string_view path) { return !path.empty() && path.front() == '/'; }

}  // namespace witos
