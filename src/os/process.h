// Process control block for the simulated kernel.

#ifndef SRC_OS_PROCESS_H_
#define SRC_OS_PROCESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/os/cgroup.h"
#include "src/os/credentials.h"
#include "src/os/filesystem.h"
#include "src/os/namespaces.h"
#include "src/os/types.h"

namespace witos {

enum class ProcState : uint8_t {
  kRunning,
  kZombie,  // exited, not yet reaped
};

// Kernel-side open file description.
struct OpenFile {
  std::shared_ptr<Filesystem> fs;
  std::string fs_path;
  std::string vfs_path;   // canonical vfs-space path, for audit / TCB checks
  std::string jail_path;  // what the process thinks it opened
  uint32_t flags = 0;
  uint64_t offset = 0;
  DeviceId rdev = 0;  // nonzero when this is a device node
};

struct Process {
  Pid pid = kNoPid;   // host (initial-namespace) pid
  Pid ppid = kNoPid;  // host pid of the parent
  std::string name;
  ProcState state = ProcState::kRunning;
  int exit_code = 0;
  uint64_t start_time_ns = 0;

  Credentials cred;  // uid/gid are values *inside* the process's UID namespace
  NsSet ns;
  CgroupId cgroup = kRootCgroup;

  std::string root = "/";  // vfs-space chroot directory
  std::string cwd = "/";   // jail-space working directory

  std::map<Fd, OpenFile> fds;
  Fd next_fd = 3;  // 0..2 reserved for stdio, which we do not model

  std::vector<Pid> children;  // host pids
};

// A row of `ps` output: the view of one process from a given PID namespace.
struct ProcessInfo {
  Pid pid = kNoPid;  // pid as seen by the *viewer*
  Pid host_pid = kNoPid;
  std::string name;
  Uid uid = 0;
  ProcState state = ProcState::kRunning;
};

}  // namespace witos

#endif  // SRC_OS_PROCESS_H_
