// The namespace subsystem: identity, payloads and lifecycle for all seven
// namespace types (the six Linux namespaces plus the paper's new XCL
// exclusion namespace, §5.6).
//
// The registry owns namespace *identity* (ids, refcounts, parentage) for all
// types and the in-kernel payloads for UTS/MNT/PID/IPC/UID/XCL. NET
// semantics live in `witnet`, keyed by the NsId issued here — mirroring how
// the real network stack hangs its state off `struct net`.

#ifndef SRC_OS_NAMESPACES_H_
#define SRC_OS_NAMESPACES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/os/credentials.h"
#include "src/os/result.h"
#include "src/os/types.h"

namespace witos {

class Filesystem;

enum class NsType : uint8_t {
  kUts = 0,
  kMnt,
  kNet,
  kPid,
  kIpc,
  kUid,
  kXcl,  // exclusion namespace (WatchIT, paper §5.6)
  kMaxValue,
};

inline constexpr size_t kNsTypeCount = static_cast<size_t>(NsType::kMaxValue);

std::string NsTypeName(NsType type);

// clone(2) flags requesting new namespaces.
enum CloneFlags : uint32_t {
  kCloneNewUts = 1u << 0,
  kCloneNewMnt = 1u << 1,
  kCloneNewNet = 1u << 2,
  kCloneNewPid = 1u << 3,
  kCloneNewIpc = 1u << 4,
  kCloneNewUser = 1u << 5,
  kCloneNewXcl = 1u << 6,  // CLONE_XCL from the paper
};

uint32_t CloneFlagFor(NsType type);

// The per-process vector of namespace memberships.
struct NsSet {
  NsId ids[kNsTypeCount] = {};

  NsId Get(NsType type) const { return ids[static_cast<size_t>(type)]; }
  void Set(NsType type, NsId id) { ids[static_cast<size_t>(type)] = id; }
};

// ---------------------------------------------------------------------------
// Payloads

struct UtsNamespace {
  std::string hostname = "localhost";
  std::string domainname = "(none)";
};

// One entry in a mount namespace's mounted-filesystem table (Figure 5 in the
// paper). `fs_root` supports bind mounts: the mount exposes the subtree of
// `fs` rooted at `fs_root` at `mountpoint`.
struct MountEntry {
  std::string source;      // device or fs identifier, for display
  std::string mountpoint;  // normalized absolute VFS path
  std::shared_ptr<Filesystem> fs;
  std::string fs_root = "/";
  bool read_only = false;
};

struct MountNamespace {
  std::vector<MountEntry> table;
};

struct PidNamespace {
  NsId parent = kNoNs;  // kNoNs for the initial namespace
  uint32_t level = 0;
  Pid next_local_pid = 1;
  // host pid -> pid as seen inside this namespace.
  std::map<Pid, Pid> host_to_local;
};

struct IpcNamespace {
  // Named shared-memory segments, keyed by IPC name.
  std::map<std::string, std::string> shm;
};

struct UidMapRange {
  Uid inside_start = 0;
  Uid outside_start = 0;
  uint32_t count = 0;
};

struct UidNamespace {
  NsId parent = kNoNs;
  std::vector<UidMapRange> uid_map;
  std::vector<UidMapRange> gid_map;

  // Maps an in-namespace uid to the host uid; unmapped ids become the
  // overflow uid (65534), as on Linux.
  Uid MapUidToHost(Uid inside) const;
  Gid MapGidToHost(Gid inside) const;
};

inline constexpr Uid kOverflowUid = 65534;

// Exclusion namespace (paper §5.6): a table of excluded directory subtrees
// that member processes cannot access regardless of privileges. A child XCL
// namespace inherits its parent's table at creation.
struct XclNamespace {
  NsId parent = kNoNs;
  std::vector<std::string> excluded;  // normalized absolute VFS paths

  bool IsExcluded(const std::string& normalized_path) const;
};

// ---------------------------------------------------------------------------
// Registry

class NamespaceRegistry {
 public:
  NamespaceRegistry();

  // The initial (host) namespace of each type.
  NsId initial(NsType type) const { return initial_[static_cast<size_t>(type)]; }
  NsSet InitialSet() const;

  // Creates a new namespace of `type`. For MNT the new table is a copy of
  // `copy_from`'s; for PID/UID/XCL the parent linkage (and the XCL exclusion
  // table) comes from `copy_from`. Pass the creator's current namespace.
  NsId Create(NsType type, NsId copy_from);

  // Refcounting: a namespace with no member processes is destroyed.
  void Ref(NsId id);
  void Unref(NsId id);
  bool Exists(NsId id) const;
  NsType TypeOf(NsId id) const;

  // Payload accessors; the id must exist and be of the right type.
  UtsNamespace& Uts(NsId id);
  MountNamespace& Mnt(NsId id);
  PidNamespace& Pidns(NsId id);
  IpcNamespace& Ipc(NsId id);
  UidNamespace& Uidns(NsId id);
  XclNamespace& Xcl(NsId id);
  const XclNamespace& Xcl(NsId id) const;

  // True if `maybe_descendant` is `ancestor` or transitively below it in the
  // PID namespace hierarchy.
  bool PidNsIsDescendant(NsId maybe_descendant, NsId ancestor) const;

  size_t live_count() const { return entries_.size(); }

 private:
  struct Entry {
    NsType type;
    int refcount = 0;
    std::unique_ptr<UtsNamespace> uts;
    std::unique_ptr<MountNamespace> mnt;
    std::unique_ptr<PidNamespace> pid;
    std::unique_ptr<IpcNamespace> ipc;
    std::unique_ptr<UidNamespace> uid;
    std::unique_ptr<XclNamespace> xcl;
  };

  Entry& Lookup(NsId id, NsType type);
  const Entry& Lookup(NsId id, NsType type) const;

  std::map<NsId, Entry> entries_;
  NsId next_id_ = 1;
  NsId initial_[kNsTypeCount] = {};
};

}  // namespace witos

#endif  // SRC_OS_NAMESPACES_H_
