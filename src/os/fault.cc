#include "src/os/fault.h"

namespace witos {

std::string FaultOpKindName(FaultOpKind op) {
  switch (op) {
    case FaultOpKind::kOpen:
      return "open";
    case FaultOpKind::kRead:
      return "read";
    case FaultOpKind::kWrite:
      return "write";
    case FaultOpKind::kTruncate:
      return "truncate";
    case FaultOpKind::kGetAttr:
      return "getattr";
    case FaultOpKind::kReadDir:
      return "readdir";
    case FaultOpKind::kMkDir:
      return "mkdir";
    case FaultOpKind::kUnlink:
      return "unlink";
    case FaultOpKind::kRmDir:
      return "rmdir";
    case FaultOpKind::kRename:
      return "rename";
    case FaultOpKind::kChmod:
      return "chmod";
    case FaultOpKind::kChown:
      return "chown";
    case FaultOpKind::kMkNod:
      return "mknod";
    case FaultOpKind::kLink:
      return "link";
    case FaultOpKind::kSymLink:
      return "symlink";
    case FaultOpKind::kReadLink:
      return "readlink";
    case FaultOpKind::kStatFs:
      return "statfs";
    case FaultOpKind::kAny:
      return "any";
  }
  return "?";
}

uint64_t FaultPlan::Mix(uint64_t x) {
  // splitmix64 finalizer: a cheap, well-distributed whitening of the seed.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double FaultPlan::NextUniform() {
  prng_state_ = Mix(prng_state_);
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(prng_state_ >> 11) * (1.0 / 9007199254740992.0);
}

void FaultPlan::FailNthOp(FaultOpKind op, uint64_t nth, Err err) {
  triggers_.push_back(Trigger{op, nth, 0, err});
}

void FaultPlan::FailEveryNthCall(uint64_t period, Err err) {
  if (period == 0) {
    return;
  }
  triggers_.push_back(Trigger{FaultOpKind::kAny, 0, period, err});
}

void FaultPlan::FailOp(FaultOpKind op, Err err) {
  triggers_.push_back(Trigger{op, 0, 0, err});
}

void FaultPlan::FailWithProbability(double p, Err err) {
  probability_ = p;
  probability_err_ = err;
}

void FaultPlan::CrashAtNthOp(FaultOpKind op, uint64_t nth) {
  if (nth == 0) {
    return;  // "crash on every call" is not a meaningful schedule
  }
  crash_triggers_.push_back(Trigger{op, nth, 0, Err::kOk});
}

bool FaultPlan::ConsumeCrash() {
  bool was_pending = crash_pending_;
  crash_pending_ = false;
  return was_pending;
}

void FaultPlan::Rewind() {
  prng_state_ = Mix(seed_);
  calls_ = 0;
  injected_ = 0;
  crash_pending_ = false;
  crashes_ = 0;
  for (size_t i = 0; i < kNumFaultOpKinds; ++i) {
    op_calls_[i] = 0;
    injected_per_op_[i] = 0;
  }
}

Err FaultPlan::Decide(FaultOpKind op) {
  uint64_t call = ++calls_;
  // kAny is a trigger wildcard, not a per-op kind: it has no slot in the
  // per-op arrays, so a caller probing with kAny counts against the global
  // call counter only.
  const size_t op_index = static_cast<size_t>(op);
  const bool per_op = op_index < kNumFaultOpKinds;
  uint64_t op_call = per_op ? ++op_calls_[op_index] : call;
  if (metric_calls_ != nullptr) {
    metric_calls_->Increment();
  }
  Err err = Err::kOk;
  for (const auto& trigger : triggers_) {
    if (trigger.op != FaultOpKind::kAny && trigger.op != op) {
      continue;
    }
    uint64_t counter = trigger.op == FaultOpKind::kAny ? call : op_call;
    if (trigger.period != 0) {
      if (counter % trigger.period == 0) {
        err = trigger.err;
      }
    } else if (trigger.nth == 0 || trigger.nth == counter) {
      err = trigger.err;
    }
    if (err != Err::kOk) {
      break;
    }
  }
  if (err == Err::kOk && probability_ > 0.0 && NextUniform() < probability_) {
    err = probability_err_;
  }
  if (err != Err::kOk) {
    ++injected_;
    if (per_op) {
      ++injected_per_op_[op_index];
      if (metric_injected_[op_index] != nullptr) {
        metric_injected_[op_index]->Increment();
      }
    }
  }
  // Crash points are evaluated last and independently: they read the same
  // counters but touch none of the error-decision state, so registering one
  // leaves every errno decision above byte-for-byte unchanged.
  for (const auto& trigger : crash_triggers_) {
    if (trigger.op != FaultOpKind::kAny && trigger.op != op) {
      continue;
    }
    uint64_t counter = trigger.op == FaultOpKind::kAny ? call : op_call;
    if (trigger.nth == counter) {
      crash_pending_ = true;
      ++crashes_;
    }
  }
  return err;
}

void FaultPlan::EnableMetrics(witobs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_calls_ = nullptr;
    for (size_t i = 0; i < kNumFaultOpKinds; ++i) {
      metric_injected_[i] = nullptr;
    }
    return;
  }
  registry->SetHelp("watchit_fault_calls_total",
                    "Filesystem operations evaluated by the fault plan");
  registry->SetHelp("watchit_fault_injected_total", "Faults injected by the plan, by op kind");
  metric_calls_ = registry->GetCounter("watchit_fault_calls_total");
  for (size_t i = 0; i < kNumFaultOpKinds; ++i) {
    metric_injected_[i] = registry->GetCounter(
        "watchit_fault_injected_total", {{"op", FaultOpKindName(static_cast<FaultOpKind>(i))}});
  }
}

#define WITOS_INJECT_OR_FORWARD(kind)                  \
  do {                                                 \
    Err _fault = plan_->Decide(FaultOpKind::kind);     \
    if (_fault != Err::kOk) {                          \
      return _fault;                                   \
    }                                                  \
  } while (0)

Result<Stat> ErrorInjectingVfs::Open(const std::string& path, uint32_t flags, Mode mode,
                                     const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kOpen);
  return lower_->Open(path, flags, mode, cred);
}

Result<size_t> ErrorInjectingVfs::ReadAt(const std::string& path, uint64_t offset, size_t size,
                                         std::string* out, const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kRead);
  return lower_->ReadAt(path, offset, size, out, cred);
}

Result<size_t> ErrorInjectingVfs::WriteAt(const std::string& path, uint64_t offset,
                                          const std::string& data, const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kWrite);
  return lower_->WriteAt(path, offset, data, cred);
}

Status ErrorInjectingVfs::Truncate(const std::string& path, uint64_t size,
                                   const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kTruncate);
  return lower_->Truncate(path, size, cred);
}

Result<Stat> ErrorInjectingVfs::GetAttr(const std::string& path, const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kGetAttr);
  return lower_->GetAttr(path, cred);
}

Result<std::vector<DirEntry>> ErrorInjectingVfs::ReadDir(const std::string& path,
                                                         const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kReadDir);
  return lower_->ReadDir(path, cred);
}

Status ErrorInjectingVfs::MkDir(const std::string& path, Mode mode, const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kMkDir);
  return lower_->MkDir(path, mode, cred);
}

Status ErrorInjectingVfs::Unlink(const std::string& path, const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kUnlink);
  return lower_->Unlink(path, cred);
}

Status ErrorInjectingVfs::RmDir(const std::string& path, const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kRmDir);
  return lower_->RmDir(path, cred);
}

Status ErrorInjectingVfs::Rename(const std::string& from, const std::string& to,
                                 const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kRename);
  return lower_->Rename(from, to, cred);
}

Status ErrorInjectingVfs::Chmod(const std::string& path, Mode mode, const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kChmod);
  return lower_->Chmod(path, mode, cred);
}

Status ErrorInjectingVfs::Chown(const std::string& path, Uid uid, Gid gid,
                                const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kChown);
  return lower_->Chown(path, uid, gid, cred);
}

Status ErrorInjectingVfs::MkNod(const std::string& path, FileType type, DeviceId rdev, Mode mode,
                                const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kMkNod);
  return lower_->MkNod(path, type, rdev, mode, cred);
}

Status ErrorInjectingVfs::Link(const std::string& oldpath, const std::string& newpath,
                               const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kLink);
  return lower_->Link(oldpath, newpath, cred);
}

Status ErrorInjectingVfs::SymLink(const std::string& target, const std::string& linkpath,
                                  const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kSymLink);
  return lower_->SymLink(target, linkpath, cred);
}

Result<std::string> ErrorInjectingVfs::ReadLink(const std::string& path,
                                                const Credentials& cred) {
  WITOS_INJECT_OR_FORWARD(kReadLink);
  return lower_->ReadLink(path, cred);
}

Result<FsStats> ErrorInjectingVfs::StatFs() const {
  Err fault = plan_->Decide(FaultOpKind::kStatFs);
  if (fault != Err::kOk) {
    return fault;
  }
  return lower_->StatFs();
}

#undef WITOS_INJECT_OR_FORWARD

}  // namespace witos
