// A minimal cgroup (pids-controller-style): bounds how many live processes
// a group may hold. ContainIT places every perforated container in its own
// cgroup so a rogue admin cannot fork-bomb the host from inside the sandbox
// — confinement covers resources, not just views.

#ifndef SRC_OS_CGROUP_H_
#define SRC_OS_CGROUP_H_

#include <map>
#include <string>

#include "src/os/types.h"

namespace witos {

using CgroupId = uint64_t;
inline constexpr CgroupId kRootCgroup = 0;  // unbounded

struct Cgroup {
  CgroupId id = kRootCgroup;
  std::string name;
  uint32_t max_processes = 0;  // 0 = unlimited
  uint32_t live_processes = 0;
  uint64_t total_forks = 0;    // lifetime counter
  uint64_t fork_failures = 0;  // denied by the limit
};

class CgroupRegistry {
 public:
  CgroupRegistry() {
    Cgroup root;
    root.name = "root";
    groups_.emplace(kRootCgroup, root);
  }

  CgroupId Create(const std::string& name, uint32_t max_processes) {
    Cgroup group;
    group.id = next_id_++;
    group.name = name;
    group.max_processes = max_processes;
    CgroupId id = group.id;
    groups_.emplace(id, group);
    return id;
  }

  Cgroup* Find(CgroupId id) {
    auto it = groups_.find(id);
    return it == groups_.end() ? nullptr : &it->second;
  }
  const Cgroup* Find(CgroupId id) const {
    auto it = groups_.find(id);
    return it == groups_.end() ? nullptr : &it->second;
  }

  // Charges one process against the group; false when the pids limit is hit.
  bool TryCharge(CgroupId id) {
    Cgroup* group = Find(id);
    if (group == nullptr) {
      return false;
    }
    ++group->total_forks;
    if (group->max_processes != 0 && group->live_processes >= group->max_processes) {
      ++group->fork_failures;
      return false;
    }
    ++group->live_processes;
    return true;
  }

  void Uncharge(CgroupId id) {
    Cgroup* group = Find(id);
    if (group != nullptr && group->live_processes > 0) {
      --group->live_processes;
    }
  }

  void Remove(CgroupId id) {
    if (id != kRootCgroup) {
      groups_.erase(id);
    }
  }

  size_t size() const { return groups_.size(); }

 private:
  std::map<CgroupId, Cgroup> groups_;
  CgroupId next_id_ = 1;
};

}  // namespace witos

#endif  // SRC_OS_CGROUP_H_
