// witfault: deterministic fault injection at the filesystem boundary.
//
// WatchIT's containment argument (paper §4, Table 1) must hold not only on
// the happy path but on every error path: an EIO at the wrong moment must
// never let an operation slip past the ITFS policy gate or the XCL exclusion
// table. In the spirit of CrashMonkey-style systematic fault injection, this
// module makes those interleavings reproducible:
//
//   * FaultPlan — a seeded schedule of injected errors. Triggers are
//     nth-call (absolute or per-op-kind), every-nth-call, per-op-kind
//     blanket, and probabilistic (seeded splitmix64, so the same seed always
//     yields the same fault sequence). First matching trigger wins.
//   * ErrorInjectingVfs — a Filesystem decorator consulting the plan before
//     forwarding each operation to the wrapped filesystem. It can be slipped
//     under ITFS, mounted in the kernel VFS, or handed to any other
//     Filesystem consumer, so the whole stack above it is driven through
//     EIO/ENOSPC/ENOMEM at every hop.
//
// Injection decisions are counted into the witobs registry
// (`watchit_fault_injected_total{op=...}` / `watchit_fault_calls_total`)
// when a registry is attached, so a fault campaign shows up in the same
// accounting plane as the traffic it perturbs.

#ifndef SRC_OS_FAULT_H_
#define SRC_OS_FAULT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/os/filesystem.h"
#include "src/os/result.h"

namespace witos {

// One slot per Filesystem virtual; kAny addresses all of them in a trigger.
enum class FaultOpKind {
  kOpen,
  kRead,
  kWrite,
  kTruncate,
  kGetAttr,
  kReadDir,
  kMkDir,
  kUnlink,
  kRmDir,
  kRename,
  kChmod,
  kChown,
  kMkNod,
  kLink,
  kSymLink,
  kReadLink,
  kStatFs,
  kAny,
};

inline constexpr size_t kNumFaultOpKinds = static_cast<size_t>(FaultOpKind::kAny);

std::string FaultOpKindName(FaultOpKind op);

// A deterministic fault schedule. Not thread-safe: one plan drives one
// single-threaded fault campaign (the simulator's kernel is single-threaded).
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 0) : seed_(seed), prng_state_(Mix(seed)) {}

  // --- Trigger registration (composable; earliest-registered match wins) ---

  // Fails the `nth` call overall (1-based), or the `nth` call of kind `op`.
  void FailNthCall(uint64_t nth, Err err) { FailNthOp(FaultOpKind::kAny, nth, err); }
  void FailNthOp(FaultOpKind op, uint64_t nth, Err err);
  // Fails every `period`-th call (call numbers divisible by `period`).
  void FailEveryNthCall(uint64_t period, Err err);
  // Fails every call of kind `op` unconditionally.
  void FailOp(FaultOpKind op, Err err);
  // Fails each call independently with probability `p` (seeded, so the
  // decision sequence is a pure function of the seed and the call order).
  void FailWithProbability(double p, Err err);

  // --- Crash points (witcrash, DESIGN.md §15) -------------------------------

  // A crash trigger marks the call where the process hosting the monitored
  // state dies, instead of injecting an errno. Crash triggers observe the
  // same call counters as the error triggers but never perturb the decision
  // stream — no errno, no counter skew, no PRNG draw — so a plan with a
  // crash point added makes every non-crash decision byte-for-byte
  // identically to the plan without it, and crash points compose with the
  // existing stage×errno sweeps. When the `nth` matching call is reached,
  // crash_pending() latches; the driver (the witcrash harness) checks it
  // after Decide() and pulls the plug.
  void CrashAtNthCall(uint64_t nth) { CrashAtNthOp(FaultOpKind::kAny, nth); }
  void CrashAtNthOp(FaultOpKind op, uint64_t nth);

  // Latched once a crash trigger fires; sticky until ConsumeCrash() or
  // Rewind().
  bool crash_pending() const { return crash_pending_; }
  // Clears the latch; returns whether it was set (the "did I just die" test
  // drivers gate the kill on).
  bool ConsumeCrash();
  uint64_t crashes() const { return crashes_; }

  // --- Decision point -------------------------------------------------------

  // Called once per intercepted operation; returns kOk to let it through.
  Err Decide(FaultOpKind op);

  // --- Accounting -----------------------------------------------------------

  uint64_t calls() const { return calls_; }
  uint64_t injected() const { return injected_; }
  uint64_t injected_for(FaultOpKind op) const {
    return injected_per_op_[static_cast<size_t>(op)];
  }
  // Rewinds call counters and the PRNG to the initial seeded state without
  // forgetting the registered triggers: the same plan replays identically.
  void Rewind();

  // Publishes injection counters into `registry` (pass nullptr to detach).
  void EnableMetrics(witobs::MetricsRegistry* registry);

 private:
  struct Trigger {
    FaultOpKind op = FaultOpKind::kAny;
    uint64_t nth = 0;     // 0 = every call, else 1-based call index
    uint64_t period = 0;  // non-zero: fire when call-number % period == 0
    Err err = Err::kIo;
  };

  static uint64_t Mix(uint64_t x);
  // splitmix64 step; uniform in [0, 1).
  double NextUniform();

  uint64_t seed_;
  uint64_t prng_state_;
  std::vector<Trigger> triggers_;
  // Crash points live in their own list: they share the Trigger shape (err
  // unused) but must never shadow or reorder the error triggers.
  std::vector<Trigger> crash_triggers_;
  double probability_ = 0.0;
  Err probability_err_ = Err::kIo;
  bool crash_pending_ = false;
  uint64_t crashes_ = 0;

  uint64_t calls_ = 0;
  uint64_t op_calls_[kNumFaultOpKinds] = {};
  uint64_t injected_ = 0;
  uint64_t injected_per_op_[kNumFaultOpKinds] = {};

  witobs::Counter* metric_calls_ = nullptr;
  witobs::Counter* metric_injected_[kNumFaultOpKinds] = {};
};

// Filesystem decorator that injects the plan's faults in front of a lower
// filesystem. The plan is shared so the driving test keeps its handle on the
// schedule and the counters while the decorated stack owns the decorator.
class ErrorInjectingVfs : public Filesystem {
 public:
  ErrorInjectingVfs(std::shared_ptr<Filesystem> lower, std::shared_ptr<FaultPlan> plan)
      : lower_(std::move(lower)), plan_(std::move(plan)) {}

  std::string FsType() const override { return "faultfs." + lower_->FsType(); }
  bool Cacheable() const override { return lower_->Cacheable(); }

  Result<Stat> Open(const std::string& path, uint32_t flags, Mode mode,
                    const Credentials& cred) override;
  Result<size_t> ReadAt(const std::string& path, uint64_t offset, size_t size, std::string* out,
                        const Credentials& cred) override;
  Result<size_t> WriteAt(const std::string& path, uint64_t offset, const std::string& data,
                         const Credentials& cred) override;
  Status Truncate(const std::string& path, uint64_t size, const Credentials& cred) override;
  Result<Stat> GetAttr(const std::string& path, const Credentials& cred) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path,
                                        const Credentials& cred) override;
  Status MkDir(const std::string& path, Mode mode, const Credentials& cred) override;
  Status Unlink(const std::string& path, const Credentials& cred) override;
  Status RmDir(const std::string& path, const Credentials& cred) override;
  Status Rename(const std::string& from, const std::string& to,
                const Credentials& cred) override;
  Status Chmod(const std::string& path, Mode mode, const Credentials& cred) override;
  Status Chown(const std::string& path, Uid uid, Gid gid, const Credentials& cred) override;
  Status MkNod(const std::string& path, FileType type, DeviceId rdev, Mode mode,
               const Credentials& cred) override;
  Status Link(const std::string& oldpath, const std::string& newpath,
              const Credentials& cred) override;
  Status SymLink(const std::string& target, const std::string& linkpath,
                 const Credentials& cred) override;
  Result<std::string> ReadLink(const std::string& path, const Credentials& cred) override;
  Result<FsStats> StatFs() const override;
  // Not a fault point: generation queries are internal metadata lookups with
  // no errno to inject — the consumer (the ITFS verdict cache) must treat a
  // changed generation as a miss, and faults are injected on the resulting
  // real read instead.
  uint64_t Generation(const std::string& path) const override {
    return lower_->Generation(path);
  }

  FaultPlan& plan() { return *plan_; }
  Filesystem& lower() { return *lower_; }

 private:
  std::shared_ptr<Filesystem> lower_;
  std::shared_ptr<FaultPlan> plan_;
};

}  // namespace witos

#endif  // SRC_OS_FAULT_H_
