#include "src/os/namespaces.h"

#include <cassert>

#include "src/os/path.h"

namespace witos {

std::string NsTypeName(NsType type) {
  switch (type) {
    case NsType::kUts:
      return "uts";
    case NsType::kMnt:
      return "mnt";
    case NsType::kNet:
      return "net";
    case NsType::kPid:
      return "pid";
    case NsType::kIpc:
      return "ipc";
    case NsType::kUid:
      return "user";
    case NsType::kXcl:
      return "xcl";
    case NsType::kMaxValue:
      break;
  }
  return "?";
}

uint32_t CloneFlagFor(NsType type) {
  switch (type) {
    case NsType::kUts:
      return kCloneNewUts;
    case NsType::kMnt:
      return kCloneNewMnt;
    case NsType::kNet:
      return kCloneNewNet;
    case NsType::kPid:
      return kCloneNewPid;
    case NsType::kIpc:
      return kCloneNewIpc;
    case NsType::kUid:
      return kCloneNewUser;
    case NsType::kXcl:
      return kCloneNewXcl;
    case NsType::kMaxValue:
      break;
  }
  return 0;
}

Uid UidNamespace::MapUidToHost(Uid inside) const {
  for (const auto& range : uid_map) {
    if (inside >= range.inside_start && inside < range.inside_start + range.count) {
      return range.outside_start + (inside - range.inside_start);
    }
  }
  return kOverflowUid;
}

Gid UidNamespace::MapGidToHost(Gid inside) const {
  for (const auto& range : gid_map) {
    if (inside >= range.inside_start && inside < range.inside_start + range.count) {
      return range.outside_start + (inside - range.inside_start);
    }
  }
  return kOverflowUid;
}

bool XclNamespace::IsExcluded(const std::string& normalized_path) const {
  for (const auto& prefix : excluded) {
    if (PathIsUnder(normalized_path, prefix)) {
      return true;
    }
  }
  return false;
}

NamespaceRegistry::NamespaceRegistry() {
  for (size_t i = 0; i < kNsTypeCount; ++i) {
    auto type = static_cast<NsType>(i);
    initial_[i] = Create(type, kNoNs);
    // The initial namespaces are permanent: pin them.
    Ref(initial_[i]);
  }
  // The initial UID namespace is the identity mapping over all uids.
  Uidns(initial(NsType::kUid)).uid_map = {{0, 0, 4294000000u}};
  Uidns(initial(NsType::kUid)).gid_map = {{0, 0, 4294000000u}};
}

NsSet NamespaceRegistry::InitialSet() const {
  NsSet set;
  for (size_t i = 0; i < kNsTypeCount; ++i) {
    set.ids[i] = initial_[i];
  }
  return set;
}

NsId NamespaceRegistry::Create(NsType type, NsId copy_from) {
  NsId id = next_id_++;
  Entry entry;
  entry.type = type;
  switch (type) {
    case NsType::kUts: {
      entry.uts = std::make_unique<UtsNamespace>();
      if (copy_from != kNoNs) {
        *entry.uts = Uts(copy_from);
      }
      break;
    }
    case NsType::kMnt: {
      entry.mnt = std::make_unique<MountNamespace>();
      if (copy_from != kNoNs) {
        // CLONE_NEWNS semantics: the new namespace starts as a copy of the
        // creator's mount table and diverges from there.
        entry.mnt->table = Mnt(copy_from).table;
      }
      break;
    }
    case NsType::kNet: {
      // Identity only; witnet owns the payload.
      break;
    }
    case NsType::kPid: {
      entry.pid = std::make_unique<PidNamespace>();
      if (copy_from != kNoNs) {
        entry.pid->parent = copy_from;
        entry.pid->level = Pidns(copy_from).level + 1;
      }
      break;
    }
    case NsType::kIpc: {
      entry.ipc = std::make_unique<IpcNamespace>();
      break;
    }
    case NsType::kUid: {
      entry.uid = std::make_unique<UidNamespace>();
      if (copy_from != kNoNs) {
        entry.uid->parent = copy_from;
      }
      break;
    }
    case NsType::kXcl: {
      entry.xcl = std::make_unique<XclNamespace>();
      if (copy_from != kNoNs) {
        // "A newly created namespace instance inherits its parent's
        // exclusion table." (paper §5.6)
        entry.xcl->parent = copy_from;
        entry.xcl->excluded = Xcl(copy_from).excluded;
      }
      break;
    }
    case NsType::kMaxValue:
      assert(false);
  }
  entries_.emplace(id, std::move(entry));
  return id;
}

void NamespaceRegistry::Ref(NsId id) {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  ++it->second.refcount;
}

void NamespaceRegistry::Unref(NsId id) {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  if (--it->second.refcount <= 0) {
    entries_.erase(it);
  }
}

bool NamespaceRegistry::Exists(NsId id) const { return entries_.count(id) > 0; }

NsType NamespaceRegistry::TypeOf(NsId id) const {
  auto it = entries_.find(id);
  assert(it != entries_.end());
  return it->second.type;
}

NamespaceRegistry::Entry& NamespaceRegistry::Lookup(NsId id, NsType type) {
  auto it = entries_.find(id);
  assert(it != entries_.end() && it->second.type == type);
  (void)type;
  return it->second;
}

const NamespaceRegistry::Entry& NamespaceRegistry::Lookup(NsId id, NsType type) const {
  auto it = entries_.find(id);
  assert(it != entries_.end() && it->second.type == type);
  (void)type;
  return it->second;
}

UtsNamespace& NamespaceRegistry::Uts(NsId id) { return *Lookup(id, NsType::kUts).uts; }
MountNamespace& NamespaceRegistry::Mnt(NsId id) { return *Lookup(id, NsType::kMnt).mnt; }
PidNamespace& NamespaceRegistry::Pidns(NsId id) { return *Lookup(id, NsType::kPid).pid; }
IpcNamespace& NamespaceRegistry::Ipc(NsId id) { return *Lookup(id, NsType::kIpc).ipc; }
UidNamespace& NamespaceRegistry::Uidns(NsId id) { return *Lookup(id, NsType::kUid).uid; }
XclNamespace& NamespaceRegistry::Xcl(NsId id) { return *Lookup(id, NsType::kXcl).xcl; }
const XclNamespace& NamespaceRegistry::Xcl(NsId id) const {
  return *Lookup(id, NsType::kXcl).xcl;
}

bool NamespaceRegistry::PidNsIsDescendant(NsId maybe_descendant, NsId ancestor) const {
  NsId cur = maybe_descendant;
  while (cur != kNoNs) {
    if (cur == ancestor) {
      return true;
    }
    auto it = entries_.find(cur);
    if (it == entries_.end() || it->second.type != NsType::kPid) {
      return false;
    }
    cur = it->second.pid->parent;
  }
  return false;
}

}  // namespace witos
