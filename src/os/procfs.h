// ProcFs: a /proc filesystem reflecting one PID namespace.
//
// Each mount of procfs is bound to the PID namespace of the mounting
// process, exactly as on Linux — this is why a container with its own PID
// namespace sees only its own processes in /proc even when it shares the
// host's filesystem.

#ifndef SRC_OS_PROCFS_H_
#define SRC_OS_PROCFS_H_

#include <string>
#include <vector>

#include "src/os/filesystem.h"
#include "src/os/namespaces.h"

namespace witos {

class Kernel;

class ProcFs : public Filesystem {
 public:
  ProcFs(Kernel* kernel, NsId pid_ns) : kernel_(kernel), pid_ns_(pid_ns) {}

  std::string FsType() const override { return "proc"; }
  bool Cacheable() const override { return false; }  // always-fresh pseudo-fs

  Result<Stat> Open(const std::string& path, uint32_t flags, Mode mode,
                    const Credentials& cred) override;
  Result<size_t> ReadAt(const std::string& path, uint64_t offset, size_t size, std::string* out,
                        const Credentials& cred) override;
  Result<size_t> WriteAt(const std::string& path, uint64_t offset, const std::string& data,
                         const Credentials& cred) override;
  Status Truncate(const std::string& path, uint64_t size, const Credentials& cred) override;
  Result<Stat> GetAttr(const std::string& path, const Credentials& cred) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path,
                                        const Credentials& cred) override;
  Status MkDir(const std::string& path, Mode mode, const Credentials& cred) override;
  Status Unlink(const std::string& path, const Credentials& cred) override;
  Status RmDir(const std::string& path, const Credentials& cred) override;
  Status Rename(const std::string& from, const std::string& to,
                const Credentials& cred) override;
  Status Chmod(const std::string& path, Mode mode, const Credentials& cred) override;
  Status Chown(const std::string& path, Uid uid, Gid gid, const Credentials& cred) override;
  Status MkNod(const std::string& path, FileType type, DeviceId rdev, Mode mode,
               const Credentials& cred) override;
  Status SymLink(const std::string& target, const std::string& linkpath,
                 const Credentials& cred) override;
  Result<std::string> ReadLink(const std::string& path, const Credentials& cred) override;
  Result<FsStats> StatFs() const override;

 private:
  // Renders the content of a proc file, or ENOENT.
  Result<std::string> Render(const std::string& path) const;

  Kernel* kernel_;
  NsId pid_ns_;
};

}  // namespace witos

#endif  // SRC_OS_PROCFS_H_
