// Kernel audit log: an append-only record of security-relevant events.
//
// WatchIT logs every boundary-crossing action (permission broker requests,
// denied syscalls, capability failures, XCL hits). The log is append-only by
// construction — there is no mutating API — and can be mirrored to replicas,
// which models the paper's "replicated on a remote append-only storage"
// defence against log tampering (Attack 6).

#ifndef SRC_OS_AUDIT_H_
#define SRC_OS_AUDIT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/os/types.h"

namespace witos {

enum class AuditEvent : uint8_t {
  kSyscallDenied,
  kCapabilityDenied,
  kXclDenied,
  kFileAccess,
  kFileDenied,
  kNetworkFlow,
  kNetworkBlocked,
  kBrokerRequest,
  kBrokerDenied,
  kContainerDeployed,
  kContainerTerminated,
  kTcbViolation,
  kSessionEvent,
};

std::string AuditEventName(AuditEvent ev);

struct AuditRecord {
  uint64_t seq = 0;
  uint64_t time_ns = 0;
  AuditEvent event = AuditEvent::kSessionEvent;
  Pid pid = kNoPid;
  Uid uid = 0;
  std::string detail;
};

// Appends are internally synchronized: with the broker's hot state sharded
// by ticket, concurrent request paths land here — the one backend every
// shard still crosses — and must not corrupt the trail.
class AuditLog {
 public:
  void Append(AuditEvent event, Pid pid, Uid uid, std::string detail, uint64_t time_ns);

  // Borrowed view for quiesced readers (reports, post-run assertions);
  // concurrent appenders invalidate it — use Filter() for a stable copy.
  const std::vector<AuditRecord>& records() const { return records_; }
  size_t size() const;

  // Records matching a predicate (analysis-side convenience).
  std::vector<AuditRecord> Filter(const std::function<bool(const AuditRecord&)>& pred) const;
  size_t CountEvent(AuditEvent event) const;

  // Registers a replica sink; every subsequent append is mirrored to it.
  // The sink runs under the log's lock and must not call back in.
  using Sink = std::function<void(const AuditRecord&)>;
  void AddReplica(Sink sink);

 private:
  mutable std::mutex mu_;
  std::vector<AuditRecord> records_;
  std::vector<Sink> replicas_;
  uint64_t next_seq_ = 1;
};

}  // namespace witos

#endif  // SRC_OS_AUDIT_H_
