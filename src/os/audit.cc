#include "src/os/audit.h"

#include <utility>

namespace witos {

std::string AuditEventName(AuditEvent ev) {
  switch (ev) {
    case AuditEvent::kSyscallDenied:
      return "SYSCALL_DENIED";
    case AuditEvent::kCapabilityDenied:
      return "CAPABILITY_DENIED";
    case AuditEvent::kXclDenied:
      return "XCL_DENIED";
    case AuditEvent::kFileAccess:
      return "FILE_ACCESS";
    case AuditEvent::kFileDenied:
      return "FILE_DENIED";
    case AuditEvent::kNetworkFlow:
      return "NETWORK_FLOW";
    case AuditEvent::kNetworkBlocked:
      return "NETWORK_BLOCKED";
    case AuditEvent::kBrokerRequest:
      return "BROKER_REQUEST";
    case AuditEvent::kBrokerDenied:
      return "BROKER_DENIED";
    case AuditEvent::kContainerDeployed:
      return "CONTAINER_DEPLOYED";
    case AuditEvent::kContainerTerminated:
      return "CONTAINER_TERMINATED";
    case AuditEvent::kTcbViolation:
      return "TCB_VIOLATION";
    case AuditEvent::kSessionEvent:
      return "SESSION_EVENT";
  }
  return "UNKNOWN";
}

void AuditLog::Append(AuditEvent event, Pid pid, Uid uid, std::string detail, uint64_t time_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  AuditRecord rec;
  rec.seq = next_seq_++;
  rec.time_ns = time_ns;
  rec.event = event;
  rec.pid = pid;
  rec.uid = uid;
  rec.detail = std::move(detail);
  for (const auto& sink : replicas_) {
    sink(rec);
  }
  records_.push_back(std::move(rec));
}

size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<AuditRecord> AuditLog::Filter(
    const std::function<bool(const AuditRecord&)>& pred) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditRecord> out;
  for (const auto& rec : records_) {
    if (pred(rec)) {
      out.push_back(rec);
    }
  }
  return out;
}

size_t AuditLog::CountEvent(AuditEvent event) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& rec : records_) {
    if (rec.event == event) {
      ++n;
    }
  }
  return n;
}

void AuditLog::AddReplica(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  replicas_.push_back(std::move(sink));
}

}  // namespace witos
