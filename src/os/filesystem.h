// The abstract filesystem interface every mountable filesystem implements
// (memfs, procfs, devfs, and witfs's FUSE/ITFS interposition layers).
//
// The interface is path-based and stateless: permission checks happen in
// Open/GetAttr and data transfer takes explicit offsets. The kernel's
// per-process file-descriptor table supplies cursor state. Statelessness is
// what makes ITFS interposition and bind mounts simple compositional
// wrappers around an underlying filesystem.
//
// Paths passed to a Filesystem are always normalized and absolute *within
// that filesystem* ("/" is the filesystem's own root); the VFS handles mount
// points, chroot and symlink traversal above this interface.

#ifndef SRC_OS_FILESYSTEM_H_
#define SRC_OS_FILESYSTEM_H_

#include <string>
#include <vector>

#include "src/os/credentials.h"
#include "src/os/result.h"
#include "src/os/types.h"

namespace witos {

struct FsStats {
  uint64_t total_bytes = 0;
  uint64_t used_bytes = 0;
  uint64_t inode_count = 0;
};

// Sentinel for Filesystem::Generation: "this filesystem cannot track the
// file's mutation history". Consumers must treat it as "never cache".
inline constexpr uint64_t kNoGeneration = 0;

class Filesystem {
 public:
  virtual ~Filesystem() = default;

  // Filesystem type name as shown in the mount table ("ext4", "fuse.itfs",
  // "proc", ...).
  virtual std::string FsType() const = 0;

  // Whether the page cache may hold this filesystem's data. Dynamic
  // pseudo-filesystems (procfs) return false.
  virtual bool Cacheable() const { return true; }

  // Opens (and with kOpenCreate, possibly creates) the file at `path`,
  // enforcing POSIX permissions against `cred`. Returns the post-open
  // attributes. Does not allocate an fd — that is the kernel's job.
  virtual Result<Stat> Open(const std::string& path, uint32_t flags, Mode mode,
                            const Credentials& cred) = 0;

  // Reads up to `size` bytes from `offset` into `out` (replacing its
  // contents). Short reads at EOF return the remaining bytes; reading at or
  // past EOF returns 0 bytes.
  virtual Result<size_t> ReadAt(const std::string& path, uint64_t offset, size_t size,
                                std::string* out, const Credentials& cred) = 0;

  // Writes `data` at `offset`, extending the file if needed.
  virtual Result<size_t> WriteAt(const std::string& path, uint64_t offset,
                                 const std::string& data, const Credentials& cred) = 0;

  virtual Status Truncate(const std::string& path, uint64_t size, const Credentials& cred) = 0;

  // Attributes without following a final symlink (lstat semantics); the VFS
  // follows symlinks itself.
  virtual Result<Stat> GetAttr(const std::string& path, const Credentials& cred) = 0;

  virtual Result<std::vector<DirEntry>> ReadDir(const std::string& path,
                                                const Credentials& cred) = 0;

  virtual Status MkDir(const std::string& path, Mode mode, const Credentials& cred) = 0;
  virtual Status Unlink(const std::string& path, const Credentials& cred) = 0;
  virtual Status RmDir(const std::string& path, const Credentials& cred) = 0;
  virtual Status Rename(const std::string& from, const std::string& to,
                        const Credentials& cred) = 0;
  virtual Status Chmod(const std::string& path, Mode mode, const Credentials& cred) = 0;
  virtual Status Chown(const std::string& path, Uid uid, Gid gid, const Credentials& cred) = 0;

  // Creates a device node / fifo (mknod(2)). The *capability* check is the
  // kernel's; the filesystem only checks directory write permission.
  virtual Status MkNod(const std::string& path, FileType type, DeviceId rdev, Mode mode,
                       const Credentials& cred) = 0;

  // Hard link (link(2)). Default: not supported by this filesystem.
  virtual Status Link(const std::string& oldpath, const std::string& newpath,
                      const Credentials& cred) {
    (void)oldpath;
    (void)newpath;
    (void)cred;
    return Err::kNoSys;
  }

  virtual Status SymLink(const std::string& target, const std::string& linkpath,
                         const Credentials& cred) = 0;
  virtual Result<std::string> ReadLink(const std::string& path, const Credentials& cred) = 0;

  virtual Result<FsStats> StatFs() const = 0;

  // Mutation generation of the file at `path`: any value that is guaranteed
  // to change whenever the file's content or identity changes (write,
  // truncate, rename, link, chown, delete+recreate). ITFS keys its
  // signature-verdict cache on (path, generation), so the contract is
  // deliberately one-sided: generations may change spuriously (costing only
  // a cache miss) but must never stay equal across a mutation. Returns
  // kNoGeneration for missing files, directories, or filesystems that do
  // not track generations — i.e. "do not cache". This is an internal
  // metadata query: implementations charge no simulated time and perform no
  // permission checks.
  virtual uint64_t Generation(const std::string& path) const {
    (void)path;
    return kNoGeneration;
  }
};

}  // namespace witos

#endif  // SRC_OS_FILESYSTEM_H_
