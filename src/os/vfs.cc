#include "src/os/vfs.h"

#include <deque>

#include "src/os/path.h"

namespace witos {

namespace {
constexpr int kMaxSymlinkDepth = 40;
}  // namespace

Status Vfs::AddMount(NsId mnt_ns, MountEntry entry) {
  entry.mountpoint = NormalizePath(entry.mountpoint);
  entry.fs_root = NormalizePath(entry.fs_root);
  auto& table = registry_->Mnt(mnt_ns).table;
  for (const auto& existing : table) {
    if (existing.mountpoint == entry.mountpoint) {
      return Err::kBusy;
    }
  }
  table.push_back(std::move(entry));
  return Status::Ok();
}

Status Vfs::RemoveMount(NsId mnt_ns, const std::string& mountpoint) {
  std::string norm = NormalizePath(mountpoint);
  auto& table = registry_->Mnt(mnt_ns).table;
  // Refuse to unmount a mount that has submounts.
  for (const auto& entry : table) {
    if (entry.mountpoint != norm && PathIsUnder(entry.mountpoint, norm)) {
      return Err::kBusy;
    }
  }
  for (auto it = table.begin(); it != table.end(); ++it) {
    if (it->mountpoint == norm) {
      table.erase(it);
      return Status::Ok();
    }
  }
  return Err::kInval;
}

size_t Vfs::RemoveMountsUnder(NsId mnt_ns, const std::string& prefix) {
  std::string norm = NormalizePath(prefix);
  auto& table = registry_->Mnt(mnt_ns).table;
  size_t before = table.size();
  std::erase_if(table,
                [&norm](const MountEntry& entry) { return PathIsUnder(entry.mountpoint, norm); });
  return before - table.size();
}

Result<MountEntry> Vfs::FindMount(NsId mnt_ns, const std::string& vfs_path) const {
  const auto& table = registry_->Mnt(mnt_ns).table;
  const MountEntry* best = nullptr;
  size_t best_len = 0;
  for (const auto& entry : table) {
    if (PathIsUnder(vfs_path, entry.mountpoint)) {
      size_t len = entry.mountpoint.size();
      if (best == nullptr || len > best_len) {
        best = &entry;
        best_len = len;
      }
    }
  }
  if (best == nullptr) {
    return Err::kNoEnt;
  }
  return *best;
}

Result<ResolvedPath> Vfs::Resolve(const VfsContext& ctx, std::string_view user_path,
                                  bool follow_final, bool allow_missing_final) const {
  if (user_path.size() > 4096) {
    return Err::kNameTooLong;
  }
  // Work queue of path components, jail-space.
  std::deque<std::string> todo;
  auto push_all = [&todo](std::string_view p) {
    auto parts = SplitPath(p);
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      todo.push_front(std::move(*it));
    }
  };
  std::string cur = "/";
  if (IsAbsolutePath(user_path)) {
    push_all(user_path);
  } else {
    // push_all prepends, so push the relative path first and the cwd after:
    // the cwd components must be consumed before the path's.
    push_all(user_path);
    push_all(ctx.cwd);
  }

  int symlink_depth = 0;
  auto stat_at = [&](const std::string& jail_path) -> Result<Stat> {
    std::string vfs_path = jail_path == "/" ? ctx.root : JoinPath(ctx.root, jail_path.substr(1));
    auto mount = FindMount(ctx.mnt_ns, vfs_path);
    if (!mount.ok()) {
      return mount.error();
    }
    std::string fs_path = RebasePath(vfs_path, mount->mountpoint, mount->fs_root);
    return mount->fs->GetAttr(fs_path, ctx.cred);
  };

  while (!todo.empty()) {
    std::string comp = std::move(todo.front());
    todo.pop_front();
    if (comp == "..") {
      // Clamp at the jail root, as chroot does.
      if (cur != "/") {
        cur = Dirname(cur);
      }
      continue;
    }
    std::string next = cur == "/" ? "/" + comp : cur + "/" + comp;
    bool is_final = todo.empty();
    // XCL enforcement happens *before* the lookup so that exclusion masks
    // even the existence of the subtree ("cannot be accessed by processes
    // that belong to that namespace, disregarding the user privileges").
    {
      std::string vfs_next = JoinPath(ctx.root, next.substr(1));
      if (ctx.xcl_ns != kNoNs && registry_->Xcl(ctx.xcl_ns).IsExcluded(vfs_next)) {
        if (audit_ != nullptr) {
          audit_->Append(AuditEvent::kXclDenied, ctx.pid, ctx.cred.uid, vfs_next, 0);
        }
        return Err::kAcces;
      }
    }
    auto st = stat_at(next);
    if (!st.ok()) {
      if (st.error() == Err::kNoEnt && is_final && allow_missing_final) {
        // Parent must exist and be a directory.
        auto parent_st = stat_at(cur);
        if (!parent_st.ok()) {
          return parent_st.error();
        }
        if (parent_st->type != FileType::kDirectory) {
          return Err::kNotDir;
        }
        cur = next;
        std::string vfs_path = JoinPath(ctx.root, cur.substr(1));
        if (ctx.xcl_ns != kNoNs && registry_->Xcl(ctx.xcl_ns).IsExcluded(vfs_path)) {
          if (audit_ != nullptr) {
            audit_->Append(AuditEvent::kXclDenied, ctx.pid, ctx.cred.uid, vfs_path, 0);
          }
          return Err::kAcces;
        }
        WITOS_ASSIGN_OR_RETURN(MountEntry mount, FindMount(ctx.mnt_ns, vfs_path));
        ResolvedPath out;
        out.jail_path = cur;
        out.vfs_path = vfs_path;
        out.fs = mount.fs;
        out.fs_path = RebasePath(vfs_path, mount.mountpoint, mount.fs_root);
        out.read_only = mount.read_only;
        out.exists = false;
        return out;
      }
      return st.error();
    }
    if (st->type == FileType::kSymlink && (!is_final || follow_final)) {
      if (++symlink_depth > kMaxSymlinkDepth) {
        return Err::kLoop;
      }
      std::string vfs_path = JoinPath(ctx.root, next.substr(1));
      WITOS_ASSIGN_OR_RETURN(MountEntry mount, FindMount(ctx.mnt_ns, vfs_path));
      std::string fs_path = RebasePath(vfs_path, mount.mountpoint, mount.fs_root);
      WITOS_ASSIGN_OR_RETURN(std::string target, mount.fs->ReadLink(fs_path, ctx.cred));
      if (IsAbsolutePath(target)) {
        // Absolute targets restart at the *jail* root — chroot semantics.
        cur = "/";
      }
      push_all(target);
      continue;
    }
    if (!is_final && st->type != FileType::kDirectory) {
      return Err::kNotDir;
    }
    cur = next;
  }

  std::string vfs_path = cur == "/" ? ctx.root : JoinPath(ctx.root, cur.substr(1));
  // XCL enforcement: the canonical vfs path must not fall in an excluded
  // subtree, "disregarding the user privileges" (paper §5.6).
  if (ctx.xcl_ns != kNoNs && registry_->Xcl(ctx.xcl_ns).IsExcluded(vfs_path)) {
    if (audit_ != nullptr) {
      audit_->Append(AuditEvent::kXclDenied, ctx.pid, ctx.cred.uid, vfs_path, 0);
    }
    return Err::kAcces;
  }
  WITOS_ASSIGN_OR_RETURN(MountEntry mount, FindMount(ctx.mnt_ns, vfs_path));
  ResolvedPath out;
  out.jail_path = cur;
  out.vfs_path = vfs_path;
  out.fs = mount.fs;
  out.fs_path = RebasePath(vfs_path, mount.mountpoint, mount.fs_root);
  out.read_only = mount.read_only;
  out.exists = true;
  return out;
}

}  // namespace witos
