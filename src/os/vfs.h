// The virtual filesystem switch: path resolution across per-namespace mount
// tables, chroot jails, symlinks, and the XCL exclusion namespace.
//
// Resolution happens in two coordinate systems:
//  * jail-space  — paths as the process sees them ("/" is its chroot root);
//  * vfs-space   — paths in the mount namespace's global tree (what the
//                  host sees when sharing the MNT namespace).
// A process's `root` is a vfs-space path; `vfs = root + jail_path`. Mount
// tables and XCL exclusion tables are keyed in vfs-space.

#ifndef SRC_OS_VFS_H_
#define SRC_OS_VFS_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/os/audit.h"
#include "src/os/filesystem.h"
#include "src/os/namespaces.h"
#include "src/os/result.h"

namespace witos {

// Everything path resolution needs to know about the calling process.
struct VfsContext {
  NsId mnt_ns = kNoNs;
  NsId xcl_ns = kNoNs;
  std::string root = "/";  // vfs-space chroot directory
  std::string cwd = "/";   // jail-space working directory
  Credentials cred;        // host-mapped credentials
  Pid pid = kNoPid;        // for audit records
};

struct ResolvedPath {
  std::string jail_path;  // canonical jail-space path
  std::string vfs_path;   // canonical vfs-space path
  std::shared_ptr<Filesystem> fs;
  std::string fs_path;    // path within `fs`
  bool read_only = false;
  bool exists = true;     // false only when resolving with allow_missing_final
};

class Vfs {
 public:
  Vfs(NamespaceRegistry* registry, AuditLog* audit) : registry_(registry), audit_(audit) {}

  // Resolves `user_path` (jail-space, absolute or cwd-relative) to a
  // filesystem + fs-local path. Follows symlinks in intermediate components
  // always, and in the final component iff `follow_final`. If
  // `allow_missing_final`, a missing last component resolves against its
  // parent directory (for create/mkdir/symlink targets) with exists=false.
  // Enforces the XCL exclusion table on the final canonical vfs path.
  Result<ResolvedPath> Resolve(const VfsContext& ctx, std::string_view user_path,
                               bool follow_final = true, bool allow_missing_final = false) const;

  // Mount-table operations on a given MNT namespace. `mountpoint` is a
  // canonical vfs-space path; the caller is responsible for verifying it
  // exists and for capability checks.
  Status AddMount(NsId mnt_ns, MountEntry entry);
  Status RemoveMount(NsId mnt_ns, const std::string& mountpoint);
  // Removes every mount at or under `prefix` (session teardown); returns the
  // number removed.
  size_t RemoveMountsUnder(NsId mnt_ns, const std::string& prefix);
  // Longest-prefix mount lookup in vfs-space.
  Result<MountEntry> FindMount(NsId mnt_ns, const std::string& vfs_path) const;

 private:
  NamespaceRegistry* registry_;
  AuditLog* audit_;
};

}  // namespace witos

#endif  // SRC_OS_VFS_H_
