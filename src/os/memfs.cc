#include "src/os/memfs.h"

#include <utility>

#include "src/os/path.h"

namespace witos {

MemFs::MemFs(std::string fs_type, SimClock* clock)
    : fs_type_(std::move(fs_type)), clock_(clock) {
  root_ = std::make_shared<Node>();
  root_->type = FileType::kDirectory;
  root_->mode = kModeDefaultDir;
  root_->inode = 1;
}

void MemFs::Charge(uint64_t ns) const {
  if (clock_ != nullptr) {
    clock_->Advance(ns);
  }
}

void MemFs::ChargeMeta() const {
  if (clock_ != nullptr) {
    clock_->Advance(clock_->costs().fs_metadata_op_ns);
  }
}

void MemFs::ChargeMutation() const {
  if (clock_ != nullptr) {
    clock_->Advance(clock_->costs().fs_mutation_ns);
  }
}

void MemFs::ChargeBytes(size_t n) const {
  if (clock_ != nullptr) {
    clock_->Advance(n * clock_->costs().fs_per_byte_tenth_ns / 10);
  }
}

Result<std::shared_ptr<MemFs::Node>> MemFs::Walk(const std::string& path,
                                                 const Credentials& cred) const {
  ++op_count_;
  std::shared_ptr<Node> cur = root_;
  for (const auto& comp : SplitPath(path)) {
    if (cur->type != FileType::kDirectory) {
      return Err::kNotDir;
    }
    if (!CheckPosixAccess(cred, cur->uid, cur->gid, cur->mode, kAccessExec)) {
      return Err::kAcces;
    }
    auto it = cur->children.find(comp);
    if (it == cur->children.end()) {
      return Err::kNoEnt;
    }
    cur = it->second;
  }
  return cur;
}

Result<std::pair<std::shared_ptr<MemFs::Node>, std::string>> MemFs::WalkParent(
    const std::string& path, const Credentials& cred) const {
  std::string norm = NormalizePath(path);
  if (norm == "/") {
    return Err::kInval;
  }
  WITOS_ASSIGN_OR_RETURN(std::shared_ptr<Node> parent, Walk(Dirname(norm), cred));
  if (parent->type != FileType::kDirectory) {
    return Err::kNotDir;
  }
  return std::make_pair(parent, Basename(norm));
}

Stat MemFs::StatOf(const Node& node) const {
  Stat st;
  st.inode = node.inode;
  st.type = node.type;
  st.mode = node.mode;
  st.uid = node.uid;
  st.gid = node.gid;
  st.rdev = node.rdev;
  st.mtime_ticks = node.mtime_ticks;
  if (node.type == FileType::kDirectory) {
    st.size = node.children.size();
    st.nlink = 2;
  } else {
    st.size = node.data.size();
    st.nlink = 1 + node.nlink_extra;
  }
  return st;
}

std::shared_ptr<MemFs::Node> MemFs::NewNode(FileType type, Mode mode, const Credentials& cred) {
  auto node = std::make_shared<Node>();
  node->type = type;
  node->mode = mode;
  node->uid = cred.uid;
  node->gid = cred.gid;
  node->inode = next_inode_++;
  node->generation = next_generation_++;
  if (clock_ != nullptr) {
    node->mtime_ticks = clock_->now_ns();
  }
  return node;
}

Result<Stat> MemFs::Open(const std::string& path, uint32_t flags, Mode mode,
                         const Credentials& cred) {
  ChargeMeta();
  auto walked = Walk(path, cred);
  if (!walked.ok()) {
    if (walked.error() == Err::kNoEnt && (flags & kOpenCreate) != 0) {
      WITOS_ASSIGN_OR_RETURN(auto parent_leaf, WalkParent(path, cred));
      auto& [parent, leaf] = parent_leaf;
      if (!CheckPosixAccess(cred, parent->uid, parent->gid, parent->mode, kAccessWrite)) {
        return Err::kAcces;
      }
      ChargeMutation();  // inode allocation + journal commit
      auto node = NewNode(FileType::kRegular, mode, cred);
      parent->children[leaf] = node;
      return StatOf(*node);
    }
    return walked.error();
  }
  auto node = *walked;
  if ((flags & kOpenCreate) != 0 && (flags & kOpenExcl) != 0) {
    return Err::kExist;
  }
  if (node->type == FileType::kDirectory) {
    if ((flags & kOpenWrite) != 0) {
      return Err::kIsDir;
    }
  } else if ((flags & kOpenDirectory) != 0) {
    return Err::kNotDir;
  }
  uint32_t want = 0;
  if ((flags & kOpenRead) != 0) {
    want |= kAccessRead;
  }
  if ((flags & (kOpenWrite | kOpenTrunc | kOpenAppend)) != 0) {
    want |= kAccessWrite;
  }
  if (!CheckPosixAccess(cred, node->uid, node->gid, node->mode, want)) {
    return Err::kAcces;
  }
  if ((flags & kOpenTrunc) != 0 && node->type == FileType::kRegular) {
    used_bytes_ -= node->data.size();
    node->data.clear();
    BumpGeneration(node.get());
  }
  return StatOf(*node);
}

Result<size_t> MemFs::ReadAt(const std::string& path, uint64_t offset, size_t size,
                             std::string* out, const Credentials& cred) {
  WITOS_ASSIGN_OR_RETURN(std::shared_ptr<Node> node, Walk(path, cred));
  if (node->type == FileType::kDirectory) {
    return Err::kIsDir;
  }
  if (!CheckPosixAccess(cred, node->uid, node->gid, node->mode, kAccessRead)) {
    return Err::kAcces;
  }
  out->clear();
  if (offset >= node->data.size()) {
    return size_t{0};
  }
  size_t n = std::min(size, node->data.size() - static_cast<size_t>(offset));
  out->assign(node->data, static_cast<size_t>(offset), n);
  ChargeBytes(n);
  return n;
}

Result<size_t> MemFs::WriteAt(const std::string& path, uint64_t offset, const std::string& data,
                              const Credentials& cred) {
  WITOS_ASSIGN_OR_RETURN(std::shared_ptr<Node> node, Walk(path, cred));
  if (node->type == FileType::kDirectory) {
    return Err::kIsDir;
  }
  if (!CheckPosixAccess(cred, node->uid, node->gid, node->mode, kAccessWrite)) {
    return Err::kAcces;
  }
  size_t end = static_cast<size_t>(offset) + data.size();
  if (end > node->data.size()) {
    used_bytes_ += end - node->data.size();
    node->data.resize(end);
  }
  node->data.replace(static_cast<size_t>(offset), data.size(), data);
  BumpGeneration(node.get());
  if (clock_ != nullptr) {
    node->mtime_ticks = clock_->now_ns();
  }
  ChargeBytes(data.size());
  return data.size();
}

Status MemFs::Truncate(const std::string& path, uint64_t size, const Credentials& cred) {
  WITOS_ASSIGN_OR_RETURN(std::shared_ptr<Node> node, Walk(path, cred));
  if (node->type == FileType::kDirectory) {
    return Err::kIsDir;
  }
  if (!CheckPosixAccess(cred, node->uid, node->gid, node->mode, kAccessWrite)) {
    return Err::kAcces;
  }
  if (size < node->data.size()) {
    used_bytes_ -= node->data.size() - size;
  } else {
    used_bytes_ += size - node->data.size();
  }
  node->data.resize(static_cast<size_t>(size), '\0');
  BumpGeneration(node.get());
  return Status::Ok();
}

Result<Stat> MemFs::GetAttr(const std::string& path, const Credentials& cred) {
  ChargeMeta();
  WITOS_ASSIGN_OR_RETURN(std::shared_ptr<Node> node, Walk(path, cred));
  return StatOf(*node);
}

Result<std::vector<DirEntry>> MemFs::ReadDir(const std::string& path, const Credentials& cred) {
  ChargeMeta();
  WITOS_ASSIGN_OR_RETURN(std::shared_ptr<Node> node, Walk(path, cred));
  if (node->type != FileType::kDirectory) {
    return Err::kNotDir;
  }
  if (!CheckPosixAccess(cred, node->uid, node->gid, node->mode, kAccessRead)) {
    return Err::kAcces;
  }
  std::vector<DirEntry> out;
  out.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    out.push_back({name, child->type, child->inode});
  }
  return out;
}

Status MemFs::MkDir(const std::string& path, Mode mode, const Credentials& cred) {
  ChargeMutation();
  if (Walk(path, cred).ok()) {
    return Err::kExist;
  }
  WITOS_ASSIGN_OR_RETURN(auto parent_leaf, WalkParent(path, cred));
  auto& [parent, leaf] = parent_leaf;
  if (!CheckPosixAccess(cred, parent->uid, parent->gid, parent->mode, kAccessWrite)) {
    return Err::kAcces;
  }
  parent->children[leaf] = NewNode(FileType::kDirectory, mode, cred);
  return Status::Ok();
}

Status MemFs::Unlink(const std::string& path, const Credentials& cred) {
  ChargeMutation();
  WITOS_ASSIGN_OR_RETURN(auto parent_leaf, WalkParent(path, cred));
  auto& [parent, leaf] = parent_leaf;
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) {
    return Err::kNoEnt;
  }
  if (it->second->type == FileType::kDirectory) {
    return Err::kIsDir;
  }
  if (!CheckPosixAccess(cred, parent->uid, parent->gid, parent->mode, kAccessWrite)) {
    return Err::kAcces;
  }
  if (it->second->nlink_extra > 0) {
    --it->second->nlink_extra;  // another name still references the inode
  } else {
    used_bytes_ -= it->second->data.size();
  }
  parent->children.erase(it);
  return Status::Ok();
}

Status MemFs::RmDir(const std::string& path, const Credentials& cred) {
  ChargeMutation();
  WITOS_ASSIGN_OR_RETURN(auto parent_leaf, WalkParent(path, cred));
  auto& [parent, leaf] = parent_leaf;
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) {
    return Err::kNoEnt;
  }
  if (it->second->type != FileType::kDirectory) {
    return Err::kNotDir;
  }
  if (!it->second->children.empty()) {
    return Err::kNotEmpty;
  }
  if (!CheckPosixAccess(cred, parent->uid, parent->gid, parent->mode, kAccessWrite)) {
    return Err::kAcces;
  }
  parent->children.erase(it);
  return Status::Ok();
}

Status MemFs::Rename(const std::string& from, const std::string& to, const Credentials& cred) {
  ChargeMutation();
  WITOS_ASSIGN_OR_RETURN(auto from_pl, WalkParent(from, cred));
  auto& [from_parent, from_leaf] = from_pl;
  auto it = from_parent->children.find(from_leaf);
  if (it == from_parent->children.end()) {
    return Err::kNoEnt;
  }
  WITOS_ASSIGN_OR_RETURN(auto to_pl, WalkParent(to, cred));
  auto& [to_parent, to_leaf] = to_pl;
  if (!CheckPosixAccess(cred, from_parent->uid, from_parent->gid, from_parent->mode,
                        kAccessWrite) ||
      !CheckPosixAccess(cred, to_parent->uid, to_parent->gid, to_parent->mode, kAccessWrite)) {
    return Err::kAcces;
  }
  auto existing = to_parent->children.find(to_leaf);
  if (existing != to_parent->children.end()) {
    if (existing->second->type == FileType::kDirectory &&
        !existing->second->children.empty()) {
      return Err::kNotEmpty;
    }
  }
  auto node = it->second;
  // Guard against moving a directory into its own subtree.
  if (node->type == FileType::kDirectory) {
    std::string norm_from = NormalizePath(from);
    std::string norm_to = NormalizePath(to);
    if (PathIsUnder(norm_to, norm_from)) {
      return Err::kInval;
    }
  }
  from_parent->children.erase(it);
  to_parent->children[to_leaf] = node;
  BumpGeneration(node.get());  // same bytes, new identity at the target path
  return Status::Ok();
}

Status MemFs::Chmod(const std::string& path, Mode mode, const Credentials& cred) {
  WITOS_ASSIGN_OR_RETURN(std::shared_ptr<Node> node, Walk(path, cred));
  if (cred.uid != node->uid && !cred.HasCap(Capability::kDacOverride)) {
    return Err::kPerm;
  }
  node->mode = mode;
  BumpGeneration(node.get());
  return Status::Ok();
}

Status MemFs::Chown(const std::string& path, Uid uid, Gid gid, const Credentials& cred) {
  WITOS_ASSIGN_OR_RETURN(std::shared_ptr<Node> node, Walk(path, cred));
  if (!cred.HasCap(Capability::kChown)) {
    return Err::kPerm;
  }
  node->uid = uid;
  node->gid = gid;
  BumpGeneration(node.get());
  return Status::Ok();
}

Status MemFs::MkNod(const std::string& path, FileType type, DeviceId rdev, Mode mode,
                    const Credentials& cred) {
  ChargeMutation();
  if (type != FileType::kCharDevice && type != FileType::kBlockDevice &&
      type != FileType::kFifo && type != FileType::kRegular) {
    return Err::kInval;
  }
  if (Walk(path, cred).ok()) {
    return Err::kExist;
  }
  WITOS_ASSIGN_OR_RETURN(auto parent_leaf, WalkParent(path, cred));
  auto& [parent, leaf] = parent_leaf;
  if (!CheckPosixAccess(cred, parent->uid, parent->gid, parent->mode, kAccessWrite)) {
    return Err::kAcces;
  }
  auto node = NewNode(type, mode, cred);
  node->rdev = rdev;
  parent->children[leaf] = node;
  return Status::Ok();
}

Status MemFs::Link(const std::string& oldpath, const std::string& newpath,
                   const Credentials& cred) {
  ChargeMutation();
  WITOS_ASSIGN_OR_RETURN(std::shared_ptr<Node> node, Walk(NormalizePath(oldpath), cred));
  if (node->type == FileType::kDirectory) {
    return Err::kPerm;  // hard links to directories are forbidden
  }
  if (Walk(NormalizePath(newpath), cred).ok()) {
    return Err::kExist;
  }
  WITOS_ASSIGN_OR_RETURN(auto parent_leaf, WalkParent(newpath, cred));
  auto& [parent, leaf] = parent_leaf;
  if (!CheckPosixAccess(cred, parent->uid, parent->gid, parent->mode, kAccessWrite)) {
    return Err::kAcces;
  }
  parent->children[leaf] = node;  // same inode, second name
  ++node->nlink_extra;
  // The shared inode's generation covers both names: a later write through
  // either alias re-bumps it, invalidating verdicts cached under the other.
  BumpGeneration(node.get());
  return Status::Ok();
}

Status MemFs::SymLink(const std::string& target, const std::string& linkpath,
                      const Credentials& cred) {
  ChargeMutation();
  if (Walk(linkpath, cred).ok()) {
    return Err::kExist;
  }
  WITOS_ASSIGN_OR_RETURN(auto parent_leaf, WalkParent(linkpath, cred));
  auto& [parent, leaf] = parent_leaf;
  if (!CheckPosixAccess(cred, parent->uid, parent->gid, parent->mode, kAccessWrite)) {
    return Err::kAcces;
  }
  auto node = NewNode(FileType::kSymlink, 0777, cred);
  node->data = target;
  parent->children[leaf] = node;
  return Status::Ok();
}

Result<std::string> MemFs::ReadLink(const std::string& path, const Credentials& cred) {
  WITOS_ASSIGN_OR_RETURN(std::shared_ptr<Node> node, Walk(path, cred));
  if (node->type != FileType::kSymlink) {
    return Err::kInval;
  }
  return node->data;
}

Result<FsStats> MemFs::StatFs() const {
  FsStats stats;
  stats.total_bytes = 1ull << 40;  // model a 1 TiB volume
  stats.used_bytes = used_bytes_;
  stats.inode_count = next_inode_ - 1;
  return stats;
}

void MemFs::ProvisionDir(const std::string& path) {
  Credentials root;
  std::string cur = "/";
  for (const auto& comp : SplitPath(path)) {
    cur = JoinPath(cur, comp);
    (void)MkDir(cur, kModeDefaultDir, root);
  }
}

void MemFs::ProvisionFile(const std::string& path, const std::string& content, Uid uid, Gid gid,
                          Mode mode) {
  Credentials root;
  std::string norm = NormalizePath(path);
  ProvisionDir(Dirname(norm));
  (void)Open(norm, kOpenCreate | kOpenWrite | kOpenTrunc, mode, root);
  (void)Truncate(norm, 0, root);
  (void)WriteAt(norm, 0, content, root);
  (void)Chown(norm, uid, gid, root);
  (void)Chmod(norm, mode, root);
}

void MemFs::ProvisionAppend(const std::string& path, const std::string& data) {
  Credentials root;
  std::string norm = NormalizePath(path);
  auto walked = Walk(norm, root);
  if (!walked.ok()) {
    ProvisionFile(norm, data, 0, 0, 0600);
    return;
  }
  (*walked)->data += data;
  used_bytes_ += data.size();
  BumpGeneration(walked->get());
}

void MemFs::ProvisionSymlink(const std::string& linkpath, const std::string& target) {
  Credentials root;
  std::string norm = NormalizePath(linkpath);
  ProvisionDir(Dirname(norm));
  (void)SymLink(target, norm, root);
}

void MemFs::ProvisionDevice(const std::string& path, DeviceId rdev, Mode mode) {
  Credentials root;
  std::string norm = NormalizePath(path);
  ProvisionDir(Dirname(norm));
  (void)MkNod(norm, FileType::kCharDevice, rdev, mode, root);
}

uint64_t MemFs::Generation(const std::string& path) const {
  // Internal metadata query: no permission checks, no clock charge, no
  // op_count — the caller (the ITFS verdict cache) must observe exactly the
  // same costs whether or not it consults generations.
  std::shared_ptr<Node> cur = root_;
  for (const auto& comp : SplitPath(path)) {
    if (cur->type != FileType::kDirectory) {
      return kNoGeneration;
    }
    auto it = cur->children.find(comp);
    if (it == cur->children.end()) {
      return kNoGeneration;
    }
    cur = it->second;
  }
  if (cur->type == FileType::kDirectory) {
    return kNoGeneration;
  }
  return cur->generation;
}

Result<std::string> MemFs::SlurpForTest(const std::string& path) const {
  Credentials root;
  auto walked = Walk(NormalizePath(path), root);
  if (!walked.ok()) {
    return walked.error();
  }
  return (*walked)->data;
}

}  // namespace witos
