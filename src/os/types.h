// Core scalar types and error codes for the simulated operating system.
//
// The simulator mirrors Linux conventions: errno-like error codes, integral
// process/user/group identifiers, and namespace identifiers. Everything in
// `witos` is single-threaded by design; a Kernel instance models one machine.

#ifndef SRC_OS_TYPES_H_
#define SRC_OS_TYPES_H_

#include <cstdint>
#include <string>

namespace witos {

using Pid = int32_t;
using Uid = uint32_t;
using Gid = uint32_t;
using Fd = int32_t;
using NsId = uint64_t;
using InodeNum = uint64_t;
using DeviceId = uint32_t;

inline constexpr Pid kNoPid = -1;
inline constexpr Uid kRootUid = 0;
inline constexpr Gid kRootGid = 0;
inline constexpr NsId kNoNs = 0;

// Errno-like error codes. Values are our own; names follow POSIX errno.
enum class Err : int {
  kOk = 0,
  kPerm,          // EPERM: operation not permitted
  kNoEnt,         // ENOENT: no such file or directory
  kSrch,          // ESRCH: no such process
  kIntr,          // EINTR
  kIo,            // EIO
  kBadf,          // EBADF: bad file descriptor
  kChild,         // ECHILD
  kAcces,         // EACCES: permission denied
  kBusy,          // EBUSY
  kExist,         // EEXIST
  kXdev,          // EXDEV: cross-device link
  kNoDev,         // ENODEV
  kNotDir,        // ENOTDIR
  kIsDir,         // EISDIR
  kInval,         // EINVAL
  kNFile,         // ENFILE: file table overflow
  kMFile,         // EMFILE: too many open files
  kTxtBsy,        // ETXTBSY
  kFBig,          // EFBIG
  kNoSpc,         // ENOSPC
  kRoFs,          // EROFS: read-only file system
  kMLink,         // EMLINK
  kPipe,          // EPIPE
  kNameTooLong,   // ENAMETOOLONG
  kNoSys,         // ENOSYS: function not implemented
  kNotEmpty,      // ENOTEMPTY
  kLoop,          // ELOOP: too many symlink levels
  kConnRefused,   // ECONNREFUSED
  kNetUnreach,    // ENETUNREACH
  kHostUnreach,   // EHOSTUNREACH
  kTimedOut,      // ETIMEDOUT
  kNotConn,       // ENOTCONN
  kAddrInUse,     // EADDRINUSE
  kNoTty,         // ENOTTY
  kNoMem,         // ENOMEM
  kAgain,         // EAGAIN
};

// One past the largest valid Err value, for validating codes that crossed a
// serialization boundary.
inline constexpr int kErrCodeCount = static_cast<int>(Err::kAgain) + 1;

// Human-readable name for an error code ("EACCES" style).
std::string ErrName(Err e);

// Inverse of ErrName: "EACCES" -> Err::kAcces. Returns `fallback` for names
// that don't match any code (used by the v1 broker-RPC compat shim, where
// the error crossed the wire as a free-form string).
Err ErrFromName(const std::string& name, Err fallback = Err::kIo);

// strerror()-style description.
std::string ErrMessage(Err e);

// File types stored in an inode / stat record.
enum class FileType : uint8_t {
  kRegular,
  kDirectory,
  kSymlink,
  kCharDevice,
  kBlockDevice,
  kFifo,
  kSocket,
};

// Mode bits, POSIX layout (lower 12 bits of st_mode).
using Mode = uint16_t;
inline constexpr Mode kModeSetuid = 04000;
inline constexpr Mode kModeSetgid = 02000;
inline constexpr Mode kModeSticky = 01000;
inline constexpr Mode kModeUserAll = 0700;
inline constexpr Mode kModeGroupAll = 0070;
inline constexpr Mode kModeOtherAll = 0007;
inline constexpr Mode kModeDefaultFile = 0644;
inline constexpr Mode kModeDefaultDir = 0755;

// open(2) flags (subset).
enum OpenFlags : uint32_t {
  kOpenRead = 1u << 0,
  kOpenWrite = 1u << 1,
  kOpenCreate = 1u << 2,
  kOpenTrunc = 1u << 3,
  kOpenAppend = 1u << 4,
  kOpenExcl = 1u << 5,
  kOpenDirectory = 1u << 6,
};

// Access check request bits (access(2) style).
enum AccessBits : uint32_t {
  kAccessRead = 4,
  kAccessWrite = 2,
  kAccessExec = 1,
};

// stat(2)-style record.
struct Stat {
  InodeNum inode = 0;
  FileType type = FileType::kRegular;
  Mode mode = 0;
  Uid uid = 0;
  Gid gid = 0;
  uint64_t size = 0;
  uint32_t nlink = 1;
  DeviceId device = 0;       // filesystem device
  DeviceId rdev = 0;         // device number for device nodes
  uint64_t mtime_ticks = 0;  // simulated clock ticks
};

struct DirEntry {
  std::string name;
  FileType type = FileType::kRegular;
  InodeNum inode = 0;
};

}  // namespace witos

#endif  // SRC_OS_TYPES_H_
