// The kernel page cache: 128KB blocks keyed by (filesystem, path, block).
//
// Sitting *above* the mounted filesystem — and therefore above any FUSE
// stack — the cache is what gives cached random IO (SysBench) near-native
// performance through ITFS while cold streaming reads (grep) and
// metadata-heavy loops (Postmark) pay the full interposition cost, exactly
// the behaviour Figure 9 of the paper reports.
//
// Policy: read misses fetch whole covering blocks through the filesystem
// (readahead); writes update fully covered blocks and invalidate partially
// covered ones; capacity overflow evicts whole blocks oldest-first
// (insertion order), so one large streaming file ages out of the cache
// instead of wiping a hot working set.
//
// Threading: the cache itself follows the machine's single-owner rule (the
// owning kernel is only driven under that machine's lock). Only the
// hit/miss/eviction counters are atomic, so cross-shard observability
// readers (witserve's per-shard page-cache gauges) can sample them without
// taking the machine lock.

#ifndef SRC_OS_PAGECACHE_H_
#define SRC_OS_PAGECACHE_H_

#include <atomic>
#include <list>
#include <map>
#include <string>
#include <tuple>

namespace witos {

class Filesystem;

class PageCache {
 public:
  static constexpr uint64_t kBlockSize = 128 * 1024;

  explicit PageCache(uint64_t capacity_bytes = 64ull * 1024 * 1024)
      : capacity_(capacity_bytes) {}

  // Returns the cached block or nullptr. A present block may be short (the
  // file's EOF block).
  const std::string* Lookup(const Filesystem* fs, const std::string& path,
                            uint64_t block) const;

  void Insert(const Filesystem* fs, const std::string& path, uint64_t block, std::string data);

  // Invalidates the blocks covering [offset, offset+len) of the file; a
  // write that exactly covers a block may Insert() instead.
  void InvalidateRange(const Filesystem* fs, const std::string& path, uint64_t offset,
                       uint64_t len);
  // Invalidates everything cached for the file (truncate/unlink/rename).
  void InvalidateFile(const Filesystem* fs, const std::string& path);

  void Clear();

  // Resizes the cache; shrinking evicts oldest blocks immediately so the
  // new budget holds (the eviction-sweep bench resizes a live cache).
  void set_capacity(uint64_t capacity_bytes) {
    capacity_ = capacity_bytes;
    EvictUntil(capacity_);
  }
  uint64_t capacity() const { return capacity_; }

  uint64_t bytes() const { return bytes_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  // Blocks pushed out by capacity pressure (invalidations don't count).
  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  void CountMiss() const { misses_.fetch_add(1, std::memory_order_relaxed); }

  // Monotone counter bumped by every invalidation (InvalidateRange,
  // InvalidateFile, Clear). Consumers holding data derived from cached
  // content — e.g. ITFS signature verdicts — can snapshot this and treat
  // any change as "something mutated underneath the cache". Atomic so
  // cross-shard readers can sample without the machine lock.
  uint64_t mutation_generation() const {
    return mutation_generation_.load(std::memory_order_relaxed);
  }

 private:
  using Key = std::tuple<const Filesystem*, std::string, uint64_t>;
  struct Block {
    std::string data;
    std::list<Key>::iterator order_it;  // position in order_
  };

  // Removes one block, keeping blocks_/order_/bytes_ in lockstep.
  void Erase(std::map<Key, Block>::iterator it);
  // Evicts oldest-inserted blocks until bytes_ <= target_bytes.
  void EvictUntil(uint64_t target_bytes);

  std::map<Key, Block> blocks_;
  std::list<Key> order_;  // insertion order, oldest at the front
  uint64_t capacity_;
  uint64_t bytes_ = 0;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> mutation_generation_{0};
};

}  // namespace witos

#endif  // SRC_OS_PAGECACHE_H_
