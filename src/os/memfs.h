// MemFs: the in-memory disk filesystem standing in for ext4.
//
// A full inode tree with POSIX permissions, ownership, symlinks, device
// nodes, rename and link counts. Charges simulated time through an optional
// SimClock so benchmarks see a realistic cost structure (metadata ops vs.
// per-byte transfer).

#ifndef SRC_OS_MEMFS_H_
#define SRC_OS_MEMFS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/os/clock.h"
#include "src/os/filesystem.h"

namespace witos {

class MemFs : public Filesystem {
 public:
  // `clock` may be null (no time accounting); if set it must outlive the fs.
  explicit MemFs(std::string fs_type = "ext4", SimClock* clock = nullptr);

  std::string FsType() const override { return fs_type_; }

  Result<Stat> Open(const std::string& path, uint32_t flags, Mode mode,
                    const Credentials& cred) override;
  Result<size_t> ReadAt(const std::string& path, uint64_t offset, size_t size, std::string* out,
                        const Credentials& cred) override;
  Result<size_t> WriteAt(const std::string& path, uint64_t offset, const std::string& data,
                         const Credentials& cred) override;
  Status Truncate(const std::string& path, uint64_t size, const Credentials& cred) override;
  Result<Stat> GetAttr(const std::string& path, const Credentials& cred) override;
  Result<std::vector<DirEntry>> ReadDir(const std::string& path,
                                        const Credentials& cred) override;
  Status MkDir(const std::string& path, Mode mode, const Credentials& cred) override;
  Status Unlink(const std::string& path, const Credentials& cred) override;
  Status RmDir(const std::string& path, const Credentials& cred) override;
  Status Rename(const std::string& from, const std::string& to,
                const Credentials& cred) override;
  Status Chmod(const std::string& path, Mode mode, const Credentials& cred) override;
  Status Chown(const std::string& path, Uid uid, Gid gid, const Credentials& cred) override;
  Status MkNod(const std::string& path, FileType type, DeviceId rdev, Mode mode,
               const Credentials& cred) override;
  Status Link(const std::string& oldpath, const std::string& newpath,
              const Credentials& cred) override;
  Status SymLink(const std::string& target, const std::string& linkpath,
                 const Credentials& cred) override;
  Result<std::string> ReadLink(const std::string& path, const Credentials& cred) override;
  Result<FsStats> StatFs() const override;
  uint64_t Generation(const std::string& path) const override;

  // --- Setup conveniences (host-side provisioning, bypassing permissions) ---

  // Creates all missing directories along `path` (root-owned, 0755).
  void ProvisionDir(const std::string& path);
  // Creates `path` (and parent dirs) with `content`, owned by (uid, gid).
  void ProvisionFile(const std::string& path, const std::string& content, Uid uid = kRootUid,
                     Gid gid = kRootGid, Mode mode = kModeDefaultFile);
  void ProvisionSymlink(const std::string& linkpath, const std::string& target);
  // Appends `data` to `path` (creating it if needed) without permission
  // checks or kernel mediation — for trusted host daemons (audit spool).
  void ProvisionAppend(const std::string& path, const std::string& data);
  void ProvisionDevice(const std::string& path, DeviceId rdev, Mode mode = 0600);

  // Direct content access for tests/benchmarks (no permission checks).
  Result<std::string> SlurpForTest(const std::string& path) const;

  // Total operations served, for benchmark sanity checks.
  uint64_t op_count() const { return op_count_; }

 private:
  struct Node {
    FileType type = FileType::kRegular;
    Mode mode = kModeDefaultFile;
    Uid uid = kRootUid;
    Gid gid = kRootGid;
    InodeNum inode = 0;
    DeviceId rdev = 0;
    uint64_t mtime_ticks = 0;
    // Monotone mutation stamp drawn from the fs-wide counter, so values are
    // unique across *all* nodes: a deleted-and-recreated file, or a rename
    // landing a different inode at the same path, can never reproduce an
    // old (path, generation) pair. Bumped on every content/identity change.
    uint64_t generation = 0;
    uint32_t nlink_extra = 0;  // hard links beyond the first name
    std::string data;                                   // regular file / symlink target
    std::map<std::string, std::shared_ptr<Node>> children;  // directory
  };

  // Walks to the node at `path`; checks exec (search) permission on every
  // traversed directory.
  Result<std::shared_ptr<Node>> Walk(const std::string& path, const Credentials& cred) const;
  // Walks to the parent directory of `path`, returning (parent, leaf name).
  Result<std::pair<std::shared_ptr<Node>, std::string>> WalkParent(const std::string& path,
                                                                   const Credentials& cred) const;
  Stat StatOf(const Node& node) const;
  std::shared_ptr<Node> NewNode(FileType type, Mode mode, const Credentials& cred);
  // Stamps a fresh generation on `node` (content or identity changed).
  void BumpGeneration(Node* node) { node->generation = next_generation_++; }
  void Charge(uint64_t ns) const;
  void ChargeMeta() const;
  void ChargeMutation() const;
  void ChargeBytes(size_t n) const;

  std::string fs_type_;
  SimClock* clock_;
  std::shared_ptr<Node> root_;
  InodeNum next_inode_ = 2;  // 1 is the root, ext2 tradition
  uint64_t next_generation_ = 1;  // 0 is kNoGeneration
  mutable uint64_t op_count_ = 0;
  uint64_t used_bytes_ = 0;
};

}  // namespace witos

#endif  // SRC_OS_MEMFS_H_
