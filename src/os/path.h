// Path manipulation helpers shared by the VFS, filesystems and ITFS.
//
// All VFS-visible paths are absolute, '/'-separated, and normalized: no "."
// or ".." components, no duplicate slashes, no trailing slash (except the
// root itself). Normalization clamps ".." at the root, matching how path
// walking behaves in a chroot jail.

#ifndef SRC_OS_PATH_H_
#define SRC_OS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace witos {

// Splits a path into its components ("/a//b/./c" -> {"a", "b", "c"}).
// "." components are dropped; ".." components are preserved.
std::vector<std::string> SplitPath(std::string_view path);

// Normalizes to an absolute canonical form, resolving "." and ".." lexically
// and clamping ".." at "/". A relative input is interpreted against "/".
std::string NormalizePath(std::string_view path);

// Normalizes `path` against base directory `cwd` (both interpreted inside
// the same root). `cwd` must be absolute.
std::string ResolvePath(std::string_view cwd, std::string_view path);

// Joins two path fragments with exactly one separator.
std::string JoinPath(std::string_view a, std::string_view b);

// True if `path` equals `prefix` or is located underneath it. Both inputs
// must be normalized absolute paths.
bool PathIsUnder(std::string_view path, std::string_view prefix);

// Rebases `path` from under `old_prefix` onto `new_prefix`. If
// !PathIsUnder(path, old_prefix) the rebase is meaningless and the result is
// the empty string — callers must treat "" as "not under the old prefix"
// rather than a usable path. ("" is never a valid normalized path, so a
// silent mis-rebase cannot masquerade as success.)
std::string RebasePath(std::string_view path, std::string_view old_prefix,
                       std::string_view new_prefix);

// Final component ("/a/b/c" -> "c", "/" -> "/").
std::string Basename(std::string_view path);

// Parent directory ("/a/b/c" -> "/a/b", "/a" -> "/", "/" -> "/").
std::string Dirname(std::string_view path);

// Lower-cased extension without the dot ("/x/report.PDF" -> "pdf"); empty if
// there is none.
std::string Extension(std::string_view path);

bool IsAbsolutePath(std::string_view path);

}  // namespace witos

#endif  // SRC_OS_PATH_H_
