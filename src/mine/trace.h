// witmine trace recording: per-ticket-class operation traces that feed the
// policy miner (ROADMAP "mined least-privilege policies"; BEACON-style
// auto-perforation). Two sources fold into the same per-class view:
//
//   * the workload generator's required-ops — what the ticket's admin had
//     to do, the ground-truth need surface;
//   * live broker event streams (PermissionBroker::EventsSnapshot) — the
//     escalations that actually crossed the container boundary.
//
// Traces are kept per ticket so exclusion is retroactive: when the anomaly
// detector flags a ticket, ExcludeTicket() drops its whole contribution
// from every later Merged() view and the next mined generation shrinks
// (the tighten hook of the trace -> mine -> shadow -> tighten loop).

#ifndef SRC_MINE_TRACE_H_
#define SRC_MINE_TRACE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/broker/broker.h"
#include "src/workload/ticket_gen.h"

namespace witmine {

// Everything observed for one ticket class, with exclusions applied.
// All containers are ordered so downstream mining is deterministic.
struct ClassTrace {
  struct PathStats {
    uint64_t reads = 0;
    uint64_t writes = 0;
  };
  std::map<std::string, PathStats> paths;     // normalized fs paths touched
  std::map<std::string, uint64_t> verbs;      // broker verbs -> uses
  std::map<std::string, uint64_t> endpoints;  // endpoint names -> uses
  bool process_mgmt = false;  // host process/service ops observed in view
  uint64_t tickets = 0;
  uint64_t ops = 0;
};

class TraceRecorder {
 public:
  // Records one generated ticket's required-ops trace under its true class.
  void RecordTicket(const witload::GeneratedTicket& ticket) {
    RecordOps(ticket.true_class, ticket.id, ticket.ops);
  }
  void RecordOps(const std::string& ticket_class, const std::string& ticket_id,
                 const std::vector<witload::RequiredOp>& ops);

  // Folds a live broker stream into the per-ticket traces: each event adds
  // a verb observation (and, for read_file, a path observation) to the
  // event's own ticket under its ticket class. Denied events still count —
  // the need was expressed either way.
  void RecordBrokerEvents(const std::vector<witbroker::BrokerEvent>& events);

  // Marks a ticket's trace as poisoned (anomaly-flagged); Merged() drops
  // its entire contribution from then on. Idempotent.
  void ExcludeTicket(const std::string& ticket_id);
  bool IsExcluded(const std::string& ticket_id) const {
    return excluded_.count(ticket_id) > 0;
  }

  // The merged per-class view with exclusions applied. Deterministic:
  // identical recorded content (in any order) yields an identical result.
  std::map<std::string, ClassTrace> Merged() const;

  size_t ticket_count() const { return tickets_.size(); }
  size_t excluded_count() const { return excluded_.size(); }

 private:
  struct TicketTrace {
    std::string cls;
    std::map<std::string, ClassTrace::PathStats> paths;
    std::map<std::string, uint64_t> verbs;
    std::map<std::string, uint64_t> endpoints;
    bool process_mgmt = false;
    uint64_t ops = 0;
  };

  TicketTrace& TraceFor(const std::string& ticket_id, const std::string& cls);

  std::map<std::string, TicketTrace> tickets_;  // keyed by ticket id
  std::set<std::string> excluded_;
};

}  // namespace witmine

#endif  // SRC_MINE_TRACE_H_
