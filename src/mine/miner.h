// witmine policy miner: generalizes observed per-class traces into a
// minimal ITFS + broker policy per ticket class (ROADMAP "mined
// least-privilege policies"; the BEACON-style auto-perforation loop).
//
// The pipeline is  trace -> mine -> shadow -> tighten  (DESIGN.md §17):
//
//   mine     Mine() collapses each class's observed paths into directory
//            prefixes, clusters never-written extensions into write-only
//            denies, and keeps exactly the broker verbs the class expressed.
//            The policy is emitted as a ruledsl document and compiled, so a
//            mined policy goes through the same parser, diagnostics and
//            evaluator as a hand-written one.
//   shadow   InstallShadow() hangs the compiled policy off each image's
//            FsView::shadow and the broker's shadow map. ITFS and the
//            broker then evaluate it beside the enforcing Table 3 policy on
//            live traffic, counting would-block / would-allow divergences
//            without changing any verdict.
//   tighten  ExcludeFlaggedTickets() drops anomaly-flagged tickets from the
//            recorder; the next Mine() generation shrinks accordingly.
//
// Mining is deterministic: the same recorded traces (in any order) produce
// byte-identical DSL, so two miners fed the same seed agree exactly.

#ifndef SRC_MINE_MINER_H_
#define SRC_MINE_MINER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/broker/anomaly.h"
#include "src/broker/policy.h"
#include "src/container/image_repo.h"
#include "src/fs/ruledsl.h"
#include "src/mine/trace.h"

namespace witmine {

struct MinerOptions {
  // Observed paths are collapsed to their directory, then truncated to at
  // most this many components (/home/user/.matlab/license.lic -> /home/user
  // at depth 2). Deeper = tighter policy, higher false-block risk; the
  // bench sweeps this for the ROC curve.
  size_t max_prefix_depth = 2;
  // An extension becomes a write-only deny only when observed (and never
  // written) at least this many times — one stray read is not a pattern.
  uint64_t min_ext_support = 2;
  // Broker verbs need at least this many observations to be granted.
  uint64_t min_verb_support = 1;
};

// The mined policy for one ticket class.
struct MinedClassPolicy {
  std::string ticket_class;
  uint64_t generation = 0;

  // Allowed directory prefixes (sorted, subsumption-collapsed).
  std::vector<std::string> prefixes;
  // Subset of `prefixes` that were never written: they get a write-only
  // deny ahead of their allow.
  std::set<std::string> read_only;
  // Extensions observed read-only with enough support -> write-only deny.
  std::vector<std::string> read_only_extensions;

  // Broker side of the mined policy.
  std::set<std::string> verbs;
  std::vector<std::string> endpoints;  // observed endpoint names, sorted
  bool process_mgmt = false;

  // The emitted ruledsl document and its compilation.
  std::string dsl;
  std::shared_ptr<const witfs::CompiledPolicy> compiled;
  size_t rule_count = 0;

  witbroker::ClassPolicy BrokerPolicy() const;
};

struct MinedPolicySet {
  uint64_t generation = 0;
  std::map<std::string, MinedClassPolicy> classes;
  uint64_t tickets_seen = 0;
  uint64_t tickets_excluded = 0;
};

class PolicyMiner {
 public:
  PolicyMiner() : PolicyMiner(MinerOptions()) {}
  explicit PolicyMiner(MinerOptions options) : options_(options) {}

  // Mines one policy generation from the recorder's merged (post-exclusion)
  // view. Every call bumps the generation counter.
  MinedPolicySet Mine(const TraceRecorder& recorder);
  MinedPolicySet MineTraces(const std::map<std::string, ClassTrace>& traces);

  const MinerOptions& options() const { return options_; }
  uint64_t generation() const { return generation_; }

 private:
  MinedClassPolicy MineClass(const std::string& cls, const ClassTrace& trace,
                             uint64_t generation) const;

  MinerOptions options_;
  uint64_t generation_ = 0;
};

// The anomaly -> tighten hook: excludes the ticket behind every flagged
// event from the recorder. Returns how many tickets were newly excluded.
size_t ExcludeFlaggedTickets(const std::vector<witbroker::BrokerEvent>& events,
                             const std::vector<witbroker::AnomalyScore>& scores,
                             TraceRecorder* recorder);

// Installs / clears the mined set as the shadow policy: per-class compiled
// ITFS policy on each registered image's FsView::shadow (picked up by the
// next ContainIt deployment) and the broker-verb half on the policy
// manager's shadow map (effective immediately). Never touches enforcement.
void InstallShadow(const MinedPolicySet& set, witcontain::ImageRepository* images,
                   witbroker::PolicyManager* broker_policy);
void ClearShadow(witcontain::ImageRepository* images, witbroker::PolicyManager* broker_policy);

// Privilege-surface accounting for the reduction metric: one unit per
// reachable path root, per grantable broker verb, per reachable endpoint,
// plus one for process management. share_host network views count every
// organizational endpoint on both sides (mining cannot shrink a shared
// namespace), so the comparison never flatters the miner. An UNSCOPED
// net_allow grant (ClassPolicy::allowed_endpoints empty — every
// hand-written Table 3 policy) also counts the full fabric: the broker
// will punch a hole to any endpoint on request. Mined policies are
// endpoint-scoped, so they count only the endpoints actually observed.
struct ClassSurface {
  size_t paths = 0;
  size_t verbs = 0;
  size_t endpoints = 0;
  size_t process_mgmt = 0;
  size_t total() const { return paths + verbs + endpoints + process_mgmt; }
};

ClassSurface HandWrittenSurface(const witcontain::PerforatedContainerSpec& spec,
                                const witbroker::ClassPolicy* broker);
ClassSurface MinedSurface(const MinedClassPolicy& mined,
                          const witcontain::PerforatedContainerSpec& spec);

}  // namespace witmine

#endif  // SRC_MINE_MINER_H_
