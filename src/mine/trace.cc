#include "src/mine/trace.h"

#include "src/os/path.h"
#include "src/workload/topology.h"

namespace witmine {

TraceRecorder::TicketTrace& TraceRecorder::TraceFor(const std::string& ticket_id,
                                                    const std::string& cls) {
  TicketTrace& trace = tickets_[ticket_id];
  if (trace.cls.empty()) {
    trace.cls = cls;
  }
  return trace;
}

void TraceRecorder::RecordOps(const std::string& ticket_class, const std::string& ticket_id,
                              const std::vector<witload::RequiredOp>& ops) {
  TicketTrace& trace = TraceFor(ticket_id, ticket_class);
  for (const witload::RequiredOp& op : ops) {
    ++trace.ops;
    // Mirrors AdminSession::TryInView: the same op either lands on the
    // container's filesystem/network view or escalates to the broker verb
    // the session would use.
    switch (op.kind) {
      case witload::OpKind::kReadFile:
      case witload::OpKind::kListDir:
        ++trace.paths[witos::NormalizePath(op.path)].reads;
        if (op.beyond_view) {
          ++trace.verbs[witbroker::kVerbReadFile];
        }
        break;
      case witload::OpKind::kWriteFile:
        ++trace.paths[witos::NormalizePath(op.path)].writes;
        if (op.beyond_view) {
          ++trace.verbs[witbroker::kVerbMountVolume];
        }
        break;
      case witload::OpKind::kConnect:
        ++trace.endpoints[op.endpoint_name];
        if (op.beyond_view) {
          ++trace.verbs[witbroker::kVerbNetAllow];
        }
        break;
      case witload::OpKind::kListProcesses:
        if (op.beyond_view) {
          ++trace.verbs[witbroker::kVerbPs];
        } else {
          trace.process_mgmt = true;
        }
        break;
      case witload::OpKind::kKillProcess:
        if (op.beyond_view) {
          ++trace.verbs[witbroker::kVerbKill];
        } else {
          trace.process_mgmt = true;
        }
        break;
      case witload::OpKind::kRestartService:
        if (op.beyond_view) {
          ++trace.verbs[witbroker::kVerbRestartService];
        } else {
          trace.process_mgmt = true;
        }
        break;
      case witload::OpKind::kReboot:
        if (op.beyond_view) {
          ++trace.verbs[witbroker::kVerbReboot];
        } else {
          trace.process_mgmt = true;
        }
        break;
      case witload::OpKind::kInstallPackage:
        // An install reaches the repository and drops the package under
        // /usr/progs (the in-view path AdminSession writes).
        if (!op.endpoint_name.empty()) {
          ++trace.endpoints[op.endpoint_name];
        } else {
          ++trace.endpoints[witload::kSoftwareRepo.name];
        }
        ++trace.paths[witos::NormalizePath("/usr/progs/" + op.service)].writes;
        if (op.beyond_view) {
          ++trace.verbs[witbroker::kVerbInstall];
        }
        break;
      case witload::OpKind::kDriverUpdate:
        // TCB change: always the broker, never the view.
        ++trace.verbs[witbroker::kVerbDriverUpdate];
        break;
    }
  }
}

void TraceRecorder::RecordBrokerEvents(const std::vector<witbroker::BrokerEvent>& events) {
  for (const witbroker::BrokerEvent& event : events) {
    if (event.verb.empty()) {
      continue;
    }
    TicketTrace& trace = TraceFor(event.ticket_id, event.ticket_class);
    ++trace.ops;
    ++trace.verbs[event.verb];
    // File-bearing verbs also widen the observed path surface.
    if (!event.args.empty() && (event.verb == witbroker::kVerbReadFile ||
                                event.verb == witbroker::kVerbMountVolume)) {
      ClassTrace::PathStats& stats = trace.paths[witos::NormalizePath(event.args[0])];
      if (event.verb == witbroker::kVerbReadFile) {
        ++stats.reads;
      } else {
        ++stats.writes;
      }
    }
  }
}

void TraceRecorder::ExcludeTicket(const std::string& ticket_id) {
  excluded_.insert(ticket_id);
}

std::map<std::string, ClassTrace> TraceRecorder::Merged() const {
  std::map<std::string, ClassTrace> merged;
  for (const auto& [ticket_id, trace] : tickets_) {
    if (excluded_.count(ticket_id) > 0) {
      continue;
    }
    ClassTrace& cls = merged[trace.cls];
    ++cls.tickets;
    cls.ops += trace.ops;
    cls.process_mgmt = cls.process_mgmt || trace.process_mgmt;
    for (const auto& [path, stats] : trace.paths) {
      cls.paths[path].reads += stats.reads;
      cls.paths[path].writes += stats.writes;
    }
    for (const auto& [verb, count] : trace.verbs) {
      cls.verbs[verb] += count;
    }
    for (const auto& [endpoint, count] : trace.endpoints) {
      cls.endpoints[endpoint] += count;
    }
  }
  return merged;
}

}  // namespace witmine
