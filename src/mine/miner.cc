#include "src/mine/miner.h"

#include <algorithm>
#include <sstream>

#include "src/core/ticket_class.h"
#include "src/fs/itfs_policy.h"
#include "src/os/path.h"
#include "src/workload/topology.h"

namespace witmine {
namespace {

// One unit per grantable broker verb (the full verb vocabulary), used to
// account an allow_all policy.
constexpr size_t kAllBrokerVerbs = 9;

// Path surface of a whole-root view: the provisioned top-level host
// directories (machine.cc ProvisionFilesystem).
constexpr size_t kWholeRootPathSurface = 6;

bool IsPathPrefix(const std::string& prefix, const std::string& path) {
  if (prefix == "/") {
    return true;
  }
  if (path.size() < prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

// First `depth` components of an absolute directory path.
std::string TruncateToDepth(const std::string& dir, size_t depth) {
  if (dir.size() <= 1 || depth == 0) {
    return dir;
  }
  size_t components = 0;
  for (size_t i = 1; i < dir.size(); ++i) {
    if (dir[i] == '/') {
      ++components;
      if (components == depth) {
        return dir.substr(0, i);
      }
    }
  }
  return dir;  // fewer than `depth` components already
}

// The mined prefix for one observed path: its directory, truncated. Files
// directly under "/" keep their full path (a "/" prefix would allow all).
std::string PrefixFor(const std::string& path, size_t depth) {
  std::string dir = witos::Dirname(path);
  if (dir.empty() || dir == "/") {
    return path;
  }
  return TruncateToDepth(dir, depth);
}

// Extension of a path's leaf, or "" (leading-dot files have no extension).
std::string ExtensionOf(const std::string& path) {
  std::string base = witos::Basename(path);
  size_t dot = base.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == base.size()) {
    return "";
  }
  return base.substr(dot + 1);
}

std::string JoinComma(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) {
      out += ",";
    }
    out += item;
  }
  return out;
}

}  // namespace

witbroker::ClassPolicy MinedClassPolicy::BrokerPolicy() const {
  witbroker::ClassPolicy policy;
  policy.allowed_verbs = verbs;
  // Scope endpoint-carrying verbs to the endpoints the class was observed
  // contacting. Live net_allow requests name the endpoint by address
  // (session escalation resolves the name first), so both forms go in.
  for (const std::string& endpoint : endpoints) {
    policy.allowed_endpoints.insert(endpoint);
    const witload::OrgEndpoint* known = witload::EndpointByName(endpoint);
    if (known != nullptr) {
      policy.allowed_endpoints.insert(known->addr.ToString());
    }
  }
  return policy;
}

MinedClassPolicy PolicyMiner::MineClass(const std::string& cls, const ClassTrace& trace,
                                        uint64_t generation) const {
  MinedClassPolicy mined;
  mined.ticket_class = cls;
  mined.generation = generation;
  mined.process_mgmt = trace.process_mgmt;

  // --- path generalization: collapse observed paths to prefixes ----------
  std::vector<std::string> prefixes;
  for (const auto& [path, stats] : trace.paths) {
    prefixes.push_back(PrefixFor(path, options_.max_prefix_depth));
  }
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()), prefixes.end());
  // Drop prefixes subsumed by a shorter one (sorted order puts the shorter
  // candidate first).
  std::vector<std::string> collapsed;
  for (const std::string& prefix : prefixes) {
    if (!collapsed.empty() && IsPathPrefix(collapsed.back(), prefix)) {
      continue;
    }
    collapsed.push_back(prefix);
  }
  mined.prefixes = std::move(collapsed);

  // A prefix is read-only when nothing under it was ever written.
  std::map<std::string, uint64_t> prefix_writes;
  for (const auto& [path, stats] : trace.paths) {
    for (const std::string& prefix : mined.prefixes) {
      if (IsPathPrefix(prefix, path)) {
        prefix_writes[prefix] += stats.writes;
        break;
      }
    }
  }
  for (const std::string& prefix : mined.prefixes) {
    if (prefix_writes[prefix] == 0) {
      mined.read_only.insert(prefix);
    }
  }

  // --- extension clustering: never-written extensions with support -------
  std::map<std::string, std::pair<uint64_t, uint64_t>> ext_stats;  // ext -> {reads, writes}
  for (const auto& [path, stats] : trace.paths) {
    std::string ext = ExtensionOf(path);
    if (ext.empty()) {
      continue;
    }
    ext_stats[ext].first += stats.reads;
    ext_stats[ext].second += stats.writes;
  }
  for (const auto& [ext, stats] : ext_stats) {
    if (stats.second == 0 && stats.first >= options_.min_ext_support) {
      mined.read_only_extensions.push_back(ext);
    }
  }

  // --- broker verbs and endpoints ----------------------------------------
  for (const auto& [verb, count] : trace.verbs) {
    if (count >= options_.min_verb_support) {
      mined.verbs.insert(verb);
    }
  }
  for (const auto& [endpoint, count] : trace.endpoints) {
    mined.endpoints.push_back(endpoint);
  }

  // --- emit the ruledsl document ------------------------------------------
  std::ostringstream dsl;
  dsl << "# witmine generation " << mined.generation << " class " << cls << " ("
      << trace.tickets << " tickets, " << trace.ops << " ops)\n";
  dsl << "mode extension\n";
  dsl << "log-all on\n";
  // The §6.2 blanket hard constraints come first so mining can never
  // loosen them.
  dsl << "deny path:" << JoinComma(watchit::WatchItProtectedPaths())
      << " name=hard-protect-watchit\n";
  dsl << "deny ext:" << JoinComma(witfs::DocumentExtensions()) << " name=hard-no-documents\n";
  if (!mined.read_only_extensions.empty()) {
    dsl << "deny ext:" << JoinComma(mined.read_only_extensions)
        << " write-only name=mined-ro-ext\n";
  }
  size_t n = 0;
  for (const std::string& prefix : mined.prefixes) {
    if (mined.read_only.count(prefix) > 0) {
      dsl << "deny path:" << prefix << " write-only name=mined-ro-" << ++n << "\n";
    }
  }
  n = 0;
  for (const std::string& prefix : mined.prefixes) {
    dsl << "allow path:" << prefix << " name=mined-allow-" << ++n << "\n";
  }
  dsl << "deny path:/ name=mined-default-deny\n";
  mined.dsl = dsl.str();

  auto parsed = witfs::ParseItfsPolicy(mined.dsl);
  // The grammar above is emitted, not authored; a parse failure is a miner
  // bug. Leave `compiled` null in that case so callers can detect it.
  if (parsed.ok()) {
    mined.compiled = parsed.value().compiled;
    mined.rule_count = parsed.value().rule_count;
  }
  return mined;
}

MinedPolicySet PolicyMiner::MineTraces(const std::map<std::string, ClassTrace>& traces) {
  MinedPolicySet set;
  set.generation = ++generation_;
  for (const auto& [cls, trace] : traces) {
    MinedClassPolicy mined = MineClass(cls, trace, set.generation);
    set.tickets_seen += trace.tickets;
    set.classes.emplace(cls, std::move(mined));
  }
  return set;
}

MinedPolicySet PolicyMiner::Mine(const TraceRecorder& recorder) {
  MinedPolicySet set = MineTraces(recorder.Merged());
  set.tickets_excluded = recorder.excluded_count();
  return set;
}

size_t ExcludeFlaggedTickets(const std::vector<witbroker::BrokerEvent>& events,
                             const std::vector<witbroker::AnomalyScore>& scores,
                             TraceRecorder* recorder) {
  size_t newly_excluded = 0;
  for (const witbroker::AnomalyScore& score : scores) {
    if (!score.flagged || score.event_index >= events.size()) {
      continue;
    }
    const std::string& ticket = events[score.event_index].ticket_id;
    if (ticket.empty() || recorder->IsExcluded(ticket)) {
      continue;
    }
    recorder->ExcludeTicket(ticket);
    ++newly_excluded;
  }
  return newly_excluded;
}

void InstallShadow(const MinedPolicySet& set, witcontain::ImageRepository* images,
                   witbroker::PolicyManager* broker_policy) {
  if (images != nullptr) {
    images->ForEach([&set](const std::string& cls, witcontain::PerforatedContainerSpec* spec) {
      auto it = set.classes.find(cls);
      spec->fs.shadow = it == set.classes.end() ? nullptr : it->second.compiled;
    });
  }
  if (broker_policy != nullptr) {
    broker_policy->ClearShadowPolicies();
    for (const auto& [cls, mined] : set.classes) {
      broker_policy->SetShadowPolicy(cls, mined.BrokerPolicy());
    }
  }
}

void ClearShadow(witcontain::ImageRepository* images, witbroker::PolicyManager* broker_policy) {
  if (images != nullptr) {
    images->ForEach([](const std::string&, witcontain::PerforatedContainerSpec* spec) {
      spec->fs.shadow = nullptr;
    });
  }
  if (broker_policy != nullptr) {
    broker_policy->ClearShadowPolicies();
  }
}

ClassSurface HandWrittenSurface(const witcontain::PerforatedContainerSpec& spec,
                                const witbroker::ClassPolicy* broker) {
  ClassSurface surface;
  switch (spec.fs.kind) {
    case witcontain::FsView::Kind::kWholeRoot:
      surface.paths = kWholeRootPathSurface;
      break;
    case witcontain::FsView::Kind::kDirs:
      surface.paths = spec.fs.visible_dirs.size();
      break;
    case witcontain::FsView::Kind::kPrivate:
      surface.paths = 0;
      break;
  }
  bool unscoped_net_allow = false;
  if (broker != nullptr) {
    surface.verbs = broker->allow_all ? kAllBrokerVerbs : broker->allowed_verbs.size();
    unscoped_net_allow =
        (broker->allow_all || broker->allowed_verbs.count(witbroker::kVerbNetAllow) > 0) &&
        broker->allowed_endpoints.empty();
  }
  // A shared NET namespace reaches everything; so does an unscoped
  // net_allow grant — the broker will punch a hole to any organizational
  // endpoint on request. Both are charged the full fabric.
  surface.endpoints = spec.net.share_host || unscoped_net_allow
                          ? witload::AllOrgEndpoints().size()
                          : spec.net.allowed.size();
  surface.process_mgmt = spec.process_mgmt ? 1 : 0;
  return surface;
}

ClassSurface MinedSurface(const MinedClassPolicy& mined,
                          const witcontain::PerforatedContainerSpec& spec) {
  ClassSurface surface;
  surface.paths = mined.prefixes.size();
  surface.verbs = mined.verbs.size();
  // A shared NET namespace is a hole mining cannot shrink: count the full
  // organizational fabric on both sides.
  surface.endpoints =
      spec.net.share_host ? witload::AllOrgEndpoints().size() : mined.endpoints.size();
  surface.process_mgmt = spec.process_mgmt ? 1 : 0;
  return surface;
}

}  // namespace witmine
