// witprof: cross-thread ticket timelines (DESIGN.md §13).
//
// Spans live in per-thread ring buffers, so a pipelined ticket — Prepare on
// a serve worker, deploy stages on a DeployPipeline worker, Finish on
// whichever worker popped the ready job — leaves its story scattered across
// three rings. TicketTimeline reassembles it: group a Tracer snapshot by
// correlation id, order causally (start time, then depth), and expose the
// per-stage breakdown an incident responder actually wants: where did this
// ticket's 4 seconds go?

#ifndef SRC_OBS_TIMELINE_H_
#define SRC_OBS_TIMELINE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace witobs {

class TicketTimeline {
 public:
  // All timelines in `spans`, one per distinct correlation id (spans with
  // no correlation id are skipped — they belong to no ticket). Ordered by
  // first span start, oldest ticket first.
  static std::vector<TicketTimeline> AssembleAll(const std::vector<SpanRecord>& spans);

  // The single ticket's timeline from a live tracer (empty timeline — no
  // stages — when the tracer holds no spans for the id).
  static TicketTimeline ForTicket(const Tracer& tracer, const std::string& ticket_id);

  const std::string& ticket_id() const { return ticket_id_; }
  // Spans sorted by (start_ns, depth): causal order within a thread, wall
  // order across threads.
  const std::vector<SpanRecord>& stages() const { return stages_; }

  uint64_t start_ns() const { return start_ns_; }
  uint64_t end_ns() const { return end_ns_; }
  // Wall span from the first stage's start to the last stage's end.
  uint64_t SpanNs() const { return end_ns_ > start_ns_ ? end_ns_ - start_ns_ : 0; }

  // Distinct thread ids the ticket's spans were recorded on — a pipelined
  // ticket crosses at least two.
  size_t ThreadCount() const;

  // Summed duration of every stage named `name` (a ticket can revisit a
  // stage, e.g. two deploys for a T-9 dual deployment).
  uint64_t StageDurationNs(const std::string& name) const;

  // Human-readable rendering, one line per stage with thread attribution.
  std::string Render() const;

 private:
  std::string ticket_id_;
  std::vector<SpanRecord> stages_;
  uint64_t start_ns_ = 0;
  uint64_t end_ns_ = 0;
};

}  // namespace witobs

#endif  // SRC_OBS_TIMELINE_H_
