#include "src/obs/recorder.h"

#include "src/obs/export.h"
#include "src/obs/profile.h"

namespace witobs {

namespace {

std::string JsonSpan(const SpanRecord& span) {
  return "{\"name\":\"" + JsonEscape(span.name) + "\",\"correlation_id\":\"" +
         JsonEscape(span.correlation_id) + "\",\"start_ns\":" +
         std::to_string(span.start_ns) + ",\"duration_ns\":" +
         std::to_string(span.duration_ns) + ",\"depth\":" + std::to_string(span.depth) +
         ",\"thread_id\":" + std::to_string(span.thread_id) + "}";
}

std::string JsonLock(const LockContention& lock) {
  return "{\"lock\":\"" + JsonEscape(lock.lock) + "\",\"wait_count\":" +
         std::to_string(lock.wait_count) + ",\"wait_sum_ns\":" +
         std::to_string(lock.wait_sum_ns) + ",\"wait_p99_ns\":" +
         std::to_string(lock.wait_p99_ns) + ",\"hold_sum_ns\":" +
         std::to_string(lock.hold_sum_ns) + ",\"hold_p99_ns\":" +
         std::to_string(lock.hold_p99_ns) + "}";
}

}  // namespace

FlightRecorder::FlightRecorder(MetricsRegistry* registry, Tracer* tracer)
    : FlightRecorder(registry, tracer, Options()) {}

FlightRecorder::FlightRecorder(MetricsRegistry* registry, Tracer* tracer, Options options)
    : registry_(registry), tracer_(tracer), options_(options) {
  if (options_.max_dumps == 0) {
    options_.max_dumps = 1;
  }
}

bool FlightRecorder::Trigger(const std::string& reason, const std::string& detail) {
  uint64_t now_ns = tracer_ != nullptr ? tracer_->NowNs() : MonotonicNowNs();
  uint64_t dropped_so_far;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool blacked_out = options_.min_interval_ns != 0 && captured_ > 0 &&
                       now_ns - last_dump_ns_ < options_.min_interval_ns;
    if (dumps_.size() >= options_.max_dumps || blacked_out) {
      ++dropped_;
      return false;
    }
    // Reserve the slot under the lock; build the artifact outside it so a
    // slow registry snapshot never blocks a concurrent trigger decision.
    ++captured_;
    last_dump_ns_ = now_ns;
    dropped_so_far = dropped_;
    dumps_.push_back(Dump{now_ns, reason, detail, ""});
  }
  std::string json = BuildArtifact(reason, detail, now_ns, dropped_so_far);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = dumps_.rbegin(); it != dumps_.rend(); ++it) {
      if (it->trigger_ns == now_ns && it->reason == reason && it->json.empty()) {
        it->json = std::move(json);
        break;
      }
    }
  }
  return true;
}

std::string FlightRecorder::BuildArtifact(const std::string& reason,
                                          const std::string& detail, uint64_t now_ns,
                                          uint64_t dropped_so_far) const {
  std::string out = "{\"reason\":\"" + JsonEscape(reason) + "\",\"detail\":\"" +
                    JsonEscape(detail) + "\",\"trigger_ns\":" + std::to_string(now_ns);

  out += ",\"spans\":[";
  uint64_t spans_dropped = 0;
  if (tracer_ != nullptr) {
    std::vector<SpanRecord> spans = tracer_->Snapshot();
    size_t start = 0;
    if (options_.max_spans != 0 && spans.size() > options_.max_spans) {
      start = spans.size() - options_.max_spans;
    }
    for (size_t i = start; i < spans.size(); ++i) {
      if (i != start) {
        out += ",";
      }
      out += JsonSpan(spans[i]);
    }
    spans_dropped = tracer_->dropped() + start;
  }
  out += "],\"spans_dropped\":" + std::to_string(spans_dropped);

  out += ",\"top_locks\":[";
  if (registry_ != nullptr) {
    std::vector<LockContention> locks = TopContendedLocks(*registry_, options_.top_locks);
    for (size_t i = 0; i < locks.size(); ++i) {
      if (i != 0) {
        out += ",";
      }
      out += JsonLock(locks[i]);
    }
  }
  out += "]";

  out += ",\"metrics\":";
  out += registry_ != nullptr ? RenderJson(*registry_) : "{}";

  out += ",\"dumps_dropped\":" + std::to_string(dropped_so_far) + "}";
  return out;
}

std::vector<FlightRecorder::Dump> FlightRecorder::dumps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dumps_;
}

uint64_t FlightRecorder::dumps_captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_;
}

uint64_t FlightRecorder::dumps_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string FlightRecorder::last_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dumps_.empty() ? "" : dumps_.back().json;
}

}  // namespace witobs
