// witobs: WatchIT's observability substrate (tracing half).
//
// A ticket's life crosses every layer of the stack — ItFramework::Classify
// picks the container image, TicketWorkflow deploys it, the admin's
// operations hit PermissionBroker::Handle and Itfs::Gate, which in turn call
// into the lower filesystem. Spans are RAII scopes that record (name,
// correlation id, start, duration, depth) into a bounded per-thread buffer,
// so an incident responder can ask "show me everything ticket TKT-412
// touched, in causal order" without grepping three unrelated logs.
//
// Correlation ids propagate implicitly: a Span opened without one inherits
// the innermost active span's id on the same thread, which is how a gate
// check deep inside ITFS ends up tagged with the workflow's ticket id.
//
// The per-thread buffers are rings: when full, the oldest spans are
// overwritten and `dropped()` counts what was lost — tracing never grows
// memory without bound and never blocks the instrumented thread on a
// reader.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace witobs {

struct SpanRecord {
  std::string name;            // e.g. "itfs.gate"
  std::string correlation_id;  // ticket / session id, possibly inherited
  uint64_t start_ns = 0;       // monotonic wall clock (or injected test clock)
  uint64_t duration_ns = 0;
  uint32_t depth = 0;  // nesting level at record time (0 = root)
  uint64_t thread_id = 0;
};

// A span context captured on one thread and handed to another, so work
// that hops threads (serve worker → deploy-pipeline worker → whichever
// worker pops the ready job) still lands every span under one correlation
// id. Cheap to copy; an empty context opens an ordinary root span.
struct SpanContext {
  std::string correlation_id;
  bool valid() const { return !correlation_id.empty(); }
};

class Tracer {
 public:
  // `capacity_per_thread` bounds each thread's ring buffer.
  explicit Tracer(size_t capacity_per_thread = 4096);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Non-destructive copy of every thread's buffered spans, oldest first per
  // thread. Ordering across threads follows registration order.
  std::vector<SpanRecord> Snapshot() const;

  // Total spans overwritten across all thread buffers since construction.
  uint64_t dropped() const;

  // Spans recorded (and still buffered) plus spans dropped.
  uint64_t total_recorded() const;

  void Clear();

  // Explicitly records a synthesized span — an interval measured by hand
  // (queue wait, deploy in-flight) rather than by an RAII scope. A zero
  // thread_id is replaced with the calling thread's id. The record lands
  // in the calling thread's ring, subject to the same drop accounting.
  void RecordSpan(SpanRecord record);

  // The innermost active correlation id on the calling thread, packaged
  // for a cross-thread handoff (see SpanContext). An explicit
  // `correlation_id` overrides what is active.
  SpanContext CaptureContext();

  // Deterministic tests inject a manual clock; production uses the
  // monotonic wall clock.
  void SetClockForTest(uint64_t (*now_ns)());

  // The tracer's clock (test clock when injected) — lets callers stamp
  // synthesized spans on the same timebase as RAII spans.
  uint64_t NowNs() const { return Now(); }

  size_t capacity_per_thread() const { return capacity_; }

 private:
  friend class Span;
  struct ThreadBuffer;
  struct ActiveFrame {
    std::string correlation_id;
  };

  // The calling thread's buffer (created and registered on first use).
  ThreadBuffer* LocalBuffer();
  uint64_t Now() const;

  // Thread-local buffer table, keyed by tracer id so a destroyed tracer's
  // address being reused can never alias a stale entry.
  static std::map<uint64_t, std::shared_ptr<ThreadBuffer>>& LocalBuffers();

  const size_t capacity_;
  const uint64_t id_;  // distinguishes re-used addresses in thread-local maps
  std::atomic<uint64_t (*)()> clock_{nullptr};
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

// Process-wide tracer used by instrumentation that has no better wiring
// point. Tests that need isolation construct their own Tracer.
Tracer& GlobalTracer();

// RAII trace scope. Construction captures the start time and pushes the
// frame on the thread's span stack; destruction pops it and records the
// finished span. A null tracer makes the whole object a no-op.
class Span {
 public:
  // `correlation_id` tags the span (and everything nested under it) with a
  // ticket/session id; empty means "inherit from the enclosing span".
  Span(Tracer* tracer, const char* name, std::string correlation_id = "");
  // Continuation span: adopts a context captured on another thread, so the
  // span (and everything nested under it) joins that ticket's timeline.
  Span(Tracer* tracer, const char* name, const SpanContext& context)
      : Span(tracer, name, context.correlation_id) {}
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // The innermost active correlation id on this thread for `tracer`
  // (empty when no span is active).
  static std::string CurrentCorrelationId(Tracer* tracer);

 private:
  Tracer* tracer_;
  Tracer::ThreadBuffer* buffer_ = nullptr;
  const char* name_;
  std::string correlation_id_;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace witobs

#endif  // SRC_OBS_TRACE_H_
