// witprof: rolling-window SLO evaluation over the metrics registry
// (DESIGN.md §13).
//
// Raw histograms only answer "what was the p99 since boot"; an operator
// cares about "what is the p99 over the last window" and "how fast am I
// burning my error budget". SloEngine keeps a bounded ring of registry
// samples per SLO and evaluates against the *delta* between the newest and
// oldest sample, so a latency regression or reject burst shows up within a
// window even after days of healthy history diluted the lifetime numbers.
//
// Two SLO kinds:
//   - Latency: windowed percentile of one histogram series vs a threshold.
//   - Ratio:   error-budget burn rate. With objective 0.99, the budget is
//     1% of events; burn rate = (bad/total within the window) / (1 -
//     objective). Burn 1.0 = consuming budget exactly at the allowed rate;
//     the alert threshold is expressed as a max burn rate, following the
//     multiwindow burn-rate alerting everyone runs in production.
//
// Evaluate() is pull-based: the caller decides the cadence (a bench ticks
// it between waves; a test ticks it manually with an injected clock). Each
// breach fires the breach callback — the flight recorder's trigger wire.

#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace witobs {

// Sums every counter series in `family` whose labels contain `subset`
// (subset empty = all series — how a by-stage family like
// watchit_deploy_rollbacks_total is folded into one number).
uint64_t SumCounters(const MetricsRegistry& registry, const std::string& family,
                     const Labels& subset);

class SloEngine {
 public:
  struct Options {
    // Samples retained per SLO, including the newest: the window covers
    // up to (window_samples - 1) Evaluate() intervals.
    size_t window_samples = 16;
  };

  struct LatencySlo {
    std::string name;        // e.g. "serve-e2e-p99"
    std::string histogram;   // registry family, e.g. watchit_serve_e2e_latency_ns
    Labels labels;           // exact series labels
    double percentile = 99.0;
    uint64_t threshold_ns = 0;  // breach when windowed percentile exceeds this
  };

  struct CounterSelector {
    std::string family;
    Labels subset;  // label subset match; empty matches every series
  };

  struct RatioSlo {
    std::string name;  // e.g. "admission-rejects"
    CounterSelector bad;
    CounterSelector total;
    double objective = 0.99;      // fraction of events allowed to be good
    double max_burn_rate = 1.0;   // breach at or above this burn rate
  };

  struct Status {
    std::string name;
    bool breached = false;
    // Latency: windowed percentile in ns. Ratio: burn rate.
    double value = 0.0;
    double threshold = 0.0;
    // Events inside the window the value was computed from (0 = idle
    // window, never a breach).
    uint64_t window_events = 0;
    std::string detail;  // human-readable, embedded in recorder dumps
  };

  using BreachCallback = std::function<void(const Status&)>;

  explicit SloEngine(MetricsRegistry* registry);
  SloEngine(MetricsRegistry* registry, Options options);

  void AddLatencySlo(LatencySlo slo);
  void AddRatioSlo(RatioSlo slo);

  // Invoked (outside the engine lock) once per breached SLO per Evaluate().
  void set_breach_callback(BreachCallback callback);

  // Takes one sample of every SLO's inputs and evaluates each window.
  // Returns one Status per registered SLO, in registration order.
  std::vector<Status> Evaluate();

  // Breaches observed across all Evaluate() calls.
  uint64_t breaches() const;

  size_t slo_count() const;

 private:
  struct HistogramSample {
    std::array<uint64_t, Histogram::kNumBuckets + 1> buckets{};
    uint64_t count = 0;
  };
  struct LatencyState {
    LatencySlo slo;
    std::deque<HistogramSample> window;
  };
  struct RatioSample {
    uint64_t bad = 0;
    uint64_t total = 0;
  };
  struct RatioState {
    RatioSlo slo;
    std::deque<RatioSample> window;
  };

  MetricsRegistry* registry_;
  Options options_;
  mutable std::mutex mu_;
  std::vector<LatencyState> latency_;
  std::vector<RatioState> ratio_;
  std::vector<size_t> order_;  // interleaved registration order: latency idx | ratio idx+bias
  BreachCallback breach_callback_;
  uint64_t breaches_ = 0;
};

// Registers the three stock WatchIT SLOs against an engine whose registry
// is wired to a ServerPool + DeployPipeline:
//   ticket-e2e-latency   p99(watchit_serve_e2e_latency_ns) <= max_e2e_p99_ns
//   admission-rejects    burn of rejected vs all serve outcomes
//   deploy-rollbacks     burn of rollbacks vs finished deploy transactions
void InstallWatchItSlos(SloEngine* engine, uint64_t max_e2e_p99_ns,
                        double reject_objective = 0.99,
                        double rollback_objective = 0.99);

}  // namespace witobs

#endif  // SRC_OBS_SLO_H_
