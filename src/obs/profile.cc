#include "src/obs/profile.h"

#include <algorithm>
#include <map>

namespace witobs {

void ProfiledMutex::EnableMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->SetHelp("watchit_lock_wait_ns", "Time spent blocked acquiring a profiled lock");
  registry->SetHelp("watchit_lock_hold_ns", "Time a profiled lock was held per acquisition");
  Labels labels = {{"lock", name_}};
  wait_hist_.store(registry->GetHistogram("watchit_lock_wait_ns", labels),
                   std::memory_order_release);
  hold_hist_.store(registry->GetHistogram("watchit_lock_hold_ns", labels),
                   std::memory_order_release);
  profiling_.store(true, std::memory_order_release);
}

void ProfiledMutex::DisableMetrics() {
  profiling_.store(false, std::memory_order_release);
  wait_hist_.store(nullptr, std::memory_order_release);
  hold_hist_.store(nullptr, std::memory_order_release);
}

void ProfiledMutex::lock() {
  if (!profiling_.load(std::memory_order_acquire)) {
    mu_.lock();
    return;
  }
  uint64_t wait_ns = 0;
  if (mu_.try_lock()) {
    // Uncontended: no wait-clock reads, just the zero observation so the
    // histogram's count stays equal to the acquisition count.
  } else {
    uint64_t wait_start = MonotonicNowNs();
    mu_.lock();
    wait_ns = MonotonicNowNs() - wait_start;
    contended_.fetch_add(1, std::memory_order_relaxed);
    total_wait_ns_.fetch_add(wait_ns, std::memory_order_relaxed);
  }
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (Histogram* hist = wait_hist_.load(std::memory_order_acquire)) {
    hist->Observe(wait_ns);
  }
  hold_start_ns_ = MonotonicNowNs();
}

bool ProfiledMutex::try_lock() {
  if (!mu_.try_lock()) {
    return false;
  }
  if (profiling_.load(std::memory_order_acquire)) {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    if (Histogram* hist = wait_hist_.load(std::memory_order_acquire)) {
      hist->Observe(0);
    }
    hold_start_ns_ = MonotonicNowNs();
  } else {
    hold_start_ns_ = 0;
  }
  return true;
}

void ProfiledMutex::unlock() {
  // hold_start_ns_ == 0 covers acquisitions made before EnableMetrics
  // landed: never charge them a bogus epoch-length hold.
  if (hold_start_ns_ != 0 && profiling_.load(std::memory_order_acquire)) {
    uint64_t hold_ns = MonotonicNowNs() - hold_start_ns_;
    hold_start_ns_ = 0;
    total_hold_ns_.fetch_add(hold_ns, std::memory_order_relaxed);
    if (Histogram* hist = hold_hist_.load(std::memory_order_acquire)) {
      hist->Observe(hold_ns);
    }
  } else {
    hold_start_ns_ = 0;
  }
  mu_.unlock();
}

ProfiledMutex::Stats ProfiledMutex::stats() const {
  Stats stats;
  stats.acquisitions = acquisitions_.load(std::memory_order_relaxed);
  stats.contended = contended_.load(std::memory_order_relaxed);
  stats.total_wait_ns = total_wait_ns_.load(std::memory_order_relaxed);
  stats.total_hold_ns = total_hold_ns_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<LockContention> TopContendedLocks(const MetricsRegistry& registry,
                                              size_t max_locks) {
  return TopContendedLocks(std::vector<const MetricsRegistry*>{&registry}, max_locks);
}

std::vector<LockContention> TopContendedLocks(
    const std::vector<const MetricsRegistry*>& registries, size_t max_locks) {
  // Merge rows by lock name: counts and totals sum, p99s keep the worst.
  std::map<std::string, LockContention> merged;
  for (const MetricsRegistry* registry : registries) {
    if (registry == nullptr) {
      continue;
    }
    for (const auto& family : registry->Snapshot()) {
      if (family.name != "watchit_lock_wait_ns") {
        continue;
      }
      for (const auto& series : family.series) {
        LockContention row;
        for (const auto& [key, value] : series.labels) {
          if (key == "lock") {
            row.lock = value;
          }
        }
        row.wait_count = series.histogram->Count();
        row.wait_sum_ns = series.histogram->SumNs();
        row.wait_p99_ns = series.histogram->Percentile(99);
        if (const Histogram* hold =
                registry->FindHistogram("watchit_lock_hold_ns", series.labels)) {
          row.hold_sum_ns = hold->SumNs();
          row.hold_p99_ns = hold->Percentile(99);
        }
        auto [it, inserted] = merged.emplace(row.lock, row);
        if (!inserted) {
          LockContention& existing = it->second;
          existing.wait_count += row.wait_count;
          existing.wait_sum_ns += row.wait_sum_ns;
          existing.wait_p99_ns = std::max(existing.wait_p99_ns, row.wait_p99_ns);
          existing.hold_sum_ns += row.hold_sum_ns;
          existing.hold_p99_ns = std::max(existing.hold_p99_ns, row.hold_p99_ns);
        }
      }
    }
  }
  std::vector<LockContention> ranking;
  ranking.reserve(merged.size());
  for (auto& [name, row] : merged) {
    ranking.push_back(std::move(row));
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const LockContention& a, const LockContention& b) {
              if (a.wait_sum_ns != b.wait_sum_ns) {
                return a.wait_sum_ns > b.wait_sum_ns;
              }
              if (a.hold_sum_ns != b.hold_sum_ns) {
                return a.hold_sum_ns > b.hold_sum_ns;
              }
              return a.lock < b.lock;
            });
  if (max_locks != 0 && ranking.size() > max_locks) {
    ranking.resize(max_locks);
  }
  return ranking;
}

}  // namespace witobs
