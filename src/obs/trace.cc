#include "src/obs/trace.h"

#include <map>

#include "src/obs/metrics.h"

namespace witobs {

// One ring buffer per (tracer, thread). The owning thread is the only
// writer; Snapshot() readers take the buffer mutex, which the writer holds
// only for the duration of one record copy.
struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(size_t capacity) : ring(capacity) {}

  mutable std::mutex mu;
  std::vector<SpanRecord> ring;
  size_t next = 0;      // ring write cursor
  size_t size = 0;      // valid records in the ring
  uint64_t dropped = 0;  // overwritten records

  // Span stack — touched only by the owning thread, never by readers.
  std::vector<ActiveFrame> stack;
  uint64_t thread_id = 0;

  void Push(SpanRecord record) {
    std::lock_guard<std::mutex> lock(mu);
    if (size == ring.size()) {
      ++dropped;  // overwrite the oldest
    } else {
      ++size;
    }
    ring[next] = std::move(record);
    next = (next + 1) % ring.size();
  }
};

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};
std::atomic<uint64_t> g_next_thread_id{1};

uint64_t LocalThreadId() {
  thread_local uint64_t id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

std::map<uint64_t, std::shared_ptr<Tracer::ThreadBuffer>>& Tracer::LocalBuffers() {
  thread_local std::map<uint64_t, std::shared_ptr<ThreadBuffer>> buffers;
  return buffers;
}

Tracer::Tracer(size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  auto& local = LocalBuffers();
  auto it = local.find(id_);
  if (it != local.end()) {
    return it->second.get();
  }
  auto buffer = std::make_shared<ThreadBuffer>(capacity_);
  buffer->thread_id = LocalThreadId();
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(buffer);
  }
  local.emplace(id_, buffer);
  return buffer.get();
}

uint64_t Tracer::Now() const {
  uint64_t (*clock)() = clock_.load(std::memory_order_relaxed);
  return clock != nullptr ? clock() : MonotonicNowNs();
}

void Tracer::SetClockForTest(uint64_t (*now_ns)()) {
  clock_.store(now_ns, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanRecord> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    size_t start = buffer->size == buffer->ring.size()
                       ? buffer->next  // full ring: oldest is at the cursor
                       : 0;
    for (size_t i = 0; i < buffer->size; ++i) {
      out.push_back(buffer->ring[(start + i) % buffer->ring.size()]);
    }
  }
  return out;
}

uint64_t Tracer::dropped() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  uint64_t n = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    n += buffer->dropped;
  }
  return n;
}

uint64_t Tracer::total_recorded() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  uint64_t n = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    n += buffer->size + buffer->dropped;
  }
  return n;
}

void Tracer::RecordSpan(SpanRecord record) {
  ThreadBuffer* buffer = LocalBuffer();
  if (record.thread_id == 0) {
    record.thread_id = buffer->thread_id;
  }
  buffer->Push(std::move(record));
}

SpanContext Tracer::CaptureContext() {
  ThreadBuffer* buffer = LocalBuffer();
  SpanContext context;
  if (!buffer->stack.empty()) {
    context.correlation_id = buffer->stack.back().correlation_id;
  }
  return context;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->next = 0;
    buffer->size = 0;
    buffer->dropped = 0;
  }
}

Tracer& GlobalTracer() {
  static Tracer tracer(8192);
  return tracer;
}

Span::Span(Tracer* tracer, const char* name, std::string correlation_id)
    : tracer_(tracer), name_(name), correlation_id_(std::move(correlation_id)) {
  if (tracer_ == nullptr) {
    return;
  }
  buffer_ = tracer_->LocalBuffer();
  depth_ = static_cast<uint32_t>(buffer_->stack.size());
  if (correlation_id_.empty() && !buffer_->stack.empty()) {
    correlation_id_ = buffer_->stack.back().correlation_id;
  }
  buffer_->stack.push_back(Tracer::ActiveFrame{correlation_id_});
  start_ns_ = tracer_->Now();
}

Span::~Span() {
  if (tracer_ == nullptr || buffer_ == nullptr) {
    return;
  }
  uint64_t end_ns = tracer_->Now();
  buffer_->stack.pop_back();
  SpanRecord record;
  record.name = name_;
  record.correlation_id = std::move(correlation_id_);
  record.start_ns = start_ns_;
  record.duration_ns = end_ns - start_ns_;
  record.depth = depth_;
  record.thread_id = buffer_->thread_id;
  buffer_->Push(std::move(record));
}

std::string Span::CurrentCorrelationId(Tracer* tracer) {
  if (tracer == nullptr) {
    return "";
  }
  Tracer::ThreadBuffer* buffer = tracer->LocalBuffer();
  return buffer->stack.empty() ? "" : buffer->stack.back().correlation_id;
}

}  // namespace witobs
