// witobs: WatchIT's observability substrate (metrics half).
//
// The paper's premise is accountability — every ITFS access, broker verb and
// perforation must be accounted for (§5.3–§5.4, Table 1) — but accounting at
// production traffic rates cannot mean "append a struct to a vector". This
// registry provides counters, gauges and fixed-bucket latency histograms
// whose *update* path is lock-free (relaxed atomics on pre-resolved
// handles); the registry mutex is taken only when a series is first created
// or when a snapshot is rendered. Instrumented subsystems therefore resolve
// their handles once at wiring time and pay a few atomic adds per operation.
//
// Naming convention: `watchit_<subsystem>_<name>`, with `_total` for
// counters and `_ns` for latency histograms (see DESIGN.md §Observability).

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace witobs {

// A sorted, canonicalized label set ("op" -> "open", ...). Kept small: the
// instrumentation uses at most two labels per series.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count. Updates are relaxed atomics: the
// exporters only need eventual per-series consistency, not a cross-series
// consistent cut.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A value that can go up and down (active sessions, buffer occupancy).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Sub(int64_t delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket latency histogram over nanoseconds. The bounds are a static
// exponential ladder (factor 2 from 256 ns to ~8.6 s) shared by every
// instance, so Observe() is two relaxed atomic adds and the Prometheus
// rendering is deterministic. Percentiles are answered by rank-walking the
// buckets with linear interpolation inside the winning bucket — the same
// estimate `histogram_quantile()` would compute server-side.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 26;  // +1 implicit overflow bucket

  // Upper bound (inclusive, "le") of bucket `i`: 256ns << i.
  static uint64_t BucketBound(size_t i) { return 256ull << i; }

  void Observe(uint64_t value_ns) {
    buckets_[BucketIndex(value_ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(value_ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t SumNs() const { return sum_ns_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }

  // Estimated value at percentile `p` in [0, 100]. Returns 0 on an empty
  // histogram. p50/p95/p99 are the intended queries.
  uint64_t Percentile(double p) const;

 private:
  static size_t BucketIndex(uint64_t value_ns) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (value_ns <= BucketBound(i)) {
        return i;
      }
    }
    return kNumBuckets;  // overflow bucket (+Inf)
  }

  std::array<std::atomic<uint64_t>, kNumBuckets + 1> buckets_{};
  std::atomic<uint64_t> sum_ns_{0};
  std::atomic<uint64_t> count_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

// The registry: name+labels -> metric instance. Creation and snapshotting
// take the mutex; the returned handles are stable for the registry's
// lifetime and may be updated without any lock.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create. The same (name, labels) pair always returns the same
  // handle; a name reused with a different metric type returns nullptr
  // (type confusion is a wiring bug, surfaced loudly in tests).
  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  Histogram* GetHistogram(const std::string& name, Labels labels = {});

  // Optional HELP text attached to the family, rendered by the exporter.
  void SetHelp(const std::string& name, const std::string& help);

  // Read-side queries (0 / nullptr when the series does not exist).
  uint64_t CounterValue(const std::string& name, const Labels& labels = {}) const;
  int64_t GaugeValue(const std::string& name, const Labels& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name, const Labels& labels = {}) const;

  // Number of distinct (name, labels) series across all families.
  size_t SeriesCount() const;

  struct Series {
    Labels labels;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<Series> series;  // sorted by canonical label string
  };

  // A consistent-enough view for the exporters: families sorted by name,
  // series sorted by labels. Pointers remain valid for the registry's life.
  std::vector<Family> Snapshot() const;

 private:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct FamilyEntry {
    MetricType type = MetricType::kCounter;
    bool typed = false;  // false until the first Get*: SetHelp alone must not fix the type
    std::string help;
    std::map<std::string, Instrument> series;  // canonical label string -> metric
    std::map<std::string, Labels> series_labels;
  };

  FamilyEntry* Family_(const std::string& name, MetricType type);
  const Instrument* Find(const std::string& name, MetricType type, const Labels& labels) const;

  mutable std::mutex mu_;
  std::map<std::string, FamilyEntry> families_;
};

// Canonical `key="value",...` form used both as the map key and by the
// Prometheus exporter. Labels are sorted by key; values are escaped.
std::string CanonicalLabels(const Labels& labels);

// Wall-clock nanoseconds from a monotonic clock — the timebase for every
// real-time (non-simulated) latency measurement in the instrumentation.
uint64_t MonotonicNowNs();

// RAII wall-clock stopwatch: observes the elapsed time into `hist` on scope
// exit. A null histogram makes it a no-op so call sites stay branch-free.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), start_ns_(hist != nullptr ? MonotonicNowNs() : 0) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(MonotonicNowNs() - start_ns_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_ns_;
};

}  // namespace witobs

#endif  // SRC_OBS_METRICS_H_
