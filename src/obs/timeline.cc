#include "src/obs/timeline.h"

#include <algorithm>
#include <map>

namespace witobs {

namespace {

bool CausalBefore(const SpanRecord& a, const SpanRecord& b) {
  if (a.start_ns != b.start_ns) {
    return a.start_ns < b.start_ns;
  }
  if (a.depth != b.depth) {
    return a.depth < b.depth;  // enclosing scope before its children
  }
  return a.name < b.name;
}

}  // namespace

std::vector<TicketTimeline> TicketTimeline::AssembleAll(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, TicketTimeline> by_ticket;
  for (const SpanRecord& span : spans) {
    if (span.correlation_id.empty()) {
      continue;
    }
    TicketTimeline& timeline = by_ticket[span.correlation_id];
    timeline.ticket_id_ = span.correlation_id;
    timeline.stages_.push_back(span);
  }
  std::vector<TicketTimeline> out;
  out.reserve(by_ticket.size());
  for (auto& [id, timeline] : by_ticket) {
    std::sort(timeline.stages_.begin(), timeline.stages_.end(), CausalBefore);
    timeline.start_ns_ = timeline.stages_.front().start_ns;
    timeline.end_ns_ = 0;
    for (const SpanRecord& span : timeline.stages_) {
      timeline.end_ns_ = std::max(timeline.end_ns_, span.start_ns + span.duration_ns);
    }
    out.push_back(std::move(timeline));
  }
  std::sort(out.begin(), out.end(), [](const TicketTimeline& a, const TicketTimeline& b) {
    if (a.start_ns_ != b.start_ns_) {
      return a.start_ns_ < b.start_ns_;
    }
    return a.ticket_id_ < b.ticket_id_;
  });
  return out;
}

TicketTimeline TicketTimeline::ForTicket(const Tracer& tracer,
                                         const std::string& ticket_id) {
  std::vector<SpanRecord> matching;
  for (SpanRecord& span : tracer.Snapshot()) {
    if (span.correlation_id == ticket_id) {
      matching.push_back(std::move(span));
    }
  }
  std::vector<TicketTimeline> assembled = AssembleAll(matching);
  if (assembled.empty()) {
    TicketTimeline empty;
    empty.ticket_id_ = ticket_id;
    return empty;
  }
  return std::move(assembled.front());
}

size_t TicketTimeline::ThreadCount() const {
  std::set<uint64_t> threads;
  for (const SpanRecord& span : stages_) {
    threads.insert(span.thread_id);
  }
  return threads.size();
}

uint64_t TicketTimeline::StageDurationNs(const std::string& name) const {
  uint64_t total = 0;
  for (const SpanRecord& span : stages_) {
    if (span.name == name) {
      total += span.duration_ns;
    }
  }
  return total;
}

std::string TicketTimeline::Render() const {
  std::string out = "[" + ticket_id_ + "] " + std::to_string(SpanNs()) + "ns across " +
                    std::to_string(ThreadCount()) + " thread(s)\n";
  for (const SpanRecord& span : stages_) {
    out += "  +" + std::to_string(span.start_ns - start_ns_) + "ns ";
    for (uint32_t i = 0; i < span.depth; ++i) {
      out += "  ";
    }
    out += span.name + " " + std::to_string(span.duration_ns) + "ns (thread " +
           std::to_string(span.thread_id) + ")\n";
  }
  return out;
}

}  // namespace witobs
