// witprof: lock-contention profiling (DESIGN.md §13).
//
// The ROADMAP's sharding item claims "everything funnels through one
// mutex"; ProfiledMutex turns that from a hypothesis into a ranked table.
// It is a drop-in named wrapper over std::mutex satisfying Lockable, so
// std::lock_guard, std::unique_lock and std::condition_variable_any all
// work unchanged. Until EnableMetrics() attaches a registry the wrapper
// costs one relaxed atomic load per lock/unlock — no clock reads — so
// production code paths can keep it compiled in. With metrics attached,
// every acquisition records its wait time and every release records the
// hold time into
//
//   watchit_lock_wait_ns{lock=<name>}   (ns blocked acquiring)
//   watchit_lock_hold_ns{lock=<name>}   (ns held)
//
// and TopContendedLocks() ranks all profiled locks by total wait — the
// per-lock attribution the flight recorder embeds in every dump. Multiple
// instances may share one logical name (per-machine SecureLogs, per-shard
// queues with a shared prefix): the histograms aggregate, which is exactly
// what a contention ranking wants.

#ifndef SRC_OBS_PROFILE_H_
#define SRC_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace witobs {

class ProfiledMutex {
 public:
  explicit ProfiledMutex(std::string name) : name_(std::move(name)) {}
  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

  // Attaches the wait/hold histograms. Idempotent per registry; safe to
  // call while other threads are locking (they pick the histograms up on
  // their next acquisition).
  void EnableMetrics(MetricsRegistry* registry);

  // Detaches the histograms — the owner's teardown path. Destructors that
  // take the lock (queue drains, worker joins) call this first so a
  // registry destroyed before its instrumented structure (common in tests,
  // where stack order decides) is never dereferenced. Requires that no
  // other thread is inside lock()/unlock() — true once workers are joined.
  void DisableMetrics();

  // Lockable. lock() with metrics enabled takes the uncontended path
  // through try_lock first, so an uncontended acquisition pays one clock
  // read (for the hold timer), not three.
  void lock();
  bool try_lock();
  void unlock();

  const std::string& name() const { return name_; }

  // Raw totals for tests and benches (valid with or without a registry).
  struct Stats {
    uint64_t acquisitions = 0;
    uint64_t contended = 0;  // acquisitions that blocked in lock()
    uint64_t total_wait_ns = 0;
    uint64_t total_hold_ns = 0;
  };
  Stats stats() const;

 private:
  const std::string name_;
  std::mutex mu_;
  std::atomic<bool> profiling_{false};
  std::atomic<Histogram*> wait_hist_{nullptr};
  std::atomic<Histogram*> hold_hist_{nullptr};
  // Touched only between a successful acquisition and the matching
  // unlock, i.e. only by the holder; 0 means "acquired unprofiled".
  uint64_t hold_start_ns_ = 0;
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> contended_{0};
  std::atomic<uint64_t> total_wait_ns_{0};
  std::atomic<uint64_t> total_hold_ns_{0};
};

// One row of the contention ranking, read back from the registry's
// watchit_lock_* families (so it works on any registry snapshot, not just
// live ProfiledMutex instances).
struct LockContention {
  std::string lock;
  uint64_t wait_count = 0;
  uint64_t wait_sum_ns = 0;
  uint64_t wait_p99_ns = 0;
  uint64_t hold_sum_ns = 0;
  uint64_t hold_p99_ns = 0;
};

// All profiled locks in `registry`, ranked by total wait time (descending);
// ties break by hold time. `max_locks` = 0 means no limit.
std::vector<LockContention> TopContendedLocks(const MetricsRegistry& registry,
                                              size_t max_locks = 0);

// Same ranking merged across several registries (the pool registry plus
// each machine's own): rows sharing a lock name sum their counts and
// totals and keep the worst p99, the cross-registry form of "multiple
// instances may share one logical name".
std::vector<LockContention> TopContendedLocks(
    const std::vector<const MetricsRegistry*>& registries, size_t max_locks = 0);

}  // namespace witobs

#endif  // SRC_OBS_PROFILE_H_
