// witobs exporters: render a MetricsRegistry as Prometheus text format or a
// JSON snapshot, and a Tracer as a human-readable trace dump. Output is
// deterministic (families sorted by name, series by canonical labels) so
// tests can golden-match it and diffs between two snapshots are meaningful.

#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace witobs {

// Prometheus exposition text format (version 0.0.4): `# HELP` / `# TYPE`
// headers per family, histograms expanded into cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`.
std::string RenderPrometheus(const MetricsRegistry& registry);

// The same snapshot as a JSON object keyed by family name. Histograms carry
// count/sum plus the p50/p95/p99 estimates so a dashboard does not need to
// re-derive them from buckets.
std::string RenderJson(const MetricsRegistry& registry);

// One line per buffered span:
//   [corr] depth*"  " name start_ns +duration_ns (thread N)
// Spans are listed per thread in recording order — the causal story of a
// ticket as it crossed framework, workflow, broker and ITFS.
std::string RenderTraceDump(const Tracer& tracer);

// JSON string-content escaping (RFC 8259): backslash, quote, and every
// control character below 0x20 (\n, \t, \r named; the rest as \u00XX).
// Shared by RenderJson and the flight recorder so a lock or stage name
// containing "\n or a tab can never corrupt an artifact.
std::string JsonEscape(const std::string& in);

}  // namespace witobs

#endif  // SRC_OBS_EXPORT_H_
