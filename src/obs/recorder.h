// witprof: the triggered flight recorder (DESIGN.md §13).
//
// A latency regression diagnosed after the fact is a latency regression
// diagnosed from averages. The flight recorder keeps capture always-on and
// bounded — the Tracer's rings and the registry already hold the recent
// past — and on a trigger (SLO burn, admission-reject burst, anomaly flag,
// deploy rollback) freezes that past into a single JSON artifact:
//
//   { reason, detail, spans: [recent span window],
//     top_locks: [ranked by total wait], metrics: <full RenderJson>,
//     spans_dropped, dumps_dropped }
//
// Dumps are themselves bounded (max_dumps) and rate-limited
// (min_interval_ns); triggers suppressed by either bound are *counted*,
// never silently swallowed — dumps_dropped is reported inside every
// artifact, same contract as the tracer's and OpLog's drop counters.

#ifndef SRC_OBS_RECORDER_H_
#define SRC_OBS_RECORDER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace witobs {

class FlightRecorder {
 public:
  struct Options {
    // Newest spans included per dump (0 = everything still buffered).
    size_t max_spans = 512;
    // Artifacts retained; further triggers are counted as dropped.
    size_t max_dumps = 8;
    // Minimum spacing between dumps; triggers inside the blackout are
    // counted as dropped. 0 disables rate limiting.
    uint64_t min_interval_ns = 0;
    // Rows in the top-contended-locks table.
    size_t top_locks = 10;
  };

  struct Dump {
    uint64_t trigger_ns = 0;
    std::string reason;
    std::string detail;
    std::string json;  // the full artifact
  };

  // Both may be null (a null registry skips metrics + lock table, a null
  // tracer skips spans) — the recorder still produces artifacts.
  FlightRecorder(MetricsRegistry* registry, Tracer* tracer);
  FlightRecorder(MetricsRegistry* registry, Tracer* tracer, Options options);

  // Captures an artifact; false when suppressed by max_dumps or the rate
  // limit (the suppression is counted in dumps_dropped). Thread-safe —
  // triggers arrive from SLO evaluation, pipeline rollback callbacks and
  // bench threads concurrently.
  bool Trigger(const std::string& reason, const std::string& detail = "");

  std::vector<Dump> dumps() const;
  uint64_t dumps_captured() const;
  // Triggers suppressed by the dump bound or rate limit.
  uint64_t dumps_dropped() const;
  // The newest artifact's JSON ("" when nothing captured yet).
  std::string last_json() const;

 private:
  std::string BuildArtifact(const std::string& reason, const std::string& detail,
                            uint64_t now_ns, uint64_t dropped_so_far) const;

  MetricsRegistry* registry_;
  Tracer* tracer_;
  Options options_;

  mutable std::mutex mu_;
  std::vector<Dump> dumps_;
  uint64_t captured_ = 0;
  uint64_t dropped_ = 0;
  uint64_t last_dump_ns_ = 0;
};

}  // namespace witobs

#endif  // SRC_OBS_RECORDER_H_
