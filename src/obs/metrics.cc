#include "src/obs/metrics.h"

#include <algorithm>
#include <chrono>

namespace witobs {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

std::string CanonicalLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [key, value] : sorted) {
    if (!out.empty()) {
      out += ",";
    }
    out += key;
    out += "=\"";
    for (char c : value) {
      // Prometheus text-format escaping for label values.
      if (c == '\\' || c == '"') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += "\"";
  }
  return out;
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t total = Count();
  if (total == 0) {
    return 0;
  }
  p = std::min(std::max(p, 0.0), 100.0);
  // Rank of the target observation, 1-based: ceil(p/100 * N), at least 1.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (static_cast<double>(rank) < p / 100.0 * static_cast<double>(total)) {
    ++rank;
  }
  rank = std::max<uint64_t>(rank, 1);
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= kNumBuckets; ++i) {
    uint64_t in_bucket = BucketCount(i);
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // The rank falls in bucket i: interpolate linearly between its bounds.
    uint64_t lower = i == 0 ? 0 : BucketBound(i - 1);
    // The overflow bucket has no finite upper bound; report its lower edge.
    uint64_t upper = i == kNumBuckets ? lower : BucketBound(i);
    if (in_bucket == 0 || upper <= lower) {
      return upper;
    }
    double frac = static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
    return lower + static_cast<uint64_t>(frac * static_cast<double>(upper - lower));
  }
  return BucketBound(kNumBuckets - 1);
}

MetricsRegistry::FamilyEntry* MetricsRegistry::Family_(const std::string& name,
                                                       MetricType type) {
  auto [it, inserted] = families_.try_emplace(name);
  if (!it->second.typed) {
    it->second.type = type;
    it->second.typed = true;
  } else if (it->second.type != type) {
    return nullptr;
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  FamilyEntry* family = Family_(name, MetricType::kCounter);
  if (family == nullptr) {
    return nullptr;
  }
  std::string key = CanonicalLabels(labels);
  Instrument& inst = family->series[key];
  if (inst.counter == nullptr) {
    inst.counter = std::make_unique<Counter>();
    family->series_labels[key] = std::move(labels);
  }
  return inst.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  FamilyEntry* family = Family_(name, MetricType::kGauge);
  if (family == nullptr) {
    return nullptr;
  }
  std::string key = CanonicalLabels(labels);
  Instrument& inst = family->series[key];
  if (inst.gauge == nullptr) {
    inst.gauge = std::make_unique<Gauge>();
    family->series_labels[key] = std::move(labels);
  }
  return inst.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  FamilyEntry* family = Family_(name, MetricType::kHistogram);
  if (family == nullptr) {
    return nullptr;
  }
  std::string key = CanonicalLabels(labels);
  Instrument& inst = family->series[key];
  if (inst.histogram == nullptr) {
    inst.histogram = std::make_unique<Histogram>();
    family->series_labels[key] = std::move(labels);
  }
  return inst.histogram.get();
}

void MetricsRegistry::SetHelp(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  families_[name].help = help;
}

const MetricsRegistry::Instrument* MetricsRegistry::Find(const std::string& name,
                                                         MetricType type,
                                                         const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto family = families_.find(name);
  if (family == families_.end() || family->second.type != type) {
    return nullptr;
  }
  auto series = family->second.series.find(CanonicalLabels(labels));
  if (series == family->second.series.end()) {
    return nullptr;
  }
  return &series->second;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name, const Labels& labels) const {
  const Instrument* inst = Find(name, MetricType::kCounter, labels);
  return inst != nullptr && inst->counter != nullptr ? inst->counter->Value() : 0;
}

int64_t MetricsRegistry::GaugeValue(const std::string& name, const Labels& labels) const {
  const Instrument* inst = Find(name, MetricType::kGauge, labels);
  return inst != nullptr && inst->gauge != nullptr ? inst->gauge->Value() : 0;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                const Labels& labels) const {
  const Instrument* inst = Find(name, MetricType::kHistogram, labels);
  return inst != nullptr ? inst->histogram.get() : nullptr;
}

size_t MetricsRegistry::SeriesCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, family] : families_) {
    n += family.series.size();
  }
  return n;
}

std::vector<MetricsRegistry::Family> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Family> out;
  out.reserve(families_.size());
  for (const auto& [name, entry] : families_) {
    Family family;
    family.name = name;
    family.help = entry.help;
    family.type = entry.type;
    for (const auto& [key, inst] : entry.series) {
      Series series;
      auto labels = entry.series_labels.find(key);
      if (labels != entry.series_labels.end()) {
        series.labels = labels->second;
      }
      series.counter = inst.counter.get();
      series.gauge = inst.gauge.get();
      series.histogram = inst.histogram.get();
      family.series.push_back(std::move(series));
    }
    out.push_back(std::move(family));
  }
  return out;
}

}  // namespace witobs
