#include "src/obs/slo.h"

#include <algorithm>

namespace witobs {

namespace {

bool LabelsContain(const Labels& labels, const Labels& subset) {
  for (const auto& want : subset) {
    bool found = false;
    for (const auto& have : labels) {
      if (have == want) {
        found = true;
        break;
      }
    }
    if (!found) {
      return false;
    }
  }
  return true;
}

// Same rank-walk + linear interpolation as Histogram::Percentile, over a
// window's bucket deltas instead of lifetime counts.
uint64_t PercentileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets + 1>& buckets, uint64_t total,
    double p) {
  if (total == 0) {
    return 0;
  }
  p = std::min(std::max(p, 0.0), 100.0);
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (static_cast<double>(rank) < p / 100.0 * static_cast<double>(total)) {
    ++rank;
  }
  rank = std::max<uint64_t>(rank, 1);
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
    uint64_t in_bucket = buckets[i];
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    uint64_t lower = i == 0 ? 0 : Histogram::BucketBound(i - 1);
    uint64_t upper = i == Histogram::kNumBuckets ? lower : Histogram::BucketBound(i);
    if (in_bucket == 0 || upper <= lower) {
      return upper;
    }
    double frac = static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
    return lower + static_cast<uint64_t>(frac * static_cast<double>(upper - lower));
  }
  return Histogram::BucketBound(Histogram::kNumBuckets - 1);
}

}  // namespace

uint64_t SumCounters(const MetricsRegistry& registry, const std::string& family,
                     const Labels& subset) {
  uint64_t total = 0;
  for (const auto& fam : registry.Snapshot()) {
    if (fam.name != family || fam.type != MetricType::kCounter) {
      continue;
    }
    for (const auto& series : fam.series) {
      if (series.counter != nullptr && LabelsContain(series.labels, subset)) {
        total += series.counter->Value();
      }
    }
  }
  return total;
}

SloEngine::SloEngine(MetricsRegistry* registry) : SloEngine(registry, Options()) {}

SloEngine::SloEngine(MetricsRegistry* registry, Options options)
    : registry_(registry), options_(options) {
  options_.window_samples = std::max<size_t>(options_.window_samples, 2);
}

void SloEngine::AddLatencySlo(LatencySlo slo) {
  std::lock_guard<std::mutex> lock(mu_);
  order_.push_back(latency_.size() * 2);
  latency_.push_back(LatencyState{std::move(slo), {}});
}

void SloEngine::AddRatioSlo(RatioSlo slo) {
  std::lock_guard<std::mutex> lock(mu_);
  order_.push_back(ratio_.size() * 2 + 1);
  ratio_.push_back(RatioState{std::move(slo), {}});
}

void SloEngine::set_breach_callback(BreachCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  breach_callback_ = std::move(callback);
}

std::vector<SloEngine::Status> SloEngine::Evaluate() {
  std::vector<Status> statuses;
  BreachCallback callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    callback = breach_callback_;

    std::vector<Status> latency_status;
    for (LatencyState& state : latency_) {
      HistogramSample sample;
      if (const Histogram* hist =
              registry_->FindHistogram(state.slo.histogram, state.slo.labels)) {
        for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
          sample.buckets[i] = hist->BucketCount(i);
        }
        sample.count = hist->Count();
      }
      state.window.push_back(sample);
      if (state.window.size() > options_.window_samples) {
        state.window.pop_front();
      }
      const HistogramSample& oldest = state.window.front();
      std::array<uint64_t, Histogram::kNumBuckets + 1> delta{};
      for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
        delta[i] = sample.buckets[i] - oldest.buckets[i];
      }
      uint64_t events = sample.count - oldest.count;

      Status status;
      status.name = state.slo.name;
      status.window_events = events;
      status.threshold = static_cast<double>(state.slo.threshold_ns);
      status.value =
          static_cast<double>(PercentileFromBuckets(delta, events, state.slo.percentile));
      status.breached = events > 0 && status.value > status.threshold;
      status.detail = "windowed p" + std::to_string(state.slo.percentile).substr(0, 4) +
                      "(" + state.slo.histogram + ") = " +
                      std::to_string(static_cast<uint64_t>(status.value)) + "ns vs " +
                      std::to_string(state.slo.threshold_ns) + "ns over " +
                      std::to_string(events) + " events";
      latency_status.push_back(std::move(status));
    }

    std::vector<Status> ratio_status;
    for (RatioState& state : ratio_) {
      RatioSample sample;
      sample.bad = SumCounters(*registry_, state.slo.bad.family, state.slo.bad.subset);
      sample.total =
          SumCounters(*registry_, state.slo.total.family, state.slo.total.subset);
      state.window.push_back(sample);
      if (state.window.size() > options_.window_samples) {
        state.window.pop_front();
      }
      const RatioSample& oldest = state.window.front();
      uint64_t bad = sample.bad - oldest.bad;
      uint64_t total = sample.total - oldest.total;

      Status status;
      status.name = state.slo.name;
      status.window_events = total;
      status.threshold = state.slo.max_burn_rate;
      double budget = 1.0 - state.slo.objective;
      double bad_fraction =
          total == 0 ? 0.0 : static_cast<double>(bad) / static_cast<double>(total);
      status.value = budget <= 0.0 ? (bad > 0 ? 1e9 : 0.0) : bad_fraction / budget;
      status.breached = total > 0 && status.value >= status.threshold && bad > 0;
      status.detail = std::to_string(bad) + "/" + std::to_string(total) +
                      " bad in window; burn rate " + std::to_string(status.value) +
                      " vs max " + std::to_string(state.slo.max_burn_rate);
      ratio_status.push_back(std::move(status));
    }

    for (size_t code : order_) {
      statuses.push_back(code % 2 == 0 ? std::move(latency_status[code / 2])
                                       : std::move(ratio_status[code / 2]));
    }
    for (const Status& status : statuses) {
      if (status.breached) {
        ++breaches_;
      }
    }
  }
  if (callback) {
    for (const Status& status : statuses) {
      if (status.breached) {
        callback(status);
      }
    }
  }
  return statuses;
}

uint64_t SloEngine::breaches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaches_;
}

size_t SloEngine::slo_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_.size();
}

void InstallWatchItSlos(SloEngine* engine, uint64_t max_e2e_p99_ns,
                        double reject_objective, double rollback_objective) {
  SloEngine::LatencySlo latency;
  latency.name = "ticket-e2e-latency";
  latency.histogram = "watchit_serve_e2e_latency_ns";
  latency.percentile = 99.0;
  latency.threshold_ns = max_e2e_p99_ns;
  engine->AddLatencySlo(std::move(latency));

  SloEngine::RatioSlo rejects;
  rejects.name = "admission-rejects";
  rejects.bad = {"watchit_serve_tickets_total", {{"outcome", "rejected"}}};
  rejects.total = {"watchit_serve_tickets_total", {}};
  rejects.objective = reject_objective;
  engine->AddRatioSlo(std::move(rejects));

  SloEngine::RatioSlo rollbacks;
  rollbacks.name = "deploy-rollbacks";
  rollbacks.bad = {"watchit_deploy_rollbacks_total", {}};
  rollbacks.total = {"watchit_deploy_total", {}};
  rollbacks.objective = rollback_objective;
  engine->AddRatioSlo(std::move(rollbacks));
}

}  // namespace witobs
