#include "src/obs/export.h"

namespace witobs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string SeriesLine(const std::string& name, const Labels& labels,
                       const std::string& extra_label, const std::string& value) {
  std::string labels_str = CanonicalLabels(labels);
  if (!extra_label.empty()) {
    labels_str += labels_str.empty() ? extra_label : "," + extra_label;
  }
  std::string line = name;
  if (!labels_str.empty()) {
    line += "{" + labels_str + "}";
  }
  line += " " + value + "\n";
  return line;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  out += "}";
  return out;
}

// Prometheus HELP text escaping: only backslash and newline (label-value
// escaping, which also covers quotes, lives in CanonicalLabels).
std::string EscapeHelp(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& in) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (char c : in) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\r') {
      out += "\\r";
    } else if (uc < 0x20) {
      out += "\\u00";
      out += kHex[(uc >> 4) & 0xf];
      out += kHex[uc & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderPrometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& family : registry.Snapshot()) {
    if (!family.help.empty()) {
      out += "# HELP " + family.name + " " + EscapeHelp(family.help) + "\n";
    }
    out += "# TYPE " + family.name + " " + std::string(TypeName(family.type)) + "\n";
    for (const auto& series : family.series) {
      switch (family.type) {
        case MetricType::kCounter:
          out += SeriesLine(family.name, series.labels, "",
                            std::to_string(series.counter->Value()));
          break;
        case MetricType::kGauge:
          out += SeriesLine(family.name, series.labels, "",
                            std::to_string(series.gauge->Value()));
          break;
        case MetricType::kHistogram: {
          const Histogram& hist = *series.histogram;
          uint64_t cumulative = 0;
          for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            cumulative += hist.BucketCount(i);
            out += SeriesLine(family.name + "_bucket", series.labels,
                              "le=\"" + std::to_string(Histogram::BucketBound(i)) + "\"",
                              std::to_string(cumulative));
          }
          cumulative += hist.BucketCount(Histogram::kNumBuckets);
          out += SeriesLine(family.name + "_bucket", series.labels, "le=\"+Inf\"",
                            std::to_string(cumulative));
          out += SeriesLine(family.name + "_sum", series.labels, "",
                            std::to_string(hist.SumNs()));
          out += SeriesLine(family.name + "_count", series.labels, "",
                            std::to_string(hist.Count()));
          break;
        }
      }
    }
  }
  return out;
}

std::string RenderJson(const MetricsRegistry& registry) {
  std::string out = "{";
  bool first_family = true;
  for (const auto& family : registry.Snapshot()) {
    if (!first_family) {
      out += ",";
    }
    first_family = false;
    out += "\"" + JsonEscape(family.name) + "\":{\"type\":\"" + TypeName(family.type) +
           "\",\"series\":[";
    bool first_series = true;
    for (const auto& series : family.series) {
      if (!first_series) {
        out += ",";
      }
      first_series = false;
      out += "{\"labels\":" + JsonLabels(series.labels);
      switch (family.type) {
        case MetricType::kCounter:
          out += ",\"value\":" + std::to_string(series.counter->Value());
          break;
        case MetricType::kGauge:
          out += ",\"value\":" + std::to_string(series.gauge->Value());
          break;
        case MetricType::kHistogram: {
          const Histogram& hist = *series.histogram;
          out += ",\"count\":" + std::to_string(hist.Count()) +
                 ",\"sum_ns\":" + std::to_string(hist.SumNs()) +
                 ",\"p50_ns\":" + std::to_string(hist.Percentile(50)) +
                 ",\"p95_ns\":" + std::to_string(hist.Percentile(95)) +
                 ",\"p99_ns\":" + std::to_string(hist.Percentile(99));
          break;
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "}";
  return out;
}

std::string RenderTraceDump(const Tracer& tracer) {
  std::string out;
  for (const auto& span : tracer.Snapshot()) {
    out += "[" + (span.correlation_id.empty() ? std::string("-") : span.correlation_id) + "] ";
    for (uint32_t i = 0; i < span.depth; ++i) {
      out += "  ";
    }
    out += span.name + " @" + std::to_string(span.start_ns) + "ns +" +
           std::to_string(span.duration_ns) + "ns (thread " +
           std::to_string(span.thread_id) + ")\n";
  }
  uint64_t dropped = tracer.dropped();
  if (dropped > 0) {
    out += "... " + std::to_string(dropped) + " spans dropped (ring full)\n";
  }
  return out;
}

}  // namespace witobs
