#include "src/broker/anomaly.h"

#include <cmath>

namespace witbroker {

void AnomalyDetector::Fit(const std::vector<BrokerEvent>& history) {
  admin_key_counts_.clear();
  admin_totals_.clear();
  known_keys_.clear();
  baseline_rate_.clear();
  std::map<std::string, std::map<uint64_t, uint64_t>> windows;
  for (const auto& event : history) {
    ++admin_key_counts_[event.admin][Key(event)];
    ++admin_totals_[event.admin];
    known_keys_.insert(Key(event));
    ++windows[event.admin][event.time_ns / options_.window_ns];
  }
  double global_sum = 0.0;
  double global_windows = 0.0;
  std::vector<double> all_counts;
  for (const auto& [admin, counts] : windows) {
    double sum = 0.0;
    for (const auto& [w, n] : counts) {
      sum += static_cast<double>(n);
      all_counts.push_back(static_cast<double>(n));
    }
    double mean = sum / static_cast<double>(counts.size());
    double var = 0.0;
    for (const auto& [w, n] : counts) {
      double d = static_cast<double>(n) - mean;
      var += d * d;
    }
    var /= static_cast<double>(counts.size());
    baseline_rate_[admin] = {mean, std::sqrt(var)};
    global_sum += sum;
    global_windows += static_cast<double>(counts.size());
  }
  if (global_windows > 0.0) {
    double mean = global_sum / global_windows;
    double var = 0.0;
    for (double n : all_counts) {
      var += (n - mean) * (n - mean);
    }
    var /= global_windows;
    global_rate_ = {mean, std::sqrt(var)};
    has_global_rate_ = true;
  }
}

double AnomalyDetector::Surprise(const BrokerEvent& event) const {
  double vocab = static_cast<double>(known_keys_.size()) + 1.0;
  double smoothing = options_.smoothing;
  auto admin_it = admin_key_counts_.find(event.admin);
  double count = 0.0;
  double total = 0.0;
  if (admin_it != admin_key_counts_.end()) {
    auto key_it = admin_it->second.find(Key(event));
    if (key_it != admin_it->second.end()) {
      count = static_cast<double>(key_it->second);
    }
    total = static_cast<double>(admin_totals_.at(event.admin));
  }
  double p = (count + smoothing) / (total + smoothing * vocab);
  return -std::log2(p);
}

std::vector<AnomalyScore> AnomalyDetector::Analyze(
    const std::vector<BrokerEvent>& events) const {
  std::vector<AnomalyScore> scores;
  scores.reserve(events.size());

  // Pass 1: categorical surprise.
  for (size_t i = 0; i < events.size(); ++i) {
    AnomalyScore score;
    score.event_index = i;
    score.surprise = Surprise(events[i]);
    if (score.surprise > options_.surprise_threshold) {
      score.flagged = true;
      score.reason = "unusual (class,verb) for admin";
    }
    scores.push_back(score);
  }

  // Pass 2: per-admin request-rate check over fixed windows, against the
  // *baseline* statistics recorded at Fit() time. Admins absent from the
  // baseline are judged by the pooled cross-admin rate; with no pooled
  // yardstick either (unfitted or empty history) they are judged against a
  // zero habitual rate. The stream under analysis is never its own
  // yardstick: it used to be — fallback statistics were computed from the
  // analyzed stream itself, so a steady campaign from an unknown admin
  // defined its own "normal" and was never rate-flagged.
  std::map<std::string, std::map<uint64_t, uint64_t>> admin_window_counts;
  for (const auto& event : events) {
    ++admin_window_counts[event.admin][event.time_ns / options_.window_ns];
  }
  for (size_t i = 0; i < events.size(); ++i) {
    const auto& event = events[i];
    auto baseline = baseline_rate_.find(event.admin);
    const bool known = baseline != baseline_rate_.end();
    auto [mean, stddev] = known ? baseline->second
                                : (has_global_rate_ ? global_rate_
                                                    : std::pair<double, double>(0.0, 0.0));
    uint64_t window = event.time_ns / options_.window_ns;
    double n = static_cast<double>(admin_window_counts[event.admin][window]);
    bool burst;
    if (stddev > 0.0) {
      burst = (n - mean) / stddev > options_.rate_zscore_threshold;
    } else {
      // A perfectly steady baseline: any window several times the habitual
      // rate is a burst. The +2 grace keeps a one-off pair of extra
      // requests quiet; at mean 0 — an admin with no usable history —
      // anything past the grace flags. The old `mean > 0.0` guard turned a
      // zero-mean baseline into a free pass instead of the tightest one.
      burst = n > 4.0 * mean + 2.0;
    }
    if (burst && !scores[i].flagged) {
      scores[i].flagged = true;
      scores[i].reason =
          known ? "request-rate burst" : "request-rate burst (no baseline for admin)";
    }
  }
  return scores;
}

}  // namespace witbroker
