// The client-server RPC channel between a perforated container and the
// permission broker (paper §5.4). Requests cross a real serialization
// boundary (TLV wire format) even though transport is in-process, so that
// malformed or truncated frames are exercised like they would be over
// TCP/IP + gRPC.

#ifndef SRC_BROKER_RPC_H_
#define SRC_BROKER_RPC_H_

#include <functional>
#include <string>
#include <vector>

#include "src/broker/wire.h"
#include "src/os/result.h"
#include "src/os/types.h"

namespace witbroker {

struct RpcRequest {
  std::string method;
  std::vector<std::string> args;
  witos::Uid uid = 0;       // requesting user inside the container
  witos::Pid caller_pid = witos::kNoPid;
  std::string ticket_id;    // ticket the session is bound to
  std::string admin;        // administrator identity from the certificate

  std::string Serialize() const;
  static witos::Result<RpcRequest> Deserialize(std::string_view data);
};

struct RpcResponse {
  bool ok = false;
  std::string error;    // errno-style name when !ok
  std::string payload;  // method-specific result

  std::string Serialize() const;
  static witos::Result<RpcResponse> Deserialize(std::string_view data);
};

// One endpoint (the broker server) bound to a transport. Calls serialize
// the request, traverse the "wire", and deserialize the response.
//
// Transport encryption (paper §5.4: "If one wishes to further secure the
// communication between the perforated container and the permission broker,
// one can employ SSL"): with EnableEncryption, every frame is sealed with a
// keystream derived from the shared secret plus a MAC over the plaintext;
// tampered or replayed ciphertext fails authentication and the call errors.
class RpcChannel {
 public:
  using Handler = std::function<RpcResponse(const RpcRequest&)>;

  void Bind(Handler handler) { handler_ = std::move(handler); }
  bool bound() const { return handler_ != nullptr; }
  void Unbind() { handler_ = nullptr; }

  witos::Result<RpcResponse> Call(const RpcRequest& request);

  void EnableEncryption(uint64_t shared_secret);
  bool encrypted() const { return encrypted_; }

  // Test hook: flip a byte of the next frame in transit (a meddling
  // man-in-the-middle).
  void CorruptNextFrameForTest() { corrupt_next_ = true; }

  uint64_t bytes_on_wire() const { return bytes_on_wire_; }
  uint64_t calls() const { return calls_; }

 private:
  // Seal/Open: keystream XOR + appended 8-byte MAC over the plaintext.
  // The nonce makes every frame's keystream distinct (no keystream reuse).
  std::string Seal(const std::string& plaintext);
  witos::Result<std::string> Open(const std::string& frame) const;

  Handler handler_;
  bool encrypted_ = false;
  uint64_t key_ = 0;
  uint64_t nonce_ = 0;
  bool corrupt_next_ = false;
  uint64_t bytes_on_wire_ = 0;
  uint64_t calls_ = 0;
};

}  // namespace witbroker

#endif  // SRC_BROKER_RPC_H_
