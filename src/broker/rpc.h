// The client-server RPC channel between a perforated container and the
// permission broker (paper §5.4). Requests cross a real serialization
// boundary (TLV wire format) even though transport is in-process, so that
// malformed or truncated frames are exercised like they would be over
// TCP/IP + gRPC.
//
// Wire protocol v2: every frame starts with a magic+version+kind header and
// errors cross the wire as typed witos::Err codes. Headerless v1 frames
// (stringly-typed errors, one frame per op) still deserialize — the decoders
// fall back to the v1 layout when the magic is absent, so an old client can
// talk to a new broker. Batch frames (`RpcBatchRequest`/`RpcBatchResponse`)
// carry N sub-operations with the ticket/admin/uid header stated once and
// are sealed/MACed once per batch instead of once per op.

#ifndef SRC_BROKER_RPC_H_
#define SRC_BROKER_RPC_H_

#include <functional>
#include <string>
#include <vector>

#include "src/broker/wire.h"
#include "src/obs/metrics.h"
#include "src/os/result.h"
#include "src/os/types.h"

namespace witbroker {

// v2 frame header: "WIT2" little-endian magic, then version, then kind.
// A v1 frame can only collide with the magic if its leading length prefix
// claims an ~840 MB method string, which the reader rejects anyway.
inline constexpr uint32_t kRpcMagic = 0x32544957;  // "WIT2"
inline constexpr uint32_t kRpcVersion = 2;

enum class RpcFrameKind : uint32_t {
  kRequest = 1,
  kResponse = 2,
  kBatchRequest = 3,
  kBatchResponse = 4,
};

// True when `data` begins with the v2 magic (the frame still has to pass
// version/kind validation to decode).
bool HasRpcMagic(std::string_view data);

struct RpcRequest {
  std::string method;
  std::vector<std::string> args;
  witos::Uid uid = 0;       // requesting user inside the container
  witos::Pid caller_pid = witos::kNoPid;
  std::string ticket_id;    // ticket the session is bound to
  std::string admin;        // administrator identity from the certificate

  std::string Serialize() const;  // emits a v2 frame
  // Accepts v2 frames and headerless v1 frames.
  static witos::Result<RpcRequest> Deserialize(std::string_view data);
};

struct RpcResponse {
  bool ok = false;
  witos::Err err = witos::Err::kOk;  // typed error code when !ok
  std::string payload;               // method-specific result

  // Display name for the error ("EPERM"), derived from `err`; empty for ok
  // responses. This replaces the v1 wire field — the name never crosses the
  // wire in v2, it is recomputed from the code.
  std::string error_name() const;

  std::string Serialize() const;  // emits a v2 frame
  // Accepts v2 frames and headerless v1 frames; a v1 errno-name string is
  // mapped back onto the enum (unknown names degrade to kIo).
  static witos::Result<RpcResponse> Deserialize(std::string_view data);

  // Body-only (de)serialization, shared with the batch framing.
  void SerializeBody(WireWriter* writer) const;
  static witos::Result<RpcResponse> DeserializeBody(WireReader* reader);
};

// One sub-operation of a batch: just the verb and its arguments — the
// uid/caller/ticket/admin context lives once in the batch header.
struct RpcSubRequest {
  std::string method;
  std::vector<std::string> args;
};

// N sub-requests under one header: the whole ticket's broker traffic in a
// single frame, serialized once, sealed once.
struct RpcBatchRequest {
  witos::Uid uid = 0;
  witos::Pid caller_pid = witos::kNoPid;
  std::string ticket_id;
  std::string admin;
  std::vector<RpcSubRequest> ops;

  // Materializes sub-request `i` with the shared header applied, for
  // dispatch through code written against RpcRequest.
  RpcRequest SubRequest(size_t i) const;

  std::string Serialize() const;
  static witos::Result<RpcBatchRequest> Deserialize(std::string_view data);
};

// Positional responses: responses[i] answers ops[i]. Delivery is atomic —
// a batch frame that fails authentication or parsing produces *no* sub-
// responses, never a partial prefix.
struct RpcBatchResponse {
  std::vector<RpcResponse> responses;

  std::string Serialize() const;
  static witos::Result<RpcBatchResponse> Deserialize(std::string_view data);
};

// One endpoint (the broker server) bound to a transport. Calls serialize
// the request, traverse the "wire", and deserialize the response.
//
// Transport encryption (paper §5.4: "If one wishes to further secure the
// communication between the perforated container and the permission broker,
// one can employ SSL"): with EnableEncryption, every frame is sealed with a
// keystream derived from the shared secret plus a MAC over the plaintext;
// tampered or replayed ciphertext fails authentication and the call errors.
// A batch pays this seal/MAC cost once for all its sub-operations.
class RpcChannel {
 public:
  using Handler = std::function<RpcResponse(const RpcRequest&)>;
  using BatchHandler = std::function<RpcBatchResponse(const RpcBatchRequest&)>;

  void Bind(Handler handler) { handler_ = std::move(handler); }
  // Servers that understand batches natively bind this too; without it,
  // CallBatch falls back to dispatching each sub-request through the
  // single-op handler (correct, but without the server-side amortization).
  void BindBatch(BatchHandler handler) { batch_handler_ = std::move(handler); }
  bool bound() const { return handler_ != nullptr; }
  void Unbind() {
    handler_ = nullptr;
    batch_handler_ = nullptr;
  }

  witos::Result<RpcResponse> Call(const RpcRequest& request);

  // One frame out, one frame back, regardless of ops.size(). Atomic: any
  // transport/authentication/framing failure yields an error Result and no
  // sub-operation executes or is answered.
  witos::Result<RpcBatchResponse> CallBatch(const RpcBatchRequest& request);

  void EnableEncryption(uint64_t shared_secret);
  bool encrypted() const { return encrypted_; }

  // Wires the channel into the observability layer:
  // watchit_rpc_frames_total (frames crossing the wire, by direction),
  // watchit_rpc_batch_size (ops per batch frame) and
  // watchit_rpc_ticket_wire_bytes (bytes on wire of the most recent batch
  // call — with the serving path flushing once per ticket, this is the
  // per-ticket wire cost).
  void EnableMetrics(witobs::MetricsRegistry* registry);

  // Test hook: flip a byte of the next frame in transit (a meddling
  // man-in-the-middle). `skip_frames` lets the MITM wait — 1 skips the
  // request leg and corrupts the response frame of the next call.
  void CorruptNextFrameForTest(int skip_frames = 0) {
    corrupt_next_ = true;
    corrupt_skip_ = skip_frames;
  }

  uint64_t bytes_on_wire() const { return bytes_on_wire_; }
  uint64_t calls() const { return calls_; }
  uint64_t batch_calls() const { return batch_calls_; }
  // Wire frames sent in either direction (2 per successful call: request +
  // response) — the number batching exists to shrink.
  uint64_t frames() const { return frames_; }
  // Bytes both frames of the most recent completed call contributed.
  uint64_t last_call_wire_bytes() const { return last_call_wire_bytes_; }

 private:
  // Seal/Open: keystream XOR + appended 8-byte MAC over the plaintext.
  // The nonce makes every frame's keystream distinct (no keystream reuse).
  std::string Seal(const std::string& plaintext);
  witos::Result<std::string> Open(const std::string& frame) const;

  // Transport bookkeeping shared by Call/CallBatch: seal, corrupt (test
  // hook), count bytes+frames, open.
  witos::Result<std::string> Transit(std::string frame);

  Handler handler_;
  BatchHandler batch_handler_;
  bool encrypted_ = false;
  uint64_t key_ = 0;
  uint64_t nonce_ = 0;
  bool corrupt_next_ = false;
  int corrupt_skip_ = 0;
  uint64_t bytes_on_wire_ = 0;
  uint64_t calls_ = 0;
  uint64_t batch_calls_ = 0;
  uint64_t frames_ = 0;
  uint64_t last_call_wire_bytes_ = 0;

  // Observability wiring (all null when metrics are disabled).
  witobs::Counter* frames_total_ = nullptr;
  witobs::Histogram* batch_size_hist_ = nullptr;
  witobs::Gauge* ticket_wire_bytes_ = nullptr;
};

}  // namespace witbroker

#endif  // SRC_BROKER_RPC_H_
