#include "src/broker/rpc.h"

#include "src/broker/securelog.h"

namespace witbroker {

std::string RpcRequest::Serialize() const {
  WireWriter writer;
  writer.PutString(method);
  writer.PutStringList(args);
  writer.PutU32(uid);
  writer.PutU32(static_cast<uint32_t>(caller_pid));
  writer.PutString(ticket_id);
  writer.PutString(admin);
  return writer.Take();
}

witos::Result<RpcRequest> RpcRequest::Deserialize(std::string_view data) {
  WireReader reader(data);
  RpcRequest req;
  WITOS_ASSIGN_OR_RETURN(req.method, reader.GetString());
  WITOS_ASSIGN_OR_RETURN(req.args, reader.GetStringList());
  WITOS_ASSIGN_OR_RETURN(req.uid, reader.GetU32());
  WITOS_ASSIGN_OR_RETURN(uint32_t pid, reader.GetU32());
  req.caller_pid = static_cast<witos::Pid>(pid);
  WITOS_ASSIGN_OR_RETURN(req.ticket_id, reader.GetString());
  WITOS_ASSIGN_OR_RETURN(req.admin, reader.GetString());
  if (!reader.AtEnd()) {
    return witos::Err::kInval;
  }
  return req;
}

std::string RpcResponse::Serialize() const {
  WireWriter writer;
  writer.PutBool(ok);
  writer.PutString(error);
  writer.PutString(payload);
  return writer.Take();
}

witos::Result<RpcResponse> RpcResponse::Deserialize(std::string_view data) {
  WireReader reader(data);
  RpcResponse resp;
  WITOS_ASSIGN_OR_RETURN(resp.ok, reader.GetBool());
  WITOS_ASSIGN_OR_RETURN(resp.error, reader.GetString());
  WITOS_ASSIGN_OR_RETURN(resp.payload, reader.GetString());
  if (!reader.AtEnd()) {
    return witos::Err::kInval;
  }
  return resp;
}

void RpcChannel::EnableEncryption(uint64_t shared_secret) {
  encrypted_ = true;
  key_ = shared_secret;
}

namespace {

// Deterministic keystream from (key, nonce): iterated FNV over a counter.
void ApplyKeystream(std::string* data, uint64_t key, uint64_t nonce) {
  uint64_t state = key ^ (nonce * 0x9e3779b97f4a7c15ull);
  size_t i = 0;
  while (i < data->size()) {
    state = Fnv1a(std::string_view(reinterpret_cast<const char*>(&state), 8));
    for (int b = 0; b < 8 && i < data->size(); ++b, ++i) {
      (*data)[i] = static_cast<char>((*data)[i] ^ static_cast<char>((state >> (8 * b)) & 0xff));
    }
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *out += static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

uint64_t ReadU64(std::string_view data) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data[static_cast<size_t>(i)]))
             << (8 * i);
  }
  return value;
}

}  // namespace

std::string RpcChannel::Seal(const std::string& plaintext) {
  uint64_t nonce = ++nonce_;
  uint64_t mac = Fnv1a(plaintext, key_ ^ nonce);
  std::string body = plaintext;
  ApplyKeystream(&body, key_, nonce);
  std::string frame;
  AppendU64(&frame, nonce);
  frame += body;
  AppendU64(&frame, mac);
  return frame;
}

witos::Result<std::string> RpcChannel::Open(const std::string& frame) const {
  if (frame.size() < 16) {
    return witos::Err::kIo;
  }
  uint64_t nonce = ReadU64(frame);
  std::string body = frame.substr(8, frame.size() - 16);
  uint64_t mac = ReadU64(std::string_view(frame).substr(frame.size() - 8));
  ApplyKeystream(&body, key_, nonce);
  if (Fnv1a(body, key_ ^ nonce) != mac) {
    return witos::Err::kIo;  // authentication failure: drop the frame
  }
  return body;
}

witos::Result<RpcResponse> RpcChannel::Call(const RpcRequest& request) {
  if (handler_ == nullptr) {
    // The broker process is gone — ContainIT treats this as a fatal event.
    return witos::Err::kConnRefused;
  }
  ++calls_;
  std::string frame = request.Serialize();
  if (encrypted_) {
    frame = Seal(frame);
  }
  if (corrupt_next_) {
    corrupt_next_ = false;
    frame[frame.size() / 2] = static_cast<char>(frame[frame.size() / 2] ^ 0x40);
  }
  bytes_on_wire_ += frame.size();
  if (encrypted_) {
    WITOS_ASSIGN_OR_RETURN(frame, Open(frame));
  }
  WITOS_ASSIGN_OR_RETURN(RpcRequest decoded, RpcRequest::Deserialize(frame));
  RpcResponse response = handler_(decoded);
  std::string response_frame = response.Serialize();
  if (encrypted_) {
    response_frame = Seal(response_frame);
  }
  bytes_on_wire_ += response_frame.size();
  if (encrypted_) {
    WITOS_ASSIGN_OR_RETURN(response_frame, Open(response_frame));
  }
  return RpcResponse::Deserialize(response_frame);
}

}  // namespace witbroker
