#include "src/broker/rpc.h"

#include "src/broker/securelog.h"

namespace witbroker {

namespace {

// Every sub-request costs at least two 4-byte length prefixes (method +
// empty arg list), so a claimed count above remaining/8 is unsatisfiable.
constexpr size_t kMinSubRequestBytes = 8;
// Every sub-response costs at least ok + err + payload prefix (3 u32s).
constexpr size_t kMinSubResponseBytes = 12;

void PutFrameHeader(WireWriter* writer, RpcFrameKind kind) {
  writer->PutU32(kRpcMagic);
  writer->PutU32(kRpcVersion);
  writer->PutU32(static_cast<uint32_t>(kind));
}

// Consumes and validates a v2 header, requiring `expected` kind. The caller
// must have checked HasRpcMagic first; version skew and kind confusion are
// both rejected as EINVAL.
witos::Status ReadFrameHeader(WireReader* reader, RpcFrameKind expected) {
  WITOS_ASSIGN_OR_RETURN(uint32_t magic, reader->GetU32());
  if (magic != kRpcMagic) {
    return witos::Err::kInval;
  }
  WITOS_ASSIGN_OR_RETURN(uint32_t version, reader->GetU32());
  if (version != kRpcVersion) {
    return witos::Err::kInval;  // version skew: neither v1 nor v2
  }
  WITOS_ASSIGN_OR_RETURN(uint32_t kind, reader->GetU32());
  if (kind != static_cast<uint32_t>(expected)) {
    return witos::Err::kInval;
  }
  return witos::Status::Ok();
}

// An error code that crossed the wire: anything outside the enum range is a
// hostile or corrupted frame, not a new errno.
bool ValidErrCode(uint32_t raw) {
  return raw < static_cast<uint32_t>(witos::kErrCodeCount);
}

}  // namespace

bool HasRpcMagic(std::string_view data) {
  if (data.size() < 4) {
    return false;
  }
  uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<uint32_t>(static_cast<unsigned char>(data[static_cast<size_t>(i)]))
             << (8 * i);
  }
  return magic == kRpcMagic;
}

std::string RpcRequest::Serialize() const {
  WireWriter writer;
  PutFrameHeader(&writer, RpcFrameKind::kRequest);
  writer.PutString(method);
  writer.PutStringList(args);
  writer.PutU32(uid);
  writer.PutU32(static_cast<uint32_t>(caller_pid));
  writer.PutString(ticket_id);
  writer.PutString(admin);
  return writer.Take();
}

witos::Result<RpcRequest> RpcRequest::Deserialize(std::string_view data) {
  WireReader reader(data);
  if (HasRpcMagic(data)) {
    WITOS_RETURN_IF_ERROR(ReadFrameHeader(&reader, RpcFrameKind::kRequest));
  }
  // v1 frames are the same body without the header.
  RpcRequest req;
  WITOS_ASSIGN_OR_RETURN(req.method, reader.GetString());
  WITOS_ASSIGN_OR_RETURN(req.args, reader.GetStringList());
  WITOS_ASSIGN_OR_RETURN(req.uid, reader.GetU32());
  WITOS_ASSIGN_OR_RETURN(uint32_t pid, reader.GetU32());
  req.caller_pid = static_cast<witos::Pid>(pid);
  WITOS_ASSIGN_OR_RETURN(req.ticket_id, reader.GetString());
  WITOS_ASSIGN_OR_RETURN(req.admin, reader.GetString());
  if (!reader.AtEnd()) {
    return witos::Err::kInval;
  }
  return req;
}

std::string RpcResponse::error_name() const {
  return err == witos::Err::kOk ? "" : witos::ErrName(err);
}

void RpcResponse::SerializeBody(WireWriter* writer) const {
  writer->PutBool(ok);
  writer->PutU32(static_cast<uint32_t>(err));
  writer->PutString(payload);
}

witos::Result<RpcResponse> RpcResponse::DeserializeBody(WireReader* reader) {
  RpcResponse resp;
  WITOS_ASSIGN_OR_RETURN(resp.ok, reader->GetBool());
  WITOS_ASSIGN_OR_RETURN(uint32_t raw_err, reader->GetU32());
  if (!ValidErrCode(raw_err)) {
    return witos::Err::kInval;
  }
  resp.err = static_cast<witos::Err>(raw_err);
  WITOS_ASSIGN_OR_RETURN(resp.payload, reader->GetString());
  return resp;
}

std::string RpcResponse::Serialize() const {
  WireWriter writer;
  PutFrameHeader(&writer, RpcFrameKind::kResponse);
  SerializeBody(&writer);
  return writer.Take();
}

witos::Result<RpcResponse> RpcResponse::Deserialize(std::string_view data) {
  WireReader reader(data);
  RpcResponse resp;
  if (HasRpcMagic(data)) {
    WITOS_RETURN_IF_ERROR(ReadFrameHeader(&reader, RpcFrameKind::kResponse));
    WITOS_ASSIGN_OR_RETURN(resp, DeserializeBody(&reader));
  } else {
    // v1 compat shim: the error crossed the wire as an errno-name string;
    // map it back onto the enum so callers see typed errors regardless of
    // which protocol version the peer spoke.
    WITOS_ASSIGN_OR_RETURN(resp.ok, reader.GetBool());
    WITOS_ASSIGN_OR_RETURN(std::string error_name, reader.GetString());
    resp.err = error_name.empty() ? witos::Err::kOk
                                  : witos::ErrFromName(error_name, witos::Err::kIo);
    WITOS_ASSIGN_OR_RETURN(resp.payload, reader.GetString());
  }
  if (!reader.AtEnd()) {
    return witos::Err::kInval;
  }
  return resp;
}

RpcRequest RpcBatchRequest::SubRequest(size_t i) const {
  RpcRequest req;
  req.method = ops[i].method;
  req.args = ops[i].args;
  req.uid = uid;
  req.caller_pid = caller_pid;
  req.ticket_id = ticket_id;
  req.admin = admin;
  return req;
}

std::string RpcBatchRequest::Serialize() const {
  WireWriter writer;
  PutFrameHeader(&writer, RpcFrameKind::kBatchRequest);
  writer.PutU32(uid);
  writer.PutU32(static_cast<uint32_t>(caller_pid));
  writer.PutString(ticket_id);
  writer.PutString(admin);
  writer.PutU32(static_cast<uint32_t>(ops.size()));
  for (const RpcSubRequest& op : ops) {
    writer.PutString(op.method);
    writer.PutStringList(op.args);
  }
  return writer.Take();
}

witos::Result<RpcBatchRequest> RpcBatchRequest::Deserialize(std::string_view data) {
  WireReader reader(data);
  // Batches are v2-only: no headerless fallback.
  WITOS_RETURN_IF_ERROR(ReadFrameHeader(&reader, RpcFrameKind::kBatchRequest));
  RpcBatchRequest batch;
  WITOS_ASSIGN_OR_RETURN(batch.uid, reader.GetU32());
  WITOS_ASSIGN_OR_RETURN(uint32_t pid, reader.GetU32());
  batch.caller_pid = static_cast<witos::Pid>(pid);
  WITOS_ASSIGN_OR_RETURN(batch.ticket_id, reader.GetString());
  WITOS_ASSIGN_OR_RETURN(batch.admin, reader.GetString());
  WITOS_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
  if (static_cast<size_t>(count) > reader.Remaining() / kMinSubRequestBytes) {
    return witos::Err::kInval;  // unsatisfiable count: reject before reserving
  }
  batch.ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RpcSubRequest op;
    WITOS_ASSIGN_OR_RETURN(op.method, reader.GetString());
    WITOS_ASSIGN_OR_RETURN(op.args, reader.GetStringList());
    batch.ops.push_back(std::move(op));
  }
  if (!reader.AtEnd()) {
    return witos::Err::kInval;
  }
  return batch;
}

std::string RpcBatchResponse::Serialize() const {
  WireWriter writer;
  PutFrameHeader(&writer, RpcFrameKind::kBatchResponse);
  writer.PutU32(static_cast<uint32_t>(responses.size()));
  for (const RpcResponse& resp : responses) {
    resp.SerializeBody(&writer);
  }
  return writer.Take();
}

witos::Result<RpcBatchResponse> RpcBatchResponse::Deserialize(std::string_view data) {
  WireReader reader(data);
  WITOS_RETURN_IF_ERROR(ReadFrameHeader(&reader, RpcFrameKind::kBatchResponse));
  RpcBatchResponse batch;
  WITOS_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
  if (static_cast<size_t>(count) > reader.Remaining() / kMinSubResponseBytes) {
    return witos::Err::kInval;
  }
  batch.responses.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WITOS_ASSIGN_OR_RETURN(RpcResponse resp, RpcResponse::DeserializeBody(&reader));
    batch.responses.push_back(std::move(resp));
  }
  if (!reader.AtEnd()) {
    return witos::Err::kInval;
  }
  return batch;
}

void RpcChannel::EnableEncryption(uint64_t shared_secret) {
  encrypted_ = true;
  key_ = shared_secret;
}

void RpcChannel::EnableMetrics(witobs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    frames_total_ = nullptr;
    batch_size_hist_ = nullptr;
    ticket_wire_bytes_ = nullptr;
    return;
  }
  registry->SetHelp("watchit_rpc_frames_total",
                    "Broker RPC frames crossing the wire (request + response)");
  registry->SetHelp("watchit_rpc_batch_size", "Sub-operations per batched broker RPC frame");
  registry->SetHelp("watchit_rpc_ticket_wire_bytes",
                    "Bytes on wire of the most recent batched broker call (one per ticket "
                    "on the serving path)");
  frames_total_ = registry->GetCounter("watchit_rpc_frames_total");
  batch_size_hist_ = registry->GetHistogram("watchit_rpc_batch_size");
  ticket_wire_bytes_ = registry->GetGauge("watchit_rpc_ticket_wire_bytes");
}

namespace {

// Deterministic keystream from (key, nonce): iterated FNV over a counter.
void ApplyKeystream(std::string* data, uint64_t key, uint64_t nonce) {
  uint64_t state = key ^ (nonce * 0x9e3779b97f4a7c15ull);
  size_t i = 0;
  while (i < data->size()) {
    state = Fnv1a(std::string_view(reinterpret_cast<const char*>(&state), 8));
    for (int b = 0; b < 8 && i < data->size(); ++b, ++i) {
      (*data)[i] = static_cast<char>((*data)[i] ^ static_cast<char>((state >> (8 * b)) & 0xff));
    }
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *out += static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

uint64_t ReadU64(std::string_view data) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data[static_cast<size_t>(i)]))
             << (8 * i);
  }
  return value;
}

}  // namespace

std::string RpcChannel::Seal(const std::string& plaintext) {
  uint64_t nonce = ++nonce_;
  uint64_t mac = Fnv1a(plaintext, key_ ^ nonce);
  std::string body = plaintext;
  ApplyKeystream(&body, key_, nonce);
  std::string frame;
  AppendU64(&frame, nonce);
  frame += body;
  AppendU64(&frame, mac);
  return frame;
}

witos::Result<std::string> RpcChannel::Open(const std::string& frame) const {
  if (frame.size() < 16) {
    return witos::Err::kIo;
  }
  uint64_t nonce = ReadU64(frame);
  std::string body = frame.substr(8, frame.size() - 16);
  uint64_t mac = ReadU64(std::string_view(frame).substr(frame.size() - 8));
  ApplyKeystream(&body, key_, nonce);
  if (Fnv1a(body, key_ ^ nonce) != mac) {
    return witos::Err::kIo;  // authentication failure: drop the frame
  }
  return body;
}

witos::Result<std::string> RpcChannel::Transit(std::string frame) {
  if (encrypted_) {
    frame = Seal(frame);
  }
  if (corrupt_next_) {
    if (corrupt_skip_ > 0) {
      --corrupt_skip_;
    } else {
      corrupt_next_ = false;
      frame[frame.size() / 2] = static_cast<char>(frame[frame.size() / 2] ^ 0x40);
    }
  }
  bytes_on_wire_ += frame.size();
  last_call_wire_bytes_ += frame.size();
  ++frames_;
  if (frames_total_ != nullptr) {
    frames_total_->Increment();
  }
  if (encrypted_) {
    return Open(frame);
  }
  return frame;
}

witos::Result<RpcResponse> RpcChannel::Call(const RpcRequest& request) {
  if (handler_ == nullptr) {
    // The broker process is gone — ContainIT treats this as a fatal event.
    return witos::Err::kConnRefused;
  }
  ++calls_;
  last_call_wire_bytes_ = 0;
  WITOS_ASSIGN_OR_RETURN(std::string frame, Transit(request.Serialize()));
  WITOS_ASSIGN_OR_RETURN(RpcRequest decoded, RpcRequest::Deserialize(frame));
  RpcResponse response = handler_(decoded);
  WITOS_ASSIGN_OR_RETURN(std::string response_frame, Transit(response.Serialize()));
  return RpcResponse::Deserialize(response_frame);
}

witos::Result<RpcBatchResponse> RpcChannel::CallBatch(const RpcBatchRequest& request) {
  if (handler_ == nullptr && batch_handler_ == nullptr) {
    return witos::Err::kConnRefused;
  }
  ++calls_;
  ++batch_calls_;
  last_call_wire_bytes_ = 0;
  if (batch_size_hist_ != nullptr) {
    batch_size_hist_->Observe(request.ops.size());
  }
  // Atomicity: any failure between here and the final Deserialize returns
  // through WITOS_ASSIGN_OR_RETURN before a single sub-response is
  // delivered, and a failure on the request leg (e.g. a corrupted frame
  // rejected by the MAC) happens before the server handler ever runs.
  WITOS_ASSIGN_OR_RETURN(std::string frame, Transit(request.Serialize()));
  WITOS_ASSIGN_OR_RETURN(RpcBatchRequest decoded, RpcBatchRequest::Deserialize(frame));
  RpcBatchResponse response;
  if (batch_handler_ != nullptr) {
    response = batch_handler_(decoded);
  } else {
    // Single-op server: dispatch each sub-request individually. The wire
    // amortization is preserved; only the server-side batching is lost.
    response.responses.reserve(decoded.ops.size());
    for (size_t i = 0; i < decoded.ops.size(); ++i) {
      response.responses.push_back(handler_(decoded.SubRequest(i)));
    }
  }
  WITOS_ASSIGN_OR_RETURN(std::string response_frame, Transit(response.Serialize()));
  WITOS_ASSIGN_OR_RETURN(RpcBatchResponse decoded_response,
                         RpcBatchResponse::Deserialize(response_frame));
  if (ticket_wire_bytes_ != nullptr) {
    ticket_wire_bytes_->Set(static_cast<int64_t>(last_call_wire_bytes_));
  }
  return decoded_response;
}

}  // namespace witbroker
