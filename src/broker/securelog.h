// A hash-chained append-only log modelling the paper's "secure append-only
// storage device" for permission-broker requests (§5.4), with replication to
// remote stores (Attack 6 defence: "the log files ... can be replicated on
// a remote append-only storage").
//
// The log is *segmented* (DESIGN.md §14): S independent hash chains, each
// append routed to one shard by caller-supplied key (the broker passes the
// ticket hash, so one ticket's records stay on one chain in per-op order).
// Per-shard chains remove the single append mutex that serialized every
// serving worker, without weakening tamper evidence:
//
//  * Each entry's hash covers its per-shard sequence number, timestamp,
//    payload and the previous entry's hash — in-place tampering breaks
//    that shard's chain (VerifyChain).
//  * Epoch roots seal the cross-shard state: periodically (and on demand)
//    a root records every shard's (size, chain head) and hashes them into
//    a meta chain. An attacker who rewrites a shard entry *and* recomputes
//    the downstream hashes produces an internally consistent chain whose
//    head no longer matches any sealed root — VerifyEpochRoots() fails.
//  * Replicas mirror every shard chain; MatchesReplica() detects
//    primary-side divergence even if both chains verify.
//
// With one shard (the default) the layout, ordering and verification
// behavior are exactly the pre-segmentation single-chain log.
//
// Concurrency: every public method is internally synchronized. Appends to
// different shards proceed in parallel (per-shard ProfiledMutex, named
// "securelog.N" when sharded); SnapshotEntries()/SnapshotShard() taken
// mid-append always see a valid prefix of each shard's chain.

#ifndef SRC_BROKER_SECURELOG_H_
#define SRC_BROKER_SECURELOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/profile.h"
#include "src/os/result.h"

namespace witbroker {

// 64-bit FNV-1a.
uint64_t Fnv1a(std::string_view data, uint64_t seed = 14695981039346656037ull);

struct SecureLogEntry {
  uint64_t seq = 0;  // 1-based within the entry's shard chain
  uint64_t time_ns = 0;
  std::string payload;
  uint64_t prev_hash = 0;
  uint64_t hash = 0;

  static uint64_t ComputeHash(uint64_t seq, uint64_t time_ns, const std::string& payload,
                              uint64_t prev_hash);
};

// One sealed cross-shard state: every shard's chain length and head hash,
// chained to the previous root. Conceptually the roots are what gets
// shipped to the remote append-only store between full replications.
struct EpochRoot {
  uint64_t epoch = 0;  // 1-based position in the root chain
  uint64_t time_ns = 0;
  std::vector<uint64_t> shard_sizes;  // chain length per shard at seal time
  std::vector<uint64_t> shard_heads;  // chain head hash per shard (0 = empty)
  uint64_t prev_root_hash = 0;
  uint64_t root_hash = 0;

  // Hash over every field above except root_hash itself.
  static uint64_t ComputeHash(const EpochRoot& root);
};

class SecureLog {
 public:
  // `shards` hash chains; `epoch_interval` > 0 auto-seals an epoch root
  // every that-many appends (0 = seal only via SealEpoch()).
  explicit SecureLog(size_t shards, uint64_t epoch_interval = 0);
  SecureLog() : SecureLog(1) {}

  size_t shard_count() const { return segments_.size(); }

  // Appends to the shard chosen by `shard_key % shard_count()`. Callers
  // with an affinity key (the broker's ticket hash) use it so related
  // records share a chain; the keyless overload routes by payload hash.
  void Append(std::string payload, uint64_t time_ns, uint64_t shard_key);
  void Append(std::string payload, uint64_t time_ns);

  // Appends one entry per payload under a single shard-lock acquisition —
  // the broker uses this for batched RPC so a ticket's N per-op records
  // cost one critical-section entry while staying N distinct, chain-linked
  // entries (the audit trail is per-op regardless of framing).
  void AppendBatch(const std::vector<std::string>& payloads, uint64_t time_ns,
                   uint64_t shard_key);
  void AppendBatch(const std::vector<std::string>& payloads, uint64_t time_ns);

  // True if every shard chain is intact AND every sealed epoch root still
  // matches the chains (see VerifyEpochRoots).
  bool Verify() const;

  // Chain check over any entry sequence (e.g. a shard snapshot or a
  // replica shard); a snapshot taken mid-append is always a valid prefix
  // of its shard's chain and passes.
  static bool VerifyChain(const std::vector<SecureLogEntry>& entries);

  // Recomputes every shard chain and checks each sealed root's recorded
  // (size, head) against it, plus the root meta-chain links. Catches the
  // rewrite-and-rechain attack a per-shard chain check cannot.
  bool VerifyEpochRoots() const;

  // Consistent point-in-time copy, safe under concurrent appenders. With
  // one shard this IS the chain (append order); with several it is the
  // cross-shard merge ordered by time_ns (ties keep shard index order) —
  // the contract the anomaly detector and forensic reports read under.
  std::vector<SecureLogEntry> SnapshotEntries() const;
  // One shard's chain; always VerifyChain-valid. Empty on a bad index.
  std::vector<SecureLogEntry> SnapshotShard(size_t shard) const;

  size_t size() const;  // total entries across shards

  // Registers a replica; every subsequent append is mirrored per shard.
  // Returns the replica index.
  size_t AddReplica();
  size_t replica_count() const;

  // Detects divergence between the primary and a replica — evidence of
  // primary-side tampering even if the chain was recomputed. False on an
  // out-of-range index (a missing replica can never vouch for the log).
  bool MatchesReplica(size_t index) const;

  // Synchronized copy of a replica, merged like SnapshotEntries(); empty
  // on an out-of-range index.
  std::vector<SecureLogEntry> ReplicaSnapshot(size_t index) const;
  // One replica shard chain; empty on any bad index.
  std::vector<SecureLogEntry> ReplicaShardSnapshot(size_t index, size_t shard) const;

  // Seals an epoch root over the current shard heads (also invoked
  // automatically every `epoch_interval` appends).
  void SealEpoch(uint64_t time_ns);
  std::vector<EpochRoot> EpochRootsSnapshot() const;
  size_t epoch_count() const;

  // Test hooks simulating an attacker rewriting a record in place. The
  // flat-index form walks shards in index order (shard 0's entries first).
  // `rechain` additionally recomputes the downstream hashes of that shard
  // — the smarter attacker only the epoch roots / replicas can expose.
  void TamperForTest(size_t index, std::string new_payload);
  void TamperShardForTest(size_t shard, size_t index, std::string new_payload,
                          bool rechain = false);

  // Attaches every shard lock (and the meta lock) to the contention
  // profile: watchit_lock_{wait,hold}_ns{lock="securelog"} for a
  // single-chain log, lock="securelog.N" per shard when segmented.
  void EnableLockMetrics(witobs::MetricsRegistry* registry);

  // --- Durability hooks (witjournal, DESIGN.md §15) -----------------------

  // Observers for the write-ahead journal. The append listener runs under
  // the entry's shard lock, the seal listener under the meta lock — both
  // must be fast and must never call back into the log. Set before traffic
  // starts (installation itself is not synchronized against appenders).
  using AppendListener = std::function<void(size_t shard, const SecureLogEntry& entry)>;
  using SealListener = std::function<void(const EpochRoot& root)>;
  void set_append_listener(AppendListener listener) { append_listener_ = std::move(listener); }
  void set_seal_listener(SealListener listener) { seal_listener_ = std::move(listener); }

  // Recovery: re-appends one journaled entry to `shard`'s chain, bypassing
  // the listeners and the auto-seal cadence (epoch roots are restored
  // explicitly, not re-derived). The entry's seq/prev_hash/hash are
  // recomputed from the chain position; when `expected_hash` is nonzero and
  // does not match, nothing is appended and EINVAL is returned — a record
  // that cannot reproduce its own chain is corruption, not history. EINVAL
  // also on an out-of-range shard.
  witos::Status RestoreShardEntry(size_t shard, const std::string& payload, uint64_t time_ns,
                                  uint64_t expected_hash);

  // Recovery: installs the journaled sealed roots after every entry has
  // been restored, replacing any roots currently held. The roots are
  // validated against the rebuilt chains (the same checks as
  // VerifyEpochRoots); on any mismatch nothing is installed (fail closed)
  // and false is returned.
  bool RestoreEpochRoots(std::vector<EpochRoot> roots);

 private:
  struct Segment {
    explicit Segment(std::string name) : mu(std::move(name)) {}
    mutable witobs::ProfiledMutex mu;
    std::vector<SecureLogEntry> entries;
    // replicas[i] is replica i's copy of this shard's chain.
    std::vector<std::vector<SecureLogEntry>> replicas;
  };

  size_t ShardOf(uint64_t shard_key) const { return shard_key % segments_.size(); }
  void AppendLocked(size_t shard, std::string payload, uint64_t time_ns, bool notify);
  void MaybeAutoSeal(uint64_t time_ns, uint64_t appended);
  // Merge helper shared by SnapshotEntries / ReplicaSnapshot.
  static std::vector<SecureLogEntry> MergeByTime(std::vector<std::vector<SecureLogEntry>> shards);

  std::vector<std::unique_ptr<Segment>> segments_;
  const uint64_t epoch_interval_;
  // Guards epoch_roots_ and serializes replica registration; ordering is
  // meta -> (one segment at a time), so appends (segment only) never
  // deadlock against seals.
  mutable witobs::ProfiledMutex meta_mu_{"securelog.meta"};
  std::vector<EpochRoot> epoch_roots_;
  std::atomic<uint64_t> appends_until_seal_;
  std::atomic<size_t> replica_count_{0};
  AppendListener append_listener_;
  SealListener seal_listener_;
};

}  // namespace witbroker

#endif  // SRC_BROKER_SECURELOG_H_
