// A hash-chained append-only log modelling the paper's "secure append-only
// storage device" for permission-broker requests (§5.4), with replication to
// remote stores (Attack 6 defence: "the log files ... can be replicated on
// a remote append-only storage").
//
// Each entry's hash covers its sequence number, timestamp, payload and the
// previous entry's hash; Verify() detects any in-place tampering.
//
// Concurrency: Append/Verify/SnapshotEntries/MatchesReplica are internally
// synchronized, so many serving workers can append while an auditor reads —
// the hash chain stays linear because the lock serializes the
// read-prev-hash/write-entry step. entries()/replica() return references
// into live storage and are only safe while no writer is active (they exist
// for single-threaded tests and tooling); concurrent readers must take
// SnapshotEntries().

#ifndef SRC_BROKER_SECURELOG_H_
#define SRC_BROKER_SECURELOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/profile.h"

namespace witbroker {

// 64-bit FNV-1a.
uint64_t Fnv1a(std::string_view data, uint64_t seed = 14695981039346656037ull);

struct SecureLogEntry {
  uint64_t seq = 0;
  uint64_t time_ns = 0;
  std::string payload;
  uint64_t prev_hash = 0;
  uint64_t hash = 0;

  static uint64_t ComputeHash(uint64_t seq, uint64_t time_ns, const std::string& payload,
                              uint64_t prev_hash);
};

class SecureLog {
 public:
  void Append(std::string payload, uint64_t time_ns);

  // Appends one entry per payload under a single lock acquisition — the
  // broker uses this for batched RPC so a ticket's N per-op records cost one
  // critical-section entry while staying N distinct, chain-linked entries
  // (the audit trail is per-op regardless of how requests were framed).
  void AppendBatch(const std::vector<std::string>& payloads, uint64_t time_ns);

  // True if the hash chain is intact.
  bool Verify() const;

  // Chain check over any entry sequence (e.g. a snapshot or a replica); a
  // snapshot taken mid-append is always a valid prefix and passes.
  static bool VerifyChain(const std::vector<SecureLogEntry>& entries);

  // Consistent point-in-time copy, safe under concurrent appenders.
  std::vector<SecureLogEntry> SnapshotEntries() const;

  // Unsynchronized view for single-threaded use; see header comment.
  const std::vector<SecureLogEntry>& entries() const { return entries_; }
  size_t size() const;

  // Registers a replica; every subsequent append is mirrored. Returns the
  // replica index.
  size_t AddReplica();
  const std::vector<SecureLogEntry>& replica(size_t index) const { return replicas_[index]; }
  size_t replica_count() const;

  // Detects divergence between the primary and a replica — evidence of
  // primary-side tampering even if the chain was recomputed.
  bool MatchesReplica(size_t index) const;

  // Test hook simulating an attacker rewriting a record in place.
  void TamperForTest(size_t index, std::string new_payload);

  // Attaches the log's lock to the contention profile
  // (watchit_lock_{wait,hold}_ns{lock="securelog"}) — every serving worker
  // funnels its audit appends through this mutex, which is exactly the
  // contention the ROADMAP's sharding item wants measured.
  void EnableLockMetrics(witobs::MetricsRegistry* registry) { mu_.EnableMetrics(registry); }

 private:
  mutable witobs::ProfiledMutex mu_{"securelog"};
  std::vector<SecureLogEntry> entries_;
  std::vector<std::vector<SecureLogEntry>> replicas_;
};

}  // namespace witbroker

#endif  // SRC_BROKER_SECURELOG_H_
