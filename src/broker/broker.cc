#include "src/broker/broker.h"

#include <algorithm>
#include <charconv>

namespace witbroker {

namespace {

witos::Pid ParsePidArg(const std::string& arg) {
  witos::Pid pid = witos::kNoPid;
  auto [ptr, ec] = std::from_chars(arg.data(), arg.data() + arg.size(), pid);
  if (ec != std::errc() || ptr != arg.data() + arg.size()) {
    return witos::kNoPid;
  }
  return pid;
}

// The endpoint a request names, for policy endpoint scoping: net_allow
// carries it (name or address) as its first argument. Other verbs have no
// endpoint and are never endpoint-scoped.
const std::string& EndpointOf(const RpcRequest& request) {
  static const std::string kNone;
  if (request.method == kVerbNetAllow && !request.args.empty()) {
    return request.args[0];
  }
  return kNone;
}

}  // namespace

PermissionBroker::PermissionBroker(witos::Kernel* kernel, witos::Pid host_pid,
                                   PolicyManager* policy, RpcChannel* channel,
                                   Options options)
    : kernel_(kernel),
      host_pid_(host_pid),
      policy_(policy),
      log_(options.shards == 0 ? 1 : options.shards, options.log_epoch_interval) {
  size_t shards = options.shards == 0 ? 1 : options.shards;
  event_shards_.reserve(shards);
  ticket_shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    std::string suffix = shards == 1 ? "" : "." + std::to_string(s);
    event_shards_.push_back(std::make_unique<EventShard>("broker.events" + suffix));
    ticket_shards_.push_back(std::make_unique<TicketShard>("broker.tickets" + suffix));
  }
  channel->Bind([this](const RpcRequest& request) { return Handle(request); });
  channel->BindBatch([this](const RpcBatchRequest& batch) { return HandleBatch(batch); });
}

witos::Status PermissionBroker::BindTicket(const std::string& ticket_id,
                                           const std::string& ticket_class) {
  TicketShard& shard = TicketShardOf(ticket_id);
  std::lock_guard<witobs::ProfiledMutex> lock(shard.mu);
  auto [it, inserted] = shard.classes.emplace(ticket_id, ticket_class);
  (void)it;
  if (!inserted) {
    return witos::Err::kExist;
  }
  if (binding_listener_) {
    binding_listener_(ticket_id, ticket_class, /*bound=*/true);
  }
  return witos::Status::Ok();
}

witos::Status PermissionBroker::UnbindTicket(const std::string& ticket_id) {
  TicketShard& shard = TicketShardOf(ticket_id);
  std::lock_guard<witobs::ProfiledMutex> lock(shard.mu);
  auto it = shard.classes.find(ticket_id);
  if (it == shard.classes.end()) {
    return witos::Err::kSrch;
  }
  std::string ticket_class = std::move(it->second);
  shard.classes.erase(it);
  if (binding_listener_) {
    binding_listener_(ticket_id, ticket_class, /*bound=*/false);
  }
  return witos::Status::Ok();
}

bool PermissionBroker::IsTicketBound(const std::string& ticket_id) const {
  TicketShard& shard = TicketShardOf(ticket_id);
  std::lock_guard<witobs::ProfiledMutex> lock(shard.mu);
  return shard.classes.count(ticket_id) > 0;
}

size_t PermissionBroker::bound_ticket_count() const {
  size_t total = 0;
  for (const auto& shard : ticket_shards_) {
    std::lock_guard<witobs::ProfiledMutex> lock(shard->mu);
    total += shard->classes.size();
  }
  return total;
}

std::vector<std::pair<std::string, std::string>> PermissionBroker::BoundTicketsSnapshot() const {
  std::vector<std::pair<std::string, std::string>> bindings;
  for (const auto& shard : ticket_shards_) {
    std::lock_guard<witobs::ProfiledMutex> lock(shard->mu);
    bindings.insert(bindings.end(), shard->classes.begin(), shard->classes.end());
  }
  return bindings;
}

void PermissionBroker::RegisterVerb(const std::string& verb, VerbHandler handler) {
  custom_verbs_[verb] = std::move(handler);
}

void PermissionBroker::EnableMetrics(witobs::MetricsRegistry* registry,
                                     witobs::Tracer* tracer) {
  metrics_ = registry;
  tracer_ = tracer;
  if (registry == nullptr) {
    return;
  }
  registry->SetHelp("watchit_broker_requests_total",
                    "Permission broker requests by verb and grant outcome");
  registry->SetHelp("watchit_broker_ticket_requests_total",
                    "Permission broker requests per ticket by grant outcome");
  registry->SetHelp("watchit_broker_dispatch_latency_ns",
                    "Simulated latency of granted broker verb dispatch");
  registry->SetHelp("watchit_broker_events_dropped_total",
                    "Broker events evicted by the retention cap");
  registry->SetHelp("watchit_broker_shadow_total",
                    "Shadow verb-policy evaluations by verb and outcome vs the enforcing policy");
  events_dropped_ = registry->GetCounter("watchit_broker_events_dropped_total");
  dispatch_latency_ = registry->GetHistogram("watchit_broker_dispatch_latency_ns");
  for (const auto& shard : event_shards_) {
    shard->mu.EnableMetrics(registry);
  }
  for (const auto& shard : ticket_shards_) {
    shard->mu.EnableMetrics(registry);
  }
  log_.EnableLockMetrics(registry);
}

void PermissionBroker::PushEventLocked(EventShard* shard, BrokerEvent event) {
  while (shard->capacity != 0 && shard->events.size() >= shard->capacity) {
    shard->events.pop_front();
    ++shard->dropped;
    if (events_dropped_ != nullptr) {
      events_dropped_->Increment();
    }
  }
  shard->events.push_back(std::move(event));
}

void PermissionBroker::RecordEvent(BrokerEvent event) {
  EventShard& shard = EventShardOf(event.ticket_id);
  std::lock_guard<witobs::ProfiledMutex> lock(shard.mu);
  PushEventLocked(&shard, std::move(event));
}

void PermissionBroker::RecordEvents(std::vector<BrokerEvent> events) {
  if (events.empty()) {
    return;
  }
  // A batch is one ticket's ops (the batch header carries the ticket), so
  // the whole vector lands on one shard under one lock acquisition.
  EventShard& shard = EventShardOf(events.front().ticket_id);
  std::lock_guard<witobs::ProfiledMutex> lock(shard.mu);
  for (BrokerEvent& event : events) {
    PushEventLocked(&shard, std::move(event));
  }
}

void PermissionBroker::set_event_capacity(size_t capacity) {
  for (const auto& shard : event_shards_) {
    std::lock_guard<witobs::ProfiledMutex> lock(shard->mu);
    shard->capacity = capacity;
    // Apply immediately: a cap tightened mid-traffic evicts down to the
    // new window now, not on the next append.
    while (capacity != 0 && shard->events.size() > capacity) {
      shard->events.pop_front();
      ++shard->dropped;
      if (events_dropped_ != nullptr) {
        events_dropped_->Increment();
      }
    }
  }
}

size_t PermissionBroker::dropped_events() const {
  size_t total = 0;
  for (const auto& shard : event_shards_) {
    std::lock_guard<witobs::ProfiledMutex> lock(shard->mu);
    total += shard->dropped;
  }
  return total;
}

std::vector<BrokerEvent> PermissionBroker::EventsSnapshot() const {
  std::vector<BrokerEvent> merged;
  if (event_shards_.size() == 1) {
    const EventShard& shard = *event_shards_.front();
    std::lock_guard<witobs::ProfiledMutex> lock(shard.mu);
    merged.assign(shard.events.begin(), shard.events.end());
    return merged;
  }
  for (const auto& shard : event_shards_) {
    std::lock_guard<witobs::ProfiledMutex> lock(shard->mu);
    merged.insert(merged.end(), shard->events.begin(), shard->events.end());
  }
  // Merge-order contract (DESIGN.md §14): time_ns ascending, ties keep
  // shard index order — the anomaly detector's rate windows and the
  // forensic reports read a single coherent timeline.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const BrokerEvent& a, const BrokerEvent& b) {
                     return a.time_ns < b.time_ns;
                   });
  return merged;
}

RpcResponse PermissionBroker::Ok(std::string payload) const {
  RpcResponse resp;
  resp.ok = true;
  resp.payload = std::move(payload);
  return resp;
}

RpcResponse PermissionBroker::Fail(witos::Err err) const {
  RpcResponse resp;
  resp.ok = false;
  resp.err = err;
  return resp;
}

std::string PermissionBroker::TicketClassOf(const std::string& ticket_id) const {
  TicketShard& shard = TicketShardOf(ticket_id);
  std::lock_guard<witobs::ProfiledMutex> lock(shard.mu);
  auto class_it = shard.classes.find(ticket_id);
  return class_it == shard.classes.end() ? "" : class_it->second;
}

BrokerEvent PermissionBroker::MakeEvent(const RpcRequest& request,
                                        const std::string& ticket_class, uint64_t now,
                                        bool allowed) {
  BrokerEvent event;
  event.time_ns = now;
  event.admin = request.admin;
  event.ticket_id = request.ticket_id;
  event.ticket_class = ticket_class;
  event.verb = request.method;
  event.args = request.args;
  event.granted = allowed;
  return event;
}

void PermissionBroker::CountRequest(const RpcRequest& request, bool allowed) {
  if (metrics_ == nullptr) {
    return;
  }
  const char* outcome = allowed ? "grant" : "deny";
  metrics_
      ->GetCounter("watchit_broker_requests_total",
                   {{"verb", request.method}, {"outcome", outcome}})
      ->Increment();
  metrics_
      ->GetCounter("watchit_broker_ticket_requests_total",
                   {{"ticket", request.ticket_id}, {"outcome", outcome}})
      ->Increment();
}

void PermissionBroker::ShadowCheck(const RpcRequest& request, const std::string& ticket_class,
                                   bool policy_allowed) {
  std::optional<bool> mirror =
      policy_->ShadowAllows(ticket_class, request.method, request.admin, EndpointOf(request));
  if (!mirror.has_value()) {
    return;
  }
  shadow_evaluated_.fetch_add(1, std::memory_order_relaxed);
  const char* outcome;
  if (*mirror == policy_allowed) {
    shadow_agree_.fetch_add(1, std::memory_order_relaxed);
    outcome = "agree";
  } else if (!*mirror) {
    shadow_would_block_.fetch_add(1, std::memory_order_relaxed);
    outcome = "would_block";
  } else {
    shadow_would_allow_.fetch_add(1, std::memory_order_relaxed);
    outcome = "would_allow";
  }
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("watchit_broker_shadow_total",
                     {{"verb", request.method}, {"outcome", outcome}})
        ->Increment();
  }
}

PermissionBroker::ShadowStats PermissionBroker::shadow_stats() const {
  ShadowStats stats;
  stats.evaluated = shadow_evaluated_.load(std::memory_order_relaxed);
  stats.agree = shadow_agree_.load(std::memory_order_relaxed);
  stats.would_block = shadow_would_block_.load(std::memory_order_relaxed);
  stats.would_allow = shadow_would_allow_.load(std::memory_order_relaxed);
  return stats;
}

std::string PermissionBroker::LogLine(const RpcRequest& request,
                                      const std::string& ticket_class, bool allowed) {
  std::string log_line = (allowed ? "GRANT " : "DENY ") + request.admin + " " +
                         request.ticket_id + " [" + ticket_class + "] " + request.method;
  for (const auto& arg : request.args) {
    log_line += " " + arg;
  }
  return log_line;
}

RpcResponse PermissionBroker::Handle(const RpcRequest& request) {
  witobs::Span span(tracer_, "broker.handle", request.ticket_id);
  uint64_t now = kernel_->clock().now_ns();
  std::string ticket_class = TicketClassOf(request.ticket_id);

  bool policy_allowed =
      policy_->IsAllowed(ticket_class, request.method, request.admin, EndpointOf(request));
  bool allowed = policy_allowed && policy_->AdmitRate(ticket_class, request.admin, now);
  ShadowCheck(request, ticket_class, policy_allowed);

  RecordEvent(MakeEvent(request, ticket_class, now, allowed));
  CountRequest(request, allowed);

  // "Either way, these requests are logged in real-time to a secure
  // append-only storage device." The ticket hash routes the entry to its
  // shard chain, so one ticket's records stay in per-op order.
  std::string log_line = LogLine(request, ticket_class, allowed);
  log_.Append(log_line, now, TicketShardKey(request.ticket_id));
  kernel_->audit().Append(
      allowed ? witos::AuditEvent::kBrokerRequest : witos::AuditEvent::kBrokerDenied,
      request.caller_pid, request.uid, log_line, now);

  if (!allowed) {
    return Fail(witos::Err::kPerm);
  }
  uint64_t dispatch_start = kernel_->clock().now_ns();
  RpcResponse response = Dispatch(request);
  if (dispatch_latency_ != nullptr) {
    dispatch_latency_->Observe(kernel_->clock().now_ns() - dispatch_start);
  }
  return response;
}

RpcBatchResponse PermissionBroker::HandleBatch(const RpcBatchRequest& batch) {
  witobs::Span span(tracer_, "broker.handle_batch", batch.ticket_id);
  uint64_t now = kernel_->clock().now_ns();
  // One policy-context lookup for the whole batch: the ticket class is
  // header state, not per-op state.
  std::string ticket_class = TicketClassOf(batch.ticket_id);

  RpcBatchResponse response;
  response.responses.resize(batch.ops.size());
  std::vector<bool> allowed(batch.ops.size(), false);
  std::vector<BrokerEvent> events;
  std::vector<std::string> log_lines;
  events.reserve(batch.ops.size());
  log_lines.reserve(batch.ops.size());

  // Per-op accountability first (Table 1: every request, granted or denied,
  // leaves its own record): policy decisions, events, log lines and kernel
  // audit records are computed per op...
  for (size_t i = 0; i < batch.ops.size(); ++i) {
    RpcRequest request = batch.SubRequest(i);
    bool policy_allowed =
        policy_->IsAllowed(ticket_class, request.method, request.admin, EndpointOf(request));
    allowed[i] = policy_allowed && policy_->AdmitRate(ticket_class, request.admin, now);
    ShadowCheck(request, ticket_class, policy_allowed);
    events.push_back(MakeEvent(request, ticket_class, now, allowed[i]));
    CountRequest(request, allowed[i]);
    log_lines.push_back(LogLine(request, ticket_class, allowed[i]));
    kernel_->audit().Append(
        allowed[i] ? witos::AuditEvent::kBrokerRequest : witos::AuditEvent::kBrokerDenied,
        request.caller_pid, request.uid, log_lines.back(), now);
  }
  // ...but the shared structures are entered once: a single lock acquisition
  // appends every event, and a single SecureLog critical section chains
  // every per-op entry — both on the ticket's own shard.
  RecordEvents(std::move(events));
  log_.AppendBatch(log_lines, now, TicketShardKey(batch.ticket_id));

  // Dispatch the granted ops (denied ones answer EPERM positionally).
  uint64_t dispatch_start = kernel_->clock().now_ns();
  for (size_t i = 0; i < batch.ops.size(); ++i) {
    response.responses[i] =
        allowed[i] ? Dispatch(batch.SubRequest(i)) : Fail(witos::Err::kPerm);
  }
  if (dispatch_latency_ != nullptr) {
    dispatch_latency_->Observe(kernel_->clock().now_ns() - dispatch_start);
  }
  return response;
}

RpcResponse PermissionBroker::Dispatch(const RpcRequest& request) {
  auto custom = custom_verbs_.find(request.method);
  if (custom != custom_verbs_.end()) {
    return custom->second(request);
  }
  if (request.method == kVerbPs) {
    return HandlePs(request);
  }
  if (request.method == kVerbKill) {
    return HandleKill(request);
  }
  if (request.method == kVerbReadFile) {
    return HandleReadFile(request);
  }
  if (request.method == kVerbInstall) {
    return HandleInstall(request);
  }
  if (request.method == kVerbRestartService) {
    return HandleRestartService(request);
  }
  if (request.method == kVerbReboot) {
    return HandleReboot(request);
  }
  if (request.method == kVerbDriverUpdate) {
    return HandleDriverUpdate(request);
  }
  return Fail(witos::Err::kNoSys);
}

RpcResponse PermissionBroker::HandlePs(const RpcRequest& /*request*/) {
  auto procs = kernel_->ListProcesses(host_pid_);
  if (!procs.ok()) {
    return Fail(procs.error());
  }
  std::string out = "PID\tUID\tCMD\n";
  for (const auto& info : *procs) {
    out += std::to_string(info.pid) + "\t" + std::to_string(info.uid) + "\t" + info.name +
           (info.state == witos::ProcState::kZombie ? " <defunct>" : "") + "\n";
  }
  return Ok(out);
}

RpcResponse PermissionBroker::HandleKill(const RpcRequest& request) {
  if (request.args.empty()) {
    return Fail(witos::Err::kInval);
  }
  witos::Pid target = ParsePidArg(request.args[0]);
  if (target == witos::kNoPid) {
    return Fail(witos::Err::kInval);
  }
  witos::Status status = kernel_->Kill(host_pid_, target);
  if (!status.ok()) {
    return Fail(status.error());
  }
  return Ok("killed " + request.args[0]);
}

RpcResponse PermissionBroker::HandleReadFile(const RpcRequest& request) {
  if (request.args.empty()) {
    return Fail(witos::Err::kInval);
  }
  auto content = kernel_->ReadFile(host_pid_, request.args[0]);
  if (!content.ok()) {
    return Fail(content.error());
  }
  return Ok(*content);
}

RpcResponse PermissionBroker::HandleInstall(const RpcRequest& request) {
  if (request.args.empty()) {
    return Fail(witos::Err::kInval);
  }
  const std::string& package = request.args[0];
  witos::Status status = kernel_->WriteFile(host_pid_, "/usr/progs/" + package,
                                            "installed " + package + "\n");
  if (!status.ok()) {
    return Fail(status.error());
  }
  return Ok("installed " + package);
}

RpcResponse PermissionBroker::HandleRestartService(const RpcRequest& request) {
  if (request.args.empty()) {
    return Fail(witos::Err::kInval);
  }
  kernel_->audit().Append(witos::AuditEvent::kSessionEvent, host_pid_, witos::kRootUid,
                          "restart_service " + request.args[0], kernel_->clock().now_ns());
  return Ok("restarted " + request.args[0]);
}

RpcResponse PermissionBroker::HandleReboot(const RpcRequest& /*request*/) {
  witos::Status status = kernel_->Reboot(host_pid_);
  if (!status.ok()) {
    return Fail(status.error());
  }
  return Ok("rebooting");
}

RpcResponse PermissionBroker::HandleDriverUpdate(const RpcRequest& request) {
  if (request.args.empty()) {
    return Fail(witos::Err::kInval);
  }
  // Driver updates change the TCB; the kernel routes the module write
  // through the TCB guard, which requires the organizational policy
  // system's signature (modelled by the guard's allow-list).
  witos::Status status = kernel_->LoadModule(host_pid_, request.args[0]);
  if (!status.ok()) {
    return Fail(status.error());
  }
  return Ok("driver " + request.args[0] + " loaded");
}

namespace {

// A failed response must carry a typed code; a peer claiming failure
// without one (a hand-rolled or corrupted frame) degrades to EPERM so
// !ok can never turn into a success at the caller.
witos::Err ResponseError(const RpcResponse& response) {
  return response.err == witos::Err::kOk ? witos::Err::kPerm : response.err;
}

}  // namespace

witos::Result<std::string> BrokerClient::Request(const std::string& verb,
                                                 const std::vector<std::string>& args,
                                                 witos::Uid uid, witos::Pid caller_pid) {
  if (uid != witos::kRootUid) {
    // The client stub refuses unprivileged callers outright.
    return witos::Err::kPerm;
  }
  RpcRequest request;
  request.method = verb;
  request.args = args;
  request.uid = uid;
  request.caller_pid = caller_pid;
  request.ticket_id = ticket_id_;
  request.admin = admin_;
  WITOS_ASSIGN_OR_RETURN(RpcResponse response, channel_->Call(request));
  if (!response.ok) {
    return ResponseError(response);
  }
  return response.payload;
}

void BrokerClient::Begin(witos::Uid uid, witos::Pid caller_pid) {
  batch_uid_ = uid;
  batch_caller_pid_ = caller_pid;
  pending_.clear();
}

size_t BrokerClient::Queue(const std::string& verb, const std::vector<std::string>& args) {
  RpcSubRequest op;
  op.method = verb;
  op.args = args;
  pending_.push_back(std::move(op));
  return pending_.size() - 1;
}

std::vector<witos::Result<std::string>> BrokerClient::Flush() {
  std::vector<RpcSubRequest> ops = std::move(pending_);
  pending_.clear();
  if (ops.empty()) {
    return {};
  }
  if (batch_uid_ != witos::kRootUid) {
    // Same stub-side privilege gate as Request(): nothing crosses the wire.
    return std::vector<witos::Result<std::string>>(ops.size(), witos::Err::kPerm);
  }
  RpcBatchRequest batch;
  batch.uid = batch_uid_;
  batch.caller_pid = batch_caller_pid_;
  batch.ticket_id = ticket_id_;
  batch.admin = admin_;
  batch.ops = std::move(ops);
  witos::Result<RpcBatchResponse> response = channel_->CallBatch(batch);
  if (!response.ok()) {
    // Atomic failure: the batch frame never produced sub-responses, so
    // every op reports the transport error and none executed.
    return std::vector<witos::Result<std::string>>(batch.ops.size(), response.error());
  }
  std::vector<witos::Result<std::string>> results;
  results.reserve(batch.ops.size());
  for (size_t i = 0; i < batch.ops.size(); ++i) {
    if (i >= response->responses.size()) {
      results.push_back(witos::Err::kIo);  // short positional answer: protocol bug
    } else if (!response->responses[i].ok) {
      results.push_back(ResponseError(response->responses[i]));
    } else {
      results.push_back(response->responses[i].payload);
    }
  }
  return results;
}

}  // namespace witbroker
