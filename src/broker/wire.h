// A tiny tag-length-value wire format standing in for Protocol Buffers
// (paper §5.4: "we use Google's Protocol Buffers and gRPC for serializing
// and streaming the data"). Messages are length-delimited fields of
// primitive types; readers are Result-based and reject truncated input.

#ifndef SRC_BROKER_WIRE_H_
#define SRC_BROKER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/os/result.h"

namespace witbroker {

class WireWriter {
 public:
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutString(const std::string& value);
  void PutStringList(const std::vector<std::string>& values);
  void PutBool(bool value) { PutU32(value ? 1 : 0); }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  witos::Result<uint32_t> GetU32();
  witos::Result<uint64_t> GetU64();
  witos::Result<std::string> GetString();
  witos::Result<std::vector<std::string>> GetStringList();
  witos::Result<bool> GetBool();

  bool AtEnd() const { return pos_ == data_.size(); }
  // Bytes not yet consumed; length prefixes are validated against this
  // before any allocation happens.
  size_t Remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace witbroker

#endif  // SRC_BROKER_WIRE_H_
