#include "src/broker/securelog.h"

namespace witbroker {

uint64_t Fnv1a(std::string_view data, uint64_t seed) {
  uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t SecureLogEntry::ComputeHash(uint64_t seq, uint64_t time_ns, const std::string& payload,
                                     uint64_t prev_hash) {
  std::string material;
  material.reserve(payload.size() + 24);
  for (int i = 0; i < 8; ++i) {
    material += static_cast<char>((seq >> (8 * i)) & 0xff);
  }
  for (int i = 0; i < 8; ++i) {
    material += static_cast<char>((time_ns >> (8 * i)) & 0xff);
  }
  for (int i = 0; i < 8; ++i) {
    material += static_cast<char>((prev_hash >> (8 * i)) & 0xff);
  }
  material += payload;
  return Fnv1a(material);
}

void SecureLog::Append(std::string payload, uint64_t time_ns) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  SecureLogEntry entry;
  entry.seq = entries_.size() + 1;
  entry.time_ns = time_ns;
  entry.payload = std::move(payload);
  entry.prev_hash = entries_.empty() ? 0 : entries_.back().hash;
  entry.hash = SecureLogEntry::ComputeHash(entry.seq, entry.time_ns, entry.payload,
                                           entry.prev_hash);
  for (auto& replica : replicas_) {
    replica.push_back(entry);
  }
  entries_.push_back(std::move(entry));
}

void SecureLog::AppendBatch(const std::vector<std::string>& payloads, uint64_t time_ns) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  for (const std::string& payload : payloads) {
    SecureLogEntry entry;
    entry.seq = entries_.size() + 1;
    entry.time_ns = time_ns;
    entry.payload = payload;
    entry.prev_hash = entries_.empty() ? 0 : entries_.back().hash;
    entry.hash = SecureLogEntry::ComputeHash(entry.seq, entry.time_ns, entry.payload,
                                             entry.prev_hash);
    for (auto& replica : replicas_) {
      replica.push_back(entry);
    }
    entries_.push_back(std::move(entry));
  }
}

bool SecureLog::VerifyChain(const std::vector<SecureLogEntry>& entries) {
  uint64_t prev = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const SecureLogEntry& entry = entries[i];
    if (entry.seq != i + 1 || entry.prev_hash != prev) {
      return false;
    }
    if (entry.hash !=
        SecureLogEntry::ComputeHash(entry.seq, entry.time_ns, entry.payload, entry.prev_hash)) {
      return false;
    }
    prev = entry.hash;
  }
  return true;
}

bool SecureLog::Verify() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return VerifyChain(entries_);
}

std::vector<SecureLogEntry> SecureLog::SnapshotEntries() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return entries_;
}

size_t SecureLog::size() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return entries_.size();
}

size_t SecureLog::AddReplica() {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  replicas_.push_back(entries_);
  return replicas_.size() - 1;
}

size_t SecureLog::replica_count() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return replicas_.size();
}

bool SecureLog::MatchesReplica(size_t index) const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  const auto& replica = replicas_[index];
  if (replica.size() != entries_.size()) {
    return false;
  }
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].hash != replica[i].hash || entries_[i].payload != replica[i].payload) {
      return false;
    }
  }
  return true;
}

void SecureLog::TamperForTest(size_t index, std::string new_payload) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  if (index < entries_.size()) {
    entries_[index].payload = std::move(new_payload);
  }
}

}  // namespace witbroker
