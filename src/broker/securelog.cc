#include "src/broker/securelog.h"

#include <algorithm>

namespace witbroker {

namespace {

void AppendU64(std::string* material, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *material += static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

}  // namespace

uint64_t Fnv1a(std::string_view data, uint64_t seed) {
  uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t SecureLogEntry::ComputeHash(uint64_t seq, uint64_t time_ns, const std::string& payload,
                                     uint64_t prev_hash) {
  std::string material;
  material.reserve(payload.size() + 24);
  AppendU64(&material, seq);
  AppendU64(&material, time_ns);
  AppendU64(&material, prev_hash);
  material += payload;
  return Fnv1a(material);
}

uint64_t EpochRoot::ComputeHash(const EpochRoot& root) {
  std::string material;
  material.reserve(24 + 16 * root.shard_sizes.size());
  AppendU64(&material, root.epoch);
  AppendU64(&material, root.time_ns);
  AppendU64(&material, root.prev_root_hash);
  for (size_t s = 0; s < root.shard_sizes.size(); ++s) {
    AppendU64(&material, root.shard_sizes[s]);
    AppendU64(&material, root.shard_heads[s]);
  }
  return Fnv1a(material);
}

SecureLog::SecureLog(size_t shards, uint64_t epoch_interval)
    : epoch_interval_(epoch_interval), appends_until_seal_(epoch_interval) {
  if (shards == 0) {
    shards = 1;
  }
  segments_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    segments_.push_back(std::make_unique<Segment>(
        shards == 1 ? "securelog" : "securelog." + std::to_string(s)));
  }
}

void SecureLog::AppendLocked(size_t shard, std::string payload, uint64_t time_ns, bool notify) {
  Segment* segment = segments_[shard].get();
  SecureLogEntry entry;
  entry.seq = segment->entries.size() + 1;
  entry.time_ns = time_ns;
  entry.payload = std::move(payload);
  entry.prev_hash = segment->entries.empty() ? 0 : segment->entries.back().hash;
  entry.hash =
      SecureLogEntry::ComputeHash(entry.seq, entry.time_ns, entry.payload, entry.prev_hash);
  for (auto& replica : segment->replicas) {
    replica.push_back(entry);
  }
  segment->entries.push_back(std::move(entry));
  if (notify && append_listener_) {
    append_listener_(shard, segment->entries.back());
  }
}

void SecureLog::MaybeAutoSeal(uint64_t time_ns, uint64_t appended) {
  if (epoch_interval_ == 0) {
    return;
  }
  // Countdown shared across shards; the appender that crosses zero seals.
  // A concurrent appender may push the counter slightly negative before the
  // reset lands — the cadence can drift by a few entries, never the roots.
  uint64_t before = appends_until_seal_.fetch_sub(appended, std::memory_order_relaxed);
  if (before <= appended) {
    appends_until_seal_.store(epoch_interval_, std::memory_order_relaxed);
    SealEpoch(time_ns);
  }
}

void SecureLog::Append(std::string payload, uint64_t time_ns, uint64_t shard_key) {
  size_t shard = ShardOf(shard_key);
  Segment* segment = segments_[shard].get();
  {
    std::lock_guard<witobs::ProfiledMutex> lock(segment->mu);
    AppendLocked(shard, std::move(payload), time_ns, /*notify=*/true);
  }
  MaybeAutoSeal(time_ns, 1);
}

void SecureLog::Append(std::string payload, uint64_t time_ns) {
  uint64_t key = segments_.size() == 1 ? 0 : Fnv1a(payload);
  Append(std::move(payload), time_ns, key);
}

void SecureLog::AppendBatch(const std::vector<std::string>& payloads, uint64_t time_ns,
                            uint64_t shard_key) {
  if (payloads.empty()) {
    return;
  }
  size_t shard = ShardOf(shard_key);
  Segment* segment = segments_[shard].get();
  {
    std::lock_guard<witobs::ProfiledMutex> lock(segment->mu);
    for (const std::string& payload : payloads) {
      AppendLocked(shard, payload, time_ns, /*notify=*/true);
    }
  }
  MaybeAutoSeal(time_ns, payloads.size());
}

void SecureLog::AppendBatch(const std::vector<std::string>& payloads, uint64_t time_ns) {
  uint64_t key =
      segments_.size() == 1 || payloads.empty() ? 0 : Fnv1a(payloads.front());
  AppendBatch(payloads, time_ns, key);
}

bool SecureLog::VerifyChain(const std::vector<SecureLogEntry>& entries) {
  uint64_t prev = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const SecureLogEntry& entry = entries[i];
    if (entry.seq != i + 1 || entry.prev_hash != prev) {
      return false;
    }
    if (entry.hash !=
        SecureLogEntry::ComputeHash(entry.seq, entry.time_ns, entry.payload, entry.prev_hash)) {
      return false;
    }
    prev = entry.hash;
  }
  return true;
}

bool SecureLog::Verify() const {
  for (const auto& segment : segments_) {
    std::lock_guard<witobs::ProfiledMutex> lock(segment->mu);
    if (!VerifyChain(segment->entries)) {
      return false;
    }
  }
  return VerifyEpochRoots();
}

bool SecureLog::VerifyEpochRoots() const {
  std::lock_guard<witobs::ProfiledMutex> meta(meta_mu_);
  if (epoch_roots_.empty()) {
    return true;
  }
  // Recompute each shard's running chain head so sealed (size, head) pairs
  // can be checked at any recorded length. One shard locked at a time;
  // entries are append-only, so later roots can only need longer prefixes.
  std::vector<std::vector<uint64_t>> heads_at(segments_.size());
  for (size_t s = 0; s < segments_.size(); ++s) {
    const Segment& segment = *segments_[s];
    std::lock_guard<witobs::ProfiledMutex> lock(segment.mu);
    heads_at[s].reserve(segment.entries.size());
    uint64_t prev = 0;
    for (size_t i = 0; i < segment.entries.size(); ++i) {
      const SecureLogEntry& entry = segment.entries[i];
      if (entry.seq != i + 1 || entry.prev_hash != prev) {
        return false;
      }
      prev = SecureLogEntry::ComputeHash(entry.seq, entry.time_ns, entry.payload,
                                         entry.prev_hash);
      if (entry.hash != prev) {
        return false;
      }
      heads_at[s].push_back(prev);
    }
  }
  uint64_t prev_root = 0;
  std::vector<uint64_t> prev_sizes(segments_.size(), 0);
  for (size_t r = 0; r < epoch_roots_.size(); ++r) {
    const EpochRoot& root = epoch_roots_[r];
    if (root.epoch != r + 1 || root.prev_root_hash != prev_root ||
        root.shard_sizes.size() != segments_.size() ||
        root.shard_heads.size() != segments_.size() ||
        root.root_hash != EpochRoot::ComputeHash(root)) {
      return false;
    }
    for (size_t s = 0; s < segments_.size(); ++s) {
      uint64_t sealed_size = root.shard_sizes[s];
      if (sealed_size < prev_sizes[s] || sealed_size > heads_at[s].size()) {
        return false;  // a sealed chain shrank: append-only violated
      }
      uint64_t expected_head = sealed_size == 0 ? 0 : heads_at[s][sealed_size - 1];
      if (root.shard_heads[s] != expected_head) {
        return false;
      }
      prev_sizes[s] = sealed_size;
    }
    prev_root = root.root_hash;
  }
  return true;
}

std::vector<SecureLogEntry> SecureLog::MergeByTime(
    std::vector<std::vector<SecureLogEntry>> shards) {
  if (shards.size() == 1) {
    return std::move(shards.front());
  }
  std::vector<SecureLogEntry> merged;
  size_t total = 0;
  for (const auto& shard : shards) {
    total += shard.size();
  }
  merged.reserve(total);
  for (auto& shard : shards) {
    merged.insert(merged.end(), std::make_move_iterator(shard.begin()),
                  std::make_move_iterator(shard.end()));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const SecureLogEntry& a, const SecureLogEntry& b) {
                     return a.time_ns < b.time_ns;
                   });
  return merged;
}

std::vector<SecureLogEntry> SecureLog::SnapshotEntries() const {
  std::vector<std::vector<SecureLogEntry>> shards;
  shards.reserve(segments_.size());
  for (const auto& segment : segments_) {
    std::lock_guard<witobs::ProfiledMutex> lock(segment->mu);
    shards.push_back(segment->entries);
  }
  return MergeByTime(std::move(shards));
}

std::vector<SecureLogEntry> SecureLog::SnapshotShard(size_t shard) const {
  if (shard >= segments_.size()) {
    return {};
  }
  const Segment& segment = *segments_[shard];
  std::lock_guard<witobs::ProfiledMutex> lock(segment.mu);
  return segment.entries;
}

size_t SecureLog::size() const {
  size_t total = 0;
  for (const auto& segment : segments_) {
    std::lock_guard<witobs::ProfiledMutex> lock(segment->mu);
    total += segment->entries.size();
  }
  return total;
}

size_t SecureLog::AddReplica() {
  std::lock_guard<witobs::ProfiledMutex> meta(meta_mu_);
  for (const auto& segment : segments_) {
    std::lock_guard<witobs::ProfiledMutex> lock(segment->mu);
    segment->replicas.push_back(segment->entries);
  }
  // Publish only once every shard mirrors: a reader passing the index
  // check below is guaranteed the per-shard vectors exist.
  return replica_count_.fetch_add(1, std::memory_order_release);
}

size_t SecureLog::replica_count() const {
  return replica_count_.load(std::memory_order_acquire);
}

bool SecureLog::MatchesReplica(size_t index) const {
  if (index >= replica_count()) {
    return false;  // a replica we do not have can never vouch for the log
  }
  for (const auto& segment : segments_) {
    std::lock_guard<witobs::ProfiledMutex> lock(segment->mu);
    const auto& replica = segment->replicas[index];
    if (replica.size() != segment->entries.size()) {
      return false;
    }
    for (size_t i = 0; i < replica.size(); ++i) {
      if (segment->entries[i].hash != replica[i].hash ||
          segment->entries[i].payload != replica[i].payload) {
        return false;
      }
    }
  }
  return true;
}

std::vector<SecureLogEntry> SecureLog::ReplicaSnapshot(size_t index) const {
  if (index >= replica_count()) {
    return {};
  }
  std::vector<std::vector<SecureLogEntry>> shards;
  shards.reserve(segments_.size());
  for (const auto& segment : segments_) {
    std::lock_guard<witobs::ProfiledMutex> lock(segment->mu);
    shards.push_back(segment->replicas[index]);
  }
  return MergeByTime(std::move(shards));
}

std::vector<SecureLogEntry> SecureLog::ReplicaShardSnapshot(size_t index, size_t shard) const {
  if (index >= replica_count() || shard >= segments_.size()) {
    return {};
  }
  const Segment& segment = *segments_[shard];
  std::lock_guard<witobs::ProfiledMutex> lock(segment.mu);
  return segment.replicas[index];
}

void SecureLog::SealEpoch(uint64_t time_ns) {
  std::lock_guard<witobs::ProfiledMutex> meta(meta_mu_);
  EpochRoot root;
  root.epoch = epoch_roots_.size() + 1;
  root.time_ns = time_ns;
  root.shard_sizes.reserve(segments_.size());
  root.shard_heads.reserve(segments_.size());
  for (const auto& segment : segments_) {
    std::lock_guard<witobs::ProfiledMutex> lock(segment->mu);
    root.shard_sizes.push_back(segment->entries.size());
    root.shard_heads.push_back(segment->entries.empty() ? 0 : segment->entries.back().hash);
  }
  root.prev_root_hash = epoch_roots_.empty() ? 0 : epoch_roots_.back().root_hash;
  root.root_hash = EpochRoot::ComputeHash(root);
  epoch_roots_.push_back(std::move(root));
  if (seal_listener_) {
    seal_listener_(epoch_roots_.back());
  }
}

witos::Status SecureLog::RestoreShardEntry(size_t shard, const std::string& payload,
                                           uint64_t time_ns, uint64_t expected_hash) {
  if (shard >= segments_.size()) {
    return witos::Err::kInval;
  }
  Segment* segment = segments_[shard].get();
  std::lock_guard<witobs::ProfiledMutex> lock(segment->mu);
  if (expected_hash != 0) {
    uint64_t seq = segment->entries.size() + 1;
    uint64_t prev = segment->entries.empty() ? 0 : segment->entries.back().hash;
    if (SecureLogEntry::ComputeHash(seq, time_ns, payload, prev) != expected_hash) {
      return witos::Err::kInval;
    }
  }
  AppendLocked(shard, payload, time_ns, /*notify=*/false);
  return witos::Status::Ok();
}

bool SecureLog::RestoreEpochRoots(std::vector<EpochRoot> roots) {
  std::vector<EpochRoot> previous;
  {
    std::lock_guard<witobs::ProfiledMutex> meta(meta_mu_);
    previous = std::move(epoch_roots_);
    epoch_roots_ = std::move(roots);
  }
  // Recovery is quiescent, so validating outside the meta lock (which
  // VerifyEpochRoots needs for itself) does not race with appenders.
  if (VerifyEpochRoots()) {
    return true;
  }
  std::lock_guard<witobs::ProfiledMutex> meta(meta_mu_);
  epoch_roots_ = std::move(previous);
  return false;
}

std::vector<EpochRoot> SecureLog::EpochRootsSnapshot() const {
  std::lock_guard<witobs::ProfiledMutex> meta(meta_mu_);
  return epoch_roots_;
}

size_t SecureLog::epoch_count() const {
  std::lock_guard<witobs::ProfiledMutex> meta(meta_mu_);
  return epoch_roots_.size();
}

void SecureLog::TamperForTest(size_t index, std::string new_payload) {
  for (size_t s = 0; s < segments_.size(); ++s) {
    Segment& segment = *segments_[s];
    std::lock_guard<witobs::ProfiledMutex> lock(segment.mu);
    if (index < segment.entries.size()) {
      segment.entries[index].payload = std::move(new_payload);
      return;
    }
    index -= segment.entries.size();
  }
}

void SecureLog::TamperShardForTest(size_t shard, size_t index, std::string new_payload,
                                   bool rechain) {
  if (shard >= segments_.size()) {
    return;
  }
  Segment& segment = *segments_[shard];
  std::lock_guard<witobs::ProfiledMutex> lock(segment.mu);
  if (index >= segment.entries.size()) {
    return;
  }
  segment.entries[index].payload = std::move(new_payload);
  if (!rechain) {
    return;
  }
  // The smarter attacker: recompute every downstream hash so the shard
  // chain stays internally consistent. Only the sealed epoch roots and the
  // replicas can still expose the rewrite.
  for (size_t i = index; i < segment.entries.size(); ++i) {
    SecureLogEntry& entry = segment.entries[i];
    entry.prev_hash = i == 0 ? 0 : segment.entries[i - 1].hash;
    entry.hash =
        SecureLogEntry::ComputeHash(entry.seq, entry.time_ns, entry.payload, entry.prev_hash);
  }
}

void SecureLog::EnableLockMetrics(witobs::MetricsRegistry* registry) {
  for (const auto& segment : segments_) {
    segment->mu.EnableMetrics(registry);
  }
  meta_mu_.EnableMetrics(registry);
}

}  // namespace witbroker
