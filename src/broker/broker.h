// The permission broker (paper §5.4): a host-side service with unlimited
// access to the host's namespaces. Contained administrators ask it to
// execute commands on their behalf ("PB ps -a") or to widen their container
// view. Every request — granted or denied — is written to the secure
// append-only log and the kernel audit trail.

#ifndef SRC_BROKER_BROKER_H_
#define SRC_BROKER_BROKER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/broker/policy.h"
#include "src/broker/rpc.h"
#include "src/broker/securelog.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/os/kernel.h"

namespace witbroker {

// A structured record of one broker request, consumed by the anomaly
// detector and the case-study accounting.
struct BrokerEvent {
  uint64_t time_ns = 0;
  std::string admin;
  std::string ticket_id;
  std::string ticket_class;
  std::string verb;
  std::vector<std::string> args;
  bool granted = false;
};

class PermissionBroker {
 public:
  // Hot-state partitioning (DESIGN.md §14). With shards > 1 the event
  // window, the ticket-class map and the secure log are each split into
  // that many hash shards keyed by ticket id, so concurrent request paths
  // for different tickets serialize only with themselves. shards = 1
  // reproduces the original single-mutex layout exactly.
  struct Options {
    size_t shards = 1;
    // Appends between auto-sealed secure-log epoch roots (0 = manual
    // sealing only); meaningful mostly when shards > 1.
    uint64_t log_epoch_interval = 0;
  };

  // `kernel` is the host machine; `host_pid` is the broker's own process on
  // it (root, full capabilities, host namespaces). The broker binds itself
  // to `channel`.
  PermissionBroker(witos::Kernel* kernel, witos::Pid host_pid, PolicyManager* policy,
                   RpcChannel* channel, Options options);
  PermissionBroker(witos::Kernel* kernel, witos::Pid host_pid, PolicyManager* policy,
                   RpcChannel* channel)
      : PermissionBroker(kernel, host_pid, policy, channel, Options()) {}

  witos::Pid host_pid() const { return host_pid_; }
  SecureLog& log() { return log_; }
  const SecureLog& log() const { return log_; }
  size_t shard_count() const { return event_shards_.size(); }

  // Consistent point-in-time copy of the structured event window — the
  // anomaly detector and forensic reports read this so their input cannot
  // shift (or reallocate) under them while the broker keeps serving. With
  // one shard this is the append-order window; with several it is the
  // cross-shard merge ordered by time_ns (ties keep shard index order).
  std::vector<BrokerEvent> EventsSnapshot() const;

  // Maps a ticket id to its class so policy lookups work; the cluster
  // manager registers each deployed ticket here. EEXIST when the ticket is
  // already bound — a duplicate deploy must not silently reclassify a live
  // ticket.
  witos::Status BindTicket(const std::string& ticket_id, const std::string& ticket_class);
  // Removes a binding made by BindTicket (the expire / deploy-rollback
  // path); ESRCH when the ticket is not bound.
  witos::Status UnbindTicket(const std::string& ticket_id);
  bool IsTicketBound(const std::string& ticket_id) const;
  // Live bindings right now; the deploy fault sweeps assert this returns to
  // zero once every ticket has expired or rolled back.
  size_t bound_ticket_count() const;
  // Consistent-per-shard copy of every live (ticket, class) binding — what
  // a checkpoint persists. Shards are walked in index order, bindings
  // within a shard in map order.
  std::vector<std::pair<std::string, std::string>> BoundTicketsSnapshot() const;

  // Observer for the write-ahead journal (witjournal, DESIGN.md §15):
  // invoked under the binding's shard lock after every successful
  // BindTicket (bound=true) / UnbindTicket (bound=false). Must not call
  // back into the broker. Set before traffic starts.
  using BindingListener =
      std::function<void(const std::string& ticket_id, const std::string& ticket_class, bool bound)>;
  void set_binding_listener(BindingListener listener) { binding_listener_ = std::move(listener); }

  // Extension point: ContainIT registers "mount_volume"; the cluster layer
  // registers "net_allow". The handler runs with the broker's host
  // privileges after the policy check passed.
  using VerbHandler = std::function<RpcResponse(const RpcRequest&)>;
  void RegisterVerb(const std::string& verb, VerbHandler handler);

  // Exposed for tests; normal callers go through the RpcChannel.
  RpcResponse Handle(const RpcRequest& request);

  // Batched entry point (rpc v2): one policy-context lookup, one structured-
  // event append and one SecureLog critical-section entry for the whole
  // batch, while the audit trail stays strictly per-op — N sub-requests
  // still produce N broker events, N secure-log entries and N kernel audit
  // records (Table 1 threat semantics). Responses are positional.
  RpcBatchResponse HandleBatch(const RpcBatchRequest& batch);

  // Wires the broker into the observability layer: request counters by verb
  // and outcome, per-ticket counters, and a dispatch-latency histogram in
  // simulated nanoseconds. Spans tagged with the ticket id are emitted when
  // `tracer` is non-null.
  void EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer = nullptr);

  // Retention cap for the structured event window, applied per shard
  // (0 = unbounded). When a shard's cap is hit its oldest events are
  // evicted; dropped_events() (and the watchit_broker_events_dropped_total
  // series) count the evictions. The secure log is untouched — it is the
  // tamper-evident record; the event window is the in-memory analysis view.
  // Takes each shard's lock and applies the new cap immediately (evicting
  // down to it), so a resize during live traffic is race-free.
  void set_event_capacity(size_t capacity);
  size_t dropped_events() const;

  // Shadow-policy accounting (witmine, DESIGN.md §17): how often the mined
  // shadow verb policy agreed with the enforcing one per request.
  // would_block = shadow would deny a request the enforcing policy granted
  // (candidate privilege reduction); would_allow = shadow looser than the
  // enforcing policy. The comparison is against the pure policy verdict —
  // rate-limit denials are not divergences, and shadow evaluation never
  // consumes rate budget.
  struct ShadowStats {
    uint64_t evaluated = 0;
    uint64_t agree = 0;
    uint64_t would_block = 0;
    uint64_t would_allow = 0;
  };
  ShadowStats shadow_stats() const;

 private:
  // One shard of the bounded event window: a deque so the cap evicts from
  // the front in O(1) (the old vector erase was O(window) per append —
  // quadratic once capped under load). Guarded by its ProfiledMutex, named
  // "broker.events" single-shard / "broker.events.N" sharded.
  struct EventShard {
    explicit EventShard(std::string name) : mu(std::move(name)) {}
    mutable witobs::ProfiledMutex mu;
    std::deque<BrokerEvent> events;
    size_t capacity = 0;  // per-shard window, 0 = unbounded
    uint64_t dropped = 0;
  };
  // One shard of the ticket-class map ("broker.tickets[.N]"): deploy
  // workers bind/unbind while request paths resolve.
  struct TicketShard {
    explicit TicketShard(std::string name) : mu(std::move(name)) {}
    mutable witobs::ProfiledMutex mu;
    std::map<std::string, std::string> classes;
  };

  // Ticket-affinity hash: one ticket's events, class binding and secure-log
  // entries all live on the shard this picks.
  uint64_t TicketShardKey(const std::string& ticket_id) const {
    return Fnv1a(ticket_id);
  }
  EventShard& EventShardOf(const std::string& ticket_id) {
    return *event_shards_[TicketShardKey(ticket_id) % event_shards_.size()];
  }
  TicketShard& TicketShardOf(const std::string& ticket_id) const {
    return *ticket_shards_[TicketShardKey(ticket_id) % ticket_shards_.size()];
  }
  void PushEventLocked(EventShard* shard, BrokerEvent event);

  RpcResponse Dispatch(const RpcRequest& request);
  RpcResponse Ok(std::string payload) const;
  RpcResponse Fail(witos::Err err) const;

  // Shared per-op accountability pieces used by Handle and HandleBatch.
  std::string TicketClassOf(const std::string& ticket_id) const;
  BrokerEvent MakeEvent(const RpcRequest& request, const std::string& ticket_class,
                        uint64_t now, bool allowed);
  void CountRequest(const RpcRequest& request, bool allowed);
  // Consults the shadow policy (if one covers the class) and accounts the
  // divergence from the enforcing verdict; never changes the outcome.
  void ShadowCheck(const RpcRequest& request, const std::string& ticket_class,
                   bool policy_allowed);
  std::string LogLine(const RpcRequest& request, const std::string& ticket_class,
                      bool allowed);

  RpcResponse HandlePs(const RpcRequest& request);
  RpcResponse HandleKill(const RpcRequest& request);
  RpcResponse HandleReadFile(const RpcRequest& request);
  RpcResponse HandleInstall(const RpcRequest& request);
  RpcResponse HandleRestartService(const RpcRequest& request);
  RpcResponse HandleReboot(const RpcRequest& request);
  RpcResponse HandleDriverUpdate(const RpcRequest& request);

  void RecordEvent(BrokerEvent event);
  void RecordEvents(std::vector<BrokerEvent> events);

  witos::Kernel* kernel_;
  witos::Pid host_pid_;
  PolicyManager* policy_;
  SecureLog log_;
  // Per-shard hot state (DESIGN.md §14). Every shard mutex is a
  // ProfiledMutex: EnableMetrics ranks them against every other lock in
  // the process via watchit_lock_{wait,hold}_ns.
  std::vector<std::unique_ptr<EventShard>> event_shards_;
  std::vector<std::unique_ptr<TicketShard>> ticket_shards_;
  std::map<std::string, VerbHandler> custom_verbs_;
  BindingListener binding_listener_;

  std::atomic<uint64_t> shadow_evaluated_{0};
  std::atomic<uint64_t> shadow_agree_{0};
  std::atomic<uint64_t> shadow_would_block_{0};
  std::atomic<uint64_t> shadow_would_allow_{0};

  // Observability wiring (all null when metrics are disabled).
  witobs::MetricsRegistry* metrics_ = nullptr;
  witobs::Tracer* tracer_ = nullptr;
  witobs::Counter* events_dropped_ = nullptr;
  witobs::Histogram* dispatch_latency_ = nullptr;
};

// The in-container client stub. Only privileged users may talk to the
// broker ("we configure the permission broker client to accept only
// requests from privileged users").
//
// Two calling styles:
//  * Request(): one verb, one wire crossing — the v1 interaction.
//  * Begin()/Queue()/Flush(): pipelining — queued verbs ride a single
//    RpcBatchRequest frame, so a whole ticket's escalations pay one
//    serialization + one seal/MAC. Flush() yields positional per-op
//    Results; a transport failure fails every queued op (atomic batch).
class BrokerClient {
 public:
  BrokerClient(RpcChannel* channel, std::string ticket_id, std::string admin)
      : channel_(channel), ticket_id_(std::move(ticket_id)), admin_(std::move(admin)) {}

  // Issues `PB <verb> <args...>` as the in-container user `uid`. On a
  // broker denial or dispatch failure the typed error code round-trips from
  // the broker (EPERM for policy denials, ENOSYS for unknown verbs, ...).
  witos::Result<std::string> Request(const std::string& verb,
                                     const std::vector<std::string>& args, witos::Uid uid,
                                     witos::Pid caller_pid = witos::kNoPid);

  // Opens a pipeline for the in-container user `uid`; discards any ops
  // still queued from an abandoned pipeline.
  void Begin(witos::Uid uid, witos::Pid caller_pid = witos::kNoPid);
  // Queues `PB <verb> <args...>`; returns the op's position — Flush()'s
  // result vector answers positionally.
  size_t Queue(const std::string& verb, const std::vector<std::string>& args);
  // Sends every queued op in one batch frame. Entry i answers Queue() i.
  // The privileged-caller check and any transport error apply to the whole
  // batch: every entry carries the same error and nothing reached the
  // broker. An empty pipeline flushes to an empty vector with no crossing.
  std::vector<witos::Result<std::string>> Flush();

  size_t pending() const { return pending_.size(); }

 private:
  RpcChannel* channel_;
  std::string ticket_id_;
  std::string admin_;
  witos::Uid batch_uid_ = 0;
  witos::Pid batch_caller_pid_ = witos::kNoPid;
  std::vector<RpcSubRequest> pending_;
};

}  // namespace witbroker

#endif  // SRC_BROKER_BROKER_H_
