#include "src/broker/policy.h"

namespace witbroker {

void PolicyManager::SetPolicy(const std::string& ticket_class, ClassPolicy policy) {
  policies_[ticket_class] = std::move(policy);
}

const ClassPolicy& PolicyManager::PolicyFor(const std::string& ticket_class) const {
  auto it = policies_.find(ticket_class);
  return it == policies_.end() ? default_policy_ : it->second;
}

namespace {

bool Permits(const ClassPolicy& policy, const std::string& verb, const std::string& admin,
             const std::string& endpoint) {
  auto denied = policy.denied_for_admin.find(admin);
  if (denied != policy.denied_for_admin.end() && denied->second.count(verb) > 0) {
    return false;
  }
  // Endpoint scoping binds before allow_all: a scoped policy restricts the
  // reachable endpoints even for otherwise-unrestricted verb sets.
  if (!endpoint.empty() && !policy.allowed_endpoints.empty() &&
      policy.allowed_endpoints.count(endpoint) == 0) {
    return false;
  }
  if (policy.allow_all) {
    return true;
  }
  return policy.allowed_verbs.count(verb) > 0;
}

}  // namespace

bool PolicyManager::IsAllowed(const std::string& ticket_class, const std::string& verb,
                              const std::string& admin, const std::string& endpoint) const {
  return Permits(PolicyFor(ticket_class), verb, admin, endpoint);
}

const ClassPolicy* PolicyManager::FindPolicy(const std::string& ticket_class) const {
  auto it = policies_.find(ticket_class);
  return it == policies_.end() ? nullptr : &it->second;
}

void PolicyManager::SetShadowPolicy(const std::string& ticket_class, ClassPolicy policy) {
  shadow_policies_[ticket_class] = std::move(policy);
}

std::optional<bool> PolicyManager::ShadowAllows(const std::string& ticket_class,
                                                const std::string& verb,
                                                const std::string& admin,
                                                const std::string& endpoint) const {
  auto it = shadow_policies_.find(ticket_class);
  if (it == shadow_policies_.end()) {
    return std::nullopt;
  }
  return Permits(it->second, verb, admin, endpoint);
}

bool PolicyManager::AdmitRate(const std::string& ticket_class, const std::string& admin,
                              uint64_t now_ns) {
  const ClassPolicy& policy = PolicyFor(ticket_class);
  if (policy.max_requests_per_window == 0) {
    return true;
  }
  uint64_t window = now_ns / policy.window_ns;
  auto& [last_window, count] = rate_[admin];
  if (last_window != window) {
    last_window = window;
    count = 0;
  }
  if (count >= policy.max_requests_per_window) {
    return false;
  }
  ++count;
  return true;
}

std::vector<std::string> PolicyManager::KnownClasses() const {
  std::vector<std::string> out;
  out.reserve(policies_.size());
  for (const auto& [name, policy] : policies_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace witbroker
