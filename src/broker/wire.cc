#include "src/broker/wire.h"

namespace witbroker {

void WireWriter::PutU32(uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buf_ += static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void WireWriter::PutU64(uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buf_ += static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void WireWriter::PutString(const std::string& value) {
  PutU32(static_cast<uint32_t>(value.size()));
  buf_ += value;
}

void WireWriter::PutStringList(const std::vector<std::string>& values) {
  PutU32(static_cast<uint32_t>(values.size()));
  for (const auto& value : values) {
    PutString(value);
  }
}

witos::Result<uint32_t> WireReader::GetU32() {
  if (pos_ + 4 > data_.size()) {
    return witos::Err::kInval;
  }
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + static_cast<size_t>(i)]))
             << (8 * i);
  }
  pos_ += 4;
  return value;
}

witos::Result<uint64_t> WireReader::GetU64() {
  if (pos_ + 8 > data_.size()) {
    return witos::Err::kInval;
  }
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + static_cast<size_t>(i)]))
             << (8 * i);
  }
  pos_ += 8;
  return value;
}

witos::Result<std::string> WireReader::GetString() {
  WITOS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  // Validate the length prefix against the bytes actually remaining before
  // allocating anything: comparing `len > remaining` (rather than
  // `pos_ + len > size`) cannot overflow on any size_t width, and a hostile
  // 4-byte header (e.g. 0xffffffff) is rejected without a multi-GB
  // std::string allocation.
  if (static_cast<size_t>(len) > Remaining()) {
    return witos::Err::kInval;
  }
  std::string value(data_.substr(pos_, len));
  pos_ += len;
  return value;
}

witos::Result<std::vector<std::string>> WireReader::GetStringList() {
  WITOS_ASSIGN_OR_RETURN(uint32_t count, GetU32());
  // Every list element costs at least a 4-byte length prefix, so any claimed
  // count above remaining/4 is unsatisfiable. Rejecting it here caps the
  // reserve() below at remaining/4 entries instead of letting a hostile
  // header demand count * sizeof(std::string) bytes up front.
  if (static_cast<size_t>(count) > Remaining() / 4) {
    return witos::Err::kInval;
  }
  std::vector<std::string> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WITOS_ASSIGN_OR_RETURN(std::string value, GetString());
    values.push_back(std::move(value));
  }
  return values;
}

witos::Result<bool> WireReader::GetBool() {
  WITOS_ASSIGN_OR_RETURN(uint32_t value, GetU32());
  return value != 0;
}

}  // namespace witbroker
