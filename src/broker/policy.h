// The policy manager: decides which broker verbs each ticket class may use
// ("The permission broker grants a request if it follows the security policy
// corresponding to the specific ticket class and IT specialist", §5.4).

#ifndef SRC_BROKER_POLICY_H_
#define SRC_BROKER_POLICY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace witbroker {

// The broker's verb vocabulary. Free-form verbs registered at runtime are
// also supported; these are the built-ins.
inline constexpr const char* kVerbPs = "ps";
inline constexpr const char* kVerbKill = "kill";
inline constexpr const char* kVerbReadFile = "read_file";
inline constexpr const char* kVerbInstall = "install";
inline constexpr const char* kVerbRestartService = "restart_service";
inline constexpr const char* kVerbReboot = "reboot";
inline constexpr const char* kVerbMountVolume = "mount_volume";
inline constexpr const char* kVerbNetAllow = "net_allow";
inline constexpr const char* kVerbDriverUpdate = "driver_update";

struct ClassPolicy {
  std::set<std::string> allowed_verbs;
  bool allow_all = false;
  // Per-admin overrides: verbs additionally denied for specific admins.
  std::map<std::string, std::set<std::string>> denied_for_admin;
  // Rate limit: at most this many granted requests per admin per window
  // (0 = unlimited). Throttles a rogue admin scripting the broker.
  uint32_t max_requests_per_window = 0;
  uint64_t window_ns = 60ull * 1000000000ull;
};

class PolicyManager {
 public:
  void SetPolicy(const std::string& ticket_class, ClassPolicy policy);
  // Default used for classes without an explicit policy.
  void SetDefaultPolicy(ClassPolicy policy) { default_policy_ = std::move(policy); }

  bool IsAllowed(const std::string& ticket_class, const std::string& verb,
                 const std::string& admin) const;

  // Rate limiting: counts this request against the admin's window and
  // returns false when the class's budget is exhausted. Stateless classes
  // (limit 0) always pass.
  bool AdmitRate(const std::string& ticket_class, const std::string& admin, uint64_t now_ns);

  std::vector<std::string> KnownClasses() const;

 private:
  const ClassPolicy& PolicyFor(const std::string& ticket_class) const;

  std::map<std::string, ClassPolicy> policies_;
  ClassPolicy default_policy_;
  // admin -> (window index, count) for rate accounting.
  std::map<std::string, std::pair<uint64_t, uint32_t>> rate_;
};

}  // namespace witbroker

#endif  // SRC_BROKER_POLICY_H_
