// The policy manager: decides which broker verbs each ticket class may use
// ("The permission broker grants a request if it follows the security policy
// corresponding to the specific ticket class and IT specialist", §5.4).

#ifndef SRC_BROKER_POLICY_H_
#define SRC_BROKER_POLICY_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace witbroker {

// The broker's verb vocabulary. Free-form verbs registered at runtime are
// also supported; these are the built-ins.
inline constexpr const char* kVerbPs = "ps";
inline constexpr const char* kVerbKill = "kill";
inline constexpr const char* kVerbReadFile = "read_file";
inline constexpr const char* kVerbInstall = "install";
inline constexpr const char* kVerbRestartService = "restart_service";
inline constexpr const char* kVerbReboot = "reboot";
inline constexpr const char* kVerbMountVolume = "mount_volume";
inline constexpr const char* kVerbNetAllow = "net_allow";
inline constexpr const char* kVerbDriverUpdate = "driver_update";

struct ClassPolicy {
  std::set<std::string> allowed_verbs;
  bool allow_all = false;
  // Endpoint scoping for endpoint-carrying verbs (net_allow): when
  // non-empty, a request naming an endpoint is granted only if that name
  // (or address — mined policies record both) is in the set. Empty means
  // unscoped: the verb reaches any organizational endpoint, which is how
  // the hand-written Table 3 policies behave and what the privilege-surface
  // accounting charges them for. Mined policies are scoped to the
  // endpoints their class was observed contacting.
  std::set<std::string> allowed_endpoints;
  // Per-admin overrides: verbs additionally denied for specific admins.
  std::map<std::string, std::set<std::string>> denied_for_admin;
  // Rate limit: at most this many granted requests per admin per window
  // (0 = unlimited). Throttles a rogue admin scripting the broker.
  uint32_t max_requests_per_window = 0;
  uint64_t window_ns = 60ull * 1000000000ull;
};

class PolicyManager {
 public:
  void SetPolicy(const std::string& ticket_class, ClassPolicy policy);
  // Default used for classes without an explicit policy.
  void SetDefaultPolicy(ClassPolicy policy) { default_policy_ = std::move(policy); }

  // `endpoint` is the endpoint an endpoint-carrying request names ("" for
  // verbs without one); policies with a non-empty allowed_endpoints set
  // deny endpoints outside it.
  bool IsAllowed(const std::string& ticket_class, const std::string& verb,
                 const std::string& admin, const std::string& endpoint = "") const;

  // The enforcing policy installed for a class, or null when the class
  // falls through to the default. Read-only (the witmine differential and
  // privilege-surface accounting compare against this).
  const ClassPolicy* FindPolicy(const std::string& ticket_class) const;

  // --- shadow enforcement (witmine, DESIGN.md §17) -------------------------
  // A mined policy evaluated BESIDE the enforcing one: the broker consults
  // it per request and counts divergences, but grants/denies are decided
  // solely by the enforcing policy. Install before traffic starts (same
  // single-owner rule as SetPolicy).
  void SetShadowPolicy(const std::string& ticket_class, ClassPolicy policy);
  void ClearShadowPolicies() { shadow_policies_.clear(); }
  bool has_shadow() const { return !shadow_policies_.empty(); }
  // The shadow verdict for this request, or nullopt when no shadow policy
  // covers the class (classes without a mined policy are not compared).
  // Shadow evaluation never touches rate state.
  std::optional<bool> ShadowAllows(const std::string& ticket_class, const std::string& verb,
                                   const std::string& admin,
                                   const std::string& endpoint = "") const;

  // Rate limiting: counts this request against the admin's window and
  // returns false when the class's budget is exhausted. Stateless classes
  // (limit 0) always pass.
  bool AdmitRate(const std::string& ticket_class, const std::string& admin, uint64_t now_ns);

  std::vector<std::string> KnownClasses() const;

 private:
  const ClassPolicy& PolicyFor(const std::string& ticket_class) const;

  std::map<std::string, ClassPolicy> policies_;
  std::map<std::string, ClassPolicy> shadow_policies_;
  ClassPolicy default_policy_;
  // admin -> (window index, count) for rate accounting.
  std::map<std::string, std::pair<uint64_t, uint32_t>> rate_;
};

}  // namespace witbroker

#endif  // SRC_BROKER_POLICY_H_
