// Anomaly detection over permission-broker logs (paper §5.4: "the
// permission broker's log is sufficiently succinct to be inspected and
// analyzed for anomaly detection").
//
// Two detectors are combined:
//  * a categorical surprise model — how unlikely is this (class, verb) pair
//    for this administrator given the fitted history (-log probability with
//    additive smoothing);
//  * a rate model — a z-score on per-window request counts per admin,
//    flagging bursts (e.g. a rogue admin hammering read_file).

#ifndef SRC_BROKER_ANOMALY_H_
#define SRC_BROKER_ANOMALY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/broker/broker.h"

namespace witbroker {

struct AnomalyScore {
  size_t event_index = 0;
  double surprise = 0.0;  // -log2 p((class,verb) | admin)
  bool flagged = false;
  std::string reason;
};

class AnomalyDetector {
 public:
  struct Options {
    double surprise_threshold = 6.0;  // bits
    double rate_zscore_threshold = 4.0;
    uint64_t window_ns = 60ull * 1000000000ull;  // 1 simulated minute
    double smoothing = 0.5;
  };

  AnomalyDetector() : AnomalyDetector(Options()) {}
  explicit AnomalyDetector(Options options) : options_(options) {}

  // Fits the categorical model on historical (assumed benign) events.
  void Fit(const std::vector<BrokerEvent>& history);

  // Surprise of a single event under the fitted model.
  double Surprise(const BrokerEvent& event) const;

  // Scores a stream, flagging surprising events and rate bursts.
  std::vector<AnomalyScore> Analyze(const std::vector<BrokerEvent>& events) const;

 private:
  std::string Key(const BrokerEvent& event) const {
    return event.ticket_class + "|" + event.verb;
  }

  Options options_;
  std::map<std::string, std::map<std::string, uint64_t>> admin_key_counts_;
  std::map<std::string, uint64_t> admin_totals_;
  std::set<std::string> known_keys_;
  // Baseline request-rate statistics per admin (mean and stddev of events
  // per occupied window), captured at Fit() time. Using the *baseline* as
  // the definition of normal prevents a sustained campaign from masking
  // itself by inflating the statistics of the stream under analysis.
  std::map<std::string, std::pair<double, double>> baseline_rate_;
  // Pooled rate statistics across all baseline admins — the yardstick for
  // admins with no individual history. When even this is missing (unfitted
  // or empty baseline) an unknown admin is judged against a zero habitual
  // rate, i.e. treated as suspicious by default; the analyzed stream is
  // never its own yardstick.
  std::pair<double, double> global_rate_{0.0, 0.0};
  bool has_global_rate_ = false;
};

}  // namespace witbroker

#endif  // SRC_BROKER_ANOMALY_H_
