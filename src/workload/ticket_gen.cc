#include "src/workload/ticket_gen.h"

#include <cassert>

#include "src/workload/topology.h"

namespace witload {

namespace {

// Class vocabularies, seeded with the Table 2 topic words and extended with
// plausible co-occurring terms. Index 0 is unused (classes are 1-based).
const std::vector<std::vector<std::string>>& ClassVocabs() {
  static const std::vector<std::vector<std::string>> kVocabs = {
      {},
      // T-1: license related.
      {"license", "matlab", "error", "db2", "toolbox", "message", "expired", "activation",
       "flexlm", "renew", "simulink", "checkout", "feature", "key"},
      // T-2: user / password.
      {"password", "user", "account", "login", "locked", "reset", "credentials",
       "authentication", "username", "unlock", "change", "forgot"},
      // T-3: shared storage accessibility.
      {"file", "svn", "directory", "git", "repository", "mount", "denied", "checkout",
       "commit", "push", "clone", "folder", "nfs", "readonly"},
      // T-4: network related.
      {"port", "network", "dns", "unreachable", "ping", "routing", "firewall", "interface",
       "packet", "gateway", "ethernet", "subnet", "cable"},
      // T-5: slow / non-responsive server.
      {"slow", "stuck", "reboot", "hang", "load", "cpu", "memory", "unresponsive", "frozen",
       "swap", "lag", "overloaded", "sluggish", "thrashing"},
      // T-6: software related.
      {"install", "version", "upgrade", "eclipse", "gcc", "hadoop", "package", "plugin",
       "compile", "library", "python", "update", "build", "compiler", "application"},
      // T-7: internal VM cloud.
      {"vm", "gb", "disk", "kvm", "hypervisor", "image", "cpu", "allocate", "resize",
       "instance", "virtual", "snapshot", "cloud", "provision"},
      // T-8: permissions.
      {"access", "add", "group", "team", "permission", "sudo", "member", "grant", "owner",
       "chmod", "acl", "remove", "rights", "role"},
      // T-9: SSH / VNC / LSF.
      {"connect", "ssh", "respond", "vnc", "lsf", "session", "job", "batch", "submit",
       "x11", "terminal", "display", "queue", "bsub", "timeout"},
      // T-10: shared storage quota.
      {"space", "project", "increase", "quota", "full", "limit", "usage", "storage",
       "capacity", "cleanup", "archive", "exceeded"},
      // T-11: other (rare requests).
      {"partition", "driver", "resize", "kernel", "module", "firmware", "device", "usb",
       "printer", "scanner", "bios", "special"},
  };
  return kVocabs;
}

const std::vector<std::string>& BackgroundVocab() {
  static const std::vector<std::string> kBackground = {
      "linux",  "machine", "computer", "desktop", "laptop", "run",    "fail",
      "system", "open",    "close",    "start",   "stop",   "check",  "look",
      "morning", "today",  "yesterday", "screen", "window", "click",  "command",
      "error",  "message", "log",       "attach", "colleague", "suddenly", "again",
  };
  return kBackground;
}

struct BeyondViewPlan {
  double proc_prob = 0.0;
  double net_prob = 0.0;
  RequiredOp proc_op;
  RequiredOp net_op;
};

RequiredOp ConnectOp(const OrgEndpoint& ep, bool beyond = false) {
  RequiredOp op;
  op.kind = OpKind::kConnect;
  op.endpoint_name = ep.name;
  op.port = ep.port;
  op.beyond_view = beyond;
  op.broker_category = beyond ? BrokerCategory::kNetwork : BrokerCategory::kNone;
  return op;
}

RequiredOp FileOp(OpKind kind, std::string path) {
  RequiredOp op;
  op.kind = kind;
  op.path = std::move(path);
  return op;
}

RequiredOp ProcOp(OpKind kind, std::string service = "") {
  RequiredOp op;
  op.kind = kind;
  op.service = std::move(service);
  return op;
}

// Per-class probability of needing the permission broker, and which op gets
// planted — calibrated to Table 4's last three columns.
BeyondViewPlan PlanFor(int class_index) {
  BeyondViewPlan plan;
  plan.proc_op = ProcOp(OpKind::kListProcesses);
  plan.proc_op.beyond_view = true;
  plan.proc_op.broker_category = BrokerCategory::kProcessManagement;
  switch (class_index) {
    case 1:  // e.g. a missing toolbox must be installed from the repo.
      plan.proc_prob = 0.03;
      plan.net_prob = 0.03;
      plan.net_op = ConnectOp(kSoftwareRepo, true);
      break;
    case 2:
      plan.net_prob = 0.14;
      plan.net_op = ConnectOp(kDirectoryServer, true);
      break;
    case 3:
      plan.net_prob = 0.07;
      plan.net_op = ConnectOp(kTargetMachine, true);
      break;
    case 5:
      plan.net_prob = 0.11;
      plan.net_op = ConnectOp(kSoftwareRepo, true);
      break;
    case 6:
      plan.net_prob = 0.09;
      plan.net_op = ConnectOp(kDirectoryServer, true);
      break;
    case 7:
      plan.proc_prob = 0.03;
      break;
    case 8:
      plan.proc_prob = 0.17;
      plan.net_prob = 0.17;
      plan.net_op = ConnectOp(kSharedStorage, true);
      break;
    default:
      break;
  }
  return plan;
}

}  // namespace

std::string TicketClassName(int index) { return "T-" + std::to_string(index); }

int TicketClassIndex(const std::string& name) {
  if (name.size() < 3 || name.compare(0, 2, "T-") != 0) {
    return -1;
  }
  int index = std::atoi(name.c_str() + 2);
  return index >= 1 && index <= kNumTicketClasses ? index : -1;
}

std::string TicketClassDescription(int index) {
  static const char* kDescriptions[] = {
      "",
      "License related",
      "User / password",
      "Shared storage accessibility",
      "Network related",
      "Slow / non-responsive server",
      "Software related",
      "Internal VM cloud",
      "Permissions",
      "SSH/VNC/LSF",
      "Shared storage quota",
      "Other",
  };
  assert(index >= 1 && index <= kNumTicketClasses);
  return kDescriptions[index];
}

TicketGenerator::TicketGenerator(Options options) : options_(options), rng_(options.seed) {}

std::vector<double> TicketGenerator::HistoricalDistribution() {
  // Figure 7's T-1..T-10 shares scaled by 0.98, plus the ~2% of rare
  // "other" requests that did not cluster (partition resizing, driver
  // updates) so the classifier has seen the T-11 vocabulary.
  return {0.049, 0.1078, 0.0686, 0.0686, 0.0392, 0.147, 0.0784, 0.0882, 0.2254, 0.1078, 0.02};
}

std::vector<double> TicketGenerator::EvaluationDistribution() {
  // Table 4, "% of Total Tickets": T-1..T-11.
  return {0.09, 0.07, 0.08, 0.02, 0.05, 0.30, 0.10, 0.03, 0.21, 0.03, 0.02};
}

const std::vector<std::string>& TicketGenerator::ClassVocabulary(int index) {
  assert(index >= 1 && index <= kNumTicketClasses);
  return ClassVocabs()[static_cast<size_t>(index)];
}

const std::vector<std::string>& TicketGenerator::BackgroundVocabulary() {
  return BackgroundVocab();
}

std::string TicketGenerator::MaybeTypo(std::string word) {
  if (options_.typo_rate <= 0.0 || word.size() < 4) {
    return word;
  }
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (coin(rng_) >= options_.typo_rate) {
    return word;
  }
  std::uniform_int_distribution<size_t> pos_dist(1, word.size() - 2);
  size_t pos = pos_dist(rng_);
  if (coin(rng_) < 0.5) {
    std::swap(word[pos], word[pos + 1]);  // transposition
  } else {
    word.erase(pos, 1);  // deletion
  }
  return word;
}

std::string TicketGenerator::RandomEntity() {
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_int_distribution<int> num(1, 250);
  switch (kind(rng_)) {
    case 0:
      return "10." + std::to_string(num(rng_)) + "." + std::to_string(num(rng_)) + "." +
             std::to_string(num(rng_));
    case 1:
      return "srv-" + std::to_string(num(rng_));
    case 2:
      return "vm-" + std::to_string(num(rng_));
    default:
      return "/gpfs/projects/proj" + std::to_string(num(rng_));
  }
}

std::string TicketGenerator::MakeText(int class_index) {
  const auto& vocab = ClassVocabulary(class_index);
  const auto& background = BackgroundVocab();
  std::uniform_int_distribution<size_t> len_dist(9, 18);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<size_t> vocab_dist(0, vocab.size() - 1);
  std::uniform_int_distribution<size_t> bg_dist(0, background.size() - 1);

  size_t len = len_dist(rng_);
  std::string text = "Hello, please help: ";
  for (size_t i = 0; i < len; ++i) {
    double roll = coin(rng_);
    std::string word;
    if (roll < 0.06) {
      word = RandomEntity();
    } else if (roll < 0.06 + options_.background_rate) {
      word = background[bg_dist(rng_)];
    } else {
      word = vocab[vocab_dist(rng_)];
    }
    text += MaybeTypo(std::move(word));
    text += ' ';
  }
  text += "thanks!";
  return text;
}

std::vector<RequiredOp> TicketGenerator::MakeOps(int class_index) {
  std::vector<RequiredOp> ops;
  switch (class_index) {
    case 1:
      ops.push_back(FileOp(OpKind::kWriteFile, "/home/user/.matlab/license.lic"));
      ops.push_back(ConnectOp(kLicenseServer));
      break;
    case 2:
      ops.push_back(FileOp(OpKind::kReadFile, "/etc/passwd"));
      ops.push_back(FileOp(OpKind::kWriteFile, "/etc/shadow"));
      break;
    case 3:
      ops.push_back(FileOp(OpKind::kWriteFile, "/etc/fstab"));
      ops.push_back(FileOp(OpKind::kWriteFile, "/home/user/.subversion/config"));
      ops.push_back(ConnectOp(kSharedStorage));
      break;
    case 4:
      ops.push_back(ProcOp(OpKind::kListProcesses));
      ops.push_back(FileOp(OpKind::kWriteFile, "/etc/resolv.conf"));
      ops.push_back(ConnectOp(kDirectoryServer));  // any endpoint: NET shared
      ops.push_back(ProcOp(OpKind::kRestartService, "networking"));
      break;
    case 5:
      ops.push_back(ProcOp(OpKind::kListProcesses));
      ops.push_back(ProcOp(OpKind::kKillProcess, "runaway"));
      ops.push_back(FileOp(OpKind::kReadFile, "/var/log/syslog"));
      ops.push_back(ProcOp(OpKind::kRestartService, "cron"));
      break;
    case 6: {
      RequiredOp install = ProcOp(OpKind::kInstallPackage, "eclipse");
      install.endpoint_name = kSoftwareRepo.name;
      install.port = kSoftwareRepo.port;
      ops.push_back(install);
      ops.push_back(FileOp(OpKind::kWriteFile, "/usr/progs/eclipse.ini"));
      ops.push_back(ConnectOp(kEclipseMirror));
      ops.push_back(ProcOp(OpKind::kRestartService, "app-daemon"));
      break;
    }
    case 7:
      ops.push_back(FileOp(OpKind::kWriteFile, "/etc/vm-ownership.conf"));
      break;
    case 8:
      ops.push_back(FileOp(OpKind::kWriteFile, "/home/user/project/.acl"));
      ops.push_back(FileOp(OpKind::kReadFile, "/var/lib/groups.db"));
      break;
    case 9:
      ops.push_back(FileOp(OpKind::kWriteFile, "/etc/ssh/sshd_config"));
      ops.push_back(FileOp(OpKind::kWriteFile, "/home/user/.ssh/config"));
      ops.push_back(ConnectOp(kTargetMachine));
      ops.push_back(ConnectOp(kBatchServer));
      ops.push_back(ProcOp(OpKind::kRestartService, "sshd"));
      break;
    case 10:
      ops.push_back(FileOp(OpKind::kWriteFile, "/home/user/quota-request"));
      ops.push_back(ConnectOp(kSharedStorage));
      break;
    case 11: {
      // Rare requests: partition resizing, driver updates — TCB changes
      // that always escalate.
      RequiredOp driver = ProcOp(OpKind::kDriverUpdate, "raid-ctl");
      driver.beyond_view = true;
      driver.broker_category = BrokerCategory::kFilesystem;
      ops.push_back(driver);
      break;
    }
    default:
      break;
  }

  BeyondViewPlan plan = PlanFor(class_index);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  if (plan.proc_prob > 0.0 && coin(rng_) < plan.proc_prob) {
    ops.push_back(plan.proc_op);
  }
  if (plan.net_prob > 0.0 && coin(rng_) < plan.net_prob) {
    ops.push_back(plan.net_op);
  }
  return ops;
}

GeneratedTicket TicketGenerator::Generate(int class_index) {
  GeneratedTicket ticket;
  ticket.id = "TKT-" + std::to_string(next_ticket_++);
  ticket.true_class = TicketClassName(class_index);
  ticket.text = MakeText(class_index);
  if (options_.with_ops) {
    ticket.ops = MakeOps(class_index);
  }
  return ticket;
}

std::vector<GeneratedTicket> TicketGenerator::GenerateBatch(
    size_t n, const std::vector<double>& distribution) {
  std::discrete_distribution<int> class_dist(distribution.begin(), distribution.end());
  std::vector<GeneratedTicket> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Generate(class_dist(rng_) + 1));
  }
  return out;
}

}  // namespace witload
