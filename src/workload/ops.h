// RequiredOp: the unit of "what an admin actually did" when handling a
// ticket or running a maintenance script. The case-study harness replays
// these inside the deployed perforated container and falls back to the
// permission broker when the container view is too narrow — exactly how the
// paper audited its 398 evaluation tickets (§7.1.3).

#ifndef SRC_WORKLOAD_OPS_H_
#define SRC_WORKLOAD_OPS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace witload {

enum class OpKind : uint8_t {
  kReadFile,
  kWriteFile,
  kListDir,
  kConnect,         // reach endpoint_addr:port
  kListProcesses,   // host process view
  kKillProcess,     // kill a host process
  kRestartService,
  kReboot,
  kInstallPackage,  // from the software repository
  kDriverUpdate,    // TCB change; always needs the broker + policy signature
};

std::string OpKindName(OpKind kind);

// Which Table 4 broker column an out-of-view op lands in.
enum class BrokerCategory : uint8_t {
  kNone,
  kProcessManagement,
  kFilesystem,
  kNetwork,
};

struct RequiredOp {
  OpKind kind = OpKind::kReadFile;
  std::string path;           // filesystem ops
  std::string service;        // restart/install/kill label
  std::string endpoint_name;  // connect ops: symbolic endpoint
  uint16_t port = 0;
  // True when the generator deliberately planted an op outside the class
  // container's view (drives Table 4's broker columns).
  bool beyond_view = false;
  BrokerCategory broker_category = BrokerCategory::kNone;
};

}  // namespace witload

#endif  // SRC_WORKLOAD_OPS_H_
