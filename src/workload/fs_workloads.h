// Filesystem benchmark workloads for the Figure 9 reproduction:
//   * grep   — recursive scan of a directory tree (typical admin task);
//   * Postmark-like — many small files, create/read/append/delete
//     transactions (Katcher 1997, configured 5KB-256KB as in the paper);
//   * SysBench-like fileio — a few large files, random block reads/writes.
//
// All workloads run through the kernel syscall layer as a real process, so
// every open/read/write pays the modelled syscall cost plus whatever the
// mounted filesystem stack (ext4 vs FUSE+ITFS) charges. Results are read
// off the simulated clock.

#ifndef SRC_WORKLOAD_FS_WORKLOADS_H_
#define SRC_WORKLOAD_FS_WORKLOADS_H_

#include <cstdint>
#include <string>

#include "src/os/kernel.h"

namespace witload {

struct WorkloadStats {
  uint64_t sim_ns = 0;     // simulated time consumed
  uint64_t ops = 0;        // logical operations performed
  uint64_t bytes = 0;      // payload bytes moved
  uint64_t matches = 0;    // grep: matching lines found
  uint64_t failures = 0;   // operations that returned an error
};

// Populates `dir` (created if needed) with `num_files` files of
// `file_size` bytes each, split into `subdirs` subdirectories. Content is
// text with `needle` planted on ~1/50 lines. Returns bytes written.
// Executes as `pid` through the kernel.
uint64_t PopulateTree(witos::Kernel* kernel, witos::Pid pid, const std::string& dir,
                      size_t num_files, size_t file_size, size_t subdirs,
                      const std::string& needle, uint32_t seed);

// grep -r `pattern` `dir`: recursive readdir + full read + line scan.
WorkloadStats RunGrep(witos::Kernel* kernel, witos::Pid pid, const std::string& dir,
                      const std::string& pattern);

struct PostmarkConfig {
  size_t initial_files = 200;
  size_t transactions = 1000;
  size_t min_size = 5 * 1024;
  size_t max_size = 256 * 1024;
  uint32_t seed = 99;
};

// The Postmark transaction loop: random create/delete/read/append over a
// pool of small files.
WorkloadStats RunPostmark(witos::Kernel* kernel, witos::Pid pid, const std::string& dir,
                          const PostmarkConfig& config);

struct SysbenchConfig {
  size_t num_files = 4;
  size_t file_size = 8 * 1024 * 1024;
  size_t io_ops = 2000;
  size_t block_size = 16 * 1024;
  double read_fraction = 0.7;
  uint32_t seed = 7;
};

// SysBench fileio rndrw: random block reads/writes over a few large files.
WorkloadStats RunSysbench(witos::Kernel* kernel, witos::Pid pid, const std::string& dir,
                          const SysbenchConfig& config);

}  // namespace witload

#endif  // SRC_WORKLOAD_FS_WORKLOADS_H_
