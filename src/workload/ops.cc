#include "src/workload/ops.h"

namespace witload {

std::string OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kReadFile:
      return "read_file";
    case OpKind::kWriteFile:
      return "write_file";
    case OpKind::kListDir:
      return "list_dir";
    case OpKind::kConnect:
      return "connect";
    case OpKind::kListProcesses:
      return "list_processes";
    case OpKind::kKillProcess:
      return "kill_process";
    case OpKind::kRestartService:
      return "restart_service";
    case OpKind::kReboot:
      return "reboot";
    case OpKind::kInstallPackage:
      return "install_package";
    case OpKind::kDriverUpdate:
      return "driver_update";
  }
  return "?";
}

}  // namespace witload
