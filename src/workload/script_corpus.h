// The IT maintenance-script corpus of §7.2: twenty Chef/Puppet scripts
// (time sync, permission & configuration verification, service restarts,
// ...) and thirteen Apache Spark / IBM Swift cluster-management scripts
// (statistics collection, log scanning, service restarts, reboots).
//
// Each script is a named list of RequiredOps plus the script container
// class Figure 8 assigns it (S-1..S-4 for Chef/Puppet, S-5..S-6 for cluster
// management). The script sandbox runner replays the ops inside the mapped
// container and verifies that the maximal-isolation mapping suffices.

#ifndef SRC_WORKLOAD_SCRIPT_CORPUS_H_
#define SRC_WORKLOAD_SCRIPT_CORPUS_H_

#include <string>
#include <vector>

#include "src/workload/ops.h"

namespace witload {

enum class ScriptFamily : uint8_t {
  kChefPuppet,
  kClusterMgmt,
};

struct ItScript {
  std::string name;
  ScriptFamily family = ScriptFamily::kChefPuppet;
  // Figure 8 container class: "S-1".."S-4" (Chef/Puppet), "S-5"/"S-6"
  // (cluster management).
  std::string container_class;
  std::vector<RequiredOp> ops;
  // A tampered variant would additionally attempt these (exfiltration /
  // malware); a correctly sandboxed run must see them all fail.
  std::vector<RequiredOp> tampered_ops;
};

// The 20 Chef/Puppet scripts: 12 config-file-only (S-1, 60%), 4 config +
// process management (S-2, 20%), 2 process-management-only (S-3, 10%),
// 2 needing the network namespace for iptables work (S-4, 10%).
std::vector<ItScript> ChefPuppetScripts();

// The 13 cluster-management scripts: 10-11 reading logs + statistics tools
// (S-5, ~80%), the rest restarting services / rebooting (S-6, ~20%).
std::vector<ItScript> ClusterManagementScripts();

}  // namespace witload

#endif  // SRC_WORKLOAD_SCRIPT_CORPUS_H_
