// The canonical organizational topology shared by the ticket generator, the
// Table 3 container specs and the cluster builder: one place naming the
// license server, software repository, shared storage, batch server, VM
// cloud manager and the whitelisted external websites.

#ifndef SRC_WORKLOAD_TOPOLOGY_H_
#define SRC_WORKLOAD_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/net/ip.h"

namespace witload {

struct OrgEndpoint {
  const char* name;
  witnet::Ipv4Addr addr;
  uint16_t port;
};

// Well-known organizational services.
inline constexpr uint16_t kLicensePort = 27000;  // FlexLM
inline constexpr uint16_t kRepoPort = 80;
inline constexpr uint16_t kStoragePort = 445;
inline constexpr uint16_t kBatchPort = 1966;     // LSF
inline constexpr uint16_t kCloudPort = 8774;     // EC2-style API
inline constexpr uint16_t kSshPort = 22;
inline constexpr uint16_t kWebPort = 443;

inline const OrgEndpoint kLicenseServer{"license-server", witnet::Ipv4Addr(10, 0, 0, 10),
                                        kLicensePort};
inline const OrgEndpoint kSoftwareRepo{"software-repo", witnet::Ipv4Addr(10, 0, 0, 20),
                                       kRepoPort};
inline const OrgEndpoint kSharedStorage{"shared-storage", witnet::Ipv4Addr(10, 0, 0, 30),
                                        kStoragePort};
inline const OrgEndpoint kBatchServer{"batch-server", witnet::Ipv4Addr(10, 0, 0, 40),
                                      kBatchPort};
inline const OrgEndpoint kCloudManager{"vm-cloud", witnet::Ipv4Addr(10, 0, 0, 50), kCloudPort};
inline const OrgEndpoint kDirectoryServer{"ldap", witnet::Ipv4Addr(10, 0, 0, 60), 389};

// The ticket's target machine (the end-user's workstation).
inline const OrgEndpoint kTargetMachine{"target-machine", witnet::Ipv4Addr(10, 0, 1, 100),
                                        kSshPort};

// Whitelisted software-download websites (T-6's controlled web access).
inline const witnet::Cidr kWhitelistedWeb{witnet::Ipv4Addr(93, 184, 216, 0), 24};
inline const OrgEndpoint kEclipseMirror{"eclipse-mirror", witnet::Ipv4Addr(93, 184, 216, 34),
                                        kWebPort};
// A non-whitelisted exfiltration target, for attack scenarios.
inline const OrgEndpoint kEvilHost{"evil-host", witnet::Ipv4Addr(203, 0, 113, 66), kWebPort};

// All organizational endpoints a fabric should be provisioned with.
std::vector<OrgEndpoint> AllOrgEndpoints();

// Symbolic name -> endpoint (returns nullptr when unknown).
const OrgEndpoint* EndpointByName(const std::string& name);

}  // namespace witload

#endif  // SRC_WORKLOAD_TOPOLOGY_H_
