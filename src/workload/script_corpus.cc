#include "src/workload/script_corpus.h"

#include "src/workload/topology.h"

namespace witload {

namespace {

RequiredOp Read(std::string path) {
  RequiredOp op;
  op.kind = OpKind::kReadFile;
  op.path = std::move(path);
  return op;
}

RequiredOp Write(std::string path) {
  RequiredOp op;
  op.kind = OpKind::kWriteFile;
  op.path = std::move(path);
  return op;
}

RequiredOp Restart(std::string service) {
  RequiredOp op;
  op.kind = OpKind::kRestartService;
  op.service = std::move(service);
  return op;
}

RequiredOp ListProcs() {
  RequiredOp op;
  op.kind = OpKind::kListProcesses;
  return op;
}

RequiredOp RebootOp() {
  RequiredOp op;
  op.kind = OpKind::kReboot;
  return op;
}

RequiredOp Connect(const OrgEndpoint& ep) {
  RequiredOp op;
  op.kind = OpKind::kConnect;
  op.endpoint_name = ep.name;
  op.port = ep.port;
  return op;
}

// What a tampered script would try: read documents and exfiltrate.
std::vector<RequiredOp> ExfiltrationAttempt() {
  RequiredOp steal = Read("/home/user/documents/payroll.xlsx");
  RequiredOp exfil = Connect(kEvilHost);
  return {steal, exfil};
}

ItScript Script(std::string name, ScriptFamily family, std::string cls,
                std::vector<RequiredOp> ops) {
  ItScript script;
  script.name = std::move(name);
  script.family = family;
  script.container_class = std::move(cls);
  script.ops = std::move(ops);
  script.tampered_ops = ExfiltrationAttempt();
  return script;
}

}  // namespace

std::vector<ItScript> ChefPuppetScripts() {
  const ScriptFamily cp = ScriptFamily::kChefPuppet;
  return {
      // S-1 (60%): configuration verification — specific config files only.
      Script("verify-ntp-conf", cp, "S-1", {Read("/etc/ntp.conf"), Write("/etc/ntp.conf")}),
      Script("verify-resolv", cp, "S-1", {Read("/etc/resolv.conf")}),
      Script("verify-sudoers", cp, "S-1", {Read("/etc/sudoers")}),
      Script("sync-motd", cp, "S-1", {Write("/etc/motd")}),
      Script("verify-hosts", cp, "S-1", {Read("/etc/hosts"), Write("/etc/hosts")}),
      Script("audit-passwd-perms", cp, "S-1", {Read("/etc/passwd"), Read("/etc/shadow")}),
      Script("verify-fstab", cp, "S-1", {Read("/etc/fstab")}),
      Script("sync-ldap-conf", cp, "S-1", {Write("/etc/ldap.conf")}),
      Script("verify-sshd-config", cp, "S-1", {Read("/etc/ssh/sshd_config")}),
      Script("rotate-login-defs", cp, "S-1", {Write("/etc/login.defs")}),
      Script("verify-limits", cp, "S-1", {Read("/etc/security/limits.conf")}),
      Script("verify-timezone", cp, "S-1", {Read("/etc/timezone"), Write("/etc/timezone")}),
      // S-2 (20%): configuration + service restarts.
      Script("ntp-resync", cp, "S-2",
             {Write("/etc/ntp.conf"), Restart("ntpd"), ListProcs()}),
      Script("sshd-refresh", cp, "S-2",
             {Write("/etc/ssh/sshd_config"), Restart("sshd")}),
      Script("cron-reload", cp, "S-2", {Write("/etc/crontab"), Restart("cron")}),
      Script("syslog-rotate", cp, "S-2",
             {Write("/etc/rsyslog.conf"), Restart("rsyslog"), ListProcs()}),
      // S-3 (10%): process management only.
      Script("kill-stale-agents", cp, "S-3", {ListProcs(), Restart("chef-client")}),
      Script("service-watchdog", cp, "S-3", {ListProcs(), Restart("puppet-agent")}),
      // S-4 (10%): iptables / routing — needs the host network namespace.
      Script("iptables-verify", cp, "S-4",
             {Read("/etc/iptables.rules"), Connect(kDirectoryServer)}),
      Script("route-audit", cp, "S-4",
             {Read("/etc/network/interfaces"), Connect(kTargetMachine)}),
  };
}

std::vector<ItScript> ClusterManagementScripts() {
  const ScriptFamily cm = ScriptFamily::kClusterMgmt;
  return {
      // S-5 (~80%): read logs + statistics tools, no network.
      Script("spark-executor-stats", cm, "S-5",
             {Read("/var/log/spark/executor.log"), Read("/usr/bin/mpstat")}),
      Script("swift-ring-health", cm, "S-5", {Read("/var/log/swift/proxy.log")}),
      Script("collect-gc-stats", cm, "S-5", {Read("/var/log/spark/gc.log")}),
      Script("scan-oom-events", cm, "S-5", {Read("/var/log/syslog")}),
      Script("io-latency-report", cm, "S-5",
             {Read("/usr/bin/iostat"), Read("/var/log/sar.dat")}),
      Script("executor-failure-scan", cm, "S-5", {Read("/var/log/spark/driver.log")}),
      Script("swift-replicator-audit", cm, "S-5",
             {Read("/var/log/swift/replicator.log")}),
      Script("cpu-usage-rollup", cm, "S-5", {Read("/usr/bin/mpstat")}),
      Script("disk-capacity-check", cm, "S-5", {Read("/var/log/df.log")}),
      Script("job-queue-depth", cm, "S-5", {Read("/var/log/spark/scheduler.log")}),
      Script("network-error-scan", cm, "S-5", {Read("/var/log/netstat.log")}),
      // S-6 (~20%): service restarts and reboots.
      Script("restart-spark-workers", cm, "S-6",
             {ListProcs(), Restart("spark-worker"), RebootOp()}),
      Script("swift-service-cycle", cm, "S-6", {ListProcs(), Restart("swift-object")}),
  };
}

}  // namespace witload
