#include "src/workload/topology.h"

namespace witload {

std::vector<OrgEndpoint> AllOrgEndpoints() {
  return {kLicenseServer, kSoftwareRepo,  kSharedStorage, kBatchServer,
          kCloudManager,  kDirectoryServer, kTargetMachine, kEclipseMirror,
          kEvilHost};
}

const OrgEndpoint* EndpointByName(const std::string& name) {
  static const std::vector<OrgEndpoint> kAll = AllOrgEndpoints();
  for (const auto& ep : kAll) {
    if (name == ep.name) {
      return &ep;
    }
  }
  return nullptr;
}

}  // namespace witload
