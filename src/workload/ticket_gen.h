// Synthetic IT-ticket generator standing in for the IBM Research IT
// database (66k historical + 398 evaluation tickets).
//
// Each of the ten Linux ticket classes (plus "other") carries a vocabulary
// seeded with the Table 2 topic words; ticket text mixes class words with a
// shared background vocabulary and entity tokens (IPs, server names,
// storage paths) that the NLP obfuscator later normalizes. Evaluation
// tickets additionally carry the *required operations* an admin performs to
// resolve them, with per-class probabilities of needing something beyond
// the class container's view — calibrated to Table 4's broker columns.

#ifndef SRC_WORKLOAD_TICKET_GEN_H_
#define SRC_WORKLOAD_TICKET_GEN_H_

#include <map>
#include <random>
#include <string>
#include <vector>

#include "src/workload/ops.h"

namespace witload {

inline constexpr int kNumTicketClasses = 11;  // T-1 .. T-10 + T-11 "other"

// Canonical class names: "T-1" ... "T-11".
std::string TicketClassName(int index);  // index is 1-based
int TicketClassIndex(const std::string& name);
std::string TicketClassDescription(int index);

struct GeneratedTicket {
  std::string id;
  std::string text;        // free text as the end-user wrote it
  std::string true_class;  // "T-1" .. "T-11"
  std::vector<RequiredOp> ops;
};

class TicketGenerator {
 public:
  struct Options {
    uint32_t seed = 1234;
    // Typo probability per word (exercises spelling correction).
    double typo_rate = 0.0;
    // Probability a content word is drawn from the shared background
    // vocabulary instead of the class vocabulary (topic overlap / noise).
    double background_rate = 0.28;
    // Generate required operations (evaluation tickets need them; the
    // historical training corpus does not).
    bool with_ops = false;
  };

  TicketGenerator() : TicketGenerator(Options()) {}
  explicit TicketGenerator(Options options);

  // The paper's historical class distribution (Figure 7), T-1..T-10 (no
  // "other" among clustered history).
  static std::vector<double> HistoricalDistribution();
  // The evaluation-period distribution (Table 4 column 1), T-1..T-11.
  static std::vector<double> EvaluationDistribution();

  // Generates one ticket of a specific class (1-based index).
  GeneratedTicket Generate(int class_index);
  // Generates `n` tickets with classes drawn from `distribution`
  // (probabilities for classes 1..distribution.size()).
  std::vector<GeneratedTicket> GenerateBatch(size_t n, const std::vector<double>& distribution);

  // Class vocabulary (exposed for tests).
  static const std::vector<std::string>& ClassVocabulary(int index);
  static const std::vector<std::string>& BackgroundVocabulary();

 private:
  std::string MakeText(int class_index);
  std::vector<RequiredOp> MakeOps(int class_index);
  std::string MaybeTypo(std::string word);
  std::string RandomEntity();

  Options options_;
  std::mt19937 rng_;
  uint64_t next_ticket_ = 1;
};

}  // namespace witload

#endif  // SRC_WORKLOAD_TICKET_GEN_H_
