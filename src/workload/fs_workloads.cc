#include "src/workload/fs_workloads.h"

#include <random>

namespace witload {

namespace {

// Generates `size` bytes of line-oriented text, planting `needle` on
// roughly one line in fifty.
std::string MakeTextContent(size_t size, const std::string& needle, std::mt19937* rng) {
  static const char* kWords[] = {"config", "service", "daemon", "status", "info",
                                 "warn",   "request", "update", "value",  "node"};
  std::uniform_int_distribution<size_t> word_dist(0, 9);
  std::uniform_int_distribution<int> needle_dist(0, 49);
  std::string out;
  out.reserve(size + 64);
  while (out.size() < size) {
    std::string line;
    for (int i = 0; i < 8; ++i) {
      line += kWords[word_dist(*rng)];
      line += ' ';
    }
    if (needle_dist(*rng) == 0) {
      line += needle;
    }
    line += '\n';
    out += line;
  }
  out.resize(size);
  return out;
}

size_t CountMatches(const std::string& content, const std::string& pattern) {
  size_t matches = 0;
  size_t pos = 0;
  while ((pos = content.find(pattern, pos)) != std::string::npos) {
    ++matches;
    pos += pattern.size();
  }
  return matches;
}

}  // namespace

uint64_t PopulateTree(witos::Kernel* kernel, witos::Pid pid, const std::string& dir,
                      size_t num_files, size_t file_size, size_t subdirs,
                      const std::string& needle, uint32_t seed) {
  std::mt19937 rng(seed);
  (void)kernel->MkDir(pid, dir);
  uint64_t bytes = 0;
  for (size_t s = 0; s < subdirs; ++s) {
    (void)kernel->MkDir(pid, dir + "/d" + std::to_string(s));
  }
  for (size_t i = 0; i < num_files; ++i) {
    std::string path = dir + "/d" + std::to_string(i % subdirs) + "/f" + std::to_string(i) +
                       ".log";
    std::string content = MakeTextContent(file_size, needle, &rng);
    bytes += content.size();
    (void)kernel->WriteFile(pid, path, content);
  }
  return bytes;
}

WorkloadStats RunGrep(witos::Kernel* kernel, witos::Pid pid, const std::string& dir,
                      const std::string& pattern) {
  WorkloadStats stats;
  uint64_t start = kernel->clock().now_ns();

  // Iterative DFS over the directory tree.
  std::vector<std::string> todo = {dir};
  while (!todo.empty()) {
    std::string cur = todo.back();
    todo.pop_back();
    auto entries = kernel->ReadDir(pid, cur);
    ++stats.ops;
    if (!entries.ok()) {
      ++stats.failures;
      continue;
    }
    for (const auto& entry : *entries) {
      std::string path = cur + "/" + entry.name;
      if (entry.type == witos::FileType::kDirectory) {
        todo.push_back(path);
        continue;
      }
      auto content = kernel->ReadFile(pid, path);
      ++stats.ops;
      if (!content.ok()) {
        ++stats.failures;
        continue;
      }
      stats.bytes += content->size();
      stats.matches += CountMatches(*content, pattern);
    }
  }
  stats.sim_ns = kernel->clock().now_ns() - start;
  return stats;
}

WorkloadStats RunPostmark(witos::Kernel* kernel, witos::Pid pid, const std::string& dir,
                          const PostmarkConfig& config) {
  WorkloadStats stats;
  std::mt19937 rng(config.seed);
  std::uniform_int_distribution<size_t> size_dist(config.min_size, config.max_size);
  std::uniform_int_distribution<int> action_dist(0, 3);

  (void)kernel->MkDir(pid, dir);
  uint64_t start = kernel->clock().now_ns();

  std::vector<std::string> pool;
  pool.reserve(config.initial_files);
  uint64_t file_counter = 0;
  auto create_file = [&]() {
    std::string path = dir + "/pm" + std::to_string(file_counter++);
    std::string content = MakeTextContent(size_dist(rng), "needle", &rng);
    stats.bytes += content.size();
    ++stats.ops;
    if (kernel->WriteFile(pid, path, content).ok()) {
      pool.push_back(path);
    } else {
      ++stats.failures;
    }
  };
  for (size_t i = 0; i < config.initial_files; ++i) {
    create_file();
  }
  for (size_t t = 0; t < config.transactions; ++t) {
    int action = action_dist(rng);
    if (pool.empty()) {
      create_file();
      continue;
    }
    std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
    size_t idx = pick(rng);
    switch (action) {
      case 0: {  // read
        auto content = kernel->ReadFile(pid, pool[idx]);
        ++stats.ops;
        if (content.ok()) {
          stats.bytes += content->size();
        } else {
          ++stats.failures;
        }
        break;
      }
      case 1: {  // append
        std::string chunk = MakeTextContent(1024, "needle", &rng);
        ++stats.ops;
        if (kernel->WriteFile(pid, pool[idx], chunk, /*append=*/true).ok()) {
          stats.bytes += chunk.size();
        } else {
          ++stats.failures;
        }
        break;
      }
      case 2: {  // delete
        ++stats.ops;
        if (kernel->Unlink(pid, pool[idx]).ok()) {
          pool[idx] = pool.back();
          pool.pop_back();
        } else {
          ++stats.failures;
        }
        break;
      }
      default:
        create_file();
        break;
    }
  }
  stats.sim_ns = kernel->clock().now_ns() - start;
  return stats;
}

WorkloadStats RunSysbench(witos::Kernel* kernel, witos::Pid pid, const std::string& dir,
                          const SysbenchConfig& config) {
  WorkloadStats stats;
  std::mt19937 rng(config.seed);

  (void)kernel->MkDir(pid, dir);
  // Prepare phase: lay out the large files (not timed, as in sysbench
  // prepare vs run).
  std::vector<std::string> files;
  for (size_t i = 0; i < config.num_files; ++i) {
    std::string path = dir + "/sb" + std::to_string(i) + ".dat";
    std::string chunk(1 << 20, 'x');
    for (size_t written = 0; written < config.file_size; written += chunk.size()) {
      (void)kernel->WriteFile(pid, path, chunk, /*append=*/true);
    }
    files.push_back(path);
  }

  // Like real sysbench fileio, files are opened once and kept open for the
  // whole run; the transaction loop is pure pread/pwrite.
  std::vector<witos::Fd> fds;
  for (const auto& path : files) {
    auto fd = kernel->Open(pid, path, witos::kOpenRead | witos::kOpenWrite);
    if (fd.ok()) {
      fds.push_back(*fd);
    }
  }
  if (fds.empty()) {
    stats.failures = config.io_ops;
    return stats;
  }

  uint64_t start = kernel->clock().now_ns();
  std::uniform_int_distribution<size_t> file_pick(0, fds.size() - 1);
  std::uniform_int_distribution<uint64_t> offset_dist(
      0, config.file_size > config.block_size ? config.file_size - config.block_size : 0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::string block(config.block_size, 'y');

  for (size_t i = 0; i < config.io_ops; ++i) {
    witos::Fd fd = fds[file_pick(rng)];
    uint64_t offset = offset_dist(rng);
    ++stats.ops;
    (void)kernel->Lseek(pid, fd, offset);
    if (coin(rng) < config.read_fraction) {
      auto data = kernel->Read(pid, fd, config.block_size);
      if (data.ok()) {
        stats.bytes += data->size();
      } else {
        ++stats.failures;
      }
    } else {
      auto written = kernel->Write(pid, fd, block);
      if (written.ok()) {
        stats.bytes += *written;
      } else {
        ++stats.failures;
      }
    }
  }
  stats.sim_ns = kernel->clock().now_ns() - start;
  for (witos::Fd fd : fds) {
    (void)kernel->Close(pid, fd);
  }
  return stats;
}

}  // namespace witload
