#include "src/nlp/lda.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace witnlp {

LdaModel::LdaModel(const Corpus* corpus, LdaOptions options)
    : corpus_(corpus), options_(options), rng_(options.seed) {}

void LdaModel::Initialize() {
  const size_t K = static_cast<size_t>(options_.num_topics);
  const size_t V = corpus_->vocab().size();
  const size_t D = corpus_->size();
  topic_word_.assign(K * V, 0);
  topic_total_.assign(K, 0);
  doc_topic_.assign(D * K, 0);
  assignments_.assign(D, {});

  std::uniform_int_distribution<int> topic_dist(0, options_.num_topics - 1);
  for (size_t d = 0; d < D; ++d) {
    const auto& words = corpus_->docs()[d].word_ids;
    assignments_[d].resize(words.size());
    for (size_t i = 0; i < words.size(); ++i) {
      int k = topic_dist(rng_);
      assignments_[d][i] = k;
      ++topic_word_[static_cast<size_t>(k) * V + static_cast<size_t>(words[i])];
      ++topic_total_[static_cast<size_t>(k)];
      ++doc_topic_[d * K + static_cast<size_t>(k)];
    }
  }
}

void LdaModel::Train() {
  Initialize();
  const size_t K = static_cast<size_t>(options_.num_topics);
  const size_t V = corpus_->vocab().size();
  const double alpha = options_.alpha;
  const double beta = options_.beta;
  const double v_beta = static_cast<double>(V) * beta;
  std::vector<double> weights(K);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (size_t d = 0; d < corpus_->size(); ++d) {
      const auto& words = corpus_->docs()[d].word_ids;
      for (size_t i = 0; i < words.size(); ++i) {
        const size_t w = static_cast<size_t>(words[i]);
        const size_t old_k = static_cast<size_t>(assignments_[d][i]);
        // Remove the token from the counts.
        --topic_word_[old_k * V + w];
        --topic_total_[old_k];
        --doc_topic_[d * K + old_k];
        // Full conditional.
        double total = 0.0;
        for (size_t k = 0; k < K; ++k) {
          double p = (static_cast<double>(topic_word_[k * V + w]) + beta) /
                     (static_cast<double>(topic_total_[k]) + v_beta) *
                     (static_cast<double>(doc_topic_[d * K + k]) + alpha);
          total += p;
          weights[k] = total;
        }
        double r = uniform(rng_) * total;
        size_t new_k =
            static_cast<size_t>(std::lower_bound(weights.begin(), weights.end(), r) -
                                weights.begin());
        if (new_k >= K) {
          new_k = K - 1;
        }
        assignments_[d][i] = static_cast<int>(new_k);
        ++topic_word_[new_k * V + w];
        ++topic_total_[new_k];
        ++doc_topic_[d * K + new_k];
      }
    }
  }
  trained_ = true;
}

double LdaModel::TopicWordProb(int topic, int word_id) const {
  assert(trained_);
  const size_t V = corpus_->vocab().size();
  const size_t k = static_cast<size_t>(topic);
  return (static_cast<double>(topic_word_[k * V + static_cast<size_t>(word_id)]) +
          options_.beta) /
         (static_cast<double>(topic_total_[k]) + static_cast<double>(V) * options_.beta);
}

std::vector<double> LdaModel::DocTopicDist(size_t doc_index) const {
  assert(trained_);
  const size_t K = static_cast<size_t>(options_.num_topics);
  std::vector<double> out(K);
  double denom = static_cast<double>(corpus_->docs()[doc_index].word_ids.size()) +
                 static_cast<double>(K) * options_.alpha;
  for (size_t k = 0; k < K; ++k) {
    out[k] = (static_cast<double>(doc_topic_[doc_index * K + k]) + options_.alpha) / denom;
  }
  return out;
}

std::vector<TopicWord> LdaModel::TopWords(int topic, size_t n) const {
  assert(trained_);
  const size_t V = corpus_->vocab().size();
  std::vector<std::pair<double, int>> scored;
  scored.reserve(V);
  for (size_t w = 0; w < V; ++w) {
    scored.emplace_back(TopicWordProb(topic, static_cast<int>(w)), static_cast<int>(w));
  }
  size_t take = std::min(n, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(take), scored.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<TopicWord> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back({corpus_->vocab().WordOf(scored[i].second), scored[i].first});
  }
  return out;
}

std::vector<double> LdaModel::InferTopics(const std::vector<int>& word_ids, int iterations,
                                          uint32_t seed) const {
  assert(trained_);
  const size_t K = static_cast<size_t>(options_.num_topics);
  const size_t V = corpus_->vocab().size();
  const double alpha = options_.alpha;
  const double beta = options_.beta;
  const double v_beta = static_cast<double>(V) * beta;

  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> topic_dist(0, options_.num_topics - 1);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  std::vector<int> local_doc_topic(K, 0);
  std::vector<int> z(word_ids.size());
  for (size_t i = 0; i < word_ids.size(); ++i) {
    z[i] = topic_dist(rng);
    ++local_doc_topic[static_cast<size_t>(z[i])];
  }
  std::vector<double> weights(K);
  for (int iter = 0; iter < iterations; ++iter) {
    for (size_t i = 0; i < word_ids.size(); ++i) {
      const size_t w = static_cast<size_t>(word_ids[i]);
      const size_t old_k = static_cast<size_t>(z[i]);
      --local_doc_topic[old_k];
      double total = 0.0;
      for (size_t k = 0; k < K; ++k) {
        // Topic-word counts stay fixed at their trained values (fold-in).
        double p = (static_cast<double>(topic_word_[k * V + w]) + beta) /
                   (static_cast<double>(topic_total_[k]) + v_beta) *
                   (static_cast<double>(local_doc_topic[k]) + alpha);
        total += p;
        weights[k] = total;
      }
      double r = uniform(rng) * total;
      size_t new_k = static_cast<size_t>(
          std::lower_bound(weights.begin(), weights.end(), r) - weights.begin());
      if (new_k >= K) {
        new_k = K - 1;
      }
      z[i] = static_cast<int>(new_k);
      ++local_doc_topic[new_k];
    }
  }
  std::vector<double> out(K);
  double denom =
      static_cast<double>(word_ids.size()) + static_cast<double>(K) * alpha;
  for (size_t k = 0; k < K; ++k) {
    out[k] = (static_cast<double>(local_doc_topic[k]) + alpha) / denom;
  }
  return out;
}

int LdaModel::MostLikelyTopic(const std::vector<int>& word_ids) const {
  std::vector<double> dist = InferTopics(word_ids);
  return static_cast<int>(std::max_element(dist.begin(), dist.end()) - dist.begin());
}

double LdaModel::LogLikelihoodPerToken() const {
  assert(trained_);
  double ll = 0.0;
  uint64_t tokens = 0;
  for (size_t d = 0; d < corpus_->size(); ++d) {
    std::vector<double> theta = DocTopicDist(d);
    for (int w : corpus_->docs()[d].word_ids) {
      double p = 0.0;
      for (int k = 0; k < options_.num_topics; ++k) {
        p += theta[static_cast<size_t>(k)] * TopicWordProb(k, w);
      }
      ll += std::log(std::max(p, 1e-300));
      ++tokens;
    }
  }
  return tokens == 0 ? 0.0 : ll / static_cast<double>(tokens);
}

}  // namespace witnlp
