// Obfuscation of confidential ticket content (paper §7.1.1): server names,
// IP addresses, project names, shared-storage paths and the like are
// replaced with angle-bracket placeholders, exactly as Table 2 shows
// (<IP>, <Server>, <VM>, <Shared Storage>, ...).

#ifndef SRC_NLP_OBFUSCATE_H_
#define SRC_NLP_OBFUSCATE_H_

#include <string>
#include <vector>

namespace witnlp {

class Obfuscator {
 public:
  // Installs the default rules: IPv4 addresses -> "<ip>", tokens with known
  // infrastructure prefixes ("srv-", "vm-", "lnx-", ...) -> their class
  // placeholder, storage paths ("/gpfs/...", "/nfs/...") -> "<sharedstorage>".
  Obfuscator();

  // Adds an organization-specific dictionary entry: any token equal to
  // `name` becomes `placeholder`.
  void AddName(const std::string& name, const std::string& placeholder);
  // Any token starting with `prefix` becomes `placeholder`.
  void AddPrefix(const std::string& prefix, const std::string& placeholder);

  // Maps one token to itself or its placeholder.
  std::string Apply(const std::string& token) const;
  std::vector<std::string> Apply(const std::vector<std::string>& tokens) const;

  // True if the token parses as a dotted IPv4 address.
  static bool LooksLikeIp(const std::string& token);

 private:
  std::vector<std::pair<std::string, std::string>> names_;
  std::vector<std::pair<std::string, std::string>> prefixes_;
};

}  // namespace witnlp

#endif  // SRC_NLP_OBFUSCATE_H_
