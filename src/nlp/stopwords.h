// Stop words plus the paper's "common words that do not add information
// (like 'hello' and 'please')".

#ifndef SRC_NLP_STOPWORDS_H_
#define SRC_NLP_STOPWORDS_H_

#include <string>
#include <unordered_set>

namespace witnlp {

// The shared stopword set (English function words + ticket pleasantries).
const std::unordered_set<std::string>& StopWords();

bool IsStopWord(const std::string& word);

}  // namespace witnlp

#endif  // SRC_NLP_STOPWORDS_H_
