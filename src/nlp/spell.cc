#include "src/nlp/spell.h"

#include <algorithm>

namespace witnlp {

int SpellCorrector::EditDistanceCapped(const std::string& a, const std::string& b) {
  const int cap = 3;
  if (std::abs(static_cast<int>(a.size()) - static_cast<int>(b.size())) >= cap) {
    return cap;
  }
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<std::vector<int>> d(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = 0; i <= n; ++i) {
    d[i][0] = static_cast<int>(i);
  }
  for (size_t j = 0; j <= m; ++j) {
    d[0][j] = static_cast<int>(j);
  }
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1, d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);  // transposition
      }
    }
  }
  return std::min(d[n][m], cap);
}

std::string SpellCorrector::Correct(const std::string& token) const {
  if (vocab_->IdOf(token) >= 0 || token.size() < 3 || token.front() == '<') {
    return token;
  }
  const std::string* best = nullptr;
  uint64_t best_count = 0;
  for (size_t id = 0; id < vocab_->size(); ++id) {
    const std::string& candidate = vocab_->WordOf(static_cast<int>(id));
    if (EditDistanceCapped(token, candidate) == 1) {
      uint64_t count = vocab_->CountOf(static_cast<int>(id));
      if (count > best_count) {
        best_count = count;
        best = &candidate;
      }
    }
  }
  return best != nullptr ? *best : token;
}

std::vector<std::string> SpellCorrector::Correct(const std::vector<std::string>& tokens) const {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& token : tokens) {
    out.push_back(Correct(token));
  }
  return out;
}

}  // namespace witnlp
