#include "src/nlp/corpus.h"

#include <cassert>

namespace witnlp {

int Vocabulary::GetOrAdd(const std::string& word) {
  auto it = ids_.find(word);
  if (it != ids_.end()) {
    return it->second;
  }
  int id = static_cast<int>(words_.size());
  ids_.emplace(word, id);
  words_.push_back(word);
  counts_.push_back(0);
  return id;
}

int Vocabulary::IdOf(const std::string& word) const {
  auto it = ids_.find(word);
  return it == ids_.end() ? -1 : it->second;
}

const std::string& Vocabulary::WordOf(int id) const {
  assert(id >= 0 && static_cast<size_t>(id) < words_.size());
  return words_[static_cast<size_t>(id)];
}

size_t Corpus::AddDocument(const std::vector<std::string>& tokens, std::string label) {
  Document doc;
  doc.id = static_cast<int>(docs_.size());
  doc.label = std::move(label);
  doc.word_ids.reserve(tokens.size());
  for (const auto& token : tokens) {
    int id = vocab_.GetOrAdd(token);
    vocab_.Bump(id);
    doc.word_ids.push_back(id);
    ++total_tokens_;
  }
  docs_.push_back(std::move(doc));
  return docs_.size() - 1;
}

std::vector<int> Corpus::ToIds(const std::vector<std::string>& tokens) const {
  std::vector<int> out;
  out.reserve(tokens.size());
  for (const auto& token : tokens) {
    int id = vocab_.IdOf(token);
    if (id >= 0) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace witnlp
