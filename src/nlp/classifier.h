// Ticket classifiers.
//
// LdaClassifier reproduces the paper's workflow: an unsupervised LDA model
// whose topics are aligned to ticket classes by majority vote over labelled
// training documents, then used to predict the class of new tickets
// ("We also predict the class of each ticket using our LDA model, after
// applying spelling correction", §7.1.3). A multinomial Naive Bayes
// classifier is provided as a supervised baseline.

#ifndef SRC_NLP_CLASSIFIER_H_
#define SRC_NLP_CLASSIFIER_H_

#include <map>
#include <string>
#include <vector>

#include "src/nlp/corpus.h"
#include "src/nlp/lda.h"

namespace witnlp {

class LdaClassifier {
 public:
  // `model` must be trained on `corpus`; both must outlive the classifier.
  // Topic -> label alignment uses the corpus's document labels. Labels that
  // end up with no aligned topic (rare classes drowned by Gibbs smoothing)
  // get a unigram likelihood-ratio rejection test: the LDA prediction is
  // overridden only when an orphan label's model clearly wins on the
  // document's words.
  LdaClassifier(const LdaModel* model, const Corpus* corpus);

  // Predicted label for a tokenized (preprocessed) ticket.
  std::string Classify(const std::vector<std::string>& tokens) const;

  // The label each topic was aligned to.
  const std::vector<std::string>& topic_labels() const { return topic_labels_; }
  const std::vector<std::string>& orphan_labels() const { return orphan_labels_; }

 private:
  double UnigramLogProb(const std::string& label, const std::vector<int>& ids) const;

  const LdaModel* model_;
  const Corpus* corpus_;
  std::vector<std::string> topic_labels_;
  std::vector<std::string> orphan_labels_;
  // Per-label unigram models (Laplace-smoothed), for the rejection test.
  std::map<std::string, std::vector<double>> label_log_prob_;
  std::map<std::string, double> label_log_prior_;
};

class NaiveBayesClassifier {
 public:
  // Trains a multinomial NB with Laplace smoothing on the labelled corpus.
  explicit NaiveBayesClassifier(const Corpus* corpus);

  std::string Classify(const std::vector<std::string>& tokens) const;
  const std::vector<std::string>& labels() const { return labels_; }

 private:
  const Corpus* corpus_;
  std::vector<std::string> labels_;
  std::map<std::string, size_t> label_index_;
  std::vector<double> log_prior_;              // per label
  std::vector<std::vector<double>> log_cond_;  // label x word
};

// Confusion-matrix style evaluation helper.
struct ClassificationReport {
  std::map<std::string, double> precision;  // per true label: correct / predicted-as
  std::map<std::string, double> recall;
  double accuracy = 0.0;
  size_t total = 0;
};

ClassificationReport EvaluateClassifier(
    const std::vector<std::pair<std::string, std::string>>& truth_vs_predicted);

}  // namespace witnlp

#endif  // SRC_NLP_CLASSIFIER_H_
