#include "src/nlp/stemmer.h"

namespace witnlp {

namespace {

// Working state over the word buffer, following Porter's original
// formulation: b is the buffer, k the offset of the last character, j the
// end of the stem during suffix matching. Indices are signed because the
// algorithm relies on j == -1 for whole-word suffixes.
class Stemmer {
 public:
  explicit Stemmer(std::string word)
      : b_(std::move(word)), k_(static_cast<int>(b_.size()) - 1) {}

  std::string Run() {
    if (b_.size() <= 2) {
      return b_;
    }
    Step1a();
    Step1b();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5a();
    Step5b();
    return b_.substr(0, static_cast<size_t>(k_ + 1));
  }

 private:
  char At(int i) const { return b_[static_cast<size_t>(i)]; }

  bool IsConsonant(int i) const {
    switch (At(i)) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // m(): the number of consonant-vowel sequences in [0, j_].
  int Measure() const {
    int n = 0;
    int i = 0;
    for (;;) {
      if (i > j_) {
        return n;
      }
      if (!IsConsonant(i)) {
        break;
      }
      ++i;
    }
    ++i;
    for (;;) {
      for (;;) {
        if (i > j_) {
          return n;
        }
        if (IsConsonant(i)) {
          break;
        }
        ++i;
      }
      ++i;
      ++n;
      for (;;) {
        if (i > j_) {
          return n;
        }
        if (!IsConsonant(i)) {
          break;
        }
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) {
        return true;
      }
    }
    return false;
  }

  bool DoubleConsonant(int i) const {
    if (i < 1) {
      return false;
    }
    return At(i) == At(i - 1) && IsConsonant(i);
  }

  // cvc(i): consonant-vowel-consonant ending at i, where the final
  // consonant is not w, x or y.
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    char ch = At(i);
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool Ends(std::string_view suffix) {
    int len = static_cast<int>(suffix.size());
    if (len > k_ + 1) {
      return false;
    }
    if (b_.compare(static_cast<size_t>(k_ + 1 - len), suffix.size(), suffix) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  // Replaces (j_, k_] with repl; assumes the buffer ends at k_.
  void SetTo(std::string_view repl) {
    b_.resize(static_cast<size_t>(k_ + 1));
    b_.replace(static_cast<size_t>(j_ + 1), static_cast<size_t>(k_ - j_), repl);
    k_ = static_cast<int>(b_.size()) - 1;
  }

  void ReplaceIfM(std::string_view suffix, std::string_view repl) {
    if (Ends(suffix) && Measure() > 0) {
      SetTo(repl);
    }
  }

  void Truncate() { b_.resize(static_cast<size_t>(k_ + 1)); }

  void Step1a() {
    if (At(k_) == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (k_ >= 1 && At(k_ - 1) != 's') {
        --k_;
      }
    }
    Truncate();
  }

  void Step1b() {
    bool cleanup = false;
    if (Ends("eed")) {
      if (Measure() > 0) {
        --k_;
      }
    } else if (Ends("ed") && VowelInStem()) {
      k_ = j_;
      cleanup = true;
    } else if (Ends("ing") && VowelInStem()) {
      k_ = j_;
      cleanup = true;
    }
    Truncate();
    if (cleanup) {
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char ch = At(k_);
        if (ch != 'l' && ch != 's' && ch != 'z') {
          --k_;
          Truncate();
        }
      } else {
        j_ = k_;
        if (Measure() == 1 && Cvc(k_)) {
          b_ += 'e';
          k_ = static_cast<int>(b_.size()) - 1;
        }
      }
    }
  }

  void Step1c() {
    if (Ends("y") && VowelInStem()) {
      b_[static_cast<size_t>(k_)] = 'i';
    }
  }

  void Step2() {
    if (k_ < 2) {
      return;
    }
    switch (At(k_ - 1)) {
      case 'a':
        ReplaceIfM("ational", "ate");
        ReplaceIfM("tional", "tion");
        break;
      case 'c':
        ReplaceIfM("enci", "ence");
        ReplaceIfM("anci", "ance");
        break;
      case 'e':
        ReplaceIfM("izer", "ize");
        break;
      case 'l':
        ReplaceIfM("abli", "able");
        ReplaceIfM("alli", "al");
        ReplaceIfM("entli", "ent");
        ReplaceIfM("eli", "e");
        ReplaceIfM("ousli", "ous");
        break;
      case 'o':
        ReplaceIfM("ization", "ize");
        ReplaceIfM("ation", "ate");
        ReplaceIfM("ator", "ate");
        break;
      case 's':
        ReplaceIfM("alism", "al");
        ReplaceIfM("iveness", "ive");
        ReplaceIfM("fulness", "ful");
        ReplaceIfM("ousness", "ous");
        break;
      case 't':
        ReplaceIfM("aliti", "al");
        ReplaceIfM("iviti", "ive");
        ReplaceIfM("biliti", "ble");
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (At(k_)) {
      case 'e':
        ReplaceIfM("icate", "ic");
        ReplaceIfM("ative", "");
        ReplaceIfM("alize", "al");
        break;
      case 'i':
        ReplaceIfM("iciti", "ic");
        break;
      case 'l':
        ReplaceIfM("ical", "ic");
        ReplaceIfM("ful", "");
        break;
      case 's':
        ReplaceIfM("ness", "");
        break;
      default:
        break;
    }
  }

  void Step4() {
    if (k_ < 2) {
      return;
    }
    bool matched = false;
    switch (At(k_ - 1)) {
      case 'a':
        matched = Ends("al");
        break;
      case 'c':
        matched = Ends("ance") || Ends("ence");
        break;
      case 'e':
        matched = Ends("er");
        break;
      case 'i':
        matched = Ends("ic");
        break;
      case 'l':
        matched = Ends("able") || Ends("ible");
        break;
      case 'n':
        matched = Ends("ant") || Ends("ement") || Ends("ment") || Ends("ent");
        break;
      case 'o':
        if (Ends("ion") && j_ >= 0 && (At(j_) == 's' || At(j_) == 't')) {
          matched = true;
        } else {
          matched = Ends("ou");
        }
        break;
      case 's':
        matched = Ends("ism");
        break;
      case 't':
        matched = Ends("ate") || Ends("iti");
        break;
      case 'u':
        matched = Ends("ous");
        break;
      case 'v':
        matched = Ends("ive");
        break;
      case 'z':
        matched = Ends("ize");
        break;
      default:
        break;
    }
    if (matched && Measure() > 1) {
      k_ = j_;
      Truncate();
    }
  }

  void Step5a() {
    j_ = k_;
    if (At(k_) == 'e') {
      int m = Measure();
      if (m > 1 || (m == 1 && !Cvc(k_ - 1))) {
        --k_;
      }
    }
    Truncate();
  }

  void Step5b() {
    j_ = k_;
    if (At(k_) == 'l' && DoubleConsonant(k_) && Measure() > 1) {
      --k_;
    }
    Truncate();
  }

  std::string b_;
  int k_ = -1;  // index of last character
  int j_ = -1;  // end of stem during suffix matching
};

}  // namespace

std::string PorterStem(std::string_view word) {
  for (char c : word) {
    if (c < 'a' || c > 'z') {
      return std::string(word);  // only pure lower-case ASCII words are stemmed
    }
  }
  return Stemmer(std::string(word)).Run();
}

}  // namespace witnlp
