// Latent Dirichlet Allocation via collapsed Gibbs sampling
// (Griffiths & Steyvers 2004), the algorithm the paper uses to cluster the
// IBM ticket corpus into ten topics (§7.1.1, Table 2).

#ifndef SRC_NLP_LDA_H_
#define SRC_NLP_LDA_H_

#include <random>
#include <string>
#include <vector>

#include "src/nlp/corpus.h"

namespace witnlp {

struct LdaOptions {
  int num_topics = 10;
  int iterations = 300;
  double alpha = 0.5;   // document-topic prior
  double beta = 0.01;   // topic-word prior
  uint32_t seed = 42;
};

struct TopicWord {
  std::string word;
  double probability = 0.0;
};

class LdaModel {
 public:
  // Trains on the corpus (which must outlive the model).
  LdaModel(const Corpus* corpus, LdaOptions options);

  void Train();

  int num_topics() const { return options_.num_topics; }

  // phi_k(w): the topic-word distribution.
  double TopicWordProb(int topic, int word_id) const;
  // theta_d(k): the per-training-document topic distribution.
  std::vector<double> DocTopicDist(size_t doc_index) const;

  // Top `n` words of a topic, by probability.
  std::vector<TopicWord> TopWords(int topic, size_t n) const;

  // Folds in an unseen document (fixed topic-word counts) and returns its
  // topic distribution.
  std::vector<double> InferTopics(const std::vector<int>& word_ids, int iterations = 50,
                                  uint32_t seed = 7) const;
  // Argmax of InferTopics.
  int MostLikelyTopic(const std::vector<int>& word_ids) const;

  // Average per-token log likelihood — decreases in perplexity indicate the
  // sampler converged.
  double LogLikelihoodPerToken() const;

 private:
  void Initialize();
  int SampleTopic(int doc, int word, int old_topic, std::mt19937& rng,
                  std::vector<double>* weights) const;

  const Corpus* corpus_;
  LdaOptions options_;
  std::mt19937 rng_;

  // Count matrices (flattened), following Gibbs-LDA conventions.
  std::vector<int> topic_word_;   // K x V: n_{k,w}
  std::vector<int> topic_total_;  // K:     n_k
  std::vector<int> doc_topic_;    // D x K: n_{d,k}
  std::vector<std::vector<int>> assignments_;  // z for every token
  bool trained_ = false;
};

}  // namespace witnlp

#endif  // SRC_NLP_LDA_H_
