// The Porter stemming algorithm (Porter, 1980), implemented in full:
// steps 1a, 1b (+cleanup), 1c, 2, 3, 4, 5a, 5b.

#ifndef SRC_NLP_STEMMER_H_
#define SRC_NLP_STEMMER_H_

#include <string>
#include <string_view>

namespace witnlp {

// Returns the Porter stem of a lower-case ASCII word. Words shorter than
// three characters are returned unchanged.
std::string PorterStem(std::string_view word);

}  // namespace witnlp

#endif  // SRC_NLP_STEMMER_H_
