#include "src/nlp/classifier.h"

#include <algorithm>
#include <cmath>

namespace witnlp {

LdaClassifier::LdaClassifier(const LdaModel* model, const Corpus* corpus)
    : model_(model), corpus_(corpus) {
  // Align each topic with the majority label among training documents whose
  // most probable topic it is.
  std::vector<std::map<std::string, int>> votes(
      static_cast<size_t>(model_->num_topics()));
  for (size_t d = 0; d < corpus_->size(); ++d) {
    const Document& doc = corpus_->docs()[d];
    if (doc.label.empty()) {
      continue;
    }
    std::vector<double> theta = model_->DocTopicDist(d);
    size_t top = static_cast<size_t>(
        std::max_element(theta.begin(), theta.end()) - theta.begin());
    ++votes[top][doc.label];
  }
  topic_labels_.resize(votes.size());
  for (size_t k = 0; k < votes.size(); ++k) {
    int best = -1;
    for (const auto& [label, count] : votes[k]) {
      if (count > best) {
        best = count;
        topic_labels_[k] = label;
      }
    }
    if (topic_labels_[k].empty()) {
      topic_labels_[k] = "other";
    }
  }

  // Build unigram models per label and collect orphan labels.
  const size_t V = corpus_->vocab().size();
  std::map<std::string, std::vector<uint64_t>> word_counts;
  std::map<std::string, uint64_t> token_totals;
  std::map<std::string, uint64_t> doc_counts;
  uint64_t total_docs = 0;
  for (const auto& doc : corpus_->docs()) {
    if (doc.label.empty()) {
      continue;
    }
    auto& counts = word_counts[doc.label];
    counts.resize(V, 0);
    for (int w : doc.word_ids) {
      ++counts[static_cast<size_t>(w)];
      ++token_totals[doc.label];
    }
    ++doc_counts[doc.label];
    ++total_docs;
  }
  for (auto& [label, counts] : word_counts) {
    counts.resize(V, 0);
    std::vector<double> log_probs(V);
    double denom = static_cast<double>(token_totals[label]) + static_cast<double>(V);
    for (size_t w = 0; w < V; ++w) {
      log_probs[w] = std::log((static_cast<double>(counts[w]) + 1.0) / denom);
    }
    label_log_prob_[label] = std::move(log_probs);
    label_log_prior_[label] = std::log(static_cast<double>(doc_counts[label]) /
                                       static_cast<double>(std::max<uint64_t>(total_docs, 1)));
    if (std::find(topic_labels_.begin(), topic_labels_.end(), label) == topic_labels_.end()) {
      orphan_labels_.push_back(label);
    }
  }
}

double LdaClassifier::UnigramLogProb(const std::string& label,
                                     const std::vector<int>& ids) const {
  auto prob_it = label_log_prob_.find(label);
  auto prior_it = label_log_prior_.find(label);
  if (prob_it == label_log_prob_.end() || prior_it == label_log_prior_.end()) {
    return -1e300;
  }
  double score = prior_it->second;
  for (int w : ids) {
    score += prob_it->second[static_cast<size_t>(w)];
  }
  return score;
}

std::string LdaClassifier::Classify(const std::vector<std::string>& tokens) const {
  std::vector<int> ids = corpus_->ToIds(tokens);
  if (ids.empty()) {
    return "other";
  }
  int topic = model_->MostLikelyTopic(ids);
  std::string label = topic_labels_[static_cast<size_t>(topic)];
  if (!orphan_labels_.empty()) {
    double lda_label_score = UnigramLogProb(label, ids);
    for (const auto& orphan : orphan_labels_) {
      if (UnigramLogProb(orphan, ids) > lda_label_score) {
        label = orphan;
        lda_label_score = UnigramLogProb(orphan, ids);
      }
    }
  }
  return label;
}

NaiveBayesClassifier::NaiveBayesClassifier(const Corpus* corpus) : corpus_(corpus) {
  const size_t V = corpus_->vocab().size();
  // Collect labels.
  for (const auto& doc : corpus_->docs()) {
    if (doc.label.empty()) {
      continue;
    }
    if (label_index_.emplace(doc.label, labels_.size()).second) {
      labels_.push_back(doc.label);
    }
  }
  const size_t L = labels_.size();
  std::vector<uint64_t> doc_counts(L, 0);
  std::vector<std::vector<uint64_t>> word_counts(L, std::vector<uint64_t>(V, 0));
  std::vector<uint64_t> token_totals(L, 0);
  uint64_t total_docs = 0;
  for (const auto& doc : corpus_->docs()) {
    if (doc.label.empty()) {
      continue;
    }
    size_t l = label_index_.at(doc.label);
    ++doc_counts[l];
    ++total_docs;
    for (int w : doc.word_ids) {
      ++word_counts[l][static_cast<size_t>(w)];
      ++token_totals[l];
    }
  }
  log_prior_.resize(L);
  log_cond_.assign(L, std::vector<double>(V));
  for (size_t l = 0; l < L; ++l) {
    log_prior_[l] = std::log(static_cast<double>(doc_counts[l]) /
                             static_cast<double>(std::max<uint64_t>(total_docs, 1)));
    double denom = static_cast<double>(token_totals[l]) + static_cast<double>(V);
    for (size_t w = 0; w < V; ++w) {
      log_cond_[l][w] = std::log((static_cast<double>(word_counts[l][w]) + 1.0) / denom);
    }
  }
}

std::string NaiveBayesClassifier::Classify(const std::vector<std::string>& tokens) const {
  if (labels_.empty()) {
    return "other";
  }
  std::vector<int> ids = corpus_->ToIds(tokens);
  size_t best = 0;
  double best_score = -1e300;
  for (size_t l = 0; l < labels_.size(); ++l) {
    double score = log_prior_[l];
    for (int w : ids) {
      score += log_cond_[l][static_cast<size_t>(w)];
    }
    if (score > best_score) {
      best_score = score;
      best = l;
    }
  }
  return labels_[best];
}

ClassificationReport EvaluateClassifier(
    const std::vector<std::pair<std::string, std::string>>& truth_vs_predicted) {
  ClassificationReport report;
  report.total = truth_vs_predicted.size();
  std::map<std::string, size_t> truth_count;
  std::map<std::string, size_t> predicted_count;
  std::map<std::string, size_t> correct_count;
  size_t correct = 0;
  for (const auto& [truth, predicted] : truth_vs_predicted) {
    ++truth_count[truth];
    ++predicted_count[predicted];
    if (truth == predicted) {
      ++correct_count[truth];
      ++correct;
    }
  }
  for (const auto& [label, n] : truth_count) {
    size_t tp = correct_count.count(label) != 0 ? correct_count[label] : 0;
    size_t pred = predicted_count.count(label) != 0 ? predicted_count[label] : 0;
    report.precision[label] =
        pred == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(pred);
    report.recall[label] = static_cast<double>(tp) / static_cast<double>(n);
  }
  report.accuracy =
      report.total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(report.total);
  return report;
}

}  // namespace witnlp
