// Spelling correction against a vocabulary (the paper applies spelling
// correction before classifying evaluation tickets, §7.1.3).
//
// Norvig-style: a token absent from the vocabulary is replaced with the
// most frequent vocabulary word within edit distance one (insert, delete,
// substitute, transpose); unknown tokens with no close match pass through.

#ifndef SRC_NLP_SPELL_H_
#define SRC_NLP_SPELL_H_

#include <string>
#include <vector>

#include "src/nlp/corpus.h"

namespace witnlp {

class SpellCorrector {
 public:
  // `vocab` must outlive the corrector.
  explicit SpellCorrector(const Vocabulary* vocab) : vocab_(vocab) {}

  std::string Correct(const std::string& token) const;
  std::vector<std::string> Correct(const std::vector<std::string>& tokens) const;

  // Damerau-Levenshtein distance capped at 2 (returns 3 for anything more).
  static int EditDistanceCapped(const std::string& a, const std::string& b);

 private:
  const Vocabulary* vocab_;
};

}  // namespace witnlp

#endif  // SRC_NLP_SPELL_H_
