// Vocabulary and document corpus containers for topic modelling.

#ifndef SRC_NLP_CORPUS_H_
#define SRC_NLP_CORPUS_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace witnlp {

class Vocabulary {
 public:
  // Returns the id, adding the word if new.
  int GetOrAdd(const std::string& word);
  // Returns the id or -1.
  int IdOf(const std::string& word) const;
  const std::string& WordOf(int id) const;
  size_t size() const { return words_.size(); }
  // Total corpus-wide occurrences of the word (maintained by Corpus).
  uint64_t CountOf(int id) const { return counts_[static_cast<size_t>(id)]; }
  void Bump(int id) { ++counts_[static_cast<size_t>(id)]; }

  const std::vector<std::string>& words() const { return words_; }

 private:
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> words_;
  std::vector<uint64_t> counts_;
};

struct Document {
  std::vector<int> word_ids;
  std::string label;  // ground-truth class, empty when unknown
  int id = 0;
};

class Corpus {
 public:
  Vocabulary& vocab() { return vocab_; }
  const Vocabulary& vocab() const { return vocab_; }

  // Adds a tokenized document; returns its index.
  size_t AddDocument(const std::vector<std::string>& tokens, std::string label = "");

  // Translates tokens against the existing vocabulary, dropping unknown
  // words (for held-out / inference documents).
  std::vector<int> ToIds(const std::vector<std::string>& tokens) const;

  const std::vector<Document>& docs() const { return docs_; }
  size_t size() const { return docs_.size(); }
  uint64_t total_tokens() const { return total_tokens_; }

 private:
  Vocabulary vocab_;
  std::vector<Document> docs_;
  uint64_t total_tokens_ = 0;
};

}  // namespace witnlp

#endif  // SRC_NLP_CORPUS_H_
