// Tokenization and the text preprocessing pipeline used on IT tickets
// (paper §7.1.1: "word stemming, stop word removal, deletion of common words
// that do not add information, and obfuscation of confidential information").

#ifndef SRC_NLP_TEXT_H_
#define SRC_NLP_TEXT_H_

#include <string>
#include <string_view>
#include <vector>

namespace witnlp {

// Lower-cases and splits on non-token characters. Tokens keep internal
// '-', '.', '_' and digits so that "srv-042", "10.0.3.7" and "matlab2016"
// survive as single tokens for the obfuscator.
std::vector<std::string> Tokenize(std::string_view text);

// Composable preprocessing: tokenize -> obfuscate -> stopword-filter -> stem.
class TextPipeline {
 public:
  struct Options {
    bool stem = true;
    bool remove_stopwords = true;
    bool obfuscate = true;
  };

  TextPipeline() : TextPipeline(Options()) {}
  explicit TextPipeline(Options options);

  std::vector<std::string> Process(std::string_view text) const;

 private:
  Options options_;
};

}  // namespace witnlp

#endif  // SRC_NLP_TEXT_H_
