#include "src/nlp/stopwords.h"

namespace witnlp {

const std::unordered_set<std::string>& StopWords() {
  static const std::unordered_set<std::string> kWords = {
      // English function words.
      "a", "about", "after", "again", "all", "also", "am", "an", "and", "any", "are", "as",
      "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
      "by", "can", "cannot", "could", "did", "do", "does", "doing", "down", "during", "each",
      "few", "for", "from", "further", "get", "got", "had", "has", "have", "having", "he",
      "her", "here", "hers", "him", "his", "how", "i", "if", "in", "into", "is", "it", "its",
      "just", "me", "more", "most", "my", "no", "nor", "not", "now", "of", "off", "on",
      "once", "only", "or", "other", "our", "out", "over", "own", "same", "she", "should",
      "so", "some", "still", "such", "than", "that", "the", "their", "them", "then", "there",
      "these", "they", "this", "those", "through", "to", "too", "under", "until", "up",
      "very", "was", "we", "were", "what", "when", "where", "which", "while", "who", "whom",
      "why", "will", "with", "would", "you", "your", "yours",
      // Ticket pleasantries that carry no signal (paper §7.1.1).
      "hello", "hi", "hey", "please", "thanks", "thank", "regards", "dear", "kindly", "asap",
      "urgent", "help", "issue", "problem", "need", "needs", "trying", "tried", "seems",
      "unable", "something", "someone", "anyone",
  };
  return kWords;
}

bool IsStopWord(const std::string& word) { return StopWords().count(word) > 0; }

}  // namespace witnlp
