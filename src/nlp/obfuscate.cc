#include "src/nlp/obfuscate.h"

#include <cctype>

namespace witnlp {

Obfuscator::Obfuscator() {
  AddPrefix("srv-", "<server>");
  AddPrefix("server-", "<server>");
  AddPrefix("lnx-", "<server>");
  AddPrefix("vm-", "<vm>");
  AddPrefix("proj-", "<project>");
  AddPrefix("/gpfs", "<sharedstorage>");
  AddPrefix("/nfs", "<sharedstorage>");
  AddPrefix("/shared", "<sharedstorage>");
}

void Obfuscator::AddName(const std::string& name, const std::string& placeholder) {
  names_.emplace_back(name, placeholder);
}

void Obfuscator::AddPrefix(const std::string& prefix, const std::string& placeholder) {
  prefixes_.emplace_back(prefix, placeholder);
}

bool Obfuscator::LooksLikeIp(const std::string& token) {
  int dots = 0;
  int digits_in_part = 0;
  for (char c : token) {
    if (c == '.') {
      if (digits_in_part == 0) {
        return false;
      }
      ++dots;
      digits_in_part = 0;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      if (++digits_in_part > 3) {
        return false;
      }
    } else {
      return false;
    }
  }
  return dots == 3 && digits_in_part > 0;
}

std::string Obfuscator::Apply(const std::string& token) const {
  if (LooksLikeIp(token)) {
    return "<ip>";
  }
  for (const auto& [name, placeholder] : names_) {
    if (token == name) {
      return placeholder;
    }
  }
  for (const auto& [prefix, placeholder] : prefixes_) {
    if (token.size() >= prefix.size() && token.compare(0, prefix.size(), prefix) == 0) {
      return placeholder;
    }
  }
  return token;
}

std::vector<std::string> Obfuscator::Apply(const std::vector<std::string>& tokens) const {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& token : tokens) {
    out.push_back(Apply(token));
  }
  return out;
}

}  // namespace witnlp
