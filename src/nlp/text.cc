#include "src/nlp/text.h"

#include <cctype>

#include "src/nlp/obfuscate.h"
#include "src/nlp/stemmer.h"
#include "src/nlp/stopwords.h"

namespace witnlp {

namespace {

bool IsTokenChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) != 0 || c == '-' || c == '.' || c == '_' || c == '/' || c == '<' ||
         c == '>';
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    if (IsTokenChar(c)) {
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!cur.empty()) {
      // Strip trailing sentence punctuation that survived ('.', '-').
      while (!cur.empty() && (cur.back() == '.' || cur.back() == '-')) {
        cur.pop_back();
      }
      if (!cur.empty()) {
        tokens.push_back(std::move(cur));
      }
      cur.clear();
    }
  }
  if (!cur.empty()) {
    while (!cur.empty() && (cur.back() == '.' || cur.back() == '-')) {
      cur.pop_back();
    }
    if (!cur.empty()) {
      tokens.push_back(std::move(cur));
    }
  }
  return tokens;
}

TextPipeline::TextPipeline(Options options) : options_(options) {}

std::vector<std::string> TextPipeline::Process(std::string_view text) const {
  static const Obfuscator kObfuscator;
  std::vector<std::string> tokens = Tokenize(text);
  if (options_.obfuscate) {
    tokens = kObfuscator.Apply(tokens);
  }
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (auto& token : tokens) {
    if (options_.remove_stopwords && IsStopWord(token)) {
      continue;
    }
    if (token.size() < 2) {
      continue;
    }
    if (options_.stem && token.front() != '<') {
      out.push_back(PorterStem(token));
    } else {
      out.push_back(std::move(token));
    }
  }
  return out;
}

}  // namespace witnlp
