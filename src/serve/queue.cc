#include "src/serve/queue.h"

#include <algorithm>
#include <chrono>

namespace witserve {

TicketQueue::TicketQueue(Options options)
    : mu_(options.lock_name.empty() ? "serve.queue" : options.lock_name) {
  size_t capacity = std::max<size_t>(options.capacity, 1);
  high_ = options.high_watermark == 0 ? capacity : std::min(options.high_watermark, capacity);
  high_ = std::max<size_t>(high_, 1);
  low_ = options.low_watermark == 0 ? high_ / 2 : options.low_watermark;
  low_ = std::min(low_, high_ - 1);  // must sit strictly below high to damp flapping
}

witos::Status TicketQueue::TryPush(ServeJob job) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  if (closed_) {
    return witos::Err::kPipe;
  }
  if (!admitting_ && jobs_.size() <= low_) {
    admitting_ = true;  // drained past the low watermark: reopen
  }
  if (admitting_ && jobs_.size() >= high_) {
    admitting_ = false;  // reached the high watermark: close
  }
  if (!admitting_) {
    ++rejected_;
    return witos::Err::kBusy;
  }
  jobs_.push_back(std::move(job));
  ++accepted_;
  peak_ = std::max(peak_, jobs_.size());
  cv_.notify_one();
  return witos::Status::Ok();
}

void TicketQueue::PushReady(ServeJob job) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  jobs_.push_back(std::move(job));
  peak_ = std::max(peak_, jobs_.size());
  cv_.notify_one();
}

bool TicketQueue::TryPop(ServeJob* out) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  if (jobs_.empty()) {
    return false;
  }
  *out = std::move(jobs_.front());
  jobs_.pop_front();
  return true;
}

bool TicketQueue::TrySteal(ServeJob* out) {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  if (jobs_.empty()) {
    return false;
  }
  *out = std::move(jobs_.back());
  jobs_.pop_back();
  return true;
}

bool TicketQueue::WaitPopFor(ServeJob* out, uint64_t timeout_us) {
  std::unique_lock<witobs::ProfiledMutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
               [this] { return !jobs_.empty() || closed_; });
  if (jobs_.empty()) {
    return false;
  }
  *out = std::move(jobs_.front());
  jobs_.pop_front();
  return true;
}

void TicketQueue::Close() {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool TicketQueue::closed() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return closed_;
}

size_t TicketQueue::depth() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return jobs_.size();
}

size_t TicketQueue::peak_depth() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return peak_;
}

bool TicketQueue::admitting() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return admitting_;
}

uint64_t TicketQueue::accepted() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return accepted_;
}

uint64_t TicketQueue::rejected() const {
  std::lock_guard<witobs::ProfiledMutex> lock(mu_);
  return rejected_;
}

}  // namespace witserve
