// witserve: the concurrent ticket-serving engine (queue half).
//
// TicketQueue is a bounded MPMC queue with explicit admission control. The
// paper's framework fronts a whole organization's helpdesk (§3.1), and an
// organization under incident load will file tickets faster than containers
// can be deployed; an unbounded queue would turn that into unbounded memory
// and unbounded latency. Instead the queue applies backpressure the way a
// production intake tier does: once depth reaches the high watermark,
// admission closes and TryPush fails fast with EBUSY ("call back later" —
// the caller sees the overload instead of a growing black hole), and it
// reopens only after workers drain the backlog to the low watermark, so the
// system does not flap open/closed on every pop at the boundary.
//
// Pop discipline: the owning worker pops FIFO from the front (oldest ticket
// first — end-to-end latency fairness); thieves steal LIFO from the back
// (least disruptive to the owner's cache of recently bound machines, the
// classic work-stealing-deque split).

#ifndef SRC_SERVE_QUEUE_H_
#define SRC_SERVE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/os/result.h"
#include "src/workload/ticket_gen.h"

namespace witserve {

// Deploy-in-flight continuation state, owned by ServerPool (pool.h).
struct PendingServe;

// One unit of serving work: a generated ticket plus its routing and the
// wall-clock instant it was admitted (for end-to-end latency accounting).
// A job travels through the queue up to twice: once fresh (pending ==
// null), and — in pipelined-deploy mode — once more as a "ready" job
// carrying the finished deployments to resume with.
struct ServeJob {
  witload::GeneratedTicket ticket;
  std::string target_machine;
  std::string user_machine;  // T-9 dual deployment; empty otherwise
  uint64_t submit_ns = 0;
  // Span-context handoff (DESIGN.md §13): stamped when the job's root span
  // opens, carried through PushReady so the worker that pops the ready job
  // continues the same ticket's timeline on its own thread.
  witobs::SpanContext trace;
  // When the job last entered a queue — lets the popping worker synthesize
  // a queue-wait span covering the hop.
  uint64_t enqueue_ns = 0;
  std::shared_ptr<PendingServe> pending;
};

class TicketQueue {
 public:
  struct Options {
    // Hard bound on queued jobs; also the default high watermark.
    size_t capacity = 1024;
    // Admission closes when depth reaches this (0 = capacity).
    size_t high_watermark = 0;
    // ... and reopens once depth has drained to this (0 = high / 2).
    size_t low_watermark = 0;
    // Contention-profile label for the queue's lock ("" = "serve.queue");
    // ServerPool names each shard's queue "serve.queue.<shard>".
    std::string lock_name;
  };

  TicketQueue() : TicketQueue(Options()) {}
  explicit TicketQueue(Options options);

  // EBUSY while admission is closed (overload), EPIPE after Close().
  witos::Status TryPush(ServeJob job);

  // Re-admits a job whose deploys just completed. Ready jobs bypass both
  // admission control and the closed state: they were admitted once already,
  // and a pool draining towards shutdown must still finish them.
  void PushReady(ServeJob job);

  // Owner pop: oldest job, non-blocking.
  bool TryPop(ServeJob* out);
  // Thief pop: newest job, non-blocking.
  bool TrySteal(ServeJob* out);
  // Owner pop that blocks up to `timeout_us` for work. False on timeout or
  // when the queue is closed and empty.
  bool WaitPopFor(ServeJob* out, uint64_t timeout_us);

  // Closing wakes all waiters; queued jobs may still be popped.
  void Close();
  bool closed() const;

  size_t depth() const;
  size_t peak_depth() const;
  bool admitting() const;
  uint64_t accepted() const;
  uint64_t rejected() const;

  size_t high_watermark() const { return high_; }
  size_t low_watermark() const { return low_; }

  // Attaches the queue lock to the contention profile under the configured
  // lock name (watchit_lock_{wait,hold}_ns{lock="serve.queue.<shard>"}).
  void EnableLockMetrics(witobs::MetricsRegistry* registry) { mu_.EnableMetrics(registry); }

 private:
  size_t high_ = 0;
  size_t low_ = 0;
  // ProfiledMutex + condition_variable_any so the cv reacquisition after a
  // wait is charged as lock wait like any other acquisition.
  mutable witobs::ProfiledMutex mu_;
  std::condition_variable_any cv_;
  std::deque<ServeJob> jobs_;
  bool closed_ = false;
  bool admitting_ = true;
  size_t peak_ = 0;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace witserve

#endif  // SRC_SERVE_QUEUE_H_
