#include "src/serve/pool.h"

#include <time.h>

#include <algorithm>
#include <chrono>

#include "src/core/cluster.h"
#include "src/os/kernel.h"

namespace witserve {

namespace {

// CPU time consumed by the calling thread. Unlike wall time this does not
// advance while the thread is descheduled, so per-shard busy sums stay
// meaningful even when the host has fewer cores than workers.
uint64_t ThreadCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull + static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

ServerPool::ServerPool(watchit::Cluster* cluster, watchit::ItFramework* framework,
                       watchit::Dispatcher* dispatcher, Options options)
    : cluster_(cluster), dispatcher_(dispatcher), options_(options) {
  options_.workers = std::max<size_t>(options_.workers, 1);
  for (size_t i = 0; i < options_.workers; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->queue = std::make_unique<TicketQueue>(options_.queue);
    shards_.push_back(std::move(shard));
    workflows_.push_back(
        std::make_unique<watchit::TicketWorkflow>(cluster, framework, dispatcher));
  }
  // Round-robin machine partition: machine i belongs to shard i % workers.
  for (size_t i = 0; i < cluster->size(); ++i) {
    watchit::Machine* machine = &cluster->machine(i);
    size_t shard = i % options_.workers;
    shards_[shard]->machines.push_back(machine);
    shard_of_.emplace(machine->name(), shard);
  }
}

ServerPool::~ServerPool() { Stop(); }

void ServerPool::EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer) {
  metrics_ = registry;
  for (auto& workflow : workflows_) {
    workflow->EnableMetrics(registry, tracer);
  }
  if (registry == nullptr) {
    return;
  }
  registry->SetHelp("watchit_serve_e2e_latency_ns",
                    "Wall-clock submit-to-finish latency per served ticket");
  registry->SetHelp("watchit_serve_tickets_total", "Serving outcomes at the pool level");
  registry->SetHelp("watchit_serve_steals_total",
                    "Jobs executed by a worker that does not own the shard");
  registry->SetHelp("watchit_serve_queue_depth", "Jobs queued per shard right now");
  latency_hist_ = registry->GetHistogram("watchit_serve_e2e_latency_ns");
  served_counter_ = registry->GetCounter("watchit_serve_tickets_total", {{"outcome", "ok"}});
  failed_counter_ = registry->GetCounter("watchit_serve_tickets_total", {{"outcome", "error"}});
  rejected_counter_ =
      registry->GetCounter("watchit_serve_tickets_total", {{"outcome", "rejected"}});
  steals_counter_ = registry->GetCounter("watchit_serve_steals_total");
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->depth_gauge =
        registry->GetGauge("watchit_serve_queue_depth", {{"shard", std::to_string(i)}});
  }
}

void ServerPool::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  threads_.reserve(shards_.size());
  for (size_t w = 0; w < shards_.size(); ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

witos::Status ServerPool::Submit(const witload::GeneratedTicket& ticket,
                                 const std::string& target_machine,
                                 const std::string& user_machine) {
  auto it = shard_of_.find(target_machine);
  if (it == shard_of_.end()) {
    return witos::Err::kHostUnreach;
  }
  if (!user_machine.empty() && user_machine != target_machine) {
    auto user_it = shard_of_.find(user_machine);
    if (user_it == shard_of_.end()) {
      return witos::Err::kHostUnreach;
    }
    if (user_it->second != it->second) {
      return witos::Err::kXdev;  // cross-shard job would break shard ownership
    }
  }
  Shard& shard = *shards_[it->second];
  ServeJob job;
  job.ticket = ticket;
  job.target_machine = target_machine;
  job.user_machine = user_machine;
  job.submit_ns = witobs::MonotonicNowNs();
  witos::Status pushed = shard.queue->TryPush(std::move(job));
  if (!pushed.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (rejected_counter_ != nullptr) {
      rejected_counter_->Increment();
    }
    return pushed;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (shard.depth_gauge != nullptr) {
    shard.depth_gauge->Set(static_cast<int64_t>(shard.queue->depth()));
  }
  return witos::Status::Ok();
}

void ServerPool::WorkerLoop(size_t worker) {
  Shard& own = *shards_[worker];
  ServeJob job;
  for (;;) {
    if (own.queue->TryPop(&job)) {
      ProcessJob(worker, worker, std::move(job));
      continue;
    }
    if (options_.steal && shards_.size() > 1) {
      bool stole = false;
      for (size_t i = 1; i < shards_.size(); ++i) {
        size_t victim = (worker + i) % shards_.size();
        if (shards_[victim]->queue->TrySteal(&job)) {
          ProcessJob(worker, victim, std::move(job));
          stole = true;
          break;
        }
      }
      if (stole) {
        continue;
      }
    }
    if (own.queue->WaitPopFor(&job, options_.idle_wait_us)) {
      ProcessJob(worker, worker, std::move(job));
      continue;
    }
    if (AllQueuesDrainedAndClosed()) {
      return;
    }
  }
}

void ServerPool::ProcessJob(size_t worker, size_t shard_index, ServeJob job) {
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (watchit::Machine* machine : shard.machines) {
      machine->kernel().clock().BindOwner();
    }
    uint64_t cpu_start = ThreadCpuNs();
    witos::Result<watchit::ResolvedTicket> result =
        workflows_[worker]->Process(job.ticket, job.target_machine, job.user_machine);
    shard.busy_cpu_ns.fetch_add(ThreadCpuNs() - cpu_start, std::memory_order_relaxed);
    for (watchit::Machine* machine : shard.machines) {
      machine->kernel().clock().ReleaseOwner();
    }
    if (result.ok()) {
      served_.fetch_add(1, std::memory_order_relaxed);
      if (served_counter_ != nullptr) {
        served_counter_->Increment();
      }
      if (callback_) {
        callback_(*result);
      }
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (failed_counter_ != nullptr) {
        failed_counter_->Increment();
      }
    }
  }
  if (worker != shard_index) {
    stolen_.fetch_add(1, std::memory_order_relaxed);
    if (steals_counter_ != nullptr) {
      steals_counter_->Increment();
    }
  }
  if (latency_hist_ != nullptr) {
    latency_hist_->Observe(witobs::MonotonicNowNs() - job.submit_ns);
  }
  if (shard.depth_gauge != nullptr) {
    shard.depth_gauge->Set(static_cast<int64_t>(shard.queue->depth()));
  }
  finished_.fetch_add(1, std::memory_order_relaxed);
}

bool ServerPool::AllQueuesDrainedAndClosed() const {
  for (const auto& shard : shards_) {
    if (!shard->queue->closed() || shard->queue->depth() != 0) {
      return false;
    }
  }
  // Queues can only be closed by Stop(), so no new submissions can race
  // this check; in-flight jobs are finished by the workers themselves.
  return true;
}

void ServerPool::Drain() {
  while (finished_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void ServerPool::Stop() {
  if (!started_) {
    return;
  }
  for (auto& shard : shards_) {
    shard->queue->Close();
  }
  for (auto& thread : threads_) {
    thread.join();
  }
  threads_.clear();
  started_ = false;
}

std::vector<std::string> ServerPool::MachineNames() const {
  std::vector<std::string> names;
  names.reserve(cluster_->size());
  for (size_t i = 0; i < cluster_->size(); ++i) {
    names.push_back(cluster_->machine(i).name());
  }
  return names;
}

size_t ServerPool::ShardOf(const std::string& machine) const {
  auto it = shard_of_.find(machine);
  return it == shard_of_.end() ? shards_.size() : it->second;
}

std::string ServerPool::PeerInShard(const std::string& machine) const {
  auto it = shard_of_.find(machine);
  if (it == shard_of_.end()) {
    return "";
  }
  for (watchit::Machine* candidate : shards_[it->second]->machines) {
    if (candidate->name() != machine) {
      return candidate->name();
    }
  }
  return machine;
}

ServerPool::Stats ServerPool::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.served = served_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.stolen = stolen_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    uint64_t busy = shard->busy_cpu_ns.load(std::memory_order_relaxed);
    stats.shard_busy_cpu_ns.push_back(busy);
    stats.total_busy_cpu_ns += busy;
    stats.max_shard_busy_cpu_ns = std::max(stats.max_shard_busy_cpu_ns, busy);
    stats.peak_queue_depth = std::max(stats.peak_queue_depth, shard->queue->peak_depth());
    for (watchit::Machine* machine : shard->machines) {
      const witos::SimClock& clock = machine->kernel().clock();
      stats.clock_ownership_violations += clock.ownership_violations();
      stats.clock_resume_underflows += clock.resume_underflows();
    }
  }
  return stats;
}

}  // namespace witserve
