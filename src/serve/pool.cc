#include "src/serve/pool.h"

#include <time.h>

#include <algorithm>
#include <chrono>

#include "src/core/cluster.h"
#include "src/os/kernel.h"

namespace witserve {

namespace {

// CPU time consumed by the calling thread. Unlike wall time this does not
// advance while the thread is descheduled, so per-shard busy sums stay
// meaningful even when the host has fewer cores than workers.
uint64_t ThreadCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull + static_cast<uint64_t>(ts.tv_nsec);
}

// Synthesized stage span: an interval measured by hand (queue wait, deploy
// in-flight) rather than by an RAII scope, recorded under the ticket's
// correlation id so the cross-thread timeline tiles submit→finish.
void RecordStageSpan(witobs::Tracer* tracer, const char* name, const std::string& ticket_id,
                     uint64_t start_ns, uint64_t end_ns) {
  if (tracer == nullptr || end_ns < start_ns || start_ns == 0) {
    return;
  }
  witobs::SpanRecord record;
  record.name = name;
  record.correlation_id = ticket_id;
  record.start_ns = start_ns;
  record.duration_ns = end_ns - start_ns;
  tracer->RecordSpan(std::move(record));
}

}  // namespace

ServerPool::ServerPool(watchit::Cluster* cluster, watchit::ItFramework* framework,
                       watchit::Dispatcher* dispatcher, Options options)
    : cluster_(cluster), dispatcher_(dispatcher), options_(options), manager_(cluster) {
  options_.workers = std::max<size_t>(options_.workers, 1);
  for (size_t i = 0; i < options_.workers; ++i) {
    auto shard = std::make_unique<Shard>();
    TicketQueue::Options queue_options = options_.queue;
    if (queue_options.lock_name.empty()) {
      queue_options.lock_name = "serve.queue." + std::to_string(i);
    }
    shard->queue = std::make_unique<TicketQueue>(queue_options);
    shards_.push_back(std::move(shard));
    workflows_.push_back(
        std::make_unique<watchit::TicketWorkflow>(cluster, framework, dispatcher));
  }
  // Round-robin machine partition: machine i belongs to shard i % workers.
  for (size_t i = 0; i < cluster->size(); ++i) {
    watchit::Machine* machine = &cluster->machine(i);
    size_t shard = i % options_.workers;
    shards_[shard]->machines.push_back(machine);
    shard_of_.emplace(machine->name(), shard);
  }
  pipeline_ = std::make_unique<watchit::DeployPipeline>(cluster, options_.deploy);
}

ServerPool::~ServerPool() { Stop(); }

void ServerPool::EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer) {
  metrics_ = registry;
  tracer_ = tracer;
  for (auto& workflow : workflows_) {
    workflow->EnableMetrics(registry, tracer);
  }
  if (registry == nullptr) {
    return;
  }
  pipeline_->EnableMetrics(registry, tracer);
  dispatcher_->EnableLockMetrics(registry);
  cluster_->ca().EnableLockMetrics(registry);
  for (auto& shard : shards_) {
    shard->queue->EnableLockMetrics(registry);
  }
  registry->SetHelp("watchit_serve_e2e_latency_ns",
                    "Wall-clock submit-to-finish latency per served ticket");
  registry->SetHelp("watchit_serve_stage_latency_ns",
                    "Wall-clock latency of each serving stage; the stages tile a ticket's "
                    "submit-to-finish interval");
  registry->SetHelp("watchit_serve_tickets_total", "Serving outcomes at the pool level");
  registry->SetHelp("watchit_serve_steals_total",
                    "Jobs executed by a worker that does not own the shard");
  registry->SetHelp("watchit_serve_queue_depth", "Jobs queued per shard right now");
  registry->SetHelp("watchit_pagecache_hits", "Page-cache hits summed over a shard's machines");
  registry->SetHelp("watchit_pagecache_misses",
                    "Page-cache misses summed over a shard's machines");
  registry->SetHelp("watchit_pagecache_evictions",
                    "Page-cache capacity evictions summed over a shard's machines");
  latency_hist_ = registry->GetHistogram("watchit_serve_e2e_latency_ns");
  served_counter_ = registry->GetCounter("watchit_serve_tickets_total", {{"outcome", "ok"}});
  failed_counter_ = registry->GetCounter("watchit_serve_tickets_total", {{"outcome", "error"}});
  rejected_counter_ =
      registry->GetCounter("watchit_serve_tickets_total", {{"outcome", "rejected"}});
  steals_counter_ = registry->GetCounter("watchit_serve_steals_total");
  stage_queue_wait_ =
      registry->GetHistogram("watchit_serve_stage_latency_ns", {{"stage", "queue_wait"}});
  stage_prepare_ =
      registry->GetHistogram("watchit_serve_stage_latency_ns", {{"stage", "prepare"}});
  stage_deploy_ =
      registry->GetHistogram("watchit_serve_stage_latency_ns", {{"stage", "deploy"}});
  stage_ready_wait_ =
      registry->GetHistogram("watchit_serve_stage_latency_ns", {{"stage", "ready_wait"}});
  stage_finish_ =
      registry->GetHistogram("watchit_serve_stage_latency_ns", {{"stage", "finish"}});
  for (size_t i = 0; i < shards_.size(); ++i) {
    witobs::Labels labels = {{"shard", std::to_string(i)}};
    shards_[i]->depth_gauge = registry->GetGauge("watchit_serve_queue_depth", labels);
    shards_[i]->cache_hits_gauge = registry->GetGauge("watchit_pagecache_hits", labels);
    shards_[i]->cache_misses_gauge = registry->GetGauge("watchit_pagecache_misses", labels);
    shards_[i]->cache_evictions_gauge =
        registry->GetGauge("watchit_pagecache_evictions", labels);
  }
}

void ServerPool::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  if (options_.deploy_mode == DeployMode::kPipelined) {
    pipeline_->Start();
  }
  threads_.reserve(shards_.size());
  for (size_t w = 0; w < shards_.size(); ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

witos::Status ServerPool::Submit(const witload::GeneratedTicket& ticket,
                                 const std::string& target_machine,
                                 const std::string& user_machine) {
  auto it = shard_of_.find(target_machine);
  if (it == shard_of_.end()) {
    return witos::Err::kHostUnreach;
  }
  if (!user_machine.empty() && user_machine != target_machine) {
    auto user_it = shard_of_.find(user_machine);
    if (user_it == shard_of_.end()) {
      return witos::Err::kHostUnreach;
    }
    if (user_it->second != it->second) {
      return witos::Err::kXdev;  // cross-shard job would break shard routing
    }
  }
  Shard& shard = *shards_[it->second];
  ServeJob job;
  job.ticket = ticket;
  job.target_machine = target_machine;
  job.user_machine = user_machine;
  job.submit_ns = witobs::MonotonicNowNs();
  job.enqueue_ns = job.submit_ns;
  witos::Status pushed = shard.queue->TryPush(std::move(job));
  if (!pushed.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (rejected_counter_ != nullptr) {
      rejected_counter_->Increment();
    }
    return pushed;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (shard.depth_gauge != nullptr) {
    shard.depth_gauge->Set(static_cast<int64_t>(shard.queue->depth()));
  }
  return witos::Status::Ok();
}

void ServerPool::WorkerLoop(size_t worker) {
  Shard& own = *shards_[worker];
  ServeJob job;
  for (;;) {
    if (own.queue->TryPop(&job)) {
      ProcessJob(worker, worker, std::move(job));
      continue;
    }
    if (options_.steal && shards_.size() > 1) {
      bool stole = false;
      for (size_t i = 1; i < shards_.size(); ++i) {
        size_t victim = (worker + i) % shards_.size();
        if (shards_[victim]->queue->TrySteal(&job)) {
          ProcessJob(worker, victim, std::move(job));
          stole = true;
          break;
        }
      }
      if (stole) {
        continue;
      }
    }
    if (own.queue->WaitPopFor(&job, options_.idle_wait_us)) {
      ProcessJob(worker, worker, std::move(job));
      continue;
    }
    if (AllQueuesDrainedAndClosed()) {
      return;
    }
  }
}

void ServerPool::ProcessJob(size_t worker, size_t shard_index, ServeJob job) {
  if (worker != shard_index) {
    stolen_.fetch_add(1, std::memory_order_relaxed);
    if (steals_counter_ != nullptr) {
      steals_counter_->Increment();
    }
  }
  if (job.pending != nullptr) {
    FinishJob(worker, shard_index, std::move(job));
  } else {
    StartJob(worker, shard_index, std::move(job));
  }
}

void ServerPool::FailJob(const Shard& shard, const ServeJob& job) {
  failed_.fetch_add(1, std::memory_order_relaxed);
  if (failed_counter_ != nullptr) {
    failed_counter_->Increment();
  }
  if (latency_hist_ != nullptr) {
    latency_hist_->Observe(witobs::MonotonicNowNs() - job.submit_ns);
  }
  if (shard.depth_gauge != nullptr) {
    shard.depth_gauge->Set(static_cast<int64_t>(shard.queue->depth()));
  }
  finished_.fetch_add(1, std::memory_order_release);
}

void ServerPool::StartJob(size_t worker, size_t shard_index, ServeJob job) {
  Shard& shard = *shards_[shard_index];

  // Stage 1, queue_wait: admission to the first time a worker touched the
  // job. Recorded here (not in the queue) so steals attribute identically.
  uint64_t popped_ns = witobs::MonotonicNowNs();
  if (stage_queue_wait_ != nullptr && popped_ns >= job.enqueue_ns) {
    stage_queue_wait_->Observe(popped_ns - job.enqueue_ns);
  }
  RecordStageSpan(tracer_, "serve.queue_wait", job.ticket.id, job.enqueue_ns, popped_ns);

  // Stage 2, prepare — classify + review + dispatch: no machine state, so
  // no machine locks.
  uint64_t cpu_start = ThreadCpuNs();
  witos::Result<watchit::PreparedTicket> prepared = witos::Err::kInval;
  {
    witobs::Span span(tracer_, "serve.prepare", job.ticket.id);
    prepared = workflows_[worker]->Prepare(job.ticket, job.target_machine, job.user_machine);
  }
  uint64_t prepare_end_ns = witobs::MonotonicNowNs();
  if (stage_prepare_ != nullptr) {
    stage_prepare_->Observe(prepare_end_ns - popped_ns);
  }
  shard.busy_cpu_ns.fetch_add(ThreadCpuNs() - cpu_start, std::memory_order_relaxed);
  if (!prepared.ok()) {
    FailJob(shard, job);
    return;
  }

  if (options_.deploy_mode == DeployMode::kInline) {
    // Baseline: the worker deploys on the spot and stays blocked for the
    // whole transaction (machine locks are taken inside the gate).
    std::vector<watchit::Deployment> deployments;
    cpu_start = ThreadCpuNs();
    {
      witobs::Span span(tracer_, "serve.deploy", job.ticket.id);
      witos::Result<watchit::Deployment> primary =
          pipeline_->DeployInline(prepared->resolved.ticket);
      if (primary.ok()) {
        deployments.push_back(*primary);
        if (!prepared->user_machine.empty()) {
          watchit::Ticket user_ticket = prepared->resolved.ticket;
          user_ticket.target_machine = prepared->user_machine;
          witos::Result<watchit::Deployment> secondary = pipeline_->DeployInline(user_ticket);
          if (secondary.ok()) {
            deployments.push_back(*secondary);
          }
        }
      }
    }
    if (stage_deploy_ != nullptr) {
      stage_deploy_->Observe(witobs::MonotonicNowNs() - prepare_end_ns);
    }
    shard.busy_cpu_ns.fetch_add(ThreadCpuNs() - cpu_start, std::memory_order_relaxed);
    if (deployments.empty()) {
      (void)dispatcher_->Complete(prepared->resolved.ticket.admin);
      FailJob(shard, job);
      return;
    }
    FinishPrepared(worker, shard_index, job, std::move(*prepared), std::move(deployments));
    return;
  }

  // Pipelined: hand the deploy(s) to the pipeline and return to the queue.
  // The span context rides along so the pipeline workers' deploy spans (and
  // the synthesized "serve.deploy" interval) join this ticket's timeline.
  witobs::SpanContext trace{job.ticket.id};
  auto state = std::make_shared<PendingServe>();
  state->prepared = std::move(*prepared);
  state->shard = shard_index;
  state->remaining = state->prepared.user_machine.empty() ? 1u : 2u;
  state->job = std::move(job);
  state->job.trace = trace;
  state->deploy_start_ns = witobs::MonotonicNowNs();
  pending_jobs_.fetch_add(1, std::memory_order_acq_rel);

  watchit::Ticket primary_ticket = state->prepared.resolved.ticket;
  watchit::Ticket user_ticket;
  bool dual = !state->prepared.user_machine.empty();
  if (dual) {
    user_ticket = primary_ticket;
    user_ticket.target_machine = state->prepared.user_machine;
  }

  witos::Result<watchit::DeployHandle> submitted = pipeline_->Submit(
      std::move(primary_ticket),
      [this, state](const watchit::DeployHandle& handle) {
        OnDeployDone(state, /*is_primary=*/true, handle->Wait());
      },
      trace);
  if (!submitted.ok()) {
    OnDeployDone(state, /*is_primary=*/true, submitted.error());
  }
  if (dual) {
    witos::Result<watchit::DeployHandle> submitted_user = pipeline_->Submit(
        std::move(user_ticket),
        [this, state](const watchit::DeployHandle& handle) {
          OnDeployDone(state, /*is_primary=*/false, handle->Wait());
        },
        trace);
    if (!submitted_user.ok()) {
      OnDeployDone(state, /*is_primary=*/false, submitted_user.error());
    }
  }
}

void ServerPool::OnDeployDone(const std::shared_ptr<PendingServe>& state, bool is_primary,
                              witos::Result<watchit::Deployment> result) {
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (is_primary) {
      state->primary_ok = result.ok();
      if (result.ok()) {
        state->primary = *result;
      } else {
        state->primary_err = result.error();
      }
    } else {
      state->secondary_ok = result.ok();
      if (result.ok()) {
        state->secondary = *result;
      }
    }
    last = --state->remaining == 0;
  }
  if (!last) {
    return;
  }
  Shard& shard = *shards_[state->shard];
  // Stage 3, deploy: pipeline handoff to the last completion. Recorded on
  // the pipeline worker's thread, under the ticket's correlation id.
  uint64_t deploy_end_ns = witobs::MonotonicNowNs();
  if (stage_deploy_ != nullptr && deploy_end_ns >= state->deploy_start_ns) {
    stage_deploy_->Observe(deploy_end_ns - state->deploy_start_ns);
  }
  RecordStageSpan(tracer_, "serve.deploy", state->job.ticket.id, state->deploy_start_ns,
                  deploy_end_ns);
  if (!state->primary_ok) {
    // The ticket cannot be worked. A secondary that did deploy is orphaned
    // — expire it — and the dispatcher assignment from Prepare() closes
    // here, or the specialist leaks an open ticket.
    if (state->secondary_ok) {
      ExpireOrphan(&state->secondary);
    }
    (void)dispatcher_->Complete(state->prepared.resolved.ticket.admin);
    FailJob(shard, state->job);
    pending_jobs_.fetch_sub(1, std::memory_order_release);
    return;
  }
  // Re-admit the job as "ready": whichever worker pops it replays and
  // expires under the machine locks. The push must happen before the
  // pending count drops, or AllQueuesDrainedAndClosed could see both zero.
  ServeJob ready = std::move(state->job);
  ready.pending = state;
  ready.enqueue_ns = deploy_end_ns;  // ready_wait starts here
  shard.queue->PushReady(std::move(ready));
  if (shard.depth_gauge != nullptr) {
    shard.depth_gauge->Set(static_cast<int64_t>(shard.queue->depth()));
  }
  pending_jobs_.fetch_sub(1, std::memory_order_release);
}

void ServerPool::ExpireOrphan(watchit::Deployment* deployment) {
  std::lock_guard<std::mutex> lock(deployment->machine->mu());
  witos::SimClock& clock = deployment->machine->kernel().clock();
  clock.BindOwner();
  (void)manager_.Expire(deployment);
  clock.ReleaseOwner();
}

void ServerPool::FinishJob(size_t worker, size_t shard_index, ServeJob job) {
  // Stage 4, ready_wait: re-admission after the deploys landed to the time
  // a worker popped the ready job.
  uint64_t popped_ns = witobs::MonotonicNowNs();
  if (stage_ready_wait_ != nullptr && popped_ns >= job.enqueue_ns) {
    stage_ready_wait_->Observe(popped_ns - job.enqueue_ns);
  }
  RecordStageSpan(tracer_, "serve.ready_wait", job.ticket.id, job.enqueue_ns, popped_ns);
  std::shared_ptr<PendingServe> state = std::move(job.pending);
  std::vector<watchit::Deployment> deployments;
  deployments.push_back(state->primary);
  if (state->secondary_ok) {
    deployments.push_back(state->secondary);
  }
  FinishPrepared(worker, shard_index, job, std::move(state->prepared),
                 std::move(deployments));
}

void ServerPool::FinishPrepared(size_t worker, size_t shard_index, const ServeJob& job,
                                watchit::PreparedTicket prepared,
                                std::vector<watchit::Deployment> deployments) {
  Shard& shard = *shards_[shard_index];

  // Lock every machine the ticket deployed on, in address order.
  std::vector<watchit::Machine*> machines;
  machines.reserve(deployments.size());
  for (const watchit::Deployment& deployment : deployments) {
    machines.push_back(deployment.machine);
  }
  std::sort(machines.begin(), machines.end());
  machines.erase(std::unique(machines.begin(), machines.end()), machines.end());

  // Stage 5, finish: replay + expire under the machine locks.
  uint64_t finish_start_ns = witobs::MonotonicNowNs();
  witos::Result<watchit::ResolvedTicket> result = witos::Err::kInval;
  {
    witobs::Span span(tracer_, "serve.finish", job.ticket.id);
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(machines.size());
    for (watchit::Machine* machine : machines) {
      locks.emplace_back(machine->mu());
      machine->kernel().clock().BindOwner();
    }
    uint64_t cpu_start = ThreadCpuNs();
    result = workflows_[worker]->Finish(std::move(prepared), std::move(deployments));
    shard.busy_cpu_ns.fetch_add(ThreadCpuNs() - cpu_start, std::memory_order_relaxed);
    for (watchit::Machine* machine : machines) {
      machine->kernel().clock().ReleaseOwner();
    }
  }
  if (stage_finish_ != nullptr) {
    stage_finish_->Observe(witobs::MonotonicNowNs() - finish_start_ns);
  }

  if (result.ok()) {
    served_.fetch_add(1, std::memory_order_relaxed);
    if (served_counter_ != nullptr) {
      served_counter_->Increment();
    }
    if (callback_) {
      callback_(*result);
    }
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (failed_counter_ != nullptr) {
      failed_counter_->Increment();
    }
  }
  if (latency_hist_ != nullptr) {
    latency_hist_->Observe(witobs::MonotonicNowNs() - job.submit_ns);
  }
  if (shard.depth_gauge != nullptr) {
    shard.depth_gauge->Set(static_cast<int64_t>(shard.queue->depth()));
  }
  UpdateCacheGauges(shard);
  finished_.fetch_add(1, std::memory_order_release);
}

void ServerPool::UpdateCacheGauges(const Shard& shard) {
  if (shard.cache_hits_gauge == nullptr) {
    return;
  }
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  // The counters are atomic on the cache, so sampling needs no machine lock.
  for (watchit::Machine* machine : shard.machines) {
    const witos::PageCache& cache = machine->kernel().page_cache();
    hits += cache.hits();
    misses += cache.misses();
    evictions += cache.evictions();
  }
  shard.cache_hits_gauge->Set(static_cast<int64_t>(hits));
  shard.cache_misses_gauge->Set(static_cast<int64_t>(misses));
  shard.cache_evictions_gauge->Set(static_cast<int64_t>(evictions));
}

bool ServerPool::AllQueuesDrainedAndClosed() const {
  // Order matters: a job at the pipeline is re-queued *before* the pending
  // count drops, so reading pending first can't miss it.
  if (pending_jobs_.load(std::memory_order_acquire) != 0) {
    return false;
  }
  for (const auto& shard : shards_) {
    if (!shard->queue->closed() || shard->queue->depth() != 0) {
      return false;
    }
  }
  // Queues can only be closed by Stop(), so no new submissions can race
  // this check; in-flight jobs are finished by the workers themselves.
  return true;
}

void ServerPool::Drain() {
  while (finished_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void ServerPool::Stop() {
  if (!started_) {
    return;
  }
  for (auto& shard : shards_) {
    shard->queue->Close();
  }
  for (auto& thread : threads_) {
    thread.join();
  }
  threads_.clear();
  pipeline_->Stop();
  started_ = false;
}

std::vector<std::string> ServerPool::MachineNames() const {
  std::vector<std::string> names;
  names.reserve(cluster_->size());
  for (size_t i = 0; i < cluster_->size(); ++i) {
    names.push_back(cluster_->machine(i).name());
  }
  return names;
}

size_t ServerPool::ShardOf(const std::string& machine) const {
  auto it = shard_of_.find(machine);
  return it == shard_of_.end() ? shards_.size() : it->second;
}

std::string ServerPool::PeerInShard(const std::string& machine) const {
  auto it = shard_of_.find(machine);
  if (it == shard_of_.end()) {
    return "";
  }
  for (watchit::Machine* candidate : shards_[it->second]->machines) {
    if (candidate->name() != machine) {
      return candidate->name();
    }
  }
  return machine;
}

ServerPool::Stats ServerPool::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.served = served_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.stolen = stolen_.load(std::memory_order_relaxed);
  stats.deploy = pipeline_->GetStats();
  for (const auto& shard : shards_) {
    uint64_t busy = shard->busy_cpu_ns.load(std::memory_order_relaxed);
    stats.shard_busy_cpu_ns.push_back(busy);
    stats.total_busy_cpu_ns += busy;
    stats.max_shard_busy_cpu_ns = std::max(stats.max_shard_busy_cpu_ns, busy);
    stats.peak_queue_depth = std::max(stats.peak_queue_depth, shard->queue->peak_depth());
    for (watchit::Machine* machine : shard->machines) {
      const witos::SimClock& clock = machine->kernel().clock();
      stats.clock_ownership_violations += clock.ownership_violations();
      stats.clock_resume_underflows += clock.resume_underflows();
      const witos::PageCache& cache = machine->kernel().page_cache();
      stats.pagecache_hits += cache.hits();
      stats.pagecache_misses += cache.misses();
      stats.pagecache_evictions += cache.evictions();
    }
  }
  return stats;
}

ServerPool::AuditReport ServerPool::VerifyAuditTrail() {
  // One sweep implementation for the whole codebase: the pool, the crash
  // harness and the benches all audit through Cluster::VerifyAuditTrail.
  watchit::Cluster::AuditReport sweep = cluster_->VerifyAuditTrail();
  AuditReport report;
  report.machines = sweep.machines;
  report.log_entries = sweep.log_entries;
  report.epoch_roots = sweep.epoch_roots;
  report.failures = sweep.failures;
  return report;
}

}  // namespace witserve
