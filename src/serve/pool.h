// witserve: the concurrent ticket-serving engine (worker-pool half).
//
// ServerPool drives many TicketWorkflow pipelines in parallel over one
// Cluster. The design is shared-nothing per shard: the cluster's machines
// are partitioned across N shards (one per worker), every job is routed to
// the shard that owns its target machine, and a shard's machines — their
// simulated kernels, brokers, ITFS instances and clocks — are only ever
// touched while holding that shard's mutex. The owning worker processes its
// shard's queue FIFO; an idle worker steals from the back of a busier
// shard's queue and processes the stolen job under the *victim's* shard
// mutex, so imbalance is absorbed without breaking the single-writer
// discipline (the mutex is the only point where shared-nothing bends, and
// it bends only for stolen work).
//
// What stays genuinely shared is organizational by nature and internally
// synchronized: the Dispatcher roster, the CertificateAuthority, the
// ItFramework (read-only after training), the network fabric's delivery
// counter, and the witobs registry. SimClock ownership is declared per job
// via BindOwner/ReleaseOwner, so a violation of the shard discipline shows
// up as a nonzero clock_ownership_violations in Stats rather than as a
// silently corrupted experiment.

#ifndef SRC_SERVE_POOL_H_
#define SRC_SERVE_POOL_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/workflow.h"
#include "src/serve/queue.h"

namespace witserve {

class ServerPool {
 public:
  struct Options {
    size_t workers = 4;
    // Per-shard queue bounds (admission control is per shard).
    TicketQueue::Options queue;
    bool steal = true;
    // How long an idle worker blocks on its own queue before re-scanning
    // the other shards / checking for shutdown.
    uint64_t idle_wait_us = 500;
  };

  struct Stats {
    uint64_t submitted = 0;
    uint64_t served = 0;
    uint64_t failed = 0;
    uint64_t rejected = 0;  // admission-control EBUSY at Submit()
    uint64_t stolen = 0;    // jobs processed by a non-owner worker
    size_t peak_queue_depth = 0;
    // Busy time per shard in thread-CPU ns (lock waits and queue idling
    // excluded). max_shard_busy_cpu_ns is the serving critical path: on any
    // machine with enough cores, wall time converges to it.
    std::vector<uint64_t> shard_busy_cpu_ns;
    uint64_t total_busy_cpu_ns = 0;
    uint64_t max_shard_busy_cpu_ns = 0;
    // Single-owner clock discipline check, summed over all machines; any
    // nonzero value means the shard serialization was violated.
    uint64_t clock_ownership_violations = 0;
    uint64_t clock_resume_underflows = 0;
  };

  // All dependencies must outlive the pool. Machines present in `cluster`
  // at construction are partitioned round-robin into options.workers shards.
  ServerPool(watchit::Cluster* cluster, watchit::ItFramework* framework,
             watchit::Dispatcher* dispatcher, Options options);
  ~ServerPool();
  ServerPool(const ServerPool&) = delete;
  ServerPool& operator=(const ServerPool&) = delete;

  // Wires per-worker workflows plus pool-level series into the registry:
  // watchit_serve_e2e_latency_ns, watchit_serve_tickets_total{outcome},
  // watchit_serve_steals_total, watchit_serve_queue_depth{shard}.
  void EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer = nullptr);

  void Start();
  // Routes the ticket to the shard owning `target_machine` and applies that
  // shard's admission control. EHOSTUNREACH for an unknown machine; EXDEV
  // when `user_machine` lives in a different shard (a cross-shard T-9 job
  // would break the shared-nothing discipline — pick PeerInShard());
  // EBUSY past the high watermark.
  witos::Status Submit(const witload::GeneratedTicket& ticket, const std::string& target_machine,
                       const std::string& user_machine = "");
  // Blocks until every submitted job has finished. Requires Start().
  void Drain();
  // Closes the queues and joins the workers; queued jobs are drained first.
  void Stop();

  // Shard routing (stable after construction).
  size_t shards() const { return shards_.size(); }
  // Machine names in cluster order (the order they were partitioned).
  std::vector<std::string> MachineNames() const;
  size_t ShardOf(const std::string& machine) const;  // shards() when unknown
  // A machine sharing `machine`'s shard (for T-9 dual deployments); the
  // machine itself when its shard has no other member, "" when unknown.
  std::string PeerInShard(const std::string& machine) const;

  // Invoked after each successfully served ticket, while the processing
  // worker still holds the shard mutex — keep it short; it runs on worker
  // threads, so the callee must be thread-safe. Set before Start().
  using ResultCallback = std::function<void(const watchit::ResolvedTicket&)>;
  void set_result_callback(ResultCallback callback) { callback_ = std::move(callback); }

  Stats stats() const;
  const witobs::Histogram* latency_histogram() const { return latency_hist_; }

 private:
  struct Shard {
    std::unique_ptr<TicketQueue> queue;
    std::mutex mu;  // serializes all access to this shard's machines
    std::vector<watchit::Machine*> machines;
    std::atomic<uint64_t> busy_cpu_ns{0};
    witobs::Gauge* depth_gauge = nullptr;
  };

  void WorkerLoop(size_t worker);
  void ProcessJob(size_t worker, size_t shard, ServeJob job);
  bool AllQueuesDrainedAndClosed() const;

  watchit::Cluster* cluster_;
  watchit::Dispatcher* dispatcher_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, size_t> shard_of_;
  std::vector<std::unique_ptr<watchit::TicketWorkflow>> workflows_;  // one per worker
  std::vector<std::thread> threads_;
  bool started_ = false;

  ResultCallback callback_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> finished_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> stolen_{0};

  // Observability wiring (all null when metrics are disabled).
  witobs::MetricsRegistry* metrics_ = nullptr;
  witobs::Histogram* latency_hist_ = nullptr;
  witobs::Counter* served_counter_ = nullptr;
  witobs::Counter* failed_counter_ = nullptr;
  witobs::Counter* rejected_counter_ = nullptr;
  witobs::Counter* steals_counter_ = nullptr;
};

}  // namespace witserve

#endif  // SRC_SERVE_POOL_H_
