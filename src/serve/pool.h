// witserve: the concurrent ticket-serving engine (worker-pool half).
//
// ServerPool drives many TicketWorkflow pipelines in parallel over one
// Cluster. The cluster's machines are partitioned across N shards (one per
// worker) and every job is routed to the shard that owns its target
// machine. A machine — its simulated kernel, broker, ITFS instances and
// clock — is only ever touched while holding that machine's own lock
// (Machine::mu(), taken in address order for multi-machine jobs), with
// SimClock ownership declared per critical section via
// BindOwner/ReleaseOwner, so a violation of the discipline shows up as a
// nonzero clock_ownership_violations in Stats rather than as a silently
// corrupted experiment.
//
// Deploys run through a DeployPipeline (src/core/deploy.h). In the default
// pipelined mode a worker splits each job in two: it classifies and
// dispatches the ticket (no machine state), submits the deploy(s) to the
// pipeline, and goes straight back to draining its queue; when the pipeline
// finishes, the job re-enters the shard queue as a "ready" job carrying its
// deployments, and whichever worker pops it replays and expires the ticket
// under the machine locks. One slow or faulty deploy therefore stalls only
// its own machine, not the whole shard. kInline mode runs the same gated
// deploy transaction synchronously on the worker — the baseline
// bench_deploy_pipeline compares against.
//
// The owning worker processes its shard's queue FIFO; an idle worker steals
// from the back of a busier shard's queue, so imbalance is absorbed without
// breaking the locking discipline. What stays genuinely shared is
// organizational by nature and internally synchronized: the Dispatcher
// roster, the CertificateAuthority, the ItFramework (read-only after
// training), the network fabric's delivery counter, and the witobs registry.

#ifndef SRC_SERVE_POOL_H_
#define SRC_SERVE_POOL_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/deploy.h"
#include "src/core/workflow.h"
#include "src/serve/queue.h"

namespace witserve {

// A job whose deploys are in flight at the pipeline. The two completions
// (one, or two for T-9) record their results here; the last one re-queues
// the job as "ready" — or fails it outright when the primary deploy lost.
struct PendingServe {
  watchit::PreparedTicket prepared;
  size_t shard = 0;
  ServeJob job;  // the original job, re-admitted once the deploys land
  // When the deploys were handed to the pipeline — the "deploy" stage of
  // the ticket's timeline runs from here to the last completion.
  uint64_t deploy_start_ns = 0;

  std::mutex mu;
  size_t remaining = 0;
  bool primary_ok = false;
  witos::Err primary_err = witos::Err::kIo;
  watchit::Deployment primary;
  bool secondary_ok = false;
  watchit::Deployment secondary;
};

class ServerPool {
 public:
  enum class DeployMode {
    kInline,     // deploy synchronously on the shard worker (baseline)
    kPipelined,  // submit to the DeployPipeline, keep draining the queue
  };

  struct Options {
    size_t workers = 4;
    // Per-shard queue bounds (admission control is per shard).
    TicketQueue::Options queue;
    bool steal = true;
    // How long an idle worker blocks on its own queue before re-scanning
    // the other shards / checking for shutdown.
    uint64_t idle_wait_us = 500;
    DeployMode deploy_mode = DeployMode::kPipelined;
    // Pipeline sizing and per-stage deadlines (applies to both modes; the
    // inline mode pays the same gate semantics on the worker thread).
    watchit::DeployPipeline::Options deploy;
  };

  struct Stats {
    uint64_t submitted = 0;
    uint64_t served = 0;
    uint64_t failed = 0;
    uint64_t rejected = 0;  // admission-control EBUSY at Submit()
    uint64_t stolen = 0;    // jobs processed by a non-owner worker
    size_t peak_queue_depth = 0;
    // Busy time per shard in thread-CPU ns (lock waits and queue idling
    // excluded). max_shard_busy_cpu_ns is the serving critical path: on any
    // machine with enough cores, wall time converges to it.
    std::vector<uint64_t> shard_busy_cpu_ns;
    uint64_t total_busy_cpu_ns = 0;
    uint64_t max_shard_busy_cpu_ns = 0;
    // Single-owner clock discipline check, summed over all machines; any
    // nonzero value means the locking discipline was violated.
    uint64_t clock_ownership_violations = 0;
    uint64_t clock_resume_underflows = 0;
    // Page-cache totals summed over every machine in the pool.
    uint64_t pagecache_hits = 0;
    uint64_t pagecache_misses = 0;
    uint64_t pagecache_evictions = 0;
    watchit::DeployPipeline::Stats deploy;
  };

  // All dependencies must outlive the pool. Machines present in `cluster`
  // at construction are partitioned round-robin into options.workers shards.
  ServerPool(watchit::Cluster* cluster, watchit::ItFramework* framework,
             watchit::Dispatcher* dispatcher, Options options);
  ~ServerPool();
  ServerPool(const ServerPool&) = delete;
  ServerPool& operator=(const ServerPool&) = delete;

  // Wires per-worker workflows, the deploy pipeline and pool-level series
  // into the registry: watchit_serve_e2e_latency_ns,
  // watchit_serve_stage_latency_ns{stage} (queue_wait / prepare / deploy /
  // ready_wait / finish — the per-stage breakdown of every ticket's
  // end-to-end latency), watchit_serve_tickets_total{outcome},
  // watchit_serve_steals_total, watchit_serve_queue_depth{shard}, the
  // watchit_deploy_* family, per-shard
  // watchit_pagecache_{hits,misses,evictions}{shard} gauges, and the
  // watchit_lock_* contention series for the shard queues, dispatcher, CA
  // and deploy pipeline (DESIGN.md §13). With a tracer, every ticket yields
  // one cross-thread timeline under its ticket id.
  void EnableMetrics(witobs::MetricsRegistry* registry, witobs::Tracer* tracer = nullptr);

  void Start();
  // Routes the ticket to the shard owning `target_machine` and applies that
  // shard's admission control. EHOSTUNREACH for an unknown machine; EXDEV
  // when `user_machine` lives in a different shard (a cross-shard T-9 job
  // would break the shard routing — pick PeerInShard()); EBUSY past the
  // high watermark.
  witos::Status Submit(const witload::GeneratedTicket& ticket, const std::string& target_machine,
                       const std::string& user_machine = "");
  // Blocks until every submitted job has finished. Requires Start().
  void Drain();
  // Closes the queues, drains queued jobs and in-flight deploys, joins the
  // workers, then stops the pipeline.
  void Stop();

  // Shard routing (stable after construction).
  size_t shards() const { return shards_.size(); }
  // Machine names in cluster order (the order they were partitioned).
  std::vector<std::string> MachineNames() const;
  size_t ShardOf(const std::string& machine) const;  // shards() when unknown
  // A machine sharing `machine`'s shard (for T-9 dual deployments); the
  // machine itself when its shard has no other member, "" when unknown.
  std::string PeerInShard(const std::string& machine) const;

  // Invoked after each successfully served ticket, once the processing
  // worker has released the machine locks — it runs on worker threads, so
  // the callee must be thread-safe. Set before Start().
  using ResultCallback = std::function<void(const watchit::ResolvedTicket&)>;
  void set_result_callback(ResultCallback callback) { callback_ = std::move(callback); }

  // The deploy engine — exposed so tests and benches can install a stage
  // hook or read pipeline stats directly. Configure before Start().
  watchit::DeployPipeline& deploy_pipeline() { return *pipeline_; }

  Stats stats() const;
  const witobs::Histogram* latency_histogram() const { return latency_hist_; }

  // Post-run audit sweep (DESIGN.md §14): walks every machine in the pool
  // and verifies its broker's segmented secure log — each shard chain, each
  // sealed epoch root, and divergence against every registered replica.
  // `failures` counts machines whose trail did not verify; 0 means the
  // whole pool's audit evidence is intact. Safe under concurrent serving
  // (the log is internally synchronized), but the numbers are only a
  // consistent end-of-run statement once the pool has drained.
  struct AuditReport {
    size_t machines = 0;
    size_t log_entries = 0;   // secure-log entries across all machines
    size_t epoch_roots = 0;   // sealed roots across all machines
    size_t failures = 0;
  };
  AuditReport VerifyAuditTrail();

 private:
  struct Shard {
    std::unique_ptr<TicketQueue> queue;
    std::vector<watchit::Machine*> machines;
    std::atomic<uint64_t> busy_cpu_ns{0};
    witobs::Gauge* depth_gauge = nullptr;
    witobs::Gauge* cache_hits_gauge = nullptr;
    witobs::Gauge* cache_misses_gauge = nullptr;
    witobs::Gauge* cache_evictions_gauge = nullptr;
  };

  void WorkerLoop(size_t worker);
  void ProcessJob(size_t worker, size_t shard, ServeJob job);
  // Fresh job: Prepare, then deploy inline or hand off to the pipeline.
  void StartJob(size_t worker, size_t shard, ServeJob job);
  // Ready job: replay + expire under the deployments' machine locks.
  void FinishJob(size_t worker, size_t shard, ServeJob job);
  void FinishPrepared(size_t worker, size_t shard, const ServeJob& job,
                      watchit::PreparedTicket prepared,
                      std::vector<watchit::Deployment> deployments);
  // Pipeline-thread completion for one of a job's deploys.
  void OnDeployDone(const std::shared_ptr<PendingServe>& state, bool is_primary,
                    witos::Result<watchit::Deployment> result);
  // Expires a deployment whose job failed elsewhere (orphaned secondary).
  void ExpireOrphan(watchit::Deployment* deployment);
  void FailJob(const Shard& shard, const ServeJob& job);
  void UpdateCacheGauges(const Shard& shard);
  bool AllQueuesDrainedAndClosed() const;

  watchit::Cluster* cluster_;
  watchit::Dispatcher* dispatcher_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, size_t> shard_of_;
  std::vector<std::unique_ptr<watchit::TicketWorkflow>> workflows_;  // one per worker
  std::unique_ptr<watchit::DeployPipeline> pipeline_;
  watchit::ClusterManager manager_;  // orphan expiry outside a workflow
  std::vector<std::thread> threads_;
  bool started_ = false;

  ResultCallback callback_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> finished_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> stolen_{0};
  // Jobs handed to the pipeline and not yet re-queued or failed; keeps
  // AllQueuesDrainedAndClosed honest while queues look empty.
  std::atomic<uint64_t> pending_jobs_{0};

  // Observability wiring (all null when metrics are disabled).
  witobs::MetricsRegistry* metrics_ = nullptr;
  witobs::Tracer* tracer_ = nullptr;
  witobs::Histogram* latency_hist_ = nullptr;
  witobs::Counter* served_counter_ = nullptr;
  witobs::Counter* failed_counter_ = nullptr;
  witobs::Counter* rejected_counter_ = nullptr;
  witobs::Counter* steals_counter_ = nullptr;
  // Per-stage latency histograms; together the stages tile submit→finish,
  // so their p99s attribute the e2e p99 (bench_serve_throughput --profile).
  witobs::Histogram* stage_queue_wait_ = nullptr;
  witobs::Histogram* stage_prepare_ = nullptr;
  witobs::Histogram* stage_deploy_ = nullptr;
  witobs::Histogram* stage_ready_wait_ = nullptr;
  witobs::Histogram* stage_finish_ = nullptr;
};

}  // namespace witserve

#endif  // SRC_SERVE_POOL_H_
