// witserve: open-loop load generation.
//
// LoadGenerator turns the synthetic ticket corpus (witload::TicketGenerator,
// evaluation distribution, with required ops) into a serving workload:
// targets round-robin across the cluster's machines, T-9 tickets get a
// same-shard user machine (§7.1.2 dual deployment without crossing the
// pool's shard ownership), and arrival instants follow a seeded Poisson
// process (exponential inter-arrival times) — the standard open-loop model
// where the organization files tickets at its own rate regardless of how
// backed up the helpdesk is, which is exactly what makes admission control
// observable.

#ifndef SRC_SERVE_LOADGEN_H_
#define SRC_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/pool.h"
#include "src/workload/ticket_gen.h"

namespace witserve {

class LoadGenerator {
 public:
  struct Options {
    uint32_t seed = 20260805;
    size_t tickets = 10000;
    // Poisson arrival rate. Run() paces submissions against these instants
    // when pace=true; with pace=false it submits as fast as the pool
    // admits, which measures peak throughput.
    double arrivals_per_sec = 2000.0;
    bool pace = false;
    // Overloaded submissions (EBUSY) retry after a short sleep when true —
    // closed-loop backpressure; when false they are dropped and counted —
    // open-loop shedding.
    bool retry_on_busy = true;
    uint64_t retry_sleep_us = 50;
  };

  struct Arrival {
    witload::GeneratedTicket ticket;
    std::string target;
    std::string user;  // same-shard peer for T-9, empty otherwise
    uint64_t offset_ns = 0;
  };

  struct RunStats {
    uint64_t submitted = 0;
    uint64_t dropped = 0;       // EBUSY with retry_on_busy=false
    uint64_t busy_retries = 0;  // EBUSY sleeps with retry_on_busy=true
    uint64_t wall_ns = 0;
  };

  explicit LoadGenerator(Options options) : options_(options) {}

  // Deterministic for a fixed (seed, pool shard map): same tickets, same
  // targets, same arrival offsets.
  std::vector<Arrival> Generate(const ServerPool& pool) const;

  // Submits every arrival into the pool (which must be Start()ed or be
  // drained by the caller afterwards). Returns submission-side stats; the
  // serving-side outcome lives in pool->stats().
  RunStats Run(ServerPool* pool, const std::vector<Arrival>& arrivals) const;

 private:
  Options options_;
};

}  // namespace witserve

#endif  // SRC_SERVE_LOADGEN_H_
