#include "src/serve/loadgen.h"

#include <chrono>
#include <random>
#include <thread>

#include "src/obs/metrics.h"

namespace witserve {

std::vector<LoadGenerator::Arrival> LoadGenerator::Generate(const ServerPool& pool) const {
  witload::TicketGenerator::Options gen_options;
  gen_options.seed = options_.seed;
  gen_options.with_ops = true;
  witload::TicketGenerator generator(gen_options);
  std::vector<witload::GeneratedTicket> tickets = generator.GenerateBatch(
      options_.tickets, witload::TicketGenerator::EvaluationDistribution());

  const std::vector<std::string> machines = pool.MachineNames();
  std::mt19937 arrival_rng(options_.seed ^ 0x9e3779b9u);
  std::exponential_distribution<double> inter_arrival(
      options_.arrivals_per_sec > 0 ? options_.arrivals_per_sec : 1.0);

  std::vector<Arrival> arrivals;
  arrivals.reserve(tickets.size());
  double offset_s = 0.0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    Arrival arrival;
    arrival.ticket = std::move(tickets[i]);
    arrival.target = machines[i % machines.size()];
    if (arrival.ticket.true_class == "T-9") {
      // Dual deployment: the user's machine must share the target's shard.
      arrival.user = pool.PeerInShard(arrival.target);
    }
    offset_s += inter_arrival(arrival_rng);
    arrival.offset_ns = static_cast<uint64_t>(offset_s * 1e9);
    arrivals.push_back(std::move(arrival));
  }
  return arrivals;
}

LoadGenerator::RunStats LoadGenerator::Run(ServerPool* pool,
                                           const std::vector<Arrival>& arrivals) const {
  RunStats stats;
  const uint64_t start_ns = witobs::MonotonicNowNs();
  for (const Arrival& arrival : arrivals) {
    if (options_.pace && options_.arrivals_per_sec > 0) {
      // Open-loop: arrival instants are fixed in advance, never pushed back
      // by serving delays.
      while (witobs::MonotonicNowNs() - start_ns < arrival.offset_ns) {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    }
    for (;;) {
      witos::Status status = pool->Submit(arrival.ticket, arrival.target, arrival.user);
      if (status.ok()) {
        ++stats.submitted;
        break;
      }
      if (status.error() == witos::Err::kBusy && options_.retry_on_busy) {
        ++stats.busy_retries;
        std::this_thread::sleep_for(std::chrono::microseconds(options_.retry_sleep_us));
        continue;
      }
      ++stats.dropped;
      break;
    }
  }
  stats.wall_ns = witobs::MonotonicNowNs() - start_ns;
  return stats;
}

}  // namespace witserve
