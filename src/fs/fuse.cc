#include "src/fs/fuse.h"

namespace witfs {

void FuseMount::Cross() const {
  ++crossings_;
  if (clock_ != nullptr) {
    clock_->Advance(clock_->costs().fuse_crossing_ns);
  }
}

witos::Result<witos::Stat> FuseMount::Open(const std::string& path, uint32_t flags,
                                           witos::Mode mode, const witos::Credentials& cred) {
  Cross();
  auto st = user_fs_->Open(path, flags, mode, cred);
  if (passthrough_lower_ != nullptr) {
    if (st.ok()) {
      approved_.insert(path);  // subsequent data ops bypass the daemon
    } else {
      approved_.erase(path);
    }
  }
  return st;
}

witos::Result<size_t> FuseMount::ReadAt(const std::string& path, uint64_t offset, size_t size,
                                        std::string* out, const witos::Credentials& cred) {
  if (passthrough_lower_ != nullptr && Approved(path)) {
    ++passthrough_ops_;
    return passthrough_lower_->ReadAt(path, offset, size, out, cred);
  }
  Cross();
  auto n = user_fs_->ReadAt(path, offset, size, out, cred);
  if (n.ok() && clock_ != nullptr) {
    // The extra request copy through the FUSE protocol buffer.
    clock_->Advance(*n * clock_->costs().fuse_per_byte_tenth_ns / 10);
  }
  return n;
}

witos::Result<size_t> FuseMount::WriteAt(const std::string& path, uint64_t offset,
                                         const std::string& data,
                                         const witos::Credentials& cred) {
  if (passthrough_lower_ != nullptr && Approved(path)) {
    ++passthrough_ops_;
    return passthrough_lower_->WriteAt(path, offset, data, cred);
  }
  Cross();
  if (clock_ != nullptr) {
    clock_->Advance(data.size() * clock_->costs().fuse_per_byte_tenth_ns / 10);
  }
  return user_fs_->WriteAt(path, offset, data, cred);
}

witos::Status FuseMount::Truncate(const std::string& path, uint64_t size,
                                  const witos::Credentials& cred) {
  Cross();
  return user_fs_->Truncate(path, size, cred);
}

witos::Result<witos::Stat> FuseMount::GetAttr(const std::string& path,
                                              const witos::Credentials& cred) {
  Cross();
  return user_fs_->GetAttr(path, cred);
}

witos::Result<std::vector<witos::DirEntry>> FuseMount::ReadDir(const std::string& path,
                                                               const witos::Credentials& cred) {
  Cross();
  return user_fs_->ReadDir(path, cred);
}

witos::Status FuseMount::MkDir(const std::string& path, witos::Mode mode,
                               const witos::Credentials& cred) {
  Cross();
  return user_fs_->MkDir(path, mode, cred);
}

witos::Status FuseMount::Unlink(const std::string& path, const witos::Credentials& cred) {
  Cross();
  approved_.erase(path);
  return user_fs_->Unlink(path, cred);
}

witos::Status FuseMount::RmDir(const std::string& path, const witos::Credentials& cred) {
  Cross();
  return user_fs_->RmDir(path, cred);
}

witos::Status FuseMount::Rename(const std::string& from, const std::string& to,
                                const witos::Credentials& cred) {
  Cross();
  approved_.erase(from);
  approved_.erase(to);
  return user_fs_->Rename(from, to, cred);
}

witos::Status FuseMount::Chmod(const std::string& path, witos::Mode mode,
                               const witos::Credentials& cred) {
  Cross();
  return user_fs_->Chmod(path, mode, cred);
}

witos::Status FuseMount::Chown(const std::string& path, witos::Uid uid, witos::Gid gid,
                               const witos::Credentials& cred) {
  Cross();
  return user_fs_->Chown(path, uid, gid, cred);
}

witos::Status FuseMount::MkNod(const std::string& path, witos::FileType type,
                               witos::DeviceId rdev, witos::Mode mode,
                               const witos::Credentials& cred) {
  Cross();
  return user_fs_->MkNod(path, type, rdev, mode, cred);
}

witos::Status FuseMount::Link(const std::string& oldpath, const std::string& newpath,
                              const witos::Credentials& cred) {
  Cross();
  return user_fs_->Link(oldpath, newpath, cred);
}

witos::Status FuseMount::SymLink(const std::string& target, const std::string& linkpath,
                                 const witos::Credentials& cred) {
  Cross();
  return user_fs_->SymLink(target, linkpath, cred);
}

witos::Result<std::string> FuseMount::ReadLink(const std::string& path,
                                               const witos::Credentials& cred) {
  Cross();
  return user_fs_->ReadLink(path, cred);
}

witos::Result<witos::FsStats> FuseMount::StatFs() const {
  Cross();
  return user_fs_->StatFs();
}

}  // namespace witfs
