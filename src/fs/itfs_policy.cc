#include "src/fs/itfs_policy.h"

#include <algorithm>

#include "src/os/path.h"

namespace witfs {

std::string ItfsOpKindName(ItfsOpKind op) {
  switch (op) {
    case ItfsOpKind::kOpen:
      return "open";
    case ItfsOpKind::kRead:
      return "read";
    case ItfsOpKind::kWrite:
      return "write";
    case ItfsOpKind::kReaddir:
      return "readdir";
    case ItfsOpKind::kUnlink:
      return "unlink";
    case ItfsOpKind::kRename:
      return "rename";
    case ItfsOpKind::kAttr:
      return "attr";
  }
  return "?";
}

const std::vector<std::string>& DocumentExtensions() {
  static const std::vector<std::string> kExts = {
      "doc", "docx", "xls", "xlsx", "ppt", "pptx", "pdf", "odt",  "ods",
      "jpg", "jpeg", "png", "gif",  "bmp", "tif",  "csv", "eml",  "msg",
  };
  return kExts;
}

void ItfsPolicy::AddRule(ItfsRule rule) {
  // PathIsUnder requires normalized prefixes: a trailing slash or a "."/".."
  // component in a rule ("/etc/", "/etc/../etc") would otherwise never match
  // any gated path and the rule would be silently inert — a containment hole,
  // not a cosmetic mismatch. Normalize once at ingestion.
  for (auto& prefix : rule.path_prefixes) {
    prefix = witos::NormalizePath(prefix);
  }
  rules_.push_back(std::move(rule));
}

void ItfsPolicy::Merge(const ItfsPolicy& other) {
  for (const auto& rule : other.rules_) {
    rules_.push_back(rule);
  }
  if (other.mode_ == InspectionMode::kSignature) {
    mode_ = InspectionMode::kSignature;
  }
}

bool ItfsPolicy::NeedsContent() const {
  if (mode_ != InspectionMode::kSignature) {
    return false;
  }
  return std::any_of(rules_.begin(), rules_.end(), [](const ItfsRule& r) {
    return !r.signatures.empty() || r.custom != nullptr;
  });
}

PolicyDecision ItfsPolicy::Evaluate(ItfsOpKind op, const std::string& path,
                                    std::string_view head) const {
  bool is_write = op == ItfsOpKind::kWrite || op == ItfsOpKind::kUnlink ||
                  op == ItfsOpKind::kRename;
  std::string ext = witos::Extension(path);
  FileClass cls = FileClass::kUnknown;
  bool cls_computed = false;
  // A matching log-only rule records its name but does NOT shield the access
  // from later deny rules — logging never grants immunity.
  std::string log_rule;
  for (const auto& rule : rules_) {
    if (rule.write_only && !is_write) {
      continue;
    }
    bool matched = false;
    if (!rule.extensions.empty() &&
        std::find(rule.extensions.begin(), rule.extensions.end(), ext) != rule.extensions.end()) {
      matched = true;
    }
    if (!matched && !rule.path_prefixes.empty()) {
      for (const auto& prefix : rule.path_prefixes) {
        if (witos::PathIsUnder(path, prefix)) {
          matched = true;
          break;
        }
      }
    }
    if (!matched && mode_ == InspectionMode::kSignature && !rule.signatures.empty() &&
        !head.empty()) {
      if (!cls_computed) {
        cls = DetectSignature(head);
        cls_computed = true;
      }
      matched = std::find(rule.signatures.begin(), rule.signatures.end(), cls) !=
                rule.signatures.end();
    }
    if (!matched && rule.custom != nullptr) {
      matched = rule.custom(path, head);
    }
    if (matched) {
      if (rule.action == RuleAction::kDeny) {
        return {true, rule.name};
      }
      if (rule.action == RuleAction::kAllow) {
        return {false, rule.name};  // terminal: later rules never run
      }
      if (log_rule.empty()) {
        log_rule = rule.name;
      }
    }
  }
  return {false, log_rule};
}

ItfsRule ItfsPolicy::DenyDocumentsRule() {
  ItfsRule rule;
  rule.name = "deny-documents";
  rule.action = RuleAction::kDeny;
  rule.extensions = DocumentExtensions();
  rule.signatures = {FileClass::kJpeg, FileClass::kPng,       FileClass::kGif,
                     FileClass::kPdf,  FileClass::kZipOffice, FileClass::kOleOffice};
  return rule;
}

ItfsRule ItfsPolicy::ProtectPathsRule(std::vector<std::string> prefixes) {
  ItfsRule rule;
  rule.name = "protect-watchit";
  rule.action = RuleAction::kDeny;
  rule.path_prefixes = std::move(prefixes);
  return rule;
}

ItfsRule ItfsPolicy::ReadOnlyRule(std::vector<std::string> prefixes) {
  ItfsRule rule;
  rule.name = "read-only";
  rule.action = RuleAction::kDeny;
  rule.path_prefixes = std::move(prefixes);
  rule.write_only = true;
  return rule;
}

}  // namespace witfs
