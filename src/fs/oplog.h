// The ITFS operation log: every file operation a perforated container
// performs is recorded here for later analysis (paper: "all filesystem
// operations ... were monitored").

#ifndef SRC_FS_OPLOG_H_
#define SRC_FS_OPLOG_H_

#include <functional>
#include <string>
#include <vector>

#include "src/fs/itfs_policy.h"
#include "src/os/types.h"

namespace witfs {

struct OpRecord {
  uint64_t time_ns = 0;
  ItfsOpKind op = ItfsOpKind::kOpen;
  std::string path;
  witos::Uid uid = 0;
  bool denied = false;
  std::string rule;  // policy rule that fired, if any
};

class OpLog {
 public:
  void Record(OpRecord rec) { records_.push_back(std::move(rec)); }

  const std::vector<OpRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  size_t denied_count() const;
  std::vector<OpRecord> Denied() const;
  std::vector<OpRecord> ForPath(const std::string& path) const;
  size_t CountMatching(const std::function<bool(const OpRecord&)>& pred) const;
  void Clear() { records_.clear(); }

 private:
  std::vector<OpRecord> records_;
};

}  // namespace witfs

#endif  // SRC_FS_OPLOG_H_
