// The ITFS operation log: every file operation a perforated container
// performs is recorded here for later analysis (paper: "all filesystem
// operations ... were monitored").
//
// Retention is bounded: set_capacity() turns the log into a ring that drops
// its oldest records once full, counting what was lost in dropped_records()
// (and, when wired, the watchit_itfs_oplog_dropped_total metric) so a
// long-running session cannot grow memory without bound while the forensic
// totals stay exact in the metrics registry.

#ifndef SRC_FS_OPLOG_H_
#define SRC_FS_OPLOG_H_

#include <functional>
#include <string>
#include <vector>

#include "src/fs/itfs_policy.h"
#include "src/obs/metrics.h"
#include "src/os/types.h"

namespace witfs {

struct OpRecord {
  uint64_t time_ns = 0;
  ItfsOpKind op = ItfsOpKind::kOpen;
  std::string path;
  witos::Uid uid = 0;
  bool denied = false;
  std::string rule;  // policy rule that fired, if any
};

class OpLog {
 public:
  void Record(OpRecord rec);

  // Retention cap: 0 (the default) keeps everything; otherwise the log
  // keeps the most recent `capacity` records, ring-buffer style.
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  size_t capacity() const { return capacity_; }
  size_t dropped_records() const { return dropped_; }

  // Optional registry counter bumped on every dropped record.
  void set_dropped_counter(witobs::Counter* counter) { dropped_counter_ = counter; }

  const std::vector<OpRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  size_t denied_count() const;
  std::vector<OpRecord> Denied() const;
  std::vector<OpRecord> ForPath(const std::string& path) const;
  size_t CountMatching(const std::function<bool(const OpRecord&)>& pred) const;
  void Clear() { records_.clear(); }

 private:
  std::vector<OpRecord> records_;
  size_t capacity_ = 0;
  size_t dropped_ = 0;
  witobs::Counter* dropped_counter_ = nullptr;
};

}  // namespace witfs

#endif  // SRC_FS_OPLOG_H_
